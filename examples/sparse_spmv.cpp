/**
 * @file
 * Sparse matrix-vector multiplication with page overlays (§5.2).
 *
 * Stores a sparse matrix three ways — dense, CSR, and as zero-backed
 * overlay pages — runs SpMV on each through the timing model, verifies
 * all three produce the same result, and demonstrates the cheap dynamic
 * update that software formats lack.
 *
 * Build & run:  ./build/examples/sparse_spmv
 */

#include <cmath>
#include <cstdio>
#include <vector>

#include "common/random.hh"
#include "cpu/ooo_core.hh"
#include "sparse/csr.hh"
#include "sparse/overlay_matrix.hh"
#include "sparse/spmv.hh"
#include "workload/matrixgen.hh"

using namespace ovl;

int
main()
{
    // A block-dense matrix with high non-zero locality (overlay-friendly).
    MatrixSpec spec;
    spec.name = "example";
    spec.family = MatrixFamily::BlockDense;
    spec.blockRunLines = 96;
    spec.rows = 512;
    spec.cols = 512;
    spec.nnz = 20'000;
    spec.targetL = 7.0;
    CooMatrix coo = generateMatrix(spec);
    MatrixStats stats = analyzeMatrix(coo, kLineSize);
    std::printf("Matrix: %ux%u, %llu non-zeros, locality L = %.2f\n",
                coo.rows, coo.cols, (unsigned long long)coo.nnz(),
                stats.locality);

    std::vector<double> x(coo.cols);
    Rng rng(2026);
    for (double &v : x)
        v = rng.uniform();
    std::vector<double> reference = spmvReference(coo, x);

    SpmvAddrs addrs;
    auto check = [&](const char *name, const SpmvResult &res) {
        double max_err = 0;
        for (std::size_t i = 0; i < reference.size(); ++i)
            max_err = std::max(max_err,
                               std::fabs(res.y[i] - reference[i]));
        std::printf("  %-8s %10llu cycles, %8llu instructions, "
                    "max |err| = %.2e\n",
                    name, (unsigned long long)res.cycles,
                    (unsigned long long)res.instructions, max_err);
        return max_err < 1e-9;
    };

    std::printf("\nSpMV through the Table 2 machine:\n");
    bool ok = true;

    {
        System sys((SystemConfig()));
        OooCore core("core", sys);
        Asid asid = sys.createProcess();
        installVectors(sys, asid, addrs, x, coo.rows);
        installDense(sys, asid, addrs.aBase, coo);
        sys.quiesce();
        ok &= check("dense", spmvDense(sys, core, asid, addrs,
                                       DenseLayout(coo.rows, coo.cols), x,
                                       0));
    }
    SpmvResult csr_result;
    {
        System sys((SystemConfig()));
        OooCore core("core", sys);
        Asid asid = sys.createProcess();
        installVectors(sys, asid, addrs, x, coo.rows);
        CsrMatrix csr = CsrMatrix::fromCoo(coo);
        installCsr(sys, asid, addrs, csr);
        sys.quiesce();
        csr_result = spmvCsr(sys, core, asid, addrs, csr, x, 0);
        ok &= check("CSR", csr_result);
    }
    {
        System sys((SystemConfig()));
        OooCore core("core", sys);
        Asid asid = sys.createProcess();
        installVectors(sys, asid, addrs, x, coo.rows);
        OverlayMatrix matrix(sys, asid, addrs.aBase);
        matrix.build(coo);
        SpmvResult overlay = spmvOverlay(sys, core, matrix, addrs, x, 0);
        ok &= check("overlay", overlay);
        std::printf("\nOverlay representation stores %.1f KB "
                    "(dense layout would be %.1f KB).\n",
                    double(matrix.storedBytes()) / 1024.0,
                    double(matrix.layout().bytes()) / 1024.0);
        std::printf("Overlay speedup over CSR: %.2fx\n",
                    double(csr_result.cycles) / double(overlay.cycles));

        // Dynamic update: one overlaying write, no array shifting.
        std::uint64_t before = sys.overlayingWrites();
        matrix.insert(100, 400, 2.5, 0);
        std::printf("\nDynamic insert of a new non-zero: "
                    "%llu overlaying write(s); element now reads %.1f\n",
                    (unsigned long long)(sys.overlayingWrites() - before),
                    matrix.at(100, 400));
    }

    std::printf("\n%s\n", ok ? "All representations agree."
                             : "MISMATCH DETECTED");
    return ok ? 0 : 1;
}
