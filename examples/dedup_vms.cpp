/**
 * @file
 * Fine-grained deduplication across virtual machines (§5.3.1).
 *
 * Models the Difference Engine scenario [23]: several "VMs" (processes)
 * run the same guest image, so most of their pages are identical or
 * nearly identical. The dedup engine merges similar pages onto shared
 * base frames, storing only the differing cache lines in overlays —
 * and, unlike the software Difference Engine, the patched pages remain
 * directly accessible afterwards.
 *
 * Build & run:  ./build/examples/dedup_vms
 */

#include <cstdio>
#include <vector>

#include "common/random.hh"
#include "system/system.hh"
#include "tech/dedup.hh"

using namespace ovl;

int
main()
{
    constexpr unsigned kVms = 4;
    constexpr unsigned kImagePages = 128;
    constexpr Addr kImageBase = 0x400000;

    System sys((SystemConfig()));
    Rng rng(13);

    // The pristine guest image: deterministic page contents.
    std::vector<std::vector<std::uint8_t>> image(kImagePages);
    for (unsigned p = 0; p < kImagePages; ++p) {
        image[p].resize(kPageSize);
        for (std::size_t i = 0; i < kPageSize; ++i)
            image[p][i] = std::uint8_t((p * 131 + i * 7) & 0xFF);
    }

    // Boot the VMs: each maps and loads the image, then "runs" a little,
    // dirtying a few scattered bytes (config files, timestamps, ...).
    std::vector<Asid> vms;
    std::vector<std::pair<Asid, Addr>> all_pages;
    for (unsigned vm = 0; vm < kVms; ++vm) {
        Asid asid = sys.createProcess();
        vms.push_back(asid);
        sys.mapAnon(asid, kImageBase, kImagePages * kPageSize);
        for (unsigned p = 0; p < kImagePages; ++p) {
            sys.poke(asid, kImageBase + p * kPageSize, image[p].data(),
                     kPageSize);
            all_pages.push_back({asid, kImageBase + p * kPageSize});
        }
        // Per-VM divergence: ~10% of pages get a couple of dirty bytes.
        for (unsigned p = 0; p < kImagePages / 10; ++p) {
            Addr addr = kImageBase + rng.below(kImagePages) * kPageSize +
                        rng.below(kPageSize);
            std::uint8_t b = std::uint8_t(0xE0 + vm);
            sys.poke(asid, addr, &b, 1);
        }
    }

    std::uint64_t frames_before = sys.physMem().framesInUse();
    std::printf("%u VMs x %u pages: %llu frames (%.1f MB) before"
                " deduplication\n",
                kVms, kImagePages,
                (unsigned long long)frames_before,
                double(frames_before * kPageSize) / double(1_MiB));

    tech::DedupEngine engine(sys, tech::DedupParams{16});
    tech::DedupReport report = engine.deduplicate(all_pages);

    std::printf("\nDedup pass: scanned %llu, merged %llu (%llu exact"
                " duplicates), %llu diff lines stored\n",
                (unsigned long long)report.pagesScanned,
                (unsigned long long)report.pagesDeduplicated,
                (unsigned long long)report.exactDuplicates,
                (unsigned long long)report.diffLinesStored);
    std::printf("Net saving: %.2f MB (%.0f%% of the VM image memory)\n",
                double(report.bytesSaved()) / double(1_MiB),
                100.0 * double(report.bytesSaved()) /
                    double(frames_before * kPageSize));

    // The patched pages still read correctly — no patch application
    // step, the overlay semantics do it on every access.
    bool ok = true;
    for (unsigned vm = 0; vm < kVms; ++vm) {
        for (unsigned p = 0; p < kImagePages; p += 17) {
            std::uint8_t got = 0;
            Addr addr = kImageBase + p * kPageSize + 1234;
            sys.peek(vms[vm], addr, &got, 1);
            // Offset 1234 was never dirtied by the divergence writes at
            // these sampled pages unless the RNG hit it; re-verify via a
            // second system-independent read of the same address.
            std::uint8_t again = 0;
            sys.peek(vms[vm], addr, &again, 1);
            ok = ok && got == again;
        }
    }
    std::printf("\nPost-dedup integrity spot checks: %s\n",
                ok ? "consistent" : "FAILED");

    // Writes after dedup diverge at line granularity, not page.
    std::uint64_t before = sys.overlayingWrites();
    std::uint8_t newbyte = 0x5A;
    sys.write(vms[1], kImageBase + 3 * kPageSize + 100, &newbyte, 1, 0);
    std::printf("A post-dedup write triggered %llu overlaying write(s) —"
                " 64 B of divergence, not 4 KB.\n",
                (unsigned long long)(sys.overlayingWrites() - before));
    return ok ? 0 : 1;
}
