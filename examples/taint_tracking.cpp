/**
 * @file
 * Fine-grained metadata management (§5.3.4): dynamic taint tracking with
 * the Overlay Address Space as shadow memory.
 *
 * A byte of "network input" is marked tainted; the program shuffles data
 * through buffers with propagating copies; a policy check then catches
 * tainted bytes reaching a "sensitive sink". No metadata-specific
 * hardware — the shadow bytes live in page overlays, reached by the new
 * metadata load/store instructions.
 *
 * Build & run:  ./build/examples/taint_tracking
 */

#include <cstdio>
#include <vector>

#include "system/system.hh"
#include "tech/metadata.hh"

using namespace ovl;

namespace
{

constexpr Addr kNetBuf = 0x100000;   // "network" input buffer
constexpr Addr kWorkBuf = 0x200000;  // intermediate processing buffer
constexpr Addr kSinkBuf = 0x300000;  // sensitive sink (e.g., a syscall arg)

} // namespace

int
main()
{
    System sys((SystemConfig()));
    Asid proc = sys.createProcess();
    for (Addr base : {kNetBuf, kWorkBuf, kSinkBuf})
        sys.mapAnon(proc, base, kPageSize);

    tech::TaintTracker taint(sys, proc);
    for (Addr base : {kNetBuf, kWorkBuf, kSinkBuf})
        taint.enable(base, kPageSize);

    // 256 bytes arrive from the network; all of it is untrusted.
    std::vector<std::uint8_t> packet(256);
    for (std::size_t i = 0; i < packet.size(); ++i)
        packet[i] = std::uint8_t(i);
    sys.poke(proc, kNetBuf, packet.data(), packet.size());
    Tick t = taint.setTaint(kNetBuf, packet.size(), true, 0);
    std::printf("Marked %zu network bytes tainted (%u shadow lines in"
                " the overlay).\n",
                packet.size(),
                sys.pageObv(proc, kNetBuf).count());

    // The program mixes trusted and untrusted data in its work buffer.
    std::uint64_t trusted = 0x5AFE;
    sys.poke(proc, kWorkBuf, &trusted, 8);
    t = taint.setTaint(kWorkBuf, 8, false, t);
    t = taint.taintedCopy(kWorkBuf + 64, kNetBuf + 16, 32, t); // tainted!
    std::printf("Work buffer: bytes [0,8) %s, bytes [64,96) %s\n",
                taint.isTainted(kWorkBuf, 8) ? "TAINTED" : "clean",
                taint.isTainted(kWorkBuf + 64, 32) ? "TAINTED" : "clean");

    // Copies into the sink; the policy check runs before "use".
    t = taint.taintedCopy(kSinkBuf, kWorkBuf, 8, t);       // clean path
    t = taint.taintedCopy(kSinkBuf + 8, kWorkBuf + 64, 8, t); // leak!

    bool clean_ok = !taint.isTainted(kSinkBuf, 8);
    bool leak_caught = taint.isTainted(kSinkBuf + 8, 8);
    std::printf("Sink check: trusted copy %s; tainted leak %s\n",
                clean_ok ? "passes" : "FALSELY FLAGGED",
                leak_caught ? "caught" : "MISSED");

    // Regular data is untouched by the shadow machinery.
    std::uint64_t sink0 = 0;
    sys.peek(proc, kSinkBuf, &sink0, 8);
    std::printf("Sink data reads back 0x%llX (shadow is out of band).\n",
                (unsigned long long)sink0);
    std::printf("Total simulated time: %llu cycles.\n",
                (unsigned long long)t);
    return clean_ok && leak_caught && sink0 == 0x5AFE ? 0 : 1;
}
