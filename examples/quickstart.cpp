/**
 * @file
 * Quickstart: the page-overlay access semantics in five minutes.
 *
 * Builds the simulated system, walks through Figure 2 of the paper (a
 * page with both a physical page and an overlay), then compares one
 * divergent write under classic copy-on-write and under overlay-on-write
 * (Figure 3).
 *
 * Build & run:  ./build/examples/quickstart
 */

#include <cstdio>

#include "system/system.hh"

using namespace ovl;

int
main()
{
    // A simulated machine with the paper's Table 2 configuration.
    System sys((SystemConfig()));
    Asid proc = sys.createProcess();

    // ----- Figure 2: overlay access semantics ---------------------------
    // Map one zero-backed, overlay-enabled page: reads see zeroes until
    // a line is written, at which point only that line moves into the
    // page's overlay.
    const Addr page = 0x10000;
    sys.mapZeroOverlay(proc, page, kPageSize);

    double v1 = 1.5, v3 = 3.5;
    sys.poke(proc, page + 1 * kLineSize, &v1, sizeof(v1)); // line 1
    sys.poke(proc, page + 3 * kLineSize, &v3, sizeof(v3)); // line 3

    std::printf("Figure 2 semantics: OBitVector = ");
    BitVector64 obv = sys.pageObv(proc, page);
    for (unsigned l = 0; l < 8; ++l)
        std::printf("%d", obv.test(l) ? 1 : 0);
    std::printf("... (%u of 64 lines in the overlay)\n", obv.count());

    for (unsigned l = 0; l < 4; ++l) {
        double value = 0;
        sys.peek(proc, page + l * kLineSize, &value, sizeof(value));
        std::printf("  line %u reads %.1f  (from the %s)\n", l, value,
                    obv.test(l) ? "overlay" : "zero physical page");
    }

    // ----- Figure 3: copy-on-write vs overlay-on-write ------------------
    const Addr heap = 0x100000;
    sys.mapAnon(proc, heap, kPageSize);
    std::uint64_t data = 42;
    sys.poke(proc, heap, &data, sizeof(data));

    // fork() in overlay-on-write mode: the page is shared; the first
    // divergent write moves one 64 B line, not 4 KB.
    Tick t = 0;
    Asid child = sys.fork(proc, ForkMode::OverlayOnWrite, 0, &t);
    sys.access(proc, heap, false, t); // warm the translation

    AccessOutcome outcome;
    Tick before = t + 10'000;
    Tick after = sys.access(proc, heap, true, before, &outcome);
    std::printf("\nOverlay-on-write divergence: %llu cycles, "
                "overlayingWrite=%s, cowFault=%s\n",
                (unsigned long long)(after - before),
                outcome.overlayingWrite ? "yes" : "no",
                outcome.cowFault ? "yes" : "no");

    std::uint64_t parent_val = 0xAAAA;
    sys.poke(proc, heap, &parent_val, sizeof(parent_val));
    std::uint64_t child_sees = 0;
    sys.peek(child, heap, &child_sees, sizeof(child_sees));
    std::printf("Parent wrote 0x%llX; child still reads %llu "
                "(one shared frame + a 64 B overlay)\n",
                (unsigned long long)parent_val,
                (unsigned long long)child_sees);

    // The same write under classic copy-on-write, on a second system
    // with overlays globally disabled (the backward-compatibility
    // switch, §3.3).
    SystemConfig cow_cfg;
    cow_cfg.overlaysEnabled = false;
    System cow_sys(cow_cfg);
    Asid cow_proc = cow_sys.createProcess();
    cow_sys.mapAnon(cow_proc, heap, kPageSize);
    Tick t2 = 0;
    cow_sys.fork(cow_proc, ForkMode::OverlayOnWrite, 0, &t2);
    cow_sys.access(cow_proc, heap, false, t2);
    Tick cow_before = t2 + 10'000;
    Tick cow_after =
        cow_sys.access(cow_proc, heap, true, cow_before, &outcome);
    std::printf("Copy-on-write divergence:    %llu cycles, cowFault=%s "
                "(4 KB copy + remap + shootdown)\n",
                (unsigned long long)(cow_after - cow_before),
                outcome.cowFault ? "yes" : "no");

    std::printf("\nMemory: overlay machinery uses %llu B of OMS for the"
                " three diverged lines.\n",
                (unsigned long long)sys.overlayManager().omsBytesInUse());
    return 0;
}
