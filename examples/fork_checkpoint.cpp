/**
 * @file
 * Process checkpointing, two ways (§5.1 and §5.3.2):
 *
 *  1. fork()-based checkpointing (the paper's §5.1 scenario): the parent
 *     keeps running while the child holds the snapshot; every divergent
 *     write costs a page copy under CoW but one line under overlays.
 *  2. Overlay delta checkpointing (§5.3.2): overlays capture the updates
 *     of each interval, and only the deltas go to the backing store.
 *
 * Build & run:  ./build/examples/fork_checkpoint
 */

#include <cstdio>
#include <vector>

#include "common/random.hh"
#include "cpu/ooo_core.hh"
#include "system/system.hh"
#include "tech/checkpoint.hh"

using namespace ovl;

namespace
{

constexpr Addr kHeap = 0x100000;
constexpr unsigned kPages = 512;

/** A burst of scattered updates (the app running between checkpoints). */
Tick
runInterval(System &sys, OooCore &core, Asid asid, Rng &rng, Tick start)
{
    (void)sys; // the core drives the system; kept for signature clarity
    core.beginEpoch(start);
    for (unsigned i = 0; i < 2'000; ++i) {
        Addr addr = kHeap + rng.below(kPages) * kPageSize +
                    rng.below(kLinesPerPage) * kLineSize;
        core.executeOp(asid, TraceOp::store(addr));
        core.executeOp(asid, TraceOp::compute(30));
    }
    return core.finishEpoch();
}

} // namespace

int
main()
{
    // ----- 1. fork()-based snapshots ------------------------------------
    std::printf("fork()-based checkpointing (parent runs on, child holds"
                " the snapshot):\n");
    for (ForkMode mode : {ForkMode::CopyOnWrite, ForkMode::OverlayOnWrite}) {
        System sys((SystemConfig()));
        OooCore core("core", sys);
        Rng rng(7);
        Asid parent = sys.createProcess();
        sys.mapAnon(parent, kHeap, kPages * kPageSize);
        Tick t = runInterval(sys, core, parent, rng, 0); // warm

        Tick total_interval_cycles = 0;
        for (unsigned snap = 0; snap < 3; ++snap) {
            sys.fork(parent, mode, t, &t);
            sys.markMemoryBaseline();
            t = runInterval(sys, core, parent, rng, t);
            total_interval_cycles += core.epochCycles();
        }
        sys.caches().flushAll(t);
        std::printf("  %-16s %8.2f MB extra, %llu cycles across 3"
                    " intervals\n",
                    mode == ForkMode::CopyOnWrite ? "copy-on-write"
                                                  : "overlay-on-write",
                    double(sys.additionalMemoryBytes()) / double(1_MiB),
                    (unsigned long long)total_interval_cycles);
    }

    // ----- 2. overlay delta checkpointing -------------------------------
    std::printf("\nOverlay delta checkpointing (only the deltas reach the"
                " backing store):\n");
    System sys((SystemConfig()));
    OooCore core("core", sys);
    Rng rng(7);
    Asid proc = sys.createProcess();
    sys.mapAnon(proc, kHeap, kPages * kPageSize);
    tech::CheckpointManager ckpt(sys, proc);
    ckpt.addRange(kHeap, kPages * kPageSize);

    Tick t = 0;
    for (unsigned interval = 0; interval < 3; ++interval) {
        t = runInterval(sys, core, proc, rng, t);
        tech::CheckpointStats stats = ckpt.takeCheckpoint(t);
        t += stats.latency;
        std::printf("  checkpoint %u: %5llu dirty lines on %4llu pages ->"
                    " %7.1f KB delta (page-granular: %7.1f KB, %4.1fx"
                    " more)\n",
                    interval + 1, (unsigned long long)stats.dirtyLines,
                    (unsigned long long)stats.dirtyPages,
                    double(stats.deltaBytes) / 1024.0,
                    double(stats.pageGranBytes) / 1024.0,
                    double(stats.pageGranBytes) /
                        double(stats.deltaBytes));
    }
    std::printf("  total delta written: %.1f KB across %llu"
                " checkpoints\n",
                double(ckpt.totalDeltaBytes()) / 1024.0,
                (unsigned long long)ckpt.checkpointsTaken());

    // ----- 3. crash recovery: roll back to checkpoint 2 -----------------
    std::uint64_t probe_before = 0;
    sys.peek(proc, kHeap, &probe_before, 8);
    std::uint64_t garbage = 0xDEADDEAD;
    sys.poke(proc, kHeap, &garbage, 8); // the "crash" corrupts state
    t = ckpt.restore(2, t);
    std::uint64_t probe_after = 0;
    sys.peek(proc, kHeap, &probe_after, 8);
    std::printf("\nCrash recovery: restored to checkpoint 2 from the"
                " %.1f KB backing store;\nfirst word rolled back"
                " (corrupted 0x%llX -> 0x%llX).\n",
                double(ckpt.backingStoreBytes()) / 1024.0,
                (unsigned long long)garbage,
                (unsigned long long)probe_after);
    (void)probe_before;
    return 0;
}
