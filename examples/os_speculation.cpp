/**
 * @file
 * OS speculation (§2.2's citation of speculative execution in operating
 * systems [10, 36, 57]): the OS lets the application run ahead of a
 * slow, predictable operation (here: a distributed-filesystem read whose
 * content is usually cached and predicted), buffering all memory updates
 * in page overlays. If the prediction verifies, the speculation commits
 * with no copies; if not, the overlays are discarded and execution
 * replays with the real data.
 *
 * Build & run:  ./build/examples/os_speculation
 */

#include <cstdio>
#include <cstring>

#include "system/system.hh"
#include "tech/speculation.hh"

using namespace ovl;

namespace
{

constexpr Addr kState = 0x100000;         // application state
constexpr std::uint64_t kStateLen = 64 * kPageSize;
constexpr Tick kSlowIoLatency = 2'000'000; // ~0.75 ms at 2.67 GHz

/** The application's work that depends on the I/O result. */
Tick
runDependentWork(System &sys, Asid proc, std::uint32_t io_value, Tick t)
{
    for (unsigned i = 0; i < 2'000; ++i) {
        std::uint64_t v = io_value + i;
        t = sys.write(proc, kState + (Addr(i) * 1337 % kStateLen & ~7ull),
                      &v, 8, t);
    }
    return t;
}

} // namespace

int
main()
{
    System sys((SystemConfig()));
    Asid proc = sys.createProcess();
    sys.mapAnon(proc, kState, kStateLen);

    const std::uint32_t predicted = 42; // what the OS guesses
    for (std::uint32_t actual : {42u, 17u}) {
        bool hit = actual == predicted;
        std::printf("--- I/O returns %u (prediction %s) ---\n", actual,
                    hit ? "correct" : "WRONG");

        // Speculate: run the dependent work immediately on the guess,
        // with every store buffered in overlays.
        tech::SpeculativeRegion spec(sys, proc);
        spec.begin(kState, kStateLen);
        Tick spec_done = runDependentWork(sys, proc, predicted, 0);
        std::printf("  speculated through %llu lines of updates in %llu"
                    " cycles while the I/O was in flight\n",
                    (unsigned long long)spec.speculativeLines(),
                    (unsigned long long)spec_done);

        // The I/O completes; the OS verifies the prediction.
        Tick io_done = kSlowIoLatency;
        if (hit) {
            tech::SpeculationStats st =
                spec.commit(std::max(spec_done, io_done));
            std::printf("  committed %llu pages at t=%llu: the I/O"
                        " latency was fully hidden\n",
                        (unsigned long long)st.speculativePages,
                        (unsigned long long)(std::max(spec_done, io_done) +
                                             st.resolveLatency));
        } else {
            spec.abort(io_done);
            Tick replay_done = runDependentWork(sys, proc, actual, io_done);
            std::printf("  aborted and replayed with the real value;"
                        " done at t=%llu (no stale state leaked)\n",
                        (unsigned long long)replay_done);
        }

        // Sanity: the state reflects exactly one consistent execution.
        std::uint64_t w0 = 0;
        sys.peek(proc, kState + (0 * 1337 % kStateLen & ~7ull), &w0, 8);
        std::printf("  state[0] = %llu (expected %u)\n\n",
                    (unsigned long long)w0, hit ? predicted : actual);
    }
    return 0;
}
