/**
 * @file
 * Virtualizing speculation with overlays (§5.3.3): a software
 * transaction whose speculative writes are buffered in page overlays.
 * Unlike cache-based transactional memory, an eviction of speculative
 * state does not abort the transaction — the overlay absorbs it — so
 * the write set can exceed the cache hierarchy (unbounded speculation).
 *
 * Build & run:  ./build/examples/speculation_tx
 */

#include <cstdio>
#include <vector>

#include "common/random.hh"
#include "system/system.hh"
#include "tech/speculation.hh"

using namespace ovl;

namespace
{

constexpr Addr kBase = 0x200000;
constexpr std::uint64_t kSpan = 128 * kPageSize; // 512 KB write set

/** Sum of the first @p n counters (functional check). */
std::uint64_t
sumCounters(System &sys, Asid asid, unsigned n)
{
    std::uint64_t sum = 0;
    for (unsigned i = 0; i < n; ++i) {
        std::uint64_t v = 0;
        sys.peek(asid, kBase + Addr(i) * kLineSize, &v, sizeof(v));
        sum += v;
    }
    return sum;
}

} // namespace

int
main()
{
    System sys((SystemConfig()));
    Asid asid = sys.createProcess();
    sys.mapAnon(asid, kBase, kSpan);

    // Initialize 1000 counters to 100 each.
    for (unsigned i = 0; i < 1000; ++i) {
        std::uint64_t v = 100;
        sys.poke(asid, kBase + Addr(i) * kLineSize, &v, sizeof(v));
    }
    std::printf("Initial state: sum of 1000 counters = %llu\n",
                (unsigned long long)sumCounters(sys, asid, 1000));

    // ----- Transaction 1: runs to completion and commits ----------------
    tech::SpeculativeRegion tx1(sys, asid);
    tx1.begin(kBase, kSpan);
    Tick t = 0;
    for (unsigned i = 0; i < 1000; ++i) {
        std::uint64_t v = 0;
        sys.peek(asid, kBase + Addr(i) * kLineSize, &v, sizeof(v));
        v += 1;
        t = sys.write(asid, kBase + Addr(i) * kLineSize, &v, sizeof(v), t);
    }
    std::printf("\nTx1 wrote %llu speculative lines (L1 holds %u)...\n",
                (unsigned long long)tx1.speculativeLines(), 1024);
    tech::SpeculationStats commit = tx1.commit(t);
    std::printf("Tx1 committed %llu lines across %llu pages in %llu"
                " cycles.\n",
                (unsigned long long)commit.speculativeLines,
                (unsigned long long)commit.speculativePages,
                (unsigned long long)commit.resolveLatency);
    std::printf("Sum after commit = %llu (expected %u)\n",
                (unsigned long long)sumCounters(sys, asid, 1000),
                100 * 1000 + 1000);

    // ----- Transaction 2: conflicts and aborts --------------------------
    tech::SpeculativeRegion tx2(sys, asid);
    tx2.begin(kBase, kSpan);
    t = 0;
    // A large, cache-overflowing speculative write set: every line of
    // the 512 KB region (8192 lines >> L1's 1024).
    for (Addr a = kBase; a < kBase + kSpan; a += kLineSize) {
        std::uint64_t v = 0xDEAD;
        t = sys.write(asid, a, &v, sizeof(v), t);
    }
    std::printf("\nTx2 wrote %llu speculative lines (%.0fx the L1"
                " capacity) — still speculative.\n",
                (unsigned long long)tx2.speculativeLines(),
                double(tx2.speculativeLines()) / 1024.0);
    tech::SpeculationStats abort_stats = tx2.abort(t);
    std::printf("Tx2 aborted; %llu lines discarded in %llu cycles.\n",
                (unsigned long long)abort_stats.speculativeLines,
                (unsigned long long)abort_stats.resolveLatency);
    std::uint64_t sum = sumCounters(sys, asid, 1000);
    std::printf("Sum after abort = %llu (unchanged: %s)\n",
                (unsigned long long)sum,
                sum == 100 * 1000 + 1000 ? "yes" : "NO - BUG");
    return sum == 100 * 1000 + 1000 ? 0 : 1;
}
