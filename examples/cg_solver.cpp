/**
 * @file
 * Conjugate-gradient solver on an overlay-represented sparse matrix —
 * the kind of iterative-solver workload the paper's sparse-computation
 * technique targets (§5.2). Every CG iteration runs one SpMV through the
 * simulated machine using the overlay computation model; the same system
 * instance is reused, so the overlay lines stay cache/OMS-resident
 * across iterations (unlike a software format that re-streams index
 * arrays each time).
 *
 * Build & run:  ./build/examples/cg_solver
 */

#include <cmath>
#include <cstdio>
#include <vector>

#include "cpu/ooo_core.hh"
#include "sparse/overlay_matrix.hh"
#include "sparse/spmv.hh"

using namespace ovl;

namespace
{

/** A symmetric positive-definite banded system (1-D Poisson + shift). */
CooMatrix
poissonMatrix(std::uint32_t n)
{
    CooMatrix coo;
    coo.name = "poisson1d";
    coo.rows = n;
    coo.cols = n;
    for (std::uint32_t i = 0; i < n; ++i) {
        coo.entries.push_back({i, i, 4.0});
        if (i > 0)
            coo.entries.push_back({i, i - 1, -1.0});
        if (i + 1 < n)
            coo.entries.push_back({i, i + 1, -1.0});
    }
    coo.canonicalize();
    return coo;
}

double
dot(const std::vector<double> &a, const std::vector<double> &b)
{
    double sum = 0;
    for (std::size_t i = 0; i < a.size(); ++i)
        sum += a[i] * b[i];
    return sum;
}

} // namespace

int
main()
{
    constexpr std::uint32_t kN = 512;
    CooMatrix coo = poissonMatrix(kN);
    MatrixStats stats = analyzeMatrix(coo, kLineSize);
    std::printf("System: %ux%u SPD banded matrix, %llu non-zeros,"
                " L=%.2f\n",
                kN, kN, (unsigned long long)coo.nnz(), stats.locality);

    // One simulated machine for the whole solve.
    System sys((SystemConfig()));
    OooCore core("core", sys);
    Asid asid = sys.createProcess();
    SpmvAddrs addrs;
    std::vector<double> zeros(kN, 0.0);
    installVectors(sys, asid, addrs, zeros, kN);
    OverlayMatrix matrix(sys, asid, addrs.aBase);
    matrix.build(coo);

    // Solve A x = b for b = A * ones (so the exact solution is ones).
    std::vector<double> ones(kN, 1.0);
    std::vector<double> b = spmvReference(coo, ones);

    std::vector<double> x(kN, 0.0);
    std::vector<double> r = b; // residual (x0 = 0)
    std::vector<double> p = r;
    double rr = dot(r, r);
    double rr0 = rr;

    Tick t = 0;
    unsigned iters = 0;
    std::printf("\n%6s %14s %14s\n", "iter", "rel. residual",
                "sim cycles");
    while (rr > 1e-18 * rr0 && iters < 200) {
        // Ap = A * p through the simulated overlay engine. The vector p
        // changes every iteration, so re-install it functionally.
        for (std::uint32_t i = 0; i < kN; ++i)
            sys.poke(asid, addrs.xBase + Addr(i) * 8, &p[i], 8);
        SpmvResult res = spmvOverlay(sys, core, matrix, addrs, p, t);
        t = res.cycles + t;

        double alpha = rr / dot(p, res.y);
        for (std::uint32_t i = 0; i < kN; ++i) {
            x[i] += alpha * p[i];
            r[i] -= alpha * res.y[i];
        }
        double rr_next = dot(r, r);
        double beta = rr_next / rr;
        for (std::uint32_t i = 0; i < kN; ++i)
            p[i] = r[i] + beta * p[i];
        rr = rr_next;
        ++iters;
        if (iters % 25 == 0 || rr <= 1e-18 * rr0) {
            std::printf("%6u %14.3e %14llu\n", iters,
                        std::sqrt(rr / rr0), (unsigned long long)t);
        }
    }

    double max_err = 0;
    for (std::uint32_t i = 0; i < kN; ++i)
        max_err = std::max(max_err, std::fabs(x[i] - 1.0));
    std::printf("\nConverged in %u iterations; max |x - 1| = %.2e;"
                " %llu simulated cycles total.\n",
                iters, max_err, (unsigned long long)t);
    return max_err < 1e-6 ? 0 : 1;
}
