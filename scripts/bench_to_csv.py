#!/usr/bin/env python3
"""Convert overlaysim bench outputs into CSV for plotting.

Usage:
    build/bench/fig10_spmv_overlay_vs_csr | scripts/bench_to_csv.py fig10
    build/bench/fig08_fork_memory         | scripts/bench_to_csv.py fig08
    build/bench/fig09_fork_performance    | scripts/bench_to_csv.py fig09
    build/bench/fig11_line_size_sweep     | scripts/bench_to_csv.py fig11

Reads the bench's stdout on stdin and writes CSV to stdout. Only data
rows are converted; headers/summaries are dropped.
"""

import re
import sys


def fig10(lines):
    print("matrix,L,perf_vs_csr,mem_vs_csr")
    row = re.compile(r"^(\S+)\s+([\d.]+)\s+([\d.]+)\s+([\d.]+)\s*$")
    for line in lines:
        m = row.match(line)
        if m:
            print(",".join(m.groups()))


def fig08(lines):
    print("benchmark,type,cow_mb,oow_mb,reduction_pct")
    row = re.compile(
        r"^(\w+)\s+(\d)\s+([\d.]+)\s+([\d.]+)\s+(-?[\d.]+)%\s*$")
    for line in lines:
        m = row.match(line)
        if m:
            print(",".join(m.groups()))


def fig09(lines):
    print("benchmark,type,cow_cpi,oow_cpi,speedup")
    row = re.compile(
        r"^(\w+)\s+(\d)\s+([\d.]+)\s+([\d.]+)\s+([\d.]+)x\s*$")
    for line in lines:
        m = row.match(line)
        if m:
            print(",".join(m.groups()))


def fig11(lines):
    header_written = False
    row = re.compile(r"^(\S+)\s+([\d.]+)\s+([\d.]+)((?:\s+[\d.]+)+)\s*$")
    for line in lines:
        m = row.match(line)
        if not m:
            continue
        blocks = m.group(4).split()
        if not header_written:
            cols = ",".join(f"block{i}" for i in range(len(blocks)))
            print(f"matrix,L,csr,{cols}")
            header_written = True
        print(f"{m.group(1)},{m.group(2)},{m.group(3)}," +
              ",".join(blocks))


CONVERTERS = {
    "fig10": fig10,
    "fig08": fig08,
    "fig09": fig09,
    "fig11": fig11,
}


def main():
    if len(sys.argv) != 2 or sys.argv[1] not in CONVERTERS:
        sys.stderr.write(__doc__)
        return 2
    CONVERTERS[sys.argv[1]](sys.stdin.read().splitlines())
    return 0


if __name__ == "__main__":
    sys.exit(main())
