#!/usr/bin/env python3
"""Render StatsSampler JSONL streams as CSV or ASCII sparklines.

Usage:
    scripts/stats_plot.py samples.jsonl                  # list columns
    scripts/stats_plot.py samples.jsonl --stat dram.reads
    scripts/stats_plot.py samples.jsonl --csv out.csv [--run mcf/oow]
    scripts/stats_plot.py samples.jsonl --sparkline [--run mcf/oow]

Input is the `--stats-out` stream of `overlaysim forkbench` or
`host_throughput`: one JSON object per line, each with a "tick" key, an
optional "run" label, and one key per sampled scalar. A file may
interleave several runs (the forkbench suite streams all benchmarks
into one file); `--run` selects one, otherwise each run is rendered
separately.

With no mode flag the script lists the runs and stat columns it found.
--stat prints one column as `tick value` pairs plus a sparkline.
--csv writes a wide CSV (tick + one column per stat) per selected run.
--sparkline draws a one-line unicode sparkline per stat, scaled to that
stat's own min/max over the run (flat lines mean a constant stat).
"""

import argparse
import json
import sys

SPARK_CHARS = " ▁▂▃▄▅▆▇█"


def load_runs(path):
    """Parse JSONL into {run_label: [record, ...]}, preserving order."""
    runs = {}
    with open(path) as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError as e:
                sys.exit(f"{path}:{lineno}: bad JSON record: {e}")
            if "tick" not in rec:
                sys.exit(f"{path}:{lineno}: record has no 'tick' key")
            label = rec.get("run", "")
            runs.setdefault(label, []).append(rec)
    return runs


def stat_columns(records):
    """Stat keys in first-seen order (tick/run excluded)."""
    cols = []
    seen = set()
    for rec in records:
        for key in rec:
            if key in ("tick", "run") or key in seen:
                continue
            seen.add(key)
            cols.append(key)
    return cols


def sparkline(values, width=60):
    if not values:
        return ""
    if len(values) > width:
        # Downsample by bucket-mean so long runs still fit one line.
        bucketed = []
        for b in range(width):
            lo = b * len(values) // width
            hi = max(lo + 1, (b + 1) * len(values) // width)
            chunk = values[lo:hi]
            bucketed.append(sum(chunk) / len(chunk))
        values = bucketed
    lo, hi = min(values), max(values)
    span = hi - lo
    if span == 0:
        return SPARK_CHARS[1] * len(values)
    out = []
    for v in values:
        idx = 1 + int((v - lo) / span * (len(SPARK_CHARS) - 2))
        out.append(SPARK_CHARS[min(idx, len(SPARK_CHARS) - 1)])
    return "".join(out)


def csv_quote(field):
    if any(c in field for c in ',"\n'):
        return '"' + field.replace('"', '""') + '"'
    return field


def write_csv(records, cols, out):
    out.write(",".join(["tick"] + [csv_quote(c) for c in cols]) + "\n")
    for rec in records:
        row = [str(rec["tick"])]
        for col in cols:
            v = rec.get(col, "")
            row.append(repr(v) if isinstance(v, float) else str(v))
        out.write(",".join(row) + "\n")


def main():
    ap = argparse.ArgumentParser(
        description="Render StatsSampler JSONL as CSV or sparklines.")
    ap.add_argument("jsonl", help="sampler output (--stats-out FILE)")
    ap.add_argument("--run", help="select one run label")
    ap.add_argument("--stat", help="print one stat as tick/value pairs")
    ap.add_argument("--csv", metavar="OUT",
                    help="write a wide CSV ('-' for stdout)")
    ap.add_argument("--sparkline", action="store_true",
                    help="one sparkline per stat")
    args = ap.parse_args()

    runs = load_runs(args.jsonl)
    if not runs:
        sys.exit(f"{args.jsonl}: no records")
    if args.run is not None:
        if args.run not in runs:
            known = ", ".join(repr(r) for r in runs) or "(none)"
            sys.exit(f"run {args.run!r} not found; have: {known}")
        runs = {args.run: runs[args.run]}

    if args.csv:
        if len(runs) > 1 and args.csv != "-":
            sys.exit("multiple runs in file; pick one with --run")
        for records in runs.values():
            cols = stat_columns(records)
            if args.csv == "-":
                write_csv(records, cols, sys.stdout)
            else:
                with open(args.csv, "w") as f:
                    write_csv(records, cols, f)
                print(f"wrote {args.csv}: {len(records)} records,"
                      f" {len(cols)} stats")
        return

    for label, records in runs.items():
        title = label or "(unlabelled run)"
        ticks = [rec["tick"] for rec in records]
        print(f"{title}: {len(records)} records,"
              f" ticks {ticks[0]}..{ticks[-1]}")
        cols = stat_columns(records)
        if args.stat:
            if args.stat not in cols:
                print(f"  stat {args.stat!r} not in this run")
                continue
            values = [rec.get(args.stat, 0) for rec in records]
            for tick, v in zip(ticks, values):
                print(f"  {tick} {v}")
            print(f"  {sparkline(values)}")
        elif args.sparkline:
            width = max((len(c) for c in cols), default=0)
            for col in cols:
                values = [rec.get(col, 0) for rec in records]
                lo, hi = min(values), max(values)
                print(f"  {col:<{width}} [{lo:g}, {hi:g}]"
                      f" {sparkline(values)}")
        else:
            for col in cols:
                print(f"  {col}")


if __name__ == "__main__":
    try:
        main()
    except BrokenPipeError:
        # Piping into `head` is a supported use; die quietly.
        sys.exit(0)
