#!/usr/bin/env python3
"""Localize the first divergence between two golden-stats JSON files.

Usage:
    scripts/stats_diff.py a.json b.json

Python twin of `overlaysim stats-diff`: flattens each file's nested
objects into dotted scalar paths (system.accesses, dram.rowHits,
tlb.l1.hits.buckets.3, ...) in file order and reports the first path
whose value differs, plus the total count of differing scalars. Use it
where the binary isn't built — CI log forensics, comparing archived
runs. Inputs come from `overlaysim forkbench <name> --mode cow|oow
--json FILE` (the dumpAllStatsJson grammar: nested objects of numbers
and nulls), but any JSON whose leaves are scalars works.

Exit codes match the C++ verb: 0 identical, 1 differing, 2 unreadable
or unparseable input.
"""

import json
import sys
from collections import OrderedDict


def flatten(value, path, out):
    """Depth-first flatten into an ordered {dotted-path: leaf} map."""
    if isinstance(value, dict):
        for key, child in value.items():
            flatten(child, f"{path}.{key}" if path else key, out)
    elif isinstance(value, list):
        for i, child in enumerate(value):
            flatten(child, f"{path}.{i}" if path else str(i), out)
    else:
        out[path] = value


def load(path):
    try:
        with open(path) as f:
            doc = json.load(f, object_pairs_hook=OrderedDict)
    except (OSError, ValueError) as err:
        print(f"stats_diff: {path}: {err}", file=sys.stderr)
        sys.exit(2)
    out = OrderedDict()
    flatten(doc, "", out)
    return out


def fmt(value):
    if value is None:
        return "null"
    return repr(value)


def main():
    if len(sys.argv) != 3:
        print("usage: stats_diff.py <a.json> <b.json>", file=sys.stderr)
        return 2
    a = load(sys.argv[1])
    b = load(sys.argv[2])

    first = None
    differing = 0
    compared = 0
    for path, av in a.items():
        if path not in b:
            differing += 1
            if first is None:
                first = (path, av, None, "only in a")
            continue
        compared += 1
        bv = b.pop(path)
        if av != bv:
            differing += 1
            if first is None:
                first = (path, av, bv, None)
    for path, bv in b.items():
        differing += 1
        if first is None:
            first = (path, None, bv, "only in b")

    if first is None:
        print(f"stats identical: {compared} scalars compared")
        return 0
    path, av, bv, note = first
    if note:
        print(f"first divergence: {path} ({note})")
    else:
        print(f"first divergence: {path}")
        print(f"  a: {fmt(av)}")
        print(f"  b: {fmt(bv)}")
    print(f"{differing} differing scalar(s) ({compared} compared in "
          f"both files)")
    return 1


if __name__ == "__main__":
    sys.exit(main())
