#!/usr/bin/env python3
"""Diff two BENCH_throughput.json files and flag regressions.

Usage:
    scripts/bench_compare.py baseline.json candidate.json [--threshold 5]

Compares host throughput (Maccess_per_s) per workload and prints the
delta. A workload whose throughput drops by more than the threshold
(default 5%) is a regression; any change in simulated_ticks is a
determinism break (the optimizations this harness guards must not move
the timing model by a single tick). Exits non-zero on either.
"""

import argparse
import json
import sys


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("candidate")
    ap.add_argument("--threshold", type=float, default=5.0,
                    help="regression threshold in percent (default 5)")
    args = ap.parse_args()

    with open(args.baseline) as f:
        base = json.load(f)
    with open(args.candidate) as f:
        cand = json.load(f)

    failed = False
    print(f"{'workload':<14}{'base MA/s':>12}{'cand MA/s':>12}"
          f"{'delta':>9}  notes")
    for name in base:
        if name not in cand:
            print(f"{name:<14}{'':>12}{'missing':>12}")
            failed = True
            continue
        b, c = base[name], cand[name]
        bm, cm = b["Maccess_per_s"], c["Maccess_per_s"]
        delta = (cm - bm) / bm * 100.0
        notes = []
        if delta < -args.threshold:
            notes.append(f"REGRESSION (> {args.threshold:g}% slower)")
            failed = True
        if (b.get("simulated_ticks") is not None
                and c.get("simulated_ticks") is not None
                and b["accesses"] == c["accesses"]
                and b["simulated_ticks"] != c["simulated_ticks"]):
            notes.append("DETERMINISM BREAK (simulated_ticks moved)")
            failed = True
        print(f"{name:<14}{bm:>12.3f}{cm:>12.3f}{delta:>+8.1f}%  "
              f"{'; '.join(notes)}")
    for name in cand:
        if name not in base:
            print(f"{name:<14}{'(new)':>12}"
                  f"{cand[name]['Maccess_per_s']:>12.3f}")

    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
