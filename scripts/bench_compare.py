#!/usr/bin/env python3
"""Diff two BENCH_throughput.json files and flag regressions.

Usage:
    scripts/bench_compare.py baseline.json candidate.json [--threshold 5]

Compares host throughput (Maccess_per_s) and per-workload wall time
(wall_seconds) per workload and prints the deltas. A workload whose
throughput drops — or whose wall time grows — by more than the
threshold (default 5%) is a regression; any change in simulated_ticks
is a determinism break (the optimizations this harness guards must not
move the timing model by a single tick). Exits non-zero on either.

Entries whose name starts with "_" (the "_run" run-level record) are
not workloads and are skipped. Files written before the per-workload
wall_seconds field stamped the run-level total onto every workload;
wall comparison against such a baseline is still printed but reflects
that older meaning.

Workload sets may differ between the two files: a workload present in
only one side is reported as "missing in baseline" / "missing in
candidate" and fails the comparison, rather than raising. If the two
runs used different --jobs counts, host throughput is not comparable
(workloads contend for cores when jobs > 1), so the throughput gate is
skipped with a note — the simulated_ticks determinism check still
applies.

--normalize divides every per-workload ratio by the geometric-mean
ratio across the workloads common to both files before applying the
threshold. Absolute Maccess_per_s depends on the host (a CI runner is
not the machine that produced the committed baseline), but the *shape*
of the profile does not: one workload slowing down relative to the
others survives normalization, a uniformly slower machine does not.
Use it to gate CI runs against a committed reference.
"""

import argparse
import json
import math
import sys


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("candidate")
    ap.add_argument("--threshold", type=float, default=5.0,
                    help="regression threshold in percent (default 5)")
    ap.add_argument("--normalize", action="store_true",
                    help="divide each ratio by the geomean ratio over "
                         "common workloads (cross-host comparisons)")
    args = ap.parse_args()

    with open(args.baseline) as f:
        base = json.load(f)
    with open(args.candidate) as f:
        cand = json.load(f)

    # Cross-host comparison check: the "_run" record carries host/build
    # metadata (CPU, cores, compiler, flags, build type). Absolute
    # throughput is not comparable across different hosts or builds, so
    # warn unless --normalize is already compensating. Older files
    # predate the "host" field; nothing to check then.
    base_host = base.get("_run", {}).get("host")
    cand_host = cand.get("_run", {}).get("host")
    if (base_host is not None and cand_host is not None
            and base_host != cand_host and not args.normalize):
        diff_keys = sorted(k for k in set(base_host) | set(cand_host)
                           if base_host.get(k) != cand_host.get(k))
        print(f"warning: host/build metadata differs "
              f"({', '.join(diff_keys)}); absolute throughput is not "
              f"comparable across hosts -- consider --normalize",
              file=sys.stderr)

    # Run-level entries are not workloads.
    base = {n: v for n, v in base.items() if not n.startswith("_")}
    cand = {n: v for n, v in cand.items() if not n.startswith("_")}

    def geomean(ratios):
        return math.exp(sum(math.log(r) for r in ratios) / len(ratios))

    norm = 1.0
    wall_norm = 1.0
    if args.normalize:
        ratios = [cand[n]["Maccess_per_s"] / base[n]["Maccess_per_s"]
                  for n in base
                  if n in cand
                  and base[n].get("Maccess_per_s")
                  and cand[n].get("Maccess_per_s")]
        if ratios:
            norm = geomean(ratios)
            print(f"normalizing by geomean ratio {norm:.3f} "
                  f"({len(ratios)} workloads)")
        wall_ratios = [cand[n]["wall_seconds"] / base[n]["wall_seconds"]
                       for n in base
                       if n in cand
                       and base[n].get("wall_seconds")
                       and cand[n].get("wall_seconds")]
        if wall_ratios:
            wall_norm = geomean(wall_ratios)

    failed = False
    print(f"{'workload':<16}{'base MA/s':>12}{'cand MA/s':>12}"
          f"{'delta':>9}{'wall delta':>11}  notes")
    # Stable iteration over the union: baseline order first, then any
    # candidate-only workloads in their own order.
    names = list(base) + [n for n in cand if n not in base]
    for name in names:
        if name not in cand:
            print(f"{name:<16}{'':>12}{'':>12}{'':>9}{'':>11}  "
                  f"missing in candidate")
            failed = True
            continue
        if name not in base:
            cm = cand[name].get("Maccess_per_s", float("nan"))
            print(f"{name:<16}{'':>12}{cm:>12.3f}{'':>9}{'':>11}  "
                  f"missing in baseline (new workload)")
            failed = True
            continue
        b, c = base[name], cand[name]
        bm = b.get("Maccess_per_s")
        cm = c.get("Maccess_per_s")
        notes = []
        # Older files predate the jobs field; treat absent as jobs=1.
        b_jobs = b.get("jobs", 1)
        c_jobs = c.get("jobs", 1)
        if bm is None or cm is None:
            delta_text = f"{'n/a':>9}"
            notes.append("Maccess_per_s missing")
            failed = True
        else:
            delta = (cm / norm - bm) / bm * 100.0
            delta_text = f"{delta:>+8.1f}%"
            if b_jobs != c_jobs:
                notes.append(f"jobs differ ({b_jobs} vs {c_jobs}); "
                             f"throughput gate skipped")
            elif delta < -args.threshold:
                notes.append(f"REGRESSION (> {args.threshold:g}% slower)")
                failed = True
        # Per-workload wall time: slower is positive delta, and beyond
        # the threshold it is a regression under the same jobs rule.
        bw = b.get("wall_seconds")
        cw = c.get("wall_seconds")
        if bw and cw:
            wall_delta = (cw / wall_norm - bw) / bw * 100.0
            wall_text = f"{wall_delta:>+10.1f}%"
            if b_jobs == c_jobs and wall_delta > args.threshold:
                notes.append(f"WALL REGRESSION (> {args.threshold:g}% "
                             f"slower)")
                failed = True
        else:
            wall_text = f"{'n/a':>11}"
        if (b.get("simulated_ticks") is not None
                and c.get("simulated_ticks") is not None
                and b.get("accesses") == c.get("accesses")
                and b["simulated_ticks"] != c["simulated_ticks"]):
            notes.append("DETERMINISM BREAK (simulated_ticks moved)")
            failed = True
        bm_text = f"{bm:>12.3f}" if bm is not None else f"{'n/a':>12}"
        cm_text = f"{cm:>12.3f}" if cm is not None else f"{'n/a':>12}"
        print(f"{name:<16}{bm_text}{cm_text}{delta_text}{wall_text}  "
              f"{'; '.join(notes)}")

    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
