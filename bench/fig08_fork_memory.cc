/**
 * @file
 * Figure 8: additional memory consumed after a fork — copy-on-write vs
 * overlay-on-write, 15 benchmarks in 3 write-working-set types plus the
 * mean. Also reports the headline memory-capacity reduction (the paper
 * measures 53% on average).
 *
 * Warm-start execution (DESIGN.md §11): each benchmark simulates its
 * warmup prefix once, then both fork modes run from a clone of the warm
 * machine — the prefix is mode-independent, so the rows are byte-
 * identical to cold runs at half the warmup cost. The 15 benchmark
 * items are independent and fan out over the parallel sweep runner
 * (`--jobs N`, OVL_JOBS); output is byte-identical to the serial run.
 *
 * `--trace-out FILE [--trace-limit N]` writes one Chrome trace-event
 * JSON per sweep row (FILE with a `.rowK` suffix — see
 * trace::rowFilePath), so rows don't overwrite each other's file. The
 * trace sink is process-global, so tracing forces --jobs 1.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "sim/parallel.hh"
#include "sim/trace.hh"
#include "system/config.hh"
#include "workload/forkbench.hh"

using namespace ovl;

int
main(int argc, char **argv)
{
    unsigned jobs = defaultJobs();
    std::string trace_path;
    std::uint64_t trace_limit = 0;
    for (int i = 1; i < argc; ++i) {
        auto value = [&](const char *flag) -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s: %s needs a value\n", argv[0],
                             flag);
                std::exit(1);
            }
            return argv[++i];
        };
        if (std::strcmp(argv[i], "--progress") == 0) {
            setProgressEnabled(true);
        } else if (std::strcmp(argv[i], "--jobs") == 0) {
            jobs = unsigned(std::strtoul(value("--jobs"), nullptr, 10));
            if (jobs == 0) {
                std::fprintf(stderr, "%s: invalid --jobs value\n", argv[0]);
                return 1;
            }
        } else if (std::strcmp(argv[i], "--trace-out") == 0) {
            trace_path = value("--trace-out");
        } else if (std::strcmp(argv[i], "--trace-limit") == 0) {
            trace_limit = std::strtoull(value("--trace-limit"), nullptr, 10);
        } else {
            std::fprintf(stderr,
                         "usage: %s [--jobs N] [--progress]"
                         " [--trace-out FILE [--trace-limit N]]\n",
                         argv[0]);
            return 1;
        }
    }
    if (!trace_path.empty() && jobs != 1) {
        // The trace sink is process-global and start()/stop() require no
        // workers running, so per-row sinks need the serial path.
        std::fprintf(stderr, "%s: --trace-out forces --jobs 1\n", argv[0]);
        jobs = 1;
    }

    std::printf("Figure 8: additional memory consumed after a fork (MB)\n");
    std::printf("(synthetic SPEC-like workloads; see DESIGN.md section 3"
                " for scaling)\n\n");
    std::printf("%-10s %-5s %14s %16s %11s\n", "benchmark", "type",
                "copy-on-write", "overlay-on-write", "reduction");
    std::printf("%.*s\n", 60,
                "------------------------------------------------------"
                "------");

    struct Pair
    {
        ForkBenchResult cow, oow;
    };
    const std::vector<ForkBenchParams> &suite = forkBenchSuite();
    std::vector<Pair> results = parallelMap(
        suite.size(),
        [&suite, &trace_path, trace_limit](std::size_t i) {
            // Per-row sink: row i traces to FILE.rowI (jobs is 1 when
            // tracing, so start/stop see no concurrent workers).
            if (!trace_path.empty())
                trace::start(trace::rowFilePath(trace_path, i),
                             trace_limit);
            ForkBenchWarmState warm =
                prepareForkBenchWarmState(suite[i], SystemConfig{});
            Pair pair;
            pair.cow =
                runForkBenchFromWarmState(warm, ForkMode::CopyOnWrite);
            pair.oow =
                runForkBenchFromWarmState(warm, ForkMode::OverlayOnWrite);
            if (!trace_path.empty())
                trace::stop();
            return pair;
        },
        jobs,
        [&suite](std::size_t i) { return suite[i].name; });

    double cow_sum = 0, oow_sum = 0, reduction_sum = 0;
    unsigned count = 0, last_type = 0;
    for (std::size_t i = 0; i < suite.size(); ++i) {
        const ForkBenchParams &params = suite[i];
        if (params.type != last_type) {
            std::printf("-- Type %u --\n", params.type);
            last_type = params.type;
        }
        const ForkBenchResult &cow = results[i].cow;
        const ForkBenchResult &oow = results[i].oow;
        double reduction =
            cow.additionalMemoryMB > 0
                ? 100.0 * (1.0 - oow.additionalMemoryMB /
                                     cow.additionalMemoryMB)
                : 0.0;
        std::printf("%-10s %-5u %14.2f %16.2f %10.1f%%\n",
                    params.name.c_str(), params.type,
                    cow.additionalMemoryMB, oow.additionalMemoryMB,
                    reduction);
        cow_sum += cow.additionalMemoryMB;
        oow_sum += oow.additionalMemoryMB;
        reduction_sum += reduction;
        ++count;
    }

    std::printf("%.*s\n", 60,
                "------------------------------------------------------"
                "------");
    std::printf("%-10s %-5s %14.2f %16.2f %10.1f%%\n", "mean", "-",
                cow_sum / count, oow_sum / count, reduction_sum / count);
    std::printf("\nPaper: overlay-on-write reduces additional memory by"
                " 53%% on average.\n");
    std::printf("Measured: %.1f%% mean per-benchmark reduction"
                " (%.1f%% of total bytes).\n",
                reduction_sum / count, 100.0 * (1.0 - oow_sum / cow_sum));
    if (!trace_path.empty()) {
        std::printf("per-row traces written to %s .. %s\n",
                    trace::rowFilePath(trace_path, 0).c_str(),
                    trace::rowFilePath(trace_path, suite.size() - 1)
                        .c_str());
    }
    return 0;
}
