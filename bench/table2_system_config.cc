/**
 * @file
 * Table 2: the simulated system configuration. Prints the configuration
 * the System instantiates and validates the component latencies against
 * the table by direct measurement, then reproduces the §4.5 hardware
 * cost accounting (94.5 KB).
 */

#include <cstdio>

#include "cache/replacement.hh"
#include "overlay/hw_cost.hh"
#include "system/system.hh"

using namespace ovl;

int
main()
{
    SystemConfig cfg;
    System sys(cfg);

    std::printf("Table 2: simulated system configuration\n\n");
    std::printf("Processor       %.2f GHz, issue width %u, %u-entry"
                " instruction window, %llu B lines\n",
                cfg.coreGhz, cfg.issueWidth, cfg.instructionWindow,
                (unsigned long long)kLineSize);
    std::printf("TLB             %llu KB pages; L1 %u-entry %u-way"
                " (%llu cycle); L2 %u-entry (%llu cycles);"
                " miss = %llu cycles\n",
                (unsigned long long)(kPageSize / 1024),
                cfg.tlb.l1.entries, cfg.tlb.l1.associativity,
                (unsigned long long)cfg.tlb.l1.hitLatency,
                cfg.tlb.l2.entries,
                (unsigned long long)cfg.tlb.l2.hitLatency,
                (unsigned long long)cfg.tlb.walkLatency);
    auto cache_row = [](const char *name, const CacheParams &p) {
        std::printf("%-15s %llu KB, %u-way, tag/data = %llu/%llu cycles,"
                    " %s lookup, %s\n",
                    name, (unsigned long long)(p.sizeBytes / 1024),
                    p.associativity, (unsigned long long)p.tagLatency,
                    (unsigned long long)p.dataLatency,
                    p.parallelTagData ? "parallel" : "serial",
                    replPolicyName(p.replPolicy));
    };
    cache_row("L1 cache", cfg.caches.l1);
    cache_row("L2 cache", cfg.caches.l2);
    cache_row("L3 cache", cfg.caches.l3);
    std::printf("Prefetcher      stream, %u entries, degree %u,"
                " distance %u, trains on L2 misses, fills L3\n",
                cfg.caches.prefetcher.numStreams,
                cfg.caches.prefetcher.degree,
                cfg.caches.prefetcher.distance);
    std::printf("DRAM controller open row, FR-FCFS drain-when-full,"
                " %u-entry write buffer, %u-entry OMT cache,"
                " miss = %llu cycles\n",
                cfg.writeBufferEntries, cfg.overlay.omtCache.entries,
                (unsigned long long)cfg.overlay.omtCache.missLatency);
    std::printf("DRAM            DDR3-1066, 1 channel, 1 rank, %u banks,"
                " 8 B bus, burst %u, %llu KB row buffer\n\n",
                cfg.dram.numBanks, cfg.dram.burstLength,
                (unsigned long long)(cfg.dram.rowBufferBytes / 1024));

    // ----- validate component latencies by measurement ------------------
    std::printf("Validation (measured on the instantiated system):\n");
    Asid asid = sys.createProcess();
    sys.mapAnon(asid, 0x100000, kPageSize);

    AccessOutcome out;
    sys.access(asid, 0x100000, false, 0, &out); // cold: walk + DRAM
    Tick l1_hit = sys.access(asid, 0x100000, false, 10'000) - 10'000;
    std::printf("  L1 hit                     %4llu cycles"
                " (expected %llu: TLB %llu + L1 %llu)\n",
                (unsigned long long)l1_hit,
                (unsigned long long)(cfg.tlb.l1.hitLatency +
                                     cfg.caches.l1.hitLatency()),
                (unsigned long long)cfg.tlb.l1.hitLatency,
                (unsigned long long)cfg.caches.l1.hitLatency());

    sys.tlb().flush();
    AccessOutcome walk_out;
    Tick walk = sys.access(asid, 0x100000, false, 20'000, &walk_out) -
                20'000;
    std::printf("  TLB-miss access            %4llu cycles (walk %llu"
                " charged; tlbWalk=%s)\n",
                (unsigned long long)walk,
                (unsigned long long)cfg.tlb.walkLatency,
                walk_out.tlbWalk ? "yes" : "no");

    // ----- §4.5 hardware cost --------------------------------------------
    HwCost cost = computeHwCost(HwCostParams{});
    std::printf("\nSection 4.5 hardware storage cost:\n");
    std::printf("  OMT cache (64 x 512 b)     %6.1f KB\n",
                double(cost.omtCacheBytes) / 1024.0);
    std::printf("  TLB OBitVector extension   %6.1f KB\n",
                double(cost.tlbExtensionBytes) / 1024.0);
    std::printf("  cache tag widening         %6.1f KB\n",
                double(cost.cacheTagExtensionBytes) / 1024.0);
    std::printf("  total                      %6.1f KB"
                "  (paper: 94.5 KB)\n",
                double(cost.totalBytes()) / 1024.0);
    return 0;
}
