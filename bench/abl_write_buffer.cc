/**
 * @file
 * Ablation: the DRAM controller's write buffer (Table 2: 64 entries,
 * drain when full [34]). Sweeps the buffer size on the most
 * write-intensive workload (lbm streaming) under both fork modes —
 * overlay-on-write generates OMS write traffic (data + segment metadata)
 * that the buffer must absorb.
 */

#include <cstdio>

#include "workload/forkbench.hh"

using namespace ovl;

int
main()
{
    std::printf("Ablation: DRAM write-buffer entries (lbm, streaming"
                " writes)\n\n");
    std::printf("%10s %16s %16s\n", "entries", "CoW CPI", "OoW CPI");
    std::printf("%.*s\n", 44, "--------------------------------------------");

    ForkBenchParams params = forkBenchByName("lbm");
    params.postForkInstructions = 2'000'000;

    for (unsigned entries : {4u, 16u, 64u, 256u}) {
        SystemConfig cfg;
        cfg.writeBufferEntries = entries;
        ForkBenchResult cow =
            runForkBench(params, ForkMode::CopyOnWrite, cfg);
        ForkBenchResult oow =
            runForkBench(params, ForkMode::OverlayOnWrite, cfg);
        std::printf("%10u %16.3f %16.3f%s\n", entries, cow.cpi, oow.cpi,
                    entries == 64 ? "   <- Table 2" : "");
    }

    std::printf("\nUnder drain-when-full [34], buffer size trades drain"
                " frequency against drain\nlength: small buffers drain"
                " often but block reads briefly; large buffers\naccumulate"
                " long read-blocking drains. Overlay-on-write's extra OMS"
                " write\ntraffic (data + segment metadata) shifts with the"
                " same trend, so the choice\nis mechanism-neutral —"
                " Table 2's 64 entries sit in the flat middle.\n");
    return 0;
}
