/**
 * @file
 * Ablation: the DRAM controller's write buffer (Table 2: 64 entries,
 * drain when full [34]). Sweeps the buffer size on the most
 * write-intensive workload (lbm streaming) under both fork modes —
 * overlay-on-write generates OMS write traffic (data + segment metadata)
 * that the buffer must absorb.
 *
 * The four buffer sizes are independent System pairs and fan out over
 * the parallel sweep runner (`--jobs N`, OVL_JOBS). The buffer depth is
 * structural (it shapes the DRAM controller), so warm states cannot be
 * shared across sizes — but within a size the warmup prefix is
 * mode-independent, so each size warms up once and forks both modes
 * from the warm machine (DESIGN.md §11).
 */

#include <cstdio>
#include <iterator>
#include <vector>

#include "sim/parallel.hh"
#include "workload/forkbench.hh"

using namespace ovl;

int
main(int argc, char **argv)
{
    unsigned jobs = jobsFromCommandLine(argc, argv);

    std::printf("Ablation: DRAM write-buffer entries (lbm, streaming"
                " writes)\n\n");
    std::printf("%10s %16s %16s\n", "entries", "CoW CPI", "OoW CPI");
    std::printf("%.*s\n", 44, "--------------------------------------------");

    ForkBenchParams params = forkBenchByName("lbm");
    params.postForkInstructions = 2'000'000;

    const unsigned entries[] = {4u, 16u, 64u, 256u};

    struct Row
    {
        ForkBenchResult cow, oow;
    };
    std::vector<Row> rows = parallelMap(
        std::size(entries),
        [&entries, &params](std::size_t i) {
            SystemConfig cfg;
            cfg.writeBufferEntries = entries[i];
            ForkBenchWarmState warm =
                prepareForkBenchWarmState(params, cfg);
            Row row;
            row.cow =
                runForkBenchFromWarmState(warm, ForkMode::CopyOnWrite);
            row.oow =
                runForkBenchFromWarmState(warm, ForkMode::OverlayOnWrite);
            return row;
        },
        jobs,
        [&entries](std::size_t i) {
            return "wbuf=" + std::to_string(entries[i]);
        });

    for (std::size_t i = 0; i < rows.size(); ++i) {
        std::printf("%10u %16.3f %16.3f%s\n", entries[i], rows[i].cow.cpi,
                    rows[i].oow.cpi,
                    entries[i] == 64 ? "   <- Table 2" : "");
    }

    std::printf("\nUnder drain-when-full [34], buffer size trades drain"
                " frequency against drain\nlength: small buffers drain"
                " often but block reads briefly; large buffers\naccumulate"
                " long read-blocking drains. Overlay-on-write's extra OMS"
                " write\ntraffic (data + segment metadata) shifts with the"
                " same trend, so the choice\nis mechanism-neutral —"
                " Table 2's 64 entries sit in the flat middle.\n");
    return 0;
}
