/**
 * @file
 * Ablation: core microarchitecture sensitivity. The paper evaluates on a
 * single-issue core with a 64-entry window (Table 2); this sweep shows
 * that overlay-on-write's advantage is not an artifact of that choice —
 * wider issue and deeper windows help both mechanisms, and the OoW edge
 * persists (the CoW costs are serializing OS events, not issue-bound
 * work).
 *
 * The six grid points are independent System pairs and fan out over the
 * parallel sweep runner (`--jobs N`, OVL_JOBS).
 */

#include <cstdio>
#include <iterator>
#include <vector>

#include "sim/parallel.hh"
#include "workload/forkbench.hh"

using namespace ovl;

int
main(int argc, char **argv)
{
    unsigned jobs = jobsFromCommandLine(argc, argv);

    std::printf("Ablation: issue width x instruction window (mcf"
                " post-fork)\n\n");
    std::printf("%6s %8s %12s %12s %9s\n", "issue", "window", "CoW CPI",
                "OoW CPI", "speedup");
    std::printf("%.*s\n", 52,
                "----------------------------------------------------");

    ForkBenchParams params = forkBenchByName("mcf");
    params.postForkInstructions = 1'500'000;

    struct Point
    {
        unsigned width;
        unsigned window;
    };
    const Point points[] = {{1, 16}, {1, 64}, {1, 256},
                            {2, 64}, {4, 64}, {4, 256}};

    struct Row
    {
        ForkBenchResult cow, oow;
    };
    std::vector<Row> rows = parallelMap(
        std::size(points),
        [&points, &params](std::size_t i) {
            SystemConfig cfg;
            cfg.issueWidth = points[i].width;
            cfg.instructionWindow = points[i].window;
            Row row;
            row.cow = runForkBench(params, ForkMode::CopyOnWrite, cfg);
            row.oow = runForkBench(params, ForkMode::OverlayOnWrite, cfg);
            return row;
        },
        jobs,
        [&points](std::size_t i) {
            return "width=" + std::to_string(points[i].width) + "/window=" +
                   std::to_string(points[i].window);
        });

    for (std::size_t i = 0; i < rows.size(); ++i) {
        const Point &pt = points[i];
        const Row &row = rows[i];
        std::printf("%6u %8u %12.3f %12.3f %8.3fx%s\n", pt.width,
                    pt.window, row.cow.cpi, row.oow.cpi,
                    row.cow.cpi / row.oow.cpi,
                    pt.width == 1 && pt.window == 64 ? "  <- Table 2"
                                                     : "");
    }
    std::printf("\nThe overlay-on-write speedup survives every core"
                " configuration: faults,\ncopies and shootdowns serialize"
                " regardless of issue width, while the ORE\nmessage stays"
                " window-overlapped.\n");
    return 0;
}
