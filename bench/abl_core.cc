/**
 * @file
 * Ablation: core microarchitecture sensitivity. The paper evaluates on a
 * single-issue core with a 64-entry window (Table 2); this sweep shows
 * that overlay-on-write's advantage is not an artifact of that choice —
 * wider issue and deeper windows help both mechanisms, and the OoW edge
 * persists (the CoW costs are serializing OS events, not issue-bound
 * work).
 */

#include <cstdio>

#include "workload/forkbench.hh"

using namespace ovl;

int
main()
{
    std::printf("Ablation: issue width x instruction window (mcf"
                " post-fork)\n\n");
    std::printf("%6s %8s %12s %12s %9s\n", "issue", "window", "CoW CPI",
                "OoW CPI", "speedup");
    std::printf("%.*s\n", 52,
                "----------------------------------------------------");

    ForkBenchParams params = forkBenchByName("mcf");
    params.postForkInstructions = 1'500'000;

    struct Point
    {
        unsigned width;
        unsigned window;
    };
    const Point points[] = {{1, 16}, {1, 64}, {1, 256},
                            {2, 64}, {4, 64}, {4, 256}};
    for (const Point &pt : points) {
        SystemConfig cfg;
        cfg.issueWidth = pt.width;
        cfg.instructionWindow = pt.window;
        ForkBenchResult cow =
            runForkBench(params, ForkMode::CopyOnWrite, cfg);
        ForkBenchResult oow =
            runForkBench(params, ForkMode::OverlayOnWrite, cfg);
        std::printf("%6u %8u %12.3f %12.3f %8.3fx%s\n", pt.width,
                    pt.window, cow.cpi, oow.cpi, cow.cpi / oow.cpi,
                    pt.width == 1 && pt.window == 64 ? "  <- Table 2"
                                                     : "");
    }
    std::printf("\nThe overlay-on-write speedup survives every core"
                " configuration: faults,\ncopies and shootdowns serialize"
                " regardless of issue width, while the ORE\nmessage stays"
                " window-overlapped.\n");
    return 0;
}
