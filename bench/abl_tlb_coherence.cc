/**
 * @file
 * Ablation: TLB coherence for the cache-line remap (§4.3.3). The paper's
 * `overlaying read exclusive` message updates one OBitVector bit in every
 * TLB through the coherence network; the naive alternative is a full TLB
 * shootdown per overlaying write. Measures one overlaying write under
 * both protocols as the TLB count scales.
 */

#include <cstdio>

#include "system/system.hh"

using namespace ovl;

namespace
{

/** Latency of one overlaying write on a fresh two-process system. */
Tick
measureOverlayingWrite(const SystemConfig &cfg, bool use_shootdown)
{
    System sys(cfg);
    Asid parent = sys.createProcess();
    sys.mapAnon(parent, 0x100000, kPageSize);
    Tick t = sys.access(parent, 0x100000, false, 0); // warm translation
    sys.fork(parent, ForkMode::OverlayOnWrite, t, &t);
    sys.access(parent, 0x100000, false, t); // re-warm after fork

    AccessOutcome out;
    Tick done = sys.access(parent, 0x100000, true, t + 100'000, &out);
    Tick lat = done - (t + 100'000);
    if (use_shootdown) {
        // The naive protocol pays a full shootdown instead of the ORE.
        lat += cfg.tlbShootdownCycles() - cfg.oreMessageCycles;
    }
    return lat;
}

} // namespace

int
main()
{
    std::printf("Ablation: overlaying-read-exclusive vs TLB shootdown"
                " (one overlaying write)\n\n");
    std::printf("%6s %22s %22s %8s\n", "TLBs", "ORE message (paper)",
                "shootdown per write", "ratio");
    std::printf("%.*s\n", 62,
                "------------------------------------------------------"
                "--------");

    for (unsigned tlbs : {1u, 2u, 4u, 8u, 16u}) {
        SystemConfig cfg;
        cfg.numTlbs = tlbs;
        Tick ore = measureOverlayingWrite(cfg, false);
        Tick shoot = measureOverlayingWrite(cfg, true);
        std::printf("%6u %15llu cycles %15llu cycles %7.1fx\n", tlbs,
                    (unsigned long long)ore, (unsigned long long)shoot,
                    double(shoot) / double(ore));
    }

    std::printf("\nThe ORE cost is flat in the TLB count (one coherence"
                " broadcast);\nshootdowns grow with every sharer"
                " [6, 52, 54] — the reason the paper keeps\nTLBs"
                " coherent through the cache-coherence network"
                " (section 4.3.3).\n");
    return 0;
}
