/**
 * @file
 * Ablation: TLB coherence for the cache-line remap (§4.3.3). The paper's
 * `overlaying read exclusive` message updates one OBitVector bit in every
 * TLB through the coherence network; the naive alternative is a full TLB
 * shootdown per overlaying write. Measures one overlaying write under
 * both protocols as the TLB count scales.
 *
 * The five TLB counts are independent System pairs and fan out over the
 * parallel sweep runner (`--jobs N`, OVL_JOBS).
 */

#include <cstdio>
#include <iterator>
#include <vector>

#include "sim/parallel.hh"
#include "system/system.hh"

using namespace ovl;

namespace
{

/** Latency of one overlaying write on a fresh two-process system. */
Tick
measureOverlayingWrite(const SystemConfig &cfg, bool use_shootdown)
{
    System sys(cfg);
    Asid parent = sys.createProcess();
    sys.mapAnon(parent, 0x100000, kPageSize);
    Tick t = sys.access(parent, 0x100000, false, 0); // warm translation
    sys.fork(parent, ForkMode::OverlayOnWrite, t, &t);
    sys.access(parent, 0x100000, false, t); // re-warm after fork

    AccessOutcome out;
    Tick done = sys.access(parent, 0x100000, true, t + 100'000, &out);
    Tick lat = done - (t + 100'000);
    if (use_shootdown) {
        // The naive protocol pays a full shootdown instead of the ORE.
        lat += cfg.tlbShootdownCycles() - cfg.oreMessageCycles;
    }
    return lat;
}

} // namespace

int
main(int argc, char **argv)
{
    unsigned jobs = jobsFromCommandLine(argc, argv);

    std::printf("Ablation: overlaying-read-exclusive vs TLB shootdown"
                " (one overlaying write)\n\n");
    std::printf("%6s %22s %22s %8s\n", "TLBs", "ORE message (paper)",
                "shootdown per write", "ratio");
    std::printf("%.*s\n", 62,
                "------------------------------------------------------"
                "--------");

    const unsigned tlb_counts[] = {1u, 2u, 4u, 8u, 16u};

    struct Row
    {
        Tick ore, shoot;
    };
    std::vector<Row> rows = parallelMap(
        std::size(tlb_counts),
        [&tlb_counts](std::size_t i) {
            SystemConfig cfg;
            cfg.numTlbs = tlb_counts[i];
            Row row;
            row.ore = measureOverlayingWrite(cfg, false);
            row.shoot = measureOverlayingWrite(cfg, true);
            return row;
        },
        jobs,
        [&tlb_counts](std::size_t i) {
            return "tlbs=" + std::to_string(tlb_counts[i]);
        });

    for (std::size_t i = 0; i < rows.size(); ++i) {
        std::printf("%6u %15llu cycles %15llu cycles %7.1fx\n",
                    tlb_counts[i], (unsigned long long)rows[i].ore,
                    (unsigned long long)rows[i].shoot,
                    double(rows[i].shoot) / double(rows[i].ore));
    }

    std::printf("\nThe ORE cost is flat in the TLB count (one coherence"
                " broadcast);\nshootdowns grow with every sharer"
                " [6, 52, 54] — the reason the paper keeps\nTLBs"
                " coherent through the cache-coherence network"
                " (section 4.3.3).\n");
    return 0;
}
