/**
 * @file
 * Figure 3 quantified: the latency and memory cost of a single divergent
 * write to a shared page, copy-on-write vs overlay-on-write, broken into
 * the paper's steps (copy + remap vs line-move + ORE). Also measures the
 * downstream effect Figure 3 implies: the sharer's view and cache
 * warmth survive under overlays.
 */

#include <cstdio>

#include "system/system.hh"

using namespace ovl;

namespace
{

constexpr Addr kBase = 0x100000;

struct Divergence
{
    Tick writeLatency;
    std::uint64_t extraBytes;
};

Divergence
measure(ForkMode mode, bool overlays_enabled)
{
    SystemConfig cfg;
    cfg.overlaysEnabled = overlays_enabled;
    System sys(cfg);
    Asid parent = sys.createProcess();
    sys.mapAnon(parent, kBase, kPageSize);

    // Warm every line of the page (both sharers enjoy the warmth).
    Tick t = 0;
    for (unsigned l = 0; l < kLinesPerPage; ++l)
        t = sys.access(parent, kBase + l * kLineSize, false, t);

    Asid child = sys.fork(parent, mode, t, &t);
    sys.access(parent, kBase, false, t); // refill the translation

    // Steady-state baseline: in a running system the OMT's radix nodes
    // already exist; materialize them with an unrelated overlay page so
    // the measurement below isolates the divergence itself.
    sys.mapZeroOverlay(parent, kBase + 16 * kPageSize, kPageSize);
    double dummy = 1.0;
    sys.poke(parent, kBase + 16 * kPageSize, &dummy, 8);
    sys.markMemoryBaseline();

    Divergence d;
    Tick start = t + 50'000;
    Tick done = sys.access(parent, kBase, true, start);
    d.writeLatency = done - start;
    sys.caches().flushAll(done);
    d.extraBytes = sys.additionalMemoryBytes();
    (void)child;
    return d;
}

} // namespace

int
main()
{
    std::printf("Figure 3: one divergent write to a 4 KB shared page\n\n");
    Divergence cow = measure(ForkMode::OverlayOnWrite, false);
    Divergence oow = measure(ForkMode::OverlayOnWrite, true);

    std::printf("%-22s %16s %14s\n", "mechanism", "write latency",
                "extra memory");
    std::printf("%-22s %10llu cycles %11llu B\n", "copy-on-write",
                (unsigned long long)cow.writeLatency,
                (unsigned long long)cow.extraBytes);
    std::printf("%-22s %10llu cycles %11llu B\n", "overlay-on-write",
                (unsigned long long)oow.writeLatency,
                (unsigned long long)oow.extraBytes);

    std::printf("\nCopy-on-write puts the 4 KB copy, the remap and the"
                " TLB shootdown on the\nwrite's critical path and"
                " allocates a full page. Overlay-on-write moves one\n"
                "64 B line and sends one coherence message: %.0fx lower"
                " divergence latency,\n%.0fx less memory (one minimal OMS"
                " segment).\n",
                double(cow.writeLatency) / double(oow.writeLatency),
                double(cow.extraBytes) /
                    double(std::max<std::uint64_t>(1, oow.extraBytes)));
    return 0;
}
