/**
 * @file
 * Figure 10: sparse-matrix-vector multiplication with the overlay
 * representation, normalized to CSR [26], across 87 matrices sorted by
 * non-zero value locality L. Reproduces the paper's series (relative
 * performance and relative memory capacity) and its summary statistics:
 * the extremes (poisson3Db, raefsky4), the L ~ 4.5 crossover guidance,
 * and the count of matrices where overlays win.
 */

#include <cstdio>
#include <vector>

#include "common/random.hh"
#include "cpu/ooo_core.hh"
#include "sim/parallel.hh"
#include "sparse/csr.hh"
#include "sparse/overlay_matrix.hh"
#include "sparse/spmv.hh"
#include "workload/matrixgen.hh"

using namespace ovl;

namespace
{

struct Row
{
    std::string name;
    double locality = 0;
    double relPerf = 0; ///< CSR cycles / overlay cycles (higher = better)
    double relMem = 0;  ///< overlay bytes / CSR bytes (lower = better)
};

Row
runOne(const MatrixSpec &spec)
{
    CooMatrix coo = generateMatrix(spec);
    std::vector<double> x(coo.cols);
    Rng rng(77);
    for (double &v : x)
        v = rng.uniform();

    SpmvAddrs addrs;

    // Overlay representation.
    System ovl_sys((SystemConfig()));
    OooCore ovl_core("core", ovl_sys);
    Asid ovl_asid = ovl_sys.createProcess();
    installVectors(ovl_sys, ovl_asid, addrs, x, coo.rows);
    OverlayMatrix matrix(ovl_sys, ovl_asid, addrs.aBase);
    matrix.build(coo);
    ovl_sys.resetStats();
    SpmvResult overlay = spmvOverlay(ovl_sys, ovl_core, matrix, addrs, x, 0);

    // CSR.
    System csr_sys((SystemConfig()));
    OooCore csr_core("core", csr_sys);
    Asid csr_asid = csr_sys.createProcess();
    installVectors(csr_sys, csr_asid, addrs, x, coo.rows);
    CsrMatrix csr = CsrMatrix::fromCoo(coo);
    installCsr(csr_sys, csr_asid, addrs, csr);
    csr_sys.quiesce();
    SpmvResult csr_res = spmvCsr(csr_sys, csr_core, csr_asid, addrs, csr,
                                 x, 0);

    Row row;
    row.name = coo.name;
    row.locality = analyzeMatrix(coo, kLineSize).locality;
    row.relPerf = double(csr_res.cycles) / double(overlay.cycles);
    row.relMem = double(matrix.storedBytes()) / double(csr.bytes());
    return row;
}

} // namespace

int
main(int argc, char **argv)
{
    unsigned jobs = jobsFromCommandLine(argc, argv);

    std::printf("Figure 10: SpMV with page overlays vs CSR, 87 matrices"
                " sorted by L\n");
    std::printf("(synthetic suite standing in for the UF collection; see"
                " DESIGN.md section 3)\n\n");
    std::printf("%-22s %6s %18s %18s\n", "matrix", "L",
                "perf (x CSR)", "memory (x CSR)");
    std::printf("%.*s\n", 68,
                "------------------------------------------------------"
                "--------------");

    // 87 independent matrix evaluations (two Systems each) fanned out
    // over the sweep runner; rows render in L order afterwards.
    const std::vector<MatrixSpec> suite = sparseSuite87();
    std::vector<Row> rows = parallelMap(
        suite.size(),
        [&suite](std::size_t i) { return runOne(suite[i]); }, jobs,
        [&suite](std::size_t i) { return suite[i].name; });

    unsigned perf_wins = 0, mem_wins = 0, both_wins = 0, high_l = 0;
    double high_perf_sum = 0, high_mem_sum = 0;
    for (const Row &row : rows) {
        std::printf("%-22s %6.2f %18.3f %18.3f\n", row.name.c_str(),
                    row.locality, row.relPerf, row.relMem);
        perf_wins += row.relPerf > 1.0;
        mem_wins += row.relMem < 1.0;
        both_wins += row.relPerf > 1.0 && row.relMem < 1.0;
        if (row.locality > 4.5) {
            ++high_l;
            high_perf_sum += row.relPerf;
            high_mem_sum += row.relMem;
        }
    }

    const Row &lo = rows.front();
    const Row &hi = rows.back();
    std::printf("%.*s\n", 68,
                "------------------------------------------------------"
                "--------------");
    std::printf("\nExtremes (paper: poisson3Db 4.83x memory / 0.30x perf;"
                " raefsky4 0.66x / 1.92x):\n");
    std::printf("  %-12s L=%.2f: %.2fx memory, %.2fx perf\n",
                lo.name.c_str(), lo.locality, lo.relMem, lo.relPerf);
    std::printf("  %-12s L=%.2f: %.2fx memory, %.2fx perf\n",
                hi.name.c_str(), hi.locality, hi.relMem, hi.relPerf);
    std::printf("\nOverlays outperform CSR on %u/87 matrices; use less"
                " memory on %u/87; both on %u/87.\n",
                perf_wins, mem_wins, both_wins);
    std::printf("For the %u matrices with L > 4.5 (paper: 34): mean perf"
                " %.2fx CSR, mean memory %.2fx CSR\n",
                high_l, high_perf_sum / high_l, high_mem_sum / high_l);
    std::printf("(paper reports +27%% performance and -8%% memory for"
                " that group).\n");
    std::printf("\nGuidance: employ CSR at low L, overlays at high L;"
                " the paper draws the line at L ~ 4.5.\n");
    return 0;
}
