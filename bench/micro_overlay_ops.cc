/**
 * @file
 * Microbenchmarks (google-benchmark) of the overlay machinery's host-side
 * costs: OBitVector operations, OMT-cache lookups, OMS segment
 * allocation/release, TLB lookups, cache accesses, and the simulated
 * end-to-end access paths. These measure the simulator, complementing the
 * simulated-cycle numbers the figure benches report.
 */

#include <benchmark/benchmark.h>

#include "common/bitvector64.hh"
#include "common/random.hh"
#include "cpu/ooo_core.hh"
#include "dram/dram.hh"
#include "overlay/oms_allocator.hh"
#include "overlay/overlay_manager.hh"
#include "system/system.hh"
#include "tlb/tlb.hh"

namespace
{

using namespace ovl;

void
BM_BitVectorIterate(benchmark::State &state)
{
    Rng rng(1);
    BitVector64 bv(rng.next());
    for (auto _ : state) {
        unsigned sum = 0;
        for (unsigned i = bv.findFirst(); i < 64; i = bv.findNext(i))
            sum += i;
        benchmark::DoNotOptimize(sum);
    }
}
BENCHMARK(BM_BitVectorIterate);

void
BM_OmtCacheLookup(benchmark::State &state)
{
    OmtCache cache("omtc", OmtCacheParams{});
    Rng rng(2);
    std::uint64_t working_set = std::uint64_t(state.range(0));
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            cache.lookupAllocate(rng.below(working_set)));
    }
}
BENCHMARK(BM_OmtCacheLookup)->Arg(32)->Arg(64)->Arg(4096);

Addr
bumpPage(void *ctx)
{
    return *static_cast<Addr *>(ctx) += kPageSize;
}

void
BM_OmsAllocateRelease(benchmark::State &state)
{
    Addr next = 0;
    OmsAllocator alloc("oms", OmsAllocatorParams{},
                       PageAllocFn{&bumpPage, &next});
    Rng rng(3);
    for (auto _ : state) {
        auto cls = SegClass(rng.below(kNumSegClasses));
        Addr base = alloc.allocate(cls);
        alloc.release(base, cls);
        benchmark::DoNotOptimize(base);
    }
}
BENCHMARK(BM_OmsAllocateRelease);

void
BM_TlbLookup(benchmark::State &state)
{
    TwoLevelTlb tlb("tlb", TlbHierarchyParams{});
    Rng rng(4);
    for (Addr vpn = 0; vpn < 64; ++vpn)
        tlb.fill(1, vpn, TlbEntryData{});
    for (auto _ : state)
        benchmark::DoNotOptimize(tlb.access(1, rng.below(64)));
}
BENCHMARK(BM_TlbLookup);

void
BM_CacheHierarchyAccess(benchmark::State &state)
{
    DramController dram("dram", DramTimingParams{});
    struct Backend : MemBackend
    {
        explicit Backend(DramController &d) : dram(d) {}
        Tick readLine(Addr a, Tick t) override { return dram.read(a, t); }
        Tick writebackLine(Addr a, Tick t) override
        {
            return dram.enqueueWrite(a, t);
        }
        DramController &dram;
    } backend(dram);
    CacheHierarchy hier("h", HierarchyParams{}, backend);
    Rng rng(5);
    Tick t = 0;
    for (auto _ : state) {
        t = hier.access(rng.below(1 << 16) << kLineShift, false, t);
        benchmark::DoNotOptimize(t);
    }
}
BENCHMARK(BM_CacheHierarchyAccess);

void
BM_OverlayingWrite(benchmark::State &state)
{
    // Cost of the full overlaying-write path, including system setup
    // amortized over 64 lines per fresh page.
    System sys((SystemConfig()));
    Asid asid = sys.createProcess();
    std::uint64_t pages = 4096;
    sys.mapZeroOverlay(asid, 0x1000'0000, pages * kPageSize);
    Tick t = 0;
    Addr addr = 0x1000'0000;
    for (auto _ : state) {
        t = sys.access(asid, addr, true, t);
        addr += kLineSize;
        if (addr >= 0x1000'0000 + pages * kPageSize) {
            state.PauseTiming();
            sys.quiesce();
            for (Addr va = 0x1000'0000;
                 va < 0x1000'0000 + pages * kPageSize; va += kPageSize) {
                sys.promoteOverlay(asid, va, PromoteAction::Discard, 0);
            }
            addr = 0x1000'0000;
            t = 0;
            state.ResumeTiming();
        }
        benchmark::DoNotOptimize(t);
    }
}
BENCHMARK(BM_OverlayingWrite);

void
BM_SimulatedReadAccess(benchmark::State &state)
{
    System sys((SystemConfig()));
    OooCore core("core", sys);
    Asid asid = sys.createProcess();
    sys.mapAnon(asid, 0x100000, 512 * kPageSize);
    Rng rng(6);
    core.beginEpoch(0);
    for (auto _ : state) {
        Addr addr = 0x100000 + rng.below(512) * kPageSize +
                    rng.below(kLinesPerPage) * kLineSize;
        core.executeOp(asid, TraceOp::load(addr));
    }
    benchmark::DoNotOptimize(core.currentCycle());
}
BENCHMARK(BM_SimulatedReadAccess);

} // namespace

BENCHMARK_MAIN();
