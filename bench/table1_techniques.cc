/**
 * @file
 * Table 1: the seven fine-grained memory-management techniques the
 * framework enables. Each is exercised end to end on the simulated
 * system and reports the benefit the paper's table claims over its
 * state-of-the-art baseline.
 *
 * The seven techniques are independent (each builds its own Systems),
 * so they fan out over the parallel sweep runner (`--jobs N`); each
 * returns its report line as a string and the table renders in order,
 * byte-identical to the serial run.
 */

#include <cstdarg>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "sim/parallel.hh"

#include "common/random.hh"
#include "cpu/ooo_core.hh"
#include "sparse/csr.hh"
#include "sparse/overlay_matrix.hh"
#include "sparse/spmv.hh"
#include "system/system.hh"
#include "tech/checkpoint.hh"
#include "tech/dedup.hh"
#include "tech/metadata.hh"
#include "tech/overlay_on_write.hh"
#include "tech/speculation.hh"
#include "tech/superpage.hh"
#include "workload/forkbench.hh"
#include "workload/matrixgen.hh"

using namespace ovl;

namespace
{

constexpr Addr kBase = 0x100000;

std::string
format(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

std::string
format(const char *fmt, ...)
{
    char buf[512];
    va_list args;
    va_start(args, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, args);
    va_end(args);
    return buf;
}

std::string
technique1OverlayOnWrite()
{
    // Fork-based sharing; one divergent write per page in both modes.
    ForkBenchParams params = forkBenchByName("mcf");
    params.warmupInstructions = 50'000;
    params.postForkInstructions = 400'000;
    params.footprintPages /= 8;
    params.hotPages /= 8;
    params.dirtyPages /= 8;
    ForkBenchResult cow =
        runForkBench(params, ForkMode::CopyOnWrite, SystemConfig{});
    ForkBenchResult oow =
        runForkBench(params, ForkMode::OverlayOnWrite, SystemConfig{});
    return format("1. Overlay-on-write      vs copy-on-write:        "
                "%.2fx less memory, %.2fx faster (mcf slice)\n",
                cow.additionalMemoryMB / oow.additionalMemoryMB,
                cow.cpi / oow.cpi);
}

std::string
technique2SparseDataStructures()
{
    MatrixSpec spec;
    spec.family = MatrixFamily::BlockDense;
    spec.blockRunLines = 128;
    spec.targetL = 7.5;
    spec.nnz = 40'000;
    CooMatrix coo = generateMatrix(spec);
    std::vector<double> x(coo.cols, 1.0);
    SpmvAddrs addrs;

    System sys((SystemConfig()));
    OooCore core("core", sys);
    Asid asid = sys.createProcess();
    installVectors(sys, asid, addrs, x, coo.rows);
    OverlayMatrix matrix(sys, asid, addrs.aBase);
    matrix.build(coo);
    SpmvResult overlay = spmvOverlay(sys, core, matrix, addrs, x, 0);

    System sys2((SystemConfig()));
    OooCore core2("core", sys2);
    Asid asid2 = sys2.createProcess();
    installVectors(sys2, asid2, addrs, x, coo.rows);
    CsrMatrix csr = CsrMatrix::fromCoo(coo);
    installCsr(sys2, asid2, addrs, csr);
    sys2.quiesce();
    SpmvResult csr_res = spmvCsr(sys2, core2, asid2, addrs, csr, x, 0);

    // Dynamic update cost: one overlay insert vs CSR element shifting.
    std::uint64_t csr_moved = csr.insert(1, 9, 3.0);
    std::uint64_t before = sys.overlayingWrites();
    matrix.insert(1, 9, 3.0, 0);
    return format("2. Sparse structures     vs CSR (L=7.5):          "
                "%.2fx faster SpMV; insert = %llu overlaying write vs "
                "%llu CSR elements moved\n",
                double(csr_res.cycles) / double(overlay.cycles),
                (unsigned long long)(sys.overlayingWrites() - before),
                (unsigned long long)csr_moved);
}

std::string
technique3Dedup()
{
    System sys((SystemConfig()));
    Asid asid = sys.createProcess();
    constexpr unsigned kPages = 64;
    sys.mapAnon(asid, kBase, kPages * kPageSize);
    // 8 content groups; members differ from their base in 2 lines.
    Rng rng(11);
    std::vector<std::pair<Asid, Addr>> pages;
    for (unsigned p = 0; p < kPages; ++p) {
        std::vector<std::uint8_t> content(kPageSize,
                                          std::uint8_t(0x10 + p % 8));
        if (p >= 8) {
            content[rng.below(kPageSize)] ^= 0xFF;
            content[rng.below(kPageSize)] ^= 0xFF;
        }
        sys.poke(asid, kBase + p * kPageSize, content.data(), kPageSize);
        pages.push_back({asid, kBase + p * kPageSize});
    }
    tech::DedupEngine engine(sys, tech::DedupParams{});
    tech::DedupReport report = engine.deduplicate(pages);
    return format("3. Fine-grain dedup      vs Difference Engine:    "
                "%llu/%llu pages merged, %.1f KB net saved, patched pages"
                " stay directly accessible\n",
                (unsigned long long)report.pagesDeduplicated,
                (unsigned long long)report.pagesScanned,
                double(report.bytesSaved()) / 1024.0);
}

std::string
technique4Checkpointing()
{
    System sys((SystemConfig()));
    OooCore core("core", sys);
    Asid asid = sys.createProcess();
    constexpr unsigned kPages = 256;
    sys.mapAnon(asid, kBase, kPages * kPageSize);
    tech::CheckpointManager ckpt(sys, asid);
    ckpt.addRange(kBase, kPages * kPageSize);

    // An interval that dirties a few lines on a few pages.
    Rng rng(3);
    core.beginEpoch(0);
    for (unsigned i = 0; i < 400; ++i) {
        Addr addr = kBase + rng.below(kPages / 4) * kPageSize +
                    rng.below(kLinesPerPage) * kLineSize;
        core.executeOp(asid, TraceOp::store(addr));
        core.executeOp(asid, TraceOp::compute(20));
    }
    Tick t = core.finishEpoch();
    tech::CheckpointStats stats = ckpt.takeCheckpoint(t);
    return format("4. Checkpointing         vs page-granular backup: "
                "%.1f KB delta vs %.1f KB (%.1fx less checkpoint"
                " bandwidth)\n",
                double(stats.deltaBytes) / 1024.0,
                double(stats.pageGranBytes) / 1024.0,
                double(stats.pageGranBytes) / double(stats.deltaBytes));
}

std::string
technique5Speculation()
{
    System sys((SystemConfig()));
    Asid asid = sys.createProcess();
    // Far more speculative state than the whole cache hierarchy holds.
    std::uint64_t span = 256 * kPageSize; // 1 MB; L1 is 64 KB
    sys.mapAnon(asid, kBase, span);
    tech::SpeculativeRegion region(sys, asid);
    region.begin(kBase, span);
    Tick t = 0;
    for (Addr a = kBase; a < kBase + span; a += kLineSize)
        t = sys.access(asid, a, true, t);
    std::uint64_t lines = region.speculativeLines();
    region.abort(t);
    return format("5. Virtualized spec.     vs cache-bounded schemes: "
                "%llu speculative lines (%.0fx the L1 capacity) buffered"
                " and aborted cleanly\n",
                (unsigned long long)lines,
                double(lines * kLineSize) / double(64 * 1024));
}

std::string
technique6Metadata()
{
    System sys((SystemConfig()));
    Asid asid = sys.createProcess();
    sys.mapAnon(asid, kBase, 16 * kPageSize);
    tech::TaintTracker taint(sys, asid);
    taint.enable(kBase, 16 * kPageSize);
    taint.setTaint(kBase, 64, true, 0);
    Tick t = taint.taintedCopy(kBase + 8 * kPageSize, kBase, 64, 0);
    bool propagated = taint.isTainted(kBase + 8 * kPageSize, 64);
    return format("6. Fine-grain metadata   vs dedicated shadow HW:   "
                "byte-granular taint %s through copies; no"
                " metadata-specific hardware (%.0f cycles/propagating"
                " copy)\n",
                propagated ? "propagates" : "FAILED", double(t));
}

std::string
technique7SuperPages()
{
    System sys((SystemConfig()));
    Asid owner = sys.createProcess();
    Asid clone = sys.createProcess();
    tech::SuperPageManager spm(sys);
    Addr sp = 0x4000'0000;
    spm.mapSuperPage(owner, sp);
    spm.share(owner, clone, sp);
    tech::SuperPageCowStats stats;
    // The clone writes into three segments of the 2 MB page.
    spm.write(clone, sp + 1 * tech::kSegmentSize, 0, &stats);
    spm.write(clone, sp + 17 * tech::kSegmentSize, 10'000, &stats);
    spm.write(clone, sp + 42 * tech::kSegmentSize, 20'000, &stats);
    return format("7. Flexible super-pages  vs rigid 2MB CoW:         "
                "copied %.0f KB instead of %.0f KB; TLB reach"
                " preserved\n",
                double(spm.flexibleBytes()) / 1024.0,
                double(spm.rigidBytes()) / 1024.0);
}

} // namespace

int
main(int argc, char **argv)
{
    unsigned jobs = jobsFromCommandLine(argc, argv);

    std::printf("Table 1: the seven techniques on the page-overlay"
                " framework\n\n");
    std::string (*const techniques[])() = {
        technique1OverlayOnWrite, technique2SparseDataStructures,
        technique3Dedup,          technique4Checkpointing,
        technique5Speculation,    technique6Metadata,
        technique7SuperPages,
    };
    std::vector<std::string> rows = parallelMap(
        std::size(techniques),
        [&techniques](std::size_t i) { return techniques[i](); }, jobs,
        [](std::size_t i) {
            return "technique " + std::to_string(i + 1);
        });
    for (const std::string &row : rows)
        std::fputs(row.c_str(), stdout);
    return 0;
}
