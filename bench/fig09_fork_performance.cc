/**
 * @file
 * Figure 9: performance (cycles per instruction, lower is better) after
 * a fork — copy-on-write vs overlay-on-write across the 15-benchmark
 * suite. The paper measures a 15% average performance improvement.
 *
 * The 30 System runs (15 benchmarks x 2 fork modes) are independent, so
 * they fan out over the parallel sweep runner (`--jobs N`, OVL_JOBS);
 * rows render in suite order afterwards, byte-identical to `--jobs 1`.
 */

#include <cstdio>
#include <vector>

#include "sim/parallel.hh"
#include "system/config.hh"
#include "workload/forkbench.hh"

using namespace ovl;

int
main(int argc, char **argv)
{
    unsigned jobs = jobsFromCommandLine(argc, argv);

    std::printf("Figure 9: CPI after a fork (lower is better)\n\n");
    std::printf("%-10s %-5s %14s %16s %9s\n", "benchmark", "type",
                "copy-on-write", "overlay-on-write", "speedup");
    std::printf("%.*s\n", 58,
                "------------------------------------------------------"
                "----");

    // Item 2i is benchmark i under CoW, item 2i+1 under OoW: one System
    // per item for the best load balance across workers.
    const std::vector<ForkBenchParams> &suite = forkBenchSuite();
    std::vector<ForkBenchResult> results = parallelMap(
        suite.size() * 2,
        [&suite](std::size_t i) {
            ForkMode mode = i % 2 ? ForkMode::OverlayOnWrite
                                  : ForkMode::CopyOnWrite;
            return runForkBench(suite[i / 2], mode, SystemConfig{});
        },
        jobs,
        [&suite](std::size_t i) {
            return suite[i / 2].name + (i % 2 ? "/oow" : "/cow");
        });

    double speedup_sum = 0;
    unsigned count = 0, last_type = 0;
    for (std::size_t i = 0; i < suite.size(); ++i) {
        const ForkBenchParams &params = suite[i];
        if (params.type != last_type) {
            std::printf("-- Type %u --\n", params.type);
            last_type = params.type;
        }
        const ForkBenchResult &cow = results[2 * i];
        const ForkBenchResult &oow = results[2 * i + 1];
        double speedup = cow.cpi / oow.cpi;
        std::printf("%-10s %-5u %14.3f %16.3f %8.3fx\n",
                    params.name.c_str(), params.type, cow.cpi, oow.cpi,
                    speedup);
        speedup_sum += speedup;
        ++count;
    }

    std::printf("%.*s\n", 58,
                "------------------------------------------------------"
                "----");
    std::printf("\nPaper: overlay-on-write improves performance by 15%% on"
                " average;\n       cactus is the one benchmark where"
                " copy-on-write wins (clustered writes).\n");
    std::printf("Measured: %.1f%% mean speedup.\n",
                100.0 * (speedup_sum / count - 1.0));
    return 0;
}
