/**
 * @file
 * Figure 9: performance (cycles per instruction, lower is better) after
 * a fork — copy-on-write vs overlay-on-write across the 15-benchmark
 * suite. The paper measures a 15% average performance improvement.
 */

#include <cstdio>

#include "system/config.hh"
#include "workload/forkbench.hh"

using namespace ovl;

int
main()
{
    std::printf("Figure 9: CPI after a fork (lower is better)\n\n");
    std::printf("%-10s %-5s %14s %16s %9s\n", "benchmark", "type",
                "copy-on-write", "overlay-on-write", "speedup");
    std::printf("%.*s\n", 58,
                "------------------------------------------------------"
                "----");

    double speedup_sum = 0;
    unsigned count = 0, last_type = 0;
    for (const ForkBenchParams &params : forkBenchSuite()) {
        if (params.type != last_type) {
            std::printf("-- Type %u --\n", params.type);
            last_type = params.type;
        }
        ForkBenchResult cow =
            runForkBench(params, ForkMode::CopyOnWrite, SystemConfig{});
        ForkBenchResult oow =
            runForkBench(params, ForkMode::OverlayOnWrite, SystemConfig{});
        double speedup = cow.cpi / oow.cpi;
        std::printf("%-10s %-5u %14.3f %16.3f %8.3fx\n",
                    params.name.c_str(), params.type, cow.cpi, oow.cpi,
                    speedup);
        speedup_sum += speedup;
        ++count;
    }

    std::printf("%.*s\n", 58,
                "------------------------------------------------------"
                "----");
    std::printf("\nPaper: overlay-on-write improves performance by 15%% on"
                " average;\n       cactus is the one benchmark where"
                " copy-on-write wins (clustered writes).\n");
    std::printf("Measured: %.1f%% mean speedup.\n",
                100.0 * (speedup_sum / count - 1.0));
    return 0;
}
