/**
 * @file
 * Figure 9: performance (cycles per instruction, lower is better) after
 * a fork — copy-on-write vs overlay-on-write across the 15-benchmark
 * suite. The paper measures a 15% average performance improvement.
 *
 * Warm-start execution (DESIGN.md §11): in detailed mode each benchmark
 * simulates its warmup prefix once and runs both fork modes from a
 * clone of the warm machine — byte-identical rows at half the warmup
 * cost. The benchmark items are independent, so they fan out over the
 * parallel sweep runner (`--jobs N`, OVL_JOBS); rows render in suite
 * order afterwards, byte-identical to `--jobs 1`.
 *
 * `--sample-interval N` switches the suite to sampled simulation
 * (DESIGN.md §10): each window of N post-fork instructions runs a
 * detailed prefix (`--detail M`, default N/10) and fast-forwards the
 * rest functionally; CPI is extrapolated per window. `--sample-check`
 * additionally runs the full-detail twin of every row and reports the
 * extrapolation error, failing if the mean CPI error exceeds
 * `--sample-check-threshold PCT` (default 5). Sampled mode also prints
 * the host-time split of the post-fork phase (detailed prefix vs
 * functional fast-forward wall seconds) — the measured cost of the
 * detail the sampling skips.
 *
 * `--trace-out FILE [--trace-limit N]` writes one Chrome trace-event
 * JSON per sweep row (FILE with a `.rowK` suffix — see
 * trace::rowFilePath); the process-global sink forces --jobs 1.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "sim/parallel.hh"
#include "sim/trace.hh"
#include "system/config.hh"
#include "workload/forkbench.hh"

using namespace ovl;

int
main(int argc, char **argv)
{
    unsigned jobs = defaultJobs();
    SampledSimParams sampled;
    double check_threshold = 5.0;
    bool check = false;
    std::string trace_path;
    std::uint64_t trace_limit = 0;
    for (int i = 1; i < argc; ++i) {
        auto value = [&](const char *flag) -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s: %s needs a value\n", argv[0],
                             flag);
                std::exit(1);
            }
            return argv[++i];
        };
        if (std::strcmp(argv[i], "--progress") == 0) {
            setProgressEnabled(true);
        } else if (std::strcmp(argv[i], "--jobs") == 0) {
            jobs = unsigned(std::strtoul(value("--jobs"), nullptr, 10));
            if (jobs == 0) {
                std::fprintf(stderr, "%s: invalid --jobs value\n", argv[0]);
                return 1;
            }
        } else if (std::strcmp(argv[i], "--sample-interval") == 0) {
            sampled.intervalInstructions =
                std::strtoull(value("--sample-interval"), nullptr, 10);
        } else if (std::strcmp(argv[i], "--detail") == 0) {
            sampled.detailedInstructions =
                std::strtoull(value("--detail"), nullptr, 10);
        } else if (std::strcmp(argv[i], "--sample-check") == 0) {
            check = true;
        } else if (std::strcmp(argv[i], "--sample-check-threshold") == 0) {
            check_threshold =
                std::strtod(value("--sample-check-threshold"), nullptr);
        } else if (std::strcmp(argv[i], "--trace-out") == 0) {
            trace_path = value("--trace-out");
        } else if (std::strcmp(argv[i], "--trace-limit") == 0) {
            trace_limit = std::strtoull(value("--trace-limit"), nullptr, 10);
        } else {
            std::fprintf(stderr,
                         "usage: %s [--jobs N] [--progress]"
                         " [--trace-out FILE [--trace-limit N]]"
                         " [--sample-interval N [--detail M]"
                         " [--sample-check"
                         " [--sample-check-threshold PCT]]]\n",
                         argv[0]);
            return 1;
        }
    }
    if (check && sampled.intervalInstructions == 0) {
        std::fprintf(stderr, "%s: --sample-check needs --sample-interval\n",
                     argv[0]);
        return 1;
    }
    sampled.compareFull = check;
    if (!trace_path.empty() && jobs != 1) {
        // The trace sink is process-global and start()/stop() require no
        // workers running, so per-row sinks need the serial path.
        std::fprintf(stderr, "%s: --trace-out forces --jobs 1\n", argv[0]);
        jobs = 1;
    }

    const bool sampling = sampled.intervalInstructions != 0;
    std::printf("Figure 9: CPI after a fork (lower is better)%s\n\n",
                sampling ? " [sampled simulation]" : "");
    std::printf("%-10s %-5s %14s %16s %9s\n", "benchmark", "type",
                "copy-on-write", "overlay-on-write", "speedup");
    std::printf("%.*s\n", 58,
                "------------------------------------------------------"
                "----");

    const std::vector<ForkBenchParams> &suite = forkBenchSuite();
    std::vector<ForkBenchResult> results(suite.size() * 2);
    std::vector<ForkBenchSampledResult> sampled_results(
        sampling ? suite.size() * 2 : 0);
    if (sampling) {
        // Sampled mode keeps one System per (benchmark, mode) item: the
        // sampled flow interleaves detailed and functional execution and
        // does not go through the warm-start path.
        parallelMap(
            suite.size() * 2,
            [&](std::size_t i) {
                // Per-row sink: row i traces to FILE.rowI (jobs is 1
                // when tracing, so start/stop see no workers).
                if (!trace_path.empty())
                    trace::start(trace::rowFilePath(trace_path, i),
                                 trace_limit);
                ForkMode mode = i % 2 ? ForkMode::OverlayOnWrite
                                      : ForkMode::CopyOnWrite;
                sampled_results[i] = runForkBenchSampled(
                    suite[i / 2], mode, SystemConfig{}, sampled);
                results[i] = sampled_results[i].sampled;
                if (!trace_path.empty())
                    trace::stop();
                return 0;
            },
            jobs,
            [&suite](std::size_t i) {
                return suite[i / 2].name + (i % 2 ? "/oow" : "/cow");
            });
    } else {
        // Detailed mode: warm up each benchmark once, fork both modes
        // from the warm machine.
        parallelMap(
            suite.size(),
            [&](std::size_t i) {
                if (!trace_path.empty())
                    trace::start(trace::rowFilePath(trace_path, i),
                                 trace_limit);
                ForkBenchWarmState warm =
                    prepareForkBenchWarmState(suite[i], SystemConfig{});
                results[2 * i] = runForkBenchFromWarmState(
                    warm, ForkMode::CopyOnWrite);
                results[2 * i + 1] = runForkBenchFromWarmState(
                    warm, ForkMode::OverlayOnWrite);
                if (!trace_path.empty())
                    trace::stop();
                return 0;
            },
            jobs,
            [&suite](std::size_t i) { return suite[i].name; });
    }

    double speedup_sum = 0;
    unsigned count = 0, last_type = 0;
    for (std::size_t i = 0; i < suite.size(); ++i) {
        const ForkBenchParams &params = suite[i];
        if (params.type != last_type) {
            std::printf("-- Type %u --\n", params.type);
            last_type = params.type;
        }
        const ForkBenchResult &cow = results[2 * i];
        const ForkBenchResult &oow = results[2 * i + 1];
        double speedup = cow.cpi / oow.cpi;
        std::printf("%-10s %-5u %14.3f %16.3f %8.3fx\n",
                    params.name.c_str(), params.type, cow.cpi, oow.cpi,
                    speedup);
        speedup_sum += speedup;
        ++count;
    }

    std::printf("%.*s\n", 58,
                "------------------------------------------------------"
                "----");

    if (sampling) {
        // Host-time attribution of the post-fork phase: wall seconds in
        // the detailed prefixes vs the functional fast-forward. This is
        // host telemetry (varies run to run), never a golden figure.
        double det = 0, ff = 0;
        for (const ForkBenchSampledResult &r : sampled_results) {
            det += r.detailedHostSeconds;
            ff += r.functionalHostSeconds;
        }
        double total = det + ff;
        std::printf("\nHost time, post-fork phase: detailed %.2fs"
                    " (%.0f%%), functional fast-forward %.2fs (%.0f%%)\n",
                    det, total > 0 ? 100.0 * det / total : 0.0, ff,
                    total > 0 ? 100.0 * ff / total : 0.0);
    }

    if (check) {
        std::printf("\nSampled-vs-full extrapolation error (CPI %% / mean"
                    " window %% / max window %%):\n");
        double mean_cpi_err = 0;
        for (std::size_t i = 0; i < suite.size(); ++i) {
            const ForkBenchSampledResult &cow = sampled_results[2 * i];
            const ForkBenchSampledResult &oow = sampled_results[2 * i + 1];
            std::printf("%-10s cow %6.2f / %6.2f / %6.2f   oow %6.2f /"
                        " %6.2f / %6.2f\n",
                        suite[i].name.c_str(), cow.cpiErrorPct,
                        cow.meanWindowErrorPct, cow.maxWindowErrorPct,
                        oow.cpiErrorPct, oow.meanWindowErrorPct,
                        oow.maxWindowErrorPct);
            mean_cpi_err += cow.cpiErrorPct + oow.cpiErrorPct;
        }
        mean_cpi_err /= double(suite.size() * 2);
        std::printf("mean CPI error: %.2f%% (threshold %.2f%%)\n",
                    mean_cpi_err, check_threshold);
        if (mean_cpi_err > check_threshold) {
            std::fprintf(stderr,
                         "sample-check FAILED: mean CPI error %.2f%% >"
                         " %.2f%%\n",
                         mean_cpi_err, check_threshold);
            return 1;
        }
    }

    std::printf("\nPaper: overlay-on-write improves performance by 15%% on"
                " average;\n       cactus is the one benchmark where"
                " copy-on-write wins (clustered writes).\n");
    std::printf("Measured: %.1f%% mean speedup.\n",
                100.0 * (speedup_sum / count - 1.0));
    if (!trace_path.empty()) {
        std::size_t rows = sampling ? suite.size() * 2 : suite.size();
        std::printf("per-row traces written to %s .. %s\n",
                    trace::rowFilePath(trace_path, 0).c_str(),
                    trace::rowFilePath(trace_path, rows - 1).c_str());
    }
    return 0;
}
