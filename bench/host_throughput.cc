/**
 * @file
 * Host-throughput harness: times representative access mixes in *host*
 * accesses-per-second (not simulated cycles). Every evaluation figure is
 * reproduced by driving millions of 64 B accesses through System::access,
 * so host-side throughput is the ceiling on workload size, sweep width
 * and core count — the same wall that pushes Virtuoso to imitation-based
 * modeling and gem5-class simulators to sampled slices.
 *
 * Output: BENCH_throughput.json (schema: a "_run" entry with {jobs,
 * wall_seconds} for the whole run, then workload -> {accesses, seconds,
 * Maccess_per_s, simulated_ticks, jobs, wall_seconds}). simulated_ticks
 * is a determinism fingerprint: a host-side optimization must not move
 * it by a single tick (scripts/bench_compare.py diffs two runs and flags
 * regressions). jobs records how many worker threads ran the workloads.
 * Per-workload wall_seconds is that workload's own wall-clock including
 * setup (seconds times only the measured hot loop); the run total lives
 * in "_run". Per-workload Maccess_per_s is only comparable between runs
 * with equal jobs (workloads contend for cores when jobs > 1), so
 * bench_compare.py skips the throughput and wall gates on a jobs
 * mismatch but always checks simulated_ticks.
 *
 * Usage: host_throughput [-o out.json] [--scale N] [--jobs N]
 *                        [--only NAME]
 *                        [--sample-interval N --stats-out FILE]
 *                        [--trace-out FILE [--trace-limit N]]
 *                        [--profile-out FILE [--profile-collapsed FILE]]
 *   --scale multiplies every workload's access count (default 1).
 *   --only runs a single workload by name (repeatable; profiling and
 *     per-workload A/B runs want an unpolluted measurement).
 *   --jobs runs the workloads on N worker threads (default 1: serial,
 *     the measurement-isolation default for this harness).
 *   --sample-interval/--stats-out stream a JSONL stats sample every N
 *     ticks (DESIGN.md §9); requires --jobs 1 (one shared output).
 *   --trace-out writes a Chrome trace-event JSON of the run.
 *   --profile-out writes per-workload host-time attribution JSON
 *     (DESIGN.md §12; requires --jobs 1 and a -DOVL_PROFILE=ON build to
 *     be non-empty); --profile-collapsed adds a collapsed-stack file
 *     (flamegraph.pl input, workload name as the root frame).
 *
 * The "_run" record also carries host/build metadata (CPU, cores,
 * compiler, flags, build type) so bench_compare.py can flag cross-host
 * comparisons that need --normalize.
 *
 * Instrumentation changes host throughput, never simulated_ticks: an
 * instrumented run's fingerprint must equal the plain run's.
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iterator>
#include <optional>
#include <string>
#include <vector>

#include <cmath>

#include "common/random.hh"
#include "sim/hostinfo.hh"
#include "sim/parallel.hh"
#include "sim/profile.hh"
#include "sim/stats_sampler.hh"
#include "sim/trace.hh"
#include "system/system.hh"
#include "workload/forkbench.hh"

using namespace ovl;

namespace
{

struct Result
{
    std::string workload;
    std::uint64_t accesses = 0;
    double seconds = 0.0;
    Tick simulatedTicks = 0;
    /** Whole-workload wall time (setup included); filled by the runner. */
    double wallSeconds = 0.0;
};

using Clock = std::chrono::steady_clock;

double
elapsed(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

constexpr Addr kBase = 0x100000;

/**
 * Sequential read sweep: 64 B strides over a 16 MiB anonymous buffer,
 * wrapping. Every access opens a new line (L1/L2/L3 miss on the first
 * lap, prefetch-assisted after), so this exercises the full
 * TLB -> hierarchy -> DRAM path plus the functional page-table and
 * physical-memory lookups of the data-carrying read().
 */
/**
 * Attaches an optional sampler to a workload's System on entry;
 * finish(end) emits the closing record and detaches.
 */
class SamplerScope
{
  public:
    SamplerScope(System &sys, StatsSampler *sampler)
        : sys_(sys), sampler_(sampler)
    {
        if (sampler_ != nullptr)
            sys_.attachStatsSampler(sampler_, 0);
    }

    void
    finish(Tick end)
    {
        if (sampler_ != nullptr) {
            sampler_->finish(end);
            sys_.detachStatsSampler();
            sampler_ = nullptr;
        }
    }

  private:
    System &sys_;
    StatsSampler *sampler_;
};

Result
seqRead(std::uint64_t accesses, StatsSampler *sampler)
{
    System sys;
    Asid p = sys.createProcess();
    constexpr std::uint64_t kBufBytes = 16ull << 20;
    sys.mapAnon(p, kBase, kBufBytes);
    SamplerScope scope(sys, sampler);

    std::uint64_t v = 0;
    Tick t = 0;
    auto start = Clock::now();
    for (std::uint64_t i = 0; i < accesses; ++i) {
        Addr va = kBase + (i * kLineSize) % kBufBytes;
        std::uint64_t out;
        t = sys.read(p, va, &out, sizeof(out), t);
        v ^= out;
    }
    double secs = elapsed(start);
    scope.finish(t);
    if (v != 0)
        std::fprintf(stderr, "unexpected nonzero read\n");
    return Result{"seq_read", accesses, secs, t};
}

/** Sequential write sweep over the same geometry. */
Result
seqWrite(std::uint64_t accesses, StatsSampler *sampler)
{
    System sys;
    Asid p = sys.createProcess();
    constexpr std::uint64_t kBufBytes = 16ull << 20;
    sys.mapAnon(p, kBase, kBufBytes);
    SamplerScope scope(sys, sampler);

    Tick t = 0;
    auto start = Clock::now();
    for (std::uint64_t i = 0; i < accesses; ++i) {
        Addr va = kBase + (i * kLineSize) % kBufBytes;
        t = sys.write(p, va, &i, sizeof(i), t);
    }
    double secs = elapsed(start);
    scope.finish(t);
    return Result{"seq_write", accesses, secs, t};
}

/** Fixed-seed random 2:1 read/write mix over a 64 MiB footprint. */
Result
randomMix(std::uint64_t accesses, StatsSampler *sampler)
{
    System sys;
    Asid p = sys.createProcess();
    constexpr std::uint64_t kBufBytes = 64ull << 20;
    sys.mapAnon(p, kBase, kBufBytes);
    SamplerScope scope(sys, sampler);

    Rng rng(12345);
    std::uint64_t v = 0;
    Tick t = 0;
    auto start = Clock::now();
    for (std::uint64_t i = 0; i < accesses; ++i) {
        Addr va = kBase + lineBase(rng.below(kBufBytes));
        if (i % 3 == 2) {
            t = sys.write(p, va, &i, sizeof(i), t);
        } else {
            std::uint64_t out;
            t = sys.read(p, va, &out, sizeof(out), t);
            v ^= out;
        }
    }
    double secs = elapsed(start);
    scope.finish(t);
    (void)v;
    return Result{"random_mix", accesses, secs, t};
}

/**
 * Sparse-SpMV-flavoured mix (§5.2): a zero-backed overlay region where
 * ~1/16 of the lines diverge via overlaying writes, then repeated
 * row-sweep reads that hit a blend of overlay lines and the shared zero
 * frame. Exercises the OMT cache, OMS allocator and overlay read path.
 */
Result
sparseSpmv(std::uint64_t accesses, StatsSampler *sampler)
{
    System sys;
    Asid p = sys.createProcess();
    constexpr std::uint64_t kBufBytes = 8ull << 20;
    sys.mapZeroOverlay(p, kBase, kBufBytes);
    SamplerScope scope(sys, sampler);

    Rng rng(99);
    Tick t = 0;
    auto start = Clock::now();
    // Populate: every 16th line diverges (an overlaying write each).
    std::uint64_t populated = 0;
    for (Addr off = 0; off < kBufBytes; off += 16 * kLineSize) {
        double val = double(off);
        t = sys.write(p, kBase + off, &val, sizeof(val), t);
        ++populated;
    }
    // Sweep: read every line; 1/16 comes from the overlay space.
    std::uint64_t reads = accesses > populated ? accesses - populated : 0;
    std::uint64_t v = 0;
    for (std::uint64_t i = 0; i < reads; ++i) {
        Addr va = kBase + (i * kLineSize) % kBufBytes;
        std::uint64_t out;
        t = sys.read(p, va, &out, sizeof(out), t);
        v ^= out;
    }
    double secs = elapsed(start);
    scope.finish(t);
    (void)v;
    return Result{"sparse_spmv", populated + reads, secs, t};
}

/**
 * Fork/CoW churn: repeatedly fork a parent (overlay-on-write), have the
 * child diverge one line per page, then tear the child down. Exercises
 * fork's table copy, overlaying writes, unmap and frame recycling.
 */
Result
forkCow(std::uint64_t accesses, StatsSampler *sampler)
{
    System sys;
    Asid parent = sys.createProcess();
    constexpr std::uint64_t kPages = 512;
    sys.mapAnon(parent, kBase, kPages * kPageSize);
    SamplerScope scope(sys, sampler);

    Tick t = 0;
    // Touch the whole footprint once.
    for (std::uint64_t pg = 0; pg < kPages; ++pg) {
        std::uint64_t val = pg;
        t = sys.write(parent, kBase + pg * kPageSize, &val, sizeof(val), t);
    }
    std::uint64_t done = kPages;
    auto start = Clock::now();
    while (done < accesses) {
        Asid child = sys.fork(parent, ForkMode::OverlayOnWrite, t, &t);
        for (std::uint64_t pg = 0; pg < kPages && done < accesses;
             ++pg, ++done) {
            t = sys.access(child, kBase + pg * kPageSize, true, t);
        }
        sys.destroyProcess(child, t);
    }
    double secs = elapsed(start);
    scope.finish(t);
    return Result{"fork_cow", done - kPages, secs, t};
}

/**
 * Sampled-simulation variant of fork_cow (DESIGN.md §10): one fork/
 * write/teardown iteration in every kDetailEvery runs through the
 * detailed timing model; the rest fast-forward functionally
 * (forkFunctional / accessFunctional / destroyProcessFunctional —
 * architectural state plus cache/TLB warming, zero tick movement).
 * `accesses` counts every simulated access, detailed or functional, so
 * Maccess_per_s measures the effective simulation rate of the sampled
 * mode. simulated_ticks is the detailed-window tick total — still a
 * deterministic fingerprint, but only comparable against other sampled
 * runs.
 */
Result
forkCowSampled(std::uint64_t accesses, StatsSampler *sampler)
{
    System sys;
    Asid parent = sys.createProcess();
    constexpr std::uint64_t kPages = 512;
    constexpr std::uint64_t kDetailEvery = 8;
    sys.mapAnon(parent, kBase, kPages * kPageSize);
    SamplerScope scope(sys, sampler);

    Tick t = 0;
    for (std::uint64_t pg = 0; pg < kPages; ++pg) {
        std::uint64_t val = pg;
        t = sys.write(parent, kBase + pg * kPageSize, &val, sizeof(val), t);
    }
    std::uint64_t done = kPages;
    std::uint64_t iter = 0;
    auto start = Clock::now();
    while (done < accesses) {
        bool detailed = iter++ % kDetailEvery == 0;
        if (detailed) {
            Asid child = sys.fork(parent, ForkMode::OverlayOnWrite, t, &t);
            for (std::uint64_t pg = 0; pg < kPages && done < accesses;
                 ++pg, ++done) {
                t = sys.access(child, kBase + pg * kPageSize, true, t);
            }
            sys.destroyProcess(child, t);
        } else {
            Asid child = sys.forkFunctional(parent,
                                            ForkMode::OverlayOnWrite);
            for (std::uint64_t pg = 0; pg < kPages && done < accesses;
                 ++pg, ++done) {
                sys.accessFunctional(child, kBase + pg * kPageSize, true);
            }
            sys.destroyProcessFunctional(child);
        }
    }
    double secs = elapsed(start);
    scope.finish(t);
    return Result{"fork_cow_sampled", done - kPages, secs, t};
}

/**
 * Warm-start sweep pair (DESIGN.md §11): a miniature promotion-threshold
 * sweep (four rows) over one fork benchmark, run two ways.
 * sweep_coldstart simulates the warmup prefix for every row — the
 * pre-snapshot execution model. sweep_warmstart simulates the prefix
 * once and forks every row from a clone of the warm machine. The rows
 * are byte-identical either way (the warmup is fork-mode- and
 * promotion-threshold-independent), so the two workloads' simulated_ticks
 * fingerprints must be equal; the wall-clock ratio between them is the
 * warm-start speedup, recorded in the JSON. `accesses` counts the
 * simulated instructions each variant actually executes. The stats
 * sampler is not supported here (each row runs its own System), so the
 * parameter is ignored.
 */
struct SweepRow
{
    ForkMode mode;
    unsigned threshold;
};

constexpr SweepRow kSweepRows[] = {
    {ForkMode::CopyOnWrite, 64},
    {ForkMode::OverlayOnWrite, 64},
    {ForkMode::OverlayOnWrite, 32},
    {ForkMode::OverlayOnWrite, 8},
};

ForkBenchParams
sweepParams(std::uint64_t accesses)
{
    // Warmup-dominated on purpose: the sweep's shared prefix is the cost
    // the warm-start path amortizes across the four rows.
    ForkBenchParams p = forkBenchByName("libq");
    p.warmupInstructions = accesses * 3 / 4;
    p.postForkInstructions = accesses / 16;
    return p;
}

/** Row digest in tick units: any field divergence moves it. */
Tick
rowFingerprint(const ForkBenchResult &r)
{
    return r.forkLatency + Tick(r.cowFaults) + Tick(r.overlayingWrites) +
           Tick(std::llround(r.cpi * 1e6)) +
           Tick(std::llround(r.additionalMemoryMB * 1e6));
}

Result
sweepColdstart(std::uint64_t accesses, StatsSampler *)
{
    ForkBenchParams params = sweepParams(accesses);
    Tick fp = 0;
    std::uint64_t instructions = 0;
    auto start = Clock::now();
    for (const SweepRow &row : kSweepRows) {
        SystemConfig cfg;
        cfg.promoteThresholdLines = row.threshold;
        fp += rowFingerprint(runForkBench(params, row.mode, cfg));
        instructions +=
            params.warmupInstructions + params.postForkInstructions;
    }
    return Result{"sweep_coldstart", instructions, elapsed(start), fp};
}

Result
sweepWarmstart(std::uint64_t accesses, StatsSampler *)
{
    ForkBenchParams params = sweepParams(accesses);
    Tick fp = 0;
    auto start = Clock::now();
    ForkBenchWarmState warm =
        prepareForkBenchWarmState(params, SystemConfig{});
    std::uint64_t instructions = params.warmupInstructions;
    for (const SweepRow &row : kSweepRows) {
        SystemConfig cfg;
        cfg.promoteThresholdLines = row.threshold;
        fp += rowFingerprint(
            runForkBenchFromWarmState(warm, row.mode, &cfg));
        instructions += params.postForkInstructions;
    }
    return Result{"sweep_warmstart", instructions, elapsed(start), fp};
}

void
writeJson(const std::vector<Result> &results, const std::string &path,
          unsigned jobs, double wall_seconds)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        std::fprintf(stderr, "cannot open %s\n", path.c_str());
        std::exit(1);
    }
    std::fprintf(f, "{\n");
    std::fprintf(f,
                 "  \"_run\": {\"jobs\": %u, \"wall_seconds\": %.6f, "
                 "\"host\": %s},\n",
                 jobs, wall_seconds, hostInfoJson().c_str());
    for (std::size_t i = 0; i < results.size(); ++i) {
        const Result &r = results[i];
        double maps = double(r.accesses) / r.seconds / 1e6;
        std::fprintf(f,
                     "  \"%s\": {\"accesses\": %llu, \"seconds\": %.6f, "
                     "\"Maccess_per_s\": %.3f, \"simulated_ticks\": %llu, "
                     "\"jobs\": %u, \"wall_seconds\": %.6f}%s\n",
                     r.workload.c_str(),
                     (unsigned long long)r.accesses, r.seconds, maps,
                     (unsigned long long)r.simulatedTicks, jobs,
                     r.wallSeconds,
                     i + 1 < results.size() ? "," : "");
    }
    std::fprintf(f, "}\n");
    std::fclose(f);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string out = "BENCH_throughput.json";
    std::uint64_t scale = 1;
    // Unlike the sweep benches, this harness measures host throughput,
    // so it defaults to jobs=1 (serial) for measurement isolation.
    unsigned jobs = 1;
    std::vector<std::string> only;
    Tick sample_interval = 0;
    std::string sample_path;
    std::string trace_path;
    std::uint64_t trace_limit = 0;
    std::string profile_path;
    std::string profile_collapsed;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "-o") == 0 && i + 1 < argc) {
            out = argv[++i];
        } else if (std::strcmp(argv[i], "--scale") == 0 && i + 1 < argc) {
            scale = std::strtoull(argv[++i], nullptr, 10);
        } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
            jobs = unsigned(std::strtoul(argv[++i], nullptr, 10));
            if (jobs == 0) {
                std::fprintf(stderr, "%s: invalid --jobs value\n",
                             argv[0]);
                return 1;
            }
        } else if (std::strcmp(argv[i], "--only") == 0 && i + 1 < argc) {
            only.emplace_back(argv[++i]);
        } else if (std::strcmp(argv[i], "--sample-interval") == 0 &&
                   i + 1 < argc) {
            sample_interval = std::strtoull(argv[++i], nullptr, 10);
        } else if (std::strcmp(argv[i], "--stats-out") == 0 &&
                   i + 1 < argc) {
            sample_path = argv[++i];
        } else if (std::strcmp(argv[i], "--trace-out") == 0 &&
                   i + 1 < argc) {
            trace_path = argv[++i];
        } else if (std::strcmp(argv[i], "--trace-limit") == 0 &&
                   i + 1 < argc) {
            trace_limit = std::strtoull(argv[++i], nullptr, 10);
        } else if (std::strcmp(argv[i], "--profile-out") == 0 &&
                   i + 1 < argc) {
            profile_path = argv[++i];
        } else if (std::strcmp(argv[i], "--profile-collapsed") == 0 &&
                   i + 1 < argc) {
            profile_collapsed = argv[++i];
        } else {
            std::fprintf(stderr,
                         "usage: %s [-o out.json] [--scale N] [--jobs N]"
                         " [--only NAME]"
                         " [--sample-interval N --stats-out FILE]"
                         " [--trace-out FILE [--trace-limit N]]"
                         " [--profile-out FILE"
                         " [--profile-collapsed FILE]]\n",
                         argv[0]);
            return 1;
        }
    }
    if (sample_path.empty() != (sample_interval == 0)) {
        std::fprintf(stderr,
                     "%s: --sample-interval and --stats-out go together\n",
                     argv[0]);
        return 1;
    }
    if (!sample_path.empty() && jobs != 1) {
        // Parallel workloads would interleave records in the one JSONL
        // stream; keep sampled runs serial.
        std::fprintf(stderr, "%s: --stats-out requires --jobs 1\n",
                     argv[0]);
        return 1;
    }
    if (!profile_collapsed.empty() && profile_path.empty()) {
        std::fprintf(stderr,
                     "%s: --profile-collapsed requires --profile-out\n",
                     argv[0]);
        return 1;
    }
    bool profiling = !profile_path.empty();
    if (profiling && jobs != 1) {
        // Per-workload attribution windows (collect-with-reset between
        // workloads) only make sense when workloads run one at a time.
        std::fprintf(stderr, "%s: --profile-out requires --jobs 1\n",
                     argv[0]);
        return 1;
    }
    if (profiling && !hostInfo().profileCompiled) {
        std::fprintf(stderr,
                     "warn: profiler not compiled in (configure with "
                     "-DOVL_PROFILE=ON); profile will be empty\n");
    }
    std::ofstream sample_os;
    if (!sample_path.empty()) {
        sample_os.open(sample_path);
        if (!sample_os) {
            std::fprintf(stderr, "cannot open %s\n", sample_path.c_str());
            return 1;
        }
    }
    if (!trace_path.empty())
        trace::start(trace_path, trace_limit);

    Result (*const all_workloads[])(std::uint64_t, StatsSampler *) = {
        seqRead,        seqWrite,       randomMix,
        sparseSpmv,     forkCow,        forkCowSampled,
        sweepColdstart, sweepWarmstart,
    };
    const char *const all_names[] = {
        "seq_read",    "seq_write", "random_mix",
        "sparse_spmv", "fork_cow",  "fork_cow_sampled",
        "sweep_coldstart", "sweep_warmstart",
    };
    const std::uint64_t all_counts[] = {
        4'000'000 * scale, 4'000'000 * scale, 2'000'000 * scale,
        2'000'000 * scale, 1'000'000 * scale, 1'000'000 * scale,
        1'000'000 * scale, 1'000'000 * scale,
    };

    std::vector<Result (*)(std::uint64_t, StatsSampler *)> workloads;
    std::vector<std::string> names;
    std::vector<std::uint64_t> counts;
    for (std::size_t i = 0; i < std::size(all_workloads); ++i) {
        bool selected = only.empty();
        for (const std::string &name : only)
            selected = selected || name == all_names[i];
        if (selected) {
            workloads.push_back(all_workloads[i]);
            names.emplace_back(all_names[i]);
            counts.push_back(all_counts[i]);
        }
    }
    if (workloads.empty()) {
        std::fprintf(stderr, "%s: --only matched no workload\n", argv[0]);
        return 1;
    }

    std::vector<prof::Report> reports(workloads.size());
    if (profiling)
        prof::enable();
    auto wall_start = Clock::now();
    std::vector<Result> results = parallelMap(
        workloads.size(),
        [&](std::size_t i) {
            std::optional<StatsSampler> sampler;
            if (sample_interval > 0) {
                sampler.emplace(sample_os, sample_interval,
                                StatsSampler::Mode::Delta, names[i]);
            }
            auto workload_start = Clock::now();
            Result r =
                workloads[i](counts[i], sampler ? &*sampler : nullptr);
            r.wallSeconds = elapsed(workload_start);
            // collect(reset) closes this workload's attribution window
            // so the next workload starts a fresh one (jobs is 1 here).
            if (profiling)
                reports[i] = prof::collect(true);
            return r;
        },
        jobs,
        [&names](std::size_t i) { return names[i]; });
    double wall_seconds = elapsed(wall_start);
    if (profiling) {
        prof::disable();
        std::ofstream pf(profile_path);
        if (!pf) {
            std::fprintf(stderr, "cannot open %s\n", profile_path.c_str());
            return 1;
        }
        pf << "{\n\"_host\": " << hostInfoJson();
        for (std::size_t i = 0; i < reports.size(); ++i) {
            pf << ",\n\"" << names[i] << "\": ";
            prof::writeJson(pf, reports[i]);
        }
        pf << "}\n";
        std::printf("profile written to %s\n", profile_path.c_str());
        if (!profile_collapsed.empty()) {
            std::ofstream cf(profile_collapsed);
            if (!cf) {
                std::fprintf(stderr, "cannot open %s\n",
                             profile_collapsed.c_str());
                return 1;
            }
            for (std::size_t i = 0; i < reports.size(); ++i)
                prof::writeCollapsed(cf, reports[i], names[i]);
            std::printf("collapsed stacks written to %s\n",
                        profile_collapsed.c_str());
        }
    }
    if (!trace_path.empty()) {
        trace::stop();
        std::printf("trace written to %s\n", trace_path.c_str());
    }
    if (!sample_path.empty())
        std::printf("stats samples written to %s\n", sample_path.c_str());

    std::printf("%-16s %12s %9s %9s %14s %18s\n", "workload", "accesses",
                "seconds", "wall_s", "Maccess/s", "simulated_ticks");
    for (const Result &r : results) {
        std::printf("%-16s %12llu %9.3f %9.3f %14.3f %18llu\n",
                    r.workload.c_str(), (unsigned long long)r.accesses,
                    r.seconds, r.wallSeconds,
                    double(r.accesses) / r.seconds / 1e6,
                    (unsigned long long)r.simulatedTicks);
    }
    std::printf("%-12s jobs=%u wall=%.3fs\n", "(run)", jobs, wall_seconds);
    writeJson(results, out, jobs, wall_seconds);
    std::printf("\nwrote %s\n", out.c_str());
    return 0;
}
