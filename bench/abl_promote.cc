/**
 * @file
 * Ablation: the overlay-promotion policy (§4.3.4). When an overlay
 * accumulates many lines, the OS can convert it back to a regular page
 * (copy-and-commit). Sweeps the promotion threshold on a Type-2
 * streaming workload (whose pages get ~62/64 lines dirtied) and a
 * Type-3 sparse workload (~4 lines/page) to show the policy trade-off.
 */

#include <cstdio>

#include "workload/forkbench.hh"

using namespace ovl;

namespace
{

void
sweep(const char *bench_name)
{
    ForkBenchParams params = forkBenchByName(bench_name);
    params.postForkInstructions = 2'000'000;
    std::printf("%s (type %u, ~%u lines per dirtied page):\n",
                bench_name, params.type, params.linesPerDirtyPage);
    std::printf("  %12s %10s %14s\n", "threshold", "CPI",
                "extra memory");
    for (unsigned threshold : {8u, 16u, 32u, 48u, 64u}) {
        SystemConfig cfg;
        cfg.promoteThresholdLines = threshold;
        ForkBenchResult res =
            runForkBench(params, ForkMode::OverlayOnWrite, cfg);
        std::printf("  %11u%s %10.3f %12.2fMB%s\n", threshold,
                    threshold == 64 ? "*" : " ", res.cpi,
                    res.additionalMemoryMB,
                    threshold == 64 ? "  (disabled)" : "");
    }
    std::printf("\n");
}

} // namespace

int
main()
{
    std::printf("Ablation: overlay promotion threshold (§4.3.4's"
                " copy-and-commit policy)\n");
    std::printf("(* = promotion disabled, the evaluation default)\n\n");
    sweep("lbm");
    sweep("mcf");
    std::printf("On dense overlays (lbm) promotion costs pure overhead:"
                " each converted page\npays a 64-line copy-and-commit"
                " while a 62-line overlay already occupies a\nfull 4 KB"
                " segment, so no memory is recovered. On sparse overlays"
                " (mcf, ~4\nlines) no overlay ever reaches the threshold,"
                " so the policy is inert. The\nevaluation therefore runs"
                " with promotion disabled; it exists for workloads\nthat"
                " keep writing into fully-populated overlays (§4.3.4).\n");
    return 0;
}
