/**
 * @file
 * Ablation: the overlay-promotion policy (§4.3.4). When an overlay
 * accumulates many lines, the OS can convert it back to a regular page
 * (copy-and-commit). Sweeps the promotion threshold on a Type-2
 * streaming workload (whose pages get ~62/64 lines dirtied) and a
 * Type-3 sparse workload (~4 lines/page) to show the policy trade-off.
 *
 * Warm-start execution (DESIGN.md §11): the promotion threshold is a
 * policy field that only matters once overlays exist, and no overlay
 * exists before the fork — so each benchmark warms up once and all five
 * thresholds fork from clones of the one warm machine (byte-identical
 * to per-cell cold runs, one warmup instead of five). The two benchmark
 * items fan out over the parallel sweep runner (`--jobs N`, OVL_JOBS).
 */

#include <cstdio>
#include <iterator>
#include <vector>

#include "sim/parallel.hh"
#include "workload/forkbench.hh"

using namespace ovl;

namespace
{

constexpr const char *kBenches[] = {"lbm", "mcf"};
constexpr unsigned kThresholds[] = {8u, 16u, 32u, 48u, 64u};
constexpr std::size_t kNumThresholds = std::size(kThresholds);

std::vector<ForkBenchResult>
runBench(const char *bench_name)
{
    ForkBenchParams params = forkBenchByName(bench_name);
    params.postForkInstructions = 2'000'000;
    ForkBenchWarmState warm =
        prepareForkBenchWarmState(params, SystemConfig{});
    std::vector<ForkBenchResult> rows;
    for (unsigned threshold : kThresholds) {
        SystemConfig cfg;
        cfg.promoteThresholdLines = threshold;
        rows.push_back(runForkBenchFromWarmState(
            warm, ForkMode::OverlayOnWrite, &cfg));
    }
    return rows;
}

} // namespace

int
main(int argc, char **argv)
{
    unsigned jobs = jobsFromCommandLine(argc, argv);

    std::printf("Ablation: overlay promotion threshold (§4.3.4's"
                " copy-and-commit policy)\n");
    std::printf("(* = promotion disabled, the evaluation default)\n\n");

    std::vector<std::vector<ForkBenchResult>> bench_rows = parallelMap(
        std::size(kBenches),
        [](std::size_t i) { return runBench(kBenches[i]); }, jobs,
        [](std::size_t i) { return std::string(kBenches[i]); });
    std::vector<ForkBenchResult> results;
    for (const auto &rows : bench_rows)
        results.insert(results.end(), rows.begin(), rows.end());

    for (std::size_t b = 0; b < std::size(kBenches); ++b) {
        ForkBenchParams params = forkBenchByName(kBenches[b]);
        std::printf("%s (type %u, ~%u lines per dirtied page):\n",
                    kBenches[b], params.type, params.linesPerDirtyPage);
        std::printf("  %12s %10s %14s\n", "threshold", "CPI",
                    "extra memory");
        for (std::size_t t = 0; t < kNumThresholds; ++t) {
            unsigned threshold = kThresholds[t];
            const ForkBenchResult &res = results[b * kNumThresholds + t];
            std::printf("  %11u%s %10.3f %12.2fMB%s\n", threshold,
                        threshold == 64 ? "*" : " ", res.cpi,
                        res.additionalMemoryMB,
                        threshold == 64 ? "  (disabled)" : "");
        }
        std::printf("\n");
    }

    std::printf("On dense overlays (lbm) promotion costs pure overhead:"
                " each converted page\npays a 64-line copy-and-commit"
                " while a 62-line overlay already occupies a\nfull 4 KB"
                " segment, so no memory is recovered. On sparse overlays"
                " (mcf, ~4\nlines) no overlay ever reaches the threshold,"
                " so the policy is inert. The\nevaluation therefore runs"
                " with promotion disabled; it exists for workloads\nthat"
                " keep writing into fully-populated overlays (§4.3.4).\n");
    return 0;
}
