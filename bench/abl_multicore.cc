/**
 * @file
 * Ablation: fine-grained TLB coherence under multithreading. A process
 * with a reader thread on core 1 and a writer thread on core 0 diverging
 * shared (forked) pages: with copy-on-write every divergence remaps a
 * page and shoots down the reader's translations; with overlay-on-write
 * the reader's TLB entries are updated in place by ORE messages and its
 * translations survive (§4.3.3).
 *
 * The two mechanism runs are independent Systems and fan out over the
 * parallel sweep runner (`--jobs N`, OVL_JOBS).
 */

#include <cstdio>
#include <vector>

#include "common/random.hh"
#include "cpu/ooo_core.hh"
#include "sim/parallel.hh"
#include "system/system.hh"

using namespace ovl;

namespace
{

constexpr Addr kBase = 0x100000;
constexpr unsigned kPages = 512;

struct Result
{
    double readerCpi;
    std::uint64_t readerWalks;
};

Result
run(ForkMode mode)
{
    SystemConfig cfg;
    cfg.numTlbs = 2;
    System sys(cfg);
    Asid proc = sys.createProcess();
    sys.mapAnon(proc, kBase, kPages * kPageSize);

    OooCore writer("writer", sys, 0);
    OooCore reader("reader", sys, 1);
    Rng rng(31);

    // Warm both cores' TLBs over the region.
    writer.beginEpoch(0);
    reader.beginEpoch(0);
    for (unsigned p = 0; p < kPages; ++p) {
        writer.executeOp(proc, TraceOp::load(kBase + p * kPageSize));
        reader.executeOp(proc, TraceOp::load(kBase + p * kPageSize));
    }
    Tick t = std::max(writer.finishEpoch(), reader.finishEpoch());

    // Snapshot (fork); the child is the checkpoint holder and idles.
    sys.fork(proc, mode, t, &t);
    sys.resetStats();

    std::uint64_t walks_before =
        sys.tlb(1).l2().misses(); // core-1 L2 TLB misses ~ walks

    // Interleave with comparable per-core instruction budgets so the two
    // clocks stay loosely synchronized: the writer dirties one fresh
    // line per ~400 instructions of its own work; the reader scans.
    writer.beginEpoch(t);
    reader.beginEpoch(t);
    for (unsigned p = 0; p < kPages; ++p) {
        writer.executeOp(proc, TraceOp::compute(300));
        writer.executeOp(proc,
                         TraceOp::store(kBase + p * kPageSize +
                                        (p % kLinesPerPage) * kLineSize));
        for (unsigned r = 0; r < 24; ++r) {
            Addr addr = kBase + rng.below(kPages) * kPageSize +
                        rng.below(kLinesPerPage) * kLineSize;
            reader.executeOp(proc, TraceOp::load(addr));
            reader.executeOp(proc, TraceOp::compute(12));
        }
    }
    writer.finishEpoch();
    reader.finishEpoch();

    Result res;
    res.readerCpi = reader.epochCpi();
    res.readerWalks = sys.tlb(1).l2().misses() - walks_before;
    return res;
}

} // namespace

int
main(int argc, char **argv)
{
    unsigned jobs = jobsFromCommandLine(argc, argv);

    std::printf("Ablation: reader-thread disturbance while a writer"
                " thread diverges\nforked pages (2 cores, one process)\n\n");
    std::vector<Result> results = parallelMap(
        2,
        [](std::size_t i) {
            return run(i == 0 ? ForkMode::CopyOnWrite
                              : ForkMode::OverlayOnWrite);
        },
        jobs,
        [](std::size_t i) {
            return std::string(i == 0 ? "copy-on-write"
                                      : "overlay-on-write");
        });
    const Result &cow = results[0];
    const Result &oow = results[1];
    std::printf("%-18s %12s %18s\n", "mechanism", "reader CPI",
                "reader TLB walks");
    std::printf("copy-on-write      %12.3f %18llu\n", cow.readerCpi,
                (unsigned long long)cow.readerWalks);
    std::printf("overlay-on-write   %12.3f %18llu\n", oow.readerCpi,
                (unsigned long long)oow.readerWalks);
    std::printf("\nEvery CoW divergence hurts the reader twice: the"
                " shootdown drops its\ntranslation (re-walk, 1000 cycles)"
                " and the remap moves the page to a fresh\nframe, turning"
                " all its cached lines cold. The ORE message instead"
                " updates\nthe reader's TLB entry in place and retags one"
                " line: %.1fx fewer re-walks,\n%.1fx reader speedup"
                " (§4.3.3).\n",
                double(cow.readerWalks) / double(std::max<std::uint64_t>(
                                              1, oow.readerWalks)),
                cow.readerCpi / oow.readerCpi);
    return 0;
}
