/**
 * @file
 * Ablation: overlay-aware prefetching for sparse computation (§5.2: "the
 * hardware ... can efficiently prefetch the overlay cache lines and hide
 * the latency of memory accesses"). Runs the overlay SpMV with and
 * without the OBitVector-directed prefetch and with/without the regular
 * stream prefetcher.
 *
 * The four variants are independent Systems over a shared read-only
 * matrix and fan out over the parallel sweep runner (`--jobs N`); the
 * baseline normalization happens in the ordered render loop.
 */

#include <cstdio>
#include <iterator>
#include <vector>

#include "common/random.hh"
#include "cpu/ooo_core.hh"
#include "sim/parallel.hh"
#include "sparse/overlay_matrix.hh"
#include "sparse/spmv.hh"
#include "workload/matrixgen.hh"

using namespace ovl;

namespace
{

Tick
runOverlaySpmv(const SystemConfig &cfg, const CooMatrix &coo,
               const std::vector<double> &x, bool overlay_prefetch)
{
    SpmvAddrs addrs;
    System sys(cfg);
    OooCore core("core", sys);
    Asid asid = sys.createProcess();
    installVectors(sys, asid, addrs, x, coo.rows);
    OverlayMatrix matrix(sys, asid, addrs.aBase);
    matrix.build(coo);

    if (overlay_prefetch) {
        SpmvResult res = spmvOverlay(sys, core, matrix, addrs, x, 0);
        return res.cycles;
    }
    // Same walk, without the OBitVector-directed prefetch: re-implement
    // the loop minus prefetchOverlayPage calls.
    const DenseLayout &layout = matrix.layout();
    core.beginEpoch(0);
    Addr last_page = kInvalidAddr;
    BitVector64 obv;
    for (std::uint32_t r = 0; r < layout.rows; ++r) {
        for (std::uint32_t c0 = 0; c0 < layout.cols;
             c0 += DenseLayout::kValuesPerLine) {
            Addr a_line = matrix.addrOf(r, c0);
            if (pageBase(a_line) != last_page) {
                last_page = pageBase(a_line);
                obv = sys.pageObv(asid, a_line);
                core.executeOp(asid, TraceOp::compute(1));
            }
            if (!obv.test(lineInPage(a_line)))
                continue;
            core.executeOp(asid, TraceOp::load(a_line));
            core.executeOp(asid,
                           TraceOp::load(addrs.xBase + Addr(c0) * 8));
            core.executeOp(asid, TraceOp::compute(16));
        }
        core.executeOp(asid, TraceOp::compute(3));
        core.executeOp(asid, TraceOp::store(addrs.yBase + Addr(r) * 8));
    }
    core.finishEpoch();
    return core.epochCycles();
}

} // namespace

int
main(int argc, char **argv)
{
    unsigned jobs = jobsFromCommandLine(argc, argv);

    std::printf("Ablation: prefetching for overlay-based SpMV\n\n");

    MatrixSpec spec;
    spec.family = MatrixFamily::BlockDense;
    spec.blockRunLines = 128;
    spec.targetL = 7.0;
    CooMatrix coo = generateMatrix(spec);
    std::vector<double> x(coo.cols);
    Rng rng(4);
    for (double &v : x)
        v = rng.uniform();

    struct Variant
    {
        const char *name;
        bool overlay_pf;
        bool stream_pf;
    };
    const Variant variants[] = {
        {"overlay-aware + stream prefetch (paper)", true, true},
        {"stream prefetch only", false, true},
        {"overlay-aware only", true, false},
        {"no prefetching", false, false},
    };

    std::printf("%-42s %12s %9s\n", "configuration", "cycles", "norm");
    std::printf("%.*s\n", 66,
                "------------------------------------------------------"
                "------------");

    std::vector<Tick> cycles = parallelMap(
        std::size(variants),
        [&variants, &coo, &x](std::size_t i) {
            SystemConfig cfg;
            cfg.caches.prefetcher.enabled = variants[i].stream_pf;
            return runOverlaySpmv(cfg, coo, x, variants[i].overlay_pf);
        },
        jobs,
        [&variants](std::size_t i) {
            return std::string(variants[i].name);
        });

    Tick baseline = 0;
    for (std::size_t i = 0; i < std::size(variants); ++i) {
        if (baseline == 0)
            baseline = cycles[i];
        std::printf("%-42s %12llu %8.2fx\n", variants[i].name,
                    (unsigned long long)cycles[i],
                    double(cycles[i]) / double(baseline));
    }
    std::printf("\nThe OBitVector tells the hardware exactly which lines"
                " to fetch; without it,\nsparse overlay lines defeat the"
                " stream prefetcher (§5.2).\n");
    return 0;
}
