/**
 * @file
 * §5.2 in-text experiment: randomly-generated matrices with varying
 * sparsity (fraction of zero cache lines, 0%..100%). The paper reports
 * that the overlay representation outperforms the dense-matrix
 * representation at every sparsity level, with the gap growing linearly
 * in the fraction of zero lines.
 *
 * The 11 sparsity points are independent (a dense and an overlay System
 * each) and fan out over the parallel sweep runner (`--jobs N`).
 */

#include <cstdio>
#include <vector>

#include "common/random.hh"
#include "cpu/ooo_core.hh"
#include "sim/parallel.hh"
#include "sparse/overlay_matrix.hh"
#include "sparse/spmv.hh"
#include "workload/matrixgen.hh"

using namespace ovl;

namespace
{

constexpr std::uint32_t kRows = 512, kCols = 512;

struct Point
{
    Tick denseCycles = 0;
    Tick overlayCycles = 0;
};

Point
runOne(int pct)
{
    CooMatrix coo =
        generateUniformSparsity(kRows, kCols, pct / 100.0, 99 + pct);
    std::vector<double> x(kCols);
    Rng rng(5);
    for (double &v : x)
        v = rng.uniform();

    SpmvAddrs addrs;

    System dense_sys((SystemConfig()));
    OooCore dense_core("core", dense_sys);
    Asid dense_asid = dense_sys.createProcess();
    installVectors(dense_sys, dense_asid, addrs, x, kRows);
    installDense(dense_sys, dense_asid, addrs.aBase, coo);
    dense_sys.quiesce();
    SpmvResult dense = spmvDense(dense_sys, dense_core, dense_asid, addrs,
                                 DenseLayout(kRows, kCols), x, 0);

    System ovl_sys((SystemConfig()));
    OooCore ovl_core("core", ovl_sys);
    Asid ovl_asid = ovl_sys.createProcess();
    installVectors(ovl_sys, ovl_asid, addrs, x, kRows);
    OverlayMatrix matrix(ovl_sys, ovl_asid, addrs.aBase);
    matrix.build(coo);
    SpmvResult overlay = spmvOverlay(ovl_sys, ovl_core, matrix, addrs, x, 0);

    return Point{dense.cycles, overlay.cycles};
}

} // namespace

int
main(int argc, char **argv)
{
    unsigned jobs = jobsFromCommandLine(argc, argv);

    std::printf("Random-sparsity sweep: overlay representation vs dense"
                " representation (SpMV)\n\n");
    std::printf("%12s %16s %16s %10s\n", "zero lines", "dense cycles",
                "overlay cycles", "speedup");
    std::printf("%.*s\n", 58,
                "------------------------------------------------------"
                "----");

    std::vector<Point> points = parallelMap(
        11, [](std::size_t i) { return runOne(int(i) * 10); }, jobs,
        [](std::size_t i) {
            return "zero=" + std::to_string(i * 10) + "%";
        });

    for (std::size_t i = 0; i < points.size(); ++i) {
        const Point &pt = points[i];
        std::printf("%11d%% %16llu %16llu %9.2fx\n", int(i) * 10,
                    (unsigned long long)pt.denseCycles,
                    (unsigned long long)pt.overlayCycles,
                    double(pt.denseCycles) / double(pt.overlayCycles));
    }

    std::printf("\nPaper: overlays outperform the dense representation at"
                " every sparsity level;\nthe gap grows with the fraction"
                " of zero cache lines.\n");
    return 0;
}
