/**
 * @file
 * Figure 11: memory overhead of managing sparse matrices at different
 * granularities (16 B .. 4 KB blocks), normalized to the ideal that
 * stores only the non-zero values, with CSR as the software reference.
 * Reproduces the paper's two findings: page-granularity management
 * costs ~53x, and sub-64 B granularities beat CSR on more matrices.
 *
 * The 87 per-matrix analyses are independent and fan out over the
 * parallel sweep runner (`--jobs N`); the crossover/mean accumulators
 * run in L order during rendering, so output is byte-identical to the
 * serial run.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "sim/parallel.hh"
#include "sparse/csr.hh"
#include "sparse/matrix.hh"
#include "workload/matrixgen.hh"

using namespace ovl;

namespace
{

constexpr std::uint64_t kBlocks[] = {16, 32, 64, 256, 1024, 4096};
constexpr unsigned kNumBlocks = 6;

struct Row
{
    std::string name;
    double locality = 0;
    double csrOverhead = 0;
    double overhead[kNumBlocks] = {};
};

Row
analyzeOne(MatrixSpec spec)
{
    // Figure 11 is a static analysis (no simulation), so use a
    // geometry closer to the UF matrices' sparsity: the same
    // non-zero budget over a 9x larger dense space.
    spec.rows = 3072;
    spec.cols = 3072;
    CooMatrix coo = generateMatrix(spec);
    MatrixStats line_stats = analyzeMatrix(coo, kLineSize);
    double ideal = double(line_stats.nnz) * 8.0;
    CsrMatrix csr = CsrMatrix::fromCoo(coo);

    Row row;
    row.name = coo.name;
    row.locality = line_stats.locality;
    row.csrOverhead = double(csr.bytes()) / ideal;
    for (unsigned i = 0; i < kNumBlocks; ++i) {
        MatrixStats stats = analyzeMatrix(coo, kBlocks[i]);
        row.overhead[i] =
            double(stats.nonZeroBlocks) * double(kBlocks[i]) / ideal;
    }
    return row;
}

} // namespace

int
main(int argc, char **argv)
{
    unsigned jobs = jobsFromCommandLine(argc, argv);

    std::printf("Figure 11: memory overhead vs 'ideal' (non-zero values"
                " only), 87 matrices sorted by L\n\n");
    std::printf("%-22s %6s %6s", "matrix", "L", "CSR");
    for (std::uint64_t b : kBlocks)
        std::printf(" %6lluB", (unsigned long long)b);
    std::printf("\n%.*s\n", 84,
                "------------------------------------------------------"
                "------------------------------");

    const std::vector<MatrixSpec> suite = sparseSuite87();
    std::vector<Row> rows = parallelMap(
        suite.size(),
        [&suite](std::size_t i) { return analyzeOne(suite[i]); }, jobs,
        [&suite](std::size_t i) { return suite[i].name; });

    double sum_overhead[kNumBlocks] = {};
    unsigned beats_csr[kNumBlocks] = {};
    double crossover_l[kNumBlocks];
    for (unsigned i = 0; i < kNumBlocks; ++i)
        crossover_l[i] = -1.0;
    unsigned count = 0;

    for (const Row &row : rows) {
        std::printf("%-22s %6.2f %6.2f", row.name.c_str(), row.locality,
                    row.csrOverhead);
        for (unsigned i = 0; i < kNumBlocks; ++i) {
            std::printf(" %7.2f", row.overhead[i]);
            sum_overhead[i] += row.overhead[i];
            if (row.overhead[i] < row.csrOverhead) {
                ++beats_csr[i];
                // First (lowest-L) matrix where this granularity wins:
                // the circled crossover points of Figure 11.
                if (crossover_l[i] < 0)
                    crossover_l[i] = row.locality;
            }
        }
        std::printf("\n");
        ++count;
    }

    std::printf("%.*s\n", 84,
                "------------------------------------------------------"
                "------------------------------");
    std::printf("%-22s %6s %6s", "mean overhead", "", "");
    for (unsigned i = 0; i < kNumBlocks; ++i)
        std::printf(" %7.2f", sum_overhead[i] / count);
    std::printf("\n%-29s %6s", "matrices beating CSR", "");
    for (unsigned i = 0; i < kNumBlocks; ++i)
        std::printf(" %7u", beats_csr[i]);
    std::printf("\n%-29s %6s", "crossover at L >=", "");
    for (unsigned i = 0; i < kNumBlocks; ++i) {
        if (crossover_l[i] < 0)
            std::printf("  never");
        else
            std::printf(" %7.2f", crossover_l[i]);
    }
    std::printf("\n");

    std::printf("\nPaper: page-granularity (4 KB) management costs ~53x"
                " the ideal on average;\nfiner granularities than 64 B"
                " outperform CSR on more matrices.\n");
    std::printf("Measured: 4 KB mean overhead %.1fx; finer blocks beat"
                " CSR on more matrices\n(16 B: %u, 32 B: %u, 64 B: %u"
                " of 87).\n",
                sum_overhead[kNumBlocks - 1] / count, beats_csr[0],
                beats_csr[1], beats_csr[2]);
    return 0;
}
