/**
 * @file
 * Ablation: Overlay Memory Store organization (§4.4). Compares the
 * paper's five-class compact segments against the simple
 * full-page-per-overlay alternative (§4.4: "will forgo the memory
 * capacity benefit") and against compact segments with the buddy
 * coalescing extension, on a Type-3 fork workload whose overlays are
 * small (few lines per page).
 *
 * The three variants plus the copy-on-write reference are independent
 * Systems and fan out over the parallel sweep runner (`--jobs N`).
 */

#include <cstdio>
#include <iterator>
#include <vector>

#include "sim/parallel.hh"
#include "workload/forkbench.hh"

using namespace ovl;

int
main(int argc, char **argv)
{
    unsigned jobs = jobsFromCommandLine(argc, argv);

    std::printf("Ablation: OMS segment organization (overlay-on-write,"
                " astar)\n\n");
    std::printf("%-28s %10s %14s\n", "organization", "CPI",
                "extra memory");
    std::printf("%.*s\n", 54,
                "------------------------------------------------------");

    ForkBenchParams params = forkBenchByName("astar");
    params.postForkInstructions = 2'000'000;

    struct Variant
    {
        const char *name;
        bool full_page;
        bool coalesce;
    };
    const Variant variants[] = {
        {"compact segments (paper)", false, false},
        {"compact + buddy coalescing", false, true},
        {"full page per overlay", true, false},
    };

    // Item 3 is the copy-on-write reference row.
    std::vector<ForkBenchResult> results = parallelMap(
        std::size(variants) + 1,
        [&variants, &params](std::size_t i) {
            if (i == std::size(variants))
                return runForkBench(params, ForkMode::CopyOnWrite,
                                    SystemConfig{});
            SystemConfig cfg;
            cfg.overlay.fullPageSegments = variants[i].full_page;
            cfg.overlay.allocator.coalesce = variants[i].coalesce;
            return runForkBench(params, ForkMode::OverlayOnWrite, cfg);
        },
        jobs,
        [&variants](std::size_t i) {
            return std::string(i == std::size(variants)
                                   ? "copy-on-write reference"
                                   : variants[i].name);
        });

    double compact_mb = 0;
    for (std::size_t i = 0; i < std::size(variants); ++i) {
        const Variant &v = variants[i];
        const ForkBenchResult &res = results[i];
        std::printf("%-28s %10.3f %12.2fMB\n", v.name, res.cpi,
                    res.additionalMemoryMB);
        if (!v.full_page && !v.coalesce)
            compact_mb = res.additionalMemoryMB;
    }

    const ForkBenchResult &cow = results[std::size(variants)];
    std::printf("%-28s %10.3f %12.2fMB\n", "copy-on-write (reference)",
                cow.cpi, cow.additionalMemoryMB);

    std::printf("\nFull-page overlays keep the work-reduction benefit but"
                " not the capacity one\n(%.2f MB vs %.2f MB compact);"
                " the segmented OMS delivers both (§4.4).\n",
                cow.additionalMemoryMB, compact_mb);
    return 0;
}
