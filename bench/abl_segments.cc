/**
 * @file
 * Ablation: Overlay Memory Store organization (§4.4). Compares the
 * paper's five-class compact segments against the simple
 * full-page-per-overlay alternative (§4.4: "will forgo the memory
 * capacity benefit") and against compact segments with the buddy
 * coalescing extension, on a Type-3 fork workload whose overlays are
 * small (few lines per page).
 */

#include <cstdio>

#include "workload/forkbench.hh"

using namespace ovl;

int
main()
{
    std::printf("Ablation: OMS segment organization (overlay-on-write,"
                " astar)\n\n");
    std::printf("%-28s %10s %14s\n", "organization", "CPI",
                "extra memory");
    std::printf("%.*s\n", 54,
                "------------------------------------------------------");

    ForkBenchParams params = forkBenchByName("astar");
    params.postForkInstructions = 2'000'000;

    struct Variant
    {
        const char *name;
        bool full_page;
        bool coalesce;
    };
    const Variant variants[] = {
        {"compact segments (paper)", false, false},
        {"compact + buddy coalescing", false, true},
        {"full page per overlay", true, false},
    };

    double compact_mb = 0;
    for (const Variant &v : variants) {
        SystemConfig cfg;
        cfg.overlay.fullPageSegments = v.full_page;
        cfg.overlay.allocator.coalesce = v.coalesce;
        ForkBenchResult res =
            runForkBench(params, ForkMode::OverlayOnWrite, cfg);
        std::printf("%-28s %10.3f %12.2fMB\n", v.name, res.cpi,
                    res.additionalMemoryMB);
        if (!v.full_page && !v.coalesce)
            compact_mb = res.additionalMemoryMB;
    }

    ForkBenchResult cow =
        runForkBench(params, ForkMode::CopyOnWrite, SystemConfig{});
    std::printf("%-28s %10.3f %12.2fMB\n", "copy-on-write (reference)",
                cow.cpi, cow.additionalMemoryMB);

    std::printf("\nFull-page overlays keep the work-reduction benefit but"
                " not the capacity one\n(%.2f MB vs %.2f MB compact);"
                " the segmented OMS delivers both (§4.4).\n",
                cow.additionalMemoryMB, compact_mb);
    return 0;
}
