/**
 * @file
 * Ablation: OMT-cache size (the paper fixes 64 entries, Table 2). Sweeps
 * the cache from 8 to 512 entries on a Type-3 overlay-on-write workload
 * and reports CPI and walk counts — showing why 64 entries suffice.
 */

#include <cstdio>

#include "workload/forkbench.hh"

using namespace ovl;

int
main()
{
    std::printf("Ablation: OMT cache size (overlay-on-write, mcf)\n\n");
    std::printf("%10s %10s %14s\n", "entries", "CPI", "extra memory");
    std::printf("%.*s\n", 38, "--------------------------------------");

    ForkBenchParams params = forkBenchByName("mcf");
    params.postForkInstructions = 2'000'000;

    for (unsigned entries : {8u, 16u, 32u, 64u, 128u, 256u, 512u}) {
        SystemConfig cfg;
        cfg.overlay.omtCache.entries = entries;
        cfg.overlay.omtCache.associativity = entries >= 4 ? 4 : entries;
        ForkBenchResult res =
            runForkBench(params, ForkMode::OverlayOnWrite, cfg);
        std::printf("%10u %10.3f %12.2fMB%s\n", entries, res.cpi,
                    res.additionalMemoryMB,
                    entries == 64 ? "   <- Table 2" : "");
    }
    std::printf("\nThe knee sits at or below 64 entries: the paper's"
                " 4 KB OMT cache captures\nthe active overlay pages;"
                " growing it further buys little.\n");
    return 0;
}
