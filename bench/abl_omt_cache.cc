/**
 * @file
 * Ablation: OMT-cache size (the paper fixes 64 entries, Table 2). Sweeps
 * the cache from 8 to 512 entries on a Type-3 overlay-on-write workload
 * and reports CPI and walk counts — showing why 64 entries suffice.
 *
 * The seven cache sizes are independent Systems and fan out over the
 * parallel sweep runner (`--jobs N`, OVL_JOBS).
 */

#include <cstdio>
#include <iterator>
#include <vector>

#include "sim/parallel.hh"
#include "workload/forkbench.hh"

using namespace ovl;

int
main(int argc, char **argv)
{
    unsigned jobs = jobsFromCommandLine(argc, argv);

    std::printf("Ablation: OMT cache size (overlay-on-write, mcf)\n\n");
    std::printf("%10s %10s %14s\n", "entries", "CPI", "extra memory");
    std::printf("%.*s\n", 38, "--------------------------------------");

    ForkBenchParams params = forkBenchByName("mcf");
    params.postForkInstructions = 2'000'000;

    const unsigned entries[] = {8u, 16u, 32u, 64u, 128u, 256u, 512u};
    std::vector<ForkBenchResult> results = parallelMap(
        std::size(entries),
        [&entries, &params](std::size_t i) {
            SystemConfig cfg;
            cfg.overlay.omtCache.entries = entries[i];
            cfg.overlay.omtCache.associativity =
                entries[i] >= 4 ? 4 : entries[i];
            return runForkBench(params, ForkMode::OverlayOnWrite, cfg);
        },
        jobs,
        [&entries](std::size_t i) {
            return "omt-entries=" + std::to_string(entries[i]);
        });

    for (std::size_t i = 0; i < results.size(); ++i) {
        const ForkBenchResult &res = results[i];
        std::printf("%10u %10.3f %12.2fMB%s\n", entries[i], res.cpi,
                    res.additionalMemoryMB,
                    entries[i] == 64 ? "   <- Table 2" : "");
    }
    std::printf("\nThe knee sits at or below 64 entries: the paper's"
                " 4 KB OMT cache captures\nthe active overlay pages;"
                " growing it further buys little.\n");
    return 0;
}
