/**
 * @file
 * The overlaysim command-line driver. Subcommands:
 *
 *   overlaysim forkbench <name|all> [--mode cow|oow|both]
 *                                   [--post-instr N] [--json FILE]
 *       Run one (or all) of the 15 synthetic fork benchmarks. With
 *       `--checkpoint-every T --checkpoint-file FILE` (one benchmark,
 *       one mode) a crash-resumable snapshot is rewritten every T
 *       simulated ticks while the run proceeds unperturbed.
 *
 *   overlaysim checkpoint <name> --mode cow|oow --at-tick T --out FILE
 *                                [--post-instr N]
 *       Run a fork benchmark up to simulated tick T, write a snapshot,
 *       and stop.
 *
 *   overlaysim restore <FILE>
 *       Resume a checkpoint to completion. The printed result row is
 *       byte-identical to the uninterrupted `overlaysim forkbench` row.
 *
 *   overlaysim spmv --L X [--nnz N] [--rep overlay|csr|dense|all]
 *       Build a synthetic sparse matrix with non-zero locality L and run
 *       SpMV under the chosen representation(s).
 *
 *   overlaysim trace info <file>
 *   overlaysim trace run <file> [--pages N] [--json FILE]
 *       Inspect or replay a binary trace (see src/cpu/trace_io.hh).
 *
 *   overlaysim stats-diff <a.json> <b.json>
 *       Golden-stats forensics: compare two dumpAllStatsJson files and
 *       report the first diverging group/scalar (exit 0 identical,
 *       1 differing, 2 parse failure). Produce inputs with
 *       `forkbench <name> --mode cow|oow --json FILE`.
 *
 *   overlaysim config
 *       Print the Table 2 machine configuration.
 *
 *   overlaysim list-debug-flags
 *       Print the OVL_DEBUG flag table with descriptions.
 *
 * Observability (forkbench): `--sample-interval N --stats-out FILE`
 * streams a JSONL stats sample every N ticks (see DESIGN.md §9);
 * `--trace-out FILE [--trace-limit N]` writes a Chrome trace-event JSON
 * loadable in Perfetto / chrome://tracing; `--profile-out FILE
 * [--profile-collapsed FILE]` writes per-run host-time attribution
 * (DESIGN.md §12; needs a -DOVL_PROFILE=ON build to be non-empty).
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "common/debug.hh"
#include "common/logging.hh"
#include "common/random.hh"
#include "cpu/ooo_core.hh"
#include "cpu/trace_io.hh"
#include "sim/hostinfo.hh"
#include "sim/profile.hh"
#include "sim/snapshot.hh"
#include "sim/stats_diff.hh"
#include "sim/stats_sampler.hh"
#include "sim/trace.hh"
#include "sparse/csr.hh"
#include "sparse/overlay_matrix.hh"
#include "sparse/spmv.hh"
#include "system/system.hh"
#include "workload/forkbench.hh"
#include "workload/matrixgen.hh"

using namespace ovl;

namespace
{

int
usage()
{
    std::fprintf(stderr,
                 "usage: overlaysim"
                 " <forkbench|checkpoint|restore|stats-diff|spmv|trace"
                 "|config|list-debug-flags> ...\n"
                 "  forkbench <name|all> [--mode cow|oow|both]"
                 " [--post-instr N] [--stats FILE] [--record FILE]\n"
                 "            [--json FILE (single benchmark + mode)]\n"
                 "            [--sample-interval N] [--stats-out FILE]\n"
                 "            [--trace-out FILE] [--trace-limit N]\n"
                 "            [--profile-out FILE"
                 " [--profile-collapsed FILE]]\n"
                 "            [--checkpoint-every T --checkpoint-file"
                 " FILE]\n"
                 "  checkpoint <name> --mode cow|oow --at-tick T"
                 " --out FILE [--post-instr N]\n"
                 "  restore <file>\n"
                 "  stats-diff <a.json> <b.json>\n"
                 "  spmv --L X [--nnz N] [--rep overlay|csr|dense|all]\n"
                 "  trace info <file>\n"
                 "  trace run <file> [--pages N] [--json FILE]\n"
                 "  config\n"
                 "  list-debug-flags\n");
    return 2;
}

/** Pull `--flag value` out of an argument list. */
std::optional<std::string>
flagValue(std::vector<std::string> &args, const std::string &flag)
{
    for (std::size_t i = 0; i + 1 < args.size(); ++i) {
        if (args[i] == flag) {
            std::string value = args[i + 1];
            args.erase(args.begin() + std::ptrdiff_t(i),
                       args.begin() + std::ptrdiff_t(i) + 2);
            return value;
        }
    }
    return std::nullopt;
}

void
maybeDumpJson(System &sys, const std::optional<std::string> &path)
{
    if (!path)
        return;
    std::ofstream os(*path);
    if (!os)
        ovl_fatal("cannot open %s for writing", path->c_str());
    sys.dumpAllStatsJson(os);
    std::printf("stats written to %s\n", path->c_str());
}

/** The forkbench/restore result-row format (kept byte-identical). */
void
printForkRowHeader()
{
    std::printf("%-10s %-5s %10s %10s %12s\n", "benchmark", "mode", "CPI",
                "extraMB", "forkCycles");
}

void
printForkRow(const ForkBenchResult &res)
{
    std::printf("%-10s %-5s %10.3f %10.2f %12llu\n", res.name.c_str(),
                res.mode == ForkMode::CopyOnWrite ? "cow" : "oow",
                res.cpi, res.additionalMemoryMB,
                (unsigned long long)res.forkLatency);
}

int
cmdForkbench(std::vector<std::string> args)
{
    std::optional<std::string> mode_str = flagValue(args, "--mode");
    std::optional<std::string> post_str = flagValue(args, "--post-instr");
    std::optional<std::string> ckpt_every_str =
        flagValue(args, "--checkpoint-every");
    std::optional<std::string> ckpt_file =
        flagValue(args, "--checkpoint-file");
    std::optional<std::string> stats_path = flagValue(args, "--stats");
    std::optional<std::string> record_path = flagValue(args, "--record");
    std::optional<std::string> interval_str =
        flagValue(args, "--sample-interval");
    std::optional<std::string> sample_path = flagValue(args, "--stats-out");
    std::optional<std::string> trace_path = flagValue(args, "--trace-out");
    std::optional<std::string> trace_limit_str =
        flagValue(args, "--trace-limit");
    std::optional<std::string> json_path = flagValue(args, "--json");
    std::optional<std::string> profile_path =
        flagValue(args, "--profile-out");
    std::optional<std::string> profile_collapsed =
        flagValue(args, "--profile-collapsed");
    if (args.empty())
        return usage();
    std::ofstream stats_os;
    if (stats_path) {
        stats_os.open(*stats_path);
        if (!stats_os)
            ovl_fatal("cannot open %s for writing", stats_path->c_str());
    }
    std::ofstream json_os;
    if (json_path) {
        json_os.open(*json_path);
        if (!json_os)
            ovl_fatal("cannot open %s for writing", json_path->c_str());
    }
    if (profile_collapsed && !profile_path)
        ovl_fatal("--profile-collapsed requires --profile-out");
    if (profile_path && !hostInfo().profileCompiled) {
        std::fprintf(stderr,
                     "warn: profiler not compiled in (configure with "
                     "-DOVL_PROFILE=ON); profile will be empty\n");
    }

    Tick sample_interval = 0;
    if (interval_str)
        sample_interval = std::strtoull(interval_str->c_str(), nullptr, 10);
    if (bool(sample_path) != (sample_interval > 0))
        ovl_fatal("--sample-interval and --stats-out go together");
    std::ofstream sample_os;
    if (sample_path) {
        sample_os.open(*sample_path);
        if (!sample_os)
            ovl_fatal("cannot open %s for writing", sample_path->c_str());
    }
    if (trace_path) {
        std::uint64_t limit =
            trace_limit_str
                ? std::strtoull(trace_limit_str->c_str(), nullptr, 10)
                : 0;
        trace::start(*trace_path, limit);
    }

    std::vector<ForkBenchParams> selected;
    if (args[0] == "all") {
        selected = forkBenchSuite();
    } else {
        selected.push_back(forkBenchByName(args[0]));
    }
    bool run_cow = !mode_str || *mode_str == "cow" || *mode_str == "both";
    bool run_oow = !mode_str || *mode_str == "oow" || *mode_str == "both";
    if (json_path && (selected.size() != 1 || (run_cow && run_oow))) {
        ovl_fatal("--json needs a single benchmark and a single --mode"
                  " (the file holds one golden-stats dump)");
    }

    ForkBenchCheckpointOptions ckpt;
    if (bool(ckpt_every_str) != bool(ckpt_file))
        ovl_fatal("--checkpoint-every and --checkpoint-file go together");
    if (ckpt_file) {
        ckpt.path = *ckpt_file;
        ckpt.everyTicks =
            std::strtoull(ckpt_every_str->c_str(), nullptr, 10);
        if (ckpt.everyTicks == 0)
            ovl_fatal("--checkpoint-every needs a positive tick period");
        if (selected.size() != 1 || (run_cow && run_oow)) {
            ovl_fatal("--checkpoint-every needs a single benchmark and a"
                      " single --mode (a checkpoint file holds one run)");
        }
        if (stats_path || record_path || sample_path || trace_path ||
            json_path) {
            ovl_fatal("--checkpoint-every is incompatible with --stats,"
                      " --record, --json, --sample-interval and"
                      " --trace-out");
        }
    }

    // One attribution window per run; labels are "<name>/<mode>".
    std::vector<std::pair<std::string, prof::Report>> profiles;
    if (profile_path)
        prof::enable();

    printForkRowHeader();
    for (ForkBenchParams params : selected) {
        if (post_str)
            params.postForkInstructions =
                std::strtoull(post_str->c_str(), nullptr, 10);
        for (int pass = 0; pass < 2; ++pass) {
            if ((pass == 0 && !run_cow) || (pass == 1 && !run_oow))
                continue;
            ForkMode mode = pass == 0 ? ForkMode::CopyOnWrite
                                      : ForkMode::OverlayOnWrite;
            std::vector<TraceOp> recorded;
            // One sampler per run (column layout is per-System); all
            // runs stream into the one JSONL file, distinguished by
            // their "run" label.
            std::optional<StatsSampler> sampler;
            if (sample_path) {
                sampler.emplace(sample_os, sample_interval,
                                StatsSampler::Mode::Delta,
                                params.name +
                                    (pass == 0 ? "/cow" : "/oow"));
            }
            ForkBenchResult res;
            if (ckpt_file) {
                // Periodic mode always runs to completion; the observer
                // checkpoints never perturb the simulated run.
                res = *runForkBenchCheckpointed(params, mode,
                                                SystemConfig{}, ckpt);
            } else {
                res = runForkBench(params, mode, SystemConfig{},
                                   stats_path ? &stats_os : nullptr,
                                   record_path ? &recorded : nullptr,
                                   sampler ? &*sampler : nullptr,
                                   json_path ? &json_os : nullptr);
            }
            if (profile_path) {
                profiles.emplace_back(
                    params.name + (pass == 0 ? "/cow" : "/oow"),
                    prof::collect(true));
            }
            if (record_path) {
                saveTraceFile(*record_path, recorded);
                std::printf("recorded %zu trace records to %s\n",
                            recorded.size(), record_path->c_str());
            }
            printForkRow(res);
        }
    }
    if (profile_path) {
        prof::disable();
        std::ofstream pf(*profile_path);
        if (!pf)
            ovl_fatal("cannot open %s for writing", profile_path->c_str());
        pf << "{\n\"_host\": " << hostInfoJson();
        for (const auto &[label, report] : profiles) {
            pf << ",\n\"" << label << "\": ";
            prof::writeJson(pf, report);
        }
        pf << "}\n";
        std::printf("profile written to %s\n", profile_path->c_str());
        if (profile_collapsed) {
            std::ofstream cf(*profile_collapsed);
            if (!cf)
                ovl_fatal("cannot open %s for writing",
                          profile_collapsed->c_str());
            for (const auto &[label, report] : profiles)
                prof::writeCollapsed(cf, report, label);
            std::printf("collapsed stacks written to %s\n",
                        profile_collapsed->c_str());
        }
    }
    if (json_path)
        std::printf("golden stats written to %s\n", json_path->c_str());
    if (ckpt_file)
        std::printf("checkpoints written to %s every %llu ticks\n",
                    ckpt.path.c_str(),
                    (unsigned long long)ckpt.everyTicks);
    if (stats_path)
        std::printf("component stats appended to %s\n",
                    stats_path->c_str());
    if (sample_path)
        std::printf("stats samples written to %s\n", sample_path->c_str());
    if (trace_path) {
        std::uint64_t events = trace::eventCount();
        std::uint64_t dropped = trace::droppedCount();
        trace::stop();
        std::printf("trace written to %s (%llu events",
                    trace_path->c_str(), (unsigned long long)events);
        if (dropped > 0)
            std::printf(", %llu dropped at --trace-limit",
                        (unsigned long long)dropped);
        std::printf(")\n");
    }
    return 0;
}

int
cmdCheckpoint(std::vector<std::string> args)
{
    std::optional<std::string> mode_str = flagValue(args, "--mode");
    std::optional<std::string> tick_str = flagValue(args, "--at-tick");
    std::optional<std::string> out_path = flagValue(args, "--out");
    std::optional<std::string> post_str = flagValue(args, "--post-instr");
    if (args.size() != 1 || !mode_str || !tick_str || !out_path)
        return usage();
    if (*mode_str != "cow" && *mode_str != "oow")
        ovl_fatal("--mode must be cow or oow");
    ForkMode mode = *mode_str == "cow" ? ForkMode::CopyOnWrite
                                       : ForkMode::OverlayOnWrite;

    ForkBenchParams params = forkBenchByName(args[0]);
    if (post_str)
        params.postForkInstructions =
            std::strtoull(post_str->c_str(), nullptr, 10);

    ForkBenchCheckpointOptions ckpt;
    ckpt.path = *out_path;
    ckpt.atTick = std::strtoull(tick_str->c_str(), nullptr, 10);
    if (ckpt.atTick == 0)
        ovl_fatal("--at-tick needs a positive simulated tick");

    std::optional<ForkBenchResult> res =
        runForkBenchCheckpointed(params, mode, SystemConfig{}, ckpt);
    if (res) {
        // The run retired all post-fork instructions before reaching the
        // requested tick, so there is nothing left to resume.
        std::fprintf(stderr,
                     "%s/%s finished before simulated tick %llu;"
                     " no checkpoint written\n",
                     params.name.c_str(), mode_str->c_str(),
                     (unsigned long long)ckpt.atTick);
        printForkRowHeader();
        printForkRow(*res);
        return 1;
    }
    std::printf("checkpoint written to %s (stopped at the first op"
                " boundary at or after tick %llu)\n",
                ckpt.path.c_str(), (unsigned long long)ckpt.atTick);
    std::printf("resume with: overlaysim restore %s\n", ckpt.path.c_str());
    return 0;
}

int
cmdRestore(std::vector<std::string> args)
{
    if (args.size() != 1)
        return usage();
    try {
        ForkBenchResult res = resumeForkBenchCheckpoint(args[0]);
        printForkRowHeader();
        printForkRow(res);
    } catch (const snapshot::SnapshotError &e) {
        std::fprintf(stderr, "restore failed: %s: %s\n", args[0].c_str(),
                     e.what());
        return 1;
    }
    return 0;
}

int
cmdListDebugFlags()
{
    std::printf("%-10s %s\n", "flag", "trace points");
    for (unsigned i = 0; i < unsigned(debug::Flag::NumFlags); ++i) {
        auto flag = debug::Flag(i);
        std::printf("%-10s %s\n", debug::flagName(flag),
                    debug::flagDescription(flag));
    }
    std::printf("\nEnable with OVL_DEBUG=<flag>[,<flag>...] or"
                " OVL_DEBUG=all.\n");
    return 0;
}

int
cmdSpmv(std::vector<std::string> args)
{
    std::optional<std::string> l_str = flagValue(args, "--L");
    std::optional<std::string> nnz_str = flagValue(args, "--nnz");
    std::optional<std::string> rep = flagValue(args, "--rep");
    if (!l_str)
        return usage();

    MatrixSpec spec;
    spec.targetL = std::strtod(l_str->c_str(), nullptr);
    if (spec.targetL >= 5.5) {
        spec.family = MatrixFamily::BlockDense;
        spec.blockRunLines = 128;
    } else if (spec.targetL >= 3.0) {
        spec.family = MatrixFamily::BlockDense;
        spec.blockRunLines = 24;
    }
    if (nnz_str)
        spec.nnz = std::strtoull(nnz_str->c_str(), nullptr, 10);
    spec.name = "cli";
    CooMatrix coo = generateMatrix(spec);
    MatrixStats stats = analyzeMatrix(coo, kLineSize);
    std::printf("matrix: %ux%u, nnz=%llu, realized L=%.2f\n", coo.rows,
                coo.cols, (unsigned long long)coo.nnz(), stats.locality);

    std::vector<double> x(coo.cols);
    Rng rng(1);
    for (double &v : x)
        v = rng.uniform();
    SpmvAddrs addrs;

    auto want = [&](const char *name) {
        return !rep || *rep == name || *rep == "all";
    };
    std::printf("%-8s %12s %14s %12s\n", "rep", "cycles", "instructions",
                "bytes");
    if (want("overlay")) {
        System sys((SystemConfig()));
        OooCore core("core", sys);
        Asid asid = sys.createProcess();
        installVectors(sys, asid, addrs, x, coo.rows);
        OverlayMatrix m(sys, asid, addrs.aBase);
        m.build(coo);
        SpmvResult res = spmvOverlay(sys, core, m, addrs, x, 0);
        std::printf("%-8s %12llu %14llu %12llu\n", "overlay",
                    (unsigned long long)res.cycles,
                    (unsigned long long)res.instructions,
                    (unsigned long long)m.storedBytes());
    }
    if (want("csr")) {
        System sys((SystemConfig()));
        OooCore core("core", sys);
        Asid asid = sys.createProcess();
        installVectors(sys, asid, addrs, x, coo.rows);
        CsrMatrix csr = CsrMatrix::fromCoo(coo);
        installCsr(sys, asid, addrs, csr);
        sys.quiesce();
        SpmvResult res = spmvCsr(sys, core, asid, addrs, csr, x, 0);
        std::printf("%-8s %12llu %14llu %12llu\n", "csr",
                    (unsigned long long)res.cycles,
                    (unsigned long long)res.instructions,
                    (unsigned long long)csr.bytes());
    }
    if (want("dense")) {
        System sys((SystemConfig()));
        OooCore core("core", sys);
        Asid asid = sys.createProcess();
        installVectors(sys, asid, addrs, x, coo.rows);
        installDense(sys, asid, addrs.aBase, coo);
        sys.quiesce();
        SpmvResult res =
            spmvDense(sys, core, asid, addrs,
                      DenseLayout(coo.rows, coo.cols), x, 0);
        std::printf("%-8s %12llu %14llu %12llu\n", "dense",
                    (unsigned long long)res.cycles,
                    (unsigned long long)res.instructions,
                    (unsigned long long)DenseLayout(coo.rows,
                                                    coo.cols).bytes());
    }
    return 0;
}

int
cmdTrace(std::vector<std::string> args)
{
    if (args.size() < 2)
        return usage();
    std::string verb = args[0];
    std::string path = args[1];
    args.erase(args.begin(), args.begin() + 2);

    if (verb == "info") {
        Trace trace = loadTraceFile(path);
        TraceSummary s = summarizeTrace(trace);
        std::printf("records       %llu\n",
                    (unsigned long long)s.records);
        std::printf("instructions  %llu\n",
                    (unsigned long long)s.instructions);
        std::printf("loads/stores  %llu / %llu (%llu dependent)\n",
                    (unsigned long long)s.loads,
                    (unsigned long long)s.stores,
                    (unsigned long long)s.dependentOps);
        std::printf("address range [%#llx, %#llx], %llu pages\n",
                    (unsigned long long)s.minAddr,
                    (unsigned long long)s.maxAddr,
                    (unsigned long long)s.touchedPages);
        return 0;
    }
    if (verb == "run") {
        std::optional<std::string> json_path = flagValue(args, "--json");
        Trace trace = loadTraceFile(path);
        TraceSummary s = summarizeTrace(trace);
        System sys((SystemConfig()));
        OooCore core("core", sys);
        Asid asid = sys.createProcess();
        // Map the touched range (page-aligned, inclusive).
        if (s.loads + s.stores > 0) {
            Addr base = pageBase(s.minAddr);
            std::uint64_t len =
                pageBase(s.maxAddr) + kPageSize - base;
            sys.mapAnon(asid, base, len);
        }
        Tick done = core.run(asid, trace, 0);
        std::printf("ran %llu instructions in %llu cycles (CPI %.3f)\n",
                    (unsigned long long)core.epochInstructions(),
                    (unsigned long long)done, core.epochCpi());
        maybeDumpJson(sys, json_path);
        return 0;
    }
    return usage();
}

int
cmdStatsDiff(std::vector<std::string> args)
{
    if (args.size() != 2) {
        std::fprintf(stderr,
                     "usage: overlaysim stats-diff <a.json> <b.json>\n");
        return 2;
    }
    return statsdiff::runStatsDiff(args[0], args[1], stdout);
}

int
cmdConfig()
{
    SystemConfig cfg;
    std::printf("core        %.2f GHz, issue %u, window %u\n", cfg.coreGhz,
                cfg.issueWidth, cfg.instructionWindow);
    std::printf("tlb         L1 %u/%u-way (%llu cyc), L2 %u (%llu cyc),"
                " walk %llu cyc\n",
                cfg.tlb.l1.entries, cfg.tlb.l1.associativity,
                (unsigned long long)cfg.tlb.l1.hitLatency,
                cfg.tlb.l2.entries,
                (unsigned long long)cfg.tlb.l2.hitLatency,
                (unsigned long long)cfg.tlb.walkLatency);
    std::printf("caches      L1 %lluKB L2 %lluKB L3 %lluKB\n",
                (unsigned long long)(cfg.caches.l1.sizeBytes / 1024),
                (unsigned long long)(cfg.caches.l2.sizeBytes / 1024),
                (unsigned long long)(cfg.caches.l3.sizeBytes / 1024));
    std::printf("overlay     OMT cache %u entries (miss %llu cyc),"
                " ORE %llu cyc\n",
                cfg.overlay.omtCache.entries,
                (unsigned long long)cfg.overlay.omtCache.missLatency,
                (unsigned long long)cfg.oreMessageCycles);
    std::printf("os costs    trap %llu, shootdown %llu (+%llu/TLB)\n",
                (unsigned long long)cfg.pageFaultTrapCycles,
                (unsigned long long)cfg.tlbShootdownBaseCycles,
                (unsigned long long)cfg.tlbShootdownPerTlbCycles);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    std::string cmd = argv[1];
    std::vector<std::string> args(argv + 2, argv + argc);
    if (cmd == "forkbench")
        return cmdForkbench(std::move(args));
    if (cmd == "checkpoint")
        return cmdCheckpoint(std::move(args));
    if (cmd == "restore")
        return cmdRestore(std::move(args));
    if (cmd == "spmv")
        return cmdSpmv(std::move(args));
    if (cmd == "trace")
        return cmdTrace(std::move(args));
    if (cmd == "stats-diff")
        return cmdStatsDiff(std::move(args));
    if (cmd == "config")
        return cmdConfig();
    if (cmd == "list-debug-flags")
        return cmdListDebugFlags();
    return usage();
}
