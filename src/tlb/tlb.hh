/**
 * @file
 * Two-level TLB (Table 2: 64-entry 4-way L1, 1 cycle; 1024-entry L2,
 * 10 cycles; miss cost 1000 cycles). Entries are extended with the
 * OBitVector of the page (Figure 6, item 3) so the processor can decide
 * on the L1-cache critical path whether an access targets the overlay.
 * The `overlaying read exclusive` coherence hook updates a single
 * OBitVector bit without a shootdown (§4.3.3).
 */

#ifndef OVERLAYSIM_TLB_TLB_HH
#define OVERLAYSIM_TLB_TLB_HH

#include <cstdint>
#include <vector>

#include "common/bitvector64.hh"
#include "common/logging.hh"
#include "common/types.hh"
#include "sim/sim_object.hh"

namespace ovl
{

/**
 * What a TLB entry caches: the translation, its permission/mode flags,
 * and the overlay bit vector.
 */
struct TlbEntryData
{
    Addr ppn = 0;
    bool writable = false;
    /** Page is in copy-on-write (or overlay-on-write) sharing mode. */
    bool cow = false;
    /** Overlays are enabled for this page (OS opt-in, §2.2). */
    bool overlayEnabled = false;
    /** Overlay holds metadata, not alternate data (§5.3.4). */
    bool metadataMode = false;
    BitVector64 obv;
};

/** Configuration of one TLB level. */
struct TlbParams
{
    unsigned entries = 64;
    unsigned associativity = 4;
    Tick hitLatency = 1;
};

/**
 * One set-associative TLB level, tagged by (ASID, VPN) — no flush on
 * context switch.
 */
class Tlb : public SimObject
{
  public:
    Tlb(std::string name, TlbParams params);

    /** Look up a translation; nullptr on miss. Updates recency on hit.
     *  Inline: this runs at least once per simulated memory access. */
    TlbEntryData *
    lookup(Asid asid, Addr vpn)
    {
        if (Way *way = findWay(asid, vpn)) {
            ++hits_;
            way->lruSeq = ++lruCounter_;
            return &way->data;
        }
        ++misses_;
        return nullptr;
    }

    /** Probe without recency update. */
    const TlbEntryData *probe(Asid asid, Addr vpn) const;

    /**
     * Install a translation, evicting the set's LRU entry if needed.
     * Inline: L2-hit promotions into the L1 TLB make this hot on
     * streaming workloads.
     */
    void
    insert(Asid asid, Addr vpn, const TlbEntryData &data)
    {
        ovl_assert(vpn >> kVpnBits == 0, "VPN too wide for the TLB key");
        if (Way *way = findWay(asid, vpn)) {
            way->data = data;
            way->lruSeq = ++lruCounter_;
            return;
        }
        std::size_t base = std::size_t(setOf(vpn)) * params_.associativity;
        unsigned victim = 0;
        for (unsigned w = 0; w < params_.associativity; ++w) {
            if (keys_[base + w] == kNoKey) {
                victim = w;
                break;
            }
            if (ways_[base + w].lruSeq < ways_[base + victim].lruSeq)
                victim = w;
        }
        if (keys_[base + victim] != kNoKey)
            noteErased(asidOf(keys_[base + victim]));
        noteInserted(asid);
        keys_[base + victim] = keyOf(asid, vpn);
        ways_[base + victim].data = data;
        ways_[base + victim].lruSeq = ++lruCounter_;
    }

    /**
     * True if any entry of @p asid is resident. O(1): coherence
     * broadcasts (ORE messages, reclaim) use this to skip TLBs that
     * provably cannot hold the mapping, without probing their sets.
     */
    bool
    holdsAsid(Asid asid) const
    {
        return asid < asidEntries_.size() && asidEntries_[asid] != 0;
    }

    /** Drop one translation (remap / shootdown). */
    void invalidate(Asid asid, Addr vpn);

    /** Drop every translation of @p asid (process teardown). */
    void invalidateAsid(Asid asid);

    /** Drop everything. */
    void flush();

    /**
     * Coherence hook: if (asid, vpn) is cached, set OBitVector bit
     * @p line_in_page (overlaying write) or clear it / rewrite flags
     * through the returned pointer. Returns true if the entry was
     * present.
     */
    bool updateObvBit(Asid asid, Addr vpn, unsigned line_in_page, bool value);

    const TlbParams &params() const { return params_; }

    std::uint64_t hits() const { return hits_.value(); }
    std::uint64_t misses() const { return misses_.value(); }

    /** Snapshot keys, entry payloads, recency and per-ASID counts. */
    void serialize(snapshot::Writer &w) const;
    void deserialize(snapshot::Reader &r);

  private:
    /** Payload of one way; the (asid, vpn) tag lives in keys_. */
    struct Way
    {
        TlbEntryData data;
        std::uint64_t lruSeq = 0;
    };

    /** VPN bits in a packed key; the ASID occupies the bits above. */
    static constexpr unsigned kVpnBits = 44;
    /** Empty way. Real keys never set bits 60+ (16-bit ASID << 44). */
    static constexpr std::uint64_t kNoKey = ~std::uint64_t(0);

    static std::uint64_t
    keyOf(Asid asid, Addr vpn)
    {
        return (std::uint64_t(asid) << kVpnBits) | vpn;
    }

    static Asid asidOf(std::uint64_t key) { return Asid(key >> kVpnBits); }

    unsigned setOf(Addr vpn) const { return unsigned(vpn) & (numSets_ - 1); }

    void
    noteInserted(Asid asid)
    {
        if (asid >= asidEntries_.size())
            asidEntries_.resize(std::size_t(asid) + 1, 0);
        ++asidEntries_[asid];
    }

    void noteErased(Asid asid) { --asidEntries_[asid]; }

    Way *
    findWay(Asid asid, Addr vpn)
    {
        std::uint64_t key = keyOf(asid, vpn);
        std::size_t base = std::size_t(setOf(vpn)) * params_.associativity;
        for (unsigned w = 0; w < params_.associativity; ++w) {
            if (keys_[base + w] == key)
                return &ways_[base + w];
        }
        return nullptr;
    }

    TlbParams params_;
    unsigned numSets_;
    /**
     * Packed (asid << kVpnBits) | vpn tags, parallel to ways_ — the way
     * scan runs at least once per simulated access, and one 8-byte
     * compare per way beats touching the full Way record (whose
     * OBitVector-bearing payload spans several lines per set).
     */
    std::vector<std::uint64_t> keys_;
    std::vector<Way> ways_;
    std::uint64_t lruCounter_ = 0;
    /** Resident-entry count per ASID, backing holdsAsid(). */
    std::vector<std::uint32_t> asidEntries_;

    stats::Counter hits_;
    stats::Counter misses_;
    stats::Counter coherenceUpdates_;
};

/** Parameters of the two-level TLB plus the page-walk cost. */
struct TlbHierarchyParams
{
    TlbParams l1{64, 4, 1};
    TlbParams l2{1024, 8, 10};
    Tick walkLatency = 1000; ///< Table 2: TLB miss = 1000 cycles
};

/** Outcome of a two-level TLB access. */
struct TlbAccessResult
{
    /** Valid entry pointer into the L1 TLB (installed on miss by caller). */
    TlbEntryData *entry = nullptr;
    Tick latency = 0;
    /** True when both levels missed and a page walk is required. */
    bool needsWalk = false;
};

/**
 * L1 + L2 TLB composition. On an L2 hit the entry is promoted into L1;
 * on a full miss the caller performs the page walk (and the OMT access
 * for the OBitVector, §4.3) and installs via fill().
 */
class TwoLevelTlb : public SimObject
{
  public:
    TwoLevelTlb(std::string name, TlbHierarchyParams params);

    /** Look up (asid, vpn); see TlbAccessResult. Inline: first stop of
     *  every simulated memory access. */
    TlbAccessResult
    access(Asid asid, Addr vpn)
    {
        TlbAccessResult res;
        if (TlbEntryData *entry = l1_.lookup(asid, vpn)) {
            res.entry = entry;
            res.latency = params_.l1.hitLatency;
            return res;
        }
        if (TlbEntryData *entry = l2_.lookup(asid, vpn)) {
            // Promote into L1 and return the L1 copy so that coherence
            // updates through the returned pointer hit the level the core
            // reads from.
            l1_.insert(asid, vpn, *entry);
            res.entry = l1_.lookup(asid, vpn);
            res.latency = params_.l1.hitLatency + params_.l2.hitLatency;
            return res;
        }
        res.needsWalk = true;
        res.latency = params_.l1.hitLatency + params_.l2.hitLatency +
                      params_.walkLatency;
        return res;
    }

    /** Install a walked translation into both levels. */
    TlbEntryData *fill(Asid asid, Addr vpn, const TlbEntryData &data);

    /**
     * Invalidate in both levels. @p when is the shootdown's simulated
     * time, used only as the timestamp of the trace-sink instant event
     * (callers without a meaningful tick may omit it).
     */
    void invalidate(Asid asid, Addr vpn, Tick when = 0);
    void invalidateAsid(Asid asid, Tick when = 0);
    void flush();

    /** Coherence hook applied to both levels (§4.3.3). */
    bool updateObvBit(Asid asid, Addr vpn, unsigned line_in_page, bool value);

    const TlbHierarchyParams &params() const { return params_; }
    Tlb &l1() { return l1_; }
    Tlb &l2() { return l2_; }

    /** Snapshot both levels. */
    void serialize(snapshot::Writer &w) const;
    void deserialize(snapshot::Reader &r);

  private:
    TlbHierarchyParams params_;
    Tlb l1_;
    Tlb l2_;
};

} // namespace ovl

#endif // OVERLAYSIM_TLB_TLB_HH
