#include "tlb.hh"

#include <algorithm>

#include "common/intmath.hh"
#include "common/logging.hh"
#include "sim/profile.hh"
#include "sim/snapshot.hh"
#include "sim/trace.hh"

namespace ovl
{

Tlb::Tlb(std::string name, TlbParams params)
    : SimObject(std::move(name)), params_(params),
      numSets_(params.entries / params.associativity),
      keys_(params.entries, kNoKey),
      ways_(params.entries),
      hits_(&statGroup(), "hits", "TLB hits"),
      misses_(&statGroup(), "misses", "TLB misses"),
      coherenceUpdates_(&statGroup(), "coherenceUpdates",
                        "OBitVector bits updated by coherence messages")
{
    ovl_assert(params.entries % params.associativity == 0,
               "TLB entries must divide evenly into sets");
    ovl_assert(isPowerOf2(numSets_), "TLB set count must be a power of two");
}

const TlbEntryData *
Tlb::probe(Asid asid, Addr vpn) const
{
    const Way *way = const_cast<Tlb *>(this)->findWay(asid, vpn);
    return way ? &way->data : nullptr;
}

void
Tlb::invalidate(Asid asid, Addr vpn)
{
    if (Way *way = findWay(asid, vpn)) {
        keys_[std::size_t(way - ways_.data())] = kNoKey;
        noteErased(asid);
    }
}

void
Tlb::invalidateAsid(Asid asid)
{
    for (std::uint64_t &key : keys_) {
        if (key != kNoKey && asidOf(key) == asid)
            key = kNoKey;
    }
    if (asid < asidEntries_.size())
        asidEntries_[asid] = 0;
}

void
Tlb::flush()
{
    std::fill(keys_.begin(), keys_.end(), kNoKey);
    asidEntries_.assign(asidEntries_.size(), 0);
}

bool
Tlb::updateObvBit(Asid asid, Addr vpn, unsigned line_in_page, bool value)
{
    if (!holdsAsid(asid))
        return false;
    if (Way *way = findWay(asid, vpn)) {
        way->data.obv.assign(line_in_page, value);
        ++coherenceUpdates_;
        return true;
    }
    return false;
}

TwoLevelTlb::TwoLevelTlb(std::string name, TlbHierarchyParams params)
    : SimObject(std::move(name)), params_(params),
      l1_(this->name() + ".l1", params.l1),
      l2_(this->name() + ".l2", params.l2)
{
}

TlbEntryData *
TwoLevelTlb::fill(Asid asid, Addr vpn, const TlbEntryData &data)
{
    l2_.insert(asid, vpn, data);
    l1_.insert(asid, vpn, data);
    return l1_.lookup(asid, vpn);
}

void
TwoLevelTlb::invalidate(Asid asid, Addr vpn, Tick when)
{
    if (trace::active()) {
        trace::instant("tlb", "tlb_shootdown", when,
                       {{"asid", asid}, {"vpn", vpn}});
    }
    l1_.invalidate(asid, vpn);
    l2_.invalidate(asid, vpn);
}

void
TwoLevelTlb::invalidateAsid(Asid asid, Tick when)
{
    OVL_PROF_SCOPE(TlbMaint);
    if (trace::active()) {
        trace::instant("tlb", "tlb_shootdown_asid", when,
                       {{"asid", asid}});
    }
    l1_.invalidateAsid(asid);
    l2_.invalidateAsid(asid);
}

void
TwoLevelTlb::flush()
{
    l1_.flush();
    l2_.flush();
}

bool
TwoLevelTlb::updateObvBit(Asid asid, Addr vpn, unsigned line_in_page,
                          bool value)
{
    // Each level's holdsAsid() filter makes this a cheap no-op on TLBs
    // that never cached the process — the common case for the other
    // cores' TLBs during an ORE broadcast (§4.3.3).
    bool upper = l1_.updateObvBit(asid, vpn, line_in_page, value);
    bool lower = l2_.updateObvBit(asid, vpn, line_in_page, value);
    return upper || lower;
}

void
Tlb::serialize(snapshot::Writer &w) const
{
    w.beginSection("TLB ");
    w.u64(keys_.size());
    for (std::uint64_t key : keys_)
        w.u64(key);
    for (const Way &way : ways_) {
        w.u64(way.data.ppn);
        w.b(way.data.writable);
        w.b(way.data.cow);
        w.b(way.data.overlayEnabled);
        w.b(way.data.metadataMode);
        w.u64(way.data.obv.raw());
        w.u64(way.lruSeq);
    }
    w.u64(lruCounter_);
    w.u64(asidEntries_.size());
    for (std::uint32_t n : asidEntries_)
        w.u32(n);
    w.endSection();
}

void
Tlb::deserialize(snapshot::Reader &r)
{
    r.expectSection("TLB ");
    std::uint64_t n = r.u64();
    if (n != keys_.size()) {
        r.fail("TLB '" + name() + "' way count mismatch: snapshot " +
               std::to_string(n) + ", configured " +
               std::to_string(keys_.size()));
    }
    for (std::uint64_t &key : keys_)
        key = r.u64();
    for (Way &way : ways_) {
        way.data.ppn = r.u64();
        way.data.writable = r.b();
        way.data.cow = r.b();
        way.data.overlayEnabled = r.b();
        way.data.metadataMode = r.b();
        way.data.obv = BitVector64(r.u64());
        way.lruSeq = r.u64();
    }
    lruCounter_ = r.u64();
    asidEntries_.resize(r.count(4));
    for (std::uint32_t &cnt : asidEntries_)
        cnt = r.u32();
    r.endSection();
}

void
TwoLevelTlb::serialize(snapshot::Writer &w) const
{
    w.beginSection("TLB2");
    l1_.serialize(w);
    l2_.serialize(w);
    w.endSection();
}

void
TwoLevelTlb::deserialize(snapshot::Reader &r)
{
    r.expectSection("TLB2");
    l1_.deserialize(r);
    l2_.deserialize(r);
    r.endSection();
}

} // namespace ovl
