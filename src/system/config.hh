/**
 * @file
 * Whole-system configuration, defaulting to Table 2 of the paper plus
 * the OS-cost constants the paper leaves implicit (each with a rationale
 * and an ablation bench; see DESIGN.md §3.3).
 */

#ifndef OVERLAYSIM_SYSTEM_CONFIG_HH
#define OVERLAYSIM_SYSTEM_CONFIG_HH

#include <cstdint>
#include <string>

#include "cache/hierarchy.hh"
#include "common/types.hh"
#include "dram/dram.hh"
#include "overlay/overlay_manager.hh"
#include "tlb/tlb.hh"

namespace ovl
{

/** Configuration of the simulated machine (defaults = Table 2). */
struct SystemConfig
{
    std::string name = "system";

    /** Core: 2.67 GHz, single issue, 64-entry instruction window. */
    double coreGhz = 2.67;
    unsigned issueWidth = 1;
    unsigned instructionWindow = 64;

    std::uint64_t memCapacityBytes = 4ull << 30;

    DramTimingParams dram{};
    unsigned writeBufferEntries = 64;

    HierarchyParams caches{};
    TlbHierarchyParams tlb{};
    OverlayManagerParams overlay{};

    /** Number of TLBs kept coherent (cores); the evaluations use 1. */
    unsigned numTlbs = 1;

    // ----- OS/coherence cost constants (not in Table 2; see DESIGN.md) --

    /**
     * Trap into the OS page-fault handler and back. HP-UX-class kernels
     * measure fork/fault software paths in the low thousands of cycles
     * [41]; 1500 cycles is the handler-entry/exit share.
     */
    Tick pageFaultTrapCycles = 1500;

    /**
     * Remote TLB shootdown for one page remap: IPI + handler on each
     * core [6, 52]; DiDi [54] reports multi-microsecond worst cases.
     * Charged as base + per-TLB cost.
     */
    Tick tlbShootdownBaseCycles = 3000;
    Tick tlbShootdownPerTlbCycles = 1000;

    /**
     * One `overlaying read exclusive` coherence message (§4.3.3): a
     * coherence-network broadcast that must be acknowledged by every
     * TLB before the write proceeds — an L3/directory-class round trip
     * plus snoop-ack collection.
     */
    Tick oreMessageCycles = 160;

    /**
     * Overlay promotion policy (§4.3.4): when an overlay accumulates at
     * least this many lines, the OS converts it to a regular page via
     * copy-and-commit. 64 disables promotion (an overlay can hold all 64
     * lines, at which point it occupies a full 4 KB segment anyway).
     */
    unsigned promoteThresholdLines = 64;

    /** Global switch: overlays off = baseline machine (§3.3 opt-in). */
    bool overlaysEnabled = true;

    Tick tlbShootdownCycles() const
    {
        return tlbShootdownBaseCycles +
               Tick(numTlbs) * tlbShootdownPerTlbCycles;
    }
};

} // namespace ovl

#endif // OVERLAYSIM_SYSTEM_CONFIG_HH
