#include "system.hh"

#include <algorithm>
#include <cstring>

#include "common/debug.hh"
#include "common/logging.hh"
#include "sim/profile.hh"
#include "sim/snapshot.hh"
#include "sim/stats_sampler.hh"
#include "sim/trace.hh"

namespace ovl
{

OverlayAwareMemController::OverlayAwareMemController(std::string name,
                                                     DramController &dram,
                                                     OverlayManager &ovm)
    : SimObject(std::move(name)), dram_(dram), ovm_(ovm),
      regularReads_(&statGroup(), "regularReads", "regular DRAM line reads"),
      regularWritebacks_(&statGroup(), "regularWritebacks",
                         "regular DRAM line writebacks"),
      overlayReads_(&statGroup(), "overlayReads", "overlay line reads"),
      overlayWritebacks_(&statGroup(), "overlayWritebacks",
                         "overlay line writebacks"),
      droppedPrefetches_(&statGroup(), "droppedPrefetches",
                         "prefetches of unmapped overlay lines dropped")
{
}

Tick
OverlayAwareMemController::readLine(Addr line_addr, Tick when)
{
    if (overlay_addr::isOverlay(line_addr)) {
        Opn opn = line_addr >> kPageShift;
        unsigned line = lineInPage(line_addr);
        if (!ovm_.obitvector(opn).test(line)) {
            // Only the prefetcher generates reads of unmapped overlay
            // lines; the controller squashes them after the OMT check.
            ++droppedPrefetches_;
            return ovm_.omtAccess(opn, when);
        }
        ++overlayReads_;
        return ovm_.readLine(line_addr, when);
    }
    ++regularReads_;
    return dram_.read(line_addr, when);
}

Tick
OverlayAwareMemController::writebackLine(Addr line_addr, Tick when)
{
    if (overlay_addr::isOverlay(line_addr)) {
        ++overlayWritebacks_;
        return ovm_.writebackLine(line_addr, when);
    }
    ++regularWritebacks_;
    return dram_.enqueueWrite(line_addr, when);
}

System::System(SystemConfig config)
    : SimObject(config.name), config_(std::move(config)),
      physMem_(name() + ".physMem", config_.memCapacityBytes),
      vmm_(name() + ".vmm", physMem_),
      dramCtrl_(name() + ".dramCtrl", config_.dram,
                config_.writeBufferEntries),
      overlayMgr_(name() + ".overlay", config_.overlay, dramCtrl_,
                  PageAllocFn{[](void *ctx) {
                                  auto *sys = static_cast<System *>(ctx);
                                  sys->omsBackingBytes_ += kPageSize;
                                  return sys->physMem_.allocFrame()
                                         << kPageShift;
                              },
                              this}),
      memCtrl_(name() + ".memCtrl", dramCtrl_, overlayMgr_),
      caches_(name() + ".caches", config_.caches, memCtrl_),
      accesses_(&statGroup(), "accesses", "memory accesses"),
      functionalAccesses_(&statGroup(), "functionalAccesses",
                          "accesses fast-forwarded functionally (sampled"
                          " simulation)"),
      tlbWalks_(&statGroup(), "tlbWalks", "page-table walks"),
      cowFaults_(&statGroup(), "cowFaults", "copy-on-write faults"),
      cowLinesCopied_(&statGroup(), "cowLinesCopied",
                      "lines copied by CoW faults"),
      overlayingWrites_(&statGroup(), "overlayingWrites",
                        "overlaying writes (lines moved to overlays)"),
      simpleOverlayWrites_(&statGroup(), "simpleOverlayWrites",
                           "writes to lines already in an overlay"),
      overlayLineReads_(&statGroup(), "overlayLineReads",
                        "reads serviced from overlays"),
      promotions_(&statGroup(), "promotions",
                  "overlays promoted to regular pages"),
      forkPagesShared_(&statGroup(), "forkPagesShared",
                       "pages marked CoW/OoW by fork"),
      forkOverlayLinesCopied_(&statGroup(), "forkOverlayLinesCopied",
                              "overlay lines copied at fork (§4.1)")
{
    for (unsigned i = 0; i < config_.numTlbs; ++i) {
        tlbs_.push_back(std::make_unique<TwoLevelTlb>(
            name() + ".tlb" + std::to_string(i), config_.tlb));
    }
    markMemoryBaseline();
}

// --------------------------- translation ------------------------------

TlbEntryData *
System::translate(Asid asid, Addr vpn, Tick &t, AccessOutcome *outcome,
                  unsigned core)
{
    ovl_assert(core < tlbs_.size(), "no such core/TLB");
    TlbAccessResult tr = tlbs_[core]->access(asid, vpn);
    t += tr.latency;
    if (!tr.needsWalk)
        return tr.entry;

    ++tlbWalks_;
    OVL_PROF_SCOPE(TlbWalk);
    if (outcome)
        outcome->tlbWalk = true;
    if (trace::active()) {
        trace::begin("tlb", "tlb_walk", t - config_.tlb.walkLatency,
                     {{"asid", asid}, {"vpn", vpn}});
    }
    Pte *pte = vmm_.resolve(asid, vpn);
    if (pte == nullptr || !pte->present) {
        ovl_fatal("access to unmapped page: asid=%u vpn=%llx",
                  unsigned(asid), (unsigned long long)vpn);
    }
    TlbEntryData data;
    data.ppn = pte->ppn;
    data.writable = pte->writable;
    data.cow = pte->cow;
    data.overlayEnabled = pte->overlayEnabled;
    data.metadataMode = pte->metadataMode;
    if (pte->overlayEnabled && config_.overlaysEnabled) {
        // The TLB fill also fetches the OBitVector from the OMT (§4.3).
        // Because the virtual-to-overlay mapping is direct (§4.1), the
        // OPN is known without the translation, so the OMT access runs
        // in parallel with the page-table walk; the fill completes at
        // the later of the two.
        Opn opn = overlay_addr::pageFromVirtual(asid, vpn);
        Tick walk_started = t - config_.tlb.walkLatency;
        Tick omt_done = overlayMgr_.omtAccess(opn, walk_started);
        t = std::max(t, omt_done);
        data.obv = overlayMgr_.obitvector(opn);
    }
    if (trace::active())
        trace::end("tlb", "tlb_walk", t);
    return tlbs_[core]->fill(asid, vpn, data);
}

// ------------------------- the access path ----------------------------

Tick
System::access(Asid asid, Addr vaddr, bool is_write, Tick when,
               AccessOutcome *outcome, unsigned core)
{
    ++accesses_;
    OVL_PROF_SCOPE(Access);
    AccessOutcome local;
    if (outcome == nullptr)
        outcome = &local;
    *outcome = AccessOutcome{};

    Addr vpn = pageNumber(vaddr);
    unsigned line = lineInPage(vaddr);
    Tick t = when;
    TlbEntryData *entry = translate(asid, vpn, t, outcome, core);

    if (is_write && entry->cow) {
        bool use_overlay = entry->overlayEnabled &&
                           config_.overlaysEnabled && !entry->metadataMode;
        if (use_overlay) {
            if (!entry->obv.test(line)) {
                t = serviceOverlayingWrite(asid, vaddr, entry, t, outcome);
                // The entry may have been invalidated (promotion); the
                // re-lookup is an L1 TLB hit in the common case.
                entry = translate(asid, vpn, t, outcome, core);
            }
        } else {
            t = serviceCowFault(asid, vaddr, entry, t, outcome, core);
        }
    }

    bool overlay_line = config_.overlaysEnabled && entry->overlayEnabled &&
                        !entry->metadataMode && entry->obv.test(line);
    Addr line_addr = overlay_line ? overlayLineAddr(asid, vaddr)
                                  : physLineAddr(entry->ppn, vaddr);
    if (overlay_line) {
        outcome->overlayLine = true;
        if (is_write)
            ++simpleOverlayWrites_;
        else
            ++overlayLineReads_;
    }
    t = caches_.access(line_addr, is_write, t, &outcome->level);
    // Sampler pump: samplerNext_ is kMaxTick when no sampler is
    // attached, so the steady-state cost is this one compare.
    if (t >= samplerNext_)
        samplerNext_ = sampler_->observe(t);
    outcome->completion = t;
    return t;
}

void
System::accessFunctional(Asid asid, Addr vaddr, bool is_write, unsigned core)
{
    ++functionalAccesses_;
    OVL_PROF_SCOPE(FunctionalFf);
    Addr vpn = pageNumber(vaddr);
    unsigned line = lineInPage(vaddr);

    // TLB warming: the lookup tracks recency like a detailed access, and
    // a miss fills both levels from the page table — state only, no walk
    // latency and no OMT-cache occupancy (the OBitVector is read straight
    // from the OMT).
    TlbAccessResult tr = tlbs_[core]->access(asid, vpn);
    TlbEntryData *entry = tr.entry;
    if (tr.needsWalk) {
        Pte *pte = vmm_.resolve(asid, vpn);
        if (pte == nullptr || !pte->present) {
            ovl_fatal("functional access to unmapped page: asid=%u vpn=%llx",
                      unsigned(asid), (unsigned long long)vpn);
        }
        TlbEntryData data;
        data.ppn = pte->ppn;
        data.writable = pte->writable;
        data.cow = pte->cow;
        data.overlayEnabled = pte->overlayEnabled;
        data.metadataMode = pte->metadataMode;
        if (pte->overlayEnabled && config_.overlaysEnabled) {
            data.obv = overlayMgr_.obitvector(
                overlay_addr::pageFromVirtual(asid, vpn));
        }
        entry = tlbs_[core]->fill(asid, vpn, data);
    }

    if (is_write && entry->cow) {
        bool use_overlay = entry->overlayEnabled &&
                           config_.overlaysEnabled && !entry->metadataMode;
        if (use_overlay) {
            if (!entry->obv.test(line)) {
                ovl_assert(config_.promoteThresholdLines >= kLinesPerPage,
                           "functional fast-forward requires promotion "
                           "disabled");
                ++overlayingWrites_;
                Pte *pte = vmm_.resolve(asid, vpn);
                Opn opn = overlay_addr::pageFromVirtual(asid, vpn);
                Addr pline = physLineAddr(pte->ppn, vaddr);
                overlayLineFunctional(opn, line, pline);
                for (auto &tlb : tlbs_)
                    tlb->updateObvBit(asid, vpn, line, true);
                // The detailed path retags pline -> oline in place; the
                // warm equivalent drops the stale regular-space tag (the
                // overlay-space tag is installed by warmLine below).
                caches_.dropLine(pline);
            }
        } else {
            ++cowFaults_;
            Pte *pte = vmm_.resolve(asid, vpn);
            Addr old_ppn = pte->ppn;
            bool copied = false;
            vmm_.breakCow(asid, vpn, &copied);
            for (auto &tlb : tlbs_)
                tlb->invalidate(asid, vpn);
            pte = vmm_.resolve(asid, vpn);
            if (copied) {
                // The detailed fault copies the page through the caches
                // (64 loads + 64 stores); warm the same footprint.
                for (unsigned l = 0; l < kLinesPerPage; ++l) {
                    Addr off = Addr(l) << kLineShift;
                    caches_.warmLine((old_ppn << kPageShift) | off, false);
                    caches_.warmLine((pte->ppn << kPageShift) | off, true);
                }
            }
            TlbEntryData data;
            data.ppn = pte->ppn;
            data.writable = pte->writable;
            data.cow = pte->cow;
            data.overlayEnabled = pte->overlayEnabled;
            data.metadataMode = pte->metadataMode;
            entry = tlbs_[core]->fill(asid, vpn, data);
        }
    }

    bool overlay_line = config_.overlaysEnabled && entry->overlayEnabled &&
                        !entry->metadataMode && entry->obv.test(line);
    Addr line_addr = overlay_line ? overlayLineAddr(asid, vaddr)
                                  : physLineAddr(entry->ppn, vaddr);
    caches_.warmLine(line_addr, is_write);
}

Tick
System::serviceCowFault(Asid asid, Addr vaddr, TlbEntryData *&entry,
                        Tick t, AccessOutcome *outcome, unsigned core)
{
    ++cowFaults_;
    OVL_PROF_SCOPE(CowFault);
    outcome->cowFault = true;
    ovl_trace(system, "CoW fault: asid=%u vaddr=%llx t=%llu",
              unsigned(asid), (unsigned long long)vaddr,
              (unsigned long long)t);
    if (trace::active()) {
        trace::begin("overlay", "cow_fault", t,
                     {{"asid", asid}, {"vaddr", vaddr}});
    }
    t += config_.pageFaultTrapCycles;

    Addr vpn = pageNumber(vaddr);
    Pte *pte = vmm_.resolve(asid, vpn);
    Addr old_ppn = pte->ppn;
    bool copied = false;
    vmm_.breakCow(asid, vpn, &copied);

    if (copied) {
        // The OS copies the page through the CPU caches: 64 loads and 64
        // stores, issued with high memory-level parallelism (§5.1). This
        // is what pollutes the L1 and doubles the write bandwidth.
        Tick copy_done = t;
        for (unsigned l = 0; l < kLinesPerPage; ++l) {
            Addr src = (old_ppn << kPageShift) | (Addr(l) << kLineShift);
            Addr dst = (pte->ppn << kPageShift) | (Addr(l) << kLineShift);
            Tick rd = caches_.access(src, false, t);
            Tick wr = caches_.access(dst, true, rd);
            copy_done = std::max(copy_done, wr);
            ++cowLinesCopied_;
        }
        t = copy_done;
    }

    // Remap: update the PTE and shoot down stale TLB entries [6, 52].
    t += config_.tlbShootdownCycles();
    for (auto &tlb : tlbs_)
        tlb->invalidate(asid, vpn, t);

    TlbEntryData data;
    data.ppn = pte->ppn;
    data.writable = pte->writable;
    data.cow = pte->cow;
    data.overlayEnabled = pte->overlayEnabled;
    data.metadataMode = pte->metadataMode;
    entry = tlbs_[core]->fill(asid, vpn, data);
    if (trace::active())
        trace::end("overlay", "cow_fault", t);
    return t;
}

void
System::overlayLineFunctional(Opn opn, unsigned line, Addr phys_line_addr)
{
    // Functional half of the overlaying write: the line's current
    // contents move from the regular physical page into the overlay.
    LineData data;
    physMem_.readLine(phys_line_addr, data);
    overlayMgr_.writeLineData(opn, line, data);
}

Tick
System::broadcastOre(Asid asid, Addr vpn, Opn opn, unsigned line, Tick t)
{
    OVL_PROF_SCOPE(OreBroadcast);
    // The overlaying-read-exclusive message travels the coherence
    // network: every TLB holding the mapping flips one OBitVector bit,
    // and the memory controller updates the OMT (§4.3.3). No shootdown.
    // The write only waits for the TLB updates; the OMT update is
    // posted — it is ordered at the controller and merely occupies the
    // OMT cache and DRAM in the background ("negligible logic on the
    // critical path", §1). Messages serialize at the coherence ordering
    // point, so dense bursts of overlaying writes queue up — this is
    // why clustered write patterns (cactus) favour copy-on-write (§5.1).
    Tick start = std::max(t, oreBusyUntil_);
    Tick ore_done = start + config_.oreMessageCycles;
    oreBusyUntil_ = ore_done;
    for (auto &tlb : tlbs_)
        tlb->updateObvBit(asid, vpn, line, true);
    overlayMgr_.overlayingReadExclusive(opn, line, ore_done);
    if (trace::active()) {
        // Span covers queueing at the ordering point plus transit, so
        // ORE bursts show up as stacked, lengthening spans.
        trace::complete("overlay", "ore_broadcast", t, ore_done - t,
                        {{"asid", asid}, {"vpn", vpn}, {"line", line}});
    }
    return ore_done;
}

Tick
System::serviceOverlayingWrite(Asid asid, Addr vaddr, TlbEntryData *entry,
                               Tick t, AccessOutcome *outcome)
{
    ++overlayingWrites_;
    OVL_PROF_SCOPE(OverlayingWrite);
    outcome->overlayingWrite = true;
    ovl_trace(system, "overlaying write: asid=%u vaddr=%llx line=%u t=%llu",
              unsigned(asid), (unsigned long long)vaddr,
              lineInPage(vaddr), (unsigned long long)t);
    if (trace::active()) {
        trace::begin("overlay", "overlaying_write", t,
                     {{"asid", asid}, {"vaddr", vaddr}});
    }

    // Derive the page's identities once; every step below (functional
    // move, retag, ORE broadcast, OMT update) shares them instead of
    // re-running resolve()/pageFromVirtual() per step.
    Addr vpn = pageNumber(vaddr);
    unsigned line = lineInPage(vaddr);
    Pte *pte = vmm_.resolve(asid, vpn);
    Opn opn = overlay_addr::pageFromVirtual(asid, vpn);
    Addr pline = physLineAddr(pte->ppn, vaddr);
    Addr oline = (opn << kPageShift) | (Addr(line) << kLineShift);

    overlayLineFunctional(opn, line, pline);

    // Step 1 (§4.3.3): move the line's data into the overlay address —
    // in hardware, a cache tag update when the line is resident, or a
    // fetch followed by the tag update otherwise.
    if (!caches_.retagLine(pline, oline, t)) {
        t = caches_.access(pline, false, t);
        caches_.retagLine(pline, oline, t);
    }

    // Step 2: keep TLBs and the OMT coherent with one message.
    t = broadcastOre(asid, vpn, opn, line, t);

    // OS promotion policy (§4.3.4): convert densely-overlaid pages back
    // to regular pages.
    if (config_.promoteThresholdLines < kLinesPerPage &&
        entry->obv.count() >= config_.promoteThresholdLines) {
        t = promoteOverlay(asid, vaddr, PromoteAction::CopyAndCommit, t);
    }
    // Step 3 (the write itself) happens in access() after re-translation.
    if (trace::active())
        trace::end("overlay", "overlaying_write", t);
    return t;
}

// ----------------------- data-carrying wrappers ------------------------

Tick
System::write(Asid asid, Addr vaddr, const void *data, std::size_t len,
              Tick when)
{
    const auto *src = static_cast<const std::uint8_t *>(data);
    Tick t = when;
    while (len > 0) {
        std::size_t chunk = std::min<std::size_t>(
            len, std::size_t(lineBase(vaddr) + kLineSize - vaddr));
        t = access(asid, vaddr, true, t);
        poke(asid, vaddr, src, chunk);
        vaddr += chunk;
        src += chunk;
        len -= chunk;
    }
    return t;
}

Tick
System::read(Asid asid, Addr vaddr, void *out, std::size_t len, Tick when)
{
    auto *dst = static_cast<std::uint8_t *>(out);
    Tick t = when;
    while (len > 0) {
        std::size_t chunk = std::min<std::size_t>(
            len, std::size_t(lineBase(vaddr) + kLineSize - vaddr));
        t = access(asid, vaddr, false, t);
        peek(asid, vaddr, dst, chunk);
        vaddr += chunk;
        dst += chunk;
        len -= chunk;
    }
    return t;
}

void
System::poke(Asid asid, Addr vaddr, const void *data, std::size_t len)
{
    const auto *src = static_cast<const std::uint8_t *>(data);
    while (len > 0) {
        std::size_t chunk = std::min<std::size_t>(
            len, std::size_t(lineBase(vaddr) + kLineSize - vaddr));
        Addr vpn = pageNumber(vaddr);
        unsigned line = lineInPage(vaddr);
        Pte *pte = vmm_.resolve(asid, vpn);
        ovl_assert(pte != nullptr && pte->present, "poke to unmapped page");

        bool use_overlay = config_.overlaysEnabled && pte->overlayEnabled &&
                           !pte->metadataMode;
        Opn opn = overlay_addr::pageFromVirtual(asid, vpn);

        if (pte->cow && use_overlay &&
            !overlayMgr_.obitvector(opn).test(line)) {
            // Functional overlaying write (no timing charge).
            overlayLineFunctional(opn, line, physLineAddr(pte->ppn, vaddr));
            for (auto &tlb : tlbs_)
                tlb->updateObvBit(asid, vpn, line, true);
        } else if (pte->cow && !use_overlay) {
            vmm_.breakCow(asid, vpn);
            for (auto &tlb : tlbs_)
                tlb->invalidate(asid, vpn);
        }

        if (use_overlay && overlayMgr_.obitvector(opn).test(line)) {
            LineData line_data;
            overlayMgr_.readLineData(opn, line, line_data);
            std::memcpy(line_data.data() + (vaddr & kLineMask), src, chunk);
            overlayMgr_.writeLineData(opn, line, line_data);
        } else {
            physMem_.writeBytes((pte->ppn << kPageShift) | pageOffset(vaddr),
                                src, chunk);
        }
        vaddr += chunk;
        src += chunk;
        len -= chunk;
    }
}

void
System::peek(Asid asid, Addr vaddr, void *out, std::size_t len) const
{
    auto *dst = static_cast<std::uint8_t *>(out);
    while (len > 0) {
        std::size_t chunk = std::min<std::size_t>(
            len, std::size_t(lineBase(vaddr) + kLineSize - vaddr));
        Addr vpn = pageNumber(vaddr);
        unsigned line = lineInPage(vaddr);
        const Pte *pte = vmm_.process(asid).pageTable.find(vpn);
        ovl_assert(pte != nullptr && pte->present, "peek of unmapped page");

        Opn opn = overlay_addr::pageFromVirtual(asid, vpn);
        if (config_.overlaysEnabled && pte->overlayEnabled &&
            !pte->metadataMode && overlayMgr_.obitvector(opn).test(line)) {
            // Access semantics of Figure 2: overlay lines come from the
            // overlay, all others from the physical page.
            LineData line_data;
            overlayMgr_.readLineData(opn, line, line_data);
            std::memcpy(dst, line_data.data() + (vaddr & kLineMask), chunk);
        } else {
            physMem_.readBytes((pte->ppn << kPageShift) | pageOffset(vaddr),
                               dst, chunk);
        }
        vaddr += chunk;
        dst += chunk;
        len -= chunk;
    }
}

// ----------------------- metadata instructions -------------------------

Tick
System::metadataAccess(Asid asid, Addr vaddr, bool is_write, Tick when)
{
    Addr vpn = pageNumber(vaddr);
    Tick t = when;
    TlbEntryData *entry = translate(asid, vpn, t, nullptr);
    ovl_assert(entry->metadataMode && entry->overlayEnabled,
               "metadata access to a page not in metadata mode");
    Opn opn = overlay_addr::pageFromVirtual(asid, vpn);
    if (is_write) {
        // First store to a shadow line maps it (same ORE protocol).
        unsigned line = lineInPage(vaddr);
        if (!entry->obv.test(line))
            t = broadcastOre(asid, vpn, opn, line, t);
    }
    Addr oline = (opn << kPageShift) | (pageOffset(vaddr) & ~kLineMask);
    return caches_.access(oline, is_write, t);
}

void
System::metadataPoke(Asid asid, Addr vaddr, const void *data,
                     std::size_t len)
{
    const auto *src = static_cast<const std::uint8_t *>(data);
    while (len > 0) {
        std::size_t chunk = std::min<std::size_t>(
            len, std::size_t(lineBase(vaddr) + kLineSize - vaddr));
        Addr vpn = pageNumber(vaddr);
        unsigned line = lineInPage(vaddr);
        Opn opn = overlay_addr::pageFromVirtual(asid, vpn);
        LineData line_data{};
        if (overlayMgr_.hasLineData(opn, line))
            overlayMgr_.readLineData(opn, line, line_data);
        std::memcpy(line_data.data() + (vaddr & kLineMask), src, chunk);
        overlayMgr_.writeLineData(opn, line, line_data);
        for (auto &tlb : tlbs_)
            tlb->updateObvBit(asid, vpn, line, true);
        vaddr += chunk;
        src += chunk;
        len -= chunk;
    }
}

void
System::metadataPeek(Asid asid, Addr vaddr, void *out,
                     std::size_t len) const
{
    auto *dst = static_cast<std::uint8_t *>(out);
    while (len > 0) {
        std::size_t chunk = std::min<std::size_t>(
            len, std::size_t(lineBase(vaddr) + kLineSize - vaddr));
        Addr vpn = pageNumber(vaddr);
        unsigned line = lineInPage(vaddr);
        Opn opn = overlay_addr::pageFromVirtual(asid, vpn);
        if (overlayMgr_.hasLineData(opn, line)) {
            LineData line_data;
            overlayMgr_.readLineData(opn, line, line_data);
            std::memcpy(dst, line_data.data() + (vaddr & kLineMask), chunk);
        } else {
            std::memset(dst, 0, chunk); // unmapped shadow lines are zero
        }
        vaddr += chunk;
        dst += chunk;
        len -= chunk;
    }
}

// ------------------------------ fork -----------------------------------

Asid
System::fork(Asid parent, ForkMode mode, Tick when, Tick *done)
{
    OVL_PROF_SCOPE(Fork);
    Asid child = vmm_.fork(parent, mode);
    ovl_trace(system, "fork: parent=%u child=%u mode=%s", unsigned(parent),
              unsigned(child),
              mode == ForkMode::CopyOnWrite ? "cow" : "oow");
    if (trace::active()) {
        trace::begin("system", "fork", when,
                     {{"parent", parent}, {"child", child}});
    }
    Tick t = when + config_.pageFaultTrapCycles; // syscall + bookkeeping

    // Charge the page-table copy (8 B PTEs, 8 per line) through DRAM.
    Process &parent_proc = vmm_.process(parent);
    std::uint64_t pages = parent_proc.pageTable.size();
    forkPagesShared_ += pages;
    std::uint64_t pte_lines = (pages * 8 + kLineSize - 1) / kLineSize;
    for (std::uint64_t i = 0; i < pte_lines; ++i) {
        // Sequential table reads followed by buffered writes.
        t = dramCtrl_.read((i * kLineSize) % config_.memCapacityBytes, t);
        dramCtrl_.enqueueWrite((i * kLineSize) % config_.memCapacityBytes,
                               t);
    }

    // §4.1: overlays are not shared across virtual pages, so fork must
    // copy the parent's overlay lines into the child's overlays. The
    // copy walks pages in ascending-VPN order: the order is part of the
    // deterministic timing contract (it decides the cache/DRAM access
    // sequence). PageTable iteration is ascending by construction, and
    // nothing in the loop mutates the parent's table.
    if (config_.overlaysEnabled) {
        for (auto &&[vpn, pte] : parent_proc.pageTable) {
            (void)pte;
            Opn parent_opn = overlay_addr::pageFromVirtual(parent, vpn);
            BitVector64 obv = overlayMgr_.obitvector(parent_opn);
            if (obv.none())
                continue;
            Opn child_opn = overlay_addr::pageFromVirtual(child, vpn);
            for (unsigned l = obv.findFirst(); l < kLinesPerPage;
                 l = obv.findNext(l)) {
                LineData data;
                overlayMgr_.readLineData(parent_opn, l, data);
                overlayMgr_.writeLineData(child_opn, l, data);
                ++forkOverlayLinesCopied_;
                Addr src = (parent_opn << kPageShift) |
                           (Addr(l) << kLineShift);
                t = caches_.access(src, false, t);
                Addr dst = (child_opn << kPageShift) |
                           (Addr(l) << kLineShift);
                caches_.access(dst, true, t);
            }
        }
    }

    // The parent's cached translations are stale (cow now set).
    t += config_.tlbShootdownCycles();
    for (auto &tlb : tlbs_)
        tlb->invalidateAsid(parent, t);

    if (trace::active())
        trace::end("system", "fork", t);
    if (done)
        *done = t;
    return child;
}

Asid
System::forkFunctional(Asid parent, ForkMode mode)
{
    OVL_PROF_SCOPE(FunctionalFf);
    Asid child = vmm_.fork(parent, mode);
    Process &parent_proc = vmm_.process(parent);
    forkPagesShared_ += parent_proc.pageTable.size();

    // §4.1 overlay copy, functional half only: the child's overlays get
    // the parent's lines, but no cache or DRAM activity is charged.
    if (config_.overlaysEnabled) {
        for (auto &&[vpn, pte] : parent_proc.pageTable) {
            (void)pte;
            Opn parent_opn = overlay_addr::pageFromVirtual(parent, vpn);
            BitVector64 obv = overlayMgr_.obitvector(parent_opn);
            if (obv.none())
                continue;
            Opn child_opn = overlay_addr::pageFromVirtual(child, vpn);
            for (unsigned l = obv.findFirst(); l < kLinesPerPage;
                 l = obv.findNext(l)) {
                LineData data;
                overlayMgr_.readLineData(parent_opn, l, data);
                overlayMgr_.writeLineData(child_opn, l, data);
                ++forkOverlayLinesCopied_;
            }
        }
    }

    // The parent's cached translations really are stale (cow now set):
    // dropping them is architectural state, not timing.
    for (auto &tlb : tlbs_)
        tlb->invalidateAsid(parent);
    return child;
}

void
System::unmap(Asid asid, Addr vaddr, std::uint64_t len, Tick when)
{
    OVL_PROF_SCOPE(Teardown);
    ovl_assert(pageOffset(vaddr) == 0 && len % kPageSize == 0,
               "unmap requires a page-aligned range");
    for (Addr va = vaddr; va < vaddr + len; va += kPageSize) {
        Addr vpn = pageNumber(va);
        if (vmm_.resolve(asid, vpn) == nullptr)
            continue;
        Opn opn = overlay_addr::pageFromVirtual(asid, vpn);
        BitVector64 obv = overlayMgr_.obitvector(opn);
        // Discard the overlay first so writebacks of its cached lines
        // are squashed, then drop those lines from the caches.
        overlayMgr_.discardOverlay(opn);
        for (unsigned l = obv.findFirst(); l < kLinesPerPage;
             l = obv.findNext(l)) {
            caches_.invalidateLine(
                (opn << kPageShift) | (Addr(l) << kLineShift), when);
        }
        for (auto &tlb : tlbs_)
            tlb->invalidate(asid, vpn);
        // If this unmap frees the frame, its cached lines must not alias
        // the frame's next user.
        Pte *pte = vmm_.resolve(asid, vpn);
        if (pte->ppn != PhysicalMemory::kZeroFrame &&
            physMem_.refCount(pte->ppn) == 1) {
            for (unsigned l = 0; l < kLinesPerPage; ++l) {
                caches_.invalidateLine(
                    (pte->ppn << kPageShift) | (Addr(l) << kLineShift),
                    when);
            }
        }
        vmm_.unmap(asid, va, kPageSize);
    }
}

void
System::destroyProcess(Asid asid, Tick when)
{
    OVL_PROF_SCOPE(Teardown);
    // Collect first: unmap() mutates the page table while iterating.
    // Teardown order is timing-visible (cache invalidations, frame
    // recycling); PageTable iteration is already ascending-VPN, so the
    // collected order needs no separate sort.
    std::vector<Addr> vpns;
    vpns.reserve(vmm_.process(asid).pageTable.size());
    for (auto &&[vpn, pte] : vmm_.process(asid).pageTable) {
        (void)pte;
        vpns.push_back(vpn);
    }
    for (Addr vpn : vpns)
        unmap(asid, vpn << kPageShift, kPageSize, when);
    for (auto &tlb : tlbs_)
        tlb->invalidateAsid(asid);
}

void
System::destroyProcessFunctional(Asid asid)
{
    OVL_PROF_SCOPE(FunctionalFf);
    // Mirrors destroyProcess()/unmap() step for step, with cache drops
    // instead of invalidate+writeback: functional data lives in the
    // backing stores, so nothing is lost, and DRAM state stays put.
    std::vector<Addr> vpns;
    vpns.reserve(vmm_.process(asid).pageTable.size());
    for (auto &&[vpn, pte] : vmm_.process(asid).pageTable) {
        (void)pte;
        vpns.push_back(vpn);
    }
    for (Addr vpn : vpns) {
        Opn opn = overlay_addr::pageFromVirtual(asid, vpn);
        BitVector64 obv = overlayMgr_.obitvector(opn);
        overlayMgr_.discardOverlay(opn);
        for (unsigned l = obv.findFirst(); l < kLinesPerPage;
             l = obv.findNext(l)) {
            caches_.dropLine((opn << kPageShift) | (Addr(l) << kLineShift));
        }
        for (auto &tlb : tlbs_)
            tlb->invalidate(asid, vpn);
        Pte *pte = vmm_.resolve(asid, vpn);
        if (pte->ppn != PhysicalMemory::kZeroFrame &&
            physMem_.refCount(pte->ppn) == 1) {
            for (unsigned l = 0; l < kLinesPerPage; ++l) {
                caches_.dropLine((pte->ppn << kPageShift) |
                                 (Addr(l) << kLineShift));
            }
        }
        vmm_.unmap(asid, vpn << kPageShift, kPageSize);
    }
    for (auto &tlb : tlbs_)
        tlb->invalidateAsid(asid);
}

// --------------------------- promotion ---------------------------------

Tick
System::promoteOverlay(Asid asid, Addr vaddr, PromoteAction action,
                       Tick when)
{
    ++promotions_;
    OVL_PROF_SCOPE(Promote);
    ovl_trace(system, "promote: asid=%u page=%llx action=%d",
              unsigned(asid), (unsigned long long)pageBase(vaddr),
              int(action));
    if (trace::active()) {
        trace::begin("overlay", "promote", when,
                     {{"asid", asid},
                      {"page", pageBase(vaddr)},
                      {"action", std::uint64_t(action)}});
    }
    Addr vpn = pageNumber(vaddr);
    Opn opn = overlay_addr::pageFromVirtual(asid, vpn);
    Pte *pte = vmm_.resolve(asid, vpn);
    ovl_assert(pte != nullptr && pte->present, "promotion of unmapped page");
    BitVector64 obv = overlayMgr_.obitvector(opn);

    Tick t = when + config_.pageFaultTrapCycles; // OS-mediated action

    switch (action) {
      case PromoteAction::CopyAndCommit: {
        // Merge the regular page and the overlay into a fresh frame.
        Addr new_frame = physMem_.allocFrame();
        Tick copy_done = t;
        for (unsigned l = 0; l < kLinesPerPage; ++l) {
            LineData data;
            Addr src;
            if (obv.test(l)) {
                overlayMgr_.readLineData(opn, l, data);
                src = (opn << kPageShift) | (Addr(l) << kLineShift);
            } else {
                src = (pte->ppn << kPageShift) | (Addr(l) << kLineShift);
                physMem_.readLine(src, data);
            }
            Addr dst = (new_frame << kPageShift) | (Addr(l) << kLineShift);
            physMem_.writeLine(dst, data);
            Tick rd = caches_.access(src, false, t);
            Tick wr = caches_.access(dst, true, rd);
            copy_done = std::max(copy_done, wr);
        }
        t = copy_done;
        physMem_.release(pte->ppn);
        pte->ppn = new_frame;
        pte->cow = false;
        break;
      }
      case PromoteAction::Commit: {
        // Fold the overlay's lines into the existing physical page
        // (speculation commit / checkpoint collection, §4.3.4).
        ovl_assert(pte->ppn != PhysicalMemory::kZeroFrame,
                   "commit into the shared zero frame");
        ovl_assert(physMem_.refCount(pte->ppn) == 1,
                   "commit into a shared frame");
        Tick copy_done = t;
        for (unsigned l = obv.findFirst(); l < kLinesPerPage;
             l = obv.findNext(l)) {
            LineData data;
            overlayMgr_.readLineData(opn, l, data);
            Addr dst = (pte->ppn << kPageShift) | (Addr(l) << kLineShift);
            physMem_.writeLine(dst, data);
            Addr src = (opn << kPageShift) | (Addr(l) << kLineShift);
            Tick rd = caches_.access(src, false, t);
            Tick wr = caches_.access(dst, true, rd);
            copy_done = std::max(copy_done, wr);
        }
        t = copy_done;
        pte->cow = false;
        break;
      }
      case PromoteAction::Discard:
        // Failed speculation: the overlay simply vanishes; the page
        // stays armed (cow + overlay-enabled) for the next use.
        break;
    }

    // Tear down overlay state: free the OMT entry and segment, drop the
    // overlay's lines from the caches (writebacks of discarded lines are
    // squashed at the controller), and clear the page's OBitVector from
    // every TLB.
    overlayMgr_.discardOverlay(opn);
    for (unsigned l = obv.findFirst(); l < kLinesPerPage;
         l = obv.findNext(l)) {
        caches_.invalidateLine((opn << kPageShift) | (Addr(l) << kLineShift),
                               t);
    }
    t += config_.tlbShootdownCycles();
    for (auto &tlb : tlbs_)
        tlb->invalidate(asid, vpn, t);
    if (trace::active())
        trace::end("overlay", "promote", t);
    return t;
}

// ------------------------------ misc ------------------------------------

BitVector64
System::pageObv(Asid asid, Addr vaddr) const
{
    if (!config_.overlaysEnabled)
        return BitVector64();
    Opn opn = overlay_addr::pageFromVirtual(asid, pageNumber(vaddr));
    return overlayMgr_.obitvector(opn);
}

bool
System::lineInOverlay(Asid asid, Addr vaddr) const
{
    return pageObv(asid, vaddr).test(lineInPage(vaddr));
}

bool
System::reclaimZeroLine(Asid asid, Addr vaddr, Tick when)
{
    Addr vpn = pageNumber(vaddr);
    unsigned line = lineInPage(vaddr);
    Pte *pte = vmm_.resolve(asid, vpn);
    if (pte == nullptr || pte->ppn != PhysicalMemory::kZeroFrame ||
        !pte->overlayEnabled || !config_.overlaysEnabled) {
        return false;
    }
    Opn opn = overlay_addr::pageFromVirtual(asid, vpn);
    if (!overlayMgr_.obitvector(opn).test(line) ||
        !overlayMgr_.hasLineData(opn, line)) {
        return false;
    }
    LineData data;
    overlayMgr_.readLineData(opn, line, data);
    for (std::uint8_t b : data) {
        if (b != 0)
            return false;
    }

    // Drop the line: invalidate the cached copy (its writeback, if any,
    // will be squashed), clear the bit in every TLB and the OMT, and
    // free the slot. If the overlay is now empty, release the segment.
    Addr oline = overlayLineAddr(asid, vaddr);
    caches_.invalidateLine(oline, when);
    overlayMgr_.clearLine(opn, line);
    for (auto &tlb : tlbs_)
        tlb->updateObvBit(asid, vpn, line, false);
    overlayMgr_.omtCache().markModified(opn);
    if (overlayMgr_.obitvector(opn).none())
        overlayMgr_.discardOverlay(opn);
    return true;
}

void
System::prefetchOverlayPage(Asid asid, Addr vaddr, Tick when)
{
    BitVector64 obv = pageObv(asid, vaddr);
    Opn opn = overlay_addr::pageFromVirtual(asid, pageNumber(vaddr));
    for (unsigned l = obv.findFirst(); l < kLinesPerPage;
         l = obv.findNext(l)) {
        caches_.prefetchLine((opn << kPageShift) | (Addr(l) << kLineShift),
                             when);
    }
}

std::uint64_t
System::additionalMemoryBytes() const
{
    // Private frames, minus the pages merely backing the OMS region,
    // plus the OMS segments actually allocated and the OMT's own nodes.
    std::uint64_t used = physMem_.bytesInUse() - omsBackingBytes_ +
                         overlayMgr_.omsBytesInUse() +
                         overlayMgr_.omt().nodeBytes();
    return used - memoryBaselineBytes_;
}

void
System::markMemoryBaseline()
{
    memoryBaselineBytes_ = 0;
    memoryBaselineBytes_ = physMem_.bytesInUse() - omsBackingBytes_ +
                           overlayMgr_.omsBytesInUse() +
                           overlayMgr_.omt().nodeBytes();
}

void
System::quiesce()
{
    dramCtrl_.resetTiming();
    caches_.resetTiming();
    oreBusyUntil_ = 0;
}

void
System::dumpAllStats(std::ostream &os)
{
    statGroup().dump(os);
    physMem_.dumpStats(os);
    vmm_.dumpStats(os);
    dramCtrl_.dumpStats(os);
    overlayMgr_.dumpStats(os);
    memCtrl_.dumpStats(os);
    caches_.dumpStats(os);
    caches_.l1().dumpStats(os);
    caches_.l2().dumpStats(os);
    caches_.l3().dumpStats(os);
    caches_.prefetcher().dumpStats(os);
    for (const auto &tlb : tlbs_) {
        tlb->l1().dumpStats(os);
        tlb->l2().dumpStats(os);
    }
}

void
System::dumpAllStatsJson(std::ostream &os)
{
    os << "{";
    bool first = true;
    forEachStatsGroup([&](const stats::Group *group) {
        if (!first)
            os << ",\n ";
        first = false;
        os << "\"" << group->name() << "\": ";
        group->dumpJson(os);
    });
    os << "}\n";
}

void
System::resetStats()
{
    SimObject::resetStats();
    physMem_.resetStats();
    vmm_.resetStats();
    dramCtrl_.resetStats();
    overlayMgr_.resetStats();
    memCtrl_.resetStats();
    caches_.resetStats();
    // A mid-run reset must not produce negative per-interval deltas.
    if (sampler_ != nullptr)
        sampler_->rebase();
}

void
System::forEachStatsGroup(
    const std::function<void(const stats::Group *)> &fn)
{
    const stats::Group *groups[] = {
        &statGroup(),
        &physMem_.statGroup(),
        &vmm_.statGroup(),
        &dramCtrl_.statGroup(),
        &dramCtrl_.dram().statGroup(),
        &overlayMgr_.statGroup(),
        &overlayMgr_.omt().statGroup(),
        &overlayMgr_.omtCache().statGroup(),
        &overlayMgr_.allocator().statGroup(),
        &memCtrl_.statGroup(),
        &caches_.statGroup(),
        &caches_.l1().statGroup(),
        &caches_.l2().statGroup(),
        &caches_.l3().statGroup(),
        &caches_.prefetcher().statGroup(),
    };
    for (const stats::Group *group : groups)
        fn(group);
    for (const auto &tlb : tlbs_) {
        fn(&tlb->l1().statGroup());
        fn(&tlb->l2().statGroup());
    }
}

void
System::serialize(snapshot::Writer &w)
{
    OVL_PROF_SCOPE(SnapshotIo);
    w.beginSection("SYS ");
    w.u32(std::uint32_t(tlbs_.size()));
    physMem_.serialize(w);
    vmm_.serialize(w);
    dramCtrl_.serialize(w);
    overlayMgr_.serialize(w);
    caches_.serialize(w);
    for (const auto &tlb : tlbs_)
        tlb->serialize(w);
    w.u64(memoryBaselineBytes_);
    w.u64(omsBackingBytes_);
    w.u64(oreBusyUntil_);
    w.beginSection("STAT");
    std::uint32_t num_groups = 0;
    forEachStatsGroup([&](const stats::Group *) { ++num_groups; });
    w.u32(num_groups);
    forEachStatsGroup(
        [&](const stats::Group *group) { group->serializeStats(w); });
    w.endSection();
    w.endSection();
}

void
System::deserialize(snapshot::Reader &r)
{
    OVL_PROF_SCOPE(SnapshotIo);
    r.expectSection("SYS ");
    std::uint32_t num_tlbs = r.u32();
    if (num_tlbs != tlbs_.size()) {
        r.fail("TLB count mismatch: snapshot " + std::to_string(num_tlbs) +
               ", configured " + std::to_string(tlbs_.size()));
    }
    physMem_.deserialize(r);
    vmm_.deserialize(r);
    dramCtrl_.deserialize(r);
    overlayMgr_.deserialize(r);
    caches_.deserialize(r);
    for (const auto &tlb : tlbs_)
        tlb->deserialize(r);
    memoryBaselineBytes_ = r.u64();
    omsBackingBytes_ = r.u64();
    oreBusyUntil_ = r.u64();
    r.expectSection("STAT");
    std::uint32_t num_groups = r.u32();
    std::uint32_t expected = 0;
    forEachStatsGroup([&](const stats::Group *) { ++expected; });
    if (num_groups != expected) {
        r.fail("stats group count mismatch: snapshot " +
               std::to_string(num_groups) + ", this machine has " +
               std::to_string(expected));
    }
    forEachStatsGroup([&](const stats::Group *group) {
        // forEachStatsGroup exposes const pointers for dump paths; every
        // visited group is owned (directly or transitively) by this
        // System, so restoring through it is sound.
        const_cast<stats::Group *>(group)->deserializeStats(r);
    });
    r.endSection();
    r.endSection();
}

std::unique_ptr<System>
System::clone(const SystemConfig &config)
{
    snapshot::Writer w;
    serialize(w);
    auto copy = std::make_unique<System>(config);
    snapshot::Reader r(w.buffer());
    copy->deserialize(r);
    return copy;
}

void
System::attachStatsSampler(StatsSampler *sampler, Tick now)
{
    ovl_assert(sampler != nullptr, "attaching a null sampler");
    ovl_assert(sampler_ == nullptr, "a sampler is already attached");
    sampler_ = sampler;
    forEachStatsGroup([&](const stats::Group *group) {
        sampler->addGroup(group->name(), group);
    });
    sampler->begin(now);
    samplerNext_ = sampler->nextDue();
}

void
System::detachStatsSampler()
{
    sampler_ = nullptr;
    samplerNext_ = kMaxTick;
}

} // namespace ovl
