/**
 * @file
 * The full simulated machine: core-side TLBs, the three-level cache
 * hierarchy, the overlay-aware memory controller (regular DRAM + Overlay
 * Memory Store), the OS (Vmm) and the overlay engine, wired per Figure 6.
 * This class implements the paper's three memory-access operations —
 * read, simple write and overlaying write (§4.3.1–§4.3.3) — the CoW
 * baseline fault path, overlay promotion (§4.3.4) and fork.
 */

#ifndef OVERLAYSIM_SYSTEM_SYSTEM_HH
#define OVERLAYSIM_SYSTEM_SYSTEM_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <ostream>
#include <vector>

#include "cache/hierarchy.hh"
#include "common/types.hh"
#include "overlay/overlay_addr.hh"
#include "overlay/overlay_manager.hh"
#include "system/config.hh"
#include "tlb/tlb.hh"
#include "vm/vmm.hh"

namespace ovl
{

class StatsSampler;

/** Promotion actions for converting an overlay to a regular page (§4.3.4). */
enum class PromoteAction
{
    CopyAndCommit, ///< merge page + overlay into a fresh frame
    Commit,        ///< write overlay lines into the existing frame
    Discard,       ///< drop the overlay (failed speculation)
};

/** Per-access outcome details (for stats and tests). */
struct AccessOutcome
{
    Tick completion = 0;
    HitLevel level = HitLevel::L1;
    bool tlbWalk = false;
    bool overlayLine = false;   ///< serviced from the overlay address space
    bool cowFault = false;      ///< baseline copy-on-write fault taken
    bool overlayingWrite = false; ///< line moved to the overlay (§4.3.3)
};

/**
 * The overlay-aware memory controller: routes full-hierarchy misses
 * either to regular DRAM or to the overlay engine based on the overlay
 * bit of the physical address (§4.3.1).
 */
class OverlayAwareMemController : public SimObject, public MemBackend
{
  public:
    OverlayAwareMemController(std::string name, DramController &dram,
                              OverlayManager &ovm);

    Tick readLine(Addr line_addr, Tick when) override;
    Tick writebackLine(Addr line_addr, Tick when) override;

  private:
    DramController &dram_;
    OverlayManager &ovm_;

    stats::Counter regularReads_;
    stats::Counter regularWritebacks_;
    stats::Counter overlayReads_;
    stats::Counter overlayWritebacks_;
    stats::Counter droppedPrefetches_;
};

/** The machine. */
class System : public SimObject
{
  public:
    explicit System(SystemConfig config = SystemConfig{});

    const SystemConfig &config() const { return config_; }

    // ----- process / OS operations --------------------------------------

    /** Create a process with an empty address space. */
    Asid createProcess() { return vmm_.createProcess(); }

    /** Map anonymous private memory. */
    void
    mapAnon(Asid asid, Addr vaddr, std::uint64_t len, bool writable = true)
    {
        vmm_.mapAnon(asid, vaddr, len, writable);
    }

    /**
     * Map zero-backed overlay-enabled memory: the substrate for sparse
     * data structures (§5.2).
     */
    void
    mapZeroOverlay(Asid asid, Addr vaddr, std::uint64_t len)
    {
        vmm_.mapZeroCow(asid, vaddr, len, true);
    }

    /**
     * fork(): duplicates the address space (including overlays, §4.1)
     * and marks writable pages CoW/OoW per @p mode. Charges the page
     * table copy and the parent-side TLB invalidation.
     *
     * @return the child ASID; @p done (optional) receives completion time.
     */
    Asid fork(Asid parent, ForkMode mode, Tick when, Tick *done = nullptr);

    /**
     * Unmap [vaddr, vaddr+len): releases frames, discards the pages'
     * overlays (freeing OMT entries and OMS segments), drops cached
     * lines and translations.
     */
    void unmap(Asid asid, Addr vaddr, std::uint64_t len, Tick when);

    /**
     * Tear down a whole process: unmap everything it maps. The ASID is
     * retired (per §4.1's 1-1 overlay mapping, ASIDs are not recycled
     * while the system lives).
     */
    void destroyProcess(Asid asid, Tick when);

    // ----- the three memory operations (§4.3) ----------------------------

    /**
     * One timing access (64 B granularity). Performs all architectural
     * state transitions: TLB fills, CoW faults, overlaying writes,
     * promotions. The store data itself is not needed for timing; use
     * write() to also update functional contents. @p core selects which
     * core's TLBs translate the access (coherence messages and
     * shootdowns always reach every core's TLBs).
     */
    Tick access(Asid asid, Addr vaddr, bool is_write, Tick when,
                AccessOutcome *outcome = nullptr, unsigned core = 0);

    /** Timing access + functional store. */
    Tick write(Asid asid, Addr vaddr, const void *data, std::size_t len,
               Tick when);

    /** Timing access + functional load. */
    Tick read(Asid asid, Addr vaddr, void *out, std::size_t len, Tick when);

    // ----- functional-only access (no timing) ---------------------------

    /**
     * Functional fast-forward of one access (sampled simulation, see
     * DESIGN.md §10): performs exactly the architectural transitions of
     * access() — TLB warming/fills, overlaying writes (OBitVector + OMT
     * + overlay data), CoW breaks — plus SMARTS-style functional warming
     * of the cache tag/replacement state (CacheHierarchy::warmLine), so
     * detailed windows resumed after a functional gap start from warm
     * microarchitectural state instead of a cold-start transient. No
     * ticks are charged anywhere: DRAM bank state, prefetcher training,
     * ORE serialization and all statistics except the architectural
     * event counters stay untouched, and a run with zero functional
     * accesses is byte-identical to a pure-detailed run.
     *
     * Overlay promotion is an OS timing policy and must be disabled
     * (config.promoteThresholdLines == kLinesPerPage) when functional
     * overlaying writes can occur.
     */
    void accessFunctional(Asid asid, Addr vaddr, bool is_write,
                          unsigned core = 0);

    /**
     * Functional fork: duplicates the address space and copies overlay
     * contents (§4.1) without charging the table-copy DRAM traffic or
     * the overlay-line cache accesses. Parent TLB entries are still
     * invalidated (they are architecturally stale: cow is now set).
     */
    Asid forkFunctional(Asid parent, ForkMode mode);

    /**
     * Functional teardown: releases frames, overlays (OMS segments, OMT
     * entries) and translations like destroyProcess(), but drops cached
     * lines without writebacks — no DRAM or tick movement.
     */
    void destroyProcessFunctional(Asid asid);

    /** Functional store honouring overlay semantics (may transition). */
    void poke(Asid asid, Addr vaddr, const void *data, std::size_t len);

    /** Functional load honouring overlay semantics (Figure 2). */
    void peek(Asid asid, Addr vaddr, void *out, std::size_t len) const;

    // ----- metadata instructions (§5.3.4) --------------------------------

    /**
     * Timing path of the new metadata load/store instructions: a regular
     * TLB translation followed by an access to the overlay address of
     * the data's line, where the page's out-of-band metadata lives.
     * Requires the page to be in metadata mode.
     */
    Tick metadataAccess(Asid asid, Addr vaddr, bool is_write, Tick when);

    /** Functional metadata store (creates the shadow line on demand). */
    void metadataPoke(Asid asid, Addr vaddr, const void *data,
                      std::size_t len);

    /** Functional metadata load; absent shadow lines read as zero. */
    void metadataPeek(Asid asid, Addr vaddr, void *out,
                      std::size_t len) const;

    // ----- overlay management (§4.3.4) -----------------------------------

    /**
     * Convert the overlay of (asid, page of @p vaddr) back to a regular
     * page. Returns completion time.
     */
    Tick promoteOverlay(Asid asid, Addr vaddr, PromoteAction action,
                        Tick when);

    /** OBitVector of the page containing @p vaddr (hardware TLB view). */
    BitVector64 pageObv(Asid asid, Addr vaddr) const;

    /**
     * Overlay-aware prefetch (§5.2): the hardware knows from the
     * OBitVector exactly which lines of the page exist in the overlay
     * and prefetches them into the L3. Non-blocking.
     */
    void prefetchOverlayPage(Asid asid, Addr vaddr, Tick when);

    /** True if the line containing @p vaddr is mapped in the overlay. */
    bool lineInOverlay(Asid asid, Addr vaddr) const;

    /**
     * Dynamic-deletion support for zero-backed sparse structures: if the
     * overlay line containing @p vaddr has become all zeroes and the
     * page's physical backing is the shared zero frame, unmap the line
     * (reads fall through to the zero page, unchanged semantics) and
     * reclaim its OMS slot. The inverse of the overlaying write: one
     * coherence message clears the OBitVector bit everywhere.
     *
     * @return true if the line was reclaimed.
     */
    bool reclaimZeroLine(Asid asid, Addr vaddr, Tick when);

    // ----- component access ----------------------------------------------

    Vmm &vmm() { return vmm_; }
    PhysicalMemory &physMem() { return physMem_; }
    OverlayManager &overlayManager() { return overlayMgr_; }
    CacheHierarchy &caches() { return caches_; }
    TwoLevelTlb &tlb(unsigned idx = 0) { return *tlbs_[idx]; }
    DramController &dramController() { return dramCtrl_; }

    /**
     * Additional memory consumed since construction or the last call to
     * markMemoryBaseline(): private frames plus OMS bytes. This is the
     * quantity Figure 8 plots.
     */
    std::uint64_t additionalMemoryBytes() const;
    void markMemoryBaseline();

    /**
     * Phase boundary: drain all pending memory-system activity and
     * restart the timing state at tick 0 (the functional state — caches,
     * TLBs, overlays, memory contents — is untouched). Experiment
     * harnesses call this between a setup phase and a timed run.
     */
    void quiesce();

    /** Dump the statistics of every component. */
    void dumpAllStats(std::ostream &os);

    /** Dump every component's statistics as one JSON object. */
    void dumpAllStatsJson(std::ostream &os);
    void resetStats() override;

    /** Visit every component stats group (same set dumpAllStatsJson uses). */
    void forEachStatsGroup(
        const std::function<void(const stats::Group *)> &fn);

    /**
     * Attach a tick-domain sampler: registers every component stats
     * group and emits the first record at @p now. While attached, the
     * access path pumps the sampler whenever simulated time crosses a
     * sample boundary (one integer compare when it doesn't). Call
     * StatsSampler::finish and detach (nullptr) when the run ends.
     */
    void attachStatsSampler(StatsSampler *sampler, Tick now = 0);
    void detachStatsSampler();

    std::uint64_t cowFaults() const { return cowFaults_.value(); }
    std::uint64_t overlayingWrites() const { return overlayingWrites_.value(); }

    // ----- snapshot / clone (DESIGN.md §11) ------------------------------

    /**
     * Serialize the entire machine — memory contents, page tables,
     * overlay engine, caches, TLBs, DRAM timing state, accounting and
     * every component's statistics — into @p w. The attached stats
     * sampler (if any) is not part of the snapshot. Non-const only
     * because the stats traversal reuses forEachStatsGroup; no state is
     * modified.
     */
    void serialize(snapshot::Writer &w);

    /**
     * Restore a snapshot into this freshly constructed System. The
     * configuration must be structurally identical to the serialized
     * machine's (memory capacity, cache/TLB/OMT-cache geometry, DRAM
     * bank count, write-buffer depth, TLB count); mismatches throw
     * snapshot::SnapshotError with a diagnostic. Policy fields (promote
     * threshold, OS cost constants) may differ — that is what warm-start
     * config sweeps rely on.
     */
    void deserialize(snapshot::Reader &r);

    /**
     * Deep copy via serialize + deserialize into a fresh System. The
     * overload taking a config lets warm-start sweeps fan one simulated
     * prefix out across rows that differ only in policy fields.
     */
    std::unique_ptr<System> clone() { return clone(config_); }
    std::unique_ptr<System> clone(const SystemConfig &config);

  private:
    /** Overlay line address of (asid, vaddr)'s line. */
    static Addr
    overlayLineAddr(Asid asid, Addr vaddr)
    {
        return overlay_addr::fromVirtual(asid, lineBase(vaddr));
    }

    /** Regular physical line address of @p vaddr's line in frame @p ppn. */
    static Addr
    physLineAddr(Addr ppn, Addr vaddr)
    {
        return (ppn << kPageShift) | (pageOffset(vaddr) & ~kLineMask);
    }

    /** TLB access + walk/fill; returns the entry and advances @p t. */
    TlbEntryData *translate(Asid asid, Addr vpn, Tick &t,
                            AccessOutcome *outcome, unsigned core = 0);

    /** Baseline CoW write-fault service (Figure 3a). */
    Tick serviceCowFault(Asid asid, Addr vaddr, TlbEntryData *&entry,
                         Tick t, AccessOutcome *outcome, unsigned core);

    /** Overlaying write (Figure 3b, §4.3.3). Advances time. */
    Tick serviceOverlayingWrite(Asid asid, Addr vaddr, TlbEntryData *entry,
                                Tick t, AccessOutcome *outcome);

    /**
     * Functional half of an overlaying write (shared with poke()): the
     * line's current contents move from @p phys_line_addr into
     * (@p opn, @p line). Callers pass the already-derived OPN and
     * physical line address so the resolve/pageFromVirtual work is done
     * once per overlaying write.
     */
    void overlayLineFunctional(Opn opn, unsigned line, Addr phys_line_addr);

    /** Broadcast an ORE message to every TLB + the OMT (§4.3.3). */
    Tick broadcastOre(Asid asid, Addr vpn, Opn opn, unsigned line, Tick t);

    SystemConfig config_;
    PhysicalMemory physMem_;
    Vmm vmm_;
    DramController dramCtrl_;
    OverlayManager overlayMgr_;
    OverlayAwareMemController memCtrl_;
    CacheHierarchy caches_;
    std::vector<std::unique_ptr<TwoLevelTlb>> tlbs_;

    std::uint64_t memoryBaselineBytes_ = 0;
    /** Main-memory pages handed to the OMS/OMT (subset of physMem use). */
    std::uint64_t omsBackingBytes_ = 0;
    /** ORE messages serialize at the coherence ordering point. */
    Tick oreBusyUntil_ = 0;

    /** Tick-domain sampler; kMaxTick next-due when detached so the
     *  access-path pump is a single always-false compare. */
    StatsSampler *sampler_ = nullptr;
    Tick samplerNext_ = kMaxTick;

    stats::Counter accesses_;
    stats::Counter functionalAccesses_;
    stats::Counter tlbWalks_;
    stats::Counter cowFaults_;
    stats::Counter cowLinesCopied_;
    stats::Counter overlayingWrites_;
    stats::Counter simpleOverlayWrites_;
    stats::Counter overlayLineReads_;
    stats::Counter promotions_;
    stats::Counter forkPagesShared_;
    stats::Counter forkOverlayLinesCopied_;
};

} // namespace ovl

#endif // OVERLAYSIM_SYSTEM_SYSTEM_HH
