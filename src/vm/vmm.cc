#include "vmm.hh"

#include "common/logging.hh"
#include "overlay/overlay_addr.hh"
#include "sim/profile.hh"

namespace ovl
{

Vmm::Vmm(std::string name, PhysicalMemory &phys_mem)
    : SimObject(std::move(name)), physMem_(phys_mem),
      processesCreated_(&statGroup(), "processesCreated",
                        "processes created"),
      forks_(&statGroup(), "forks", "fork() calls"),
      pagesMapped_(&statGroup(), "pagesMapped", "pages mapped"),
      cowBreaks_(&statGroup(), "cowBreaks", "copy-on-write faults resolved"),
      cowCopies_(&statGroup(), "cowCopies", "page copies performed by CoW")
{
}

Asid
Vmm::createProcess()
{
    ovl_assert(processes_.size() < overlay_addr::kMaxProcesses,
               "process limit (2^15) exceeded");
    auto proc = std::make_unique<Process>();
    proc->asid = Asid(processes_.size());
    processes_.push_back(std::move(proc));
    ++processesCreated_;
    return processes_.back()->asid;
}

void
Vmm::mapAnon(Asid asid, Addr vaddr, std::uint64_t len, bool writable)
{
    ovl_assert(pageOffset(vaddr) == 0 && len % kPageSize == 0,
               "mapAnon requires page-aligned range");
    Process &proc = process(asid);
    for (Addr va = vaddr; va < vaddr + len; va += kPageSize) {
        Pte pte;
        pte.ppn = physMem_.allocFrame();
        pte.present = true;
        pte.writable = writable;
        proc.pageTable.set(pageNumber(va), pte);
        ++pagesMapped_;
    }
}

void
Vmm::mapZeroCow(Asid asid, Addr vaddr, std::uint64_t len,
                bool overlay_enabled)
{
    ovl_assert(pageOffset(vaddr) == 0 && len % kPageSize == 0,
               "mapZeroCow requires page-aligned range");
    Process &proc = process(asid);
    for (Addr va = vaddr; va < vaddr + len; va += kPageSize) {
        Pte pte;
        pte.ppn = PhysicalMemory::kZeroFrame;
        pte.present = true;
        pte.writable = true;
        pte.cow = true;
        pte.overlayEnabled = overlay_enabled;
        proc.pageTable.set(pageNumber(va), pte);
        ++pagesMapped_;
    }
}

void
Vmm::unmap(Asid asid, Addr vaddr, std::uint64_t len)
{
    ovl_assert(pageOffset(vaddr) == 0 && len % kPageSize == 0,
               "unmap requires page-aligned range");
    Process &proc = process(asid);
    for (Addr va = vaddr; va < vaddr + len; va += kPageSize) {
        Addr vpn = pageNumber(va);
        if (Pte *pte = proc.pageTable.find(vpn)) {
            physMem_.release(pte->ppn);
            proc.pageTable.erase(vpn);
        }
    }
}

Asid
Vmm::fork(Asid parent, ForkMode mode)
{
    OVL_PROF_SCOPE(Fork);
    Asid child = createProcess();
    Process &parent_proc = process(parent);
    Process &child_proc = process(child);
    ++forks_;

    for (auto &&[vpn, pte] : parent_proc.pageTable) {
        if (!pte.present)
            continue;
        if (pte.writable) {
            // Mark shared-CoW in the parent; the OS tells hardware how
            // the divergence will be resolved (§2.2).
            pte.cow = true;
            if (mode == ForkMode::OverlayOnWrite)
                pte.overlayEnabled = true;
        }
        if (pte.ppn != PhysicalMemory::kZeroFrame)
            physMem_.addRef(pte.ppn);
        child_proc.pageTable.set(vpn, pte);
    }
    return child;
}

Addr
Vmm::breakCow(Asid asid, Addr vpn, bool *copied)
{
    Pte *pte = resolve(asid, vpn);
    ovl_assert(pte != nullptr && pte->present, "CoW break on unmapped page");
    ovl_assert(pte->cow, "CoW break on a private page");
    ++cowBreaks_;

    if (copied)
        *copied = false;
    if (pte->ppn != PhysicalMemory::kZeroFrame &&
        physMem_.refCount(pte->ppn) == 1) {
        // Last sharer: reclaim the frame in place.
        pte->cow = false;
        return pte->ppn;
    }

    Addr new_frame = physMem_.allocFrame();
    physMem_.copyFrame(new_frame, pte->ppn);
    physMem_.release(pte->ppn);
    pte->ppn = new_frame;
    pte->cow = false;
    ++cowCopies_;
    if (copied)
        *copied = true;
    return new_frame;
}

void
Vmm::serialize(snapshot::Writer &w) const
{
    w.beginSection("VMM ");
    w.u64(processes_.size());
    for (const auto &proc : processes_) {
        w.u16(proc->asid);
        proc->pageTable.serialize(w);
    }
    w.endSection();
}

void
Vmm::deserialize(snapshot::Reader &r)
{
    r.expectSection("VMM ");
    std::uint64_t n = r.count(2);
    processes_.clear();
    processes_.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
        auto proc = std::make_unique<Process>();
        proc->asid = r.u16();
        if (proc->asid != i)
            r.fail("process table ASIDs are not dense");
        proc->pageTable.deserialize(r);
        processes_.push_back(std::move(proc));
    }
    r.endSection();
}

void
Vmm::protect(Asid asid, Addr vaddr, std::uint64_t len, bool writable)
{
    ovl_assert(pageOffset(vaddr) == 0 && len % kPageSize == 0,
               "protect requires page-aligned range");
    Process &proc = process(asid);
    for (Addr va = vaddr; va < vaddr + len; va += kPageSize) {
        if (Pte *pte = proc.pageTable.find(pageNumber(va)))
            pte->writable = writable;
    }
}

} // namespace ovl
