#include "physical_memory.hh"

#include <cstring>

#include "common/logging.hh"

namespace ovl
{

PhysicalMemory::PhysicalMemory(std::string name,
                               std::uint64_t capacity_bytes)
    : SimObject(std::move(name)), capacityBytes_(capacity_bytes),
      framesAllocated_(&statGroup(), "framesAllocated",
                       "4 KB frames allocated"),
      framesFreed_(&statGroup(), "framesFreed", "4 KB frames freed"),
      bytesGauge_(&statGroup(), "bytesInUse", "bytes currently allocated")
{
    refCounts_.resize(64, 0);
    contents_.resize(64);
    refCounts_[kZeroFrame] = 1; // permanently live
}

Addr
PhysicalMemory::allocFrame()
{
    Addr frame;
    if (!freeFrames_.empty()) {
        frame = freeFrames_.back();
        freeFrames_.pop_back();
    } else {
        frame = nextFrame_++;
        if (frame * kPageSize >= capacityBytes_)
            ovl_fatal("physical memory exhausted (%llu bytes)",
                      (unsigned long long)capacityBytes_);
        if (frame >= refCounts_.size()) {
            refCounts_.resize(refCounts_.size() * 2, 0);
            contents_.resize(refCounts_.size());
        }
    }
    refCounts_[frame] = 1;
    ++framesAllocated_;
    ++framesInUse_;
    bytesGauge_.set(std::int64_t(bytesInUse()));
    return frame;
}

void
PhysicalMemory::addRef(Addr frame)
{
    ovl_assert(frame < refCounts_.size() && refCounts_[frame] > 0,
               "addRef on an unallocated frame");
    ++refCounts_[frame];
}

void
PhysicalMemory::release(Addr frame)
{
    if (frame == kZeroFrame)
        return;
    ovl_assert(frame < refCounts_.size() && refCounts_[frame] > 0,
               "release of an unallocated frame");
    if (--refCounts_[frame] == 0) {
        // Retire the backing buffer to the pool; the next materializer
        // zero-fills it, so a recycled frame still reads as zero.
        if (contents_[frame])
            pagePool_.push_back(std::move(contents_[frame]));
        freeFrames_.push_back(frame);
        ++framesFreed_;
        --framesInUse_;
        bytesGauge_.set(std::int64_t(bytesInUse()));
    }
}

unsigned
PhysicalMemory::refCount(Addr frame) const
{
    return frame < refCounts_.size() ? refCounts_[frame] : 0;
}

PageData *
PhysicalMemory::framePtr(Addr frame)
{
    ovl_assert(frame != kZeroFrame, "writing the shared zero frame");
    ovl_assert(frame < contents_.size(), "frame out of range");
    std::unique_ptr<PageData> &slot = contents_[frame];
    if (!slot) {
        if (!pagePool_.empty()) {
            slot = std::move(pagePool_.back());
            pagePool_.pop_back();
        } else {
            slot = std::make_unique<PageData>();
        }
        slot->fill(0);
    }
    return slot.get();
}

void
PhysicalMemory::copyFrame(Addr dst_frame, Addr src_frame)
{
    const PageData *src = framePtrConst(src_frame);
    PageData *dst = framePtr(dst_frame);
    if (src == nullptr)
        dst->fill(0);
    else
        *dst = *src;
}

} // namespace ovl
