#include "physical_memory.hh"

#include <cstring>

#include "common/logging.hh"
#include "sim/snapshot.hh"

namespace ovl
{

PhysicalMemory::PhysicalMemory(std::string name,
                               std::uint64_t capacity_bytes)
    : SimObject(std::move(name)), capacityBytes_(capacity_bytes),
      framesAllocated_(&statGroup(), "framesAllocated",
                       "4 KB frames allocated"),
      framesFreed_(&statGroup(), "framesFreed", "4 KB frames freed"),
      bytesGauge_(&statGroup(), "bytesInUse", "bytes currently allocated")
{
    refCounts_.resize(64, 0);
    contents_.resize(64);
    refCounts_[kZeroFrame] = 1; // permanently live
}

Addr
PhysicalMemory::allocFrame()
{
    Addr frame;
    if (!freeFrames_.empty()) {
        frame = freeFrames_.back();
        freeFrames_.pop_back();
    } else {
        frame = nextFrame_++;
        if (frame * kPageSize >= capacityBytes_)
            ovl_fatal("physical memory exhausted (%llu bytes)",
                      (unsigned long long)capacityBytes_);
        if (frame >= refCounts_.size()) {
            refCounts_.resize(refCounts_.size() * 2, 0);
            contents_.resize(refCounts_.size());
        }
    }
    refCounts_[frame] = 1;
    ++framesAllocated_;
    ++framesInUse_;
    bytesGauge_.set(std::int64_t(bytesInUse()));
    return frame;
}

void
PhysicalMemory::addRef(Addr frame)
{
    ovl_assert(frame < refCounts_.size() && refCounts_[frame] > 0,
               "addRef on an unallocated frame");
    ++refCounts_[frame];
}

void
PhysicalMemory::release(Addr frame)
{
    if (frame == kZeroFrame)
        return;
    ovl_assert(frame < refCounts_.size() && refCounts_[frame] > 0,
               "release of an unallocated frame");
    if (--refCounts_[frame] == 0) {
        // Retire the backing buffer to the pool; the next materializer
        // zero-fills it, so a recycled frame still reads as zero.
        if (contents_[frame])
            pagePool_.push_back(std::move(contents_[frame]));
        freeFrames_.push_back(frame);
        ++framesFreed_;
        --framesInUse_;
        bytesGauge_.set(std::int64_t(bytesInUse()));
    }
}

unsigned
PhysicalMemory::refCount(Addr frame) const
{
    return frame < refCounts_.size() ? refCounts_[frame] : 0;
}

PageData *
PhysicalMemory::framePtr(Addr frame)
{
    ovl_assert(frame != kZeroFrame, "writing the shared zero frame");
    ovl_assert(frame < contents_.size(), "frame out of range");
    std::unique_ptr<PageData> &slot = contents_[frame];
    if (!slot) {
        if (!pagePool_.empty()) {
            slot = std::move(pagePool_.back());
            pagePool_.pop_back();
        } else {
            slot = std::make_unique<PageData>();
        }
        slot->fill(0);
    }
    return slot.get();
}

void
PhysicalMemory::serialize(snapshot::Writer &w) const
{
    w.beginSection("PMEM");
    w.u64(capacityBytes_);
    w.u64(nextFrame_);
    w.u64(framesInUse_);
    w.u64(freeFrames_.size());
    for (Addr f : freeFrames_)
        w.u64(f);
    w.u64(refCounts_.size());
    for (unsigned rc : refCounts_)
        w.u32(rc);
    // Page contents: only materialized frames carry data; null slots
    // read as zero and must stay null so memory accounting matches.
    std::uint64_t materialized = 0;
    for (const auto &slot : contents_)
        if (slot)
            ++materialized;
    w.u64(materialized);
    for (std::size_t f = 0; f < contents_.size(); ++f) {
        if (contents_[f]) {
            w.u64(f);
            w.blob(contents_[f]->data(), kPageSize);
        }
    }
    w.endSection();
}

void
PhysicalMemory::deserialize(snapshot::Reader &r)
{
    r.expectSection("PMEM");
    std::uint64_t capacity = r.u64();
    if (capacity != capacityBytes_) {
        r.fail("physical memory capacity mismatch: snapshot " +
               std::to_string(capacity) + ", system " +
               std::to_string(capacityBytes_));
    }
    nextFrame_ = r.u64();
    framesInUse_ = r.u64();
    freeFrames_.resize(r.count(8));
    for (Addr &f : freeFrames_)
        f = r.u64();
    std::uint64_t num_frames = r.count(4);
    refCounts_.assign(num_frames, 0);
    for (unsigned &rc : refCounts_)
        rc = r.u32();
    contents_.clear();
    contents_.resize(num_frames);
    pagePool_.clear();
    std::uint64_t materialized = r.count(8 + kPageSize);
    for (std::uint64_t i = 0; i < materialized; ++i) {
        std::uint64_t f = r.u64();
        if (f >= contents_.size())
            r.fail("materialized frame " + std::to_string(f) +
                   " out of range");
        contents_[f] = std::make_unique<PageData>();
        r.blob(contents_[f]->data(), kPageSize);
    }
    r.endSection();
}

void
PhysicalMemory::copyFrame(Addr dst_frame, Addr src_frame)
{
    const PageData *src = framePtrConst(src_frame);
    PageData *dst = framePtr(dst_frame);
    if (src == nullptr)
        dst->fill(0);
    else
        *dst = *src;
}

} // namespace ovl
