#include "physical_memory.hh"

#include <cstring>

#include "common/logging.hh"

namespace ovl
{

PhysicalMemory::PhysicalMemory(std::string name,
                               std::uint64_t capacity_bytes)
    : SimObject(std::move(name)), capacityBytes_(capacity_bytes),
      framesAllocated_(&statGroup(), "framesAllocated",
                       "4 KB frames allocated"),
      framesFreed_(&statGroup(), "framesFreed", "4 KB frames freed"),
      bytesGauge_(&statGroup(), "bytesInUse", "bytes currently allocated")
{
    refCounts_[kZeroFrame] = 1; // permanently live
}

Addr
PhysicalMemory::allocFrame()
{
    Addr frame;
    if (!freeFrames_.empty()) {
        frame = freeFrames_.back();
        freeFrames_.pop_back();
    } else {
        frame = nextFrame_++;
        if (frame * kPageSize >= capacityBytes_)
            ovl_fatal("physical memory exhausted (%llu bytes)",
                      (unsigned long long)capacityBytes_);
    }
    refCounts_[frame] = 1;
    ++framesAllocated_;
    ++framesInUse_;
    bytesGauge_.set(std::int64_t(bytesInUse()));
    return frame;
}

void
PhysicalMemory::addRef(Addr frame)
{
    auto it = refCounts_.find(frame);
    ovl_assert(it != refCounts_.end() && it->second > 0,
               "addRef on an unallocated frame");
    ++it->second;
}

void
PhysicalMemory::release(Addr frame)
{
    if (frame == kZeroFrame)
        return;
    auto it = refCounts_.find(frame);
    ovl_assert(it != refCounts_.end() && it->second > 0,
               "release of an unallocated frame");
    if (--it->second == 0) {
        refCounts_.erase(it);
        contents_.erase(frame);
        freeFrames_.push_back(frame);
        ++framesFreed_;
        --framesInUse_;
        bytesGauge_.set(std::int64_t(bytesInUse()));
    }
}

unsigned
PhysicalMemory::refCount(Addr frame) const
{
    auto it = refCounts_.find(frame);
    return it == refCounts_.end() ? 0 : it->second;
}

PageData *
PhysicalMemory::framePtr(Addr frame)
{
    ovl_assert(frame != kZeroFrame, "writing the shared zero frame");
    auto [it, inserted] = contents_.try_emplace(frame);
    if (inserted) {
        it->second = std::make_unique<PageData>();
        it->second->fill(0);
    }
    return it->second.get();
}

const PageData *
PhysicalMemory::framePtrConst(Addr frame) const
{
    auto it = contents_.find(frame);
    return it == contents_.end() ? nullptr : it->second.get();
}

void
PhysicalMemory::readLine(Addr paddr, LineData &out) const
{
    readBytes(paddr & ~kLineMask, out.data(), kLineSize);
}

void
PhysicalMemory::writeLine(Addr paddr, const LineData &data)
{
    writeBytes(paddr & ~kLineMask, data.data(), kLineSize);
}

void
PhysicalMemory::readBytes(Addr paddr, void *out, std::size_t len) const
{
    ovl_assert(pageNumber(paddr) == pageNumber(paddr + len - 1),
               "functional access crosses a page boundary");
    const PageData *page = framePtrConst(pageNumber(paddr));
    if (page == nullptr) {
        std::memset(out, 0, len); // untouched or zero frame: reads as zero
        return;
    }
    std::memcpy(out, page->data() + pageOffset(paddr), len);
}

void
PhysicalMemory::writeBytes(Addr paddr, const void *in, std::size_t len)
{
    ovl_assert(pageNumber(paddr) == pageNumber(paddr + len - 1),
               "functional access crosses a page boundary");
    PageData *page = framePtr(pageNumber(paddr));
    std::memcpy(page->data() + pageOffset(paddr), in, len);
}

void
PhysicalMemory::copyFrame(Addr dst_frame, Addr src_frame)
{
    const PageData *src = framePtrConst(src_frame);
    PageData *dst = framePtr(dst_frame);
    if (src == nullptr)
        dst->fill(0);
    else
        *dst = *src;
}

} // namespace ovl
