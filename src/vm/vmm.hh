/**
 * @file
 * The minimal OS virtual-memory manager: processes, anonymous mappings,
 * fork() with copy-on-write, and the overlay-on-write opt-in (§2.2). The
 * Vmm is purely functional; latency costs of faults, copies and
 * shootdowns are charged by the System, which coordinates the Vmm with
 * the TLBs, caches and the overlay engine.
 */

#ifndef OVERLAYSIM_VM_VMM_HH
#define OVERLAYSIM_VM_VMM_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"
#include "sim/sim_object.hh"
#include "vm/page_table.hh"
#include "vm/physical_memory.hh"

namespace ovl
{

/** How fork() marks shared writable pages (§2.2, Figure 3). */
enum class ForkMode
{
    CopyOnWrite,    ///< baseline: fault copies the whole page
    OverlayOnWrite, ///< the paper: fault moves one line to the overlay
};

/** One process: an ASID and a page table. */
struct Process
{
    Asid asid = 0;
    PageTable pageTable;
};

/** The OS memory manager. */
class Vmm : public SimObject
{
  public:
    Vmm(std::string name, PhysicalMemory &phys_mem);

    /** Create an empty process; returns its ASID. */
    Asid createProcess();

    /** Live processes (ASIDs are dense: 0 .. processCount()-1). */
    std::size_t processCount() const { return processes_.size(); }

    // Inline: resolve()/process() run on every functional load and store.
    Process &
    process(Asid asid)
    {
        ovl_assert(asid < processes_.size(), "unknown ASID");
        return *processes_[asid];
    }

    const Process &
    process(Asid asid) const
    {
        ovl_assert(asid < processes_.size(), "unknown ASID");
        return *processes_[asid];
    }

    /**
     * Map [vaddr, vaddr+len) to fresh zeroed private frames.
     * @p vaddr and @p len must be page aligned.
     */
    void mapAnon(Asid asid, Addr vaddr, std::uint64_t len,
                 bool writable = true);

    /**
     * Map [vaddr, vaddr+len) to the shared zero frame in copy-on-write
     * mode. With @p overlay_enabled this is the substrate of the sparse
     * data-structure technique (§5.2): reads return zero, writes go to
     * the page's overlay.
     */
    void mapZeroCow(Asid asid, Addr vaddr, std::uint64_t len,
                    bool overlay_enabled);

    /** Remove mappings and release frames. */
    void unmap(Asid asid, Addr vaddr, std::uint64_t len);

    /**
     * fork(): duplicate @p parent's address space. Every writable page
     * becomes shared copy-on-write in both processes; with
     * ForkMode::OverlayOnWrite the OS additionally sets the
     * overlay-enabled bit so that hardware resolves write faults with
     * overlays instead of page copies.
     *
     * @return the child's ASID.
     */
    Asid fork(Asid parent, ForkMode mode);

    /** PTE of (asid, vpn); nullptr if unmapped. */
    Pte *resolve(Asid asid, Addr vpn)
    {
        return process(asid).pageTable.find(vpn);
    }

    /**
     * Copy-on-write break for (asid, vpn): gives the page a private
     * frame (copying contents) and clears its cow bit. Returns the new
     * PPN. The last sharer keeps its frame without copying.
     *
     * @param copied set to true when a physical copy actually happened.
     */
    Addr breakCow(Asid asid, Addr vpn, bool *copied = nullptr);

    /** Set/clear the writable bit on a mapped range. */
    void protect(Asid asid, Addr vaddr, std::uint64_t len, bool writable);

    PhysicalMemory &physMem() { return physMem_; }

    std::uint64_t forks() const { return forks_.value(); }
    std::uint64_t cowBreaks() const { return cowBreaks_.value(); }

    /** Snapshot the process table (ASIDs + page tables). */
    void serialize(snapshot::Writer &w) const;
    void deserialize(snapshot::Reader &r);

  private:
    PhysicalMemory &physMem_;
    std::vector<std::unique_ptr<Process>> processes_;

    stats::Counter processesCreated_;
    stats::Counter forks_;
    stats::Counter pagesMapped_;
    stats::Counter cowBreaks_;
    stats::Counter cowCopies_;
};

} // namespace ovl

#endif // OVERLAYSIM_VM_VMM_HH
