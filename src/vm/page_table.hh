/**
 * @file
 * Per-process page table. Functionally a VPN -> PTE map; the four-level
 * radix walk is charged as a flat 1000-cycle cost by the system (Table 2)
 * so no radix layout is modeled here. The PTE carries the two bits the
 * paper adds to the OS/hardware contract: the copy-on-write sharing bit
 * that the OS exposes to hardware (§2.2) and the overlays-enabled bit
 * (the inexpensive opt-in, §3.3).
 *
 * Storage is a two-level structure tuned for the simulator's hot path
 * (translate() on every access): a sorted directory of 512-entry leaf
 * blocks keyed by vpn>>9, binary-searched with a one-entry MRU cache.
 * Workload footprints are contiguous regions, so nearly every lookup
 * hits the cached leaf and costs a shift, a compare and an array index —
 * no hashing, no allocation. Iteration visits entries in ascending-VPN
 * order, which the fork/teardown paths rely on for determinism.
 */

#ifndef OVERLAYSIM_VM_PAGE_TABLE_HH
#define OVERLAYSIM_VM_PAGE_TABLE_HH

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/types.hh"
#include "sim/snapshot.hh"

namespace ovl
{

/** Page-table entry. */
struct Pte
{
    Addr ppn = 0;
    bool present = false;
    bool writable = false;
    /** Shared copy-on-write page: a write must fault to the OS/hardware. */
    bool cow = false;
    /** The page may have an overlay (OS opt-in through the page tables). */
    bool overlayEnabled = false;
    /**
     * The overlay holds out-of-band metadata (shadow memory, §5.3.4)
     * rather than alternate data: regular loads/stores never redirect to
     * the overlay; only metadata load/store instructions reach it.
     */
    bool metadataMode = false;
};

/** One process's virtual-to-physical mapping. */
class PageTable
{
    static constexpr unsigned kLeafBits = 9;
    static constexpr unsigned kLeafEntries = 1u << kLeafBits;
    static constexpr Addr kLeafMask = kLeafEntries - 1;

    /** 512 PTEs plus a present bitmap; one contiguous allocation. */
    struct Leaf
    {
        std::array<std::uint64_t, kLeafEntries / 64> present{};
        std::array<Pte, kLeafEntries> ptes{};
        unsigned count = 0;

        bool
        test(unsigned i) const
        {
            return (present[i >> 6] >> (i & 63)) & 1;
        }
    };

    struct DirEntry
    {
        Addr chunk; ///< vpn >> kLeafBits
        std::unique_ptr<Leaf> leaf;
    };

    /**
     * Forward iterator yielding pair-like {vpn, pte&} values in
     * ascending-VPN order; bind with `auto &&[vpn, pte]`.
     */
    template <bool Const>
    class IterT
    {
        using Table = std::conditional_t<Const, const PageTable, PageTable>;
        using PteRef = std::conditional_t<Const, const Pte &, Pte &>;

      public:
        IterT(Table *table, std::size_t dir_index, unsigned offset)
            : table_(table), dirIndex_(dir_index), offset_(offset)
        {
            skipToPresent();
        }

        std::pair<Addr, PteRef>
        operator*() const
        {
            DirEntry &e = const_cast<DirEntry &>(table_->dir_[dirIndex_]);
            return {(e.chunk << kLeafBits) | offset_,
                    e.leaf->ptes[offset_]};
        }

        IterT &
        operator++()
        {
            ++offset_;
            skipToPresent();
            return *this;
        }

        bool
        operator==(const IterT &o) const
        {
            return dirIndex_ == o.dirIndex_ && offset_ == o.offset_;
        }

        bool operator!=(const IterT &o) const { return !(*this == o); }

      private:
        /** Advance to the next set present bit at or after offset_. */
        void
        skipToPresent()
        {
            while (dirIndex_ < table_->dir_.size()) {
                const Leaf &leaf = *table_->dir_[dirIndex_].leaf;
                while (offset_ < kLeafEntries) {
                    std::uint64_t bits =
                        leaf.present[offset_ >> 6] >> (offset_ & 63);
                    if (bits != 0) {
                        offset_ += unsigned(std::countr_zero(bits));
                        return;
                    }
                    offset_ = (offset_ & ~63u) + 64; // next bitmap word
                }
                ++dirIndex_;
                offset_ = 0;
            }
            offset_ = 0; // canonical end position
        }

        Table *table_;
        std::size_t dirIndex_;
        unsigned offset_;
    };

  public:
    /** Find the PTE of @p vpn; nullptr if unmapped. */
    Pte *
    find(Addr vpn)
    {
        Leaf *leaf = lookupLeaf(vpn >> kLeafBits);
        if (leaf == nullptr)
            return nullptr;
        unsigned off = unsigned(vpn & kLeafMask);
        return leaf->test(off) ? &leaf->ptes[off] : nullptr;
    }

    const Pte *
    find(Addr vpn) const
    {
        return const_cast<PageTable *>(this)->find(vpn);
    }

    /** Map (or remap) @p vpn. */
    void
    set(Addr vpn, const Pte &pte)
    {
        Addr chunk = vpn >> kLeafBits;
        Leaf *leaf = lookupLeaf(chunk);
        if (leaf == nullptr)
            leaf = insertLeaf(chunk);
        unsigned off = unsigned(vpn & kLeafMask);
        if (!leaf->test(off)) {
            leaf->present[off >> 6] |= std::uint64_t(1) << (off & 63);
            ++leaf->count;
            ++size_;
        }
        leaf->ptes[off] = pte;
    }

    /** Remove the mapping of @p vpn. */
    void
    erase(Addr vpn)
    {
        Addr chunk = vpn >> kLeafBits;
        Leaf *leaf = lookupLeaf(chunk);
        if (leaf == nullptr)
            return;
        unsigned off = unsigned(vpn & kLeafMask);
        if (!leaf->test(off))
            return;
        leaf->present[off >> 6] &= ~(std::uint64_t(1) << (off & 63));
        leaf->ptes[off] = Pte{};
        --leaf->count;
        --size_;
        if (leaf->count == 0)
            removeLeaf(chunk);
    }

    std::size_t size() const { return size_; }

    using iterator = IterT<false>;
    using const_iterator = IterT<true>;

    iterator begin() { return iterator(this, 0, 0); }
    iterator end() { return iterator(this, dir_.size(), 0); }
    const_iterator begin() const { return const_iterator(this, 0, 0); }
    const_iterator end() const
    {
        return const_iterator(this, dir_.size(), 0);
    }

    void
    serialize(snapshot::Writer &w) const
    {
        w.beginSection("PGTB");
        w.u64(dir_.size());
        for (const DirEntry &e : dir_) {
            w.u64(e.chunk);
            for (std::uint64_t word : e.leaf->present)
                w.u64(word);
            for (const Pte &pte : e.leaf->ptes) {
                w.u64(pte.ppn);
                std::uint8_t flags =
                    (pte.present ? 1 : 0) | (pte.writable ? 2 : 0) |
                    (pte.cow ? 4 : 0) | (pte.overlayEnabled ? 8 : 0) |
                    (pte.metadataMode ? 16 : 0);
                w.u8(flags);
            }
            w.u32(e.leaf->count);
        }
        w.u64(size_);
        w.endSection();
    }

    void
    deserialize(snapshot::Reader &r)
    {
        r.expectSection("PGTB");
        dir_.clear();
        cachedChunk_ = kNoChunk;
        cachedLeaf_ = nullptr;
        std::uint64_t leaves = r.count(8 + kLeafEntries);
        dir_.reserve(leaves);
        Addr prev_chunk = 0;
        for (std::uint64_t i = 0; i < leaves; ++i) {
            Addr chunk = r.u64();
            if (i > 0 && chunk <= prev_chunk)
                r.fail("page-table directory not strictly ascending");
            prev_chunk = chunk;
            auto leaf = std::make_unique<Leaf>();
            for (std::uint64_t &word : leaf->present)
                word = r.u64();
            for (Pte &pte : leaf->ptes) {
                pte.ppn = r.u64();
                std::uint8_t flags = r.u8();
                if (flags & ~0x1F)
                    r.fail("unknown PTE flag bits");
                pte.present = flags & 1;
                pte.writable = flags & 2;
                pte.cow = flags & 4;
                pte.overlayEnabled = flags & 8;
                pte.metadataMode = flags & 16;
            }
            leaf->count = r.u32();
            dir_.push_back(DirEntry{chunk, std::move(leaf)});
        }
        size_ = r.u64();
        r.endSection();
    }

  private:
    Leaf *
    lookupLeaf(Addr chunk) const
    {
        if (chunk == cachedChunk_)
            return cachedLeaf_;
        auto it = std::lower_bound(
            dir_.begin(), dir_.end(), chunk,
            [](const DirEntry &e, Addr c) { return e.chunk < c; });
        if (it == dir_.end() || it->chunk != chunk)
            return nullptr;
        cachedChunk_ = chunk;
        cachedLeaf_ = it->leaf.get();
        return cachedLeaf_;
    }

    Leaf *
    insertLeaf(Addr chunk)
    {
        auto it = std::lower_bound(
            dir_.begin(), dir_.end(), chunk,
            [](const DirEntry &e, Addr c) { return e.chunk < c; });
        it = dir_.insert(it, DirEntry{chunk, std::make_unique<Leaf>()});
        cachedChunk_ = chunk;
        cachedLeaf_ = it->leaf.get();
        return cachedLeaf_;
    }

    void
    removeLeaf(Addr chunk)
    {
        auto it = std::lower_bound(
            dir_.begin(), dir_.end(), chunk,
            [](const DirEntry &e, Addr c) { return e.chunk < c; });
        if (it != dir_.end() && it->chunk == chunk)
            dir_.erase(it);
        if (chunk == cachedChunk_) {
            cachedChunk_ = kNoChunk;
            cachedLeaf_ = nullptr;
        }
    }

    static constexpr Addr kNoChunk = ~Addr(0);

    std::vector<DirEntry> dir_; ///< sorted by chunk
    std::size_t size_ = 0;
    mutable Addr cachedChunk_ = kNoChunk;
    mutable Leaf *cachedLeaf_ = nullptr;
};

} // namespace ovl

#endif // OVERLAYSIM_VM_PAGE_TABLE_HH
