/**
 * @file
 * Per-process page table. Functionally a VPN -> PTE map; the four-level
 * radix walk is charged as a flat 1000-cycle cost by the system (Table 2)
 * so no radix layout is modeled here. The PTE carries the two bits the
 * paper adds to the OS/hardware contract: the copy-on-write sharing bit
 * that the OS exposes to hardware (§2.2) and the overlays-enabled bit
 * (the inexpensive opt-in, §3.3).
 */

#ifndef OVERLAYSIM_VM_PAGE_TABLE_HH
#define OVERLAYSIM_VM_PAGE_TABLE_HH

#include <cstdint>
#include <unordered_map>

#include "common/types.hh"

namespace ovl
{

/** Page-table entry. */
struct Pte
{
    Addr ppn = 0;
    bool present = false;
    bool writable = false;
    /** Shared copy-on-write page: a write must fault to the OS/hardware. */
    bool cow = false;
    /** The page may have an overlay (OS opt-in through the page tables). */
    bool overlayEnabled = false;
    /**
     * The overlay holds out-of-band metadata (shadow memory, §5.3.4)
     * rather than alternate data: regular loads/stores never redirect to
     * the overlay; only metadata load/store instructions reach it.
     */
    bool metadataMode = false;
};

/** One process's virtual-to-physical mapping. */
class PageTable
{
  public:
    /** Find the PTE of @p vpn; nullptr if unmapped. */
    Pte *
    find(Addr vpn)
    {
        auto it = entries_.find(vpn);
        return it == entries_.end() ? nullptr : &it->second;
    }

    const Pte *
    find(Addr vpn) const
    {
        auto it = entries_.find(vpn);
        return it == entries_.end() ? nullptr : &it->second;
    }

    /** Map (or remap) @p vpn. */
    void
    set(Addr vpn, const Pte &pte)
    {
        entries_[vpn] = pte;
    }

    /** Remove the mapping of @p vpn. */
    void erase(Addr vpn) { entries_.erase(vpn); }

    std::size_t size() const { return entries_.size(); }

    auto begin() { return entries_.begin(); }
    auto end() { return entries_.end(); }
    auto begin() const { return entries_.begin(); }
    auto end() const { return entries_.end(); }

  private:
    std::unordered_map<Addr, Pte> entries_;
};

} // namespace ovl

#endif // OVERLAYSIM_VM_PAGE_TABLE_HH
