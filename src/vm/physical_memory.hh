/**
 * @file
 * Functional main memory: a frame allocator with reference counts (for
 * copy-on-write sharing) and lazily materialized page contents. Frame 0
 * is the shared zero frame used both by classic zero-fill-on-demand and
 * by the sparse-data-structure technique, whose pages all map to a zero
 * physical page (§5.2).
 */

#ifndef OVERLAYSIM_VM_PHYSICAL_MEMORY_HH
#define OVERLAYSIM_VM_PHYSICAL_MEMORY_HH

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/types.hh"
#include "sim/sim_object.hh"

namespace ovl
{

/** Functional contents of one 4 KB frame. */
using PageData = std::array<std::uint8_t, kPageSize>;

/**
 * Frame-granular functional memory. Timing is handled elsewhere (the
 * DRAM model); this class answers "what bytes live at physical address
 * P" and tracks allocation/sharing.
 */
class PhysicalMemory : public SimObject
{
  public:
    /** Frame number of the shared all-zeroes page. */
    static constexpr Addr kZeroFrame = 0;

    PhysicalMemory(std::string name, std::uint64_t capacity_bytes);

    /** Allocate a frame with refcount 1; contents read as zero. */
    Addr allocFrame();

    /** Increment the sharer count of @p frame (fork/CoW). */
    void addRef(Addr frame);

    /**
     * Decrement the sharer count; frees the frame when it reaches zero.
     * The zero frame is never freed.
     */
    void release(Addr frame);

    /** Current sharer count (0 = unallocated). */
    unsigned refCount(Addr frame) const;

    /** Number of frames currently allocated (excluding the zero frame). */
    std::uint64_t framesInUse() const { return framesInUse_; }

    /** Bytes currently allocated (excluding the zero frame). */
    std::uint64_t bytesInUse() const { return framesInUse_ * kPageSize; }

    std::uint64_t capacityBytes() const { return capacityBytes_; }

    // ----- functional data access (physical addresses) ------------------

    void readLine(Addr paddr, LineData &out) const;
    void writeLine(Addr paddr, const LineData &data);
    void readBytes(Addr paddr, void *out, std::size_t len) const;
    void writeBytes(Addr paddr, const void *in, std::size_t len);

    /** Copy a whole frame's contents. */
    void copyFrame(Addr dst_frame, Addr src_frame);

  private:
    PageData *framePtr(Addr frame);
    const PageData *framePtrConst(Addr frame) const;

    std::uint64_t capacityBytes_;
    Addr nextFrame_ = 1; ///< frame 0 is the zero frame
    std::vector<Addr> freeFrames_;
    std::unordered_map<Addr, unsigned> refCounts_;
    std::unordered_map<Addr, std::unique_ptr<PageData>> contents_;
    std::uint64_t framesInUse_ = 0;

    stats::Counter framesAllocated_;
    stats::Counter framesFreed_;
    stats::Gauge bytesGauge_;
};

} // namespace ovl

#endif // OVERLAYSIM_VM_PHYSICAL_MEMORY_HH
