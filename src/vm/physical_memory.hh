/**
 * @file
 * Functional main memory: a frame allocator with reference counts (for
 * copy-on-write sharing) and lazily materialized page contents. Frame 0
 * is the shared zero frame used both by classic zero-fill-on-demand and
 * by the sparse-data-structure technique, whose pages all map to a zero
 * physical page (§5.2).
 */

#ifndef OVERLAYSIM_VM_PHYSICAL_MEMORY_HH
#define OVERLAYSIM_VM_PHYSICAL_MEMORY_HH

#include <array>
#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"
#include "sim/sim_object.hh"

namespace ovl
{

/** Functional contents of one 4 KB frame. */
using PageData = std::array<std::uint8_t, kPageSize>;

/**
 * Frame-granular functional memory. Timing is handled elsewhere (the
 * DRAM model); this class answers "what bytes live at physical address
 * P" and tracks allocation/sharing.
 */
class PhysicalMemory : public SimObject
{
  public:
    /** Frame number of the shared all-zeroes page. */
    static constexpr Addr kZeroFrame = 0;

    PhysicalMemory(std::string name, std::uint64_t capacity_bytes);

    /** Allocate a frame with refcount 1; contents read as zero. */
    Addr allocFrame();

    /** Increment the sharer count of @p frame (fork/CoW). */
    void addRef(Addr frame);

    /**
     * Decrement the sharer count; frees the frame when it reaches zero.
     * The zero frame is never freed.
     */
    void release(Addr frame);

    /** Current sharer count (0 = unallocated). */
    unsigned refCount(Addr frame) const;

    /** Number of frames currently allocated (excluding the zero frame). */
    std::uint64_t framesInUse() const { return framesInUse_; }

    /** Bytes currently allocated (excluding the zero frame). */
    std::uint64_t bytesInUse() const { return framesInUse_ * kPageSize; }

    std::uint64_t capacityBytes() const { return capacityBytes_; }

    // ----- functional data access (physical addresses) ------------------
    // Inline (below): every peek/poke lands here once per 64 B chunk.

    void readLine(Addr paddr, LineData &out) const;
    void writeLine(Addr paddr, const LineData &data);
    void readBytes(Addr paddr, void *out, std::size_t len) const;
    void writeBytes(Addr paddr, const void *in, std::size_t len);

    /** Copy a whole frame's contents. */
    void copyFrame(Addr dst_frame, Addr src_frame);

    /**
     * Snapshot the allocator and all materialized page contents. The
     * page pool (recycled buffers) is host-side malloc avoidance, not
     * simulated state, and is not serialized: recycled frames are
     * zero-filled on reuse either way.
     */
    void serialize(snapshot::Writer &w) const;
    void deserialize(snapshot::Reader &r);

  private:
    PageData *framePtr(Addr frame);
    const PageData *framePtrConst(Addr frame) const;

    std::uint64_t capacityBytes_;
    Addr nextFrame_ = 1; ///< frame 0 is the zero frame
    std::vector<Addr> freeFrames_;
    // Dense, frame-indexed bookkeeping. A refcount of 0 means the frame
    // is unallocated; a null contents slot reads as all-zeroes (zero
    // frame, or allocated but never written). Both vectors grow lazily
    // with the high-water frame number, so capacity can be huge without
    // paying for it up front.
    std::vector<unsigned> refCounts_;
    std::vector<std::unique_ptr<PageData>> contents_;
    // Retired page buffers, recycled by framePtr so the steady-state
    // alloc/release churn of fork-heavy workloads never hits malloc.
    std::vector<std::unique_ptr<PageData>> pagePool_;
    std::uint64_t framesInUse_ = 0;

    stats::Counter framesAllocated_;
    stats::Counter framesFreed_;
    stats::Gauge bytesGauge_;
};

// ------------------------ inline hot path ------------------------------

inline const PageData *
PhysicalMemory::framePtrConst(Addr frame) const
{
    return frame < contents_.size() ? contents_[frame].get() : nullptr;
}

inline void
PhysicalMemory::readBytes(Addr paddr, void *out, std::size_t len) const
{
    ovl_assert(pageNumber(paddr) == pageNumber(paddr + len - 1),
               "functional access crosses a page boundary");
    const PageData *page = framePtrConst(pageNumber(paddr));
    if (page == nullptr) {
        std::memset(out, 0, len); // untouched or zero frame: reads as zero
        return;
    }
    std::memcpy(out, page->data() + pageOffset(paddr), len);
}

inline void
PhysicalMemory::writeBytes(Addr paddr, const void *in, std::size_t len)
{
    ovl_assert(pageNumber(paddr) == pageNumber(paddr + len - 1),
               "functional access crosses a page boundary");
    PageData *page = framePtr(pageNumber(paddr));
    std::memcpy(page->data() + pageOffset(paddr), in, len);
}

inline void
PhysicalMemory::readLine(Addr paddr, LineData &out) const
{
    readBytes(paddr & ~kLineMask, out.data(), kLineSize);
}

inline void
PhysicalMemory::writeLine(Addr paddr, const LineData &data)
{
    writeBytes(paddr & ~kLineMask, data.data(), kLineSize);
}

} // namespace ovl

#endif // OVERLAYSIM_VM_PHYSICAL_MEMORY_HH
