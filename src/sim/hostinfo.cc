#include "hostinfo.hh"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>

#include "buildinfo.hh"

namespace ovl
{

namespace
{

std::string
cpuModelName()
{
#ifdef __linux__
    std::ifstream in("/proc/cpuinfo");
    std::string line;
    while (std::getline(in, line)) {
        auto colon = line.find(':');
        if (colon == std::string::npos)
            continue;
        if (line.compare(0, 10, "model name") == 0) {
            std::size_t start = line.find_first_not_of(" \t", colon + 1);
            return start == std::string::npos ? "unknown"
                                              : line.substr(start);
        }
    }
#endif
    return "unknown";
}

std::string
compilerId()
{
#if defined(__clang__)
    return std::string("clang ") + std::to_string(__clang_major__) + "." +
           std::to_string(__clang_minor__) + "." +
           std::to_string(__clang_patchlevel__);
#elif defined(__GNUC__)
    return std::string("gcc ") + std::to_string(__GNUC__) + "." +
           std::to_string(__GNUC_MINOR__) + "." +
           std::to_string(__GNUC_PATCHLEVEL__);
#else
    return "unknown";
#endif
}

} // namespace

const HostInfo &
hostInfo()
{
    static const HostInfo info = [] {
        HostInfo h;
        h.cpuModel = cpuModelName();
        unsigned n = std::thread::hardware_concurrency();
        h.cores = n > 0 ? n : 1;
        h.compiler = compilerId();
        h.cxxFlags = OVL_BUILD_CXX_FLAGS;
        h.buildType = OVL_BUILD_TYPE;
#ifdef OVL_PROFILE
        h.profileCompiled = true;
#else
        h.profileCompiled = false;
#endif
        return h;
    }();
    return info;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
hostInfoJson()
{
    const HostInfo &h = hostInfo();
    std::ostringstream os;
    os << "{\"cpu\": \"" << jsonEscape(h.cpuModel) << "\", \"cores\": "
       << h.cores << ", \"compiler\": \"" << jsonEscape(h.compiler)
       << "\", \"cxx_flags\": \"" << jsonEscape(h.cxxFlags)
       << "\", \"build_type\": \"" << jsonEscape(h.buildType)
       << "\", \"profile_compiled\": "
       << (h.profileCompiled ? "true" : "false") << "}";
    return os.str();
}

} // namespace ovl
