/**
 * @file
 * A small gem5-flavoured statistics package: scalar counters, distribution
 * histograms, and formula (derived) statistics, grouped per SimObject and
 * dumpable as text.
 */

#ifndef OVERLAYSIM_SIM_STATS_HH
#define OVERLAYSIM_SIM_STATS_HH

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <vector>

namespace ovl::snapshot
{
class Writer;
class Reader;
} // namespace ovl::snapshot

namespace ovl::stats
{

class Group;

/**
 * Visitor used by the tick-domain sampler to flatten a stat into one or
 * more scalar time-series points: @p suffix is appended to the stat name
 * ("" for scalars, ".samples"/".sum" for histograms), @p monotonic marks
 * values that only grow (eligible for per-interval deltas).
 */
using ScalarVisitor =
    std::function<void(const char *suffix, double value, bool monotonic)>;

/** Base class for anything registered in a stats Group. */
class Info
{
  public:
    Info(Group *parent, std::string name, std::string desc);
    virtual ~Info() = default;

    Info(const Info &) = delete;
    Info &operator=(const Info &) = delete;

    const std::string &name() const { return name_; }
    const std::string &desc() const { return desc_; }

    /** Print one or more `name value # desc` lines. */
    virtual void dump(std::ostream &os, const std::string &prefix) const = 0;

    /** Print the stat's JSON value (number or object), no key. */
    virtual void dumpJsonValue(std::ostream &os) const = 0;

    /** Flatten into scalar samples (see ScalarVisitor). The number and
     *  order of emitted scalars must not change over the stat's life. */
    virtual void eachScalar(const ScalarVisitor &fn) const = 0;

    /** Reset to the zero state (counters to 0, histograms emptied). */
    virtual void reset() = 0;

    /** Append the stat's value (not its identity) to a snapshot. */
    virtual void serializeValue(snapshot::Writer &w) const = 0;

    /** Restore a value written by serializeValue on an identical stat. */
    virtual void deserializeValue(snapshot::Reader &r) = 0;

  private:
    std::string name_;
    std::string desc_;
};

/** Monotonically increasing scalar statistic. */
class Counter : public Info
{
  public:
    Counter(Group *parent, std::string name, std::string desc)
        : Info(parent, std::move(name), std::move(desc))
    {
    }

    Counter &operator++() { ++value_; return *this; }
    Counter &operator+=(std::uint64_t v) { value_ += v; return *this; }

    std::uint64_t value() const { return value_; }

    void dump(std::ostream &os, const std::string &prefix) const override;
    void dumpJsonValue(std::ostream &os) const override;
    void eachScalar(const ScalarVisitor &fn) const override;
    void reset() override { value_ = 0; }
    void serializeValue(snapshot::Writer &w) const override;
    void deserializeValue(snapshot::Reader &r) override;

  private:
    std::uint64_t value_ = 0;
};

/** Scalar statistic that can move in either direction (e.g., occupancy). */
class Gauge : public Info
{
  public:
    Gauge(Group *parent, std::string name, std::string desc)
        : Info(parent, std::move(name), std::move(desc))
    {
    }

    Gauge &operator+=(std::int64_t v) { value_ += v; return *this; }
    Gauge &operator-=(std::int64_t v) { value_ -= v; return *this; }
    void set(std::int64_t v) { value_ = v; }

    std::int64_t value() const { return value_; }

    void dump(std::ostream &os, const std::string &prefix) const override;
    void dumpJsonValue(std::ostream &os) const override;
    void eachScalar(const ScalarVisitor &fn) const override;
    void reset() override { value_ = 0; }
    void serializeValue(snapshot::Writer &w) const override;
    void deserializeValue(snapshot::Reader &r) override;

  private:
    std::int64_t value_ = 0;
};

/**
 * Linear-bucket histogram over [0, max) with an overflow bucket; tracks
 * sample count, sum, min and max so means are exact even when bucketing
 * is coarse.
 */
class Histogram : public Info
{
  public:
    Histogram(Group *parent, std::string name, std::string desc,
              std::uint64_t bucket_width, unsigned num_buckets);

    void sample(std::uint64_t value);

    std::uint64_t samples() const { return samples_; }
    std::uint64_t sum() const { return sum_; }
    std::uint64_t minValue() const { return min_; }
    std::uint64_t maxValue() const { return max_; }
    double mean() const { return samples_ ? double(sum_) / double(samples_) : 0.0; }

    void dump(std::ostream &os, const std::string &prefix) const override;
    void dumpJsonValue(std::ostream &os) const override;
    void eachScalar(const ScalarVisitor &fn) const override;
    void reset() override;
    void serializeValue(snapshot::Writer &w) const override;
    void deserializeValue(snapshot::Reader &r) override;

  private:
    std::uint64_t bucketWidth_;
    std::vector<std::uint64_t> buckets_;
    std::uint64_t overflow_ = 0;
    std::uint64_t samples_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t min_ = ~std::uint64_t(0);
    std::uint64_t max_ = 0;
};

/** Derived statistic evaluated lazily at dump time. */
class Formula : public Info
{
  public:
    Formula(Group *parent, std::string name, std::string desc,
            std::function<double()> fn)
        : Info(parent, std::move(name), std::move(desc)), fn_(std::move(fn))
    {
    }

    double value() const { return fn_(); }

    void dump(std::ostream &os, const std::string &prefix) const override;
    void dumpJsonValue(std::ostream &os) const override;
    void eachScalar(const ScalarVisitor &fn) const override;
    void reset() override {}
    // Formulas derive from other stats; they carry no state of their own.
    void serializeValue(snapshot::Writer &) const override {}
    void deserializeValue(snapshot::Reader &) override {}

  private:
    std::function<double()> fn_;
};

/**
 * A named group of statistics. SimObject owns one; techniques and
 * experiment harnesses may create free-standing groups.
 */
class Group
{
  public:
    explicit Group(std::string name) : name_(std::move(name)) {}

    Group(const Group &) = delete;
    Group &operator=(const Group &) = delete;

    const std::string &name() const { return name_; }

    void registerInfo(Info *info) { infos_.push_back(info); }

    /** Registered stats, in registration order (used by the sampler). */
    const std::vector<Info *> &infos() const { return infos_; }

    /** Dump every registered stat as `group.stat value # desc`. */
    void dump(std::ostream &os) const;

    /** Dump as one JSON object: {"stat": value, ...}. */
    void dumpJson(std::ostream &os) const;

    /** Reset every registered stat. */
    void resetStats();

    /**
     * Serialize every registered stat's value, in registration order.
     * Restoring requires an identically structured group (same stats,
     * same order) — guaranteed when both sides are the same SimObject
     * type built from the same configuration.
     */
    void serializeStats(snapshot::Writer &w) const;

    /** Restore values written by serializeStats. */
    void deserializeStats(snapshot::Reader &r);

  private:
    std::string name_;
    std::vector<Info *> infos_;
};

} // namespace ovl::stats

#endif // OVERLAYSIM_SIM_STATS_HH
