/**
 * @file
 * Host-time attribution profiler: RAII scoped timers attributing host
 * wall-clock (TSC cycles) to a fixed hierarchy of zones — TLB walk,
 * cache lookup, miss cascade, OMT walk, OMS allocation, DRAM, snapshot
 * IO, functional fast-forward and friends (DESIGN.md §12).
 *
 * Design rules, in order of importance:
 *
 *  1. **Compiled out by default.** Every call site is wrapped in
 *     `OVL_PROF_SCOPE(Zone)` which expands to nothing unless the build
 *     defines `OVL_PROFILE` (`cmake -DOVL_PROFILE=ON`). A default build
 *     carries zero instructions, zero branches, zero data.
 *  2. **One predicted branch when compiled in but idle.** The scope
 *     constructor checks `prof::active()` — the same process-global
 *     atomic gate idiom as `trace::active()` — and does nothing else
 *     when no profile is being collected.
 *  3. **Never moves a tick.** The profiler observes host time only; it
 *     neither schedules events nor touches any simulated state, so an
 *     enabled run is simulated-tick- and golden-stats-identical to a
 *     plain run (the PR 4 invariant, asserted by tests and CI).
 *
 * Timers are thread-local and nestable: each thread owns a call tree
 * whose edges are zones, so the same zone reached through different
 * parents (e.g. dram under omt_walk vs dram under miss_cascade) rolls
 * up separately, exactly like a flamegraph. collect() merges all
 * threads' trees into one Report with per-path count/total/self/max,
 * convertible to JSON (writeJson) or Brendan-Gregg collapsed stacks
 * (writeCollapsed) for flamegraph.pl / speedscope.
 *
 * Thread-safety: enable()/disable()/collect() must be called with no
 * scopes open and no worker threads running (the trace::start contract).
 * Scope enter/exit itself is lock-free and touches only thread-local
 * state.
 */

#ifndef OVERLAYSIM_SIM_PROFILE_HH
#define OVERLAYSIM_SIM_PROFILE_HH

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <string>
#include <vector>

#if defined(__x86_64__) || defined(__i386__)
#include <x86intrin.h>
#else
#include <chrono>
#endif

namespace ovl::prof
{

/**
 * The fixed zone hierarchy. Zones name *mechanisms*, not call sites:
 * the runtime nesting of scopes (access → cache_lookup → miss_cascade
 * → dram …) builds the hierarchy, so one zone can appear under several
 * parents. Adding a zone means adding an enumerator and its name in
 * profile.cc — nothing else.
 */
enum class Zone : std::uint8_t
{
    Access,          ///< System::access — the timing-mode request engine
    TlbWalk,         ///< two-level TLB miss: page-table + OMT-cache walk
    CacheLookup,     ///< L1 lookup in the cache hierarchy
    MissCascade,     ///< L2/L3/memory path after an L1 miss
    OmtWalk,         ///< dense-radix OMT walk on an OMT-cache miss
    OmsAlloc,        ///< overlay store segment/slot allocation + migrate
    OreBroadcast,    ///< overlay-region-exists broadcast to TLBs
    OverlayingWrite, ///< overlay-on-write slow path
    CowFault,        ///< copy-on-write fault service
    Dram,            ///< DRAM controller reads + write-buffer drains
    EventQueue,      ///< event-queue callback dispatch
    SnapshotIo,      ///< snapshot serialize/deserialize + file IO
    FunctionalFf,    ///< functional fast-forward (sampled mode)
    Fork,            ///< System::fork / Vmm::fork
    Teardown,        ///< unmap / destroyProcess
    Promote,         ///< overlay promotion
    TlbMaint,        ///< TLB maintenance (ASID invalidation)
    NumZones
};

constexpr std::size_t kNumZones = std::size_t(Zone::NumZones);

/** The stable lowercase slug of @p zone ("tlb_walk", "oms_alloc", …). */
const char *zoneName(Zone zone);

namespace detail
{

extern std::atomic<bool> gActive;

/** One node of a thread's call tree: a zone reached via one parent path. */
struct Node
{
    std::uint64_t count = 0;
    std::uint64_t totalCycles = 0;
    std::uint64_t maxCycles = 0;
    Node *parent = nullptr;
    Zone zone = Zone::NumZones; // NumZones marks the root
    std::array<Node *, kNumZones> children{};
};

/** Per-thread profiling state; heap-allocated, registered globally,
 *  never freed (bounded by thread count), so collect() can read trees
 *  of threads that have already exited. */
struct ThreadState
{
    Node root;
    Node *current = &root;
    std::deque<Node> arena; // stable addresses for child nodes
};

/** Register-and-return this thread's state (slow path, once/thread). */
ThreadState *registerThread();

inline ThreadState &
threadState()
{
    thread_local ThreadState *state = nullptr;
    if (state == nullptr)
        state = registerThread();
    return *state;
}

/** Allocate the @p zone child of @p parent (slow path, once/edge). */
Node *newChild(ThreadState &state, Node *parent, Zone zone);

inline std::uint64_t
tscNow()
{
#if defined(__x86_64__) || defined(__i386__)
    return __rdtsc();
#else
    return std::uint64_t(std::chrono::steady_clock::now()
                             .time_since_epoch()
                             .count());
#endif
}

} // namespace detail

/** True while a profile is being collected. The one-branch scope gate. */
inline bool
active()
{
    return detail::gActive.load(std::memory_order_acquire);
}

/**
 * RAII scope: on entry descends the thread-local call tree along the
 * @p zone edge and stamps the TSC; on exit accumulates cycles into the
 * node and pops back. When no profile is active (or after disable()
 * raced an open scope closed), the whole object is inert.
 *
 * The idle path is everything that inlines at a call site: one
 * predicted-not-taken branch on the gate and one null store. The whole
 * active path (TLS lookup, tree descent, TSC stamps) lives out of line
 * in profile.cc — inlining it at every hot-path site measurably slows
 * the *idle* simulator through code bloat alone, and active-mode cost
 * is not on the ≤3% overhead contract (DESIGN.md §12.2).
 */
class ScopedTimer
{
  public:
    explicit ScopedTimer(Zone zone)
    {
#if defined(__GNUC__) || defined(__clang__)
        if (__builtin_expect(active(), 0))
            enter(zone);
#else
        if (active())
            enter(zone);
#endif
    }

    ~ScopedTimer()
    {
#if defined(__GNUC__) || defined(__clang__)
        if (__builtin_expect(node_ != nullptr, 0))
            leave();
#else
        if (node_ != nullptr)
            leave();
#endif
    }

    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;

  private:
    void enter(Zone zone); ///< out-of-line active path (profile.cc)
    void leave();          ///< out-of-line active path (profile.cc)

    detail::Node *node_ = nullptr;
    // state_ and start_ are written by enter() and read by leave() only
    // when node_ is non-null; left uninitialized on the idle path.
    detail::ThreadState *state_;
    std::uint64_t start_;
};

/** One merged call-tree path in a Report, in DFS order. */
struct ZoneRow
{
    std::string path;    ///< ";"-joined zone slugs, e.g. "access;dram"
    Zone zone;           ///< leaf zone of the path
    unsigned depth;      ///< 1 for top-level zones
    std::uint64_t count; ///< number of scope entries
    double totalSeconds; ///< inclusive host time
    double selfSeconds;  ///< totalSeconds minus children's totals
    double maxSeconds;   ///< longest single scope
};

/** The merged result of one collection window. */
struct Report
{
    double wallSeconds = 0.0;       ///< enable()/collect() window length
    double attributedSeconds = 0.0; ///< Σ total of top-level zones
    double cyclesPerSecond = 0.0;   ///< TSC calibration used
    std::vector<ZoneRow> rows;      ///< DFS order, parents before children

    /** Fraction of the window attributed to non-root zones (0 when the
     *  window is empty). The ≥0.8 acceptance gate reads this. */
    double
    attributedFraction() const
    {
        return wallSeconds > 0.0 ? attributedSeconds / wallSeconds : 0.0;
    }
};

/**
 * Reset all thread trees, stamp the calibration clocks and open the
 * gate. Call with no scopes open and no workers running.
 */
void enable();

/** Close the gate; scopes become inert again. collect() still works. */
void disable();

/**
 * Merge every thread's tree into a Report for the window since the last
 * enable()/collect(reset=true). TSC cycles are converted to seconds by
 * calibrating against steady_clock over the same window. With @p reset,
 * trees and calibration restart so consecutive windows (e.g. one per
 * bench workload) attribute independently.
 */
Report collect(bool reset = false);

/** Write @p report as a JSON object ({"wall_seconds":…, "zones":[…]}). */
void writeJson(std::ostream &os, const Report &report);

/**
 * Write @p report as collapsed stacks ("frame;frame <usec>" per line,
 * flamegraph.pl / speedscope input). Each line's value is the path's
 * *self* time in integer microseconds; zero-self paths are skipped.
 * @p prefix, when non-empty, becomes the root frame (e.g. the workload
 * name), letting several reports share one flamegraph file.
 */
void writeCollapsed(std::ostream &os, const Report &report,
                    const std::string &prefix = std::string());

} // namespace ovl::prof

/**
 * Call-site macro: a scoped timer when the build defines OVL_PROFILE,
 * nothing at all otherwise. `zone` is a bare Zone enumerator name.
 *
 *     OVL_PROF_SCOPE(CacheLookup);
 */
#ifdef OVL_PROFILE
#define OVL_PROF_CONCAT2(a, b) a##b
#define OVL_PROF_CONCAT(a, b) OVL_PROF_CONCAT2(a, b)
#define OVL_PROF_SCOPE(zone)                                                 \
    ::ovl::prof::ScopedTimer OVL_PROF_CONCAT(ovl_prof_scope_, __LINE__)(     \
        ::ovl::prof::Zone::zone)
#else
#define OVL_PROF_SCOPE(zone) ((void)0)
#endif

#endif // OVERLAYSIM_SIM_PROFILE_HH
