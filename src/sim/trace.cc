#include "trace.hh"

#include <cstdio>
#include <mutex>

#include "common/logging.hh"

namespace ovl::trace
{

namespace detail
{
std::atomic<bool> gActive{false};
} // namespace detail

namespace
{

std::mutex gMutex;
std::FILE *gFile = nullptr;
bool gFirstEvent = true;
std::uint64_t gMaxEvents = 0;
std::uint64_t gEventCount = 0;
std::uint64_t gDropped = 0;

/** Small per-thread track id so concurrent sweep items don't interleave. */
std::atomic<unsigned> gNextTid{0};

unsigned
threadTid()
{
    thread_local unsigned tid = gNextTid.fetch_add(1) + 1;
    return tid;
}

/**
 * Write one event record. Caller holds gMutex and has already applied
 * the cap. @p dur < 0 means "no dur field" (non-"X" phases).
 */
void
writeEvent(char phase, const char *cat, const char *name, Tick ts,
           std::int64_t dur, std::initializer_list<Arg> args)
{
    std::fprintf(gFile, "%s{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"%c\","
                        "\"ts\":%llu",
                 gFirstEvent ? "\n" : ",\n", name, cat, phase,
                 (unsigned long long)ts);
    if (dur >= 0)
        std::fprintf(gFile, ",\"dur\":%llu", (unsigned long long)dur);
    std::fprintf(gFile, ",\"pid\":0,\"tid\":%u", threadTid());
    if (args.size() > 0) {
        std::fprintf(gFile, ",\"args\":{");
        bool first = true;
        for (const Arg &arg : args) {
            std::fprintf(gFile, "%s\"%s\":%llu", first ? "" : ",", arg.key,
                         (unsigned long long)arg.value);
            first = false;
        }
        std::fputc('}', gFile);
    }
    std::fputc('}', gFile);
    gFirstEvent = false;
    ++gEventCount;
}

/** Shared emit path: gate, cap, write. */
void
emit(char phase, const char *cat, const char *name, Tick ts,
     std::int64_t dur, std::initializer_list<Arg> args)
{
    std::lock_guard<std::mutex> lock(gMutex);
    if (gFile == nullptr)
        return; // raced with stop()
    if (gMaxEvents != 0 && gEventCount >= gMaxEvents) {
        ++gDropped;
        return;
    }
    writeEvent(phase, cat, name, ts, dur, args);
}

} // namespace

void
start(const std::string &path, std::uint64_t max_events)
{
    std::lock_guard<std::mutex> lock(gMutex);
    ovl_assert(gFile == nullptr, "trace sink already open");
    gFile = std::fopen(path.c_str(), "w");
    if (gFile == nullptr)
        ovl_fatal("cannot open trace file %s", path.c_str());
    std::fprintf(gFile, "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
    gFirstEvent = true;
    gMaxEvents = max_events;
    gEventCount = 0;
    gDropped = 0;
    detail::gActive.store(true, std::memory_order_release);
}

void
stop()
{
    std::lock_guard<std::mutex> lock(gMutex);
    if (gFile == nullptr)
        return;
    detail::gActive.store(false, std::memory_order_release);
    if (gDropped > 0) {
        // Record the truncation inside the trace itself (doesn't count
        // against the cap — the cap already fired).
        writeEvent('i', "trace", "trace_truncated", 0, -1,
                   {{"dropped_events", gDropped}});
        --gEventCount; // keep eventCount() = recorded model events
    }
    std::fprintf(gFile, "\n]}\n");
    std::fclose(gFile);
    gFile = nullptr;
}

std::uint64_t
eventCount()
{
    std::lock_guard<std::mutex> lock(gMutex);
    return gEventCount;
}

std::uint64_t
droppedCount()
{
    std::lock_guard<std::mutex> lock(gMutex);
    return gDropped;
}

std::string
rowFilePath(const std::string &base, std::size_t row)
{
    std::string suffix = ".row" + std::to_string(row);
    std::size_t dot = base.find_last_of('.');
    std::size_t slash = base.find_last_of('/');
    bool has_ext = dot != std::string::npos &&
                   (slash == std::string::npos || dot > slash);
    if (!has_ext)
        return base + suffix;
    return base.substr(0, dot) + suffix + base.substr(dot);
}

void
instant(const char *cat, const char *name, Tick ts,
        std::initializer_list<Arg> args)
{
    emit('i', cat, name, ts, -1, args);
}

void
begin(const char *cat, const char *name, Tick ts,
      std::initializer_list<Arg> args)
{
    emit('B', cat, name, ts, -1, args);
}

void
end(const char *cat, const char *name, Tick ts)
{
    emit('E', cat, name, ts, -1, {});
}

void
complete(const char *cat, const char *name, Tick ts, Tick dur,
         std::initializer_list<Arg> args)
{
    emit('X', cat, name, ts, std::int64_t(dur), args);
}

} // namespace ovl::trace
