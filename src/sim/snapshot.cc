#include "snapshot.hh"

#include <cstdio>

#include "sim/profile.hh"

namespace ovl::snapshot
{

void
writeSnapshotFile(const std::string &path,
                  const std::vector<std::uint8_t> &payload)
{
    OVL_PROF_SCOPE(SnapshotIo);
    Writer header;
    header.u64(kFileMagic);
    header.u32(kFormatVersion);
    header.u64(payload.size());

    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (f == nullptr)
        throw SnapshotError("cannot open '" + path + "' for writing");
    bool ok = std::fwrite(header.buffer().data(), 1, header.buffer().size(),
                          f) == header.buffer().size() &&
              std::fwrite(payload.data(), 1, payload.size(), f) ==
                  payload.size();
    ok = std::fclose(f) == 0 && ok;
    if (!ok)
        throw SnapshotError("short write to '" + path + "'");
}

std::vector<std::uint8_t>
readSnapshotFile(const std::string &path)
{
    OVL_PROF_SCOPE(SnapshotIo);
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (f == nullptr)
        throw SnapshotError("cannot open '" + path + "'");

    std::vector<std::uint8_t> raw;
    std::uint8_t chunk[1 << 16];
    std::size_t got;
    while ((got = std::fread(chunk, 1, sizeof(chunk), f)) > 0)
        raw.insert(raw.end(), chunk, chunk + got);
    bool read_error = std::ferror(f) != 0;
    std::fclose(f);
    if (read_error)
        throw SnapshotError("read error on '" + path + "'");

    Reader r(raw);
    if (raw.size() < 8 + 4 + 8)
        throw SnapshotError("'" + path + "' is too short to be a snapshot (" +
                            std::to_string(raw.size()) + " bytes)");
    std::uint64_t magic = r.u64();
    if (magic != kFileMagic) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%016llx",
                      (unsigned long long)magic);
        throw SnapshotError("'" + path + "' is not a snapshot file (magic " +
                            buf + ")");
    }
    std::uint32_t version = r.u32();
    if (version != kFormatVersion) {
        throw SnapshotError(
            "'" + path + "' has format version " + std::to_string(version) +
            "; this build reads version " + std::to_string(kFormatVersion));
    }
    std::uint64_t len = r.u64();
    if (len != raw.size() - (8 + 4 + 8)) {
        throw SnapshotError("'" + path + "' payload length mismatch: header "
                            "says " + std::to_string(len) + ", file holds " +
                            std::to_string(raw.size() - (8 + 4 + 8)));
    }
    return std::vector<std::uint8_t>(raw.begin() + (8 + 4 + 8), raw.end());
}

} // namespace ovl::snapshot
