/**
 * @file
 * Stats forensics: parse two golden-stats JSON dumps (the
 * System::dumpAllStatsJson grammar — an object of stat groups whose
 * values are numbers, null, or nested objects like histograms) and
 * localize drift to the *first diverging scalar* instead of an opaque
 * byte-compare failure. Backs `overlaysim stats-diff a.json b.json`
 * and scripts/stats_diff.py mirrors it for arbitrary JSON.
 */

#ifndef OVERLAYSIM_SIM_STATS_DIFF_HH
#define OVERLAYSIM_SIM_STATS_DIFF_HH

#include <cstdio>
#include <string>
#include <vector>

namespace ovl::statsdiff
{

/** One flattened leaf: "group.stat[.field[.bucket]]" → value. */
struct Scalar
{
    std::string path;
    double value = 0.0;
    bool isNull = false; ///< the JSON literal null (non-finite Formula)
};

/** A parsed stats document: leaves flattened in file order. */
struct Doc
{
    std::vector<Scalar> scalars;
};

/**
 * Parse @p text against the restricted golden-stats grammar (objects,
 * numbers, null; no arrays or strings). Throws std::runtime_error with
 * a byte offset on malformed input.
 */
Doc parseStatsJson(const std::string &text);

/** parseStatsJson over the contents of @p path (throws on IO error). */
Doc parseStatsFile(const std::string &path);

/** The localized difference between two parsed documents. */
struct DiffResult
{
    bool identical = true;
    std::size_t diffCount = 0;   ///< scalars differing or one-sided
    std::string firstPath;       ///< first diverging path, doc-a order
    bool firstOnlyInA = false;
    bool firstOnlyInB = false;
    double aValue = 0.0;         ///< meaningful unless firstOnlyInB
    double bValue = 0.0;         ///< meaningful unless firstOnlyInA
    bool aNull = false;
    bool bNull = false;
    std::size_t comparedCount = 0; ///< scalars present in both docs
};

/** Compare @p a and @p b; first divergence follows a's file order
 *  (paths only in b are reported after all of a's). */
DiffResult diff(const Doc &a, const Doc &b);

/**
 * CLI entry: parse both files, print either "stats identical" or the
 * first divergence + differing-scalar count to @p out. Returns 0 when
 * identical, 1 when differing, 2 on parse/IO failure.
 */
int runStatsDiff(const std::string &path_a, const std::string &path_b,
                 std::FILE *out);

} // namespace ovl::statsdiff

#endif // OVERLAYSIM_SIM_STATS_DIFF_HH
