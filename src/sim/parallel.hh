/**
 * @file
 * Parallel sweep runner: fan N independent config→result closures across
 * a fixed pool of worker threads and return the results in input order.
 *
 * The evaluation sweeps (the 15-benchmark fork suite, the 87-matrix
 * L-sweep, the ablation grids) are embarrassingly parallel per data
 * point: each point is a fully self-contained `System` with its own
 * EventQueue, stats Groups, DRAM and caches, and its simulated timing is
 * deterministic per instance (DESIGN.md §7). parallelMap exploits that:
 * workers share *nothing* but the read-only inputs, results land in a
 * pre-sized vector slot per item, and the caller renders output only
 * after the map returns — so a bench's stdout and JSON are byte-identical
 * to the serial run regardless of the job count.
 *
 * Thread-safety boundary (DESIGN.md §8): everything reachable from a
 * `System` is per-instance. The only process-global mutable state in the
 * simulator is the debug-trace flag table (`common/debug.hh`), which
 * parallelMap force-initializes before spawning workers; lazily-built
 * suite singletons (e.g. forkBenchSuite()) use function-local statics,
 * whose initialization C++11 already serializes. Callers must not
 * enable/disable debug flags from inside worker closures.
 */

#ifndef OVERLAYSIM_SIM_PARALLEL_HH
#define OVERLAYSIM_SIM_PARALLEL_HH

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace ovl
{

/** Worker count of the host: hardware_concurrency, at least 1. */
unsigned hardwareJobs();

/**
 * The default job count of every sweep bench: the OVL_JOBS environment
 * variable when set (and >= 1), otherwise hardwareJobs(). `OVL_JOBS=1`
 * forces the serial path everywhere without editing command lines.
 */
unsigned defaultJobs();

/**
 * Shared `--jobs N` flag of the sweep benches. Accepts `--jobs N` and
 * `--jobs=N`, plus `--progress` (see setProgressEnabled); no flag means
 * defaultJobs(). Unknown arguments print a usage line and exit(1).
 */
unsigned jobsFromCommandLine(int argc, char **argv);

/**
 * Whether parallelMap emits per-item progress lines. Defaults to the
 * OVL_PROGRESS environment variable (any value but "" / "0" enables);
 * the benches' `--progress` flag turns it on explicitly. Progress goes
 * to stderr only — a sweep's stdout stays byte-identical at every job
 * count, with or without progress.
 */
bool progressEnabled();
void setProgressEnabled(bool enabled);

/**
 * Thread-safe "[k/n] <label> done (wall Xs)" reporting for long sweeps.
 * Each itemDone() prints one line to stderr; k counts completions in
 * wall-clock order (not input order), so the lines show real progress
 * even when items finish out of order.
 */
class ProgressReporter
{
  public:
    using LabelFn = std::function<std::string(std::size_t)>;

    ProgressReporter(std::size_t total, LabelFn label);

    /** Report item @p index complete. Callable from any worker thread. */
    void itemDone(std::size_t index);

    /**
     * Per-worker telemetry summary, printed when a worker's drain loop
     * ends: items picked, host time busy inside closures, and idle time
     * (queue-wait for the first item plus the tail wait while other
     * workers finish items this one couldn't pick). One stderr line per
     * worker, emitted only on the threaded path with progress enabled.
     */
    void workerDone(std::size_t worker, std::size_t workers,
                    std::uint64_t items, double busy_seconds,
                    double idle_seconds);

  private:
    std::size_t total_;
    LabelFn label_;
    std::chrono::steady_clock::time_point start_;
    std::mutex mutex_;
    std::size_t done_ = 0;
};

namespace detail
{
/** One-time init of process-global state workers may read (debug flags). */
void prepareForWorkers();
} // namespace detail

/**
 * Run `fn(0) .. fn(num_items - 1)` on a fixed pool of @p jobs worker
 * threads and return the results in input order. `fn` must be callable
 * from any thread with `std::size_t` and return a default-constructible,
 * movable value; closures must not touch shared mutable state (give each
 * item its own System/Rng). With `jobs <= 1` (or a single item) the
 * calls run inline on the calling thread, in index order — exactly the
 * serial behaviour.
 *
 * Items are handed out through a shared atomic cursor, so slow items
 * don't leave workers idle behind a static partition. If any closure
 * throws, every item still completes (or fails) and the exception of the
 * lowest-index failed item is rethrown on the calling thread.
 *
 * @p progress_label (optional) names item i for progress reporting;
 * when provided and progressEnabled(), each completion prints one
 * "[k/n] <label> done (wall Xs)" line to stderr (never stdout).
 */
template <typename Fn>
auto
parallelMap(std::size_t num_items, Fn &&fn, unsigned jobs,
            ProgressReporter::LabelFn progress_label = {})
    -> std::vector<decltype(fn(std::size_t(0)))>
{
    using Result = decltype(fn(std::size_t(0)));
    std::vector<Result> results(num_items);
    if (num_items == 0)
        return results;

    std::unique_ptr<ProgressReporter> progress;
    if (progress_label && progressEnabled()) {
        progress = std::make_unique<ProgressReporter>(
            num_items, std::move(progress_label));
    }

    std::size_t workers = jobs > 1 ? std::min<std::size_t>(jobs, num_items)
                                   : 1;
    if (workers <= 1) {
        for (std::size_t i = 0; i < num_items; ++i) {
            results[i] = fn(i);
            if (progress)
                progress->itemDone(i);
        }
        return results;
    }

    detail::prepareForWorkers();
    std::atomic<std::size_t> cursor{0};
    std::vector<std::exception_ptr> errors(num_items);
    auto drain = [&](std::size_t worker) {
        using clock = std::chrono::steady_clock;
        // Telemetry clocks tick only when a reporter is listening, so a
        // plain (progress-off) sweep runs the exact pre-telemetry loop.
        clock::time_point wall_start;
        double busy = 0.0;
        std::uint64_t picked = 0;
        if (progress)
            wall_start = clock::now();
        for (;;) {
            std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
            if (i >= num_items)
                break;
            clock::time_point item_start;
            if (progress) {
                ++picked;
                item_start = clock::now();
            }
            try {
                results[i] = fn(i);
                if (progress)
                    progress->itemDone(i);
            } catch (...) {
                errors[i] = std::current_exception();
            }
            if (progress) {
                busy += std::chrono::duration<double>(clock::now() -
                                                      item_start)
                            .count();
            }
        }
        if (progress) {
            double wall = std::chrono::duration<double>(clock::now() -
                                                        wall_start)
                              .count();
            progress->workerDone(worker, workers, picked, busy,
                                 wall > busy ? wall - busy : 0.0);
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(workers - 1);
    for (std::size_t w = 1; w < workers; ++w)
        pool.emplace_back(drain, w);
    drain(0); // the calling thread is worker 0
    for (std::thread &t : pool)
        t.join();

    for (std::exception_ptr &error : errors) {
        if (error)
            std::rethrow_exception(error);
    }
    return results;
}

} // namespace ovl

#endif // OVERLAYSIM_SIM_PARALLEL_HH
