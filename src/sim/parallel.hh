/**
 * @file
 * Parallel sweep runner: fan N independent config→result closures across
 * a fixed pool of worker threads and return the results in input order.
 *
 * The evaluation sweeps (the 15-benchmark fork suite, the 87-matrix
 * L-sweep, the ablation grids) are embarrassingly parallel per data
 * point: each point is a fully self-contained `System` with its own
 * EventQueue, stats Groups, DRAM and caches, and its simulated timing is
 * deterministic per instance (DESIGN.md §7). parallelMap exploits that:
 * workers share *nothing* but the read-only inputs, results land in a
 * pre-sized vector slot per item, and the caller renders output only
 * after the map returns — so a bench's stdout and JSON are byte-identical
 * to the serial run regardless of the job count.
 *
 * Thread-safety boundary (DESIGN.md §8): everything reachable from a
 * `System` is per-instance. The only process-global mutable state in the
 * simulator is the debug-trace flag table (`common/debug.hh`), which
 * parallelMap force-initializes before spawning workers; lazily-built
 * suite singletons (e.g. forkBenchSuite()) use function-local statics,
 * whose initialization C++11 already serializes. Callers must not
 * enable/disable debug flags from inside worker closures.
 */

#ifndef OVERLAYSIM_SIM_PARALLEL_HH
#define OVERLAYSIM_SIM_PARALLEL_HH

#include <atomic>
#include <cstddef>
#include <exception>
#include <thread>
#include <utility>
#include <vector>

namespace ovl
{

/** Worker count of the host: hardware_concurrency, at least 1. */
unsigned hardwareJobs();

/**
 * The default job count of every sweep bench: the OVL_JOBS environment
 * variable when set (and >= 1), otherwise hardwareJobs(). `OVL_JOBS=1`
 * forces the serial path everywhere without editing command lines.
 */
unsigned defaultJobs();

/**
 * Shared `--jobs N` flag of the sweep benches. Accepts `--jobs N` and
 * `--jobs=N`; no flag means defaultJobs(). Unknown arguments print a
 * usage line and exit(1).
 */
unsigned jobsFromCommandLine(int argc, char **argv);

namespace detail
{
/** One-time init of process-global state workers may read (debug flags). */
void prepareForWorkers();
} // namespace detail

/**
 * Run `fn(0) .. fn(num_items - 1)` on a fixed pool of @p jobs worker
 * threads and return the results in input order. `fn` must be callable
 * from any thread with `std::size_t` and return a default-constructible,
 * movable value; closures must not touch shared mutable state (give each
 * item its own System/Rng). With `jobs <= 1` (or a single item) the
 * calls run inline on the calling thread, in index order — exactly the
 * serial behaviour.
 *
 * Items are handed out through a shared atomic cursor, so slow items
 * don't leave workers idle behind a static partition. If any closure
 * throws, every item still completes (or fails) and the exception of the
 * lowest-index failed item is rethrown on the calling thread.
 */
template <typename Fn>
auto
parallelMap(std::size_t num_items, Fn &&fn, unsigned jobs)
    -> std::vector<decltype(fn(std::size_t(0)))>
{
    using Result = decltype(fn(std::size_t(0)));
    std::vector<Result> results(num_items);
    if (num_items == 0)
        return results;

    std::size_t workers = jobs > 1 ? std::min<std::size_t>(jobs, num_items)
                                   : 1;
    if (workers <= 1) {
        for (std::size_t i = 0; i < num_items; ++i)
            results[i] = fn(i);
        return results;
    }

    detail::prepareForWorkers();
    std::atomic<std::size_t> cursor{0};
    std::vector<std::exception_ptr> errors(num_items);
    auto drain = [&] {
        for (;;) {
            std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
            if (i >= num_items)
                return;
            try {
                results[i] = fn(i);
            } catch (...) {
                errors[i] = std::current_exception();
            }
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(workers - 1);
    for (std::size_t w = 1; w < workers; ++w)
        pool.emplace_back(drain);
    drain(); // the calling thread is worker 0
    for (std::thread &t : pool)
        t.join();

    for (std::exception_ptr &error : errors) {
        if (error)
            std::rethrow_exception(error);
    }
    return results;
}

} // namespace ovl

#endif // OVERLAYSIM_SIM_PARALLEL_HH
