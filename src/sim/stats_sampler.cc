#include "stats_sampler.hh"

#include <cmath>
#include <cstdio>

#include "common/logging.hh"

namespace ovl
{

namespace
{

/** Escape the few JSON-hostile characters a stat path could contain. */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        out.push_back(c);
    }
    return out;
}

/**
 * Print a sample value. Counter-derived values are whole numbers and
 * must not be rounded through ostream's default 6-significant-digit
 * formatting; true fractions get enough digits to round-trip.
 */
void
writeJsonNumber(std::ostream &os, double v)
{
    constexpr double kExactInt = 9007199254740992.0; // 2^53
    if (v == std::floor(v) && std::fabs(v) < kExactInt) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%lld", (long long)v);
        os << buf;
    } else {
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.17g", v);
        os << buf;
    }
}

} // namespace

StatsSampler::StatsSampler(std::ostream &out, Tick interval, Mode mode,
                           std::string label)
    : out_(out), interval_(interval), mode_(mode), label_(std::move(label))
{
    ovl_assert(interval_ > 0, "sample interval must be positive");
}

void
StatsSampler::addGroup(const std::string &path, const stats::Group *group)
{
    ovl_assert(!begun_, "addGroup after begin() would change the schema");
    ovl_assert(group != nullptr, "sampling a null stats group");
    groups_.emplace_back(path, group);
}

void
StatsSampler::begin(Tick now)
{
    ovl_assert(!begun_, "sampler begun twice");
    begun_ = true;

    for (const auto &[path, group] : groups_) {
        for (const stats::Info *info : group->infos()) {
            info->eachScalar([&](const char *suffix, double, bool monotonic) {
                columns_.push_back(Column{
                    jsonEscape(path + "." + info->name() + suffix),
                    monotonic});
            });
        }
    }
    prev_.assign(columns_.size(), 0.0);
    scratch_.resize(columns_.size());

    nextDue_ = now; // the boundary grid starts at the begin tick
    emitRecord(now);
    nextDue_ = now + interval_;
}

Tick
StatsSampler::observe(Tick t)
{
    ovl_assert(begun_, "observe before begin()");
    while (nextDue_ <= t) {
        emitRecord(nextDue_);
        nextDue_ += interval_;
    }
    return nextDue_;
}

void
StatsSampler::finish(Tick end)
{
    observe(end);
    out_.flush();
}

void
StatsSampler::rebase()
{
    if (!begun_ || mode_ != Mode::Delta)
        return;
    snapshot(prev_);
}

void
StatsSampler::scheduleOn(EventQueue &eq)
{
    ovl_assert(begun_, "scheduleOn before begin()");
    eq.schedule(nextDue_, [this, &eq](Tick now) {
        observe(now);
        scheduleOn(eq);
    });
}

void
StatsSampler::snapshot(std::vector<double> &into) const
{
    std::size_t i = 0;
    for (const auto &[path, group] : groups_) {
        for (const stats::Info *info : group->infos()) {
            info->eachScalar([&](const char *, double value, bool) {
                ovl_assert(i < into.size(),
                           "stat emitted more scalars than at begin()");
                into[i++] = value;
            });
        }
    }
    ovl_assert(i == into.size(), "stat emitted fewer scalars than at begin()");
}

void
StatsSampler::emitRecord(Tick tick)
{
    snapshot(scratch_);

    out_ << "{\"tick\": " << tick;
    if (!label_.empty())
        out_ << ", \"run\": \"" << jsonEscape(label_) << "\"";
    for (std::size_t i = 0; i < columns_.size(); ++i) {
        double v = scratch_[i];
        if (mode_ == Mode::Delta && columns_[i].monotonic) {
            double delta = v - prev_[i];
            prev_[i] = v;
            v = delta;
        }
        out_ << ", \"" << columns_[i].name << "\": ";
        writeJsonNumber(out_, v);
    }
    out_ << "}\n";
    ++records_;
}

} // namespace ovl
