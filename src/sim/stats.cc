#include "stats.hh"

#include <iomanip>
#include <limits>

#include "common/logging.hh"
#include "sim/snapshot.hh"

namespace ovl::stats
{

Info::Info(Group *parent, std::string name, std::string desc)
    : name_(std::move(name)), desc_(std::move(desc))
{
    ovl_assert(parent != nullptr, "stat created without a parent group");
    parent->registerInfo(this);
}

void
Counter::dump(std::ostream &os, const std::string &prefix) const
{
    os << std::left << std::setw(44) << (prefix + name())
       << std::right << std::setw(16) << value_
       << "  # " << desc() << "\n";
}

void
Gauge::dump(std::ostream &os, const std::string &prefix) const
{
    os << std::left << std::setw(44) << (prefix + name())
       << std::right << std::setw(16) << value_
       << "  # " << desc() << "\n";
}

Histogram::Histogram(Group *parent, std::string name, std::string desc,
                     std::uint64_t bucket_width, unsigned num_buckets)
    : Info(parent, std::move(name), std::move(desc)),
      bucketWidth_(bucket_width), buckets_(num_buckets, 0)
{
    ovl_assert(bucket_width > 0, "histogram bucket width must be positive");
    ovl_assert(num_buckets > 0, "histogram needs at least one bucket");
}

void
Histogram::sample(std::uint64_t value)
{
    std::uint64_t idx = value / bucketWidth_;
    if (idx < buckets_.size())
        ++buckets_[idx];
    else
        ++overflow_;
    ++samples_;
    sum_ += value;
    if (value < min_)
        min_ = value;
    if (value > max_)
        max_ = value;
}

void
Histogram::dump(std::ostream &os, const std::string &prefix) const
{
    os << std::left << std::setw(44) << (prefix + name() + ".samples")
       << std::right << std::setw(16) << samples_
       << "  # " << desc() << "\n";
    if (samples_ == 0)
        return;
    os << std::left << std::setw(44) << (prefix + name() + ".mean")
       << std::right << std::setw(16) << std::fixed << std::setprecision(2)
       << mean() << "\n";
    os << std::left << std::setw(44) << (prefix + name() + ".min")
       << std::right << std::setw(16) << min_ << "\n";
    os << std::left << std::setw(44) << (prefix + name() + ".max")
       << std::right << std::setw(16) << max_ << "\n";
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        if (buckets_[i] == 0)
            continue;
        os << std::left << std::setw(44)
           << (prefix + name() + ".bucket" + std::to_string(i * bucketWidth_))
           << std::right << std::setw(16) << buckets_[i] << "\n";
    }
    if (overflow_ > 0) {
        os << std::left << std::setw(44) << (prefix + name() + ".overflow")
           << std::right << std::setw(16) << overflow_ << "\n";
    }
}

void
Histogram::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    overflow_ = 0;
    samples_ = 0;
    sum_ = 0;
    min_ = ~std::uint64_t(0);
    max_ = 0;
}

void
Formula::dump(std::ostream &os, const std::string &prefix) const
{
    os << std::left << std::setw(44) << (prefix + name())
       << std::right << std::setw(16) << std::fixed << std::setprecision(4)
       << value() << "  # " << desc() << "\n";
}

void
Counter::dumpJsonValue(std::ostream &os) const
{
    os << value_;
}

void
Gauge::dumpJsonValue(std::ostream &os) const
{
    os << value_;
}

void
Histogram::dumpJsonValue(std::ostream &os) const
{
    os << "{\"samples\": " << samples_;
    if (samples_ > 0) {
        os << ", \"mean\": " << mean() << ", \"min\": " << min_
           << ", \"max\": " << max_;
    }
    // Always emit the bucket map so every histogram value has the same
    // shape; zero samples yields {"samples": 0, "buckets": {}}.
    os << ", \"buckets\": {";
    bool first = true;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        if (buckets_[i] == 0)
            continue;
        if (!first)
            os << ", ";
        first = false;
        os << "\"" << i * bucketWidth_ << "\": " << buckets_[i];
    }
    os << "}";
    if (overflow_ > 0)
        os << ", \"overflow\": " << overflow_;
    os << "}";
}

void
Formula::dumpJsonValue(std::ostream &os) const
{
    double v = value();
    // JSON has no NaN/Inf; clamp non-finite values to null.
    if (v != v || v == std::numeric_limits<double>::infinity() ||
        v == -std::numeric_limits<double>::infinity()) {
        os << "null";
        return;
    }
    os << v;
}

void
Counter::eachScalar(const ScalarVisitor &fn) const
{
    fn("", double(value_), true);
}

void
Gauge::eachScalar(const ScalarVisitor &fn) const
{
    fn("", double(value_), false);
}

void
Histogram::eachScalar(const ScalarVisitor &fn) const
{
    // Sample count and sum are enough to reconstruct per-interval rates
    // and means; per-bucket time series would bloat every record.
    fn(".samples", double(samples_), true);
    fn(".sum", double(sum_), true);
}

void
Formula::eachScalar(const ScalarVisitor &fn) const
{
    double v = value();
    // Keep records JSON-clean: non-finite derived values sample as 0.
    if (v != v || v == std::numeric_limits<double>::infinity() ||
        v == -std::numeric_limits<double>::infinity())
        v = 0.0;
    fn("", v, false);
}

void
Group::dumpJson(std::ostream &os) const
{
    os << "{";
    bool first = true;
    for (const Info *info : infos_) {
        if (!first)
            os << ", ";
        first = false;
        os << "\"" << info->name() << "\": ";
        info->dumpJsonValue(os);
    }
    os << "}";
}

void
Group::dump(std::ostream &os) const
{
    std::string prefix = name_.empty() ? "" : name_ + ".";
    for (const Info *info : infos_)
        info->dump(os, prefix);
}

void
Group::resetStats()
{
    for (Info *info : infos_)
        info->reset();
}

// --------------------------- serialization -----------------------------

void
Counter::serializeValue(snapshot::Writer &w) const
{
    w.u64(value_);
}

void
Counter::deserializeValue(snapshot::Reader &r)
{
    value_ = r.u64();
}

void
Gauge::serializeValue(snapshot::Writer &w) const
{
    w.i64(value_);
}

void
Gauge::deserializeValue(snapshot::Reader &r)
{
    value_ = r.i64();
}

void
Histogram::serializeValue(snapshot::Writer &w) const
{
    // Geometry (bucket width/count) is construction-time configuration,
    // not state: only the populated values travel.
    w.u64(buckets_.size());
    for (std::uint64_t b : buckets_)
        w.u64(b);
    w.u64(overflow_);
    w.u64(samples_);
    w.u64(sum_);
    w.u64(min_);
    w.u64(max_);
}

void
Histogram::deserializeValue(snapshot::Reader &r)
{
    std::uint64_t n = r.u64();
    if (n != buckets_.size()) {
        r.fail("histogram '" + name() + "' bucket count " +
               std::to_string(n) + " != configured " +
               std::to_string(buckets_.size()));
    }
    for (std::uint64_t &b : buckets_)
        b = r.u64();
    overflow_ = r.u64();
    samples_ = r.u64();
    sum_ = r.u64();
    min_ = r.u64();
    max_ = r.u64();
}

void
Group::serializeStats(snapshot::Writer &w) const
{
    w.u64(infos_.size());
    for (const Info *info : infos_)
        info->serializeValue(w);
}

void
Group::deserializeStats(snapshot::Reader &r)
{
    std::uint64_t n = r.u64();
    if (n != infos_.size()) {
        r.fail("stats group '" + name_ + "' has " +
               std::to_string(infos_.size()) + " stats, snapshot holds " +
               std::to_string(n));
    }
    for (Info *info : infos_)
        info->deserializeValue(r);
}

} // namespace ovl::stats
