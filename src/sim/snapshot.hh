/**
 * @file
 * Binary snapshot serialization for the full simulated machine state.
 *
 * One Writer/Reader pair serves two consumers (DESIGN.md §11):
 *
 *  1. `System::clone()` — serialize to a memory buffer and deserialize
 *     into a freshly constructed System. This is the warm-start fast
 *     path the sweep benches use to fan rows out of a shared setup
 *     prefix.
 *  2. The on-disk checkpoint format behind `overlaysim checkpoint` /
 *     `restore` — the same byte stream wrapped in a versioned file
 *     header (magic + version + per-section length framing).
 *
 * The format is deliberately dumb: little-endian fixed-width integers,
 * length-prefixed blobs, and tagged length-framed sections. Every read
 * is bounds-checked against both the buffer and the innermost open
 * section; any violation throws SnapshotError instead of invoking UB,
 * so truncated or mangled files fail with a diagnostic, never a crash.
 */

#ifndef OVERLAYSIM_SIM_SNAPSHOT_HH
#define OVERLAYSIM_SIM_SNAPSHOT_HH

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

namespace ovl::snapshot
{

/** Thrown on any malformed, truncated or version-mismatched snapshot. */
class SnapshotError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** First 8 bytes of every on-disk snapshot file ("OVLSNAP\n"). */
constexpr std::uint64_t kFileMagic = 0x0A50414E534C564Full;

/** Bump on any incompatible change to the serialized layout. */
constexpr std::uint32_t kFormatVersion = 1;

/**
 * Append-only byte-stream writer. Sections open with a 4-char tag and a
 * length placeholder that endSection() patches, so readers can verify
 * per-section framing without understanding the payload.
 */
class Writer
{
  public:
    void
    u8(std::uint8_t v)
    {
        buf_.push_back(v);
    }

    void b(bool v) { u8(v ? 1 : 0); }

    void
    u16(std::uint16_t v)
    {
        u8(std::uint8_t(v));
        u8(std::uint8_t(v >> 8));
    }

    void
    u32(std::uint32_t v)
    {
        u16(std::uint16_t(v));
        u16(std::uint16_t(v >> 16));
    }

    void
    u64(std::uint64_t v)
    {
        u32(std::uint32_t(v));
        u32(std::uint32_t(v >> 32));
    }

    void i64(std::int64_t v) { u64(std::uint64_t(v)); }

    void
    f64(double v)
    {
        std::uint64_t bits;
        std::memcpy(&bits, &v, sizeof(bits));
        u64(bits);
    }

    void
    str(const std::string &s)
    {
        u64(s.size());
        blob(s.data(), s.size());
    }

    void
    blob(const void *data, std::size_t len)
    {
        const auto *p = static_cast<const std::uint8_t *>(data);
        buf_.insert(buf_.end(), p, p + len);
    }

    /** Open a length-framed section tagged with 4 ASCII chars. */
    void
    beginSection(const char tag[4])
    {
        blob(tag, 4);
        sectionStack_.push_back(buf_.size());
        u64(0); // length placeholder, patched by endSection()
    }

    void
    endSection()
    {
        std::size_t at = sectionStack_.back();
        sectionStack_.pop_back();
        std::uint64_t len = buf_.size() - at - 8;
        for (unsigned i = 0; i < 8; ++i)
            buf_[at + i] = std::uint8_t(len >> (8 * i));
    }

    const std::vector<std::uint8_t> &buffer() const { return buf_; }
    std::vector<std::uint8_t> takeBuffer() { return std::move(buf_); }

  private:
    std::vector<std::uint8_t> buf_;
    std::vector<std::size_t> sectionStack_;
};

/**
 * Bounds-checked reader over a snapshot byte stream. Does not own the
 * buffer; the caller keeps it alive for the Reader's lifetime.
 */
class Reader
{
  public:
    Reader(const std::uint8_t *data, std::size_t size)
        : data_(data), size_(size)
    {
    }

    explicit Reader(const std::vector<std::uint8_t> &buf)
        : Reader(buf.data(), buf.size())
    {
    }

    std::uint8_t
    u8()
    {
        need(1);
        return data_[pos_++];
    }

    bool
    b()
    {
        std::uint8_t v = u8();
        if (v > 1)
            fail("boolean field holds " + std::to_string(v));
        return v != 0;
    }

    std::uint16_t
    u16()
    {
        std::uint16_t lo = u8();
        return std::uint16_t(lo | (std::uint16_t(u8()) << 8));
    }

    std::uint32_t
    u32()
    {
        std::uint32_t lo = u16();
        return lo | (std::uint32_t(u16()) << 16);
    }

    std::uint64_t
    u64()
    {
        std::uint64_t lo = u32();
        return lo | (std::uint64_t(u32()) << 32);
    }

    std::int64_t i64() { return std::int64_t(u64()); }

    double
    f64()
    {
        std::uint64_t bits = u64();
        double v;
        std::memcpy(&v, &bits, sizeof(v));
        return v;
    }

    std::string
    str()
    {
        std::uint64_t len = u64();
        need(len);
        std::string s(reinterpret_cast<const char *>(data_ + pos_),
                      std::size_t(len));
        pos_ += std::size_t(len);
        return s;
    }

    void
    blob(void *out, std::size_t len)
    {
        need(len);
        std::memcpy(out, data_ + pos_, len);
        pos_ += len;
    }

    /**
     * A u64 that will be used as an element count: additionally bounded
     * by the bytes remaining, assuming each element costs at least
     * @p min_elem_bytes, so a mangled length field cannot trigger a
     * multi-gigabyte allocation before the next read fails.
     */
    std::uint64_t
    count(std::uint64_t min_elem_bytes = 1)
    {
        std::uint64_t n = u64();
        std::uint64_t limit = remaining() / (min_elem_bytes ? min_elem_bytes
                                                            : 1);
        if (n > limit) {
            fail("element count " + std::to_string(n) +
                 " exceeds remaining payload");
        }
        return n;
    }

    /** Enter a section; the tag must match and the framing must fit. */
    void
    expectSection(const char tag[4])
    {
        char got[5] = {};
        blob(got, 4);
        if (std::memcmp(got, tag, 4) != 0) {
            fail(std::string("expected section '") + std::string(tag, 4) +
                 "', found '" + got + "'");
        }
        std::uint64_t len = u64();
        if (len > remaining())
            fail(std::string("section '") + std::string(tag, 4) +
                 "' length " + std::to_string(len) + " overruns payload");
        sectionEnds_.push_back(pos_ + std::size_t(len));
    }

    /** Leave a section; the payload must be consumed exactly. */
    void
    endSection()
    {
        std::size_t end = sectionEnds_.back();
        sectionEnds_.pop_back();
        if (pos_ != end) {
            fail("section payload size mismatch (at " +
                 std::to_string(pos_) + ", expected " +
                 std::to_string(end) + ")");
        }
    }

    std::size_t
    remaining() const
    {
        std::size_t end = sectionEnds_.empty() ? size_
                                               : sectionEnds_.back();
        return end - pos_;
    }

    bool atEnd() const { return pos_ == size_; }

    [[noreturn]] void
    fail(const std::string &what) const
    {
        throw SnapshotError("snapshot: " + what + " (offset " +
                            std::to_string(pos_) + ")");
    }

  private:
    void
    need(std::uint64_t len) const
    {
        if (len > remaining())
            fail("truncated: need " + std::to_string(len) + " bytes, " +
                 std::to_string(remaining()) + " remain");
    }

    const std::uint8_t *data_;
    std::size_t size_;
    std::size_t pos_ = 0;
    std::vector<std::size_t> sectionEnds_;
};

/**
 * On-disk envelope: magic + format version + payload length, then the
 * Writer byte stream. readSnapshotFile validates all three before
 * handing the payload back.
 */
void writeSnapshotFile(const std::string &path,
                       const std::vector<std::uint8_t> &payload);

/** Load + validate a snapshot file; throws SnapshotError on any issue. */
std::vector<std::uint8_t> readSnapshotFile(const std::string &path);

} // namespace ovl::snapshot

#endif // OVERLAYSIM_SIM_SNAPSHOT_HH
