/**
 * @file
 * Structured event tracing in the Chrome trace-event JSON format
 * (loadable in Perfetto / chrome://tracing). Timestamps are simulated
 * ticks rendered as microseconds; durations are tick counts.
 *
 * The sink is process-global, like the debug-flag table: trace points
 * are sprinkled through the timing model (DRAM row activity, cache miss
 * cascades, TLB walks, ORE broadcasts, overlay create/promote) and all
 * of them share the single `active()` gate. Disabled tracing therefore
 * costs exactly one inlined boolean check per trace point — the same
 * guard discipline `ovl_trace` uses — so the access hot path is
 * unaffected when no sink is open (DESIGN.md §9).
 *
 *     if (trace::active())
 *         trace::complete("dram", "row_hit", start, dur, {{"bank", b}});
 *
 * Thread-safety: start()/stop() must be called with no worker threads
 * running (same contract as debug::setFlag). While a sink is open,
 * emission from multiple threads is serialized by an internal mutex and
 * each thread gets its own "tid", so spans from concurrent sweep items
 * land on separate tracks instead of interleaving.
 */

#ifndef OVERLAYSIM_SIM_TRACE_HH
#define OVERLAYSIM_SIM_TRACE_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <string>

#include "common/types.hh"

namespace ovl::trace
{

namespace detail
{
extern std::atomic<bool> gActive;
} // namespace detail

/** One `"key": value` pair in an event's args object. */
struct Arg
{
    const char *key;
    std::uint64_t value;
};

/** True while a sink is open. The one-branch trace-point guard. */
inline bool
active()
{
    return detail::gActive.load(std::memory_order_acquire);
}

/**
 * Open a trace sink at @p path and start accepting events. At most
 * @p max_events events are recorded (0 = unlimited); once the cap is
 * hit, further events are dropped and counted, and stop() appends a
 * `trace_truncated` instant carrying the dropped count. Dropping can
 * leave tail spans unbalanced — Perfetto auto-closes them.
 */
void start(const std::string &path, std::uint64_t max_events = 0);

/** Close the sink: write the JSON footer and stop accepting events. */
void stop();

/** Events recorded so far (tests; 0 when no sink was ever opened). */
std::uint64_t eventCount();

/** Events dropped by the max_events cap since start(). */
std::uint64_t droppedCount();

/**
 * Per-row trace file name for sweeps: inserts ".row<k>" before @p
 * base's extension ("sweep.json", 3 → "sweep.row3.json"; no extension
 * appends ".row3"). A sweep tracing N rows opens one sink per row so
 * rows don't silently overwrite each other's file.
 */
std::string rowFilePath(const std::string &base, std::size_t row);

/** Instant event ("ph":"i"): a point in time. */
void instant(const char *cat, const char *name, Tick ts,
             std::initializer_list<Arg> args = {});

/** Open a duration span ("ph":"B"). Must be closed by end() in LIFO
 *  order on the same thread. */
void begin(const char *cat, const char *name, Tick ts,
           std::initializer_list<Arg> args = {});

/** Close the innermost open span ("ph":"E"). */
void end(const char *cat, const char *name, Tick ts);

/** Complete event ("ph":"X"): a span emitted as one record. */
void complete(const char *cat, const char *name, Tick ts, Tick dur,
              std::initializer_list<Arg> args = {});

} // namespace ovl::trace

#endif // OVERLAYSIM_SIM_TRACE_HH
