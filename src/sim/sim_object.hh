/**
 * @file
 * Base class for every named, stat-bearing component of the simulated
 * system (caches, TLBs, DRAM controller, overlay manager, cores, ...).
 */

#ifndef OVERLAYSIM_SIM_SIM_OBJECT_HH
#define OVERLAYSIM_SIM_SIM_OBJECT_HH

#include <ostream>
#include <string>

#include "sim/stats.hh"

namespace ovl
{

/**
 * A SimObject has a hierarchical dotted name (e.g. "system.l2") and a
 * statistics group carrying the same name. Components are wired together
 * by plain pointers/references owned by the enclosing System.
 */
class SimObject
{
  public:
    explicit SimObject(std::string name)
        : name_(std::move(name)), statGroup_(name_)
    {
    }

    virtual ~SimObject() = default;

    SimObject(const SimObject &) = delete;
    SimObject &operator=(const SimObject &) = delete;

    const std::string &name() const { return name_; }

    stats::Group &statGroup() { return statGroup_; }
    const stats::Group &statGroup() const { return statGroup_; }

    /** Dump this object's statistics. */
    void dumpStats(std::ostream &os) const { statGroup_.dump(os); }

    /** Reset this object's statistics (e.g., after cache warmup). */
    virtual void resetStats() { statGroup_.resetStats(); }

  private:
    std::string name_;
    stats::Group statGroup_;
};

} // namespace ovl

#endif // OVERLAYSIM_SIM_SIM_OBJECT_HH
