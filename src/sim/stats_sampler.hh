/**
 * @file
 * Tick-domain statistics sampling. A StatsSampler snapshots a set of
 * stats::Groups every N simulated ticks into JSONL: one
 *
 *     {"tick": T, "<path>.<stat>": v, ...}
 *
 * record per sample boundary. Counters and histogram accumulators are
 * monotonic and can be reported either cumulatively or as per-interval
 * deltas (Mode::Delta), which is what plots of "activity per window"
 * want; gauges and formulas are always instantaneous.
 *
 * Sampling is driven by the simulated clock, never the host clock, so a
 * sampled run records exactly floor(end_tick/N)+1 records at ticks
 * 0, N, 2N, ..., regardless of host scheduling. Two drive styles:
 *
 *  - pull: System::access keeps a cached next-due tick and calls
 *    observe(t) only when t crosses it — one integer compare on the
 *    hot path, nothing at all when no sampler is attached;
 *  - event-driven: scheduleOn(EventQueue&) arms a self-rearming event
 *    that fires on each boundary during EventQueue::runUntil (use
 *    runUntil, not drain(): a self-rearming event never drains).
 *
 * The record schema is fixed at begin(): the column set is derived once
 * from Info::eachScalar, and addGroup afterwards is an error.
 */

#ifndef OVERLAYSIM_SIM_STATS_SAMPLER_HH
#define OVERLAYSIM_SIM_STATS_SAMPLER_HH

#include <ostream>
#include <string>
#include <vector>

#include "common/types.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"

namespace ovl
{

class StatsSampler
{
  public:
    enum class Mode
    {
        Delta,      ///< monotonic stats report value - value(previous sample)
        Cumulative, ///< every stat reports its current value
    };

    /**
     * @p out receives one JSON object per line; it must outlive the
     * sampler. @p label, when non-empty, is emitted as a "run" key in
     * every record so several runs can share one output file.
     */
    StatsSampler(std::ostream &out, Tick interval, Mode mode,
                 std::string label = "");

    StatsSampler(const StatsSampler &) = delete;
    StatsSampler &operator=(const StatsSampler &) = delete;

    /** Register @p group's stats under "<path>." column names.
     *  Must precede begin(). */
    void addGroup(const std::string &path, const stats::Group *group);

    /** Freeze the column set and emit the first record at @p now. */
    void begin(Tick now);

    /**
     * Emit a record for every sample boundary <= @p t that is still
     * pending, and return the next boundary tick (kMaxTick never —
     * the series is unbounded until finish()).
     */
    Tick observe(Tick t);

    /** Flush boundaries up to @p end and flush the stream. */
    void finish(Tick end);

    /** Next pending sample boundary. */
    Tick nextDue() const { return nextDue_; }

    /** Records written so far. */
    std::uint64_t records() const { return records_; }

    /**
     * Re-read baselines after an external stats reset so Delta mode
     * doesn't report negative intervals (System::resetStats calls this).
     */
    void rebase();

    /** Arm a self-rearming sample event on @p eq (event-driven style). */
    void scheduleOn(EventQueue &eq);

  private:
    struct Column
    {
        std::string name; ///< "<path>.<stat><suffix>", JSON-escaped
        bool monotonic;   ///< eligible for Delta reporting
    };

    void emitRecord(Tick tick);
    void snapshot(std::vector<double> &into) const;

    std::ostream &out_;
    Tick interval_;
    Mode mode_;
    std::string label_;

    std::vector<std::pair<std::string, const stats::Group *>> groups_;
    std::vector<Column> columns_;
    std::vector<double> prev_;    ///< baselines for Delta mode
    std::vector<double> scratch_; ///< reused per sample; no steady-state alloc
    Tick nextDue_ = 0;
    std::uint64_t records_ = 0;
    bool begun_ = false;
};

} // namespace ovl

#endif // OVERLAYSIM_SIM_STATS_SAMPLER_HH
