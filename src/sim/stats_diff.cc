#include "stats_diff.hh"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

namespace ovl::statsdiff
{

namespace
{

/** Recursive-descent parser for the dumpAllStatsJson grammar. */
class Parser
{
  public:
    Parser(const std::string &text, Doc &doc) : text_(text), doc_(doc) {}

    void
    run()
    {
        skipWs();
        parseObject(std::string());
        skipWs();
        if (pos_ != text_.size())
            fail("trailing data after top-level object");
    }

  private:
    void
    fail(const std::string &what) const
    {
        throw std::runtime_error("stats JSON parse error at byte " +
                                 std::to_string(pos_) + ": " + what);
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    char
    peek() const
    {
        return pos_ < text_.size() ? text_[pos_] : '\0';
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (pos_ < text_.size() && text_[pos_] != '"') {
            char c = text_[pos_++];
            if (c == '\\') {
                if (pos_ >= text_.size())
                    fail("unterminated escape");
                char e = text_[pos_++];
                switch (e) {
                  case '"': out += '"'; break;
                  case '\\': out += '\\'; break;
                  case 'n': out += '\n'; break;
                  case 't': out += '\t'; break;
                  default: out += e; break;
                }
            } else {
                out += c;
            }
        }
        expect('"');
        return out;
    }

    void
    parseValue(const std::string &path)
    {
        skipWs();
        char c = peek();
        if (c == '{') {
            parseObject(path);
        } else if (c == 'n') {
            if (text_.compare(pos_, 4, "null") != 0)
                fail("expected null");
            pos_ += 4;
            doc_.scalars.push_back({path, 0.0, true});
        } else if (c == '-' || std::isdigit(static_cast<unsigned char>(c))) {
            std::size_t start = pos_;
            while (pos_ < text_.size() &&
                   (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                    text_[pos_] == '-' || text_[pos_] == '+' ||
                    text_[pos_] == '.' || text_[pos_] == 'e' ||
                    text_[pos_] == 'E'))
                ++pos_;
            char *end = nullptr;
            std::string num = text_.substr(start, pos_ - start);
            double v = std::strtod(num.c_str(), &end);
            if (end == nullptr || *end != '\0')
                fail("malformed number '" + num + "'");
            doc_.scalars.push_back({path, v, false});
        } else {
            fail("expected object, number or null (golden-stats grammar "
                 "has no arrays/strings/booleans)");
        }
    }

    void
    parseObject(const std::string &path)
    {
        skipWs();
        expect('{');
        skipWs();
        if (peek() == '}') {
            ++pos_;
            return;
        }
        for (;;) {
            skipWs();
            std::string key = parseString();
            skipWs();
            expect(':');
            parseValue(path.empty() ? key : path + "." + key);
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return;
        }
    }

    const std::string &text_;
    Doc &doc_;
    std::size_t pos_ = 0;
};

} // namespace

Doc
parseStatsJson(const std::string &text)
{
    Doc doc;
    Parser(text, doc).run();
    return doc;
}

Doc
parseStatsFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw std::runtime_error("cannot open " + path);
    std::ostringstream buf;
    buf << in.rdbuf();
    return parseStatsJson(buf.str());
}

DiffResult
diff(const Doc &a, const Doc &b)
{
    DiffResult res;
    std::unordered_map<std::string, const Scalar *> b_index;
    b_index.reserve(b.scalars.size());
    for (const Scalar &s : b.scalars)
        b_index.emplace(s.path, &s);

    auto record_first = [&](const Scalar *sa, const Scalar *sb,
                            const std::string &path) {
        if (!res.firstPath.empty())
            return;
        res.firstPath = path;
        res.firstOnlyInA = sb == nullptr;
        res.firstOnlyInB = sa == nullptr;
        if (sa != nullptr) {
            res.aValue = sa->value;
            res.aNull = sa->isNull;
        }
        if (sb != nullptr) {
            res.bValue = sb->value;
            res.bNull = sb->isNull;
        }
    };

    for (const Scalar &sa : a.scalars) {
        auto it = b_index.find(sa.path);
        if (it == b_index.end()) {
            res.identical = false;
            ++res.diffCount;
            record_first(&sa, nullptr, sa.path);
            continue;
        }
        const Scalar &sb = *it->second;
        ++res.comparedCount;
        if (sa.isNull != sb.isNull ||
            (!sa.isNull && sa.value != sb.value)) {
            res.identical = false;
            ++res.diffCount;
            record_first(&sa, &sb, sa.path);
        }
        b_index.erase(it); // leftovers are b-only paths
    }
    for (const Scalar &sb : b.scalars) {
        if (b_index.count(sb.path) == 0)
            continue;
        res.identical = false;
        ++res.diffCount;
        record_first(nullptr, &sb, sb.path);
    }
    return res;
}

int
runStatsDiff(const std::string &path_a, const std::string &path_b,
             std::FILE *out)
{
    // A null @p out runs silently (exit-code-only use, e.g. tests).
    Doc a, b;
    try {
        a = parseStatsFile(path_a);
        b = parseStatsFile(path_b);
    } catch (const std::exception &e) {
        if (out != nullptr)
            std::fprintf(out, "stats-diff: %s\n", e.what());
        return 2;
    }
    DiffResult res = diff(a, b);
    if (res.identical) {
        if (out != nullptr)
            std::fprintf(out, "stats identical: %zu scalars compared\n",
                         res.comparedCount);
        return 0;
    }
    if (out == nullptr)
        return 1;
    std::fprintf(out, "first divergence: %s\n", res.firstPath.c_str());
    if (res.firstOnlyInA) {
        std::fprintf(out, "  only in %s (a)\n", path_a.c_str());
    } else if (res.firstOnlyInB) {
        std::fprintf(out, "  only in %s (b)\n", path_b.c_str());
    } else {
        auto render = [](bool is_null, double v, char *buf,
                         std::size_t n) {
            if (is_null)
                std::snprintf(buf, n, "null");
            else
                std::snprintf(buf, n, "%.17g", v);
        };
        char av[64], bv[64];
        render(res.aNull, res.aValue, av, sizeof av);
        render(res.bNull, res.bValue, bv, sizeof bv);
        std::fprintf(out, "  a: %s\n  b: %s\n", av, bv);
    }
    std::fprintf(out,
                 "%zu differing scalar%s (%zu compared in both files)\n",
                 res.diffCount, res.diffCount == 1 ? "" : "s",
                 res.comparedCount);
    return 1;
}

} // namespace ovl::statsdiff
