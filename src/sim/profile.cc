#include "profile.hh"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <mutex>
#include <ostream>

namespace ovl::prof
{

const char *
zoneName(Zone zone)
{
    static const char *const kNames[kNumZones] = {
        "access",          "tlb_walk",  "cache_lookup", "miss_cascade",
        "omt_walk",        "oms_alloc", "ore_broadcast", "overlaying_write",
        "cow_fault",       "dram",      "event_queue",  "snapshot_io",
        "functional_ff",   "fork",      "teardown",     "promote",
        "tlb_maint",
    };
    std::size_t i = std::size_t(zone);
    return i < kNumZones ? kNames[i] : "root";
}

namespace detail
{

std::atomic<bool> gActive{false};

namespace
{

/** All registered per-thread states; guarded by gRegistryMutex. Entries
 *  are never freed, so trees of exited threads survive until collect().
 */
std::mutex gRegistryMutex;
std::vector<ThreadState *> &
registry()
{
    static std::vector<ThreadState *> threads;
    return threads;
}

/** Calibration stamps of the current window (set by enable()/reset). */
std::chrono::steady_clock::time_point gWindowStart;
std::uint64_t gWindowStartTsc = 0;

void
resetTreeLocked(ThreadState &state)
{
    state.arena.clear();
    state.root = Node{};
    state.current = &state.root;
}

void
stampWindowLocked()
{
    gWindowStart = std::chrono::steady_clock::now();
    gWindowStartTsc = tscNow();
}

} // namespace

ThreadState *
registerThread()
{
    auto *state = new ThreadState; // leaked by design; bounded by threads
    std::lock_guard<std::mutex> lock(gRegistryMutex);
    registry().push_back(state);
    return state;
}

Node *
newChild(ThreadState &state, Node *parent, Zone zone)
{
    Node &node = state.arena.emplace_back();
    node.parent = parent;
    node.zone = zone;
    parent->children[std::size_t(zone)] = &node;
    return &node;
}

} // namespace detail

// Out of line on purpose: keeping the active path (TLS lookup, tree
// descent, TSC stamps) out of every call site is what holds the *idle*
// compiled-in overhead to one predicted branch (DESIGN.md §12.2).
void
ScopedTimer::enter(Zone zone)
{
    detail::ThreadState &state = detail::threadState();
    detail::Node *parent = state.current;
    detail::Node *node = parent->children[std::size_t(zone)];
    if (node == nullptr)
        node = detail::newChild(state, parent, zone);
    state.current = node;
    node_ = node;
    state_ = &state;
    start_ = detail::tscNow();
}

void
ScopedTimer::leave()
{
    std::uint64_t dt = detail::tscNow() - start_;
    node_->count += 1;
    node_->totalCycles += dt;
    if (dt > node_->maxCycles)
        node_->maxCycles = dt;
    state_->current = node_->parent;
}

void
enable()
{
    std::lock_guard<std::mutex> lock(detail::gRegistryMutex);
    for (detail::ThreadState *state : detail::registry())
        detail::resetTreeLocked(*state);
    detail::stampWindowLocked();
    detail::gActive.store(true, std::memory_order_release);
}

void
disable()
{
    detail::gActive.store(false, std::memory_order_release);
}

namespace
{

/** Merge accumulator: one path across all threads' trees. */
struct MergeNode
{
    Zone zone = Zone::NumZones;
    std::uint64_t count = 0;
    std::uint64_t totalCycles = 0;
    std::uint64_t maxCycles = 0;
    std::array<MergeNode *, kNumZones> children{};
};

void
mergeInto(MergeNode &dst, const detail::Node &src, std::deque<MergeNode> &pool)
{
    dst.count += src.count;
    dst.totalCycles += src.totalCycles;
    dst.maxCycles = std::max(dst.maxCycles, src.maxCycles);
    for (std::size_t z = 0; z < kNumZones; ++z) {
        const detail::Node *child = src.children[z];
        if (child == nullptr)
            continue;
        MergeNode *mchild = dst.children[z];
        if (mchild == nullptr) {
            mchild = &pool.emplace_back();
            mchild->zone = Zone(z);
            dst.children[z] = mchild;
        }
        mergeInto(*mchild, *child, pool);
    }
}

void
emitRows(const MergeNode &node, const std::string &path, unsigned depth,
         double secs_per_cycle, Report &report)
{
    std::uint64_t child_cycles = 0;
    for (const MergeNode *child : node.children) {
        if (child != nullptr)
            child_cycles += child->totalCycles;
    }
    if (node.zone != Zone::NumZones) {
        ZoneRow row;
        row.path = path;
        row.zone = node.zone;
        row.depth = depth;
        row.count = node.count;
        row.totalSeconds = double(node.totalCycles) * secs_per_cycle;
        row.selfSeconds = node.totalCycles >= child_cycles
                              ? double(node.totalCycles - child_cycles) *
                                    secs_per_cycle
                              : 0.0;
        row.maxSeconds = double(node.maxCycles) * secs_per_cycle;
        report.rows.push_back(std::move(row));
    }
    for (const MergeNode *child : node.children) {
        if (child == nullptr)
            continue;
        std::string child_path = path.empty()
                                     ? std::string(zoneName(child->zone))
                                     : path + ";" + zoneName(child->zone);
        emitRows(*child, child_path, depth + 1, secs_per_cycle, report);
    }
}

} // namespace

Report
collect(bool reset)
{
    std::lock_guard<std::mutex> lock(detail::gRegistryMutex);

    Report report;
    auto now = std::chrono::steady_clock::now();
    std::uint64_t tsc_now = detail::tscNow();
    report.wallSeconds =
        std::chrono::duration<double>(now - detail::gWindowStart).count();
    std::uint64_t tsc_delta = tsc_now - detail::gWindowStartTsc;
    report.cyclesPerSecond = report.wallSeconds > 0.0
                                 ? double(tsc_delta) / report.wallSeconds
                                 : 0.0;
    double secs_per_cycle = report.cyclesPerSecond > 0.0
                                ? 1.0 / report.cyclesPerSecond
                                : 0.0;

    std::deque<MergeNode> pool;
    MergeNode merged_root;
    for (const detail::ThreadState *state : detail::registry())
        mergeInto(merged_root, state->root, pool);

    for (const MergeNode *child : merged_root.children) {
        if (child != nullptr)
            report.attributedSeconds +=
                double(child->totalCycles) * secs_per_cycle;
    }
    emitRows(merged_root, std::string(), 0, secs_per_cycle, report);

    if (reset) {
        for (detail::ThreadState *state : detail::registry())
            detail::resetTreeLocked(*state);
        detail::stampWindowLocked();
    }
    return report;
}

void
writeJson(std::ostream &os, const Report &report)
{
    os << "{\n";
    os << "  \"wall_seconds\": " << report.wallSeconds << ",\n";
    os << "  \"attributed_seconds\": " << report.attributedSeconds << ",\n";
    os << "  \"attributed_fraction\": " << report.attributedFraction()
       << ",\n";
    os << "  \"cycles_per_second\": " << report.cyclesPerSecond << ",\n";
    os << "  \"zones\": [";
    bool first = true;
    for (const ZoneRow &row : report.rows) {
        os << (first ? "\n" : ",\n");
        first = false;
        os << "    {\"path\": \"" << row.path << "\", \"zone\": \""
           << zoneName(row.zone) << "\", \"depth\": " << row.depth
           << ", \"count\": " << row.count
           << ", \"total_seconds\": " << row.totalSeconds
           << ", \"self_seconds\": " << row.selfSeconds
           << ", \"max_seconds\": " << row.maxSeconds << "}";
    }
    os << (first ? "]\n" : "\n  ]\n");
    os << "}\n";
}

void
writeCollapsed(std::ostream &os, const Report &report,
               const std::string &prefix)
{
    // Unattributed window time becomes an explicit "(untracked)" frame
    // so the flamegraph's total width equals the wall window.
    double untracked = report.wallSeconds - report.attributedSeconds;
    auto usec = [](double s) {
        return std::uint64_t(std::llround(s * 1e6));
    };
    auto frame = [&](const std::string &path) {
        return prefix.empty() ? path : prefix + ";" + path;
    };
    for (const ZoneRow &row : report.rows) {
        std::uint64_t self_us = usec(row.selfSeconds);
        if (self_us == 0)
            continue;
        os << frame(row.path) << " " << self_us << "\n";
    }
    if (untracked > 0.0 && usec(untracked) > 0)
        os << frame("(untracked)") << " " << usec(untracked) << "\n";
}

} // namespace ovl::prof
