/**
 * @file
 * Deterministic discrete-event queue. The performance-critical access path
 * of overlaysim is modeled with computed latencies (see DESIGN.md §5), but
 * background activities — write-buffer drains, OMS maintenance, checkpoint
 * ticks — are scheduled here.
 */

#ifndef OVERLAYSIM_SIM_EVENT_QUEUE_HH
#define OVERLAYSIM_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

namespace ovl
{

/**
 * A time-ordered queue of callbacks. Ties are broken by insertion order so
 * simulation is deterministic regardless of heap internals.
 */
class EventQueue
{
  public:
    using Callback = std::function<void(Tick)>;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** Advance the clock without executing events (used by the core model). */
    void
    setNow(Tick t)
    {
        ovl_assert(t >= now_, "time must not move backwards");
        now_ = t;
    }

    /** Schedule @p cb to run at absolute time @p when (>= now). */
    void
    schedule(Tick when, Callback cb)
    {
        ovl_assert(when >= now_, "scheduling an event in the past");
        heap_.push(Event{when, nextSeq_++, std::move(cb)});
    }

    /** Number of pending events. */
    std::size_t pending() const { return heap_.size(); }

    /** Time of the earliest pending event; kMaxTick when empty. */
    Tick
    nextEventTick() const
    {
        return heap_.empty() ? kMaxTick : heap_.top().when;
    }

    /**
     * Execute all events with time <= @p until, advancing the clock to
     * each event's time, then to @p until.
     */
    void
    runUntil(Tick until)
    {
        while (!heap_.empty() && heap_.top().when <= until) {
            Event ev = heap_.top();
            heap_.pop();
            now_ = ev.when;
            ev.cb(now_);
        }
        if (until > now_)
            now_ = until;
    }

    /** Execute every pending event (including ones newly scheduled). */
    void
    drain()
    {
        while (!heap_.empty())
            runUntil(heap_.top().when);
    }

  private:
    struct Event
    {
        Tick when;
        std::uint64_t seq;
        Callback cb;

        bool
        operator>(const Event &other) const
        {
            if (when != other.when)
                return when > other.when;
            return seq > other.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, std::greater<>> heap_;
    Tick now_ = 0;
    std::uint64_t nextSeq_ = 0;
};

} // namespace ovl

#endif // OVERLAYSIM_SIM_EVENT_QUEUE_HH
