/**
 * @file
 * Deterministic discrete-event queue. The performance-critical access path
 * of overlaysim is modeled with computed latencies (see DESIGN.md §5), but
 * background activities — write-buffer drains, OMS maintenance, checkpoint
 * ticks — are scheduled here.
 *
 * The queue owns its heap as a flat vector of move-only events, pops by
 * moving the event out, and stores callbacks in a small-buffer-optimized
 * holder, so steady-state scheduling and dispatch never touch the
 * allocator (a capture larger than the inline buffer falls back to the
 * heap; none of the simulator's callbacks do).
 */

#ifndef OVERLAYSIM_SIM_EVENT_QUEUE_HH
#define OVERLAYSIM_SIM_EVENT_QUEUE_HH

#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"
#include "sim/profile.hh"

namespace ovl
{

/**
 * Move-only callable holder for `void(Tick)` with inline storage for
 * captures up to kInlineSize bytes. Larger callables are boxed on the
 * heap (transparent to callers, just slower — keep captures small).
 */
class SmallCallback
{
    static constexpr std::size_t kInlineSize = 48;

    struct VTable
    {
        void (*invoke)(void *obj, Tick t);
        /** Move-construct *src into dst storage, then destroy *src. */
        void (*relocate)(void *dst, void *src);
        void (*destroy)(void *obj);
    };

    template <typename F>
    static constexpr bool fitsInline =
        sizeof(F) <= kInlineSize && alignof(F) <= alignof(std::max_align_t);

    template <typename F>
    struct InlineOps
    {
        static void
        invoke(void *obj, Tick t)
        {
            (*static_cast<F *>(obj))(t);
        }
        static void
        relocate(void *dst, void *src)
        {
            ::new (dst) F(std::move(*static_cast<F *>(src)));
            static_cast<F *>(src)->~F();
        }
        static void destroy(void *obj) { static_cast<F *>(obj)->~F(); }
        static constexpr VTable vtable{invoke, relocate, destroy};
    };

    template <typename F>
    struct BoxedOps
    {
        static void
        invoke(void *obj, Tick t)
        {
            (**static_cast<F **>(obj))(t);
        }
        static void
        relocate(void *dst, void *src)
        {
            *static_cast<F **>(dst) = *static_cast<F **>(src);
        }
        static void destroy(void *obj) { delete *static_cast<F **>(obj); }
        static constexpr VTable vtable{invoke, relocate, destroy};
    };

  public:
    SmallCallback() = default;

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, SmallCallback>>>
    SmallCallback(F &&f)
    {
        using Fn = std::decay_t<F>;
        if constexpr (fitsInline<Fn>) {
            ::new (static_cast<void *>(buf_)) Fn(std::forward<F>(f));
            vt_ = &InlineOps<Fn>::vtable;
        } else {
            *reinterpret_cast<Fn **>(buf_) = new Fn(std::forward<F>(f));
            vt_ = &BoxedOps<Fn>::vtable;
        }
    }

    SmallCallback(SmallCallback &&other) noexcept { moveFrom(other); }

    SmallCallback &
    operator=(SmallCallback &&other) noexcept
    {
        if (this != &other) {
            reset();
            moveFrom(other);
        }
        return *this;
    }

    SmallCallback(const SmallCallback &) = delete;
    SmallCallback &operator=(const SmallCallback &) = delete;

    ~SmallCallback() { reset(); }

    void
    operator()(Tick t)
    {
        ovl_assert(vt_ != nullptr, "invoking an empty callback");
        vt_->invoke(buf_, t);
    }

    explicit operator bool() const { return vt_ != nullptr; }

  private:
    void
    moveFrom(SmallCallback &other) noexcept
    {
        vt_ = other.vt_;
        if (vt_ != nullptr) {
            vt_->relocate(buf_, other.buf_);
            other.vt_ = nullptr;
        }
    }

    void
    reset()
    {
        if (vt_ != nullptr) {
            vt_->destroy(buf_);
            vt_ = nullptr;
        }
    }

    alignas(std::max_align_t) unsigned char buf_[kInlineSize];
    const VTable *vt_ = nullptr;
};

/**
 * A time-ordered queue of callbacks. Ties are broken by insertion order so
 * simulation is deterministic regardless of heap internals.
 */
class EventQueue
{
  public:
    using Callback = SmallCallback;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** Advance the clock without executing events (used by the core model). */
    void
    setNow(Tick t)
    {
        ovl_assert(t >= now_, "time must not move backwards");
        now_ = t;
    }

    /** Schedule @p cb to run at absolute time @p when (>= now). */
    void
    schedule(Tick when, Callback cb)
    {
        ovl_assert(when >= now_, "scheduling an event in the past");
        heap_.push_back(Event{when, nextSeq_++, std::move(cb)});
        siftUp(heap_.size() - 1);
    }

    /** Number of pending events. */
    std::size_t pending() const { return heap_.size(); }

    /** Time of the earliest pending event; kMaxTick when empty. */
    Tick
    nextEventTick() const
    {
        return heap_.empty() ? kMaxTick : heap_.front().when;
    }

    /**
     * Execute all events with time <= @p until, advancing the clock to
     * each event's time, then to @p until.
     */
    void
    runUntil(Tick until)
    {
        if (!heap_.empty() && heap_.front().when <= until) {
            // Scope only opens when events are actually due, so the
            // common no-events-pending poll stays one compare.
            OVL_PROF_SCOPE(EventQueue);
            do {
                Event ev = popMin();
                now_ = ev.when;
                ev.cb(now_);
            } while (!heap_.empty() && heap_.front().when <= until);
        }
        if (until > now_)
            now_ = until;
    }

    /** Execute every pending event (including ones newly scheduled). */
    void
    drain()
    {
        while (!heap_.empty())
            runUntil(heap_.front().when);
    }

  private:
    struct Event
    {
        Tick when;
        std::uint64_t seq;
        Callback cb;

        bool
        before(const Event &other) const
        {
            if (when != other.when)
                return when < other.when;
            return seq < other.seq;
        }
    };

    /** Move the minimum out of the heap and restore the heap property. */
    Event
    popMin()
    {
        Event min = std::move(heap_.front());
        Event last = std::move(heap_.back());
        heap_.pop_back();
        if (!heap_.empty()) {
            heap_.front() = std::move(last);
            siftDown(0);
        }
        return min;
    }

    void
    siftUp(std::size_t i)
    {
        while (i > 0) {
            std::size_t parent = (i - 1) / 2;
            if (!heap_[i].before(heap_[parent]))
                break;
            std::swap(heap_[i], heap_[parent]);
            i = parent;
        }
    }

    void
    siftDown(std::size_t i)
    {
        const std::size_t n = heap_.size();
        for (;;) {
            std::size_t left = 2 * i + 1;
            if (left >= n)
                break;
            std::size_t smallest = left;
            std::size_t right = left + 1;
            if (right < n && heap_[right].before(heap_[left]))
                smallest = right;
            if (!heap_[smallest].before(heap_[i]))
                break;
            std::swap(heap_[i], heap_[smallest]);
            i = smallest;
        }
    }

    std::vector<Event> heap_;
    Tick now_ = 0;
    std::uint64_t nextSeq_ = 0;
};

} // namespace ovl

#endif // OVERLAYSIM_SIM_EVENT_QUEUE_HH
