/**
 * @file
 * Host and build metadata for benchmark provenance: CPU model, core
 * count, compiler + flags, build type. Recorded in the `_run` record of
 * BENCH_throughput.json so scripts/bench_compare.py can warn when two
 * files being compared were produced on different hosts or builds
 * (where absolute throughput is meaningless without --normalize).
 */

#ifndef OVERLAYSIM_SIM_HOSTINFO_HH
#define OVERLAYSIM_SIM_HOSTINFO_HH

#include <string>

namespace ovl
{

struct HostInfo
{
    std::string cpuModel;   ///< /proc/cpuinfo "model name" (or "unknown")
    unsigned cores;         ///< std::thread::hardware_concurrency()
    std::string compiler;   ///< e.g. "gcc 13.2.0"
    std::string cxxFlags;   ///< CMAKE_CXX_FLAGS + per-build-type flags
    std::string buildType;  ///< CMAKE_BUILD_TYPE
    bool profileCompiled;   ///< built with -DOVL_PROFILE=ON
};

/** The current process's host/build metadata (computed once). */
const HostInfo &hostInfo();

/** Escape @p s for inclusion inside a JSON string literal. */
std::string jsonEscape(const std::string &s);

/** hostInfo() rendered as a JSON object, e.g. for a "host" field. */
std::string hostInfoJson();

} // namespace ovl

#endif // OVERLAYSIM_SIM_HOSTINFO_HH
