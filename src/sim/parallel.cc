#include "parallel.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/debug.hh"

namespace ovl
{

unsigned
hardwareJobs()
{
    unsigned n = std::thread::hardware_concurrency();
    return n > 0 ? n : 1;
}

unsigned
defaultJobs()
{
    const char *env = std::getenv("OVL_JOBS");
    if (env != nullptr && *env != '\0') {
        char *end = nullptr;
        unsigned long v = std::strtoul(env, &end, 10);
        if (end != nullptr && *end == '\0' && v >= 1)
            return unsigned(v);
        std::fprintf(stderr, "warn: ignoring invalid OVL_JOBS='%s'\n", env);
    }
    return hardwareJobs();
}

unsigned
jobsFromCommandLine(int argc, char **argv)
{
    unsigned jobs = defaultJobs();
    for (int i = 1; i < argc; ++i) {
        const char *value = nullptr;
        if (std::strcmp(argv[i], "--progress") == 0) {
            setProgressEnabled(true);
            continue;
        }
        if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
            value = argv[++i];
        } else if (std::strncmp(argv[i], "--jobs=", 7) == 0) {
            value = argv[i] + 7;
        } else {
            std::fprintf(stderr, "usage: %s [--jobs N] [--progress]\n",
                         argv[0]);
            std::exit(1);
        }
        char *end = nullptr;
        unsigned long v = std::strtoul(value, &end, 10);
        if (end == nullptr || *end != '\0' || v < 1) {
            std::fprintf(stderr, "%s: invalid --jobs value '%s'\n", argv[0],
                         value);
            std::exit(1);
        }
        jobs = unsigned(v);
    }
    return jobs;
}

namespace
{

bool
progressDefault()
{
    const char *env = std::getenv("OVL_PROGRESS");
    return env != nullptr && *env != '\0' && std::strcmp(env, "0") != 0;
}

/** -1 = unset (fall back to OVL_PROGRESS), else 0/1. */
std::atomic<int> gProgress{-1};

} // namespace

bool
progressEnabled()
{
    int v = gProgress.load(std::memory_order_relaxed);
    if (v < 0)
        return progressDefault();
    return v != 0;
}

void
setProgressEnabled(bool enabled)
{
    gProgress.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

ProgressReporter::ProgressReporter(std::size_t total, LabelFn label)
    : total_(total), label_(std::move(label)),
      start_(std::chrono::steady_clock::now())
{
}

void
ProgressReporter::itemDone(std::size_t index)
{
    double wall = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start_)
                      .count();
    std::string label = label_ ? label_(index) : std::to_string(index);
    std::lock_guard<std::mutex> lock(mutex_);
    ++done_;
    // One atomic fprintf per line so lines from concurrent workers never
    // interleave mid-line.
    std::fprintf(stderr, "[%zu/%zu] %s done (wall %.1fs)\n", done_, total_,
                 label.c_str(), wall);
}

void
ProgressReporter::workerDone(std::size_t worker, std::size_t workers,
                             std::uint64_t items, double busy_seconds,
                             double idle_seconds)
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::fprintf(stderr,
                 "[worker %zu/%zu] %llu item%s, busy %.1fs, idle %.1fs\n",
                 worker + 1, workers, (unsigned long long)items,
                 items == 1 ? "" : "s", busy_seconds, idle_seconds);
}

namespace detail
{

void
prepareForWorkers()
{
    // The debug-flag table is the one process-global the workers read;
    // parse OVL_DEBUG now so no worker triggers the lazy init.
    debug::initFromEnvironment();
}

} // namespace detail

} // namespace ovl
