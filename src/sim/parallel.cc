#include "parallel.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/debug.hh"

namespace ovl
{

unsigned
hardwareJobs()
{
    unsigned n = std::thread::hardware_concurrency();
    return n > 0 ? n : 1;
}

unsigned
defaultJobs()
{
    const char *env = std::getenv("OVL_JOBS");
    if (env != nullptr && *env != '\0') {
        char *end = nullptr;
        unsigned long v = std::strtoul(env, &end, 10);
        if (end != nullptr && *end == '\0' && v >= 1)
            return unsigned(v);
        std::fprintf(stderr, "warn: ignoring invalid OVL_JOBS='%s'\n", env);
    }
    return hardwareJobs();
}

unsigned
jobsFromCommandLine(int argc, char **argv)
{
    unsigned jobs = defaultJobs();
    for (int i = 1; i < argc; ++i) {
        const char *value = nullptr;
        if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
            value = argv[++i];
        } else if (std::strncmp(argv[i], "--jobs=", 7) == 0) {
            value = argv[i] + 7;
        } else {
            std::fprintf(stderr, "usage: %s [--jobs N]\n", argv[0]);
            std::exit(1);
        }
        char *end = nullptr;
        unsigned long v = std::strtoul(value, &end, 10);
        if (end == nullptr || *end != '\0' || v < 1) {
            std::fprintf(stderr, "%s: invalid --jobs value '%s'\n", argv[0],
                         value);
            std::exit(1);
        }
        jobs = unsigned(v);
    }
    return jobs;
}

namespace detail
{

void
prepareForWorkers()
{
    // The debug-flag table is the one process-global the workers read;
    // parse OVL_DEBUG now so no worker triggers the lazy init.
    debug::initFromEnvironment();
}

} // namespace detail

} // namespace ovl
