#include "logging.hh"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace ovl
{

namespace logging_detail
{

namespace
{
bool gQuiet = false;
} // namespace

void
setQuiet(bool q)
{
    gQuiet = q;
}

bool
quiet()
{
    return gQuiet;
}

std::string
formatString(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list args_copy;
    va_copy(args_copy, args);
    int len = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);
    if (len < 0) {
        va_end(args_copy);
        return std::string(fmt);
    }
    std::string out(static_cast<std::size_t>(len), '\0');
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
    va_end(args_copy);
    return out;
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    if (!gQuiet)
        std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    if (!gQuiet)
        std::fprintf(stderr, "info: %s\n", msg.c_str());
}

} // namespace logging_detail

} // namespace ovl
