/**
 * @file
 * Deterministic xoshiro256** pseudo-random generator. Every workload
 * generator seeds one of these explicitly so that experiments are exactly
 * reproducible run to run.
 */

#ifndef OVERLAYSIM_COMMON_RANDOM_HH
#define OVERLAYSIM_COMMON_RANDOM_HH

#include <array>
#include <cstdint>

namespace ovl
{

/**
 * xoshiro256** by Blackman & Vigna (public domain reference algorithm),
 * seeded via splitmix64. Small, fast, and good enough for synthetic
 * workload generation; deliberately not std::mt19937 so the streams are
 * stable across standard-library implementations.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull)
    {
        // splitmix64 expansion of the scalar seed into 4 words of state.
        std::uint64_t x = seed;
        for (auto &word : state_) {
            x += 0x9E3779B97F4A7C15ull;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
            z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound); bound must be non-zero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // Lemire's multiply-shift rejection method.
        std::uint64_t x = next();
        __uint128_t m = __uint128_t(x) * __uint128_t(bound);
        std::uint64_t lo = std::uint64_t(m);
        if (lo < bound) {
            std::uint64_t threshold = (0 - bound) % bound;
            while (lo < threshold) {
                x = next();
                m = __uint128_t(x) * __uint128_t(bound);
                lo = std::uint64_t(m);
            }
        }
        return std::uint64_t(m >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return double(next() >> 11) * (1.0 / 9007199254740992.0);
    }

    /** Bernoulli trial with probability @p p. */
    bool chance(double p) { return uniform() < p; }

    /** Raw generator state, for snapshot serialization. */
    std::array<std::uint64_t, 4>
    rawState() const
    {
        return {state_[0], state_[1], state_[2], state_[3]};
    }

    /** Restore a state captured by rawState(). */
    void
    setRawState(const std::array<std::uint64_t, 4> &s)
    {
        for (unsigned i = 0; i < 4; ++i)
            state_[i] = s[i];
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
};

} // namespace ovl

#endif // OVERLAYSIM_COMMON_RANDOM_HH
