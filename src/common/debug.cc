#include "debug.hh"

#include <atomic>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace ovl::debug
{

namespace
{

constexpr unsigned kNumFlags = unsigned(Flag::NumFlags);

const char *const kFlagNames[kNumFlags] = {
    "dram", "cache", "tlb", "vm", "overlay", "system", "cpu",
};

const char *const kFlagDescriptions[kNumFlags] = {
    "DRAM controller: write-buffer drain episodes",
    "cache hierarchy (reserved: no trace points yet)",
    "TLB (reserved: no trace points yet)",
    "virtual memory (reserved: no trace points yet)",
    "overlay engine: segment allocation and migration",
    "system: CoW faults, overlaying writes, promotions, fork",
    "core model (reserved: no trace points yet)",
};

bool gFlags[kNumFlags] = {};
// Once set (with release ordering), gFlags is read-only: enabled() from
// worker threads is then a race-free acquire load + array read. Writers
// (setFlag/enableFromList) remain main-thread-only, before workers start.
std::atomic<bool> gInitialized{false};

} // namespace

const char *
flagName(Flag flag)
{
    return kFlagNames[unsigned(flag)];
}

const char *
flagDescription(Flag flag)
{
    return kFlagDescriptions[unsigned(flag)];
}

bool
enabled(Flag flag)
{
    if (!gInitialized.load(std::memory_order_acquire))
        initFromEnvironment();
    return gFlags[unsigned(flag)];
}

void
setFlag(Flag flag, bool on)
{
    gFlags[unsigned(flag)] = on;
    // Explicit control overrides lazy env parsing.
    gInitialized.store(true, std::memory_order_release);
}

void
enableFromList(const std::string &list)
{
    std::size_t pos = 0;
    while (pos < list.size()) {
        std::size_t comma = list.find(',', pos);
        if (comma == std::string::npos)
            comma = list.size();
        std::string name = list.substr(pos, comma - pos);
        pos = comma + 1;
        if (name.empty())
            continue;
        if (name == "all") {
            for (bool &flag : gFlags)
                flag = true;
            continue;
        }
        bool known = false;
        for (unsigned i = 0; i < kNumFlags; ++i) {
            if (name == kFlagNames[i]) {
                gFlags[i] = true;
                known = true;
                break;
            }
        }
        if (!known) {
            std::fprintf(stderr,
                         "warn: unknown OVL_DEBUG flag '%s' ignored\n",
                         name.c_str());
        }
    }
    gInitialized.store(true, std::memory_order_release);
}

void
initFromEnvironment()
{
    // Idempotent and callable from multiple threads: the first caller
    // parses OVL_DEBUG, later callers (and losers of the race) return
    // without touching the flag table.
    static std::mutex mutex;
    std::lock_guard<std::mutex> lock(mutex);
    if (gInitialized.load(std::memory_order_relaxed))
        return;
    const char *env = std::getenv("OVL_DEBUG");
    if (env != nullptr && *env != '\0')
        enableFromList(env);
    gInitialized.store(true, std::memory_order_release);
}

void
printLine(Flag flag, const char *fmt, ...)
{
    std::fprintf(stderr, "%s: ", flagName(flag));
    va_list args;
    va_start(args, fmt);
    std::vfprintf(stderr, fmt, args);
    va_end(args);
    std::fputc('\n', stderr);
}

} // namespace ovl::debug
