#include "debug.hh"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace ovl::debug
{

namespace
{

constexpr unsigned kNumFlags = unsigned(Flag::NumFlags);

const char *const kFlagNames[kNumFlags] = {
    "dram", "cache", "tlb", "vm", "overlay", "system", "cpu",
};

bool gFlags[kNumFlags] = {};
bool gEnvParsed = false;

} // namespace

const char *
flagName(Flag flag)
{
    return kFlagNames[unsigned(flag)];
}

bool
enabled(Flag flag)
{
    if (!gEnvParsed)
        initFromEnvironment();
    return gFlags[unsigned(flag)];
}

void
setFlag(Flag flag, bool on)
{
    gEnvParsed = true; // explicit control overrides lazy env parsing
    gFlags[unsigned(flag)] = on;
}

void
enableFromList(const std::string &list)
{
    gEnvParsed = true;
    std::size_t pos = 0;
    while (pos < list.size()) {
        std::size_t comma = list.find(',', pos);
        if (comma == std::string::npos)
            comma = list.size();
        std::string name = list.substr(pos, comma - pos);
        pos = comma + 1;
        if (name.empty())
            continue;
        if (name == "all") {
            for (bool &flag : gFlags)
                flag = true;
            continue;
        }
        bool known = false;
        for (unsigned i = 0; i < kNumFlags; ++i) {
            if (name == kFlagNames[i]) {
                gFlags[i] = true;
                known = true;
                break;
            }
        }
        if (!known) {
            std::fprintf(stderr,
                         "warn: unknown OVL_DEBUG flag '%s' ignored\n",
                         name.c_str());
        }
    }
}

void
initFromEnvironment()
{
    gEnvParsed = true;
    const char *env = std::getenv("OVL_DEBUG");
    if (env != nullptr && *env != '\0')
        enableFromList(env);
}

void
printLine(Flag flag, const char *fmt, ...)
{
    std::fprintf(stderr, "%s: ", flagName(flag));
    va_list args;
    va_start(args, fmt);
    std::vfprintf(stderr, fmt, args);
    va_end(args);
    std::fputc('\n', stderr);
}

} // namespace ovl::debug
