/**
 * @file
 * Fundamental scalar types and address-geometry constants shared by every
 * module of overlaysim.
 */

#ifndef OVERLAYSIM_COMMON_TYPES_HH
#define OVERLAYSIM_COMMON_TYPES_HH

#include <array>
#include <cstdint>

namespace ovl
{

/** A tick is one CPU cycle (the simulated core runs at 2.67 GHz). */
using Tick = std::uint64_t;

/** Address in any of the three address spaces (virtual/physical/memory). */
using Addr = std::uint64_t;

/** Address-space (process) identifier; the paper supports 2^15 processes. */
using Asid = std::uint16_t;

/** Invalid/sentinel values. */
constexpr Tick kMaxTick = ~Tick(0);
constexpr Addr kInvalidAddr = ~Addr(0);

/** Page geometry: 4 KB pages (Table 2). */
constexpr unsigned kPageShift = 12;
constexpr Addr kPageSize = Addr(1) << kPageShift;
constexpr Addr kPageMask = kPageSize - 1;

/** Cache-line geometry: uniform 64 B lines across the hierarchy (§5). */
constexpr unsigned kLineShift = 6;
constexpr Addr kLineSize = Addr(1) << kLineShift;
constexpr Addr kLineMask = kLineSize - 1;

/** Lines per page: 64 — this is why the OBitVector is 64 bits wide. */
constexpr unsigned kLinesPerPage = unsigned(kPageSize / kLineSize);

/** Extract the virtual/physical page number of an address. */
constexpr Addr
pageNumber(Addr addr)
{
    return addr >> kPageShift;
}

/** Byte offset of an address within its page. */
constexpr Addr
pageOffset(Addr addr)
{
    return addr & kPageMask;
}

/** Base address of the page containing @p addr. */
constexpr Addr
pageBase(Addr addr)
{
    return addr & ~kPageMask;
}

/** Index of the cache line containing @p addr within its page [0, 64). */
constexpr unsigned
lineInPage(Addr addr)
{
    return unsigned((addr & kPageMask) >> kLineShift);
}

/** Base address of the cache line containing @p addr. */
constexpr Addr
lineBase(Addr addr)
{
    return addr & ~kLineMask;
}

/** Functional contents of one 64 B cache line. */
using LineData = std::array<std::uint8_t, kLineSize>;

/** Size literals for configuration readability. */
constexpr std::uint64_t operator""_KiB(unsigned long long v)
{
    return v << 10;
}

constexpr std::uint64_t operator""_MiB(unsigned long long v)
{
    return v << 20;
}

constexpr std::uint64_t operator""_GiB(unsigned long long v)
{
    return v << 30;
}

} // namespace ovl

#endif // OVERLAYSIM_COMMON_TYPES_HH
