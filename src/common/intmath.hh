/**
 * @file
 * Small integer-math helpers used throughout the simulator.
 */

#ifndef OVERLAYSIM_COMMON_INTMATH_HH
#define OVERLAYSIM_COMMON_INTMATH_HH

#include <bit>
#include <cstdint>

namespace ovl
{

constexpr bool
isPowerOf2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** floor(log2(v)); v must be non-zero. */
constexpr unsigned
floorLog2(std::uint64_t v)
{
    return 63u - unsigned(std::countl_zero(v));
}

/** ceil(log2(v)); v must be non-zero. */
constexpr unsigned
ceilLog2(std::uint64_t v)
{
    return v <= 1 ? 0 : floorLog2(v - 1) + 1;
}

/** ceil(a / b) for positive integers. */
constexpr std::uint64_t
divCeil(std::uint64_t a, std::uint64_t b)
{
    return (a + b - 1) / b;
}

/** Round @p a up to the next multiple of @p align (a power of two). */
constexpr std::uint64_t
roundUp(std::uint64_t a, std::uint64_t align)
{
    return (a + align - 1) & ~(align - 1);
}

/** Round @p a down to a multiple of @p align (a power of two). */
constexpr std::uint64_t
roundDown(std::uint64_t a, std::uint64_t align)
{
    return a & ~(align - 1);
}

} // namespace ovl

#endif // OVERLAYSIM_COMMON_INTMATH_HH
