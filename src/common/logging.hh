/**
 * @file
 * gem5-style status/error reporting: panic() for simulator bugs, fatal()
 * for user errors, warn()/inform() for status messages.
 */

#ifndef OVERLAYSIM_COMMON_LOGGING_HH
#define OVERLAYSIM_COMMON_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>

namespace ovl
{

namespace logging_detail
{

[[noreturn]] void panicImpl(const char *file, int line, const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line, const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

/** Minimal printf-style formatter returning a std::string. */
std::string formatString(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Globally silence warn()/inform() (used by tests and sweeps). */
void setQuiet(bool quiet);
bool quiet();

} // namespace logging_detail

} // namespace ovl

/**
 * Something happened that should never happen regardless of user input:
 * an overlaysim bug. Aborts.
 */
#define ovl_panic(...) \
    ::ovl::logging_detail::panicImpl(__FILE__, __LINE__, \
        ::ovl::logging_detail::formatString(__VA_ARGS__))

/**
 * The simulation cannot continue due to a user-caused condition
 * (bad configuration, invalid arguments). Exits with status 1.
 */
#define ovl_fatal(...) \
    ::ovl::logging_detail::fatalImpl(__FILE__, __LINE__, \
        ::ovl::logging_detail::formatString(__VA_ARGS__))

/** Non-fatal warning about questionable behaviour. */
#define ovl_warn(...) \
    ::ovl::logging_detail::warnImpl( \
        ::ovl::logging_detail::formatString(__VA_ARGS__))

/** Informational status message. */
#define ovl_inform(...) \
    ::ovl::logging_detail::informImpl( \
        ::ovl::logging_detail::formatString(__VA_ARGS__))

/** Invariant check that is kept in release builds. */
#define ovl_assert(cond, ...) \
    do { \
        if (!(cond)) { \
            ovl_panic("assertion failed: %s", #cond); \
        } \
    } while (0)

#endif // OVERLAYSIM_COMMON_LOGGING_HH
