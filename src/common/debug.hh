/**
 * @file
 * Runtime debug tracing in the gem5 DPRINTF tradition. Each component
 * guards its trace points with a named flag; flags are enabled through
 * the environment (`OVL_DEBUG=dram,overlay ./binary`) or
 * programmatically (tests). Disabled flags cost one inlined boolean
 * check, so trace points can live on hot paths.
 *
 *     ovl_trace(overlay, "opn %llx line %u moved", opn, line);
 *
 * Thread-safety: the flag table is the one process-global the simulator
 * reads. initFromEnvironment() is idempotent and safe to call from any
 * thread (the parallel sweep runner calls it before spawning workers);
 * after it has run, enabled() is a race-free read. setFlag() and
 * enableFromList() are writers and must only be called when no worker
 * threads are running (DESIGN.md §8).
 */

#ifndef OVERLAYSIM_COMMON_DEBUG_HH
#define OVERLAYSIM_COMMON_DEBUG_HH

#include <string>

namespace ovl::debug
{

/** The components with trace points. Extend alongside kFlagNames. */
enum class Flag : unsigned
{
    // Lowercase so `ovl_trace(dram, ...)` reads naturally at call sites.
    dram,
    cache,
    tlb,
    vm,
    overlay,
    system,
    cpu,
    NumFlags,
};

/** True if @p flag was enabled (env var or enable()). */
bool enabled(Flag flag);

/** Enable/disable one flag at runtime (tests, tools). */
void setFlag(Flag flag, bool on);

/**
 * Enable flags from a comma-separated list ("dram,overlay"); "all"
 * enables everything. Unknown names are reported and ignored.
 */
void enableFromList(const std::string &list);

/**
 * Parse OVL_DEBUG once (called lazily by enabled()). Idempotent and
 * thread-safe: repeat calls return without re-parsing, so flags set
 * programmatically beforehand survive.
 */
void initFromEnvironment();

/** Emit one trace line: `flag: message`. */
void printLine(Flag flag, const char *fmt, ...)
    __attribute__((format(printf, 2, 3)));

/** Flag name as it appears in OVL_DEBUG and in trace output. */
const char *flagName(Flag flag);

/** One-line description of a flag's trace points (--list-debug-flags). */
const char *flagDescription(Flag flag);

} // namespace ovl::debug

/** Trace-point macro; @p flag is the bare enumerator name. */
#define ovl_trace(flag, ...) \
    do { \
        if (::ovl::debug::enabled(::ovl::debug::Flag::flag)) \
            ::ovl::debug::printLine(::ovl::debug::Flag::flag, \
                                    __VA_ARGS__); \
    } while (0)

#endif // OVERLAYSIM_COMMON_DEBUG_HH
