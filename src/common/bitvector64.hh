/**
 * @file
 * A fixed 64-bit bit vector. This is the exact shape of the paper's
 * OBitVector (one bit per cache line of a 4 KB page, §3.1), but it is a
 * generic utility: the free-slot vectors of OMS segments (§4.4.1) and the
 * set-dueling monitors use it too.
 */

#ifndef OVERLAYSIM_COMMON_BITVECTOR64_HH
#define OVERLAYSIM_COMMON_BITVECTOR64_HH

#include <bit>
#include <cstdint>

#include "logging.hh"

namespace ovl
{

/**
 * Fixed-width 64-bit bit vector with popcount/scan helpers.
 *
 * All operations are O(1); the class is trivially copyable so that it can
 * be embedded in TLB entries and OMT entries and moved over the (modeled)
 * coherence network by value.
 */
class BitVector64
{
  public:
    constexpr BitVector64() = default;

    constexpr explicit BitVector64(std::uint64_t bits) : bits_(bits) {}

    /** Number of addressable bits. */
    static constexpr unsigned size() { return 64; }

    /** Raw 64-bit value (what travels in coherence messages). */
    constexpr std::uint64_t raw() const { return bits_; }

    bool
    test(unsigned idx) const
    {
        ovl_assert(idx < 64, "bit index out of range");
        return (bits_ >> idx) & 1;
    }

    void
    set(unsigned idx)
    {
        ovl_assert(idx < 64, "bit index out of range");
        bits_ |= (std::uint64_t(1) << idx);
    }

    void
    clear(unsigned idx)
    {
        ovl_assert(idx < 64, "bit index out of range");
        bits_ &= ~(std::uint64_t(1) << idx);
    }

    void
    assign(unsigned idx, bool value)
    {
        if (value)
            set(idx);
        else
            clear(idx);
    }

    /** Clear every bit. */
    void reset() { bits_ = 0; }

    /** Set every bit. */
    void fill() { bits_ = ~std::uint64_t(0); }

    /** Number of set bits. */
    unsigned count() const { return unsigned(std::popcount(bits_)); }

    bool none() const { return bits_ == 0; }
    bool any() const { return bits_ != 0; }
    bool all() const { return bits_ == ~std::uint64_t(0); }

    /**
     * Index of the lowest set bit, or 64 if none. Useful for iterating
     * the overlay lines of a page in virtual-address order.
     */
    unsigned
    findFirst() const
    {
        return bits_ ? unsigned(std::countr_zero(bits_)) : 64u;
    }

    /** Index of the lowest set bit strictly greater than @p idx, or 64. */
    unsigned
    findNext(unsigned idx) const
    {
        if (idx >= 63)
            return 64;
        std::uint64_t masked = bits_ & ~((std::uint64_t(2) << idx) - 1);
        return masked ? unsigned(std::countr_zero(masked)) : 64u;
    }

    /** Index of the lowest clear bit, or 64 if all are set. */
    unsigned
    findFirstClear() const
    {
        std::uint64_t inverted = ~bits_;
        return inverted ? unsigned(std::countr_zero(inverted)) : 64u;
    }

    friend constexpr bool
    operator==(const BitVector64 &a, const BitVector64 &b)
    {
        return a.bits_ == b.bits_;
    }

    friend constexpr BitVector64
    operator|(const BitVector64 &a, const BitVector64 &b)
    {
        return BitVector64(a.bits_ | b.bits_);
    }

    friend constexpr BitVector64
    operator&(const BitVector64 &a, const BitVector64 &b)
    {
        return BitVector64(a.bits_ & b.bits_);
    }

    friend constexpr BitVector64
    operator~(const BitVector64 &a)
    {
        return BitVector64(~a.bits_);
    }

  private:
    std::uint64_t bits_ = 0;
};

} // namespace ovl

#endif // OVERLAYSIM_COMMON_BITVECTOR64_HH
