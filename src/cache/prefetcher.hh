/**
 * @file
 * Multi-stream prefetcher in the style of the IBM POWER6 prefetch engine
 * [33] with feedback-directed parameters fixed per Table 2: it monitors L2
 * misses, tracks 16 streams, and prefetches into the L3 with degree 4 and
 * distance 24 lines.
 */

#ifndef OVERLAYSIM_CACHE_PREFETCHER_HH
#define OVERLAYSIM_CACHE_PREFETCHER_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "sim/sim_object.hh"

namespace ovl
{

/** Configuration of the stream prefetcher. */
struct PrefetcherParams
{
    bool enabled = true;
    unsigned numStreams = 16;
    unsigned degree = 4;
    unsigned distance = 24;
    /** Misses within this many lines of a stream head train it. */
    unsigned trainWindow = 4;

    /**
     * Prefetch-bandwidth model: prefetches are serviced at best-effort
     * priority behind demand traffic, consuming one service slot each;
     * when the prefetch engine lags the core by more than the maximum
     * lag it drops requests rather than queueing behind demand reads
     * (FR-FCFS prioritizes demand).
     */
    Tick serviceCycles = 30;   ///< ~DDR3-1066 streaming line transfer
    Tick maxLagCycles = 3000;  ///< backlog beyond this drops prefetches
};

/**
 * Stream detector and prefetch-address generator. The owner (the cache
 * hierarchy) calls notifyMiss() on every L2 demand miss and receives the
 * list of line addresses to prefetch into the L3.
 */
class StreamPrefetcher : public SimObject
{
  public:
    StreamPrefetcher(std::string name, PrefetcherParams params);

    /**
     * Observe an L2 miss and emit prefetch candidates.
     *
     * @param line_addr the missing line address.
     * @param out filled with line addresses to fetch into L3.
     */
    void notifyMiss(Addr line_addr, std::vector<Addr> &out);

    const PrefetcherParams &params() const { return params_; }

    std::uint64_t issued() const { return issued_.value(); }

  private:
    struct Stream
    {
        bool valid = false;
        bool confirmed = false;   ///< direction established
        int direction = 1;        ///< +1 ascending, -1 descending
        unsigned strikes = 0;     ///< consecutive wrong-direction trainings
        Addr lastLine = 0;        ///< last demand line observed (line index)
        Addr prefetchHead = 0;    ///< next line index to prefetch
        std::uint64_t lruSeq = 0;
    };

    Stream *findStream(Addr line_index);
    Stream *allocateStream();

    PrefetcherParams params_;
    std::vector<Stream> streams_;
    std::uint64_t lruCounter_ = 0;

    stats::Counter trainings_;
    stats::Counter allocations_;
    stats::Counter issued_;
};

} // namespace ovl

#endif // OVERLAYSIM_CACHE_PREFETCHER_HH
