/**
 * @file
 * Multi-stream prefetcher in the style of the IBM POWER6 prefetch engine
 * [33] with feedback-directed parameters fixed per Table 2: it monitors L2
 * misses, tracks 16 streams, and prefetches into the L3 with degree 4 and
 * distance 24 lines.
 */

#ifndef OVERLAYSIM_CACHE_PREFETCHER_HH
#define OVERLAYSIM_CACHE_PREFETCHER_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "sim/sim_object.hh"

namespace ovl
{

/** Configuration of the stream prefetcher. */
struct PrefetcherParams
{
    bool enabled = true;
    unsigned numStreams = 16;
    unsigned degree = 4;
    unsigned distance = 24;
    /** Misses within this many lines of a stream head train it. */
    unsigned trainWindow = 4;

    /**
     * Prefetch-bandwidth model: prefetches are serviced at best-effort
     * priority behind demand traffic, consuming one service slot each;
     * when the prefetch engine lags the core by more than the maximum
     * lag it drops requests rather than queueing behind demand reads
     * (FR-FCFS prioritizes demand).
     */
    Tick serviceCycles = 30;   ///< ~DDR3-1066 streaming line transfer
    Tick maxLagCycles = 3000;  ///< backlog beyond this drops prefetches
};

/**
 * Stream detector and prefetch-address generator. The owner (the cache
 * hierarchy) calls notifyMiss() on every L2 demand miss and receives the
 * list of line addresses to prefetch into the L3.
 */
class StreamPrefetcher : public SimObject
{
  public:
    StreamPrefetcher(std::string name, PrefetcherParams params);

    /**
     * Observe an L2 miss and emit prefetch candidates. Defined inline
     * (below) — it runs on every L2 demand miss, squarely on the
     * hierarchy's miss cascade.
     *
     * @param line_addr the missing line address.
     * @param out filled with line addresses to fetch into L3.
     */
    void notifyMiss(Addr line_addr, std::vector<Addr> &out);

    const PrefetcherParams &params() const { return params_; }

    std::uint64_t issued() const { return issued_.value(); }

    /** Snapshot the stream table and recency state. */
    void serialize(snapshot::Writer &w) const;
    void deserialize(snapshot::Reader &r);

  private:
    /** Per-stream training state (off the scan path; see the SoA note). */
    struct Stream
    {
        bool confirmed = false;   ///< direction established
        int direction = 1;        ///< +1 ascending, -1 descending
        unsigned strikes = 0;     ///< consecutive wrong-direction trainings
        Addr prefetchHead = 0;    ///< next line index to prefetch
    };

    /** Stream index within a trainWindow of @p line_index, or -1. */
    int findStream(Addr line_index) const;
    /** First invalid stream, or the table-order-first LRU victim. */
    unsigned allocateStream();

    PrefetcherParams params_;
    std::vector<Stream> streams_;
    /**
     * Scan-path state, struct-of-arrays: findStream() runs on every L2
     * demand miss and touches only lastLines_ (plus the valid mask), and
     * allocateStream() only lruSeqs_ — dense 8-byte arrays instead of a
     * stride over full Stream records. The mask bounds the table at 64
     * streams (Table 2 uses 16).
     */
    std::vector<Addr> lastLines_;        ///< last demand line observed
    std::vector<std::uint64_t> lruSeqs_; ///< recency, parallel to streams_
    std::uint64_t validMask_ = 0;        ///< bit i = streams_[i] is live
    std::uint64_t lruCounter_ = 0;

    stats::Counter trainings_;
    stats::Counter allocations_;
    stats::Counter issued_;
};

// ------------------------ inline hot path ------------------------------

inline int
StreamPrefetcher::findStream(Addr line_index) const
{
    // Ascending bit scan preserves the original first-match-in-table
    // order exactly.
    const std::int64_t window = std::int64_t(params_.trainWindow);
    for (std::uint64_t m = validMask_; m != 0; m &= m - 1) {
        unsigned i = unsigned(__builtin_ctzll(m));
        std::int64_t delta = std::int64_t(line_index) -
                             std::int64_t(lastLines_[i]);
        if (delta < 0)
            delta = -delta;
        if (delta <= window)
            return int(i);
    }
    return -1;
}

inline void
StreamPrefetcher::notifyMiss(Addr line_addr, std::vector<Addr> &out)
{
    if (!params_.enabled)
        return;

    Addr line_index = line_addr >> kLineShift;
    int found = findStream(line_index);

    if (found < 0) {
        unsigned i = allocateStream();
        ++allocations_;
        validMask_ |= std::uint64_t(1) << i;
        streams_[i] = Stream{};
        streams_[i].prefetchHead = line_index + 1;
        lastLines_[i] = line_index;
        lruSeqs_[i] = ++lruCounter_;
        return; // first touch only allocates; no prefetch yet
    }

    Stream &stream = streams_[unsigned(found)];
    lruSeqs_[unsigned(found)] = ++lruCounter_;
    std::int64_t delta = std::int64_t(line_index) -
                         std::int64_t(lastLines_[unsigned(found)]);
    if (delta == 0)
        return;

    if (!stream.confirmed) {
        // Second nearby miss establishes the direction [48].
        stream.confirmed = true;
        stream.direction = delta > 0 ? 1 : -1;
        stream.prefetchHead = line_index + stream.direction;
    } else if ((delta > 0) != (stream.direction > 0)) {
        // Training against the established direction: after two strikes
        // the stream re-confirms, so an unluckily-established direction
        // cannot park a zombie stream in the table forever.
        if (++stream.strikes >= 2) {
            stream.direction = delta > 0 ? 1 : -1;
            stream.prefetchHead = line_index + stream.direction;
            stream.strikes = 0;
        }
    } else {
        stream.strikes = 0;
    }
    ++trainings_;
    lastLines_[unsigned(found)] = line_index;

    // Keep the prefetch head within `distance` lines of the demand stream
    // and emit up to `degree` prefetches per training.
    Addr limit = line_index + std::int64_t(params_.distance) *
                 stream.direction;
    for (unsigned i = 0; i < params_.degree; ++i) {
        bool within = stream.direction > 0 ? stream.prefetchHead <= limit
                                           : stream.prefetchHead >= limit;
        if (!within)
            break;
        out.push_back(stream.prefetchHead << kLineShift);
        ++issued_;
        stream.prefetchHead += stream.direction;
    }
}

} // namespace ovl

#endif // OVERLAYSIM_CACHE_PREFETCHER_HH
