#include "prefetcher.hh"

#include <cstdlib>

#include "common/logging.hh"

namespace ovl
{

StreamPrefetcher::StreamPrefetcher(std::string name, PrefetcherParams params)
    : SimObject(std::move(name)), params_(params),
      streams_(params.numStreams),
      trainings_(&statGroup(), "trainings", "stream training events"),
      allocations_(&statGroup(), "allocations", "streams allocated"),
      issued_(&statGroup(), "issued", "prefetches issued")
{
    ovl_assert(params.numStreams > 0, "prefetcher needs stream entries");
}

StreamPrefetcher::Stream *
StreamPrefetcher::findStream(Addr line_index)
{
    for (Stream &s : streams_) {
        if (!s.valid)
            continue;
        std::int64_t delta = std::int64_t(line_index) -
                             std::int64_t(s.lastLine);
        if (std::llabs(delta) <= std::int64_t(params_.trainWindow))
            return &s;
    }
    return nullptr;
}

StreamPrefetcher::Stream *
StreamPrefetcher::allocateStream()
{
    Stream *victim = &streams_[0];
    for (Stream &s : streams_) {
        if (!s.valid)
            return &s;
        if (s.lruSeq < victim->lruSeq)
            victim = &s;
    }
    return victim;
}

void
StreamPrefetcher::notifyMiss(Addr line_addr, std::vector<Addr> &out)
{
    if (!params_.enabled)
        return;

    Addr line_index = line_addr >> kLineShift;
    Stream *stream = findStream(line_index);

    if (stream == nullptr) {
        stream = allocateStream();
        ++allocations_;
        stream->valid = true;
        stream->confirmed = false;
        stream->direction = 1;
        stream->strikes = 0;
        stream->lastLine = line_index;
        stream->prefetchHead = line_index + 1;
        stream->lruSeq = ++lruCounter_;
        return; // first touch only allocates; no prefetch yet
    }

    stream->lruSeq = ++lruCounter_;
    std::int64_t delta = std::int64_t(line_index) -
                         std::int64_t(stream->lastLine);
    if (delta == 0)
        return;

    if (!stream->confirmed) {
        // Second nearby miss establishes the direction [48].
        stream->confirmed = true;
        stream->direction = delta > 0 ? 1 : -1;
        stream->prefetchHead = line_index + stream->direction;
    } else if ((delta > 0) != (stream->direction > 0)) {
        // Training against the established direction: after two strikes
        // the stream re-confirms, so an unluckily-established direction
        // cannot park a zombie stream in the table forever.
        if (++stream->strikes >= 2) {
            stream->direction = delta > 0 ? 1 : -1;
            stream->prefetchHead = line_index + stream->direction;
            stream->strikes = 0;
        }
    } else {
        stream->strikes = 0;
    }
    ++trainings_;
    stream->lastLine = line_index;

    // Keep the prefetch head within `distance` lines of the demand stream
    // and emit up to `degree` prefetches per training.
    Addr limit = line_index + std::int64_t(params_.distance) *
                 stream->direction;
    for (unsigned i = 0; i < params_.degree; ++i) {
        bool within = stream->direction > 0 ? stream->prefetchHead <= limit
                                            : stream->prefetchHead >= limit;
        if (!within)
            break;
        out.push_back(stream->prefetchHead << kLineShift);
        ++issued_;
        stream->prefetchHead += stream->direction;
    }
}

} // namespace ovl
