#include "prefetcher.hh"

#include "common/logging.hh"
#include "sim/snapshot.hh"

namespace ovl
{

StreamPrefetcher::StreamPrefetcher(std::string name, PrefetcherParams params)
    : SimObject(std::move(name)), params_(params),
      streams_(params.numStreams),
      lastLines_(params.numStreams, 0),
      lruSeqs_(params.numStreams, 0),
      trainings_(&statGroup(), "trainings", "stream training events"),
      allocations_(&statGroup(), "allocations", "streams allocated"),
      issued_(&statGroup(), "issued", "prefetches issued")
{
    ovl_assert(params.numStreams > 0, "prefetcher needs stream entries");
    ovl_assert(params.numStreams <= 64,
               "valid mask bounds the table at 64 streams");
}

unsigned
StreamPrefetcher::allocateStream()
{
    std::uint64_t full = params_.numStreams == 64
                             ? ~std::uint64_t(0)
                             : (std::uint64_t(1) << params_.numStreams) - 1;
    std::uint64_t invalid = full & ~validMask_;
    if (invalid != 0)
        return unsigned(__builtin_ctzll(invalid)); // first free in order
    unsigned victim = 0;
    for (unsigned i = 1; i < params_.numStreams; ++i) {
        if (lruSeqs_[i] < lruSeqs_[victim])
            victim = i;
    }
    return victim;
}

void
StreamPrefetcher::serialize(snapshot::Writer &w) const
{
    w.beginSection("PREF");
    w.u64(streams_.size());
    for (const Stream &s : streams_) {
        w.b(s.confirmed);
        w.i64(s.direction);
        w.u32(s.strikes);
        w.u64(s.prefetchHead);
    }
    for (Addr last : lastLines_)
        w.u64(last);
    for (std::uint64_t seq : lruSeqs_)
        w.u64(seq);
    w.u64(validMask_);
    w.u64(lruCounter_);
    w.endSection();
}

void
StreamPrefetcher::deserialize(snapshot::Reader &r)
{
    r.expectSection("PREF");
    std::uint64_t n = r.u64();
    if (n != streams_.size()) {
        r.fail("prefetcher stream count mismatch: snapshot " +
               std::to_string(n) + ", configured " +
               std::to_string(streams_.size()));
    }
    for (Stream &s : streams_) {
        s.confirmed = r.b();
        s.direction = int(r.i64());
        s.strikes = r.u32();
        s.prefetchHead = r.u64();
    }
    for (Addr &last : lastLines_)
        last = r.u64();
    for (std::uint64_t &seq : lruSeqs_)
        seq = r.u64();
    validMask_ = r.u64();
    lruCounter_ = r.u64();
    r.endSection();
}

} // namespace ovl
