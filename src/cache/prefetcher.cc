#include "prefetcher.hh"

#include "common/logging.hh"

namespace ovl
{

StreamPrefetcher::StreamPrefetcher(std::string name, PrefetcherParams params)
    : SimObject(std::move(name)), params_(params),
      streams_(params.numStreams),
      lastLines_(params.numStreams, 0),
      lruSeqs_(params.numStreams, 0),
      trainings_(&statGroup(), "trainings", "stream training events"),
      allocations_(&statGroup(), "allocations", "streams allocated"),
      issued_(&statGroup(), "issued", "prefetches issued")
{
    ovl_assert(params.numStreams > 0, "prefetcher needs stream entries");
    ovl_assert(params.numStreams <= 64,
               "valid mask bounds the table at 64 streams");
}

unsigned
StreamPrefetcher::allocateStream()
{
    std::uint64_t full = params_.numStreams == 64
                             ? ~std::uint64_t(0)
                             : (std::uint64_t(1) << params_.numStreams) - 1;
    std::uint64_t invalid = full & ~validMask_;
    if (invalid != 0)
        return unsigned(__builtin_ctzll(invalid)); // first free in order
    unsigned victim = 0;
    for (unsigned i = 1; i < params_.numStreams; ++i) {
        if (lruSeqs_[i] < lruSeqs_[victim])
            victim = i;
    }
    return victim;
}

} // namespace ovl
