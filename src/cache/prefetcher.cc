#include "prefetcher.hh"

#include "common/logging.hh"

namespace ovl
{

StreamPrefetcher::StreamPrefetcher(std::string name, PrefetcherParams params)
    : SimObject(std::move(name)), params_(params),
      streams_(params.numStreams),
      trainings_(&statGroup(), "trainings", "stream training events"),
      allocations_(&statGroup(), "allocations", "streams allocated"),
      issued_(&statGroup(), "issued", "prefetches issued")
{
    ovl_assert(params.numStreams > 0, "prefetcher needs stream entries");
}

StreamPrefetcher::Stream *
StreamPrefetcher::allocateStream()
{
    Stream *victim = &streams_[0];
    for (Stream &s : streams_) {
        if (!s.valid)
            return &s;
        if (s.lruSeq < victim->lruSeq)
            victim = &s;
    }
    return victim;
}

} // namespace ovl
