/**
 * @file
 * Replacement policies for set-associative structures: LRU and Random for
 * the L1/L2 (Table 2 uses LRU there), and the RRIP family — SRRIP, BRRIP,
 * and set-dueling DRRIP [27] — for the last-level cache.
 */

#ifndef OVERLAYSIM_CACHE_REPLACEMENT_HH
#define OVERLAYSIM_CACHE_REPLACEMENT_HH

#include <cstdint>
#include <string>

#include "common/random.hh"

namespace ovl
{

/** Which replacement policy a cache instantiates. */
enum class ReplPolicy
{
    LRU,
    Random,
    SRRIP,
    BRRIP,
    DRRIP,
};

/** Human-readable policy name (for config dumps). */
const char *replPolicyName(ReplPolicy policy);

/**
 * Per-line replacement metadata. A union of what the supported policies
 * need: an LRU sequence number and a 2-bit re-reference prediction value.
 */
struct ReplState
{
    std::uint64_t lruSeq = 0;
    std::uint8_t rrpv = 0;
};

/**
 * Policy engine shared by all sets of one cache. Stateless per access
 * except for the global LRU sequence counter, the BRRIP throttle and the
 * DRRIP set-dueling PSEL counter.
 */
class ReplacementEngine
{
  public:
    ReplacementEngine(ReplPolicy policy, unsigned num_sets,
                      std::uint64_t seed = 1);

    ReplPolicy policy() const { return policy_; }

    /** Called when a line is hit. */
    void onHit(ReplState &line);

    /**
     * Called when a line is inserted. @p set_index selects DRRIP leader
     * sets; @p is_prefetch inserts prefetched lines with distant RRPV so
     * inaccurate prefetches do not pollute the LLC.
     */
    void onInsert(ReplState &line, unsigned set_index, bool is_prefetch);

    /**
     * Choose a victim among @p ways lines of a set; invalid lines must be
     * handled by the caller first. For RRIP policies this ages lines
     * in-place until a candidate reaches RRPV=3.
     *
     * @return the way index of the victim.
     */
    unsigned selectVictim(ReplState *lines, unsigned ways);

    /**
     * DRRIP feedback: called on a miss in a leader set [27]; adjusts the
     * policy-selection counter.
     */
    void onMiss(unsigned set_index);

    /** True if @p set_index is an SRRIP (resp. BRRIP) leader set. */
    bool isSrripLeader(unsigned set_index) const;
    bool isBrripLeader(unsigned set_index) const;

    /** Current dynamic winner for DRRIP follower sets. */
    bool brripWinning() const { return psel_ > pselMax_ / 2; }

  private:
    static constexpr std::uint8_t kMaxRrpv = 3;
    static constexpr unsigned kLeaderSetStride = 32;
    static constexpr unsigned kBrripEpsilonInverse = 32; // 1/32 near inserts

    void insertRrip(ReplState &line, bool long_rereference);

    ReplPolicy policy_;
    unsigned numSets_;
    std::uint64_t lruCounter_ = 0;
    unsigned brripThrottle_ = 0;
    unsigned psel_;
    unsigned pselMax_;
    Rng rng_;
};

} // namespace ovl

#endif // OVERLAYSIM_CACHE_REPLACEMENT_HH
