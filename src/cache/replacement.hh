/**
 * @file
 * Replacement policies for set-associative structures: LRU and Random for
 * the L1/L2 (Table 2 uses LRU there), and the RRIP family — SRRIP, BRRIP,
 * and set-dueling DRRIP [27] — for the last-level cache.
 */

#ifndef OVERLAYSIM_CACHE_REPLACEMENT_HH
#define OVERLAYSIM_CACHE_REPLACEMENT_HH

#include <cstdint>
#include <string>

#include "common/random.hh"
#include "sim/snapshot.hh"

namespace ovl
{

/** Which replacement policy a cache instantiates. */
enum class ReplPolicy
{
    LRU,
    Random,
    SRRIP,
    BRRIP,
    DRRIP,
};

/** Human-readable policy name (for config dumps). */
const char *replPolicyName(ReplPolicy policy);

/**
 * Per-line replacement metadata. A union of what the supported policies
 * need: an LRU sequence number and a 2-bit re-reference prediction value.
 */
struct ReplState
{
    std::uint64_t lruSeq = 0;
    std::uint8_t rrpv = 0;
};

/**
 * Policy engine shared by all sets of one cache. Stateless per access
 * except for the global LRU sequence counter, the BRRIP throttle and the
 * DRRIP set-dueling PSEL counter.
 */
class ReplacementEngine
{
  public:
    ReplacementEngine(ReplPolicy policy, unsigned num_sets,
                      std::uint64_t seed = 1);

    ReplPolicy policy() const { return policy_; }

    // The per-access hooks are defined inline so the cache's hot path
    // (access/fill/victim-choice on every simulated memory reference)
    // compiles into straight-line code instead of cross-TU calls.

    /** Called when a line is hit. */
    void
    onHit(ReplState &line)
    {
        switch (policy_) {
          case ReplPolicy::LRU:
            line.lruSeq = ++lruCounter_;
            break;
          case ReplPolicy::Random:
            break;
          case ReplPolicy::SRRIP:
          case ReplPolicy::BRRIP:
          case ReplPolicy::DRRIP:
            // Hit promotion: predict near-immediate re-reference [27].
            line.rrpv = 0;
            break;
        }
    }

    /**
     * Called when a line is inserted. @p set_index selects DRRIP leader
     * sets; @p is_prefetch inserts prefetched lines with distant RRPV so
     * inaccurate prefetches do not pollute the LLC.
     */
    void
    onInsert(ReplState &line, unsigned set_index, bool is_prefetch)
    {
        switch (policy_) {
          case ReplPolicy::LRU:
            line.lruSeq = ++lruCounter_;
            break;
          case ReplPolicy::Random:
            break;
          case ReplPolicy::SRRIP:
            insertRrip(line, false);
            break;
          case ReplPolicy::BRRIP:
            insertRrip(line, true);
            break;
          case ReplPolicy::DRRIP:
            if (is_prefetch) {
                // Prefetches always insert with a distant prediction so
                // that useless prefetches are evicted first.
                line.rrpv = kMaxRrpv;
            } else if (isSrripLeader(set_index)) {
                insertRrip(line, false);
            } else if (isBrripLeader(set_index)) {
                insertRrip(line, true);
            } else {
                insertRrip(line, brripWinning());
            }
            break;
        }
    }

    /**
     * Choose a victim among @p ways lines of a set; invalid lines must be
     * handled by the caller first. For RRIP policies this ages lines
     * in-place until a candidate reaches RRPV=3.
     *
     * @return the way index of the victim.
     */
    unsigned
    selectVictim(ReplState *lines, unsigned ways)
    {
        switch (policy_) {
          case ReplPolicy::LRU: {
            unsigned victim = 0;
            for (unsigned w = 1; w < ways; ++w) {
                if (lines[w].lruSeq < lines[victim].lruSeq)
                    victim = w;
            }
            return victim;
          }
          case ReplPolicy::Random:
            return unsigned(rng_.below(ways));
          case ReplPolicy::SRRIP:
          case ReplPolicy::BRRIP:
          case ReplPolicy::DRRIP: {
            // Age until some line reaches the distant RRPV.
            for (;;) {
                for (unsigned w = 0; w < ways; ++w) {
                    if (lines[w].rrpv >= kMaxRrpv)
                        return w;
                }
                for (unsigned w = 0; w < ways; ++w)
                    ++lines[w].rrpv;
            }
          }
        }
        return 0;
    }

    /**
     * DRRIP feedback: called on a miss in a leader set [27]; adjusts the
     * policy-selection counter.
     */
    void
    onMiss(unsigned set_index)
    {
        if (policy_ != ReplPolicy::DRRIP)
            return;
        // A miss in a leader set is a vote against that leader's policy.
        if (isSrripLeader(set_index)) {
            if (psel_ < pselMax_)
                ++psel_;
        } else if (isBrripLeader(set_index)) {
            if (psel_ > 0)
                --psel_;
        }
    }

    /** True if @p set_index is an SRRIP (resp. BRRIP) leader set. */
    bool
    isSrripLeader(unsigned set_index) const
    {
        // Simple static leader selection: sets 0, 32, 64, ... lead SRRIP.
        return (set_index % kLeaderSetStride) == 0;
    }

    bool
    isBrripLeader(unsigned set_index) const
    {
        // Sets 16, 48, 80, ... lead BRRIP.
        return (set_index % kLeaderSetStride) == kLeaderSetStride / 2;
    }

    /** Current dynamic winner for DRRIP follower sets. */
    bool brripWinning() const { return psel_ > pselMax_ / 2; }

    /** Snapshot the LRU counter, throttles, PSEL and the RNG stream. */
    void
    serialize(snapshot::Writer &w) const
    {
        w.u64(lruCounter_);
        w.u32(brripThrottle_);
        w.u32(psel_);
        for (std::uint64_t word : rng_.rawState())
            w.u64(word);
    }

    void
    deserialize(snapshot::Reader &r)
    {
        lruCounter_ = r.u64();
        brripThrottle_ = r.u32();
        psel_ = r.u32();
        std::array<std::uint64_t, 4> state;
        for (std::uint64_t &word : state)
            word = r.u64();
        rng_.setRawState(state);
    }

  private:
    static constexpr std::uint8_t kMaxRrpv = 3;
    static constexpr unsigned kLeaderSetStride = 32;
    static constexpr unsigned kBrripEpsilonInverse = 32; // 1/32 near inserts

    void
    insertRrip(ReplState &line, bool long_rereference)
    {
        if (long_rereference) {
            // BRRIP: distant prediction (RRPV=3) except 1-in-32 inserts.
            if (++brripThrottle_ >= kBrripEpsilonInverse) {
                brripThrottle_ = 0;
                line.rrpv = kMaxRrpv - 1;
            } else {
                line.rrpv = kMaxRrpv;
            }
        } else {
            // SRRIP: long (but not distant) prediction.
            line.rrpv = kMaxRrpv - 1;
        }
    }

    ReplPolicy policy_;
    unsigned numSets_;
    std::uint64_t lruCounter_ = 0;
    unsigned brripThrottle_ = 0;
    unsigned psel_;
    unsigned pselMax_;
    Rng rng_;
};

} // namespace ovl

#endif // OVERLAYSIM_CACHE_REPLACEMENT_HH
