#include "cache.hh"

#include <algorithm>

#include "common/intmath.hh"
#include "common/logging.hh"

namespace ovl
{

SetAssocCache::SetAssocCache(std::string name, CacheParams params)
    : SimObject(std::move(name)), params_(params),
      numSets_(unsigned(params.sizeBytes / kLineSize / params.associativity)),
      ways_(params.associativity),
      tags_(std::size_t(numSets_) * ways_, kInvalidAddr),
      state_(std::size_t(numSets_) * ways_),
      replStates_(std::size_t(numSets_) * ways_),
      repl_(params.replPolicy, numSets_),
      hits_(&statGroup(), "hits", "demand hits"),
      misses_(&statGroup(), "misses", "demand misses"),
      writebacks_(&statGroup(), "writebacks", "dirty lines displaced"),
      prefetchFills_(&statGroup(), "prefetchFills", "lines filled by prefetch"),
      prefetchHits_(&statGroup(), "prefetchHits",
                    "demand hits on prefetched lines"),
      retags_(&statGroup(), "retags",
              "lines retagged in place (overlaying writes)")
{
    ovl_assert(params.sizeBytes % (kLineSize * params.associativity) == 0,
               "cache size must be a whole number of sets");
    ovl_assert(isPowerOf2(numSets_), "set count must be a power of two");
}

std::optional<Eviction>
SetAssocCache::invalidate(Addr line_addr)
{
    std::size_t i = findIndex(line_addr);
    if (i == kNotFound)
        return std::nullopt;
    Eviction ev{tags_[i], state_[i].dirty};
    tags_[i] = kInvalidAddr;
    state_[i].dirty = false;
    return ev;
}

bool
SetAssocCache::retag(Addr old_addr, Addr new_addr)
{
    std::size_t i = findIndex(old_addr);
    if (i == kNotFound)
        return false;
    if (setIndex(old_addr) != setIndex(new_addr)) {
        // The overlay address indexes a different set; hardware would do
        // an explicit line copy instead (§4.3.3). Caller handles it.
        return false;
    }
    if (findIndex(new_addr) != kNotFound)
        return false;
    tags_[i] = new_addr;
    ++retags_;
    return true;
}

void
SetAssocCache::flushAll()
{
    std::fill(tags_.begin(), tags_.end(), kInvalidAddr);
    std::fill(state_.begin(), state_.end(), LineState{});
}

void
SetAssocCache::serialize(snapshot::Writer &w) const
{
    w.beginSection("CACH");
    w.u64(tags_.size());
    for (Addr tag : tags_)
        w.u64(tag);
    for (const LineState &st : state_) {
        w.b(st.dirty);
        w.b(st.prefetched);
    }
    for (const ReplState &rs : replStates_) {
        w.u64(rs.lruSeq);
        w.u8(rs.rrpv);
    }
    repl_.serialize(w);
    w.endSection();
}

void
SetAssocCache::deserialize(snapshot::Reader &r)
{
    r.expectSection("CACH");
    std::uint64_t n = r.u64();
    if (n != tags_.size()) {
        r.fail("cache '" + name() + "' line count mismatch: snapshot " +
               std::to_string(n) + ", configured " +
               std::to_string(tags_.size()));
    }
    for (Addr &tag : tags_)
        tag = r.u64();
    for (LineState &st : state_) {
        st.dirty = r.b();
        st.prefetched = r.b();
    }
    for (ReplState &rs : replStates_) {
        rs.lruSeq = r.u64();
        rs.rrpv = r.u8();
    }
    repl_.deserialize(r);
    r.endSection();
}

} // namespace ovl
