#include "cache.hh"

#include "common/intmath.hh"
#include "common/logging.hh"

namespace ovl
{

SetAssocCache::SetAssocCache(std::string name, CacheParams params)
    : SimObject(std::move(name)), params_(params),
      numSets_(unsigned(params.sizeBytes / kLineSize / params.associativity)),
      ways_(params.associativity),
      lines_(std::size_t(numSets_) * ways_),
      repl_(params.replPolicy, numSets_),
      hits_(&statGroup(), "hits", "demand hits"),
      misses_(&statGroup(), "misses", "demand misses"),
      writebacks_(&statGroup(), "writebacks", "dirty lines displaced"),
      prefetchFills_(&statGroup(), "prefetchFills", "lines filled by prefetch"),
      prefetchHits_(&statGroup(), "prefetchHits",
                    "demand hits on prefetched lines"),
      retags_(&statGroup(), "retags",
              "lines retagged in place (overlaying writes)")
{
    ovl_assert(params.sizeBytes % (kLineSize * params.associativity) == 0,
               "cache size must be a whole number of sets");
    ovl_assert(isPowerOf2(numSets_), "set count must be a power of two");
}

unsigned
SetAssocCache::setIndex(Addr line_addr) const
{
    return unsigned((line_addr >> kLineShift) & (numSets_ - 1));
}

SetAssocCache::Line *
SetAssocCache::findLine(Addr line_addr)
{
    Line *set = &lines_[std::size_t(setIndex(line_addr)) * ways_];
    for (unsigned w = 0; w < ways_; ++w) {
        if (set[w].valid && set[w].tag == line_addr)
            return &set[w];
    }
    return nullptr;
}

const SetAssocCache::Line *
SetAssocCache::findLine(Addr line_addr) const
{
    return const_cast<SetAssocCache *>(this)->findLine(line_addr);
}

std::optional<Eviction>
SetAssocCache::insert(Addr line_addr, bool dirty, bool is_prefetch)
{
    unsigned set_idx = setIndex(line_addr);
    Line *set = &lines_[std::size_t(set_idx) * ways_];

    // Prefer an invalid way.
    Line *slot = nullptr;
    for (unsigned w = 0; w < ways_; ++w) {
        if (!set[w].valid) {
            slot = &set[w];
            break;
        }
    }

    std::optional<Eviction> evicted;
    if (slot == nullptr) {
        // All ways valid: consult the replacement policy.
        ReplState repl_states[64];
        ovl_assert(ways_ <= 64, "associativity beyond victim buffer");
        for (unsigned w = 0; w < ways_; ++w)
            repl_states[w] = set[w].repl;
        unsigned victim = repl_.selectVictim(repl_states, ways_);
        for (unsigned w = 0; w < ways_; ++w)
            set[w].repl = repl_states[w]; // RRIP aging mutates in place
        slot = &set[victim];
        evicted = Eviction{slot->tag, slot->dirty};
        if (slot->dirty)
            ++writebacks_;
    }

    slot->tag = line_addr;
    slot->valid = true;
    slot->dirty = dirty;
    slot->prefetched = is_prefetch;
    repl_.onInsert(slot->repl, set_idx, is_prefetch);
    if (is_prefetch)
        ++prefetchFills_;
    return evicted;
}

CacheAccessResult
SetAssocCache::access(Addr line_addr, bool is_write)
{
    if (Line *line = findLine(line_addr)) {
        ++hits_;
        if (line->prefetched) {
            ++prefetchHits_;
            line->prefetched = false;
        }
        repl_.onHit(line->repl);
        if (is_write)
            line->dirty = true;
        return CacheAccessResult{true, std::nullopt};
    }
    ++misses_;
    repl_.onMiss(setIndex(line_addr));
    auto eviction = insert(line_addr, is_write, false);
    return CacheAccessResult{false, eviction};
}

std::optional<Eviction>
SetAssocCache::fill(Addr line_addr, bool dirty, bool is_prefetch)
{
    if (Line *line = findLine(line_addr)) {
        line->dirty = line->dirty || dirty;
        return std::nullopt;
    }
    return insert(line_addr, dirty, is_prefetch);
}

bool
SetAssocCache::isPresent(Addr line_addr) const
{
    return findLine(line_addr) != nullptr;
}

bool
SetAssocCache::isPrefetched(Addr line_addr) const
{
    const Line *line = findLine(line_addr);
    return line != nullptr && line->prefetched;
}

std::optional<Eviction>
SetAssocCache::invalidate(Addr line_addr)
{
    if (Line *line = findLine(line_addr)) {
        Eviction ev{line->tag, line->dirty};
        line->valid = false;
        line->dirty = false;
        return ev;
    }
    return std::nullopt;
}

bool
SetAssocCache::retag(Addr old_addr, Addr new_addr)
{
    Line *line = findLine(old_addr);
    if (line == nullptr)
        return false;
    if (setIndex(old_addr) != setIndex(new_addr)) {
        // The overlay address indexes a different set; hardware would do
        // an explicit line copy instead (§4.3.3). Caller handles it.
        return false;
    }
    if (findLine(new_addr) != nullptr)
        return false;
    line->tag = new_addr;
    ++retags_;
    return true;
}

void
SetAssocCache::flushAll()
{
    for (Line &line : lines_) {
        line.valid = false;
        line.dirty = false;
        line.prefetched = false;
    }
}

} // namespace ovl
