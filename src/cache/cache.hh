/**
 * @file
 * Set-associative, write-back, write-allocate cache with configurable
 * tag/data latencies and serial or parallel tag/data lookup (Table 2).
 * Tags are full line addresses: because the overlay address space is part
 * of the physical address space (§3.2), overlay lines are cached exactly
 * like regular lines — only the tag is wider (§4.5 charges that cost).
 */

#ifndef OVERLAYSIM_CACHE_CACHE_HH
#define OVERLAYSIM_CACHE_CACHE_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "cache/replacement.hh"
#include "common/types.hh"
#include "sim/sim_object.hh"

namespace ovl
{

/** Static configuration of one cache level. */
struct CacheParams
{
    std::uint64_t sizeBytes = 64 * 1024;
    unsigned associativity = 4;
    Tick tagLatency = 1;
    Tick dataLatency = 2;
    /** Parallel lookup: hit latency = max(tag, data); serial: tag + data. */
    bool parallelTagData = true;
    ReplPolicy replPolicy = ReplPolicy::LRU;

    Tick
    hitLatency() const
    {
        return parallelTagData ? std::max(tagLatency, dataLatency)
                               : tagLatency + dataLatency;
    }

    /** Latency to determine a miss (the tag lookup). */
    Tick missDetectLatency() const { return tagLatency; }
};

/** A line evicted to make room for a fill. */
struct Eviction
{
    Addr lineAddr = kInvalidAddr;
    bool dirty = false;
};

/** Result of a demand lookup-and-allocate. */
struct CacheAccessResult
{
    bool hit = false;
    /** Victim displaced by the miss fill, if any. */
    std::optional<Eviction> eviction;
};

/**
 * One cache level. The cache stores tags and state only — functional data
 * lives in the backing stores (see DESIGN.md §3, functional/timing split).
 */
class SetAssocCache : public SimObject
{
  public:
    SetAssocCache(std::string name, CacheParams params);

    const CacheParams &params() const { return params_; }
    unsigned numSets() const { return numSets_; }

    // access/fill/isPresent run on every simulated memory reference
    // (including once per level and per prefetch candidate); they are
    // defined inline at the bottom of this header so the hierarchy's
    // miss cascade compiles into straight-line code.

    /**
     * Demand access: looks up @p line_addr, allocates on miss, and marks
     * the line dirty when @p is_write. The returned eviction (if any)
     * must be handled by the caller (written back / installed below).
     */
    CacheAccessResult access(Addr line_addr, bool is_write);

    /**
     * Fill without a demand access (writeback from an upper level or a
     * prefetch). Marks dirty when @p dirty; tracks prefetched lines so
     * DRRIP can deprioritize them. Returns a displaced victim, if any.
     * If the line is already present it is updated in place.
     */
    std::optional<Eviction> fill(Addr line_addr, bool dirty,
                                 bool is_prefetch = false);

    /** Tag probe without any state update. */
    bool isPresent(Addr line_addr) const;

    /** True if present and the line was installed by the prefetcher. */
    bool isPrefetched(Addr line_addr) const;

    /**
     * Remove @p line_addr if present. Returns the eviction record (so a
     * dirty invalidated line can be written back) or nullopt.
     */
    std::optional<Eviction> invalidate(Addr line_addr);

    /**
     * Retag a resident line from @p old_addr to @p new_addr, preserving
     * dirtiness. This is the hardware path of the overlaying write: "copy
     * the cache line ... by simply updating the cache tag to correspond to
     * the overlay page number" (§4.3.3). Returns false if not resident or
     * if the destination conflicts with a resident line in another set
     * position (caller then falls back to an explicit copy).
     */
    bool retag(Addr old_addr, Addr new_addr);

    /** Drop every line (used between experiment phases). */
    void flushAll();

    /** Write back and drop every dirty line, invoking @p sink for each. */
    template <typename Sink>
    void
    writebackAll(Sink &&sink)
    {
        for (std::size_t i = 0; i < lines_.size(); ++i) {
            Line &line = lines_[i];
            if (line.valid && line.dirty)
                sink(line.tag);
            line.valid = false;
            line.dirty = false;
        }
    }

    std::uint64_t hits() const { return hits_.value(); }
    std::uint64_t misses() const { return misses_.value(); }

  private:
    struct Line
    {
        Addr tag = kInvalidAddr; ///< full line address
        bool valid = false;
        bool dirty = false;
        bool prefetched = false;
    };

    unsigned setIndex(Addr line_addr) const;
    Line *findLine(Addr line_addr);
    const Line *findLine(Addr line_addr) const;
    /**
     * Insert into set @p set_idx, reusing @p slot if the caller already
     * found an invalid way (nullptr = all ways valid, pick a victim).
     */
    std::optional<Eviction> insertAt(unsigned set_idx, Line *slot,
                                     Addr line_addr, bool dirty,
                                     bool is_prefetch);

    CacheParams params_;
    unsigned numSets_;
    unsigned ways_;
    std::vector<Line> lines_; ///< numSets_ x ways_, row-major by set
    /**
     * Replacement metadata, parallel to lines_. Kept in its own dense
     * array so selectVictim can age a whole set in place — the previous
     * layout embedded ReplState in Line and had to copy all ways out and
     * back on every victim choice.
     */
    std::vector<ReplState> replStates_;
    ReplacementEngine repl_;

    stats::Counter hits_;
    stats::Counter misses_;
    stats::Counter writebacks_;
    stats::Counter prefetchFills_;
    stats::Counter prefetchHits_;
    stats::Counter retags_;
};

// ------------------------ inline hot path ------------------------------

inline unsigned
SetAssocCache::setIndex(Addr line_addr) const
{
    return unsigned((line_addr >> kLineShift) & (numSets_ - 1));
}

inline SetAssocCache::Line *
SetAssocCache::findLine(Addr line_addr)
{
    Line *set = &lines_[std::size_t(setIndex(line_addr)) * ways_];
    for (unsigned w = 0; w < ways_; ++w) {
        if (set[w].valid && set[w].tag == line_addr)
            return &set[w];
    }
    return nullptr;
}

inline const SetAssocCache::Line *
SetAssocCache::findLine(Addr line_addr) const
{
    return const_cast<SetAssocCache *>(this)->findLine(line_addr);
}

inline std::optional<Eviction>
SetAssocCache::insertAt(unsigned set_idx, Line *slot, Addr line_addr,
                        bool dirty, bool is_prefetch)
{
    std::size_t base = std::size_t(set_idx) * ways_;
    std::optional<Eviction> evicted;
    if (slot == nullptr) {
        // All ways valid: consult the replacement policy. RRIP aging
        // mutates the set's states in place.
        unsigned victim = repl_.selectVictim(&replStates_[base], ways_);
        slot = &lines_[base + victim];
        evicted = Eviction{slot->tag, slot->dirty};
        if (slot->dirty)
            ++writebacks_;
    }

    slot->tag = line_addr;
    slot->valid = true;
    slot->dirty = dirty;
    slot->prefetched = is_prefetch;
    repl_.onInsert(replStates_[base + unsigned(slot - &lines_[base])],
                   set_idx, is_prefetch);
    if (is_prefetch)
        ++prefetchFills_;
    return evicted;
}

inline CacheAccessResult
SetAssocCache::access(Addr line_addr, bool is_write)
{
    // Single pass over the set: find the hit way and the first invalid
    // way together, so a miss does not rescan tags in insert().
    unsigned set_idx = setIndex(line_addr);
    std::size_t base = std::size_t(set_idx) * ways_;
    Line *set = &lines_[base];
    Line *invalid_slot = nullptr;
    for (unsigned w = 0; w < ways_; ++w) {
        Line &line = set[w];
        if (line.valid) {
            if (line.tag == line_addr) {
                ++hits_;
                if (line.prefetched) {
                    ++prefetchHits_;
                    line.prefetched = false;
                }
                repl_.onHit(replStates_[base + w]);
                if (is_write)
                    line.dirty = true;
                return CacheAccessResult{true, std::nullopt};
            }
        } else if (invalid_slot == nullptr) {
            invalid_slot = &line;
        }
    }
    ++misses_;
    repl_.onMiss(set_idx);
    auto eviction = insertAt(set_idx, invalid_slot, line_addr, is_write,
                             false);
    return CacheAccessResult{false, eviction};
}

inline std::optional<Eviction>
SetAssocCache::fill(Addr line_addr, bool dirty, bool is_prefetch)
{
    // Same single-pass structure as access(): hit way and first invalid
    // way in one scan.
    unsigned set_idx = setIndex(line_addr);
    Line *set = &lines_[std::size_t(set_idx) * ways_];
    Line *invalid_slot = nullptr;
    for (unsigned w = 0; w < ways_; ++w) {
        Line &line = set[w];
        if (line.valid) {
            if (line.tag == line_addr) {
                line.dirty = line.dirty || dirty;
                return std::nullopt;
            }
        } else if (invalid_slot == nullptr) {
            invalid_slot = &line;
        }
    }
    return insertAt(set_idx, invalid_slot, line_addr, dirty, is_prefetch);
}

inline bool
SetAssocCache::isPresent(Addr line_addr) const
{
    return findLine(line_addr) != nullptr;
}

inline bool
SetAssocCache::isPrefetched(Addr line_addr) const
{
    const Line *line = findLine(line_addr);
    return line != nullptr && line->prefetched;
}

} // namespace ovl

#endif // OVERLAYSIM_CACHE_CACHE_HH
