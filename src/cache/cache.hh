/**
 * @file
 * Set-associative, write-back, write-allocate cache with configurable
 * tag/data latencies and serial or parallel tag/data lookup (Table 2).
 * Tags are full line addresses: because the overlay address space is part
 * of the physical address space (§3.2), overlay lines are cached exactly
 * like regular lines — only the tag is wider (§4.5 charges that cost).
 */

#ifndef OVERLAYSIM_CACHE_CACHE_HH
#define OVERLAYSIM_CACHE_CACHE_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "cache/replacement.hh"
#include "common/types.hh"
#include "sim/sim_object.hh"

namespace ovl
{

/** Static configuration of one cache level. */
struct CacheParams
{
    std::uint64_t sizeBytes = 64 * 1024;
    unsigned associativity = 4;
    Tick tagLatency = 1;
    Tick dataLatency = 2;
    /** Parallel lookup: hit latency = max(tag, data); serial: tag + data. */
    bool parallelTagData = true;
    ReplPolicy replPolicy = ReplPolicy::LRU;

    Tick
    hitLatency() const
    {
        return parallelTagData ? std::max(tagLatency, dataLatency)
                               : tagLatency + dataLatency;
    }

    /** Latency to determine a miss (the tag lookup). */
    Tick missDetectLatency() const { return tagLatency; }
};

/** A line evicted to make room for a fill. */
struct Eviction
{
    Addr lineAddr = kInvalidAddr;
    bool dirty = false;
};

/** Result of a demand lookup-and-allocate. */
struct CacheAccessResult
{
    bool hit = false;
    /** Victim displaced by the miss fill, if any. */
    std::optional<Eviction> eviction;
};

/**
 * One cache level. The cache stores tags and state only — functional data
 * lives in the backing stores (see DESIGN.md §3, functional/timing split).
 */
class SetAssocCache : public SimObject
{
  public:
    SetAssocCache(std::string name, CacheParams params);

    const CacheParams &params() const { return params_; }
    unsigned numSets() const { return numSets_; }

    /**
     * Demand access: looks up @p line_addr, allocates on miss, and marks
     * the line dirty when @p is_write. The returned eviction (if any)
     * must be handled by the caller (written back / installed below).
     */
    CacheAccessResult access(Addr line_addr, bool is_write);

    /**
     * Fill without a demand access (writeback from an upper level or a
     * prefetch). Marks dirty when @p dirty; tracks prefetched lines so
     * DRRIP can deprioritize them. Returns a displaced victim, if any.
     * If the line is already present it is updated in place.
     */
    std::optional<Eviction> fill(Addr line_addr, bool dirty,
                                 bool is_prefetch = false);

    /** Tag probe without any state update. */
    bool isPresent(Addr line_addr) const;

    /** True if present and the line was installed by the prefetcher. */
    bool isPrefetched(Addr line_addr) const;

    /**
     * Remove @p line_addr if present. Returns the eviction record (so a
     * dirty invalidated line can be written back) or nullopt.
     */
    std::optional<Eviction> invalidate(Addr line_addr);

    /**
     * Retag a resident line from @p old_addr to @p new_addr, preserving
     * dirtiness. This is the hardware path of the overlaying write: "copy
     * the cache line ... by simply updating the cache tag to correspond to
     * the overlay page number" (§4.3.3). Returns false if not resident or
     * if the destination conflicts with a resident line in another set
     * position (caller then falls back to an explicit copy).
     */
    bool retag(Addr old_addr, Addr new_addr);

    /** Drop every line (used between experiment phases). */
    void flushAll();

    /** Write back and drop every dirty line, invoking @p sink for each. */
    template <typename Sink>
    void
    writebackAll(Sink &&sink)
    {
        for (std::size_t i = 0; i < lines_.size(); ++i) {
            Line &line = lines_[i];
            if (line.valid && line.dirty)
                sink(line.tag);
            line.valid = false;
            line.dirty = false;
        }
    }

    std::uint64_t hits() const { return hits_.value(); }
    std::uint64_t misses() const { return misses_.value(); }

  private:
    struct Line
    {
        Addr tag = kInvalidAddr; ///< full line address
        bool valid = false;
        bool dirty = false;
        bool prefetched = false;
        ReplState repl;
    };

    unsigned setIndex(Addr line_addr) const;
    Line *findLine(Addr line_addr);
    const Line *findLine(Addr line_addr) const;
    /** Insert into the set of @p line_addr; returns displaced victim. */
    std::optional<Eviction> insert(Addr line_addr, bool dirty,
                                   bool is_prefetch);

    CacheParams params_;
    unsigned numSets_;
    unsigned ways_;
    std::vector<Line> lines_; ///< numSets_ x ways_, row-major by set
    ReplacementEngine repl_;

    stats::Counter hits_;
    stats::Counter misses_;
    stats::Counter writebacks_;
    stats::Counter prefetchFills_;
    stats::Counter prefetchHits_;
    stats::Counter retags_;
};

} // namespace ovl

#endif // OVERLAYSIM_CACHE_CACHE_HH
