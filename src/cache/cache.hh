/**
 * @file
 * Set-associative, write-back, write-allocate cache with configurable
 * tag/data latencies and serial or parallel tag/data lookup (Table 2).
 * Tags are full line addresses: because the overlay address space is part
 * of the physical address space (§3.2), overlay lines are cached exactly
 * like regular lines — only the tag is wider (§4.5 charges that cost).
 */

#ifndef OVERLAYSIM_CACHE_CACHE_HH
#define OVERLAYSIM_CACHE_CACHE_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "cache/replacement.hh"
#include "common/types.hh"
#include "sim/sim_object.hh"

namespace ovl
{

/** Static configuration of one cache level. */
struct CacheParams
{
    std::uint64_t sizeBytes = 64 * 1024;
    unsigned associativity = 4;
    Tick tagLatency = 1;
    Tick dataLatency = 2;
    /** Parallel lookup: hit latency = max(tag, data); serial: tag + data. */
    bool parallelTagData = true;
    ReplPolicy replPolicy = ReplPolicy::LRU;

    Tick
    hitLatency() const
    {
        return parallelTagData ? std::max(tagLatency, dataLatency)
                               : tagLatency + dataLatency;
    }

    /** Latency to determine a miss (the tag lookup). */
    Tick missDetectLatency() const { return tagLatency; }
};

/** A line evicted to make room for a fill. */
struct Eviction
{
    Addr lineAddr = kInvalidAddr;
    bool dirty = false;
};

/** Result of a demand lookup-and-allocate. */
struct CacheAccessResult
{
    bool hit = false;
    /** Victim displaced by the miss fill, if any. */
    std::optional<Eviction> eviction;
};

/**
 * One cache level. The cache stores tags and state only — functional data
 * lives in the backing stores (see DESIGN.md §3, functional/timing split).
 */
class SetAssocCache : public SimObject
{
  public:
    SetAssocCache(std::string name, CacheParams params);

    const CacheParams &params() const { return params_; }
    unsigned numSets() const { return numSets_; }

    // access/fill/isPresent run on every simulated memory reference
    // (including once per level and per prefetch candidate); they are
    // defined inline at the bottom of this header so the hierarchy's
    // miss cascade compiles into straight-line code.

    /**
     * Demand access: looks up @p line_addr, allocates on miss, and marks
     * the line dirty when @p is_write. The returned eviction (if any)
     * must be handled by the caller (written back / installed below).
     */
    CacheAccessResult access(Addr line_addr, bool is_write);

    /**
     * Fill without a demand access (writeback from an upper level or a
     * prefetch). Marks dirty when @p dirty; tracks prefetched lines so
     * DRRIP can deprioritize them. Returns a displaced victim, if any.
     * If the line is already present it is updated in place.
     */
    std::optional<Eviction> fill(Addr line_addr, bool dirty,
                                 bool is_prefetch = false);

    /**
     * access()/fill() minus the statistics: functional warming (sampled
     * simulation, DESIGN.md §10) moves tags, dirtiness and replacement
     * state exactly like the demand path while staying invisible to
     * every counter — a warmed cache dumps the same stats it would have
     * dumped before the functional burst.
     */
    CacheAccessResult warmAccess(Addr line_addr, bool is_write);
    std::optional<Eviction> warmFill(Addr line_addr, bool dirty,
                                     bool is_prefetch = false);

    /** Tag probe without any state update. */
    bool isPresent(Addr line_addr) const;

    /** True if present and the line was installed by the prefetcher. */
    bool isPrefetched(Addr line_addr) const;

    /**
     * Remove @p line_addr if present. Returns the eviction record (so a
     * dirty invalidated line can be written back) or nullopt.
     */
    std::optional<Eviction> invalidate(Addr line_addr);

    /**
     * Retag a resident line from @p old_addr to @p new_addr, preserving
     * dirtiness. This is the hardware path of the overlaying write: "copy
     * the cache line ... by simply updating the cache tag to correspond to
     * the overlay page number" (§4.3.3). Returns false if not resident or
     * if the destination conflicts with a resident line in another set
     * position (caller then falls back to an explicit copy).
     */
    bool retag(Addr old_addr, Addr new_addr);

    /** Result of a fused moveLine(): whether the line was resident, and
     *  any victim displaced by the cross-set fallback fill. */
    struct MoveResult
    {
        bool found = false;
        std::optional<Eviction> eviction;
    };

    /**
     * Fused retag-or-move: the overlaying write's tag update (§4.3.3)
     * resolved in a single scan of the source set. Semantically identical
     * to isPresent() + retag() with an invalidate() + fill() fallback —
     * counter for counter, replacement state for replacement state — but
     * without rescanning the tags at every step.
     */
    MoveResult moveLine(Addr old_addr, Addr new_addr);

    /** Drop every line (used between experiment phases). */
    void flushAll();

    /** Write back and drop every dirty line, invoking @p sink for each. */
    template <typename Sink>
    void
    writebackAll(Sink &&sink)
    {
        for (std::size_t i = 0; i < tags_.size(); ++i) {
            if (tags_[i] != kInvalidAddr && state_[i].dirty)
                sink(tags_[i]);
            tags_[i] = kInvalidAddr;
            state_[i].dirty = false;
        }
    }

    std::uint64_t hits() const { return hits_.value(); }
    std::uint64_t misses() const { return misses_.value(); }

    /** Snapshot tags, line state, replacement state and the engine. */
    void serialize(snapshot::Writer &w) const;
    void deserialize(snapshot::Reader &r);

  private:
    /** Per-line flags; validity lives in the tag (kInvalidAddr = empty). */
    struct LineState
    {
        bool dirty = false;
        bool prefetched = false;
    };

    /** No way holds the address (sentinel index into tags_/state_). */
    static constexpr std::size_t kNotFound = ~std::size_t(0);

    unsigned setIndex(Addr line_addr) const;
    std::size_t findIndex(Addr line_addr) const;
    /**
     * Insert into set @p set_idx, reusing way @p way if the caller already
     * found an invalid one (ways_ = all valid, pick a victim). @p count
     * false suppresses the writeback/prefetch-fill counters (functional
     * warming).
     */
    std::optional<Eviction> insertAt(unsigned set_idx, unsigned way,
                                     Addr line_addr, bool dirty,
                                     bool is_prefetch, bool count = true);

    CacheParams params_;
    unsigned numSets_;
    unsigned ways_;
    /**
     * Tag store, numSets_ x ways_ row-major by set, kInvalidAddr in empty
     * ways. Tags sit alone in a dense Addr array — the way scan is the
     * single hottest loop in the simulator, and packing one 8-byte tag
     * per way (instead of a 16-byte line struct) halves the bytes it
     * touches while freeing the compiler to vectorize the compares. A
     * real line address is line-aligned and can never equal kInvalidAddr.
     */
    std::vector<Addr> tags_;
    /** Dirty/prefetched flags, parallel to tags_ (off the scan path). */
    std::vector<LineState> state_;
    /**
     * Replacement metadata, parallel to lines_. Kept in its own dense
     * array so selectVictim can age a whole set in place — the previous
     * layout embedded ReplState in Line and had to copy all ways out and
     * back on every victim choice.
     */
    std::vector<ReplState> replStates_;
    ReplacementEngine repl_;

    stats::Counter hits_;
    stats::Counter misses_;
    stats::Counter writebacks_;
    stats::Counter prefetchFills_;
    stats::Counter prefetchHits_;
    stats::Counter retags_;
};

// ------------------------ inline hot path ------------------------------

inline unsigned
SetAssocCache::setIndex(Addr line_addr) const
{
    return unsigned((line_addr >> kLineShift) & (numSets_ - 1));
}

inline std::size_t
SetAssocCache::findIndex(Addr line_addr) const
{
    std::size_t base = std::size_t(setIndex(line_addr)) * ways_;
    for (unsigned w = 0; w < ways_; ++w) {
        if (tags_[base + w] == line_addr)
            return base + w;
    }
    return kNotFound;
}

inline std::optional<Eviction>
SetAssocCache::insertAt(unsigned set_idx, unsigned way, Addr line_addr,
                        bool dirty, bool is_prefetch, bool count)
{
    std::size_t base = std::size_t(set_idx) * ways_;
    std::optional<Eviction> evicted;
    if (way == ways_) {
        // All ways valid: consult the replacement policy. RRIP aging
        // mutates the set's states in place.
        way = repl_.selectVictim(&replStates_[base], ways_);
        evicted = Eviction{tags_[base + way], state_[base + way].dirty};
        if (state_[base + way].dirty && count)
            ++writebacks_;
    }

    tags_[base + way] = line_addr;
    LineState &st = state_[base + way];
    st.dirty = dirty;
    st.prefetched = is_prefetch;
    repl_.onInsert(replStates_[base + way], set_idx, is_prefetch);
    if (is_prefetch && count)
        ++prefetchFills_;
    return evicted;
}

inline CacheAccessResult
SetAssocCache::access(Addr line_addr, bool is_write)
{
    // Single pass over the set: find the hit way and the first invalid
    // way together, so a miss does not rescan tags in insert().
    unsigned set_idx = setIndex(line_addr);
    std::size_t base = std::size_t(set_idx) * ways_;
    const Addr *tags = &tags_[base];
    unsigned invalid_way = ways_;
    for (unsigned w = 0; w < ways_; ++w) {
        if (tags[w] == line_addr) {
            ++hits_;
            LineState &st = state_[base + w];
            if (st.prefetched) {
                ++prefetchHits_;
                st.prefetched = false;
            }
            repl_.onHit(replStates_[base + w]);
            if (is_write)
                st.dirty = true;
            return CacheAccessResult{true, std::nullopt};
        }
        if (tags[w] == kInvalidAddr && invalid_way == ways_)
            invalid_way = w;
    }
    ++misses_;
    repl_.onMiss(set_idx);
    auto eviction = insertAt(set_idx, invalid_way, line_addr, is_write,
                             false);
    return CacheAccessResult{false, eviction};
}

inline std::optional<Eviction>
SetAssocCache::fill(Addr line_addr, bool dirty, bool is_prefetch)
{
    // Same single-pass structure as access(): hit way and first invalid
    // way in one scan.
    unsigned set_idx = setIndex(line_addr);
    std::size_t base = std::size_t(set_idx) * ways_;
    const Addr *tags = &tags_[base];
    unsigned invalid_way = ways_;
    for (unsigned w = 0; w < ways_; ++w) {
        if (tags[w] == line_addr) {
            state_[base + w].dirty = state_[base + w].dirty || dirty;
            return std::nullopt;
        }
        if (tags[w] == kInvalidAddr && invalid_way == ways_)
            invalid_way = w;
    }
    return insertAt(set_idx, invalid_way, line_addr, dirty, is_prefetch);
}

inline CacheAccessResult
SetAssocCache::warmAccess(Addr line_addr, bool is_write)
{
    unsigned set_idx = setIndex(line_addr);
    std::size_t base = std::size_t(set_idx) * ways_;
    const Addr *tags = &tags_[base];
    unsigned invalid_way = ways_;
    for (unsigned w = 0; w < ways_; ++w) {
        if (tags[w] == line_addr) {
            LineState &st = state_[base + w];
            st.prefetched = false;
            repl_.onHit(replStates_[base + w]);
            if (is_write)
                st.dirty = true;
            return CacheAccessResult{true, std::nullopt};
        }
        if (tags[w] == kInvalidAddr && invalid_way == ways_)
            invalid_way = w;
    }
    repl_.onMiss(set_idx);
    auto eviction = insertAt(set_idx, invalid_way, line_addr, is_write,
                             false, /*count=*/false);
    return CacheAccessResult{false, eviction};
}

inline std::optional<Eviction>
SetAssocCache::warmFill(Addr line_addr, bool dirty, bool is_prefetch)
{
    unsigned set_idx = setIndex(line_addr);
    std::size_t base = std::size_t(set_idx) * ways_;
    const Addr *tags = &tags_[base];
    unsigned invalid_way = ways_;
    for (unsigned w = 0; w < ways_; ++w) {
        if (tags[w] == line_addr) {
            state_[base + w].dirty = state_[base + w].dirty || dirty;
            return std::nullopt;
        }
        if (tags[w] == kInvalidAddr && invalid_way == ways_)
            invalid_way = w;
    }
    return insertAt(set_idx, invalid_way, line_addr, dirty, is_prefetch,
                    /*count=*/false);
}

inline SetAssocCache::MoveResult
SetAssocCache::moveLine(Addr old_addr, Addr new_addr)
{
    // One pass over the source set finds both the line to move and (when
    // the destination indexes the same set) any resident destination
    // line. A line tagged new_addr can only live in set(new_addr), so
    // the same-set probe is complete.
    unsigned old_set = setIndex(old_addr);
    std::size_t base = std::size_t(old_set) * ways_;
    Addr *tags = &tags_[base];
    unsigned old_way = ways_;
    unsigned new_way = ways_;
    for (unsigned w = 0; w < ways_; ++w) {
        if (tags[w] == old_addr)
            old_way = w;
        else if (tags[w] == new_addr)
            new_way = w;
    }
    if (old_way == ways_)
        return MoveResult{};
    if (setIndex(new_addr) == old_set) {
        if (new_way == ways_) {
            // In-place tag update: the §4.3.3 fast path.
            tags[old_way] = new_addr;
            ++retags_;
            return MoveResult{true, std::nullopt};
        }
        // Destination already resident: fold the source's dirtiness into
        // it (the invalidate + present-line fill of the fallback path).
        state_[base + new_way].dirty =
            state_[base + new_way].dirty || state_[base + old_way].dirty;
        tags[old_way] = kInvalidAddr;
        state_[base + old_way].dirty = false;
        return MoveResult{true, std::nullopt};
    }
    // The overlay address indexes a different set; hardware would do an
    // explicit line copy instead (§4.3.3): invalidate + fill.
    bool dirty = state_[base + old_way].dirty;
    tags[old_way] = kInvalidAddr;
    state_[base + old_way].dirty = false;
    return MoveResult{true, fill(new_addr, dirty)};
}

inline bool
SetAssocCache::isPresent(Addr line_addr) const
{
    return findIndex(line_addr) != kNotFound;
}

inline bool
SetAssocCache::isPrefetched(Addr line_addr) const
{
    std::size_t i = findIndex(line_addr);
    return i != kNotFound && state_[i].prefetched;
}

} // namespace ovl

#endif // OVERLAYSIM_CACHE_CACHE_HH
