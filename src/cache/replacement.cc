#include "replacement.hh"

#include "common/logging.hh"

namespace ovl
{

const char *
replPolicyName(ReplPolicy policy)
{
    switch (policy) {
      case ReplPolicy::LRU: return "LRU";
      case ReplPolicy::Random: return "Random";
      case ReplPolicy::SRRIP: return "SRRIP";
      case ReplPolicy::BRRIP: return "BRRIP";
      case ReplPolicy::DRRIP: return "DRRIP";
    }
    return "unknown";
}

ReplacementEngine::ReplacementEngine(ReplPolicy policy, unsigned num_sets,
                                     std::uint64_t seed)
    : policy_(policy), numSets_(num_sets),
      psel_(512), pselMax_(1023), rng_(seed)
{
    ovl_assert(num_sets > 0, "cache must have at least one set");
}

} // namespace ovl
