#include "replacement.hh"

#include "common/logging.hh"

namespace ovl
{

const char *
replPolicyName(ReplPolicy policy)
{
    switch (policy) {
      case ReplPolicy::LRU: return "LRU";
      case ReplPolicy::Random: return "Random";
      case ReplPolicy::SRRIP: return "SRRIP";
      case ReplPolicy::BRRIP: return "BRRIP";
      case ReplPolicy::DRRIP: return "DRRIP";
    }
    return "unknown";
}

ReplacementEngine::ReplacementEngine(ReplPolicy policy, unsigned num_sets,
                                     std::uint64_t seed)
    : policy_(policy), numSets_(num_sets),
      psel_(512), pselMax_(1023), rng_(seed)
{
    ovl_assert(num_sets > 0, "cache must have at least one set");
}

void
ReplacementEngine::onHit(ReplState &line)
{
    switch (policy_) {
      case ReplPolicy::LRU:
        line.lruSeq = ++lruCounter_;
        break;
      case ReplPolicy::Random:
        break;
      case ReplPolicy::SRRIP:
      case ReplPolicy::BRRIP:
      case ReplPolicy::DRRIP:
        // Hit promotion: predict near-immediate re-reference [27].
        line.rrpv = 0;
        break;
    }
}

bool
ReplacementEngine::isSrripLeader(unsigned set_index) const
{
    // Simple static leader selection: sets 0, 32, 64, ... lead SRRIP.
    return (set_index % kLeaderSetStride) == 0;
}

bool
ReplacementEngine::isBrripLeader(unsigned set_index) const
{
    // Sets 16, 48, 80, ... lead BRRIP.
    return (set_index % kLeaderSetStride) == kLeaderSetStride / 2;
}

void
ReplacementEngine::insertRrip(ReplState &line, bool long_rereference)
{
    if (long_rereference) {
        // BRRIP: distant prediction (RRPV=3) except 1-in-32 inserts.
        if (++brripThrottle_ >= kBrripEpsilonInverse) {
            brripThrottle_ = 0;
            line.rrpv = kMaxRrpv - 1;
        } else {
            line.rrpv = kMaxRrpv;
        }
    } else {
        // SRRIP: long (but not distant) prediction.
        line.rrpv = kMaxRrpv - 1;
    }
}

void
ReplacementEngine::onInsert(ReplState &line, unsigned set_index,
                            bool is_prefetch)
{
    switch (policy_) {
      case ReplPolicy::LRU:
        line.lruSeq = ++lruCounter_;
        break;
      case ReplPolicy::Random:
        break;
      case ReplPolicy::SRRIP:
        insertRrip(line, false);
        break;
      case ReplPolicy::BRRIP:
        insertRrip(line, true);
        break;
      case ReplPolicy::DRRIP:
        if (is_prefetch) {
            // Prefetches always insert with a distant prediction so that
            // useless prefetches are evicted first.
            line.rrpv = kMaxRrpv;
        } else if (isSrripLeader(set_index)) {
            insertRrip(line, false);
        } else if (isBrripLeader(set_index)) {
            insertRrip(line, true);
        } else {
            insertRrip(line, brripWinning());
        }
        break;
    }
}

void
ReplacementEngine::onMiss(unsigned set_index)
{
    if (policy_ != ReplPolicy::DRRIP)
        return;
    // A miss in a leader set is a vote against that leader's policy [27].
    if (isSrripLeader(set_index)) {
        if (psel_ < pselMax_)
            ++psel_;
    } else if (isBrripLeader(set_index)) {
        if (psel_ > 0)
            --psel_;
    }
}

unsigned
ReplacementEngine::selectVictim(ReplState *lines, unsigned ways)
{
    ovl_assert(ways > 0, "victim selection over an empty set");
    switch (policy_) {
      case ReplPolicy::LRU: {
        unsigned victim = 0;
        for (unsigned w = 1; w < ways; ++w) {
            if (lines[w].lruSeq < lines[victim].lruSeq)
                victim = w;
        }
        return victim;
      }
      case ReplPolicy::Random:
        return unsigned(rng_.below(ways));
      case ReplPolicy::SRRIP:
      case ReplPolicy::BRRIP:
      case ReplPolicy::DRRIP: {
        // Age until some line reaches the distant RRPV.
        for (;;) {
            for (unsigned w = 0; w < ways; ++w) {
                if (lines[w].rrpv >= kMaxRrpv)
                    return w;
            }
            for (unsigned w = 0; w < ways; ++w)
                ++lines[w].rrpv;
        }
      }
    }
    return 0;
}

} // namespace ovl
