#include "hierarchy.hh"

#include "common/logging.hh"
#include "sim/snapshot.hh"

namespace ovl
{

CacheHierarchy::CacheHierarchy(std::string name, HierarchyParams params,
                               MemBackend &backend)
    : SimObject(std::move(name)), params_(params), backend_(backend),
      l1_(this->name() + ".l1", params.l1),
      l2_(this->name() + ".l2", params.l2),
      l3_(this->name() + ".l3", params.l3),
      prefetcher_(this->name() + ".pf", params.prefetcher),
      accesses_(&statGroup(), "accesses", "demand accesses"),
      memReads_(&statGroup(), "memReads", "lines read from memory"),
      memWritebacks_(&statGroup(), "memWritebacks",
                     "dirty lines written back to memory"),
      prefetchReads_(&statGroup(), "prefetchReads",
                     "prefetch fills serviced (best-effort bandwidth)"),
      prefetchDrops_(&statGroup(), "prefetchDrops",
                     "prefetches dropped by the bandwidth limiter"),
      hitsL1_(&statGroup(), "hitsL1", "accesses serviced by L1"),
      hitsL2_(&statGroup(), "hitsL2", "accesses serviced by L2"),
      hitsL3_(&statGroup(), "hitsL3", "accesses serviced by L3")
{
}

void
CacheHierarchy::prefetchLine(Addr line_addr, Tick when)
{
    tryPrefetchFill(line_addr, when);
}

void
CacheHierarchy::invalidateLine(Addr line_addr, Tick when)
{
    bool dirty = false;
    if (auto ev = l1_.invalidate(line_addr))
        dirty = dirty || ev->dirty;
    if (auto ev = l2_.invalidate(line_addr))
        dirty = dirty || ev->dirty;
    if (auto ev = l3_.invalidate(line_addr))
        dirty = dirty || ev->dirty;
    if (dirty) {
        ++memWritebacks_;
        backend_.writebackLine(line_addr, when);
    }
}

void
CacheHierarchy::dropLine(Addr line_addr)
{
    l1_.invalidate(line_addr);
    l2_.invalidate(line_addr);
    l3_.invalidate(line_addr);
}

bool
CacheHierarchy::retagLine(Addr old_addr, Addr new_addr, Tick when)
{
    auto mv1 = l1_.moveLine(old_addr, new_addr);
    if (mv1.eviction)
        handleL1Victim(*mv1.eviction, when);
    auto mv2 = l2_.moveLine(old_addr, new_addr);
    if (mv2.eviction)
        handleL2Victim(*mv2.eviction, when);
    auto mv3 = l3_.moveLine(old_addr, new_addr);
    if (mv3.eviction)
        handleL3Victim(*mv3.eviction, when);
    return mv1.found || mv2.found || mv3.found;
}

void
CacheHierarchy::flushAll(Tick when)
{
    auto sink = [&](Addr addr) {
        ++memWritebacks_;
        backend_.writebackLine(addr, when);
    };
    l1_.writebackAll(sink);
    l2_.writebackAll(sink);
    l3_.writebackAll(sink);
}

void
CacheHierarchy::resetStats()
{
    SimObject::resetStats();
    l1_.resetStats();
    l2_.resetStats();
    l3_.resetStats();
    prefetcher_.resetStats();
}

void
CacheHierarchy::serialize(snapshot::Writer &w) const
{
    w.beginSection("HIER");
    l1_.serialize(w);
    l2_.serialize(w);
    l3_.serialize(w);
    prefetcher_.serialize(w);
    w.u64(prefetchBusyUntil_);
    w.endSection();
}

void
CacheHierarchy::deserialize(snapshot::Reader &r)
{
    r.expectSection("HIER");
    l1_.deserialize(r);
    l2_.deserialize(r);
    l3_.deserialize(r);
    prefetcher_.deserialize(r);
    prefetchBusyUntil_ = r.u64();
    r.endSection();
}

} // namespace ovl
