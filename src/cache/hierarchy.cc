#include "hierarchy.hh"

#include <algorithm>

#include "common/logging.hh"

namespace ovl
{

CacheHierarchy::CacheHierarchy(std::string name, HierarchyParams params,
                               MemBackend &backend)
    : SimObject(std::move(name)), params_(params), backend_(backend),
      l1_(this->name() + ".l1", params.l1),
      l2_(this->name() + ".l2", params.l2),
      l3_(this->name() + ".l3", params.l3),
      prefetcher_(this->name() + ".pf", params.prefetcher),
      accesses_(&statGroup(), "accesses", "demand accesses"),
      memReads_(&statGroup(), "memReads", "lines read from memory"),
      memWritebacks_(&statGroup(), "memWritebacks",
                     "dirty lines written back to memory"),
      prefetchReads_(&statGroup(), "prefetchReads",
                     "prefetch fills serviced (best-effort bandwidth)"),
      prefetchDrops_(&statGroup(), "prefetchDrops",
                     "prefetches dropped by the bandwidth limiter"),
      hitsL1_(&statGroup(), "hitsL1", "accesses serviced by L1"),
      hitsL2_(&statGroup(), "hitsL2", "accesses serviced by L2"),
      hitsL3_(&statGroup(), "hitsL3", "accesses serviced by L3")
{
}

void
CacheHierarchy::handleL3Victim(const Eviction &ev, Tick when)
{
    if (ev.dirty) {
        ++memWritebacks_;
        backend_.writebackLine(ev.lineAddr, when);
    }
}

void
CacheHierarchy::handleL2Victim(const Eviction &ev, Tick when)
{
    if (!ev.dirty)
        return; // non-inclusive: clean victims are dropped silently
    if (auto l3_victim = l3_.fill(ev.lineAddr, true))
        handleL3Victim(*l3_victim, when);
}

void
CacheHierarchy::handleL1Victim(const Eviction &ev, Tick when)
{
    if (!ev.dirty)
        return;
    if (auto l2_victim = l2_.fill(ev.lineAddr, true))
        handleL2Victim(*l2_victim, when);
}

bool
CacheHierarchy::tryPrefetchFill(Addr line_addr, Tick when)
{
    if (l1_.isPresent(line_addr) || l2_.isPresent(line_addr) ||
        l3_.isPresent(line_addr)) {
        return true;
    }
    // Best-effort bandwidth: prefetches are serviced behind demand
    // traffic at a fixed streaming rate and dropped when the engine
    // falls too far behind (demand-first FR-FCFS scheduling).
    Tick start = std::max(when, prefetchBusyUntil_);
    if (start - when > prefetcher_.params().maxLagCycles) {
        ++prefetchDrops_;
        return false;
    }
    prefetchBusyUntil_ = start + prefetcher_.params().serviceCycles;
    ++prefetchReads_;
    if (auto victim = l3_.fill(line_addr, false, true))
        handleL3Victim(*victim, when);
    return true;
}

void
CacheHierarchy::issuePrefetches(Addr trigger_line, Tick when)
{
    prefetchScratch_.clear();
    prefetcher_.notifyMiss(trigger_line, prefetchScratch_);
    for (Addr pf_addr : prefetchScratch_)
        tryPrefetchFill(pf_addr, when);
}

Tick
CacheHierarchy::access(Addr line_addr, bool is_write, Tick when,
                       HitLevel *hit_level)
{
    ovl_assert((line_addr & kLineMask) == 0, "unaligned line address");
    ++accesses_;

    Tick t = when;
    CacheAccessResult l1_res = l1_.access(line_addr, is_write);
    if (l1_res.eviction)
        handleL1Victim(*l1_res.eviction, when);
    if (l1_res.hit) {
        ++hitsL1_;
        if (hit_level)
            *hit_level = HitLevel::L1;
        return t + params_.l1.hitLatency();
    }
    t += params_.l1.missDetectLatency();

    CacheAccessResult l2_res = l2_.access(line_addr, false);
    if (l2_res.eviction)
        handleL2Victim(*l2_res.eviction, when);
    if (l2_res.hit) {
        ++hitsL2_;
        if (hit_level)
            *hit_level = HitLevel::L2;
        return t + params_.l2.hitLatency();
    }
    t += params_.l2.missDetectLatency();

    // Train the prefetcher on L2 demand misses (Table 2).
    issuePrefetches(line_addr, t);

    CacheAccessResult l3_res = l3_.access(line_addr, false);
    if (l3_res.eviction)
        handleL3Victim(*l3_res.eviction, when);
    if (l3_res.hit) {
        ++hitsL3_;
        if (hit_level)
            *hit_level = HitLevel::L3;
        return t + params_.l3.hitLatency();
    }
    t += params_.l3.missDetectLatency();

    ++memReads_;
    if (hit_level)
        *hit_level = HitLevel::Memory;
    return backend_.readLine(line_addr, t);
}

void
CacheHierarchy::prefetchLine(Addr line_addr, Tick when)
{
    tryPrefetchFill(line_addr, when);
}

void
CacheHierarchy::invalidateLine(Addr line_addr, Tick when)
{
    bool dirty = false;
    if (auto ev = l1_.invalidate(line_addr))
        dirty = dirty || ev->dirty;
    if (auto ev = l2_.invalidate(line_addr))
        dirty = dirty || ev->dirty;
    if (auto ev = l3_.invalidate(line_addr))
        dirty = dirty || ev->dirty;
    if (dirty) {
        ++memWritebacks_;
        backend_.writebackLine(line_addr, when);
    }
}

bool
CacheHierarchy::retagLine(Addr old_addr, Addr new_addr, Tick when)
{
    bool found = false;
    if (l1_.isPresent(old_addr)) {
        found = true;
        if (!l1_.retag(old_addr, new_addr)) {
            auto ev = l1_.invalidate(old_addr);
            if (auto victim = l1_.fill(new_addr, ev && ev->dirty))
                handleL1Victim(*victim, when);
        }
    }
    if (l2_.isPresent(old_addr)) {
        found = true;
        if (!l2_.retag(old_addr, new_addr)) {
            auto ev = l2_.invalidate(old_addr);
            if (auto victim = l2_.fill(new_addr, ev && ev->dirty))
                handleL2Victim(*victim, when);
        }
    }
    if (l3_.isPresent(old_addr)) {
        found = true;
        if (!l3_.retag(old_addr, new_addr)) {
            auto ev = l3_.invalidate(old_addr);
            if (auto victim = l3_.fill(new_addr, ev && ev->dirty))
                handleL3Victim(*victim, when);
        }
    }
    return found;
}

void
CacheHierarchy::flushAll(Tick when)
{
    auto sink = [&](Addr addr) {
        ++memWritebacks_;
        backend_.writebackLine(addr, when);
    };
    l1_.writebackAll(sink);
    l2_.writebackAll(sink);
    l3_.writebackAll(sink);
}

void
CacheHierarchy::resetStats()
{
    SimObject::resetStats();
    l1_.resetStats();
    l2_.resetStats();
    l3_.resetStats();
    prefetcher_.resetStats();
}

} // namespace ovl
