/**
 * @file
 * Three-level non-inclusive cache hierarchy (Table 2): 64 KB 4-way L1,
 * 512 KB 8-way L2, 2 MB 16-way DRRIP L3, with a stream prefetcher that
 * monitors L2 misses and fills the L3. Below the hierarchy sits a
 * MemBackend — in the full system this is the overlay-aware memory
 * controller, which routes overlay-space addresses to the Overlay Memory
 * Store (§4.3.1).
 */

#ifndef OVERLAYSIM_CACHE_HIERARCHY_HH
#define OVERLAYSIM_CACHE_HIERARCHY_HH

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "cache/cache.hh"
#include "cache/prefetcher.hh"
#include "common/logging.hh"
#include "common/types.hh"
#include "sim/profile.hh"
#include "sim/sim_object.hh"
#include "sim/trace.hh"

namespace ovl
{

/**
 * What the cache hierarchy talks to on a full miss. Implemented by the
 * overlay-aware memory controller in src/system.
 */
class MemBackend
{
  public:
    virtual ~MemBackend() = default;

    /** Read a line; returns the completion time. */
    virtual Tick readLine(Addr line_addr, Tick when) = 0;

    /**
     * Accept a dirty writeback; returns the acceptance time. For overlay
     * lines this is where the OMS slot is lazily allocated (§4.3.3).
     */
    virtual Tick writebackLine(Addr line_addr, Tick when) = 0;
};

/** Parameters of the three levels plus the prefetcher. */
struct HierarchyParams
{
    CacheParams l1{64 * 1024, 4, 1, 2, true, ReplPolicy::LRU};
    CacheParams l2{512 * 1024, 8, 2, 8, true, ReplPolicy::LRU};
    CacheParams l3{2 * 1024 * 1024, 16, 10, 24, false, ReplPolicy::DRRIP};
    PrefetcherParams prefetcher{};
};

/** Which level serviced a demand access. */
enum class HitLevel
{
    L1,
    L2,
    L3,
    Memory,
};

/**
 * The demand path: L1 -> L2 -> L3 -> MemBackend, with dirty-victim
 * cascades and L2-miss-trained prefetching into L3.
 */
class CacheHierarchy : public SimObject
{
  public:
    CacheHierarchy(std::string name, HierarchyParams params,
                   MemBackend &backend);

    /**
     * One demand access to a line address (regular-physical or overlay
     * space). Returns the completion time; @p hit_level (optional)
     * reports which level serviced it. Defined inline (below) together
     * with the victim/prefetch helpers so the whole miss cascade
     * compiles into one frame.
     */
    Tick access(Addr line_addr, bool is_write, Tick when,
                HitLevel *hit_level = nullptr);

    /**
     * Invalidate a line everywhere, writing it back if dirty. Used when
     * overlays are promoted/discarded (§4.3.4).
     */
    void invalidateLine(Addr line_addr, Tick when);

    /**
     * Drop a line everywhere without writing it back — the functional
     * fast-forward's teardown path (sampled simulation): the line's data
     * lives in the functional stores, and charging a writeback would
     * mutate DRAM timing state, which functional mode must not do.
     */
    void dropLine(Addr line_addr);

    /**
     * Functional warming (sampled simulation, DESIGN.md §10): replay the
     * tag and replacement-state movement of access() with zero tick
     * movement — no latencies, no statistics, no DRAM traffic, no
     * prefetcher training. Dirty victims cascade as tag fills exactly as
     * in the detailed path, but the final writeback is dropped (the data
     * lives in the functional stores). This keeps the hierarchy's
     * contents tracking the program during a functional fast-forward, so
     * the next detailed window starts from warm state instead of
     * measuring an artificial cold-start transient.
     */
    void warmLine(Addr line_addr, bool is_write);

    /**
     * Retag a line from the regular physical space to the overlay space
     * in whichever level holds it — the overlaying write's tag update
     * (§4.3.3). Falls back to invalidate+fill when retagging in place is
     * not possible (cascaded victims are stamped with @p when). Returns
     * true if the line was found somewhere.
     */
    bool retagLine(Addr old_addr, Addr new_addr, Tick when);

    /**
     * Software/hardware-directed prefetch of one line into the L3 (used
     * by the overlay-aware prefetcher, §5.2: the OBitVector tells the
     * hardware exactly which overlay lines exist). Non-blocking: charges
     * memory bandwidth only.
     */
    void prefetchLine(Addr line_addr, Tick when);

    /** Write back all dirty lines and empty the hierarchy. */
    void flushAll(Tick when);

    /** Reset prefetch-bandwidth timing state (phase boundary). */
    void resetTiming() { prefetchBusyUntil_ = 0; }

    SetAssocCache &l1() { return l1_; }
    SetAssocCache &l2() { return l2_; }
    SetAssocCache &l3() { return l3_; }
    StreamPrefetcher &prefetcher() { return prefetcher_; }

    void resetStats() override;

    /**
     * Snapshot all three levels, the prefetcher and the prefetch
     * bandwidth cursor. prefetchScratch_ is a transient buffer cleared
     * before every use and carries no state.
     */
    void serialize(snapshot::Writer &w) const;
    void deserialize(snapshot::Reader &r);

  private:
    void handleL1Victim(const Eviction &ev, Tick when);
    void handleL2Victim(const Eviction &ev, Tick when);
    void handleL3Victim(const Eviction &ev, Tick when);
    void issuePrefetches(Addr trigger_line, Tick when);
    /** Rate-limited best-effort prefetch fill; false if dropped. */
    bool tryPrefetchFill(Addr line_addr, Tick when);

    HierarchyParams params_;
    MemBackend &backend_;
    SetAssocCache l1_;
    SetAssocCache l2_;
    SetAssocCache l3_;
    StreamPrefetcher prefetcher_;
    std::vector<Addr> prefetchScratch_;
    Tick prefetchBusyUntil_ = 0;

    stats::Counter accesses_;
    stats::Counter memReads_;
    stats::Counter memWritebacks_;
    stats::Counter prefetchReads_;
    stats::Counter prefetchDrops_;
    stats::Counter hitsL1_;
    stats::Counter hitsL2_;
    stats::Counter hitsL3_;
};

// ------------------------ inline hot path ------------------------------

inline void
CacheHierarchy::handleL3Victim(const Eviction &ev, Tick when)
{
    if (ev.dirty) {
        ++memWritebacks_;
        backend_.writebackLine(ev.lineAddr, when);
    }
}

inline void
CacheHierarchy::handleL2Victim(const Eviction &ev, Tick when)
{
    if (!ev.dirty)
        return; // non-inclusive: clean victims are dropped silently
    if (auto l3_victim = l3_.fill(ev.lineAddr, true))
        handleL3Victim(*l3_victim, when);
}

inline void
CacheHierarchy::handleL1Victim(const Eviction &ev, Tick when)
{
    if (!ev.dirty)
        return;
    if (auto l2_victim = l2_.fill(ev.lineAddr, true))
        handleL2Victim(*l2_victim, when);
}

inline void
CacheHierarchy::warmLine(Addr line_addr, bool is_write)
{
    ovl_assert((line_addr & kLineMask) == 0, "unaligned line address");
    CacheAccessResult l1_res = l1_.warmAccess(line_addr, is_write);
    if (l1_res.eviction && l1_res.eviction->dirty) {
        if (auto l2_victim =
                l2_.warmFill(l1_res.eviction->lineAddr, true)) {
            if (l2_victim->dirty)
                l3_.warmFill(l2_victim->lineAddr, true);
        }
    }
    if (l1_res.hit)
        return;
    CacheAccessResult l2_res = l2_.warmAccess(line_addr, false);
    if (l2_res.eviction && l2_res.eviction->dirty)
        l3_.warmFill(l2_res.eviction->lineAddr, true);
    if (l2_res.hit)
        return;
    // Train the prefetcher on L2 demand misses like the detailed path,
    // with tag-only fills: the bandwidth gate (prefetchBusyUntil_) is
    // timing state, so warming assumes prefetches are serviced.
    prefetchScratch_.clear();
    prefetcher_.notifyMiss(line_addr, prefetchScratch_);
    for (Addr pf_addr : prefetchScratch_) {
        if (!l1_.isPresent(pf_addr) && !l2_.isPresent(pf_addr) &&
            !l3_.isPresent(pf_addr)) {
            l3_.warmFill(pf_addr, false, true);
        }
    }
    l3_.warmAccess(line_addr, false);
}

inline bool
CacheHierarchy::tryPrefetchFill(Addr line_addr, Tick when)
{
    if (l1_.isPresent(line_addr) || l2_.isPresent(line_addr) ||
        l3_.isPresent(line_addr)) {
        return true;
    }
    // Best-effort bandwidth: prefetches are serviced behind demand
    // traffic at a fixed streaming rate and dropped when the engine
    // falls too far behind (demand-first FR-FCFS scheduling).
    Tick start = std::max(when, prefetchBusyUntil_);
    if (start - when > prefetcher_.params().maxLagCycles) {
        ++prefetchDrops_;
        return false;
    }
    prefetchBusyUntil_ = start + prefetcher_.params().serviceCycles;
    ++prefetchReads_;
    if (auto victim = l3_.fill(line_addr, false, true))
        handleL3Victim(*victim, when);
    return true;
}

inline void
CacheHierarchy::issuePrefetches(Addr trigger_line, Tick when)
{
    prefetchScratch_.clear();
    prefetcher_.notifyMiss(trigger_line, prefetchScratch_);
    for (Addr pf_addr : prefetchScratch_)
        tryPrefetchFill(pf_addr, when);
}

inline Tick
CacheHierarchy::access(Addr line_addr, bool is_write, Tick when,
                       HitLevel *hit_level)
{
    ovl_assert((line_addr & kLineMask) == 0, "unaligned line address");
    ++accesses_;
    OVL_PROF_SCOPE(CacheLookup);

    Tick t = when;
    CacheAccessResult l1_res = l1_.access(line_addr, is_write);
    if (l1_res.eviction)
        handleL1Victim(*l1_res.eviction, when);
    if (l1_res.hit) {
        ++hitsL1_;
        if (hit_level)
            *hit_level = HitLevel::L1;
        return t + params_.l1.hitLatency();
    }
    t += params_.l1.missDetectLatency();
    // Like the trace points, the miss-cascade scope opens only after an
    // L1 miss, keeping the hit fast path identical when profiling.
    OVL_PROF_SCOPE(MissCascade);

    CacheAccessResult l2_res = l2_.access(line_addr, false);
    if (l2_res.eviction)
        handleL2Victim(*l2_res.eviction, when);
    if (l2_res.hit) {
        ++hitsL2_;
        if (hit_level)
            *hit_level = HitLevel::L2;
        Tick done = t + params_.l2.hitLatency();
        // Trace points sit on the L1-miss cascade only, so the L1-hit
        // fast path stays branch-for-branch identical when disabled.
        if (trace::active()) {
            trace::complete("cache", "l2_hit", when, done - when,
                            {{"line", line_addr}});
        }
        return done;
    }
    t += params_.l2.missDetectLatency();

    // Train the prefetcher on L2 demand misses (Table 2).
    issuePrefetches(line_addr, t);

    CacheAccessResult l3_res = l3_.access(line_addr, false);
    if (l3_res.eviction)
        handleL3Victim(*l3_res.eviction, when);
    if (l3_res.hit) {
        ++hitsL3_;
        if (hit_level)
            *hit_level = HitLevel::L3;
        Tick done = t + params_.l3.hitLatency();
        if (trace::active()) {
            trace::complete("cache", "l3_hit", when, done - when,
                            {{"line", line_addr}});
        }
        return done;
    }
    t += params_.l3.missDetectLatency();

    ++memReads_;
    if (hit_level)
        *hit_level = HitLevel::Memory;
    Tick done = backend_.readLine(line_addr, t);
    if (trace::active()) {
        trace::complete("cache", "mem_read", when, done - when,
                        {{"line", line_addr}});
    }
    return done;
}

} // namespace ovl

#endif // OVERLAYSIM_CACHE_HIERARCHY_HH
