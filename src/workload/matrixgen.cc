#include "matrixgen.hh"

#include <algorithm>
#include <cmath>

#include <unordered_set>

#include "common/intmath.hh"
#include "common/logging.hh"
#include "common/random.hh"

namespace ovl
{

namespace
{

/** Values-per-line of the dense layout (8 doubles per 64 B line). */
constexpr unsigned kVpl = DenseLayout::kValuesPerLine;

/**
 * Pick @p count distinct line indices (global line index = row *
 * lines_per_row + line_in_row) according to the family's structure.
 */
std::vector<std::uint64_t>
chooseLines(const MatrixSpec &spec, std::uint64_t count, Rng &rng)
{
    std::uint64_t lines_per_row = spec.cols / kVpl;
    std::uint64_t total_lines = std::uint64_t(spec.rows) * lines_per_row;
    count = std::min(count, total_lines);

    std::unordered_set<std::uint64_t> chosen;
    chosen.reserve(count * 2);

    auto add_near = [&](std::uint64_t center) {
        // Probe outwards from a seed line until a free one is found.
        for (std::uint64_t delta = 0; delta < total_lines; ++delta) {
            std::uint64_t candidate = (center + delta) % total_lines;
            if (chosen.insert(candidate).second)
                return;
        }
    };

    switch (spec.family) {
      case MatrixFamily::Scattered:
        while (chosen.size() < count)
            chosen.insert(rng.below(total_lines));
        break;
      case MatrixFamily::Banded: {
        // Lines near the diagonal, with a band wide enough for `count`.
        std::uint64_t band = std::max<std::uint64_t>(
            1, (count + spec.rows - 1) / spec.rows * 2);
        while (chosen.size() < count) {
            std::uint32_t r = std::uint32_t(rng.below(spec.rows));
            std::uint64_t diag_line =
                (std::uint64_t(r) * spec.cols / spec.rows) / kVpl;
            std::uint64_t offset = rng.below(band);
            std::uint64_t line_in_row =
                std::min(lines_per_row - 1,
                         diag_line >= band / 2 ? diag_line - band / 2 +
                                                     offset
                                               : offset);
            add_near(std::uint64_t(r) * lines_per_row + line_in_row);
        }
        break;
      }
      case MatrixFamily::BlockDense:
        while (chosen.size() < count) {
            // Runs of consecutive non-zero lines around the configured
            // mean. Long runs (>= one page) start page-aligned and span
            // whole pages, the structure of dense-block matrices like
            // raefsky4 — this is what lets the OMS store them with no
            // segment fragmentation.
            std::uint64_t run = spec.blockRunLines / 2 +
                                rng.below(std::max(1u,
                                                   spec.blockRunLines));
            std::uint64_t start;
            if (spec.blockRunLines >= kLinesPerPage) {
                run = roundUp(std::max<std::uint64_t>(run, kLinesPerPage),
                              kLinesPerPage);
                start = rng.below(total_lines / kLinesPerPage) *
                        kLinesPerPage;
            } else {
                start = rng.below(total_lines);
            }
            for (std::uint64_t i = 0; i < run && chosen.size() < count; ++i)
                chosen.insert((start + i) % total_lines);
        }
        break;
      case MatrixFamily::PowerLaw:
        while (chosen.size() < count) {
            // Row popularity ~ 1/(rank+1): rank via inverse transform.
            double u = rng.uniform();
            auto rank = std::uint32_t(
                std::pow(double(spec.rows), u) - 1.0);
            rank = std::min(rank, spec.rows - 1);
            std::uint64_t line_in_row = rng.below(lines_per_row);
            add_near(std::uint64_t(rank) * lines_per_row + line_in_row);
        }
        break;
    }
    return std::vector<std::uint64_t>(chosen.begin(), chosen.end());
}

} // namespace

CooMatrix
generateMatrix(const MatrixSpec &spec)
{
    ovl_assert(spec.cols % kVpl == 0, "cols must be a multiple of 8");
    ovl_assert(spec.targetL >= 1.0 && spec.targetL <= double(kVpl),
               "target L must be in [1, 8]");
    Rng rng(spec.seed);

    std::uint64_t num_lines = std::max<std::uint64_t>(
        1, std::uint64_t(std::llround(double(spec.nnz) / spec.targetL)));
    std::vector<std::uint64_t> lines = chooseLines(spec, num_lines, rng);
    num_lines = lines.size();

    // Distribute the non-zeros across the chosen lines as evenly as the
    // integer split allows; this pins the realized L to the target.
    std::uint64_t nnz = std::min<std::uint64_t>(spec.nnz,
                                                num_lines * kVpl);
    std::uint64_t base = nnz / num_lines;
    std::uint64_t extra = nnz % num_lines;

    std::uint64_t lines_per_row = spec.cols / kVpl;
    CooMatrix coo;
    coo.name = spec.name;
    coo.rows = spec.rows;
    coo.cols = spec.cols;
    coo.entries.reserve(nnz);

    for (std::uint64_t i = 0; i < num_lines; ++i) {
        std::uint64_t fill = base + (i < extra ? 1 : 0);
        if (fill == 0)
            fill = 1;
        std::uint32_t row = std::uint32_t(lines[i] / lines_per_row);
        std::uint32_t col0 =
            std::uint32_t(lines[i] % lines_per_row) * kVpl;
        // Random distinct slots within the line.
        unsigned slots[kVpl];
        for (unsigned s = 0; s < kVpl; ++s)
            slots[s] = s;
        for (unsigned s = 0; s < fill; ++s) {
            unsigned j = s + unsigned(rng.below(kVpl - s));
            std::swap(slots[s], slots[j]);
        }
        for (unsigned s = 0; s < fill; ++s) {
            double value = 0.5 + rng.uniform();
            coo.entries.push_back(
                CooEntry{row, col0 + slots[s], value});
        }
    }
    coo.canonicalize();
    return coo;
}

std::vector<MatrixSpec>
sparseSuite87()
{
    // 87 matrices: 53 with L in [1.05, 4.5) and 34 with L in [4.5, 8.0],
    // matching the paper's split ("for 34 of the 87 real-world matrices,
    // overlays reduce memory capacity ... compared to CSR", §5.2).
    // Structure correlates with L, as in real matrices: low-L matrices
    // scatter their few-per-line non-zeros (poisson3Db-like), high-L
    // matrices are block-dense with page-filling runs (raefsky4-like).
    std::vector<MatrixSpec> suite;
    suite.reserve(87);

    auto push = [&](double l, std::size_t idx) {
        MatrixSpec spec;
        if (l < 3.0) {
            spec.family = idx % 2 ? MatrixFamily::PowerLaw
                                  : MatrixFamily::Scattered;
        } else if (l < 4.5) {
            spec.family = idx % 2 ? MatrixFamily::Banded
                                  : MatrixFamily::BlockDense;
            spec.blockRunLines = 24;
        } else {
            spec.family = MatrixFamily::BlockDense;
            spec.blockRunLines = idx % 2 ? 128 : 64; // page-dense blocks
        }
        spec.rows = 1024;
        spec.cols = 1024;
        spec.nnz = 60'000;
        spec.targetL = l;
        spec.seed = 1000 + idx;
        char buf[64];
        const char *family_tag[] = {"scat", "band", "blk", "pow"};
        std::snprintf(buf, sizeof(buf), "synth_%s_L%.2f",
                      family_tag[std::size_t(spec.family)], l);
        spec.name = buf;
        suite.push_back(spec);
        return suite.size() - 1;
    };

    for (unsigned i = 0; i < 53; ++i)
        push(1.05 + (4.5 - 1.05) * double(i) / 52.0, i);
    for (unsigned i = 0; i < 34; ++i)
        push(4.5 + (8.0 - 4.5) * double(i + 1) / 34.0, 53 + i);

    // Name the extremes after their UF counterparts (§5.2).
    suite.front().name = "poisson3Db";
    suite.front().targetL = 1.09;
    suite.back().name = "raefsky4";
    suite.back().targetL = 8.0;
    return suite;
}

CooMatrix
generateUniformSparsity(std::uint32_t rows, std::uint32_t cols,
                        double zero_line_fraction, std::uint64_t seed)
{
    ovl_assert(zero_line_fraction >= 0.0 && zero_line_fraction <= 1.0,
               "fraction out of range");
    Rng rng(seed);
    CooMatrix coo;
    coo.rows = rows;
    coo.cols = cols;
    std::uint64_t lines_per_row = cols / kVpl;
    for (std::uint32_t r = 0; r < rows; ++r) {
        for (std::uint64_t l = 0; l < lines_per_row; ++l) {
            if (rng.chance(zero_line_fraction))
                continue;
            for (unsigned s = 0; s < kVpl; ++s) {
                coo.entries.push_back(CooEntry{
                    r, std::uint32_t(l * kVpl + s), 0.5 + rng.uniform()});
            }
        }
    }
    coo.name = "uniform_sparsity";
    coo.canonicalize();
    return coo;
}

} // namespace ovl
