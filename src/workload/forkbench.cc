#include "forkbench.hh"

#include <algorithm>
#include <array>
#include <chrono>
#include <cmath>

#include "common/logging.hh"
#include "common/random.hh"
#include "cpu/ooo_core.hh"
#include "sim/snapshot.hh"
#include "sim/stats_sampler.hh"
#include "system/system.hh"

namespace ovl
{

namespace
{

constexpr Addr kHeapBase = 0x1000'0000;

/** Precomputed post-fork write schedule: line-granular virtual addrs. */
struct WriteSchedule
{
    std::vector<Addr> addrs;
    std::size_t next = 0;

    bool exhausted() const { return next >= addrs.size(); }

    Addr
    take()
    {
        return addrs[next++];
    }
};

WriteSchedule
buildSchedule(const ForkBenchParams &p, Rng &rng)
{
    WriteSchedule sched;
    sched.addrs = buildWriteSchedule(p, rng);
    return sched;
}

} // namespace

std::vector<Addr>
buildWriteSchedule(const ForkBenchParams &p, Rng &rng)
{
    // Choose the dirty pages. Streaming sweeps dirty a contiguous
    // region (a grid pass); the other patterns dirty pages scattered
    // over the footprint.
    std::vector<std::uint64_t> pages;
    if (p.pattern == WritePattern::Streaming) {
        std::uint64_t start = p.footprintPages > p.dirtyPages
                                  ? rng.below(p.footprintPages -
                                              p.dirtyPages)
                                  : 0;
        for (std::uint64_t i = 0; i < p.dirtyPages; ++i)
            pages.push_back(start + i);
    } else {
        pages.resize(p.footprintPages);
        for (std::uint64_t i = 0; i < p.footprintPages; ++i)
            pages[i] = i;
        for (std::uint64_t i = 0; i < p.dirtyPages; ++i) {
            std::uint64_t j = i + rng.below(p.footprintPages - i);
            std::swap(pages[i], pages[j]);
        }
        pages.resize(p.dirtyPages);
    }

    // Per page, the lines that will be written: an ascending prefix for
    // the streaming sweep, a random subset otherwise.
    std::vector<std::vector<unsigned>> lines(p.dirtyPages);
    unsigned count = std::min<unsigned>(p.linesPerDirtyPage, kLinesPerPage);
    for (auto &page_lines : lines) {
        if (p.pattern == WritePattern::Streaming) {
            for (unsigned l = 0; l < count; ++l)
                page_lines.push_back(l);
            continue;
        }
        unsigned all[kLinesPerPage];
        for (unsigned l = 0; l < kLinesPerPage; ++l)
            all[l] = l;
        for (unsigned l = 0; l < count; ++l) {
            unsigned j = l + unsigned(rng.below(kLinesPerPage - l));
            std::swap(all[l], all[j]);
        }
        page_lines.assign(all, all + count);
    }

    std::vector<Addr> schedule;
    schedule.reserve(p.dirtyPages * count);
    switch (p.pattern) {
      case WritePattern::Streaming:
      case WritePattern::Clustered:
        // Page by page; Streaming is fully sequential (ascending pages
        // and lines), Clustered hops to random pages but writes each
        // page's (random-order) lines back to back.
        for (std::size_t pg = 0; pg < lines.size(); ++pg) {
            for (unsigned l : lines[pg]) {
                schedule.push_back(kHeapBase + pages[pg] * kPageSize +
                                   Addr(l) * kLineSize);
            }
        }
        break;
      case WritePattern::Windowed: {
        // Writes rotate over a bounded window of active pages (like a
        // SPEC working set): a given page's successive line writes are
        // ~window writes apart ("well separated in time", §5.1), while
        // the active footprint stays TLB-resident.
        constexpr std::size_t kWindow = 24;
        std::vector<std::size_t> active;       // page indices in window
        std::vector<std::size_t> next_line(p.dirtyPages, 0);
        std::size_t next_page = 0;
        while (active.size() < kWindow && next_page < lines.size())
            active.push_back(next_page++);
        std::size_t cursor = 0;
        while (!active.empty()) {
            cursor = cursor % active.size();
            std::size_t pg = active[cursor];
            schedule.push_back(kHeapBase + pages[pg] * kPageSize +
                               Addr(lines[pg][next_line[pg]]) *
                                   kLineSize);
            if (++next_line[pg] >= lines[pg].size()) {
                // Page exhausted: replace it in the window.
                if (next_page < lines.size()) {
                    active[cursor] = next_page++;
                } else {
                    active.erase(active.begin() +
                                 std::ptrdiff_t(cursor));
                }
            }
            ++cursor;
        }
        break;
      }
    }
    return schedule;
}

namespace
{

/**
 * The complete between-iteration state of the steady-state generator
 * loop, lifted out of streamPhaseGenResumable's locals so a checkpoint
 * can capture it mid-phase and a restore can continue the loop with the
 * exact remaining op stream (same RNG draws, same order).
 */
struct StreamPhaseState
{
    /** Recent-reuse window (the register/stack/L1-resident share). */
    static constexpr std::uint32_t kRecent = 64;

    std::uint64_t budget = 0; ///< instructions left in the phase
    WriteSchedule schedule;
    bool hasSchedule = false;
    std::vector<Addr> rewritePool; ///< lines already written (re-writes)
    std::uint32_t burstRemaining = 0; ///< clustered-pattern page burst
    std::array<Addr, kRecent> recent{};
    std::uint32_t recentCount = 0;
    std::uint32_t recentHead = 0;
    Addr streamLine = 0; ///< sequential stream cursor (line index)
    /**
     * Fresh-write pacing so the schedule spans the whole epoch (a SPEC
     * process dirties pages steadily, not in an initial burst). Fixed at
     * phase start from the full schedule size.
     */
    double freshFraction = 1.0;

    void serialize(snapshot::Writer &w) const;
    void deserialize(snapshot::Reader &r);
};

void
StreamPhaseState::serialize(snapshot::Writer &w) const
{
    w.beginSection("PHST");
    w.u64(budget);
    w.b(hasSchedule);
    if (hasSchedule) {
        w.u64(schedule.addrs.size());
        for (Addr a : schedule.addrs)
            w.u64(a);
        w.u64(schedule.next);
    }
    w.u64(rewritePool.size());
    for (Addr a : rewritePool)
        w.u64(a);
    w.u32(burstRemaining);
    for (Addr a : recent)
        w.u64(a);
    w.u32(recentCount);
    w.u32(recentHead);
    w.u64(streamLine);
    w.f64(freshFraction);
    w.endSection();
}

void
StreamPhaseState::deserialize(snapshot::Reader &r)
{
    r.expectSection("PHST");
    budget = r.u64();
    hasSchedule = r.b();
    schedule = WriteSchedule{};
    if (hasSchedule) {
        std::uint64_t n = r.count(8);
        schedule.addrs.resize(std::size_t(n));
        for (Addr &a : schedule.addrs)
            a = r.u64();
        std::uint64_t next = r.u64();
        if (next > schedule.addrs.size()) {
            r.fail("write-schedule cursor " + std::to_string(next) +
                   " past its " + std::to_string(schedule.addrs.size()) +
                   " entries");
        }
        schedule.next = std::size_t(next);
    }
    std::uint64_t pool = r.count(8);
    rewritePool.resize(std::size_t(pool));
    for (Addr &a : rewritePool)
        a = r.u64();
    burstRemaining = r.u32();
    for (Addr &a : recent)
        a = r.u64();
    recentCount = r.u32();
    recentHead = r.u32();
    if (recentCount > kRecent || recentHead >= kRecent) {
        r.fail("recent-window cursor out of range (count " +
               std::to_string(recentCount) + ", head " +
               std::to_string(recentHead) + ")");
    }
    streamLine = r.u64();
    freshFraction = r.f64();
    r.endSection();
}

/** Phase-start state: full budget, cursors at zero, pacing computed. */
StreamPhaseState
makePhaseState(const ForkBenchParams &p, std::uint64_t num_instructions,
               WriteSchedule schedule, bool has_schedule)
{
    StreamPhaseState st;
    st.budget = num_instructions;
    st.schedule = std::move(schedule);
    st.hasSchedule = has_schedule;
    if (has_schedule) {
        double expected_writes = double(num_instructions) *
                                 p.memOpFraction * p.writeFraction;
        st.freshFraction = expected_writes > 0
                               ? double(st.schedule.addrs.size()) /
                                     expected_writes
                               : 1.0;
        st.freshFraction = std::min(1.0, st.freshFraction);
    }
    return st;
}

/**
 * Emit the benchmark's steady-state mix until @p st.budget runs out. The
 * read stream mimics SPEC-class locality: most accesses re-touch
 * recently used lines (L1 hits), a share streams sequentially through
 * the footprint (prefetch-friendly), and a tail jumps randomly within
 * the hot set — overall miss rates in the few-percent range rather than
 * the cache-hostile uniform-random extreme.
 *
 * The generator is a template over the execution sink so the same
 * op stream (same RNG draws, same order) can drive the detailed core or
 * a sampled-simulation sink that switches between detailed execution and
 * functional fast-forward per window (DESIGN.md §10).
 *
 * @p stop is polled between loop iterations (checkpoint boundaries):
 * returning true suspends the phase with @p st and the RNG holding
 * exactly the state a later call needs to continue the identical stream.
 */
template <typename Exec, typename Stop>
void
streamPhaseGenResumable(Exec &&execute, const ForkBenchParams &p, Rng &rng,
                        StreamPhaseState &st, Stop &&stop)
{
    WriteSchedule *schedule = st.hasSchedule ? &st.schedule : nullptr;
    auto touch = [&](Addr a) {
        st.recent[st.recentHead] = a;
        st.recentHead = (st.recentHead + 1) % StreamPhaseState::kRecent;
        st.recentCount = std::min<std::uint32_t>(st.recentCount + 1,
                                                 StreamPhaseState::kRecent);
    };

    Addr footprint_lines = p.footprintPages * kLinesPerPage;

    while (st.budget > 0) {
        // Non-memory instructions between memory ops.
        double per_mem = 1.0 / p.memOpFraction - 1.0;
        std::uint32_t compute = std::uint32_t(per_mem);
        if (rng.chance(per_mem - compute))
            ++compute;
        if (compute > 0) {
            execute(TraceOp::compute(compute));
            st.budget -= std::min<std::uint64_t>(st.budget, compute);
        }
        if (st.budget == 0)
            break;

        bool is_write = rng.chance(p.writeFraction);
        if (is_write && schedule != nullptr) {
            Addr addr;
            bool take_fresh;
            if (p.pattern == WritePattern::Clustered) {
                // Whole-page bursts: once a page's rewrite starts, its
                // lines are written back to back ("close in time").
                if (st.burstRemaining == 0 && !schedule->exhausted() &&
                    (st.rewritePool.empty() ||
                     rng.chance(st.freshFraction / p.linesPerDirtyPage))) {
                    st.burstRemaining = p.linesPerDirtyPage;
                }
                take_fresh = st.burstRemaining > 0 &&
                             !schedule->exhausted();
                if (take_fresh)
                    --st.burstRemaining;
            } else {
                take_fresh = !schedule->exhausted() &&
                             (st.rewritePool.empty() ||
                              rng.chance(st.freshFraction));
            }
            if (take_fresh) {
                addr = schedule->take();
                st.rewritePool.push_back(addr);
                if (p.readModifyWrite) {
                    // Real update streams read the data they modify
                    // (read-modify-write); the load brings the line into
                    // the cache in both mechanisms' worlds.
                    execute(TraceOp::load(addr));
                    if (st.budget > 1)
                        --st.budget;
                }
            } else if (!st.rewritePool.empty()) {
                // Re-writes favour recently dirtied lines (temporal
                // locality of real write streams).
                std::size_t window = std::min<std::size_t>(
                    st.rewritePool.size(), 512);
                std::size_t idx = st.rewritePool.size() - 1 -
                                  rng.below(window);
                addr = st.rewritePool[idx];
            } else {
                addr = kHeapBase; // degenerate tiny schedule
            }
            execute(TraceOp::store(addr));
            touch(addr);
        } else if (is_write) {
            // Warmup writes: anywhere in the footprint.
            std::uint64_t page = rng.below(p.footprintPages);
            Addr addr = kHeapBase + page * kPageSize +
                        rng.below(kLinesPerPage) * kLineSize;
            execute(TraceOp::store(addr));
            touch(addr);
        } else {
            Addr addr;
            double dice = rng.uniform();
            if (dice < p.recentReadShare && st.recentCount > 0) {
                // Re-use a recently touched line: an L1 hit.
                addr = st.recent[rng.below(st.recentCount)];
            } else if (dice < p.recentReadShare + p.streamReadShare) {
                // Sequential streaming through the footprint.
                st.streamLine = (st.streamLine + 1) % footprint_lines;
                addr = kHeapBase + st.streamLine * kLineSize;
            } else {
                // Random within the hot set.
                std::uint64_t page = rng.below(p.hotPages);
                addr = kHeapBase + page * kPageSize +
                       rng.below(kLinesPerPage) * kLineSize;
            }
            execute(TraceOp::load(addr));
            touch(addr);
        }
        --st.budget;
        if (st.budget > 0 && stop())
            return;
    }
}

/** Run a whole phase in one go (the non-checkpointing callers). */
template <typename Exec>
void
streamPhaseGen(Exec &&execute, const ForkBenchParams &p, Rng &rng,
               std::uint64_t num_instructions, WriteSchedule *schedule)
{
    StreamPhaseState st = makePhaseState(
        p, num_instructions,
        schedule != nullptr ? std::move(*schedule) : WriteSchedule{},
        schedule != nullptr);
    streamPhaseGenResumable(std::forward<Exec>(execute), p, rng, st,
                            [] { return false; });
    if (schedule != nullptr)
        *schedule = std::move(st.schedule);
}

/** The classic detailed-only phase: every op goes through the core. */
void
streamPhase(OooCore &core, Asid asid, const ForkBenchParams &p, Rng &rng,
            std::uint64_t num_instructions, WriteSchedule *schedule,
            std::vector<TraceOp> *record = nullptr)
{
    streamPhaseGen(
        [&](const TraceOp &op) {
            core.executeOp(asid, op);
            if (record != nullptr)
                record->push_back(op);
        },
        p, rng, num_instructions, schedule);
}

} // namespace

const std::vector<ForkBenchParams> &
forkBenchSuite()
{
    auto make = [](std::string name, unsigned type, std::uint64_t footprint,
                   std::uint64_t hot, std::uint64_t dirty, unsigned lines,
                   WritePattern pattern, double write_frac,
                   std::uint64_t seed) {
        ForkBenchParams p;
        p.name = std::move(name);
        p.type = type;
        p.footprintPages = footprint;
        p.hotPages = hot;
        p.dirtyPages = dirty;
        p.linesPerDirtyPage = lines;
        p.pattern = pattern;
        p.writeFraction = write_frac;
        p.seed = seed;
        if (pattern == WritePattern::Streaming) {
            // Bandwidth-bound streaming codes: more memory traffic,
            // stream-dominated reads.
            p.memOpFraction = 0.45;
            p.recentReadShare = 0.40;
            p.streamReadShare = 0.50;
        }
        if (pattern == WritePattern::Clustered) {
            // cactus rewrites whole pages wholesale, in dense bursts.
            p.readModifyWrite = false;
        }
        return p;
    };

    constexpr auto kWin = WritePattern::Windowed;
    constexpr auto kStream = WritePattern::Streaming;
    constexpr auto kClust = WritePattern::Clustered;
    static const std::vector<ForkBenchParams> suite = {
        // Type 1: low write working set.
        make("bwaves", 1, 2560, 192, 24, 6, kWin, 0.20, 11),
        make("hmmer", 1, 1536, 128, 40, 10, kWin, 0.25, 12),
        make("libq", 1, 1024, 96, 16, 4, kWin, 0.18, 13),
        make("sphinx3", 1, 2048, 160, 56, 12, kWin, 0.22, 14),
        make("tonto", 1, 1792, 128, 32, 8, kWin, 0.24, 15),
        // Type 2: almost all lines of each dirtied page are written.
        // All but cactus are streaming sweeps (bandwidth-bound).
        make("bzip2", 2, 3072, 256, 700, 60, kStream, 0.40, 21),
        make("cactus", 2, 2560, 224, 520, 64, kClust, 0.42, 22),
        make("lbm", 2, 4096, 320, 900, 62, kStream, 0.45, 23),
        make("leslie3d", 2, 3584, 288, 650, 58, kStream, 0.40, 24),
        make("soplex", 2, 2816, 224, 540, 56, kStream, 0.38, 25),
        // Type 3: only a few lines of each dirtied page are written.
        make("astar", 3, 4096, 320, 640, 5, kWin, 0.35, 31),
        make("Gems", 3, 5120, 384, 800, 7, kWin, 0.38, 32),
        make("mcf", 3, 6144, 448, 1000, 4, kWin, 0.40, 33),
        make("milc", 3, 3584, 288, 640, 6, kWin, 0.34, 34),
        make("omnet", 3, 3072, 256, 520, 8, kWin, 0.33, 35),
    };
    return suite;
}

const ForkBenchParams &
forkBenchByName(const std::string &name)
{
    for (const ForkBenchParams &p : forkBenchSuite()) {
        if (p.name == name)
            return p;
    }
    ovl_fatal("unknown fork benchmark: %s", name.c_str());
}

ForkBenchResult
runForkBench(const ForkBenchParams &params, ForkMode mode,
             SystemConfig config, std::ostream *dump_stats,
             std::vector<TraceOp> *record, StatsSampler *sampler,
             std::ostream *dump_stats_json)
{
    config.name = params.name;
    System system(config);
    OooCore core(params.name + ".core", system);
    Rng rng(params.seed);

    if (sampler != nullptr)
        system.attachStatsSampler(sampler, 0);

    Asid parent = system.createProcess();
    system.mapAnon(parent, kHeapBase, params.footprintPages * kPageSize);

    // Warmup: populate caches/TLBs and dirty the address space so the
    // fork has real pages to share.
    core.beginEpoch(0);
    streamPhase(core, parent, params, rng, params.warmupInstructions,
                nullptr);
    Tick t = core.finishEpoch();

    // fork(): the child idles (as in §5.1); the parent keeps running.
    Tick fork_done = t;
    system.fork(parent, mode, t, &fork_done);
    system.markMemoryBaseline();
    system.resetStats();

    WriteSchedule schedule = buildSchedule(params, rng);
    core.beginEpoch(fork_done);
    streamPhase(core, parent, params, rng, params.postForkInstructions,
                &schedule, record);
    Tick end = core.finishEpoch();

    // Memory accounting happens at steady state: dirty overlay lines
    // still in the caches get their OMS slots on eviction (§4.3.3), so
    // force the writebacks before measuring (the flush is excluded from
    // the measured epoch).
    system.caches().flushAll(end);

    if (sampler != nullptr) {
        sampler->finish(end);
        system.detachStatsSampler();
    }

    ForkBenchResult res;
    res.name = params.name;
    res.type = params.type;
    res.mode = mode;
    res.additionalMemoryMB =
        double(system.additionalMemoryBytes()) / double(1_MiB);
    res.cpi = core.epochCpi();
    res.cowFaults = system.cowFaults();
    res.overlayingWrites = system.overlayingWrites();
    res.forkLatency = fork_done - t;
    if (dump_stats != nullptr) {
        system.dumpAllStats(*dump_stats);
        core.dumpStats(*dump_stats);
    }
    if (dump_stats_json != nullptr)
        system.dumpAllStatsJson(*dump_stats_json);
    return res;
}

ForkBenchSampledResult
runForkBenchSampled(const ForkBenchParams &params, ForkMode mode,
                    SystemConfig config, const SampledSimParams &sampled,
                    StatsSampler *sampler)
{
    ovl_assert(sampled.intervalInstructions > 0,
               "sampled simulation needs a window size");
    std::uint64_t detail =
        sampled.detailedInstructions != 0
            ? sampled.detailedInstructions
            : std::max<std::uint64_t>(1, sampled.intervalInstructions / 10);
    ovl_assert(detail <= sampled.intervalInstructions,
               "detailed prefix larger than the window");
    ovl_assert(config.promoteThresholdLines >= kLinesPerPage,
               "sampled simulation requires promotion disabled");

    ForkBenchSampledResult out;

    // ------------------------- sampled run ----------------------------
    {
        config.name = params.name;
        System system(config);
        OooCore core(params.name + ".core", system);
        Rng rng(params.seed);
        if (sampler != nullptr)
            system.attachStatsSampler(sampler, 0);

        Asid parent = system.createProcess();
        system.mapAnon(parent, kHeapBase,
                       params.footprintPages * kPageSize);
        core.beginEpoch(0);
        streamPhase(core, parent, params, rng, params.warmupInstructions,
                    nullptr);
        Tick t = core.finishEpoch();
        Tick fork_done = t;
        system.fork(parent, mode, t, &fork_done);
        system.markMemoryBaseline();
        system.resetStats();

        WriteSchedule schedule = buildSchedule(params, rng);

        // Windowed sink: a detailed prefix measured as its own core
        // epoch, then functional fast-forward to the window boundary.
        // Simulated time only advances inside detailed prefixes.
        Tick cursor = fork_done;
        Tick detail_start = cursor;
        std::uint64_t win_instr = 0;
        bool in_detail = true;
        // The first post-fork window always runs fully detailed: CoW
        // faults and overlaying writes are densest right after the fork,
        // so extrapolating a prefix of that transient 10x overestimates
        // it badly. Sampling applies to the steady state that follows.
        bool first_window = true;
        SampledWindow win;
        core.beginEpoch(cursor);

        // Host-time split: one steady_clock stamp per segment boundary
        // (detailed→functional, window close), charged to the segment
        // that just ended. Boundary-only cost, never touches sim state.
        using host_clock = std::chrono::steady_clock;
        host_clock::time_point seg_start = host_clock::now();
        auto charge_segment = [&](double &bucket) {
            host_clock::time_point now = host_clock::now();
            bucket +=
                std::chrono::duration<double>(now - seg_start).count();
            seg_start = now;
        };

        auto close_detail = [&]() {
            cursor = core.finishEpoch();
            win.detailedCycles = cursor - detail_start;
            win.detailedInstructions = win_instr;
            charge_segment(win.detailedHostSeconds);
        };
        auto close_window = [&]() {
            if (in_detail)
                close_detail(); // window never left its detailed prefix
            else
                charge_segment(win.functionalHostSeconds);
            win.instructions = win_instr;
            win.estimatedCycles =
                win.detailedInstructions != 0
                    ? double(win.detailedCycles) *
                          (double(win.instructions) /
                           double(win.detailedInstructions))
                    : 0.0;
            out.windows.push_back(win);
            win = SampledWindow{};
            win_instr = 0;
            in_detail = true;
            first_window = false;
            detail_start = cursor;
            core.beginEpoch(cursor);
        };

        streamPhaseGen(
            [&](const TraceOp &op) {
                if (in_detail) {
                    core.executeOp(parent, op);
                } else if (op.kind != TraceOp::Kind::Compute) {
                    system.accessFunctional(
                        parent, op.vaddr,
                        op.kind == TraceOp::Kind::Store,
                        core.coreIndex());
                }
                win_instr += op.kind == TraceOp::Kind::Compute
                                 ? op.count
                                 : 1;
                std::uint64_t cur_detail =
                    first_window ? sampled.intervalInstructions : detail;
                if (in_detail && win_instr >= cur_detail &&
                    cur_detail < sampled.intervalInstructions) {
                    close_detail();
                    in_detail = false;
                }
                if (win_instr >= sampled.intervalInstructions)
                    close_window();
            },
            params, rng, params.postForkInstructions, &schedule);
        if (win_instr > 0)
            close_window();
        cursor = core.finishEpoch(); // retire the epoch close_window armed

        system.caches().flushAll(cursor);
        if (sampler != nullptr) {
            sampler->finish(cursor);
            system.detachStatsSampler();
        }

        double est_cycles = 0.0;
        for (const SampledWindow &w : out.windows) {
            est_cycles += w.estimatedCycles;
            out.totalInstructions += w.instructions;
            out.detailedInstructions += w.detailedInstructions;
            out.detailedHostSeconds += w.detailedHostSeconds;
            out.functionalHostSeconds += w.functionalHostSeconds;
        }
        out.sampled.name = params.name;
        out.sampled.type = params.type;
        out.sampled.mode = mode;
        out.sampled.additionalMemoryMB =
            double(system.additionalMemoryBytes()) / double(1_MiB);
        out.sampled.cpi = out.totalInstructions != 0
                              ? est_cycles / double(out.totalInstructions)
                              : 0.0;
        out.sampled.cowFaults = system.cowFaults();
        out.sampled.overlayingWrites = system.overlayingWrites();
        out.sampled.forkLatency = fork_done - t;
    }

    if (!sampled.compareFull)
        return out;

    // ----------------------- full-detail twin -------------------------
    // One monolithic epoch over the identical op stream — byte-identical
    // to runForkBench — with issue-cursor snapshots at the same window
    // boundaries the sampled run used.
    {
        config.name = params.name;
        System system(config);
        OooCore core(params.name + ".core", system);
        Rng rng(params.seed);

        Asid parent = system.createProcess();
        system.mapAnon(parent, kHeapBase,
                       params.footprintPages * kPageSize);
        core.beginEpoch(0);
        streamPhase(core, parent, params, rng, params.warmupInstructions,
                    nullptr);
        Tick t = core.finishEpoch();
        Tick fork_done = t;
        system.fork(parent, mode, t, &fork_done);
        system.markMemoryBaseline();
        system.resetStats();

        WriteSchedule schedule = buildSchedule(params, rng);
        core.beginEpoch(fork_done);
        std::size_t wi = 0;
        std::uint64_t win_instr = 0;
        Tick last_mark = fork_done;
        streamPhaseGen(
            [&](const TraceOp &op) {
                core.executeOp(parent, op);
                win_instr += op.kind == TraceOp::Kind::Compute
                                 ? op.count
                                 : 1;
                if (win_instr >= sampled.intervalInstructions) {
                    Tick now = core.currentCycle();
                    if (wi < out.windows.size())
                        out.windows[wi].fullCycles = now - last_mark;
                    last_mark = now;
                    ++wi;
                    win_instr = 0;
                }
            },
            params, rng, params.postForkInstructions, &schedule);
        Tick end = core.finishEpoch();
        if (win_instr > 0 && wi < out.windows.size())
            out.windows[wi].fullCycles = end - last_mark;
        system.caches().flushAll(end);
        out.fullCpi = core.epochCpi();
    }

    double err_sum = 0.0;
    unsigned err_count = 0;
    for (const SampledWindow &w : out.windows) {
        if (w.fullCycles == 0)
            continue;
        double err = 100.0 *
                     std::abs(w.estimatedCycles - double(w.fullCycles)) /
                     double(w.fullCycles);
        err_sum += err;
        out.maxWindowErrorPct = std::max(out.maxWindowErrorPct, err);
        ++err_count;
    }
    out.meanWindowErrorPct = err_count != 0 ? err_sum / err_count : 0.0;
    out.cpiErrorPct =
        out.fullCpi != 0.0
            ? 100.0 * std::abs(out.sampled.cpi - out.fullCpi) / out.fullCpi
            : 0.0;
    return out;
}

namespace
{

/** The shared measurement tail of every full-detail run variant. */
ForkBenchResult
measureResult(System &system, OooCore &core, const ForkBenchParams &params,
              ForkMode mode, Tick fork_latency)
{
    ForkBenchResult res;
    res.name = params.name;
    res.type = params.type;
    res.mode = mode;
    res.additionalMemoryMB =
        double(system.additionalMemoryBytes()) / double(1_MiB);
    res.cpi = core.epochCpi();
    res.cowFaults = system.cowFaults();
    res.overlayingWrites = system.overlayingWrites();
    res.forkLatency = fork_latency;
    return res;
}

} // namespace

ForkBenchWarmState
prepareForkBenchWarmState(const ForkBenchParams &params, SystemConfig config)
{
    config.name = params.name;

    System system(config);
    OooCore core(params.name + ".core", system);
    Rng rng(params.seed);

    Asid parent = system.createProcess();
    system.mapAnon(parent, kHeapBase, params.footprintPages * kPageSize);

    core.beginEpoch(0);
    streamPhase(core, parent, params, rng, params.warmupInstructions,
                nullptr);

    ForkBenchWarmState warm;
    warm.params = params;
    warm.config = config;
    warm.warmupEnd = core.finishEpoch();
    warm.parent = parent;

    snapshot::Writer w;
    w.beginSection("WARM");
    system.serialize(w);
    core.serialize(w);
    for (std::uint64_t v : rng.rawState())
        w.u64(v);
    w.endSection();
    warm.machine = w.takeBuffer();
    return warm;
}

ForkBenchResult
runForkBenchFromWarmState(const ForkBenchWarmState &warm, ForkMode mode,
                          const SystemConfig *config_override,
                          std::ostream *dump_stats,
                          std::vector<TraceOp> *record)
{
    const ForkBenchParams &params = warm.params;
    SystemConfig config = config_override != nullptr ? *config_override
                                                     : warm.config;
    config.name = params.name;

    System system(config);
    OooCore core(params.name + ".core", system);
    Rng rng(params.seed);

    snapshot::Reader r(warm.machine);
    r.expectSection("WARM");
    system.deserialize(r);
    core.deserialize(r);
    std::array<std::uint64_t, 4> raw;
    for (std::uint64_t &v : raw)
        v = r.u64();
    rng.setRawState(raw);
    r.endSection();
    if (!r.atEnd())
        r.fail("trailing bytes after warm-state payload");

    // From here on the run is instruction-for-instruction the tail of
    // runForkBench: fork, rebase the stats, measure the post-fork epoch.
    Asid parent = warm.parent;
    Tick t = warm.warmupEnd;
    Tick fork_done = t;
    system.fork(parent, mode, t, &fork_done);
    system.markMemoryBaseline();
    system.resetStats();

    WriteSchedule schedule = buildSchedule(params, rng);
    core.beginEpoch(fork_done);
    streamPhase(core, parent, params, rng, params.postForkInstructions,
                &schedule, record);
    Tick end = core.finishEpoch();
    system.caches().flushAll(end);

    ForkBenchResult res =
        measureResult(system, core, params, mode, fork_done - t);
    if (dump_stats != nullptr) {
        system.dumpAllStats(*dump_stats);
        core.dumpStats(*dump_stats);
    }
    return res;
}

std::optional<ForkBenchResult>
runForkBenchCheckpointed(const ForkBenchParams &params, ForkMode mode,
                         SystemConfig config,
                         const ForkBenchCheckpointOptions &ckpt)
{
    ovl_assert(!ckpt.path.empty(), "checkpointing needs an output path");
    ovl_assert(ckpt.everyTicks != 0 || ckpt.atTick != 0,
               "checkpointing needs --checkpoint-every or --at-tick");

    config.name = params.name;
    System system(config);
    OooCore core(params.name + ".core", system);
    Rng rng(params.seed);

    Asid parent = system.createProcess();
    system.mapAnon(parent, kHeapBase, params.footprintPages * kPageSize);

    core.beginEpoch(0);
    streamPhase(core, parent, params, rng, params.warmupInstructions,
                nullptr);
    Tick t = core.finishEpoch();
    Tick fork_done = t;
    system.fork(parent, mode, t, &fork_done);
    system.markMemoryBaseline();
    system.resetStats();

    WriteSchedule schedule = buildSchedule(params, rng);
    StreamPhaseState st = makePhaseState(
        params, params.postForkInstructions, std::move(schedule), true);
    core.beginEpoch(fork_done);

    // Serializing observes the machine without touching it, so the
    // executed run is op-for-op the uninterrupted run.
    auto write_checkpoint = [&]() {
        snapshot::Writer w;
        w.beginSection("FKCP");
        w.str(params.name);
        w.u8(mode == ForkMode::CopyOnWrite ? 0 : 1);
        w.u64(params.postForkInstructions);
        w.u16(parent);
        w.u64(t);
        w.u64(fork_done);
        st.serialize(w);
        for (std::uint64_t v : rng.rawState())
            w.u64(v);
        core.serialize(w);
        system.serialize(w);
        w.endSection();
        snapshot::writeSnapshotFile(ckpt.path, w.buffer());
    };

    Tick next_periodic =
        ckpt.everyTicks != 0 ? fork_done + ckpt.everyTicks : 0;
    bool stopped = false;
    auto stop = [&]() -> bool {
        Tick now = core.currentCycle();
        if (ckpt.everyTicks != 0 && now >= next_periodic) {
            write_checkpoint();
            while (next_periodic <= now)
                next_periodic += ckpt.everyTicks;
        }
        if (ckpt.atTick != 0 && now >= ckpt.atTick) {
            write_checkpoint();
            stopped = true;
            return true;
        }
        return false;
    };

    streamPhaseGenResumable(
        [&](const TraceOp &op) { core.executeOp(parent, op); }, params,
        rng, st, stop);
    if (stopped)
        return std::nullopt;

    Tick end = core.finishEpoch();
    system.caches().flushAll(end);
    return measureResult(system, core, params, mode, fork_done - t);
}

ForkBenchResult
resumeForkBenchCheckpoint(const std::string &path)
{
    std::vector<std::uint8_t> payload = snapshot::readSnapshotFile(path);
    snapshot::Reader r(payload);
    r.expectSection("FKCP");

    std::string name = r.str();
    ForkBenchParams params;
    bool known = false;
    for (const ForkBenchParams &p : forkBenchSuite()) {
        if (p.name == name) {
            params = p;
            known = true;
            break;
        }
    }
    if (!known)
        r.fail("checkpoint names unknown benchmark '" + name + "'");

    std::uint8_t mode_raw = r.u8();
    if (mode_raw > 1)
        r.fail("invalid fork mode " + std::to_string(mode_raw));
    ForkMode mode = mode_raw == 0 ? ForkMode::CopyOnWrite
                                  : ForkMode::OverlayOnWrite;
    params.postForkInstructions = r.u64();
    Asid parent = r.u16();
    Tick t = r.u64();
    Tick fork_done = r.u64();

    StreamPhaseState st;
    st.deserialize(r);
    std::array<std::uint64_t, 4> raw;
    for (std::uint64_t &v : raw)
        v = r.u64();

    // `overlaysim forkbench` runs the default machine configuration;
    // structural mismatches between it and the checkpointed machine are
    // caught by the per-component deserialize checks below.
    SystemConfig config;
    config.name = params.name;
    System system(config);
    OooCore core(params.name + ".core", system);
    core.deserialize(r);
    system.deserialize(r);
    r.endSection();
    if (!r.atEnd())
        r.fail("trailing bytes after checkpoint payload");
    if (parent >= system.vmm().processCount()) {
        r.fail("checkpoint parent ASID " + std::to_string(parent) +
               " not among the " +
               std::to_string(system.vmm().processCount()) +
               " restored processes");
    }

    Rng rng(params.seed);
    rng.setRawState(raw);

    streamPhaseGenResumable(
        [&](const TraceOp &op) { core.executeOp(parent, op); }, params,
        rng, st, [] { return false; });

    Tick end = core.finishEpoch();
    system.caches().flushAll(end);
    return measureResult(system, core, params, mode, fork_done - t);
}

} // namespace ovl
