#include "forkbench.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/random.hh"
#include "cpu/ooo_core.hh"
#include "sim/stats_sampler.hh"
#include "system/system.hh"

namespace ovl
{

namespace
{

constexpr Addr kHeapBase = 0x1000'0000;

/** Precomputed post-fork write schedule: line-granular virtual addrs. */
struct WriteSchedule
{
    std::vector<Addr> addrs;
    std::size_t next = 0;

    bool exhausted() const { return next >= addrs.size(); }

    Addr
    take()
    {
        return addrs[next++];
    }
};

WriteSchedule
buildSchedule(const ForkBenchParams &p, Rng &rng)
{
    WriteSchedule sched;
    sched.addrs = buildWriteSchedule(p, rng);
    return sched;
}

} // namespace

std::vector<Addr>
buildWriteSchedule(const ForkBenchParams &p, Rng &rng)
{
    // Choose the dirty pages. Streaming sweeps dirty a contiguous
    // region (a grid pass); the other patterns dirty pages scattered
    // over the footprint.
    std::vector<std::uint64_t> pages;
    if (p.pattern == WritePattern::Streaming) {
        std::uint64_t start = p.footprintPages > p.dirtyPages
                                  ? rng.below(p.footprintPages -
                                              p.dirtyPages)
                                  : 0;
        for (std::uint64_t i = 0; i < p.dirtyPages; ++i)
            pages.push_back(start + i);
    } else {
        pages.resize(p.footprintPages);
        for (std::uint64_t i = 0; i < p.footprintPages; ++i)
            pages[i] = i;
        for (std::uint64_t i = 0; i < p.dirtyPages; ++i) {
            std::uint64_t j = i + rng.below(p.footprintPages - i);
            std::swap(pages[i], pages[j]);
        }
        pages.resize(p.dirtyPages);
    }

    // Per page, the lines that will be written: an ascending prefix for
    // the streaming sweep, a random subset otherwise.
    std::vector<std::vector<unsigned>> lines(p.dirtyPages);
    unsigned count = std::min<unsigned>(p.linesPerDirtyPage, kLinesPerPage);
    for (auto &page_lines : lines) {
        if (p.pattern == WritePattern::Streaming) {
            for (unsigned l = 0; l < count; ++l)
                page_lines.push_back(l);
            continue;
        }
        unsigned all[kLinesPerPage];
        for (unsigned l = 0; l < kLinesPerPage; ++l)
            all[l] = l;
        for (unsigned l = 0; l < count; ++l) {
            unsigned j = l + unsigned(rng.below(kLinesPerPage - l));
            std::swap(all[l], all[j]);
        }
        page_lines.assign(all, all + count);
    }

    std::vector<Addr> schedule;
    schedule.reserve(p.dirtyPages * count);
    switch (p.pattern) {
      case WritePattern::Streaming:
      case WritePattern::Clustered:
        // Page by page; Streaming is fully sequential (ascending pages
        // and lines), Clustered hops to random pages but writes each
        // page's (random-order) lines back to back.
        for (std::size_t pg = 0; pg < lines.size(); ++pg) {
            for (unsigned l : lines[pg]) {
                schedule.push_back(kHeapBase + pages[pg] * kPageSize +
                                   Addr(l) * kLineSize);
            }
        }
        break;
      case WritePattern::Windowed: {
        // Writes rotate over a bounded window of active pages (like a
        // SPEC working set): a given page's successive line writes are
        // ~window writes apart ("well separated in time", §5.1), while
        // the active footprint stays TLB-resident.
        constexpr std::size_t kWindow = 24;
        std::vector<std::size_t> active;       // page indices in window
        std::vector<std::size_t> next_line(p.dirtyPages, 0);
        std::size_t next_page = 0;
        while (active.size() < kWindow && next_page < lines.size())
            active.push_back(next_page++);
        std::size_t cursor = 0;
        while (!active.empty()) {
            cursor = cursor % active.size();
            std::size_t pg = active[cursor];
            schedule.push_back(kHeapBase + pages[pg] * kPageSize +
                               Addr(lines[pg][next_line[pg]]) *
                                   kLineSize);
            if (++next_line[pg] >= lines[pg].size()) {
                // Page exhausted: replace it in the window.
                if (next_page < lines.size()) {
                    active[cursor] = next_page++;
                } else {
                    active.erase(active.begin() +
                                 std::ptrdiff_t(cursor));
                }
            }
            ++cursor;
        }
        break;
      }
    }
    return schedule;
}

namespace
{

/**
 * Emit @p num_instructions of the benchmark's steady-state mix. The read
 * stream mimics SPEC-class locality: most accesses re-touch recently
 * used lines (L1 hits), a share streams sequentially through the
 * footprint (prefetch-friendly), and a tail jumps randomly within the
 * hot set — overall miss rates in the few-percent range rather than the
 * cache-hostile uniform-random extreme.
 *
 * The generator is a template over the execution sink so the same
 * op stream (same RNG draws, same order) can drive the detailed core or
 * a sampled-simulation sink that switches between detailed execution and
 * functional fast-forward per window (DESIGN.md §10).
 */
template <typename Exec>
void
streamPhaseGen(Exec &&execute, const ForkBenchParams &p, Rng &rng,
               std::uint64_t num_instructions, WriteSchedule *schedule)
{
    std::uint64_t budget = num_instructions;
    std::vector<Addr> rewrite_pool; // lines already written (for re-writes)
    unsigned burst_remaining = 0;   // clustered-pattern page burst

    // Recent-reuse window (the register/stack/L1-resident share).
    constexpr std::size_t kRecent = 64;
    Addr recent[kRecent];
    std::size_t recent_count = 0, recent_head = 0;
    auto touch = [&](Addr a) {
        recent[recent_head] = a;
        recent_head = (recent_head + 1) % kRecent;
        recent_count = std::min(recent_count + 1, kRecent);
    };

    // Sequential stream cursor through the footprint.
    Addr stream_line = 0;
    Addr footprint_lines = p.footprintPages * kLinesPerPage;

    // Pace fresh-line writes so the schedule spans the whole epoch (a
    // SPEC process dirties pages steadily, not in an initial burst).
    double fresh_fraction = 1.0;
    if (schedule != nullptr) {
        double expected_writes = double(num_instructions) *
                                 p.memOpFraction * p.writeFraction;
        fresh_fraction = expected_writes > 0
                             ? double(schedule->addrs.size()) /
                                   expected_writes
                             : 1.0;
        fresh_fraction = std::min(1.0, fresh_fraction);
    }

    while (budget > 0) {
        // Non-memory instructions between memory ops.
        double per_mem = 1.0 / p.memOpFraction - 1.0;
        std::uint32_t compute = std::uint32_t(per_mem);
        if (rng.chance(per_mem - compute))
            ++compute;
        if (compute > 0) {
            execute(TraceOp::compute(compute));
            budget -= std::min<std::uint64_t>(budget, compute);
        }
        if (budget == 0)
            break;

        bool is_write = rng.chance(p.writeFraction);
        if (is_write && schedule != nullptr) {
            Addr addr;
            bool take_fresh;
            if (p.pattern == WritePattern::Clustered) {
                // Whole-page bursts: once a page's rewrite starts, its
                // lines are written back to back ("close in time").
                if (burst_remaining == 0 && !schedule->exhausted() &&
                    (rewrite_pool.empty() ||
                     rng.chance(fresh_fraction / p.linesPerDirtyPage))) {
                    burst_remaining = p.linesPerDirtyPage;
                }
                take_fresh = burst_remaining > 0 && !schedule->exhausted();
                if (take_fresh)
                    --burst_remaining;
            } else {
                take_fresh = !schedule->exhausted() &&
                             (rewrite_pool.empty() ||
                              rng.chance(fresh_fraction));
            }
            if (take_fresh) {
                addr = schedule->take();
                rewrite_pool.push_back(addr);
                if (p.readModifyWrite) {
                    // Real update streams read the data they modify
                    // (read-modify-write); the load brings the line into
                    // the cache in both mechanisms' worlds.
                    execute(TraceOp::load(addr));
                    if (budget > 1)
                        --budget;
                }
            } else if (!rewrite_pool.empty()) {
                // Re-writes favour recently dirtied lines (temporal
                // locality of real write streams).
                std::size_t window = std::min<std::size_t>(
                    rewrite_pool.size(), 512);
                std::size_t idx = rewrite_pool.size() - 1 -
                                  rng.below(window);
                addr = rewrite_pool[idx];
            } else {
                addr = kHeapBase; // degenerate tiny schedule
            }
            execute(TraceOp::store(addr));
            touch(addr);
        } else if (is_write) {
            // Warmup writes: anywhere in the footprint.
            std::uint64_t page = rng.below(p.footprintPages);
            Addr addr = kHeapBase + page * kPageSize +
                        rng.below(kLinesPerPage) * kLineSize;
            execute(TraceOp::store(addr));
            touch(addr);
        } else {
            Addr addr;
            double dice = rng.uniform();
            if (dice < p.recentReadShare && recent_count > 0) {
                // Re-use a recently touched line: an L1 hit.
                addr = recent[rng.below(recent_count)];
            } else if (dice < p.recentReadShare + p.streamReadShare) {
                // Sequential streaming through the footprint.
                stream_line = (stream_line + 1) % footprint_lines;
                addr = kHeapBase + stream_line * kLineSize;
            } else {
                // Random within the hot set.
                std::uint64_t page = rng.below(p.hotPages);
                addr = kHeapBase + page * kPageSize +
                       rng.below(kLinesPerPage) * kLineSize;
            }
            execute(TraceOp::load(addr));
            touch(addr);
        }
        --budget;
    }
}

/** The classic detailed-only phase: every op goes through the core. */
void
streamPhase(OooCore &core, Asid asid, const ForkBenchParams &p, Rng &rng,
            std::uint64_t num_instructions, WriteSchedule *schedule,
            std::vector<TraceOp> *record = nullptr)
{
    streamPhaseGen(
        [&](const TraceOp &op) {
            core.executeOp(asid, op);
            if (record != nullptr)
                record->push_back(op);
        },
        p, rng, num_instructions, schedule);
}

} // namespace

const std::vector<ForkBenchParams> &
forkBenchSuite()
{
    auto make = [](std::string name, unsigned type, std::uint64_t footprint,
                   std::uint64_t hot, std::uint64_t dirty, unsigned lines,
                   WritePattern pattern, double write_frac,
                   std::uint64_t seed) {
        ForkBenchParams p;
        p.name = std::move(name);
        p.type = type;
        p.footprintPages = footprint;
        p.hotPages = hot;
        p.dirtyPages = dirty;
        p.linesPerDirtyPage = lines;
        p.pattern = pattern;
        p.writeFraction = write_frac;
        p.seed = seed;
        if (pattern == WritePattern::Streaming) {
            // Bandwidth-bound streaming codes: more memory traffic,
            // stream-dominated reads.
            p.memOpFraction = 0.45;
            p.recentReadShare = 0.40;
            p.streamReadShare = 0.50;
        }
        if (pattern == WritePattern::Clustered) {
            // cactus rewrites whole pages wholesale, in dense bursts.
            p.readModifyWrite = false;
        }
        return p;
    };

    constexpr auto kWin = WritePattern::Windowed;
    constexpr auto kStream = WritePattern::Streaming;
    constexpr auto kClust = WritePattern::Clustered;
    static const std::vector<ForkBenchParams> suite = {
        // Type 1: low write working set.
        make("bwaves", 1, 2560, 192, 24, 6, kWin, 0.20, 11),
        make("hmmer", 1, 1536, 128, 40, 10, kWin, 0.25, 12),
        make("libq", 1, 1024, 96, 16, 4, kWin, 0.18, 13),
        make("sphinx3", 1, 2048, 160, 56, 12, kWin, 0.22, 14),
        make("tonto", 1, 1792, 128, 32, 8, kWin, 0.24, 15),
        // Type 2: almost all lines of each dirtied page are written.
        // All but cactus are streaming sweeps (bandwidth-bound).
        make("bzip2", 2, 3072, 256, 700, 60, kStream, 0.40, 21),
        make("cactus", 2, 2560, 224, 520, 64, kClust, 0.42, 22),
        make("lbm", 2, 4096, 320, 900, 62, kStream, 0.45, 23),
        make("leslie3d", 2, 3584, 288, 650, 58, kStream, 0.40, 24),
        make("soplex", 2, 2816, 224, 540, 56, kStream, 0.38, 25),
        // Type 3: only a few lines of each dirtied page are written.
        make("astar", 3, 4096, 320, 640, 5, kWin, 0.35, 31),
        make("Gems", 3, 5120, 384, 800, 7, kWin, 0.38, 32),
        make("mcf", 3, 6144, 448, 1000, 4, kWin, 0.40, 33),
        make("milc", 3, 3584, 288, 640, 6, kWin, 0.34, 34),
        make("omnet", 3, 3072, 256, 520, 8, kWin, 0.33, 35),
    };
    return suite;
}

const ForkBenchParams &
forkBenchByName(const std::string &name)
{
    for (const ForkBenchParams &p : forkBenchSuite()) {
        if (p.name == name)
            return p;
    }
    ovl_fatal("unknown fork benchmark: %s", name.c_str());
}

ForkBenchResult
runForkBench(const ForkBenchParams &params, ForkMode mode,
             SystemConfig config, std::ostream *dump_stats,
             std::vector<TraceOp> *record, StatsSampler *sampler)
{
    config.name = params.name;
    System system(config);
    OooCore core(params.name + ".core", system);
    Rng rng(params.seed);

    if (sampler != nullptr)
        system.attachStatsSampler(sampler, 0);

    Asid parent = system.createProcess();
    system.mapAnon(parent, kHeapBase, params.footprintPages * kPageSize);

    // Warmup: populate caches/TLBs and dirty the address space so the
    // fork has real pages to share.
    core.beginEpoch(0);
    streamPhase(core, parent, params, rng, params.warmupInstructions,
                nullptr);
    Tick t = core.finishEpoch();

    // fork(): the child idles (as in §5.1); the parent keeps running.
    Tick fork_done = t;
    system.fork(parent, mode, t, &fork_done);
    system.markMemoryBaseline();
    system.resetStats();

    WriteSchedule schedule = buildSchedule(params, rng);
    core.beginEpoch(fork_done);
    streamPhase(core, parent, params, rng, params.postForkInstructions,
                &schedule, record);
    Tick end = core.finishEpoch();

    // Memory accounting happens at steady state: dirty overlay lines
    // still in the caches get their OMS slots on eviction (§4.3.3), so
    // force the writebacks before measuring (the flush is excluded from
    // the measured epoch).
    system.caches().flushAll(end);

    if (sampler != nullptr) {
        sampler->finish(end);
        system.detachStatsSampler();
    }

    ForkBenchResult res;
    res.name = params.name;
    res.type = params.type;
    res.mode = mode;
    res.additionalMemoryMB =
        double(system.additionalMemoryBytes()) / double(1_MiB);
    res.cpi = core.epochCpi();
    res.cowFaults = system.cowFaults();
    res.overlayingWrites = system.overlayingWrites();
    res.forkLatency = fork_done - t;
    if (dump_stats != nullptr) {
        system.dumpAllStats(*dump_stats);
        core.dumpStats(*dump_stats);
    }
    return res;
}

ForkBenchSampledResult
runForkBenchSampled(const ForkBenchParams &params, ForkMode mode,
                    SystemConfig config, const SampledSimParams &sampled,
                    StatsSampler *sampler)
{
    ovl_assert(sampled.intervalInstructions > 0,
               "sampled simulation needs a window size");
    std::uint64_t detail =
        sampled.detailedInstructions != 0
            ? sampled.detailedInstructions
            : std::max<std::uint64_t>(1, sampled.intervalInstructions / 10);
    ovl_assert(detail <= sampled.intervalInstructions,
               "detailed prefix larger than the window");
    ovl_assert(config.promoteThresholdLines >= kLinesPerPage,
               "sampled simulation requires promotion disabled");

    ForkBenchSampledResult out;

    // ------------------------- sampled run ----------------------------
    {
        config.name = params.name;
        System system(config);
        OooCore core(params.name + ".core", system);
        Rng rng(params.seed);
        if (sampler != nullptr)
            system.attachStatsSampler(sampler, 0);

        Asid parent = system.createProcess();
        system.mapAnon(parent, kHeapBase,
                       params.footprintPages * kPageSize);
        core.beginEpoch(0);
        streamPhase(core, parent, params, rng, params.warmupInstructions,
                    nullptr);
        Tick t = core.finishEpoch();
        Tick fork_done = t;
        system.fork(parent, mode, t, &fork_done);
        system.markMemoryBaseline();
        system.resetStats();

        WriteSchedule schedule = buildSchedule(params, rng);

        // Windowed sink: a detailed prefix measured as its own core
        // epoch, then functional fast-forward to the window boundary.
        // Simulated time only advances inside detailed prefixes.
        Tick cursor = fork_done;
        Tick detail_start = cursor;
        std::uint64_t win_instr = 0;
        bool in_detail = true;
        // The first post-fork window always runs fully detailed: CoW
        // faults and overlaying writes are densest right after the fork,
        // so extrapolating a prefix of that transient 10x overestimates
        // it badly. Sampling applies to the steady state that follows.
        bool first_window = true;
        SampledWindow win;
        core.beginEpoch(cursor);

        auto close_detail = [&]() {
            cursor = core.finishEpoch();
            win.detailedCycles = cursor - detail_start;
            win.detailedInstructions = win_instr;
        };
        auto close_window = [&]() {
            if (in_detail)
                close_detail(); // window never left its detailed prefix
            win.instructions = win_instr;
            win.estimatedCycles =
                win.detailedInstructions != 0
                    ? double(win.detailedCycles) *
                          (double(win.instructions) /
                           double(win.detailedInstructions))
                    : 0.0;
            out.windows.push_back(win);
            win = SampledWindow{};
            win_instr = 0;
            in_detail = true;
            first_window = false;
            detail_start = cursor;
            core.beginEpoch(cursor);
        };

        streamPhaseGen(
            [&](const TraceOp &op) {
                if (in_detail) {
                    core.executeOp(parent, op);
                } else if (op.kind != TraceOp::Kind::Compute) {
                    system.accessFunctional(
                        parent, op.vaddr,
                        op.kind == TraceOp::Kind::Store,
                        core.coreIndex());
                }
                win_instr += op.kind == TraceOp::Kind::Compute
                                 ? op.count
                                 : 1;
                std::uint64_t cur_detail =
                    first_window ? sampled.intervalInstructions : detail;
                if (in_detail && win_instr >= cur_detail &&
                    cur_detail < sampled.intervalInstructions) {
                    close_detail();
                    in_detail = false;
                }
                if (win_instr >= sampled.intervalInstructions)
                    close_window();
            },
            params, rng, params.postForkInstructions, &schedule);
        if (win_instr > 0)
            close_window();
        cursor = core.finishEpoch(); // retire the epoch close_window armed

        system.caches().flushAll(cursor);
        if (sampler != nullptr) {
            sampler->finish(cursor);
            system.detachStatsSampler();
        }

        double est_cycles = 0.0;
        for (const SampledWindow &w : out.windows) {
            est_cycles += w.estimatedCycles;
            out.totalInstructions += w.instructions;
            out.detailedInstructions += w.detailedInstructions;
        }
        out.sampled.name = params.name;
        out.sampled.type = params.type;
        out.sampled.mode = mode;
        out.sampled.additionalMemoryMB =
            double(system.additionalMemoryBytes()) / double(1_MiB);
        out.sampled.cpi = out.totalInstructions != 0
                              ? est_cycles / double(out.totalInstructions)
                              : 0.0;
        out.sampled.cowFaults = system.cowFaults();
        out.sampled.overlayingWrites = system.overlayingWrites();
        out.sampled.forkLatency = fork_done - t;
    }

    if (!sampled.compareFull)
        return out;

    // ----------------------- full-detail twin -------------------------
    // One monolithic epoch over the identical op stream — byte-identical
    // to runForkBench — with issue-cursor snapshots at the same window
    // boundaries the sampled run used.
    {
        config.name = params.name;
        System system(config);
        OooCore core(params.name + ".core", system);
        Rng rng(params.seed);

        Asid parent = system.createProcess();
        system.mapAnon(parent, kHeapBase,
                       params.footprintPages * kPageSize);
        core.beginEpoch(0);
        streamPhase(core, parent, params, rng, params.warmupInstructions,
                    nullptr);
        Tick t = core.finishEpoch();
        Tick fork_done = t;
        system.fork(parent, mode, t, &fork_done);
        system.markMemoryBaseline();
        system.resetStats();

        WriteSchedule schedule = buildSchedule(params, rng);
        core.beginEpoch(fork_done);
        std::size_t wi = 0;
        std::uint64_t win_instr = 0;
        Tick last_mark = fork_done;
        streamPhaseGen(
            [&](const TraceOp &op) {
                core.executeOp(parent, op);
                win_instr += op.kind == TraceOp::Kind::Compute
                                 ? op.count
                                 : 1;
                if (win_instr >= sampled.intervalInstructions) {
                    Tick now = core.currentCycle();
                    if (wi < out.windows.size())
                        out.windows[wi].fullCycles = now - last_mark;
                    last_mark = now;
                    ++wi;
                    win_instr = 0;
                }
            },
            params, rng, params.postForkInstructions, &schedule);
        Tick end = core.finishEpoch();
        if (win_instr > 0 && wi < out.windows.size())
            out.windows[wi].fullCycles = end - last_mark;
        system.caches().flushAll(end);
        out.fullCpi = core.epochCpi();
    }

    double err_sum = 0.0;
    unsigned err_count = 0;
    for (const SampledWindow &w : out.windows) {
        if (w.fullCycles == 0)
            continue;
        double err = 100.0 *
                     std::abs(w.estimatedCycles - double(w.fullCycles)) /
                     double(w.fullCycles);
        err_sum += err;
        out.maxWindowErrorPct = std::max(out.maxWindowErrorPct, err);
        ++err_count;
    }
    out.meanWindowErrorPct = err_count != 0 ? err_sum / err_count : 0.0;
    out.cpiErrorPct =
        out.fullCpi != 0.0
            ? 100.0 * std::abs(out.sampled.cpi - out.fullCpi) / out.fullCpi
            : 0.0;
    return out;
}

} // namespace ovl
