/**
 * @file
 * Synthetic sparse-matrix generator replacing the UF Sparse Matrix
 * Collection [16] (unavailable offline; see DESIGN.md §3.2). Matrices
 * are generated to hit a target non-zero value locality L — the quantity
 * Figure 10 is organized around — using four structural families, and
 * the 87-matrix suite spans L in [1.05, 8.0] with the paper's extremes
 * named after their UF counterparts (poisson3Db: L~1.09; raefsky4: L=8).
 */

#ifndef OVERLAYSIM_WORKLOAD_MATRIXGEN_HH
#define OVERLAYSIM_WORKLOAD_MATRIXGEN_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sparse/matrix.hh"

namespace ovl
{

/** Structural family of a generated matrix. */
enum class MatrixFamily
{
    Scattered, ///< non-zero lines uniformly random
    Banded,    ///< non-zero lines hug the diagonal
    BlockDense,///< runs of consecutive non-zero lines
    PowerLaw,  ///< a few rows own most non-zero lines
};

/** Recipe for one synthetic matrix. */
struct MatrixSpec
{
    std::string name;
    MatrixFamily family = MatrixFamily::Scattered;
    std::uint32_t rows = 1024;
    std::uint32_t cols = 1024; ///< must be a multiple of 8
    std::uint64_t nnz = 60'000;
    double targetL = 4.0; ///< average non-zeros per non-zero line (<= 8)
    /** Mean run length (in lines) of BlockDense runs. */
    unsigned blockRunLines = 24;
    std::uint64_t seed = 1;
};

/** Generate a canonicalized COO matrix per @p spec. */
CooMatrix generateMatrix(const MatrixSpec &spec);

/** The 87-matrix Figure 10 suite, sorted by ascending target L. */
std::vector<MatrixSpec> sparseSuite87();

/**
 * Uniform-sparsity matrix for the in-text dense-vs-overlay sweep: a
 * fraction @p zero_line_fraction of cache lines is exactly zero; the
 * rest are fully dense (L = 8).
 */
CooMatrix generateUniformSparsity(std::uint32_t rows, std::uint32_t cols,
                                  double zero_line_fraction,
                                  std::uint64_t seed);

} // namespace ovl

#endif // OVERLAYSIM_WORKLOAD_MATRIXGEN_HH
