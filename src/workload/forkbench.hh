/**
 * @file
 * The fork/checkpoint workload of §5.1, rebuilt synthetically (see
 * DESIGN.md §3.1). Each of the paper's 15 SPEC CPU2006 benchmarks is
 * represented by a generator that reproduces the property the experiment
 * measures — the size and shape of the post-fork write working set:
 *
 *  - Type 1: small write working set (few dirtied pages);
 *  - Type 2: nearly every line of each dirtied page is written (one
 *    benchmark, cactus, writes a page's lines clustered in time, which
 *    is the case where copy-on-write's high-MLP copy wins);
 *  - Type 3: only a few lines of each dirtied page are written.
 *
 * The experiment: warm up, fork(), then run the parent while the child
 * idles; measure additional memory (Figure 8) and CPI (Figure 9).
 */

#ifndef OVERLAYSIM_WORKLOAD_FORKBENCH_HH
#define OVERLAYSIM_WORKLOAD_FORKBENCH_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/random.hh"
#include "cpu/ooo_core.hh"
#include "system/config.hh"
#include "vm/vmm.hh"

namespace ovl
{

class StatsSampler;

/** Temporal/spatial shape of the post-fork write stream. */
enum class WritePattern
{
    /**
     * Writes rotate over a bounded window of pages: a page's lines are
     * written well separated in time (Type 1/3 point-update codes).
     */
    Windowed,
    /**
     * Sequential sweep: ascending pages, ascending lines — the
     * bandwidth-bound streaming stencils (lbm, leslie3d; Type 2).
     */
    Streaming,
    /**
     * Random page order but all of a page's lines written back to back:
     * writes to a page's lines are close in time, the regime where
     * copy-on-write's single high-MLP page copy wins (cactus, §5.1).
     */
    Clustered,
};

/** Parameters of one synthetic fork benchmark. */
struct ForkBenchParams
{
    std::string name;
    unsigned type = 1; ///< paper's write-working-set taxonomy (1/2/3)

    std::uint64_t footprintPages = 2048;     ///< mapped + touched pages
    std::uint64_t hotPages = 256;            ///< read-locality set
    std::uint64_t dirtyPages = 64;           ///< pages written post-fork
    unsigned linesPerDirtyPage = 8;          ///< distinct lines per page
    WritePattern pattern = WritePattern::Windowed;

    std::uint64_t warmupInstructions = 800'000;
    std::uint64_t postForkInstructions = 6'000'000;

    double memOpFraction = 0.35;  ///< memory ops per instruction
    double writeFraction = 0.35;  ///< writes among memory ops
    /**
     * Read-mix composition: recently-touched lines (L1-class reuse),
     * then sequential streaming, remainder random within the hot set.
     * Streaming-heavy mixes model bandwidth-bound codes (lbm, leslie3d).
     */
    double recentReadShare = 0.65;
    double streamReadShare = 0.25;
    /**
     * Fresh-line writes load the line first (read-modify-write). False
     * models wholesale overwrites (cactus rewrites whole pages).
     */
    bool readModifyWrite = true;
    std::uint64_t seed = 1;
};

/** Measured outcome of one benchmark under one fork mode. */
struct ForkBenchResult
{
    std::string name;
    unsigned type = 0;
    ForkMode mode = ForkMode::CopyOnWrite;
    double additionalMemoryMB = 0.0; ///< Figure 8's y-axis
    double cpi = 0.0;                ///< Figure 9's y-axis
    std::uint64_t cowFaults = 0;
    std::uint64_t overlayingWrites = 0;
    Tick forkLatency = 0;
};

/** The 15-benchmark suite (5 per type), named per Figure 8. */
const std::vector<ForkBenchParams> &forkBenchSuite();

/** Look up one suite benchmark by name. */
const ForkBenchParams &forkBenchByName(const std::string &name);

/**
 * The post-fork write schedule (line-granular virtual addresses) a
 * benchmark will issue, in order — exposed for tests and trace tooling.
 */
std::vector<Addr> buildWriteSchedule(const ForkBenchParams &params,
                                     Rng &rng);

/**
 * Run one benchmark under @p mode on a fresh system configured by
 * @p config (pass a default SystemConfig for Table 2). When
 * @p dump_stats is non-null, the post-fork component statistics are
 * dumped there after the run. When @p record is non-null, the post-fork
 * instruction stream is appended to it (replayable with OooCore::run or
 * `overlaysim trace run`; note the replay machine starts un-forked, so
 * replay measures the access pattern, not the CoW/OoW divergence).
 * When @p sampler is non-null it is attached to the run's System for
 * the whole run (warmup included) and finished/detached at the end;
 * the sampler must be freshly constructed (no groups added yet). The
 * post-fork resetStats() rebases a Delta-mode sampler automatically.
 */
ForkBenchResult runForkBench(const ForkBenchParams &params, ForkMode mode,
                             SystemConfig config,
                             std::ostream *dump_stats = nullptr,
                             std::vector<TraceOp> *record = nullptr,
                             StatsSampler *sampler = nullptr);

} // namespace ovl

#endif // OVERLAYSIM_WORKLOAD_FORKBENCH_HH
