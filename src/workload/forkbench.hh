/**
 * @file
 * The fork/checkpoint workload of §5.1, rebuilt synthetically (see
 * DESIGN.md §3.1). Each of the paper's 15 SPEC CPU2006 benchmarks is
 * represented by a generator that reproduces the property the experiment
 * measures — the size and shape of the post-fork write working set:
 *
 *  - Type 1: small write working set (few dirtied pages);
 *  - Type 2: nearly every line of each dirtied page is written (one
 *    benchmark, cactus, writes a page's lines clustered in time, which
 *    is the case where copy-on-write's high-MLP copy wins);
 *  - Type 3: only a few lines of each dirtied page are written.
 *
 * The experiment: warm up, fork(), then run the parent while the child
 * idles; measure additional memory (Figure 8) and CPI (Figure 9).
 */

#ifndef OVERLAYSIM_WORKLOAD_FORKBENCH_HH
#define OVERLAYSIM_WORKLOAD_FORKBENCH_HH

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "common/random.hh"
#include "cpu/ooo_core.hh"
#include "system/config.hh"
#include "vm/vmm.hh"

namespace ovl
{

class StatsSampler;

/** Temporal/spatial shape of the post-fork write stream. */
enum class WritePattern
{
    /**
     * Writes rotate over a bounded window of pages: a page's lines are
     * written well separated in time (Type 1/3 point-update codes).
     */
    Windowed,
    /**
     * Sequential sweep: ascending pages, ascending lines — the
     * bandwidth-bound streaming stencils (lbm, leslie3d; Type 2).
     */
    Streaming,
    /**
     * Random page order but all of a page's lines written back to back:
     * writes to a page's lines are close in time, the regime where
     * copy-on-write's single high-MLP page copy wins (cactus, §5.1).
     */
    Clustered,
};

/** Parameters of one synthetic fork benchmark. */
struct ForkBenchParams
{
    std::string name;
    unsigned type = 1; ///< paper's write-working-set taxonomy (1/2/3)

    std::uint64_t footprintPages = 2048;     ///< mapped + touched pages
    std::uint64_t hotPages = 256;            ///< read-locality set
    std::uint64_t dirtyPages = 64;           ///< pages written post-fork
    unsigned linesPerDirtyPage = 8;          ///< distinct lines per page
    WritePattern pattern = WritePattern::Windowed;

    std::uint64_t warmupInstructions = 800'000;
    std::uint64_t postForkInstructions = 6'000'000;

    double memOpFraction = 0.35;  ///< memory ops per instruction
    double writeFraction = 0.35;  ///< writes among memory ops
    /**
     * Read-mix composition: recently-touched lines (L1-class reuse),
     * then sequential streaming, remainder random within the hot set.
     * Streaming-heavy mixes model bandwidth-bound codes (lbm, leslie3d).
     */
    double recentReadShare = 0.65;
    double streamReadShare = 0.25;
    /**
     * Fresh-line writes load the line first (read-modify-write). False
     * models wholesale overwrites (cactus rewrites whole pages).
     */
    bool readModifyWrite = true;
    std::uint64_t seed = 1;
};

/** Measured outcome of one benchmark under one fork mode. */
struct ForkBenchResult
{
    std::string name;
    unsigned type = 0;
    ForkMode mode = ForkMode::CopyOnWrite;
    double additionalMemoryMB = 0.0; ///< Figure 8's y-axis
    double cpi = 0.0;                ///< Figure 9's y-axis
    std::uint64_t cowFaults = 0;
    std::uint64_t overlayingWrites = 0;
    Tick forkLatency = 0;
};

/**
 * Sampled-simulation control (DESIGN.md §10): the post-fork instruction
 * stream is cut into windows of @c intervalInstructions; the first
 * @c detailedInstructions of each window run through the detailed core
 * and memory-system model, the remainder fast-forwards functionally
 * (System::accessFunctional — architectural transitions plus functional
 * cache/TLB warming, zero tick movement). Each window's cycles are
 * extrapolated from its detailed prefix: est_k = detailed_cycles_k *
 * window_instr_k / detailed_instr_k. The first post-fork window always
 * runs fully detailed — the fork transient (the dense burst of CoW
 * faults / overlaying writes) is the phenomenon under study and does
 * not extrapolate; sampling covers the steady state after it.
 */
struct SampledSimParams
{
    std::uint64_t intervalInstructions = 0; ///< window size (0 = invalid)
    /** Detailed prefix per window; 0 = intervalInstructions / 10. */
    std::uint64_t detailedInstructions = 0;
    /** Also run the full-detail twin and fill the error fields. */
    bool compareFull = false;
};

/** One sampling window of a sampled run. */
struct SampledWindow
{
    std::uint64_t instructions = 0;         ///< consumed in the window
    std::uint64_t detailedInstructions = 0; ///< detailed prefix size
    Tick detailedCycles = 0;                ///< cycles of the prefix
    double estimatedCycles = 0.0;           ///< extrapolated window cycles
    Tick fullCycles = 0;                    ///< twin run (compareFull)
    /** Host-time attribution of the window: wall seconds spent in the
     *  detailed prefix vs the functional fast-forward remainder.
     *  Measured at segment boundaries only (two steady_clock reads per
     *  segment), so it is always on and never moves a tick. */
    double detailedHostSeconds = 0.0;
    double functionalHostSeconds = 0.0;
};

/** Outcome of a sampled run (plus the full-run comparison if requested). */
struct ForkBenchSampledResult
{
    /** Estimated figures; cpi is the per-window extrapolation. */
    ForkBenchResult sampled;
    std::vector<SampledWindow> windows;
    std::uint64_t totalInstructions = 0;
    std::uint64_t detailedInstructions = 0;
    /** Host-time split of the post-fork phase (Σ over windows). */
    double detailedHostSeconds = 0.0;
    double functionalHostSeconds = 0.0;
    /** Filled when SampledSimParams::compareFull is set. */
    double fullCpi = 0.0;
    double cpiErrorPct = 0.0;
    double meanWindowErrorPct = 0.0;
    double maxWindowErrorPct = 0.0;
};

/** The 15-benchmark suite (5 per type), named per Figure 8. */
const std::vector<ForkBenchParams> &forkBenchSuite();

/** Look up one suite benchmark by name. */
const ForkBenchParams &forkBenchByName(const std::string &name);

/**
 * The post-fork write schedule (line-granular virtual addresses) a
 * benchmark will issue, in order — exposed for tests and trace tooling.
 */
std::vector<Addr> buildWriteSchedule(const ForkBenchParams &params,
                                     Rng &rng);

/**
 * Run one benchmark under @p mode on a fresh system configured by
 * @p config (pass a default SystemConfig for Table 2). When
 * @p dump_stats is non-null, the post-fork component statistics are
 * dumped there after the run. When @p record is non-null, the post-fork
 * instruction stream is appended to it (replayable with OooCore::run or
 * `overlaysim trace run`; note the replay machine starts un-forked, so
 * replay measures the access pattern, not the CoW/OoW divergence).
 * When @p sampler is non-null it is attached to the run's System for
 * the whole run (warmup included) and finished/detached at the end;
 * the sampler must be freshly constructed (no groups added yet). The
 * post-fork resetStats() rebases a Delta-mode sampler automatically.
 * When @p dump_stats_json is non-null, the post-fork System stats are
 * dumped there in the dumpAllStatsJson grammar — the input format of
 * `overlaysim stats-diff` (golden-stats forensics).
 */
ForkBenchResult runForkBench(const ForkBenchParams &params, ForkMode mode,
                             SystemConfig config,
                             std::ostream *dump_stats = nullptr,
                             std::vector<TraceOp> *record = nullptr,
                             StatsSampler *sampler = nullptr,
                             std::ostream *dump_stats_json = nullptr);

/**
 * Run one benchmark in sampled-simulation mode (see SampledSimParams).
 * Warmup and the fork itself always run detailed; sampling applies to
 * the post-fork measurement phase. The generator consumes the identical
 * op stream as runForkBench (same RNG draws), so the detailed windows
 * see the accesses a full run would have issued at those points, against
 * architectural state kept exact by the functional fast-forward.
 *
 * When @p sampled.compareFull is set, a full-detail twin runs the same
 * stream in one epoch (byte-identical to runForkBench) with
 * core.currentCycle() snapshots at window boundaries, and the result's
 * error fields report the per-window and end-to-end extrapolation error.
 * When @p sampler is non-null it is attached to the sampled run's System
 * (PR 4 tick-domain sampling: records fire only inside detailed windows,
 * where simulated time advances).
 *
 * Requires promotion disabled (the default SystemConfig): the functional
 * fast-forward cannot run the OS promotion policy.
 */
ForkBenchSampledResult runForkBenchSampled(const ForkBenchParams &params,
                                           ForkMode mode, SystemConfig config,
                                           const SampledSimParams &sampled,
                                           StatsSampler *sampler = nullptr);

// ----- warm-start execution (DESIGN.md §11) ----------------------------

/**
 * A benchmark's simulated warmup prefix, captured right after the warmup
 * epoch closes and before the fork. The prefix is mode-independent (no
 * overlays or CoW state exist before the fork), so one warm state fans
 * out across CoW/OoW rows — and, via the config override of
 * runForkBenchFromWarmState(), across policy-field config sweeps.
 */
struct ForkBenchWarmState
{
    ForkBenchParams params;
    SystemConfig config;
    /** Tick at which the warmup epoch closed. */
    Tick warmupEnd = 0;
    /** Parent process ASID. */
    Asid parent = 0;
    /** System + core + RNG snapshot payload. */
    std::vector<std::uint8_t> machine;
};

/**
 * Simulate the warmup prefix of @p params once and capture it. The
 * returned state is immutable; every runForkBenchFromWarmState() call
 * restores a private copy of the machine.
 */
ForkBenchWarmState prepareForkBenchWarmState(const ForkBenchParams &params,
                                             SystemConfig config);

/**
 * Run the post-fork measurement phase from a warm state. Produces a
 * result byte-identical to runForkBench(warm.params, mode, warm.config):
 * the restored machine, core and RNG continue exactly where the prefix
 * stopped. @p config_override (optional) swaps in a config that may
 * differ from warm.config in policy fields only (promote threshold, OS
 * cost constants); structural differences throw snapshot::SnapshotError.
 */
ForkBenchResult runForkBenchFromWarmState(
    const ForkBenchWarmState &warm, ForkMode mode,
    const SystemConfig *config_override = nullptr,
    std::ostream *dump_stats = nullptr,
    std::vector<TraceOp> *record = nullptr);

// ----- crash-resumable checkpoint/restore (DESIGN.md §11) --------------

/** Checkpointing policy of runForkBenchCheckpointed(). */
struct ForkBenchCheckpointOptions
{
    /** Snapshot file to (over)write. */
    std::string path;
    /**
     * Periodic mode: write a checkpoint at the first op boundary at or
     * after every multiple of this many post-fork ticks, and keep
     * running. 0 disables.
     */
    Tick everyTicks = 0;
    /**
     * One-shot mode: write one checkpoint at the first op boundary at or
     * after this tick, then stop the run (the function returns nullopt).
     * 0 disables.
     */
    Tick atTick = 0;
};

/**
 * runForkBench with checkpointing. The executed run is op-for-op
 * identical to runForkBench(params, mode, config); checkpoints observe
 * the run without perturbing it. Returns the result, or nullopt when a
 * one-shot checkpoint stopped the run early.
 */
std::optional<ForkBenchResult> runForkBenchCheckpointed(
    const ForkBenchParams &params, ForkMode mode, SystemConfig config,
    const ForkBenchCheckpointOptions &ckpt);

/**
 * Resume a checkpoint file to completion. The continued run — and the
 * returned result — is byte-identical to the uninterrupted run the
 * checkpoint was cut from. The machine configuration is rebuilt as the
 * default SystemConfig (what `overlaysim forkbench` runs) plus the
 * checkpoint's recorded post-fork instruction count. Throws
 * snapshot::SnapshotError on any malformed, truncated or mismatched
 * file.
 */
ForkBenchResult resumeForkBenchCheckpoint(const std::string &path);

} // namespace ovl

#endif // OVERLAYSIM_WORKLOAD_FORKBENCH_HH
