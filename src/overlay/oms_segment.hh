/**
 * @file
 * Overlay Memory Store segments (§4.4.1–§4.4.2, Figure 7). Each overlay
 * lives in one of five fixed segment sizes (256 B … 4 KB). Segments
 * smaller than 4 KB dedicate their first line to metadata: 64 five-bit
 * slot pointers (one per cache line of the virtual page) plus a 32-bit
 * free-slot vector — 352 bits total. A 4 KB segment stores each overlay
 * line at its natural in-page offset and needs no metadata.
 */

#ifndef OVERLAYSIM_OVERLAY_OMS_SEGMENT_HH
#define OVERLAYSIM_OVERLAY_OMS_SEGMENT_HH

#include <array>
#include <cstdint>

#include "common/logging.hh"
#include "common/types.hh"

namespace ovl
{

/** The five fixed segment size classes (§4.4.2). */
enum class SegClass : std::uint8_t
{
    Seg256B = 0,
    Seg512B = 1,
    Seg1KB = 2,
    Seg2KB = 3,
    Seg4KB = 4,
};

constexpr unsigned kNumSegClasses = 5;

/** Segment size in bytes. */
constexpr Addr
segClassBytes(SegClass cls)
{
    return Addr(256) << unsigned(cls);
}

/**
 * Overlay-line capacity of a class: all lines minus the metadata line for
 * sub-4 KB segments (so 3/7/15/31), all 64 lines for the 4 KB class.
 */
constexpr unsigned
segClassCapacity(SegClass cls)
{
    unsigned lines = unsigned(segClassBytes(cls) / kLineSize);
    return cls == SegClass::Seg4KB ? lines : lines - 1;
}

/** Smallest class able to hold @p num_lines overlay lines. */
inline SegClass
segClassFor(unsigned num_lines)
{
    ovl_assert(num_lines <= 64, "a page has at most 64 overlay lines");
    for (unsigned c = 0; c < kNumSegClasses; ++c) {
        if (segClassCapacity(SegClass(c)) >= num_lines)
            return SegClass(c);
    }
    return SegClass::Seg4KB;
}

/** The next larger class; caller must not pass Seg4KB. */
inline SegClass
segClassNext(SegClass cls)
{
    ovl_assert(cls != SegClass::Seg4KB, "no class above 4 KB");
    return SegClass(unsigned(cls) + 1);
}

/** Invalid slot-pointer sentinel (5-bit pointers: 0..30 are valid). */
constexpr std::uint8_t kInvalidSlot = 0x1F;

/**
 * Per-segment metadata: the content of the segment's first cache line
 * (Figure 7). Functionally mirrored here; the timing model charges one
 * line access to read or update it in memory.
 *
 * Storage check against the paper: 64 pointers x 5 bits + 32-bit free
 * vector = 352 bits, which fits in a 512-bit cache line.
 */
struct SegmentMeta
{
    /** slotOf[line_in_page] = slot index within the segment, or invalid. */
    std::array<std::uint8_t, kLinesPerPage> slotOf;
    /** Bit i set means slot i is free. Only capacity() low bits matter. */
    std::uint32_t freeSlots = 0;

    SegmentMeta() { slotOf.fill(kInvalidSlot); }

    /** Initialize the free vector for a segment of @p cls. */
    void
    initFree(SegClass cls)
    {
        unsigned cap = segClassCapacity(cls);
        freeSlots = cap >= 32 ? ~std::uint32_t(0)
                              : ((std::uint32_t(1) << cap) - 1);
    }

    /** Allocate the lowest free slot; returns kInvalidSlot when full. */
    std::uint8_t
    allocSlot()
    {
        if (freeSlots == 0)
            return kInvalidSlot;
        unsigned slot = unsigned(__builtin_ctz(freeSlots));
        freeSlots &= freeSlots - 1;
        return std::uint8_t(slot);
    }

    void
    freeSlot(std::uint8_t slot)
    {
        ovl_assert(slot < 32, "slot index out of 5-bit range");
        freeSlots |= (std::uint32_t(1) << slot);
    }
};

/**
 * A live segment of the Overlay Memory Store: its location in the main
 * memory address space, its size class, and (for sub-4 KB classes) its
 * metadata line.
 */
struct OmsSegment
{
    Addr baseAddr = kInvalidAddr; ///< main-memory address of the segment
    SegClass cls = SegClass::Seg256B;
    SegmentMeta meta;

    unsigned capacity() const { return segClassCapacity(cls); }
    Addr bytes() const { return segClassBytes(cls); }

    /** Main-memory address of the metadata line (first line). */
    Addr metaLineAddr() const { return baseAddr; }

    /**
     * Main-memory address of the overlay line for in-page line index
     * @p line_in_page. For 4 KB segments the offset is the in-page offset
     * (§4.4.1); otherwise the slot pointer is consulted (slot s occupies
     * the (s+1)-th line, after the metadata line).
     */
    Addr
    lineAddr(unsigned line_in_page) const
    {
        ovl_assert(line_in_page < kLinesPerPage, "line index out of page");
        if (cls == SegClass::Seg4KB)
            return baseAddr + Addr(line_in_page) * kLineSize;
        std::uint8_t slot = meta.slotOf[line_in_page];
        ovl_assert(slot != kInvalidSlot, "line has no OMS slot");
        return baseAddr + Addr(slot + 1) * kLineSize;
    }

    /** True if @p line_in_page has an allocated slot in this segment. */
    bool
    hasSlot(unsigned line_in_page) const
    {
        if (cls == SegClass::Seg4KB)
            return true;
        return meta.slotOf[line_in_page] != kInvalidSlot;
    }

    /** Number of allocated slots. */
    unsigned
    usedSlots() const
    {
        if (cls == SegClass::Seg4KB)
            return kLinesPerPage;
        unsigned used = 0;
        for (std::uint8_t s : meta.slotOf)
            used += (s != kInvalidSlot);
        return used;
    }
};

} // namespace ovl

#endif // OVERLAYSIM_OVERLAY_OMS_SEGMENT_HH
