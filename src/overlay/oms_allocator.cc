#include "oms_allocator.hh"

#include <algorithm>

#include "common/logging.hh"
#include "sim/snapshot.hh"

namespace ovl
{

OmsAllocator::OmsAllocator(std::string name, OmsAllocatorParams params,
                           PageAllocFn os_alloc_page)
    : SimObject(std::move(name)), params_(params),
      osAllocPage_(os_alloc_page),
      allocations_(&statGroup(), "allocations", "segments allocated"),
      releases_(&statGroup(), "releases", "segments released"),
      splits_(&statGroup(), "splits", "segments split to feed a class"),
      coalesces_(&statGroup(), "coalesces", "buddy segments coalesced"),
      osRefills_(&statGroup(), "osRefills", "page batches requested from OS"),
      osBytesProvided_(&statGroup(), "osBytesProvided",
                       "bytes the OS handed to the OMS"),
      listTouches_(&statGroup(), "listTouches",
                   "free-list memory-line touches")
{
    ovl_assert(osAllocPage_, "OMS allocator needs an OS hook");
    heads_.fill(kNullRef);
    pages_.reserve(params_.startupPages);
    for (unsigned i = 0; i < params_.startupPages; ++i) {
        pushFront(SegClass::Seg4KB, newPage(osAllocPage_()) << 4);
        osBytesProvided_ += kPageSize;
    }
}

std::uint32_t
OmsAllocator::newPage(Addr base)
{
    ovl_assert(pageOffset(base) == 0, "OMS pages must be page-aligned");
    auto idx = std::uint32_t(pages_.size());
    pages_.emplace_back();
    PageMeta &pm = pages_.back();
    pm.base = base;
    pm.freeCls.fill(kNotFree);
    pageIndex_.emplace(base, idx);
    return idx;
}

std::uint32_t
OmsAllocator::refOf(Addr addr)
{
    Addr page_base = pageBase(addr);
    std::uint32_t idx;
    if (page_base == lastPageBase_) {
        idx = lastPageIdx_;
    } else {
        auto it = pageIndex_.find(page_base);
        ovl_assert(it != pageIndex_.end(),
                   "segment address outside any OMS page");
        idx = it->second;
        lastPageBase_ = page_base;
        lastPageIdx_ = idx;
    }
    return (idx << 4) | std::uint32_t(pageOffset(addr) >> 8);
}

void
OmsAllocator::pushFront(SegClass cls, std::uint32_t ref)
{
    PageMeta &pm = pages_[ref >> 4];
    unsigned unit = ref & 15u;
    pm.freeCls[unit] = std::int8_t(cls);
    pm.next[unit] = heads_[unsigned(cls)];
    pm.prev[unit] = kNullRef;
    if (heads_[unsigned(cls)] != kNullRef)
        pages_[heads_[unsigned(cls)] >> 4].prev[heads_[unsigned(cls)] & 15u] =
            ref;
    heads_[unsigned(cls)] = ref;
    ++counts_[unsigned(cls)];
}

void
OmsAllocator::unlink(SegClass cls, std::uint32_t ref)
{
    PageMeta &pm = pages_[ref >> 4];
    unsigned unit = ref & 15u;
    std::uint32_t nxt = pm.next[unit];
    std::uint32_t prv = pm.prev[unit];
    if (prv != kNullRef)
        pages_[prv >> 4].next[prv & 15u] = nxt;
    else
        heads_[unsigned(cls)] = nxt;
    if (nxt != kNullRef)
        pages_[nxt >> 4].prev[nxt & 15u] = prv;
    pm.freeCls[unit] = kNotFree;
    --counts_[unsigned(cls)];
}

void
OmsAllocator::refillFromOs()
{
    ++osRefills_;
    for (unsigned i = 0; i < params_.refillPages; ++i) {
        pushFront(SegClass::Seg4KB, newPage(osAllocPage_()) << 4);
        osBytesProvided_ += kPageSize;
    }
}

Addr
OmsAllocator::allocate(SegClass cls)
{
    if (counts_[unsigned(cls)] == 0) {
        if (cls == SegClass::Seg4KB) {
            refillFromOs();
        } else {
            // Split one segment of the next larger class in two (§4.4.3).
            Addr big = allocate(segClassNext(cls));
            ++splits_;
            listTouches_ += 2;
            pushFront(cls, refOf(big + segClassBytes(cls)));
            ++allocations_;
            return big;
        }
    }
    ovl_assert(counts_[unsigned(cls)] > 0, "OMS allocator failed to refill");
    std::uint32_t ref = heads_[unsigned(cls)];
    unlink(cls, ref);
    ++allocations_;
    ++listTouches_;
    return addrOf(ref);
}

void
OmsAllocator::release(Addr base, SegClass cls)
{
    pushFront(cls, refOf(base));
    ++releases_;
    ++listTouches_;
    if (params_.coalesce)
        tryCoalesce(cls);
}

void
OmsAllocator::tryCoalesce(SegClass cls)
{
    while (cls != SegClass::Seg4KB) {
        if (counts_[unsigned(cls)] < 2)
            return;
        // The most recent release is the coalescing candidate; its buddy
        // lives in the same OS page, so one unit-state probe decides.
        std::uint32_t ref = heads_[unsigned(cls)];
        Addr base = addrOf(ref);
        Addr bytes = segClassBytes(cls);
        Addr buddy = base ^ bytes;
        PageMeta &pm = pages_[ref >> 4];
        unsigned buddy_unit = unsigned(pageOffset(buddy) >> 8);
        if (pm.freeCls[buddy_unit] != std::int8_t(cls))
            return;
        std::uint32_t buddy_ref = (ref & ~15u) | buddy_unit;
        unlink(cls, ref);
        unlink(cls, buddy_ref);
        ++coalesces_;
        listTouches_ += 2;
        SegClass bigger = segClassNext(cls);
        pushFront(bigger, refOf(std::min(base, buddy)));
        cls = bigger;
    }
}

std::size_t
OmsAllocator::freeCount(SegClass cls) const
{
    return counts_[unsigned(cls)];
}

void
OmsAllocator::serialize(snapshot::Writer &w) const
{
    w.beginSection("OMS ");
    w.u64(pages_.size());
    for (const PageMeta &pm : pages_) {
        w.u64(pm.base);
        for (std::uint32_t nxt : pm.next)
            w.u32(nxt);
        for (std::uint32_t prv : pm.prev)
            w.u32(prv);
        w.blob(pm.freeCls.data(), pm.freeCls.size());
    }
    for (std::uint32_t head : heads_)
        w.u32(head);
    for (std::size_t cnt : counts_)
        w.u64(cnt);
    w.endSection();
}

void
OmsAllocator::deserialize(snapshot::Reader &r)
{
    r.expectSection("OMS ");
    std::uint64_t num_pages =
        r.count(8 + kUnitsPerPage * 4 * 2 + kUnitsPerPage);
    pages_.clear();
    pages_.reserve(num_pages);
    pageIndex_.clear();
    lastPageBase_ = kInvalidAddr;
    lastPageIdx_ = 0;
    for (std::uint64_t i = 0; i < num_pages; ++i) {
        pages_.emplace_back();
        PageMeta &pm = pages_.back();
        pm.base = r.u64();
        if (pageOffset(pm.base) != 0)
            r.fail("OMS page base not page-aligned");
        for (std::uint32_t &nxt : pm.next)
            nxt = r.u32();
        for (std::uint32_t &prv : pm.prev)
            prv = r.u32();
        r.blob(pm.freeCls.data(), pm.freeCls.size());
        for (std::int8_t cls : pm.freeCls) {
            if (cls != kNotFree &&
                (cls < 0 || cls >= std::int8_t(kNumSegClasses))) {
                r.fail("OMS unit free-class out of range");
            }
        }
        if (!pageIndex_.emplace(pm.base, std::uint32_t(i)).second)
            r.fail("duplicate OMS page base in snapshot");
    }
    for (std::uint32_t &head : heads_) {
        head = r.u32();
        if (head != kNullRef && (head >> 4) >= pages_.size())
            r.fail("OMS free-list head out of page bounds");
    }
    for (std::size_t &cnt : counts_)
        cnt = std::size_t(r.u64());
    r.endSection();
}

} // namespace ovl
