#include "oms_allocator.hh"

#include <algorithm>

#include "common/logging.hh"

namespace ovl
{

OmsAllocator::OmsAllocator(std::string name, OmsAllocatorParams params,
                           std::function<Addr()> os_alloc_page)
    : SimObject(std::move(name)), params_(params),
      osAllocPage_(std::move(os_alloc_page)),
      allocations_(&statGroup(), "allocations", "segments allocated"),
      releases_(&statGroup(), "releases", "segments released"),
      splits_(&statGroup(), "splits", "segments split to feed a class"),
      coalesces_(&statGroup(), "coalesces", "buddy segments coalesced"),
      osRefills_(&statGroup(), "osRefills", "page batches requested from OS"),
      osBytesProvided_(&statGroup(), "osBytesProvided",
                       "bytes the OS handed to the OMS"),
      listTouches_(&statGroup(), "listTouches",
                   "free-list memory-line touches")
{
    ovl_assert(osAllocPage_ != nullptr, "OMS allocator needs an OS hook");
    for (unsigned i = 0; i < params_.startupPages; ++i) {
        freeLists_[unsigned(SegClass::Seg4KB)].push_back(osAllocPage_());
        osBytesProvided_ += kPageSize;
    }
}

void
OmsAllocator::refillFromOs()
{
    ++osRefills_;
    for (unsigned i = 0; i < params_.refillPages; ++i) {
        freeLists_[unsigned(SegClass::Seg4KB)].push_back(osAllocPage_());
        osBytesProvided_ += kPageSize;
    }
}

Addr
OmsAllocator::allocate(SegClass cls)
{
    auto &list = freeLists_[unsigned(cls)];
    if (list.empty()) {
        if (cls == SegClass::Seg4KB) {
            refillFromOs();
        } else {
            // Split one segment of the next larger class in two (§4.4.3).
            Addr big = allocate(segClassNext(cls));
            ++splits_;
            listTouches_ += 2;
            list.push_back(big + segClassBytes(cls));
            ++allocations_;
            return big;
        }
    }
    ovl_assert(!list.empty(), "OMS allocator failed to refill");
    Addr base = list.back();
    list.pop_back();
    ++allocations_;
    ++listTouches_;
    return base;
}

void
OmsAllocator::release(Addr base, SegClass cls)
{
    freeLists_[unsigned(cls)].push_back(base);
    ++releases_;
    ++listTouches_;
    if (params_.coalesce)
        tryCoalesce(cls);
}

void
OmsAllocator::tryCoalesce(SegClass cls)
{
    while (cls != SegClass::Seg4KB) {
        auto &list = freeLists_[unsigned(cls)];
        if (list.size() < 2)
            return;
        // The most recent release is the coalescing candidate.
        Addr base = list.back();
        Addr bytes = segClassBytes(cls);
        Addr buddy = base ^ bytes;
        auto it = std::find(list.begin(), list.end() - 1, buddy);
        if (it == list.end() - 1)
            return;
        list.pop_back();
        list.erase(it);
        ++coalesces_;
        listTouches_ += 2;
        SegClass bigger = segClassNext(cls);
        freeLists_[unsigned(bigger)].push_back(std::min(base, buddy));
        cls = bigger;
    }
}

std::size_t
OmsAllocator::freeCount(SegClass cls) const
{
    return freeLists_[unsigned(cls)].size();
}

} // namespace ovl
