/**
 * @file
 * Devirtualized OS page-allocation hook for the overlay engine. The OMT
 * and the OMS allocator request backing pages from the OS a handful of
 * times per simulated fork; the previous std::function indirection put a
 * type-erased call (and a heap-allocated closure) on a path inlined into
 * the access engine. A bare function pointer plus context keeps the call
 * direct and the hook trivially copyable.
 */

#ifndef OVERLAYSIM_OVERLAY_PAGE_ALLOC_HH
#define OVERLAYSIM_OVERLAY_PAGE_ALLOC_HH

#include "common/types.hh"

namespace ovl
{

/** A page-allocation callback: returns the base address of a fresh page. */
struct PageAllocFn
{
    Addr (*fn)(void *ctx) = nullptr;
    void *ctx = nullptr;

    Addr operator()() const { return fn(ctx); }
    explicit operator bool() const { return fn != nullptr; }
};

} // namespace ovl

#endif // OVERLAYSIM_OVERLAY_PAGE_ALLOC_HH
