/**
 * @file
 * The memory-controller-side overlay engine (§4.3–§4.4, Figure 6). It
 * owns the OMT, the OMT cache, the OMS segment allocator and the
 * functional overlay contents, and it services the two controller-level
 * operations: reading an overlay line that missed the whole cache
 * hierarchy, and accepting an evicted dirty overlay line (which is where
 * OMS space is lazily allocated, §4.3.3).
 */

#ifndef OVERLAYSIM_OVERLAY_OVERLAY_MANAGER_HH
#define OVERLAYSIM_OVERLAY_OVERLAY_MANAGER_HH

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/bitvector64.hh"
#include "common/types.hh"
#include "dram/dram.hh"
#include "overlay/oms_allocator.hh"
#include "overlay/oms_segment.hh"
#include "overlay/omt.hh"
#include "overlay/overlay_addr.hh"
#include "sim/sim_object.hh"

namespace ovl
{

/** Tunables of the overlay engine. */
struct OverlayManagerParams
{
    OmtCacheParams omtCache{};
    OmsAllocatorParams allocator{};
    /**
     * §4.4's simple alternative: back every overlay with a full 4 KB
     * page, forgoing the memory-capacity benefit of compact segments
     * (but never migrating). Evaluated by bench/abl_segments.
     */
    bool fullPageSegments = false;
};

/**
 * Overlay engine. Timing-wise, every operation first brings the OMT
 * entry into the OMT cache (hit: small SRAM latency; miss: a 4-level
 * radix walk through DRAM), then touches the OMS. Functionally, the
 * logical content of every overlay line is kept here from the moment the
 * line is mapped, so reads are always correct regardless of where the
 * timing model believes the line currently lives (DESIGN.md §3.4).
 */
class OverlayManager : public SimObject
{
  public:
    OverlayManager(std::string name, OverlayManagerParams params,
                   DramController &dram_ctrl, PageAllocFn os_alloc_page);

    // ----- functional interface (used by the VM layer and techniques) ---

    /** True if @p opn has an overlay with at least one mapped line. */
    bool hasOverlay(Opn opn) const;

    /** OBitVector of @p opn (zero vector when no overlay exists). */
    BitVector64 obitvector(Opn opn) const;

    /**
     * Map @p line_in_page into the overlay of @p opn and set its
     * contents. Creates the OMT entry on first use.
     */
    void writeLineData(Opn opn, unsigned line_in_page, const LineData &data);

    /** Read the logical contents of an overlay line. */
    void readLineData(Opn opn, unsigned line_in_page, LineData &out) const;

    /**
     * True if the line has logical contents. Can lag obitvector() when a
     * line was mapped by a bare ORE message (metadata pages) but never
     * stored to.
     */
    bool hasLineData(Opn opn, unsigned line_in_page) const;

    /**
     * Unmap one line (used by commit actions); frees its OMS slot if one
     * was allocated. Does not shrink the segment.
     */
    void clearLine(Opn opn, unsigned line_in_page);

    /**
     * Drop the whole overlay: free its segment and erase the OMT entry
     * (the discard action of §4.3.4; commit paths call this after copying
     * lines out).
     */
    void discardOverlay(Opn opn);

    // ----- timing interface (used by the memory controller) -------------

    /**
     * Bring the OMT entry for @p opn into the OMT cache, charging a table
     * walk on a miss (plus the segment-metadata line read, §4.4.4) and
     * a writeback for a displaced modified entry.
     *
     * @return completion time.
     */
    Tick omtAccess(Opn opn, Tick when);

    /** Controller path of a full-hierarchy-miss overlay line read. */
    Tick readLine(Addr overlay_line_addr, Tick when);

    /**
     * Controller path of a dirty overlay-line writeback: lazily allocates
     * the OMS slot (growing/migrating the segment when needed) and
     * enqueues the DRAM write.
     */
    Tick writebackLine(Addr overlay_line_addr, Tick when);

    /**
     * The OMT half of the `overlaying read exclusive` message (§4.3.3):
     * sets the line's bit in the OMT entry via the OMT cache.
     */
    Tick overlayingReadExclusive(Opn opn, unsigned line_in_page, Tick when);

    // ----- accounting ----------------------------------------------------

    /** Bytes of OMS segments currently allocated to overlays. */
    std::uint64_t omsBytesInUse() const { return omsBytesInUse_; }

    /** Count of overlays that currently own a segment of @p cls. */
    std::uint64_t segmentCount(SegClass cls) const;

    OmtCache &omtCache() { return omtCache_; }
    Omt &omt() { return omt_; }
    const Omt &omt() const { return omt_; }
    OmsAllocator &allocator() { return allocator_; }

    std::uint64_t migrations() const { return migrations_.value(); }

    /**
     * Snapshot the whole engine: OMT + OMT cache + allocator, the
     * functional page-data store (slot-for-slot, since OmtEntry::
     * pageDataIdx references store positions), the free-page list and
     * the OMS byte accounting.
     */
    void serialize(snapshot::Writer &w) const;
    void deserialize(snapshot::Reader &r);

  private:
    /**
     * Ensure @p line_in_page of @p opn has an OMS slot, allocating or
     * migrating the segment as needed. Returns the slot's main-memory
     * address and advances @p when by the management cost.
     */
    Addr ensureSlot(OmtEntry &entry, Opn opn, unsigned line_in_page,
                    Tick &when);

    /** Charge the timing of an OMT access given its cache-lookup result. */
    Tick finishOmtAccess(Opn opn, const OmtCache::LookupResult &res,
                         Tick when);

    /** Grow @p entry's segment to the next size class, copying lines. */
    void migrateSegment(OmtEntry &entry, Opn opn, Tick &when);

    void allocateSegment(OmtEntry &entry, SegClass cls);
    void releaseSegment(OmtEntry &entry);

    OverlayManagerParams params_;
    DramController &dramCtrl_;
    Omt omt_;
    OmtCache omtCache_;
    OmsAllocator allocator_;

    /**
     * Logical contents of one overlay page, flattened: a presence bitmap
     * plus a dense line array. The OMT entry carries the index of its
     * page in pageStore_ (data ⊆ table: page data never outlives the
     * entry), so resolving a line is the OMT's chunk-indexed lookup plus
     * one array read — no separate hash map; poke/peek hit this once per
     * 64 B chunk.
     */
    struct OverlayPageData
    {
        BitVector64 present;
        std::array<LineData, kLinesPerPage> lines;
    };

    /** Find the page data of @p opn; nullptr if absent. */
    OverlayPageData *findPageData(Opn opn) const;
    /** Find-or-create the page data of @p entry; recycles retired pages
     *  through freePages_. */
    OverlayPageData &ensurePageData(OmtEntry &entry);

    /** Page-data arena, indexed by OmtEntry::pageDataIdx. */
    std::vector<std::unique_ptr<OverlayPageData>> pageStore_;
    std::vector<std::uint32_t> freePages_;

    std::uint64_t omsBytesInUse_ = 0;

    stats::Counter overlayReads_;
    stats::Counter overlayWritebacks_;
    stats::Counter slotAllocations_;
    stats::Counter migrations_;
    stats::Counter omtWalks_;
    stats::Counter oreMessages_;
    stats::Gauge omsBytesGauge_;
};

} // namespace ovl

#endif // OVERLAYSIM_OVERLAY_OVERLAY_MANAGER_HH
