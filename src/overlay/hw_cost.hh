/**
 * @file
 * The hardware storage cost model of §4.5. Three sources of overhead:
 * the OMT cache, the widened TLB entries (to hold the OBitVector), and
 * the widened cache tags (the overlay address space makes the physical
 * address wider). With the Table 2 configuration this reproduces the
 * paper's 94.5 KB total: 4 KB + 8.5 KB + 82 KB.
 */

#ifndef OVERLAYSIM_OVERLAY_HW_COST_HH
#define OVERLAYSIM_OVERLAY_HW_COST_HH

#include <cstdint>

namespace ovl
{

/** Inputs of the §4.5 cost accounting. */
struct HwCostParams
{
    unsigned omtCacheEntries = 64;
    unsigned omtCacheEntryBits = 512; ///< OPN 48 + OMSaddr 48 + OBV 64 +
                                      ///< 64x5 pointers + 32 free bits
    unsigned l1TlbEntries = 64;
    unsigned l2TlbEntries = 1024;
    unsigned obitvectorBits = 64;
    unsigned extraTagBitsPerLine = 16; ///< physical-address widening
    std::uint64_t l1Bytes = 64 * 1024;
    std::uint64_t l2Bytes = 512 * 1024;
    std::uint64_t l3Bytes = 2 * 1024 * 1024;
    unsigned lineBytes = 64;
};

/** Derived per-structure and total costs, in bytes. */
struct HwCost
{
    std::uint64_t omtCacheBytes = 0;
    std::uint64_t tlbExtensionBytes = 0;
    std::uint64_t cacheTagExtensionBytes = 0;

    std::uint64_t
    totalBytes() const
    {
        return omtCacheBytes + tlbExtensionBytes + cacheTagExtensionBytes;
    }
};

/** Evaluate the §4.5 model for @p p. */
inline HwCost
computeHwCost(const HwCostParams &p)
{
    HwCost cost;
    cost.omtCacheBytes =
        std::uint64_t(p.omtCacheEntries) * p.omtCacheEntryBits / 8;
    cost.tlbExtensionBytes =
        std::uint64_t(p.l1TlbEntries + p.l2TlbEntries) *
        p.obitvectorBits / 8;
    std::uint64_t lines = (p.l1Bytes + p.l2Bytes + p.l3Bytes) / p.lineBytes;
    cost.cacheTagExtensionBytes = lines * p.extraTagBitsPerLine / 8;
    return cost;
}

} // namespace ovl

#endif // OVERLAYSIM_OVERLAY_HW_COST_HH
