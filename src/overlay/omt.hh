/**
 * @file
 * The Overlay Mapping Table (§4.2, §4.4.4) and the memory-controller OMT
 * cache (Figure 6, item 2). The OMT maps each overlay page number (OPN)
 * to its OBitVector and the Overlay Memory Store segment holding the
 * overlay. It is stored hierarchically in main memory, like a page table,
 * and is walked by the memory controller; the 64-entry OMT cache holds
 * recently used entries together with their segment metadata.
 */

#ifndef OVERLAYSIM_OVERLAY_OMT_HH
#define OVERLAYSIM_OVERLAY_OMT_HH

#include <algorithm>
#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/bitvector64.hh"
#include "common/types.hh"
#include "overlay/oms_segment.hh"
#include "overlay/overlay_addr.hh"
#include "overlay/page_alloc.hh"
#include "sim/sim_object.hh"

namespace ovl
{

/**
 * One OMT entry: the OBitVector of the overlay page, and (once the first
 * dirty line has been written back) the OMS segment storing it. Segment
 * metadata (slot pointers, free vector) lives in the segment's first line
 * in memory; it is mirrored here and cached alongside the entry in the
 * OMT cache (§4.4.4).
 */
struct OmtEntry
{
    /** No functional page data attached (see OverlayManager's store). */
    static constexpr std::uint32_t kNoPageData = ~std::uint32_t(0);

    BitVector64 obv;
    bool hasSegment = false;
    /** Index of the overlay's functional page data, or kNoPageData. */
    std::uint32_t pageDataIdx = kNoPageData;
    OmsSegment seg;
};

/**
 * Functional container plus radix-layout model of the OMT. The table is
 * laid out as a 4-level radix tree over the OPN; each level's node
 * occupies memory provided by the node allocator so that walks touch
 * realistic DRAM addresses.
 *
 * Storage mirrors the VM layer's PageTable: a sorted directory of
 * 512-entry leaf chunks keyed by opn >> 9, binary-searched with a
 * one-entry MRU chunk cache. Each chunk slot holds an index into a
 * pooled entry arena (stable std::deque storage), so a lookup is a
 * compare, an index and an array read — no hashing — while sparse OPN
 * spaces cost only one small chunk per populated 512-OPN window. The
 * chunk also caches its radix walk lines: every OPN in a chunk shares
 * the three upper-level node lines, and the leaf node page corresponds
 * 1:1 to the chunk, so a walk of a populated chunk is pure arithmetic.
 */
class Omt : public SimObject
{
  public:
    /** Number of radix levels walked on an OMT-cache miss. */
    static constexpr unsigned kWalkLevels = 4;

    /** @p node_page_alloc provides pages to hold table nodes. */
    Omt(std::string name, PageAllocFn node_page_alloc);

    /** Find an entry; nullptr when the OPN has no overlay. */
    OmtEntry *find(Opn opn);
    const OmtEntry *find(Opn opn) const;

    /** Find-or-create the entry for @p opn. */
    OmtEntry &findOrCreate(Opn opn);

    /** Remove an entry (overlay discarded/committed, §4.3.4). */
    void erase(Opn opn);

    std::size_t size() const { return size_; }

    /** Populated 512-OPN windows (accounting/tests). */
    std::size_t chunkCount() const { return chunks_.size(); }

    /**
     * Main-memory line addresses touched by a table walk for @p opn, in
     * dependence order (one node line per level). The walk descends only
     * nodes that exist: like a page-table walk, it terminates at the
     * first non-present level, so looking up an OPN with no overlay is
     * cheap. Walks never allocate nodes; node allocation happens when an
     * entry is created (see ensureNodePath()).
     */
    void walkAddresses(Opn opn, std::vector<Addr> &out) const;

    /**
     * Deepest existing node line of a walk for @p opn (what the
     * controller reads on an OMT-cache miss), or kInvalidAddr when no
     * level of the path exists. Equals walkAddresses(...).back() but
     * resolves populated chunks without touching the node map.
     */
    Addr walkLastAddr(Opn opn) const;

    /** Materialize the radix path for @p opn (entry creation/update). */
    void ensureNodePath(Opn opn);

    /** Memory footprint of all allocated table nodes, in bytes. */
    std::uint64_t nodeBytes() const { return nodeBytes_.value(); }

    /**
     * Snapshot the full table: chunk directory, entry arena (preserving
     * arena indices — chunk slots reference them), free list, and the
     * radix-node map. The node allocator is structural and not
     * serialized; the MRU caches are reset on restore.
     */
    void serialize(snapshot::Writer &w) const;
    void deserialize(snapshot::Reader &r);

    /** Visit every live entry as fn(opn, entry), in ascending OPN order. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (const auto &[chunk_id, chunk] : chunks_) {
            if (chunk->live == 0)
                continue;
            for (unsigned s = 0; s < kChunkSize; ++s) {
                std::uint32_t idx = chunk->slots[s];
                if (idx != kNoEntry)
                    fn(Opn((chunk_id << kChunkBits) | s), arena_[idx]);
            }
        }
    }

  private:
    static constexpr unsigned kChunkBits = 9;
    static constexpr unsigned kChunkSize = 1u << kChunkBits;
    static constexpr std::uint32_t kNoEntry = ~std::uint32_t(0);

    /** One 512-OPN window of the table. */
    struct Chunk
    {
        Chunk()
        {
            slots.fill(kNoEntry);
            upperLines.fill(kInvalidAddr);
        }

        /** Arena index per OPN in the window, or kNoEntry. */
        std::array<std::uint32_t, kChunkSize> slots;
        /** Cached walk lines of radix levels 0..2 (shared chunk-wide). */
        std::array<Addr, kWalkLevels - 1> upperLines;
        /** Base of the chunk's leaf node page; kInvalidAddr until the
         *  first entry materializes the path. */
        Addr leafBase = kInvalidAddr;
        /** Live entries in this chunk. */
        std::uint32_t live = 0;
    };

    Chunk *findChunk(std::uint64_t chunk_id) const;
    Chunk &ensureChunk(std::uint64_t chunk_id);
    /** Record the chunk's four walk lines (path must exist). */
    void fillChunkWalkCache(std::uint64_t chunk_id, Chunk &chunk);

    /** Node line for (level, opn); kInvalidAddr when absent and !create. */
    Addr nodeLineAddr(unsigned level, Opn opn, bool create);

    PageAllocFn nodePageAlloc_;

    /** Directory of leaf chunks, sorted by chunk id. */
    std::vector<std::pair<std::uint64_t, std::unique_ptr<Chunk>>> chunks_;
    mutable std::uint64_t cachedChunkId_ = ~std::uint64_t(0);
    mutable Chunk *cachedChunk_ = nullptr;

    /** Entry arena: deque storage keeps references stable forever. */
    std::deque<OmtEntry> arena_;
    std::vector<std::uint32_t> freeEntries_;
    std::size_t size_ = 0;

    /** (level, index-prefix) -> node base address. Cold path only:
     *  node creation and walks of unpopulated chunks. */
    std::unordered_map<std::uint64_t, Addr> nodes_;

    /** One-entry MRU cache over the table (see find()). */
    mutable Opn cachedOpn_ = kInvalidAddr;
    mutable OmtEntry *cachedEntry_ = nullptr;

    stats::Counter entriesCreated_;
    stats::Counter entriesErased_;
    stats::Counter nodeBytes_;
};

// ------------------------ inline hot path ------------------------------

inline Omt::Chunk *
Omt::findChunk(std::uint64_t chunk_id) const
{
    // The access stream dwells in one 2 MB OPN window at a time (a fork's
    // overlays share one chunk), so the MRU compare almost always wins.
    if (chunk_id == cachedChunkId_)
        return cachedChunk_;
    auto it = std::lower_bound(
        chunks_.begin(), chunks_.end(), chunk_id,
        [](const auto &e, std::uint64_t id) { return e.first < id; });
    if (it == chunks_.end() || it->first != chunk_id)
        return nullptr;
    cachedChunkId_ = chunk_id;
    cachedChunk_ = it->second.get();
    return cachedChunk_;
}

inline OmtEntry *
Omt::find(Opn opn)
{
    // The controller resolves the same OPN several times per operation
    // (omtAccess, then the read/writeback body); a one-entry MRU cache
    // turns the repeats into a compare. Arena entries never move, so
    // inserts don't invalidate the cached pointer.
    if (opn == cachedOpn_)
        return cachedEntry_;
    Chunk *chunk = findChunk(opn >> kChunkBits);
    if (chunk == nullptr)
        return nullptr;
    std::uint32_t idx = chunk->slots[opn & (kChunkSize - 1)];
    if (idx == kNoEntry)
        return nullptr;
    cachedOpn_ = opn;
    cachedEntry_ = &arena_[idx];
    return cachedEntry_;
}

inline const OmtEntry *
Omt::find(Opn opn) const
{
    return const_cast<Omt *>(this)->find(opn);
}

inline Addr
Omt::walkLastAddr(Opn opn) const
{
    Chunk *chunk = findChunk(opn >> kChunkBits);
    if (chunk != nullptr && chunk->leafBase != kInvalidAddr) {
        // 8-byte slots, 8 per line: the leaf line is pure arithmetic.
        return chunk->leafBase +
               Addr((opn & (kChunkSize - 1)) >> 3) * kLineSize;
    }
    // Unpopulated chunk: walk the node map, keeping the deepest level.
    Addr last = kInvalidAddr;
    for (unsigned level = 0; level < kWalkLevels; ++level) {
        Addr node =
            const_cast<Omt *>(this)->nodeLineAddr(level, opn, false);
        if (node == kInvalidAddr)
            break;
        last = node;
    }
    return last;
}

/** OMT-cache configuration (Table 2: 64 entries; §4.5 sizes each at 512 b). */
struct OmtCacheParams
{
    unsigned entries = 64;
    unsigned associativity = 4;
    /** Lookup latency in CPU cycles (small controller SRAM). */
    Tick hitLatency = 4;
    /**
     * Flat cost of a miss (the hierarchical OMT walk + segment-metadata
     * read). Table 2 charges "miss latency = 1000 cycles", mirroring the
     * flat TLB-walk cost.
     */
    Tick missLatency = 1000;
};

/**
 * The memory controller's cache of OMT entries. Tracks which cached
 * entries have been modified so that the dirty OMT state is written back
 * on eviction (§4.4.4). Stores only OPN tags; entry payloads stay in the
 * functional Omt.
 */
class OmtCache : public SimObject
{
  public:
    OmtCache(std::string name, OmtCacheParams params);

    /** Result of a lookup-allocate. */
    struct LookupResult
    {
        bool hit = false;
        /** OPN of a modified entry displaced by the fill, if any. */
        Opn writebackOpn = kInvalidAddr;
        bool needsWriteback = false;
    };

    /** Look up @p opn, allocating it (possibly evicting) on a miss. */
    LookupResult lookupAllocate(Opn opn);

    /**
     * lookupAllocate() fused with markModified(): the overlaying-write
     * fast path updates the entry it just resolved, so marking it during
     * the lookup saves the second tag scan. State-identical to
     * lookupAllocate(opn) followed by markModified(opn).
     */
    LookupResult lookupAllocateModify(Opn opn);

    /** Mark the cached copy of @p opn modified (OBitVector/slot update). */
    void markModified(Opn opn);

    /** Drop @p opn if cached; returns true if it was modified. */
    bool invalidate(Opn opn);

    /** Tag probe without replacement update. */
    bool isPresent(Opn opn) const;

    const OmtCacheParams &params() const { return params_; }

    /** SRAM cost of the cache: entries x 512 bits (§4.5). */
    std::uint64_t storageBits() const { return std::uint64_t(params_.entries) * 512; }

    std::uint64_t hits() const { return hits_.value(); }
    std::uint64_t misses() const { return misses_.value(); }

    /** Snapshot tags, modified bits and recency state. */
    void serialize(snapshot::Writer &w) const;
    void deserialize(snapshot::Reader &r);

  private:
    struct Way
    {
        bool valid = false;
        bool modified = false;
        Opn opn = kInvalidAddr;
        std::uint64_t lruSeq = 0;
    };

    unsigned setOf(Opn opn) const { return unsigned(opn) & (numSets_ - 1); }
    Way *findWay(Opn opn);
    const Way *findWay(Opn opn) const;
    /** Shared body of the lookup variants: returns the resolved way. */
    Way &lookupAllocateWay(Opn opn, LookupResult &res);

    OmtCacheParams params_;
    unsigned numSets_;
    std::vector<Way> ways_;
    std::uint64_t lruCounter_ = 0;

    stats::Counter hits_;
    stats::Counter misses_;
    stats::Counter writebacks_;
};

} // namespace ovl

#endif // OVERLAYSIM_OVERLAY_OMT_HH
