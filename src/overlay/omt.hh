/**
 * @file
 * The Overlay Mapping Table (§4.2, §4.4.4) and the memory-controller OMT
 * cache (Figure 6, item 2). The OMT maps each overlay page number (OPN)
 * to its OBitVector and the Overlay Memory Store segment holding the
 * overlay. It is stored hierarchically in main memory, like a page table,
 * and is walked by the memory controller; the 64-entry OMT cache holds
 * recently used entries together with their segment metadata.
 */

#ifndef OVERLAYSIM_OVERLAY_OMT_HH
#define OVERLAYSIM_OVERLAY_OMT_HH

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/bitvector64.hh"
#include "common/types.hh"
#include "overlay/oms_segment.hh"
#include "overlay/overlay_addr.hh"
#include "sim/sim_object.hh"

namespace ovl
{

/**
 * One OMT entry: the OBitVector of the overlay page, and (once the first
 * dirty line has been written back) the OMS segment storing it. Segment
 * metadata (slot pointers, free vector) lives in the segment's first line
 * in memory; it is mirrored here and cached alongside the entry in the
 * OMT cache (§4.4.4).
 */
struct OmtEntry
{
    BitVector64 obv;
    bool hasSegment = false;
    OmsSegment seg;
};

/**
 * Functional container plus radix-layout model of the OMT. The table is
 * laid out as a 4-level radix tree over the OPN; each level's node
 * occupies memory provided by the node allocator so that walks touch
 * realistic DRAM addresses.
 */
class Omt : public SimObject
{
  public:
    /** Number of radix levels walked on an OMT-cache miss. */
    static constexpr unsigned kWalkLevels = 4;

    /** @p node_page_alloc provides pages to hold table nodes. */
    Omt(std::string name, std::function<Addr()> node_page_alloc);

    /** Find an entry; nullptr when the OPN has no overlay. */
    OmtEntry *find(Opn opn);
    const OmtEntry *find(Opn opn) const;

    /** Find-or-create the entry for @p opn. */
    OmtEntry &findOrCreate(Opn opn);

    /** Remove an entry (overlay discarded/committed, §4.3.4). */
    void erase(Opn opn);

    std::size_t size() const { return table_.size(); }

    /**
     * Main-memory line addresses touched by a table walk for @p opn, in
     * dependence order (one node line per level). The walk descends only
     * nodes that exist: like a page-table walk, it terminates at the
     * first non-present level, so looking up an OPN with no overlay is
     * cheap. Walks never allocate nodes; node allocation happens when an
     * entry is created (see ensureNodePath()).
     */
    void walkAddresses(Opn opn, std::vector<Addr> &out) const;

    /** Materialize the radix path for @p opn (entry creation/update). */
    void ensureNodePath(Opn opn);

    /** Memory footprint of all allocated table nodes, in bytes. */
    std::uint64_t nodeBytes() const { return nodeBytes_.value(); }

  private:
    /** Node line for (level, opn); kInvalidAddr when absent and !create. */
    Addr nodeLineAddr(unsigned level, Opn opn, bool create);

    std::function<Addr()> nodePageAlloc_;
    std::unordered_map<Opn, OmtEntry> table_;
    /** (level, index-prefix) -> node base address. */
    std::unordered_map<std::uint64_t, Addr> nodes_;
    /** One-entry MRU cache over table_ (see find()). */
    mutable Opn cachedOpn_ = kInvalidAddr;
    mutable OmtEntry *cachedEntry_ = nullptr;

    stats::Counter entriesCreated_;
    stats::Counter entriesErased_;
    stats::Counter nodeBytes_;
};

/** OMT-cache configuration (Table 2: 64 entries; §4.5 sizes each at 512 b). */
struct OmtCacheParams
{
    unsigned entries = 64;
    unsigned associativity = 4;
    /** Lookup latency in CPU cycles (small controller SRAM). */
    Tick hitLatency = 4;
    /**
     * Flat cost of a miss (the hierarchical OMT walk + segment-metadata
     * read). Table 2 charges "miss latency = 1000 cycles", mirroring the
     * flat TLB-walk cost.
     */
    Tick missLatency = 1000;
};

/**
 * The memory controller's cache of OMT entries. Tracks which cached
 * entries have been modified so that the dirty OMT state is written back
 * on eviction (§4.4.4). Stores only OPN tags; entry payloads stay in the
 * functional Omt.
 */
class OmtCache : public SimObject
{
  public:
    OmtCache(std::string name, OmtCacheParams params);

    /** Result of a lookup-allocate. */
    struct LookupResult
    {
        bool hit = false;
        /** OPN of a modified entry displaced by the fill, if any. */
        Opn writebackOpn = kInvalidAddr;
        bool needsWriteback = false;
    };

    /** Look up @p opn, allocating it (possibly evicting) on a miss. */
    LookupResult lookupAllocate(Opn opn);

    /** Mark the cached copy of @p opn modified (OBitVector/slot update). */
    void markModified(Opn opn);

    /** Drop @p opn if cached; returns true if it was modified. */
    bool invalidate(Opn opn);

    /** Tag probe without replacement update. */
    bool isPresent(Opn opn) const;

    const OmtCacheParams &params() const { return params_; }

    /** SRAM cost of the cache: entries x 512 bits (§4.5). */
    std::uint64_t storageBits() const { return std::uint64_t(params_.entries) * 512; }

    std::uint64_t hits() const { return hits_.value(); }
    std::uint64_t misses() const { return misses_.value(); }

  private:
    struct Way
    {
        bool valid = false;
        bool modified = false;
        Opn opn = kInvalidAddr;
        std::uint64_t lruSeq = 0;
    };

    unsigned setOf(Opn opn) const { return unsigned(opn) & (numSets_ - 1); }
    Way *findWay(Opn opn);
    const Way *findWay(Opn opn) const;

    OmtCacheParams params_;
    unsigned numSets_;
    std::vector<Way> ways_;
    std::uint64_t lruCounter_ = 0;

    stats::Counter hits_;
    stats::Counter misses_;
    stats::Counter writebacks_;
};

} // namespace ovl

#endif // OVERLAYSIM_OVERLAY_OMT_HH
