#include "overlay_manager.hh"

#include <algorithm>

#include "common/debug.hh"
#include "common/logging.hh"
#include "sim/profile.hh"
#include "sim/snapshot.hh"
#include "sim/trace.hh"

namespace ovl
{

OverlayManager::OverlayManager(std::string name, OverlayManagerParams params,
                               DramController &dram_ctrl,
                               PageAllocFn os_alloc_page)
    : SimObject(std::move(name)), params_(params), dramCtrl_(dram_ctrl),
      omt_(this->name() + ".omt", os_alloc_page),
      omtCache_(this->name() + ".omtCache", params.omtCache),
      allocator_(this->name() + ".oms", params.allocator, os_alloc_page),
      overlayReads_(&statGroup(), "overlayReads",
                    "overlay lines read from the OMS"),
      overlayWritebacks_(&statGroup(), "overlayWritebacks",
                         "dirty overlay lines written to the OMS"),
      slotAllocations_(&statGroup(), "slotAllocations",
                       "OMS slots lazily allocated"),
      migrations_(&statGroup(), "migrations",
                  "segments migrated to a larger class"),
      omtWalks_(&statGroup(), "omtWalks", "OMT table walks"),
      oreMessages_(&statGroup(), "oreMessages",
                   "overlaying-read-exclusive messages processed"),
      omsBytesGauge_(&statGroup(), "omsBytes",
                     "OMS bytes currently allocated")
{
}

// --------------------------- functional side ---------------------------

OverlayManager::OverlayPageData *
OverlayManager::findPageData(Opn opn) const
{
    const OmtEntry *entry = omt_.find(opn);
    if (entry == nullptr || entry->pageDataIdx == OmtEntry::kNoPageData)
        return nullptr;
    return pageStore_[entry->pageDataIdx].get();
}

OverlayManager::OverlayPageData &
OverlayManager::ensurePageData(OmtEntry &entry)
{
    if (entry.pageDataIdx != OmtEntry::kNoPageData)
        return *pageStore_[entry.pageDataIdx];
    std::uint32_t idx;
    if (!freePages_.empty()) {
        idx = freePages_.back();
        freePages_.pop_back();
        pageStore_[idx]->present = BitVector64();
    } else {
        idx = std::uint32_t(pageStore_.size());
        pageStore_.push_back(std::make_unique<OverlayPageData>());
    }
    entry.pageDataIdx = idx;
    return *pageStore_[idx];
}

bool
OverlayManager::hasOverlay(Opn opn) const
{
    const OmtEntry *entry = omt_.find(opn);
    return entry != nullptr && entry->obv.any();
}

BitVector64
OverlayManager::obitvector(Opn opn) const
{
    const OmtEntry *entry = omt_.find(opn);
    return entry ? entry->obv : BitVector64();
}

void
OverlayManager::writeLineData(Opn opn, unsigned line_in_page,
                              const LineData &data)
{
    ovl_assert(line_in_page < kLinesPerPage, "line index out of page");
    OmtEntry &entry = omt_.findOrCreate(opn);
    entry.obv.set(line_in_page);
    OverlayPageData &page = ensurePageData(entry);
    page.present.set(line_in_page);
    page.lines[line_in_page] = data;
}

void
OverlayManager::readLineData(Opn opn, unsigned line_in_page,
                             LineData &out) const
{
    const OverlayPageData *page = findPageData(opn);
    ovl_assert(page != nullptr, "reading a line of a missing overlay");
    ovl_assert(page->present.test(line_in_page),
               "reading an unmapped overlay line");
    out = page->lines[line_in_page];
}

bool
OverlayManager::hasLineData(Opn opn, unsigned line_in_page) const
{
    const OverlayPageData *page = findPageData(opn);
    return page != nullptr && page->present.test(line_in_page);
}

void
OverlayManager::clearLine(Opn opn, unsigned line_in_page)
{
    OmtEntry *entry = omt_.find(opn);
    if (entry == nullptr)
        return;
    entry->obv.clear(line_in_page);
    if (entry->hasSegment && entry->seg.cls != SegClass::Seg4KB) {
        std::uint8_t slot = entry->seg.meta.slotOf[line_in_page];
        if (slot != kInvalidSlot) {
            entry->seg.meta.freeSlot(slot);
            entry->seg.meta.slotOf[line_in_page] = kInvalidSlot;
        }
    }
    if (entry->pageDataIdx != OmtEntry::kNoPageData)
        pageStore_[entry->pageDataIdx]->present.clear(line_in_page);
}

void
OverlayManager::discardOverlay(Opn opn)
{
    OmtEntry *entry = omt_.find(opn);
    if (entry == nullptr)
        return;
    releaseSegment(*entry);
    if (entry->pageDataIdx != OmtEntry::kNoPageData)
        freePages_.push_back(entry->pageDataIdx);
    omt_.erase(opn);
    omtCache_.invalidate(opn);
}

// ----------------------------- timing side -----------------------------

Tick
OverlayManager::omtAccess(Opn opn, Tick when)
{
    return finishOmtAccess(opn, omtCache_.lookupAllocate(opn), when);
}

Tick
OverlayManager::finishOmtAccess(Opn opn, const OmtCache::LookupResult &res,
                                Tick when)
{
    Tick t = when + omtCache_.params().hitLatency;
    if (res.hit)
        return t;
    OVL_PROF_SCOPE(OmtWalk);

    // Miss: write back a displaced modified entry, then walk the table.
    // The walk (radix descent + segment-metadata read, §4.4.4) is
    // charged as the flat Table 2 miss latency, mirroring the flat
    // TLB-walk cost; one representative node read is issued to DRAM so
    // the walk still consumes memory bandwidth.
    if (res.needsWriteback) {
        const OmtEntry *victim = omt_.find(res.writebackOpn);
        if (victim != nullptr && victim->hasSegment)
            dramCtrl_.enqueueWrite(victim->seg.metaLineAddr(), t);
    }
    ++omtWalks_;
    Addr deepest = omt_.walkLastAddr(opn);
    if (deepest != kInvalidAddr)
        dramCtrl_.read(deepest, t);
    Tick done = t + params_.omtCache.missLatency;
    if (trace::active()) {
        trace::complete("overlay", "omt_walk", when, done - when,
                        {{"opn", opn}});
    }
    return done;
}

Tick
OverlayManager::readLine(Addr overlay_line_addr, Tick when)
{
    ovl_assert(overlay_addr::isOverlay(overlay_line_addr),
               "not an overlay address");
    Opn opn = overlay_line_addr >> kPageShift;
    unsigned line = lineInPage(overlay_line_addr);

    ++overlayReads_;
    Tick t = omtAccess(opn, when);

    OmtEntry *entry = omt_.find(opn);
    ovl_assert(entry != nullptr && entry->obv.test(line),
               "controller read of an unmapped overlay line");

    // A line can reach the controller before it was ever evicted (e.g.,
    // after an explicit invalidate): allocate its slot on demand.
    Addr slot_addr = ensureSlot(*entry, opn, line, t);
    return dramCtrl_.read(slot_addr, t);
}

Tick
OverlayManager::writebackLine(Addr overlay_line_addr, Tick when)
{
    ovl_assert(overlay_addr::isOverlay(overlay_line_addr),
               "not an overlay address");
    Opn opn = overlay_line_addr >> kPageShift;
    unsigned line = lineInPage(overlay_line_addr);

    ++overlayWritebacks_;
    Tick t = omtAccess(opn, when);

    OmtEntry *entry = omt_.find(opn);
    if (entry == nullptr || !entry->obv.test(line)) {
        // The overlay was discarded while its line was still cached; the
        // writeback is dropped (the data is dead).
        return t;
    }
    Addr slot_addr = ensureSlot(*entry, opn, line, t);
    return dramCtrl_.enqueueWrite(slot_addr, t);
}

Tick
OverlayManager::overlayingReadExclusive(Opn opn, unsigned line_in_page,
                                        Tick when)
{
    ++oreMessages_;
    // The ORE always modifies the entry it resolves, so the OMT-cache
    // lookup and the modified-mark are fused into one tag scan.
    Tick t = finishOmtAccess(opn, omtCache_.lookupAllocateModify(opn), when);
    OmtEntry &entry = omt_.findOrCreate(opn);
    entry.obv.set(line_in_page);
    return t;
}

// ----------------------------- internals -------------------------------

void
OverlayManager::allocateSegment(OmtEntry &entry, SegClass cls)
{
    ovl_trace(overlay, "segment alloc: %lluB",
              (unsigned long long)segClassBytes(cls));
    entry.seg.baseAddr = allocator_.allocate(cls);
    entry.seg.cls = cls;
    entry.seg.meta = SegmentMeta();
    entry.seg.meta.initFree(cls);
    entry.hasSegment = true;
    omsBytesInUse_ += segClassBytes(cls);
    omsBytesGauge_.set(std::int64_t(omsBytesInUse_));
}

void
OverlayManager::releaseSegment(OmtEntry &entry)
{
    if (!entry.hasSegment)
        return;
    allocator_.release(entry.seg.baseAddr, entry.seg.cls);
    omsBytesInUse_ -= segClassBytes(entry.seg.cls);
    omsBytesGauge_.set(std::int64_t(omsBytesInUse_));
    entry.hasSegment = false;
    entry.seg = OmsSegment();
}

void
OverlayManager::migrateSegment(OmtEntry &entry, Opn opn, Tick &when)
{
    ovl_assert(entry.hasSegment, "migrating a segment-less overlay");
    ovl_assert(entry.seg.cls != SegClass::Seg4KB, "4 KB segments never grow");
    ++migrations_;
    OVL_PROF_SCOPE(OmsAlloc);

    ovl_trace(overlay, "migrate: opn=%llx from %lluB (obv=%u lines)",
              (unsigned long long)opn,
              (unsigned long long)segClassBytes(entry.seg.cls),
              entry.obv.count());
    if (trace::active()) {
        trace::instant("overlay", "oms_migrate", when,
                       {{"opn", opn},
                        {"from_bytes", segClassBytes(entry.seg.cls)}});
    }
    OmsSegment old_seg = entry.seg;
    omsBytesInUse_ -= segClassBytes(old_seg.cls);
    // The OBitVector already says how many lines this overlay will hold:
    // jump straight to a segment that fits them all, instead of walking
    // the class ladder one migration (and one full copy) at a time.
    SegClass target = segClassFor(
        std::max(entry.obv.count(), old_seg.usedSlots() + 1));
    if (unsigned(target) <= unsigned(old_seg.cls))
        target = segClassNext(old_seg.cls);
    allocateSegment(entry, target);

    // Copy the resident lines into the new segment (reads + buffered
    // writes through the controller; rare and off the critical path,
    // §4.4: triggered only by dirty-overlay-line writebacks).
    for (unsigned line = 0; line < kLinesPerPage; ++line) {
        if (old_seg.meta.slotOf[line] == kInvalidSlot)
            continue;
        Addr src = old_seg.lineAddr(line);
        when = dramCtrl_.read(src, when);
        if (entry.seg.cls != SegClass::Seg4KB) {
            std::uint8_t slot = entry.seg.meta.allocSlot();
            ovl_assert(slot != kInvalidSlot, "migrated segment too small");
            entry.seg.meta.slotOf[line] = slot;
        }
        dramCtrl_.enqueueWrite(entry.seg.lineAddr(line), when);
    }
    // Update the new segment's metadata line and free the old segment.
    if (entry.seg.cls != SegClass::Seg4KB)
        dramCtrl_.enqueueWrite(entry.seg.metaLineAddr(), when);
    allocator_.release(old_seg.baseAddr, old_seg.cls);
    omtCache_.markModified(opn);
}

Addr
OverlayManager::ensureSlot(OmtEntry &entry, Opn opn, unsigned line_in_page,
                           Tick &when)
{
    OVL_PROF_SCOPE(OmsAlloc);
    if (!entry.hasSegment) {
        // Size the first segment for the lines the OBitVector already
        // maps (the smallest class that fits, §4.4.2) — or a full page
        // when compact segments are disabled (§4.4's simple variant).
        SegClass cls = params_.fullPageSegments
                           ? SegClass::Seg4KB
                           : segClassFor(std::max(1u, entry.obv.count()));
        allocateSegment(entry, cls);
        omtCache_.markModified(opn);
    }
    if (entry.seg.hasSlot(line_in_page))
        return entry.seg.lineAddr(line_in_page);

    // 4 KB segments map every line directly; hasSlot() was true above.
    std::uint8_t slot = entry.seg.meta.allocSlot();
    if (slot == kInvalidSlot) {
        migrateSegment(entry, opn, when);
        if (entry.seg.cls == SegClass::Seg4KB) {
            ++slotAllocations_;
            return entry.seg.lineAddr(line_in_page);
        }
        slot = entry.seg.meta.allocSlot();
        ovl_assert(slot != kInvalidSlot, "segment still full after growth");
    }
    entry.seg.meta.slotOf[line_in_page] = slot;
    ++slotAllocations_;
    // Metadata line update travels with the data writeback.
    dramCtrl_.enqueueWrite(entry.seg.metaLineAddr(), when);
    omtCache_.markModified(opn);
    return entry.seg.lineAddr(line_in_page);
}

void
OverlayManager::serialize(snapshot::Writer &w) const
{
    w.beginSection("OVLM");
    omt_.serialize(w);
    omtCache_.serialize(w);
    allocator_.serialize(w);
    // Page-data slots are written index-for-index (retired slots as
    // absent) so OmtEntry::pageDataIdx stays valid across the round
    // trip.
    w.u64(pageStore_.size());
    for (const auto &page : pageStore_) {
        w.b(page != nullptr);
        if (page == nullptr)
            continue;
        w.u64(page->present.raw());
        w.blob(page->lines.data(), sizeof(page->lines));
    }
    w.u64(freePages_.size());
    for (std::uint32_t idx : freePages_)
        w.u32(idx);
    w.u64(omsBytesInUse_);
    w.endSection();
}

void
OverlayManager::deserialize(snapshot::Reader &r)
{
    r.expectSection("OVLM");
    omt_.deserialize(r);
    omtCache_.deserialize(r);
    allocator_.deserialize(r);
    std::uint64_t num_pages = r.count(1);
    pageStore_.clear();
    pageStore_.reserve(num_pages);
    for (std::uint64_t i = 0; i < num_pages; ++i) {
        if (!r.b()) {
            pageStore_.push_back(nullptr);
            continue;
        }
        auto page = std::make_unique<OverlayPageData>();
        page->present = BitVector64(r.u64());
        r.blob(page->lines.data(), sizeof(page->lines));
        pageStore_.push_back(std::move(page));
    }
    freePages_.resize(r.count(4));
    for (std::uint32_t &idx : freePages_) {
        idx = r.u32();
        if (idx >= pageStore_.size())
            r.fail("overlay free-page index out of store bounds");
    }
    omsBytesInUse_ = r.u64();
    omsBytesGauge_.set(std::int64_t(omsBytesInUse_));
    r.endSection();
}

std::uint64_t
OverlayManager::segmentCount(SegClass cls) const
{
    std::uint64_t count = 0;
    // Linear scan over live overlays: accounting only, never on the
    // access path.
    omt_.forEach([&](Opn, const OmtEntry &entry) {
        if (entry.hasSegment && entry.seg.cls == cls)
            ++count;
    });
    return count;
}

} // namespace ovl
