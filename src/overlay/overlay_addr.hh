/**
 * @file
 * The Overlay Address Space and the direct virtual-to-overlay mapping
 * (§4.1, Figure 5). The overlay address of virtual address `vaddr` in
 * process `PID` is the concatenation {1, PID, vaddr}: the MSB marks the
 * unused portion of the physical address space reserved for overlays, the
 * 15-bit PID guarantees no two processes share an overlay page (avoiding
 * the synonym problem), and the 48-bit vaddr completes the 1-1 mapping.
 */

#ifndef OVERLAYSIM_OVERLAY_OVERLAY_ADDR_HH
#define OVERLAYSIM_OVERLAY_OVERLAY_ADDR_HH

#include "common/logging.hh"
#include "common/types.hh"

namespace ovl
{

/** Overlay page number: the page-granular key of the OMT. */
using Opn = Addr;

namespace overlay_addr
{

constexpr unsigned kVaddrBits = 48;
constexpr unsigned kAsidBits = 15;
constexpr Addr kVaddrMask = (Addr(1) << kVaddrBits) - 1;
constexpr Addr kOverlayBit = Addr(1) << 63;

/** Maximum process count supported by the concatenation scheme: 2^15. */
constexpr unsigned kMaxProcesses = 1u << kAsidBits;

/** True if @p addr lies in the Overlay Address Space. */
constexpr bool
isOverlay(Addr addr)
{
    return (addr & kOverlayBit) != 0;
}

/** Overlay address of (@p asid, @p vaddr): {1, PID, vaddr} (Figure 5). */
inline Addr
fromVirtual(Asid asid, Addr vaddr)
{
    ovl_assert(asid < kMaxProcesses, "ASID exceeds 15 bits");
    ovl_assert((vaddr & ~kVaddrMask) == 0, "vaddr exceeds 48 bits");
    return kOverlayBit | (Addr(asid) << kVaddrBits) | vaddr;
}

/** Overlay page number of (@p asid, @p vpn). */
inline Opn
pageFromVirtual(Asid asid, Addr vpn)
{
    return fromVirtual(asid, vpn << kPageShift) >> kPageShift;
}

/** Recover the ASID from an overlay address. */
constexpr Asid
asidOf(Addr overlay_addr)
{
    return Asid((overlay_addr >> kVaddrBits) & (kMaxProcesses - 1));
}

/** Recover the virtual address from an overlay address. */
constexpr Addr
vaddrOf(Addr overlay_addr)
{
    return overlay_addr & kVaddrMask;
}

} // namespace overlay_addr

} // namespace ovl

#endif // OVERLAYSIM_OVERLAY_OVERLAY_ADDR_HH
