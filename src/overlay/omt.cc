#include "omt.hh"

#include "common/intmath.hh"
#include "common/logging.hh"

namespace ovl
{

Omt::Omt(std::string name, std::function<Addr()> node_page_alloc)
    : SimObject(std::move(name)), nodePageAlloc_(std::move(node_page_alloc)),
      entriesCreated_(&statGroup(), "entriesCreated", "OMT entries created"),
      entriesErased_(&statGroup(), "entriesErased", "OMT entries erased"),
      nodeBytes_(&statGroup(), "nodeBytes", "bytes of OMT radix nodes")
{
    ovl_assert(nodePageAlloc_ != nullptr, "OMT needs a node allocator");
    // Typical workloads keep hundreds to thousands of overlays live;
    // reserving up front keeps the hot find() path rehash-free.
    table_.reserve(1024);
    nodes_.reserve(256);
}

OmtEntry *
Omt::find(Opn opn)
{
    // The controller resolves the same OPN several times per operation
    // (omtAccess, then the read/writeback body); a one-entry MRU cache
    // turns the repeats into a compare. Map nodes are stable across
    // rehash, so inserts don't invalidate the cached pointer.
    if (opn == cachedOpn_)
        return cachedEntry_;
    auto it = table_.find(opn);
    if (it == table_.end())
        return nullptr;
    cachedOpn_ = opn;
    cachedEntry_ = &it->second;
    return cachedEntry_;
}

const OmtEntry *
Omt::find(Opn opn) const
{
    return const_cast<Omt *>(this)->find(opn);
}

OmtEntry &
Omt::findOrCreate(Opn opn)
{
    if (opn == cachedOpn_)
        return *cachedEntry_;
    auto [it, inserted] = table_.try_emplace(opn);
    if (inserted) {
        ++entriesCreated_;
        ensureNodePath(opn);
    }
    cachedOpn_ = opn;
    cachedEntry_ = &it->second;
    return it->second;
}

void
Omt::erase(Opn opn)
{
    if (table_.erase(opn) > 0)
        ++entriesErased_;
    if (opn == cachedOpn_) {
        cachedOpn_ = kInvalidAddr;
        cachedEntry_ = nullptr;
    }
}

Addr
Omt::nodeLineAddr(unsigned level, Opn opn, bool create)
{
    // Radix layout: level L is indexed by the OPN's top (L+1)*9 bits; each
    // node is one page of 512 8-byte slots, so consecutive prefixes share
    // node pages realistically.
    constexpr unsigned kBitsPerLevel = 9;
    unsigned shift = (kWalkLevels - 1 - level) * kBitsPerLevel;
    std::uint64_t index = (opn >> shift);
    std::uint64_t node_index = index >> kBitsPerLevel; // which node page
    std::uint64_t slot = index & ((1u << kBitsPerLevel) - 1);

    std::uint64_t key = (std::uint64_t(level) << 56) ^ node_index;
    auto it = nodes_.find(key);
    if (it == nodes_.end()) {
        if (!create)
            return kInvalidAddr;
        it = nodes_.emplace(key, nodePageAlloc_()).first;
        nodeBytes_ += kPageSize;
    }
    // 8-byte slots: 8 slots per 64 B line.
    return it->second + roundDown(slot * 8, kLineSize);
}

void
Omt::walkAddresses(Opn opn, std::vector<Addr> &out) const
{
    out.clear();
    for (unsigned level = 0; level < kWalkLevels; ++level) {
        Addr node = const_cast<Omt *>(this)->nodeLineAddr(level, opn,
                                                          false);
        if (node == kInvalidAddr)
            break; // non-present level: the walk ends here
        out.push_back(node);
    }
}

void
Omt::ensureNodePath(Opn opn)
{
    for (unsigned level = 0; level < kWalkLevels; ++level)
        nodeLineAddr(level, opn, true);
}

OmtCache::OmtCache(std::string name, OmtCacheParams params)
    : SimObject(std::move(name)), params_(params),
      numSets_(params.entries / params.associativity),
      ways_(params.entries),
      hits_(&statGroup(), "hits", "OMT cache hits"),
      misses_(&statGroup(), "misses", "OMT cache misses (table walks)"),
      writebacks_(&statGroup(), "writebacks", "modified entries evicted")
{
    ovl_assert(params.entries % params.associativity == 0,
               "OMT cache entries must divide evenly into sets");
    ovl_assert(isPowerOf2(numSets_), "OMT cache set count must be 2^n");
}

OmtCache::Way *
OmtCache::findWay(Opn opn)
{
    Way *set = &ways_[std::size_t(setOf(opn)) * params_.associativity];
    for (unsigned w = 0; w < params_.associativity; ++w) {
        if (set[w].valid && set[w].opn == opn)
            return &set[w];
    }
    return nullptr;
}

const OmtCache::Way *
OmtCache::findWay(Opn opn) const
{
    return const_cast<OmtCache *>(this)->findWay(opn);
}

OmtCache::LookupResult
OmtCache::lookupAllocate(Opn opn)
{
    if (Way *way = findWay(opn)) {
        ++hits_;
        way->lruSeq = ++lruCounter_;
        return LookupResult{true, kInvalidAddr, false};
    }

    ++misses_;
    Way *set = &ways_[std::size_t(setOf(opn)) * params_.associativity];
    Way *victim = &set[0];
    for (unsigned w = 0; w < params_.associativity; ++w) {
        if (!set[w].valid) {
            victim = &set[w];
            break;
        }
        if (set[w].lruSeq < victim->lruSeq)
            victim = &set[w];
    }

    LookupResult res;
    if (victim->valid && victim->modified) {
        res.writebackOpn = victim->opn;
        res.needsWriteback = true;
        ++writebacks_;
    }
    victim->valid = true;
    victim->modified = false;
    victim->opn = opn;
    victim->lruSeq = ++lruCounter_;
    return res;
}

void
OmtCache::markModified(Opn opn)
{
    if (Way *way = findWay(opn))
        way->modified = true;
}

bool
OmtCache::invalidate(Opn opn)
{
    if (Way *way = findWay(opn)) {
        bool was_modified = way->modified;
        way->valid = false;
        way->modified = false;
        return was_modified;
    }
    return false;
}

bool
OmtCache::isPresent(Opn opn) const
{
    return findWay(opn) != nullptr;
}

} // namespace ovl
