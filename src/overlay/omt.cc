#include "omt.hh"

#include "common/intmath.hh"
#include "common/logging.hh"

namespace ovl
{

Omt::Omt(std::string name, PageAllocFn node_page_alloc)
    : SimObject(std::move(name)), nodePageAlloc_(node_page_alloc),
      entriesCreated_(&statGroup(), "entriesCreated", "OMT entries created"),
      entriesErased_(&statGroup(), "entriesErased", "OMT entries erased"),
      nodeBytes_(&statGroup(), "nodeBytes", "bytes of OMT radix nodes")
{
    ovl_assert(nodePageAlloc_, "OMT needs a node allocator");
    nodes_.reserve(256);
}

Omt::Chunk &
Omt::ensureChunk(std::uint64_t chunk_id)
{
    if (chunk_id == cachedChunkId_)
        return *cachedChunk_;
    auto it = std::lower_bound(
        chunks_.begin(), chunks_.end(), chunk_id,
        [](const auto &e, std::uint64_t id) { return e.first < id; });
    if (it == chunks_.end() || it->first != chunk_id) {
        // Chunk creation is rare (once per populated 512-OPN window, e.g.
        // once per forked process); the sorted insert is off the hot path.
        it = chunks_.insert(
            it, {chunk_id, std::make_unique<Chunk>()});
    }
    cachedChunkId_ = chunk_id;
    cachedChunk_ = it->second.get();
    return *cachedChunk_;
}

void
Omt::fillChunkWalkCache(std::uint64_t chunk_id, Chunk &chunk)
{
    // Levels 0..2 are functions of the chunk id alone: every OPN in the
    // window shares them. The leaf node page is the chunk itself.
    Opn first_opn = Opn(chunk_id << kChunkBits);
    for (unsigned level = 0; level + 1 < kWalkLevels; ++level)
        chunk.upperLines[level] = nodeLineAddr(level, first_opn, false);
    std::uint64_t key =
        (std::uint64_t(kWalkLevels - 1) << 56) ^ chunk_id;
    auto it = nodes_.find(key);
    ovl_assert(it != nodes_.end(), "leaf node missing after path creation");
    chunk.leafBase = it->second;
}

OmtEntry &
Omt::findOrCreate(Opn opn)
{
    if (opn == cachedOpn_)
        return *cachedEntry_;
    Chunk &chunk = ensureChunk(opn >> kChunkBits);
    std::uint32_t &slot = chunk.slots[opn & (kChunkSize - 1)];
    if (slot == kNoEntry) {
        ++entriesCreated_;
        if (chunk.leafBase == kInvalidAddr) {
            // First entry of this 512-OPN window: materialize the radix
            // path and cache the chunk's walk lines. Every other OPN in
            // the window shares all four node pages (levels 0..2 are
            // functions of the chunk id; the leaf page is the chunk), so
            // a filled walk cache proves ensureNodePath would be a no-op.
            ensureNodePath(opn);
            fillChunkWalkCache(opn >> kChunkBits, chunk);
        }
        if (!freeEntries_.empty()) {
            slot = freeEntries_.back();
            freeEntries_.pop_back();
            arena_[slot] = OmtEntry();
        } else {
            slot = std::uint32_t(arena_.size());
            arena_.emplace_back();
        }
        ++chunk.live;
        ++size_;
    }
    cachedOpn_ = opn;
    cachedEntry_ = &arena_[slot];
    return *cachedEntry_;
}

void
Omt::erase(Opn opn)
{
    // Drop the MRU entry first: after the slot is recycled the cached
    // pointer would alias whatever OPN claims the arena slot next.
    if (opn == cachedOpn_) {
        cachedOpn_ = kInvalidAddr;
        cachedEntry_ = nullptr;
    }
    Chunk *chunk = findChunk(opn >> kChunkBits);
    if (chunk == nullptr)
        return;
    std::uint32_t &slot = chunk->slots[opn & (kChunkSize - 1)];
    if (slot == kNoEntry)
        return;
    freeEntries_.push_back(slot);
    slot = kNoEntry;
    --chunk->live;
    --size_;
    ++entriesErased_;
    // Chunks (and their radix nodes) are retained: table nodes are never
    // freed, so walks of erased OPNs still see the full path, exactly as
    // a hardware table walk would.
}

Addr
Omt::nodeLineAddr(unsigned level, Opn opn, bool create)
{
    // Radix layout: level L is indexed by the OPN's top (L+1)*9 bits; each
    // node is one page of 512 8-byte slots, so consecutive prefixes share
    // node pages realistically.
    constexpr unsigned kBitsPerLevel = 9;
    unsigned shift = (kWalkLevels - 1 - level) * kBitsPerLevel;
    std::uint64_t index = (opn >> shift);
    std::uint64_t node_index = index >> kBitsPerLevel; // which node page
    std::uint64_t slot = index & ((1u << kBitsPerLevel) - 1);

    std::uint64_t key = (std::uint64_t(level) << 56) ^ node_index;
    auto it = nodes_.find(key);
    if (it == nodes_.end()) {
        if (!create)
            return kInvalidAddr;
        it = nodes_.emplace(key, nodePageAlloc_()).first;
        nodeBytes_ += kPageSize;
    }
    // 8-byte slots: 8 slots per 64 B line.
    return it->second + roundDown(slot * 8, kLineSize);
}

void
Omt::walkAddresses(Opn opn, std::vector<Addr> &out) const
{
    out.clear();
    Chunk *chunk = findChunk(opn >> kChunkBits);
    if (chunk != nullptr && chunk->leafBase != kInvalidAddr) {
        for (unsigned level = 0; level + 1 < kWalkLevels; ++level)
            out.push_back(chunk->upperLines[level]);
        out.push_back(chunk->leafBase +
                      Addr((opn & (kChunkSize - 1)) >> 3) * kLineSize);
        return;
    }
    for (unsigned level = 0; level < kWalkLevels; ++level) {
        Addr node = const_cast<Omt *>(this)->nodeLineAddr(level, opn,
                                                          false);
        if (node == kInvalidAddr)
            break; // non-present level: the walk ends here
        out.push_back(node);
    }
}

void
Omt::ensureNodePath(Opn opn)
{
    for (unsigned level = 0; level < kWalkLevels; ++level)
        nodeLineAddr(level, opn, true);
}

OmtCache::OmtCache(std::string name, OmtCacheParams params)
    : SimObject(std::move(name)), params_(params),
      numSets_(params.entries / params.associativity),
      ways_(params.entries),
      hits_(&statGroup(), "hits", "OMT cache hits"),
      misses_(&statGroup(), "misses", "OMT cache misses (table walks)"),
      writebacks_(&statGroup(), "writebacks", "modified entries evicted")
{
    ovl_assert(params.entries % params.associativity == 0,
               "OMT cache entries must divide evenly into sets");
    ovl_assert(isPowerOf2(numSets_), "OMT cache set count must be 2^n");
}

OmtCache::Way *
OmtCache::findWay(Opn opn)
{
    Way *set = &ways_[std::size_t(setOf(opn)) * params_.associativity];
    for (unsigned w = 0; w < params_.associativity; ++w) {
        if (set[w].valid && set[w].opn == opn)
            return &set[w];
    }
    return nullptr;
}

const OmtCache::Way *
OmtCache::findWay(Opn opn) const
{
    return const_cast<OmtCache *>(this)->findWay(opn);
}

OmtCache::Way &
OmtCache::lookupAllocateWay(Opn opn, LookupResult &res)
{
    if (Way *way = findWay(opn)) {
        ++hits_;
        way->lruSeq = ++lruCounter_;
        res.hit = true;
        return *way;
    }

    ++misses_;
    Way *set = &ways_[std::size_t(setOf(opn)) * params_.associativity];
    Way *victim = &set[0];
    for (unsigned w = 0; w < params_.associativity; ++w) {
        if (!set[w].valid) {
            victim = &set[w];
            break;
        }
        if (set[w].lruSeq < victim->lruSeq)
            victim = &set[w];
    }

    if (victim->valid && victim->modified) {
        res.writebackOpn = victim->opn;
        res.needsWriteback = true;
        ++writebacks_;
    }
    victim->valid = true;
    victim->modified = false;
    victim->opn = opn;
    victim->lruSeq = ++lruCounter_;
    return *victim;
}

OmtCache::LookupResult
OmtCache::lookupAllocate(Opn opn)
{
    LookupResult res;
    lookupAllocateWay(opn, res);
    return res;
}

OmtCache::LookupResult
OmtCache::lookupAllocateModify(Opn opn)
{
    LookupResult res;
    lookupAllocateWay(opn, res).modified = true;
    return res;
}

void
OmtCache::markModified(Opn opn)
{
    if (Way *way = findWay(opn))
        way->modified = true;
}

bool
OmtCache::invalidate(Opn opn)
{
    if (Way *way = findWay(opn)) {
        bool was_modified = way->modified;
        way->valid = false;
        way->modified = false;
        return was_modified;
    }
    return false;
}

bool
OmtCache::isPresent(Opn opn) const
{
    return findWay(opn) != nullptr;
}

} // namespace ovl
