#include "omt.hh"

#include "common/intmath.hh"
#include "common/logging.hh"
#include "sim/snapshot.hh"

namespace ovl
{

Omt::Omt(std::string name, PageAllocFn node_page_alloc)
    : SimObject(std::move(name)), nodePageAlloc_(node_page_alloc),
      entriesCreated_(&statGroup(), "entriesCreated", "OMT entries created"),
      entriesErased_(&statGroup(), "entriesErased", "OMT entries erased"),
      nodeBytes_(&statGroup(), "nodeBytes", "bytes of OMT radix nodes")
{
    ovl_assert(nodePageAlloc_, "OMT needs a node allocator");
    nodes_.reserve(256);
}

Omt::Chunk &
Omt::ensureChunk(std::uint64_t chunk_id)
{
    if (chunk_id == cachedChunkId_)
        return *cachedChunk_;
    auto it = std::lower_bound(
        chunks_.begin(), chunks_.end(), chunk_id,
        [](const auto &e, std::uint64_t id) { return e.first < id; });
    if (it == chunks_.end() || it->first != chunk_id) {
        // Chunk creation is rare (once per populated 512-OPN window, e.g.
        // once per forked process); the sorted insert is off the hot path.
        it = chunks_.insert(
            it, {chunk_id, std::make_unique<Chunk>()});
    }
    cachedChunkId_ = chunk_id;
    cachedChunk_ = it->second.get();
    return *cachedChunk_;
}

void
Omt::fillChunkWalkCache(std::uint64_t chunk_id, Chunk &chunk)
{
    // Levels 0..2 are functions of the chunk id alone: every OPN in the
    // window shares them. The leaf node page is the chunk itself.
    Opn first_opn = Opn(chunk_id << kChunkBits);
    for (unsigned level = 0; level + 1 < kWalkLevels; ++level)
        chunk.upperLines[level] = nodeLineAddr(level, first_opn, false);
    std::uint64_t key =
        (std::uint64_t(kWalkLevels - 1) << 56) ^ chunk_id;
    auto it = nodes_.find(key);
    ovl_assert(it != nodes_.end(), "leaf node missing after path creation");
    chunk.leafBase = it->second;
}

OmtEntry &
Omt::findOrCreate(Opn opn)
{
    if (opn == cachedOpn_)
        return *cachedEntry_;
    Chunk &chunk = ensureChunk(opn >> kChunkBits);
    std::uint32_t &slot = chunk.slots[opn & (kChunkSize - 1)];
    if (slot == kNoEntry) {
        ++entriesCreated_;
        if (chunk.leafBase == kInvalidAddr) {
            // First entry of this 512-OPN window: materialize the radix
            // path and cache the chunk's walk lines. Every other OPN in
            // the window shares all four node pages (levels 0..2 are
            // functions of the chunk id; the leaf page is the chunk), so
            // a filled walk cache proves ensureNodePath would be a no-op.
            ensureNodePath(opn);
            fillChunkWalkCache(opn >> kChunkBits, chunk);
        }
        if (!freeEntries_.empty()) {
            slot = freeEntries_.back();
            freeEntries_.pop_back();
            arena_[slot] = OmtEntry();
        } else {
            slot = std::uint32_t(arena_.size());
            arena_.emplace_back();
        }
        ++chunk.live;
        ++size_;
    }
    cachedOpn_ = opn;
    cachedEntry_ = &arena_[slot];
    return *cachedEntry_;
}

void
Omt::erase(Opn opn)
{
    // Drop the MRU entry first: after the slot is recycled the cached
    // pointer would alias whatever OPN claims the arena slot next.
    if (opn == cachedOpn_) {
        cachedOpn_ = kInvalidAddr;
        cachedEntry_ = nullptr;
    }
    Chunk *chunk = findChunk(opn >> kChunkBits);
    if (chunk == nullptr)
        return;
    std::uint32_t &slot = chunk->slots[opn & (kChunkSize - 1)];
    if (slot == kNoEntry)
        return;
    freeEntries_.push_back(slot);
    slot = kNoEntry;
    --chunk->live;
    --size_;
    ++entriesErased_;
    // Chunks (and their radix nodes) are retained: table nodes are never
    // freed, so walks of erased OPNs still see the full path, exactly as
    // a hardware table walk would.
}

Addr
Omt::nodeLineAddr(unsigned level, Opn opn, bool create)
{
    // Radix layout: level L is indexed by the OPN's top (L+1)*9 bits; each
    // node is one page of 512 8-byte slots, so consecutive prefixes share
    // node pages realistically.
    constexpr unsigned kBitsPerLevel = 9;
    unsigned shift = (kWalkLevels - 1 - level) * kBitsPerLevel;
    std::uint64_t index = (opn >> shift);
    std::uint64_t node_index = index >> kBitsPerLevel; // which node page
    std::uint64_t slot = index & ((1u << kBitsPerLevel) - 1);

    std::uint64_t key = (std::uint64_t(level) << 56) ^ node_index;
    auto it = nodes_.find(key);
    if (it == nodes_.end()) {
        if (!create)
            return kInvalidAddr;
        it = nodes_.emplace(key, nodePageAlloc_()).first;
        nodeBytes_ += kPageSize;
    }
    // 8-byte slots: 8 slots per 64 B line.
    return it->second + roundDown(slot * 8, kLineSize);
}

void
Omt::walkAddresses(Opn opn, std::vector<Addr> &out) const
{
    out.clear();
    Chunk *chunk = findChunk(opn >> kChunkBits);
    if (chunk != nullptr && chunk->leafBase != kInvalidAddr) {
        for (unsigned level = 0; level + 1 < kWalkLevels; ++level)
            out.push_back(chunk->upperLines[level]);
        out.push_back(chunk->leafBase +
                      Addr((opn & (kChunkSize - 1)) >> 3) * kLineSize);
        return;
    }
    for (unsigned level = 0; level < kWalkLevels; ++level) {
        Addr node = const_cast<Omt *>(this)->nodeLineAddr(level, opn,
                                                          false);
        if (node == kInvalidAddr)
            break; // non-present level: the walk ends here
        out.push_back(node);
    }
}

void
Omt::ensureNodePath(Opn opn)
{
    for (unsigned level = 0; level < kWalkLevels; ++level)
        nodeLineAddr(level, opn, true);
}

void
Omt::serialize(snapshot::Writer &w) const
{
    w.beginSection("OMT ");
    w.u64(chunks_.size());
    for (const auto &[chunk_id, chunk] : chunks_) {
        w.u64(chunk_id);
        for (std::uint32_t slot : chunk->slots)
            w.u32(slot);
        for (Addr line : chunk->upperLines)
            w.u64(line);
        w.u64(chunk->leafBase);
        w.u32(chunk->live);
    }
    // The arena is written index-for-index, free entries included: chunk
    // slots and OverlayManager page-data indices reference arena
    // positions, so the layout must survive the round trip exactly.
    w.u64(arena_.size());
    for (const OmtEntry &e : arena_) {
        w.u64(e.obv.raw());
        w.b(e.hasSegment);
        w.u32(e.pageDataIdx);
        w.u64(e.seg.baseAddr);
        w.u8(std::uint8_t(e.seg.cls));
        w.blob(e.seg.meta.slotOf.data(), e.seg.meta.slotOf.size());
        w.u32(e.seg.meta.freeSlots);
    }
    w.u64(freeEntries_.size());
    for (std::uint32_t idx : freeEntries_)
        w.u32(idx);
    w.u64(size_);
    // The node map is written sorted by key so identical table state
    // always produces identical bytes, independent of hash iteration
    // order.
    std::vector<std::pair<std::uint64_t, Addr>> nodes(nodes_.begin(),
                                                      nodes_.end());
    std::sort(nodes.begin(), nodes.end());
    w.u64(nodes.size());
    for (const auto &[key, addr] : nodes) {
        w.u64(key);
        w.u64(addr);
    }
    w.endSection();
}

void
Omt::deserialize(snapshot::Reader &r)
{
    r.expectSection("OMT ");
    chunks_.clear();
    cachedChunkId_ = ~std::uint64_t(0);
    cachedChunk_ = nullptr;
    cachedOpn_ = kInvalidAddr;
    cachedEntry_ = nullptr;

    std::uint64_t num_chunks = r.count(kChunkSize * 4);
    chunks_.reserve(num_chunks);
    std::uint64_t prev_id = 0;
    for (std::uint64_t i = 0; i < num_chunks; ++i) {
        std::uint64_t chunk_id = r.u64();
        if (i > 0 && chunk_id <= prev_id)
            r.fail("OMT chunk directory not strictly ascending");
        prev_id = chunk_id;
        auto chunk = std::make_unique<Chunk>();
        for (std::uint32_t &slot : chunk->slots)
            slot = r.u32();
        for (Addr &line : chunk->upperLines)
            line = r.u64();
        chunk->leafBase = r.u64();
        chunk->live = r.u32();
        chunks_.emplace_back(chunk_id, std::move(chunk));
    }

    std::uint64_t arena_size = r.count(8 + 1 + 4 + 8 + 1 + 64 + 4);
    arena_.clear();
    for (std::uint64_t i = 0; i < arena_size; ++i) {
        OmtEntry e;
        e.obv = BitVector64(r.u64());
        e.hasSegment = r.b();
        e.pageDataIdx = r.u32();
        e.seg.baseAddr = r.u64();
        std::uint8_t cls = r.u8();
        if (cls >= kNumSegClasses)
            r.fail("OMT entry segment class " + std::to_string(cls) +
                   " out of range");
        e.seg.cls = SegClass(cls);
        r.blob(e.seg.meta.slotOf.data(), e.seg.meta.slotOf.size());
        e.seg.meta.freeSlots = r.u32();
        arena_.push_back(e);
    }

    freeEntries_.resize(r.count(4));
    for (std::uint32_t &idx : freeEntries_) {
        idx = r.u32();
        if (idx >= arena_.size())
            r.fail("OMT free-list index out of arena bounds");
    }
    size_ = r.u64();

    nodes_.clear();
    std::uint64_t num_nodes = r.count(16);
    nodes_.reserve(num_nodes);
    for (std::uint64_t i = 0; i < num_nodes; ++i) {
        std::uint64_t key = r.u64();
        Addr addr = r.u64();
        nodes_.emplace(key, addr);
    }

    // Validate chunk slots against the restored arena.
    for (const auto &[chunk_id, chunk] : chunks_) {
        for (std::uint32_t slot : chunk->slots) {
            if (slot != kNoEntry && slot >= arena_.size())
                r.fail("OMT chunk slot index out of arena bounds");
        }
    }
    r.endSection();
}

OmtCache::OmtCache(std::string name, OmtCacheParams params)
    : SimObject(std::move(name)), params_(params),
      numSets_(params.entries / params.associativity),
      ways_(params.entries),
      hits_(&statGroup(), "hits", "OMT cache hits"),
      misses_(&statGroup(), "misses", "OMT cache misses (table walks)"),
      writebacks_(&statGroup(), "writebacks", "modified entries evicted")
{
    ovl_assert(params.entries % params.associativity == 0,
               "OMT cache entries must divide evenly into sets");
    ovl_assert(isPowerOf2(numSets_), "OMT cache set count must be 2^n");
}

OmtCache::Way *
OmtCache::findWay(Opn opn)
{
    Way *set = &ways_[std::size_t(setOf(opn)) * params_.associativity];
    for (unsigned w = 0; w < params_.associativity; ++w) {
        if (set[w].valid && set[w].opn == opn)
            return &set[w];
    }
    return nullptr;
}

const OmtCache::Way *
OmtCache::findWay(Opn opn) const
{
    return const_cast<OmtCache *>(this)->findWay(opn);
}

OmtCache::Way &
OmtCache::lookupAllocateWay(Opn opn, LookupResult &res)
{
    if (Way *way = findWay(opn)) {
        ++hits_;
        way->lruSeq = ++lruCounter_;
        res.hit = true;
        return *way;
    }

    ++misses_;
    Way *set = &ways_[std::size_t(setOf(opn)) * params_.associativity];
    Way *victim = &set[0];
    for (unsigned w = 0; w < params_.associativity; ++w) {
        if (!set[w].valid) {
            victim = &set[w];
            break;
        }
        if (set[w].lruSeq < victim->lruSeq)
            victim = &set[w];
    }

    if (victim->valid && victim->modified) {
        res.writebackOpn = victim->opn;
        res.needsWriteback = true;
        ++writebacks_;
    }
    victim->valid = true;
    victim->modified = false;
    victim->opn = opn;
    victim->lruSeq = ++lruCounter_;
    return *victim;
}

OmtCache::LookupResult
OmtCache::lookupAllocate(Opn opn)
{
    LookupResult res;
    lookupAllocateWay(opn, res);
    return res;
}

OmtCache::LookupResult
OmtCache::lookupAllocateModify(Opn opn)
{
    LookupResult res;
    lookupAllocateWay(opn, res).modified = true;
    return res;
}

void
OmtCache::markModified(Opn opn)
{
    if (Way *way = findWay(opn))
        way->modified = true;
}

bool
OmtCache::invalidate(Opn opn)
{
    if (Way *way = findWay(opn)) {
        bool was_modified = way->modified;
        way->valid = false;
        way->modified = false;
        return was_modified;
    }
    return false;
}

bool
OmtCache::isPresent(Opn opn) const
{
    return findWay(opn) != nullptr;
}

void
OmtCache::serialize(snapshot::Writer &w) const
{
    w.beginSection("OMTC");
    w.u64(ways_.size());
    for (const Way &way : ways_) {
        w.b(way.valid);
        w.b(way.modified);
        w.u64(way.opn);
        w.u64(way.lruSeq);
    }
    w.u64(lruCounter_);
    w.endSection();
}

void
OmtCache::deserialize(snapshot::Reader &r)
{
    r.expectSection("OMTC");
    std::uint64_t n = r.u64();
    if (n != ways_.size()) {
        r.fail("OMT cache way count mismatch: snapshot " +
               std::to_string(n) + ", configured " +
               std::to_string(ways_.size()));
    }
    for (Way &way : ways_) {
        way.valid = r.b();
        way.modified = r.b();
        way.opn = r.u64();
        way.lruSeq = r.u64();
    }
    lruCounter_ = r.u64();
    r.endSection();
}

} // namespace ovl
