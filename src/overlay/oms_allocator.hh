/**
 * @file
 * Free-space management for the Overlay Memory Store (§4.4.3): one free
 * list per segment size class, maintained as grouped linked lists in OMS
 * memory. When a class runs dry the allocator splits a segment of the
 * next larger size in two; when even 4 KB segments run out it requests a
 * batch of pages from the OS (the only OS interaction, §4.5).
 */

#ifndef OVERLAYSIM_OVERLAY_OMS_ALLOCATOR_HH
#define OVERLAYSIM_OVERLAY_OMS_ALLOCATOR_HH

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "overlay/oms_segment.hh"
#include "sim/sim_object.hh"

namespace ovl
{

/** Tunables for the OMS allocator. */
struct OmsAllocatorParams
{
    /** Pages the OS proactively hands the controller at startup (§4.4.3). */
    unsigned startupPages = 64;
    /** Pages requested per OS refill when the 4 KB list runs dry. */
    unsigned refillPages = 64;
    /**
     * Optional buddy-style coalescing of free sibling segments back into
     * larger ones. The paper only describes splitting; coalescing is the
     * extension evaluated by bench/abl_segments.
     */
    bool coalesce = false;
};

/**
 * Segment allocator over OS-provided 4 KB pages. Functionally the free
 * lists are in-host vectors; the timing cost of list manipulation is
 * charged by the OverlayManager (a grouped linked list touches O(1) lines
 * per operation [46]).
 */
class OmsAllocator : public SimObject
{
  public:
    /** @p os_alloc_page returns the main-memory address of a fresh page. */
    OmsAllocator(std::string name, OmsAllocatorParams params,
                 std::function<Addr()> os_alloc_page);

    /**
     * Allocate one segment of @p cls. Splits larger segments or requests
     * OS pages as needed.
     */
    Addr allocate(SegClass cls);

    /** Return a segment to the free list of its class. */
    void release(Addr base, SegClass cls);

    /** Number of free segments currently on the list of @p cls. */
    std::size_t freeCount(SegClass cls) const;

    /** Total bytes handed to the OMS by the OS so far. */
    std::uint64_t osBytesProvided() const { return osBytesProvided_.value(); }

    /** Memory accesses implied by free-list manipulation since creation. */
    std::uint64_t listTouches() const { return listTouches_.value(); }

  private:
    void refillFromOs();
    /** Try buddy coalescing after a release. */
    void tryCoalesce(SegClass cls);

    OmsAllocatorParams params_;
    std::function<Addr()> osAllocPage_;
    std::array<std::vector<Addr>, kNumSegClasses> freeLists_;

    stats::Counter allocations_;
    stats::Counter releases_;
    stats::Counter splits_;
    stats::Counter coalesces_;
    stats::Counter osRefills_;
    stats::Counter osBytesProvided_;
    stats::Counter listTouches_;
};

} // namespace ovl

#endif // OVERLAYSIM_OVERLAY_OMS_ALLOCATOR_HH
