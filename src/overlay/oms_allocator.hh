/**
 * @file
 * Free-space management for the Overlay Memory Store (§4.4.3): one free
 * list per segment size class, maintained as grouped linked lists in OMS
 * memory. When a class runs dry the allocator splits a segment of the
 * next larger size in two; when even 4 KB segments run out it requests a
 * batch of pages from the OS (the only OS interaction, §4.5).
 */

#ifndef OVERLAYSIM_OVERLAY_OMS_ALLOCATOR_HH
#define OVERLAYSIM_OVERLAY_OMS_ALLOCATOR_HH

#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "overlay/oms_segment.hh"
#include "overlay/page_alloc.hh"
#include "sim/sim_object.hh"

namespace ovl
{

/** Tunables for the OMS allocator. */
struct OmsAllocatorParams
{
    /** Pages the OS proactively hands the controller at startup (§4.4.3). */
    unsigned startupPages = 64;
    /** Pages requested per OS refill when the 4 KB list runs dry. */
    unsigned refillPages = 64;
    /**
     * Optional buddy-style coalescing of free sibling segments back into
     * larger ones. The paper only describes splitting; coalescing is the
     * extension evaluated by bench/abl_segments.
     */
    bool coalesce = false;
};

/**
 * Segment allocator over OS-provided 4 KB pages. Functionally the free
 * lists are intrusive doubly-linked lists threaded through per-page unit
 * metadata, so every operation — including the buddy probe of a coalesce
 * — is O(1); the timing cost of list manipulation is charged by the
 * OverlayManager (a grouped linked list touches O(1) lines per
 * operation [46]).
 *
 * Because segments never straddle the 4 KB page they were split from,
 * every free segment is identified by (page, 256 B unit index). Each
 * page records which of its units head a free segment and of what class,
 * which is exactly the state a buddy lookup needs.
 */
class OmsAllocator : public SimObject
{
  public:
    /** @p os_alloc_page returns the main-memory address of a fresh page. */
    OmsAllocator(std::string name, OmsAllocatorParams params,
                 PageAllocFn os_alloc_page);

    /**
     * Allocate one segment of @p cls. Splits larger segments or requests
     * OS pages as needed.
     */
    Addr allocate(SegClass cls);

    /** Return a segment to the free list of its class. */
    void release(Addr base, SegClass cls);

    /** Number of free segments currently on the list of @p cls. */
    std::size_t freeCount(SegClass cls) const;

    /** Total bytes handed to the OMS by the OS so far. */
    std::uint64_t osBytesProvided() const { return osBytesProvided_.value(); }

    /** Memory accesses implied by free-list manipulation since creation. */
    std::uint64_t listTouches() const { return listTouches_.value(); }

    /**
     * Snapshot page metadata and free lists. pageIndex_ is rebuilt from
     * pages_ on restore; the MRU page cache is reset. The OS allocation
     * hook is structural and not serialized.
     */
    void serialize(snapshot::Writer &w) const;
    void deserialize(snapshot::Reader &r);

  private:
    /** 256 B units per OS page: the finest segment granularity. */
    static constexpr unsigned kUnitsPerPage = kPageSize / 256;
    /** A free-list node: (page index << 4) | unit index. */
    static constexpr std::uint32_t kNullRef = ~std::uint32_t(0);
    /** Unit marker: this unit does not head a free segment. */
    static constexpr std::int8_t kNotFree = -1;

    /** Free-list linkage and free-state of one OS page's units. */
    struct PageMeta
    {
        Addr base = 0;
        std::array<std::uint32_t, kUnitsPerPage> next;
        std::array<std::uint32_t, kUnitsPerPage> prev;
        /** Class of the free segment headed at each unit, or kNotFree. */
        std::array<std::int8_t, kUnitsPerPage> freeCls;
    };

    Addr
    addrOf(std::uint32_t ref) const
    {
        return pages_[ref >> 4].base + Addr(ref & 15u) * 256;
    }

    std::uint32_t refOf(Addr addr);
    std::uint32_t newPage(Addr base);
    void pushFront(SegClass cls, std::uint32_t ref);
    void unlink(SegClass cls, std::uint32_t ref);

    void refillFromOs();
    /** Try buddy coalescing after a release. */
    void tryCoalesce(SegClass cls);

    OmsAllocatorParams params_;
    PageAllocFn osAllocPage_;

    std::vector<PageMeta> pages_;
    /** Page base address -> pages_ index, with a one-entry MRU. */
    std::unordered_map<Addr, std::uint32_t> pageIndex_;
    Addr lastPageBase_ = kInvalidAddr;
    std::uint32_t lastPageIdx_ = 0;

    std::array<std::uint32_t, kNumSegClasses> heads_;
    std::array<std::size_t, kNumSegClasses> counts_{};

    stats::Counter allocations_;
    stats::Counter releases_;
    stats::Counter splits_;
    stats::Counter coalesces_;
    stats::Counter osRefills_;
    stats::Counter osBytesProvided_;
    stats::Counter listTouches_;
};

} // namespace ovl

#endif // OVERLAYSIM_OVERLAY_OMS_ALLOCATOR_HH
