#include "trace_io.hh"

#include <cstring>
#include <fstream>
#include <set>

#include "common/logging.hh"

namespace ovl
{

namespace
{

constexpr char kMagic[4] = {'O', 'V', 'L', 'T'};
constexpr std::uint32_t kVersion = 1;

/** On-disk record: fixed width, little-endian host layout. */
struct RawRecord
{
    std::uint8_t kind;
    std::uint8_t dependsOnPrev;
    std::uint16_t pad;
    std::uint32_t count;
    std::uint64_t vaddr;
};
static_assert(sizeof(RawRecord) == 16, "record layout must be packed");

} // namespace

TraceSummary
summarizeTrace(const Trace &trace)
{
    TraceSummary summary;
    std::set<Addr> pages;
    for (const TraceOp &op : trace) {
        ++summary.records;
        summary.dependentOps += op.dependsOnPrev;
        switch (op.kind) {
          case TraceOp::Kind::Compute:
            summary.instructions += op.count;
            break;
          case TraceOp::Kind::Load:
          case TraceOp::Kind::Store:
            ++summary.instructions;
            if (op.kind == TraceOp::Kind::Load)
                ++summary.loads;
            else
                ++summary.stores;
            summary.minAddr = std::min(summary.minAddr, op.vaddr);
            summary.maxAddr = std::max(summary.maxAddr, op.vaddr);
            pages.insert(pageNumber(op.vaddr));
            break;
        }
    }
    summary.touchedPages = pages.size();
    return summary;
}

std::uint64_t
writeTrace(std::ostream &os, const Trace &trace)
{
    os.write(kMagic, sizeof(kMagic));
    std::uint32_t version = kVersion;
    os.write(reinterpret_cast<const char *>(&version), sizeof(version));
    std::uint64_t count = trace.size();
    os.write(reinterpret_cast<const char *>(&count), sizeof(count));

    for (const TraceOp &op : trace) {
        RawRecord rec{};
        rec.kind = std::uint8_t(op.kind);
        rec.dependsOnPrev = op.dependsOnPrev ? 1 : 0;
        rec.count = op.count;
        rec.vaddr = op.vaddr;
        os.write(reinterpret_cast<const char *>(&rec), sizeof(rec));
    }
    return sizeof(kMagic) + sizeof(version) + sizeof(count) +
           count * sizeof(RawRecord);
}

Trace
readTrace(std::istream &is)
{
    char magic[4];
    is.read(magic, sizeof(magic));
    if (!is || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
        ovl_fatal("trace stream: bad magic");
    std::uint32_t version = 0;
    is.read(reinterpret_cast<char *>(&version), sizeof(version));
    if (!is || version != kVersion)
        ovl_fatal("trace stream: unsupported version %u", version);
    std::uint64_t count = 0;
    is.read(reinterpret_cast<char *>(&count), sizeof(count));
    if (!is)
        ovl_fatal("trace stream: truncated header");

    Trace trace;
    trace.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
        RawRecord rec;
        is.read(reinterpret_cast<char *>(&rec), sizeof(rec));
        if (!is)
            ovl_fatal("trace stream: truncated at record %llu",
                      (unsigned long long)i);
        if (rec.kind > std::uint8_t(TraceOp::Kind::Compute))
            ovl_fatal("trace stream: bad op kind %u", rec.kind);
        TraceOp op;
        op.kind = TraceOp::Kind(rec.kind);
        op.dependsOnPrev = rec.dependsOnPrev != 0;
        op.count = rec.count;
        op.vaddr = rec.vaddr;
        trace.push_back(op);
    }
    return trace;
}

void
saveTraceFile(const std::string &path, const Trace &trace)
{
    std::ofstream os(path, std::ios::binary);
    if (!os)
        ovl_fatal("cannot open trace file for writing: %s", path.c_str());
    writeTrace(os, trace);
    if (!os)
        ovl_fatal("failed writing trace file: %s", path.c_str());
}

Trace
loadTraceFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        ovl_fatal("cannot open trace file: %s", path.c_str());
    return readTrace(is);
}

} // namespace ovl
