/**
 * @file
 * Trace serialization: save/load the core's instruction traces in a
 * compact binary format so workloads can be captured once and replayed
 * across configurations (the standard trace-driven-simulator workflow).
 */

#ifndef OVERLAYSIM_CPU_TRACE_IO_HH
#define OVERLAYSIM_CPU_TRACE_IO_HH

#include <iosfwd>
#include <string>

#include "cpu/ooo_core.hh"

namespace ovl
{

/** Summary statistics of a trace. */
struct TraceSummary
{
    std::uint64_t records = 0;      ///< TraceOp records
    std::uint64_t instructions = 0; ///< instructions (compute expands)
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t dependentOps = 0;
    Addr minAddr = kInvalidAddr;
    Addr maxAddr = 0;
    std::uint64_t touchedPages = 0;
};

/** Compute the summary of @p trace. */
TraceSummary summarizeTrace(const Trace &trace);

/** Serialize @p trace to a stream; returns bytes written. */
std::uint64_t writeTrace(std::ostream &os, const Trace &trace);

/**
 * Deserialize a trace previously written with writeTrace(). Calls
 * ovl_fatal on a malformed stream (bad magic/version/truncation).
 */
Trace readTrace(std::istream &is);

/** File-path conveniences. */
void saveTraceFile(const std::string &path, const Trace &trace);
Trace loadTraceFile(const std::string &path);

} // namespace ovl

#endif // OVERLAYSIM_CPU_TRACE_IO_HH
