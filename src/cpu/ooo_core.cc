#include "ooo_core.hh"

#include <algorithm>

#include "common/logging.hh"
#include "sim/snapshot.hh"

namespace ovl
{

OooCore::OooCore(std::string name, System &system, unsigned core)
    : SimObject(std::move(name)), system_(system), core_(core),
      windowSize_(system.config().instructionWindow),
      issueWidth_(system.config().issueWidth),
      instructions_(&statGroup(), "instructions", "instructions executed"),
      loads_(&statGroup(), "loads", "load instructions"),
      stores_(&statGroup(), "stores", "store instructions"),
      faults_(&statGroup(), "faults", "pipeline-flushing page faults"),
      windowStallCycles_(&statGroup(), "windowStallCycles",
                         "cycles issue stalled on a full window"),
      loadLatency_(&statGroup(), "loadLatency",
                   "load completion latency (cycles)", 25, 40)
{
    ovl_assert(windowSize_ > 0, "instruction window must be non-empty");
}

void
OooCore::consumeIssueSlot()
{
    if (++slotsThisCycle_ >= issueWidth_) {
        slotsThisCycle_ = 0;
        ++issueCycle_;
    }
}

void
OooCore::beginEpoch(Tick start)
{
    window_.clear();
    slotsThisCycle_ = 0;
    issueCycle_ = start;
    lastCompletion_ = start;
    maxCompletion_ = start;
    epochStart_ = start;
    epochInstructions_ = 0;
    epochCycles_ = 0;
}

Tick
OooCore::reserveSlot(Tick ready)
{
    Tick issue = std::max(issueCycle_, ready);
    if (window_.size() >= windowSize_) {
        // In-order retirement: the oldest instruction must complete
        // before a new one can enter the window.
        Tick oldest_done = window_.front();
        window_.pop_front();
        if (oldest_done > issue) {
            windowStallCycles_ += oldest_done - issue;
            issue = oldest_done;
        }
    }
    return issue;
}

void
OooCore::executeOp(Asid asid, const TraceOp &op)
{
    switch (op.kind) {
      case TraceOp::Kind::Compute: {
        // `count` independent single-cycle instructions. They complete
        // one cycle after issue, so they can never clog the window;
        // advancing the issue cursor models their occupancy exactly.
        Tick issue = issueCycle_;
        if (op.dependsOnPrev)
            issue = std::max(issue, lastCompletion_);
        issueCycle_ = issue + (op.count + slotsThisCycle_) / issueWidth_;
        slotsThisCycle_ = (op.count + slotsThisCycle_) % issueWidth_;
        lastCompletion_ = issueCycle_;
        maxCompletion_ = std::max(maxCompletion_, issueCycle_);
        epochInstructions_ += op.count;
        instructions_ += op.count;
        break;
      }
      case TraceOp::Kind::Load:
      case TraceOp::Kind::Store: {
        Tick ready = op.dependsOnPrev ? lastCompletion_ : 0;
        Tick issue = reserveSlot(ready);
        bool is_write = op.kind == TraceOp::Kind::Store;
        AccessOutcome outcome;
        Tick done = system_.access(asid, op.vaddr, is_write, issue,
                                   &outcome, core_);
        if (outcome.cowFault) {
            // A page fault is a precise exception: the pipeline drains,
            // the OS handler runs, and issue restarts afterwards. (The
            // overlaying write needs none of this — it is handled in
            // hardware without faulting, §4.3.3.)
            ++faults_;
            window_.clear();
            slotsThisCycle_ = 0;
            issueCycle_ = done;
            lastCompletion_ = done;
        } else {
            window_.push_back(done);
            lastCompletion_ = done;
            if (issue > issueCycle_) {
                issueCycle_ = issue;
                slotsThisCycle_ = 0;
            }
            consumeIssueSlot();
        }
        maxCompletion_ = std::max(maxCompletion_, done);
        ++epochInstructions_;
        ++instructions_;
        if (is_write) {
            ++stores_;
        } else {
            ++loads_;
            loadLatency_.sample(done - issue);
        }
        break;
      }
    }
}

Tick
OooCore::finishEpoch()
{
    Tick finish = std::max(issueCycle_, maxCompletion_);
    epochCycles_ = finish - epochStart_;
    window_.clear();
    return finish;
}

Tick
OooCore::run(Asid asid, const Trace &trace, Tick start)
{
    beginEpoch(start);
    for (const TraceOp &op : trace)
        executeOp(asid, op);
    return finishEpoch();
}

void
OooCore::serialize(snapshot::Writer &w) const
{
    w.beginSection("CORE");
    w.u64(window_.size());
    for (Tick done : window_)
        w.u64(done);
    w.u32(slotsThisCycle_);
    w.u64(issueCycle_);
    w.u64(lastCompletion_);
    w.u64(maxCompletion_);
    w.u64(epochStart_);
    w.u64(epochCycles_);
    w.u64(epochInstructions_);
    statGroup().serializeStats(w);
    w.endSection();
}

void
OooCore::deserialize(snapshot::Reader &r)
{
    r.expectSection("CORE");
    std::uint64_t occupancy = r.count(8);
    if (occupancy > windowSize_) {
        r.fail("core window occupancy " + std::to_string(occupancy) +
               " exceeds configured window of " +
               std::to_string(windowSize_));
    }
    window_.clear();
    for (std::uint64_t i = 0; i < occupancy; ++i)
        window_.push_back(r.u64());
    slotsThisCycle_ = r.u32();
    issueCycle_ = r.u64();
    lastCompletion_ = r.u64();
    maxCompletion_ = r.u64();
    epochStart_ = r.u64();
    epochCycles_ = r.u64();
    epochInstructions_ = r.u64();
    statGroup().deserializeStats(r);
    r.endSection();
}

} // namespace ovl
