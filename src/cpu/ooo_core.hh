/**
 * @file
 * Trace-driven out-of-order core model per Table 2: 2.67 GHz, single
 * issue (width configurable for ablations), 64-entry instruction window,
 * in-order retirement. Independent memory operations overlap within the
 * window (memory-level parallelism); a full window stalls issue until
 * the oldest instruction completes. Explicit load-to-use dependences in
 * the trace serialize dependent accesses — this is how CSR SpMV's
 * pointer-chasing gathers are modeled (§5.2).
 */

#ifndef OVERLAYSIM_CPU_OOO_CORE_HH
#define OVERLAYSIM_CPU_OOO_CORE_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "common/types.hh"
#include "sim/sim_object.hh"
#include "system/system.hh"

namespace ovl
{

/** One trace record. */
struct TraceOp
{
    enum class Kind : std::uint8_t
    {
        Load,
        Store,
        Compute, ///< @c count back-to-back single-cycle ALU instructions
    };

    Kind kind = Kind::Compute;
    /** Issue only after the previous op completes (data dependence). */
    bool dependsOnPrev = false;
    Addr vaddr = 0;
    std::uint32_t count = 1;

    static TraceOp
    load(Addr vaddr, bool depends_on_prev = false)
    {
        return TraceOp{Kind::Load, depends_on_prev, vaddr, 1};
    }

    static TraceOp
    store(Addr vaddr, bool depends_on_prev = false)
    {
        return TraceOp{Kind::Store, depends_on_prev, vaddr, 1};
    }

    static TraceOp
    compute(std::uint32_t count)
    {
        return TraceOp{Kind::Compute, false, 0, count};
    }
};

/** A complete trace. */
using Trace = std::vector<TraceOp>;

/**
 * The core model. Use either run() on a whole trace or the streaming
 * interface (beginEpoch / executeOp / finishEpoch) so that workload
 * generators can feed ops without materializing giant traces.
 */
class OooCore : public SimObject
{
  public:
    /** @p core selects which of the system's TLB sets this core uses. */
    OooCore(std::string name, System &system, unsigned core = 0);

    unsigned coreIndex() const { return core_; }

    /** Execute @p trace for process @p asid; returns the finish tick. */
    Tick run(Asid asid, const Trace &trace, Tick start);

    /** Start a measurement epoch at @p start. */
    void beginEpoch(Tick start);

    /** Execute one op in the current epoch. */
    void executeOp(Asid asid, const TraceOp &op);

    /** Close the epoch; returns the finish tick. */
    Tick finishEpoch();

    /** Instructions executed in the last (or current) epoch. */
    std::uint64_t epochInstructions() const { return epochInstructions_; }

    /** The core's current issue cycle (for engine-driven prefetches). */
    Tick currentCycle() const { return issueCycle_; }

    /** Cycles of the last closed epoch. */
    Tick epochCycles() const { return epochCycles_; }

    /** CPI of the last closed epoch. */
    double
    epochCpi() const
    {
        return epochInstructions_ == 0
                   ? 0.0
                   : double(epochCycles_) / double(epochInstructions_);
    }

    std::uint64_t totalInstructions() const { return instructions_.value(); }

    /**
     * Snapshot the pipeline state (window occupancy, issue cursor,
     * epoch accounting) and the core's stats. The System reference is
     * structural; the restored core must be bound to the restored
     * System.
     */
    void serialize(snapshot::Writer &w) const;
    void deserialize(snapshot::Reader &r);

  private:
    /** Reserve a window slot; returns the earliest issue cycle. */
    Tick reserveSlot(Tick ready);

    /** Advance the issue cursor by one slot (width slots per cycle). */
    void consumeIssueSlot();

    System &system_;
    unsigned core_;
    unsigned windowSize_;
    unsigned issueWidth_;
    unsigned slotsThisCycle_ = 0;

    std::deque<Tick> window_;   ///< completion times, oldest first
    Tick issueCycle_ = 0;       ///< next issue cycle
    Tick lastCompletion_ = 0;   ///< completion of the previous op
    Tick maxCompletion_ = 0;
    Tick epochStart_ = 0;
    Tick epochCycles_ = 0;
    std::uint64_t epochInstructions_ = 0;

    stats::Counter instructions_;
    stats::Counter loads_;
    stats::Counter stores_;
    stats::Counter faults_;
    stats::Counter windowStallCycles_;
    stats::Histogram loadLatency_;
};

} // namespace ovl

#endif // OVERLAYSIM_CPU_OOO_CORE_HH
