/**
 * @file
 * The paper's hardware sparse-matrix representation (§5.2): every virtual
 * page of the (conceptually dense) matrix maps to the shared zero
 * physical page, and each page's overlay holds exactly its non-zero cache
 * lines. Dense-matrix code runs unmodified on top; hardware skips the
 * zero lines by walking the OBitVector.
 */

#ifndef OVERLAYSIM_SPARSE_OVERLAY_MATRIX_HH
#define OVERLAYSIM_SPARSE_OVERLAY_MATRIX_HH

#include <cstdint>

#include "sparse/matrix.hh"
#include "system/system.hh"

namespace ovl
{

/** A sparse matrix stored in page overlays of a simulated System. */
class OverlayMatrix
{
  public:
    /**
     * @param base virtual base address of the matrix; page aligned.
     */
    OverlayMatrix(System &system, Asid asid, Addr base);

    /**
     * Map the address range, store the non-zero values, and materialize
     * the Overlay Memory Store segments (as dirty lines would on
     * eviction). Build-time activity should be excluded from experiment
     * stats by the caller (resetStats()).
     */
    void build(const CooMatrix &coo);

    /** Read one element through the overlay access semantics. */
    double at(std::uint32_t row, std::uint32_t col) const;

    /**
     * Dynamic update: set element (row, col) to @p value with full
     * timing. For a line already in the overlay this is a simple write;
     * for a new line it is one overlaying write — no array shifting,
     * unlike CSR::insert (§5.2).
     *
     * @return completion time.
     */
    Tick insert(std::uint32_t row, std::uint32_t col, double value,
                Tick when);

    /**
     * Dynamic deletion: zero element (row, col); if its whole line is
     * now zero the line is unmapped and its OMS slot reclaimed — the
     * cheap structural delete CSR lacks.
     *
     * @return completion time.
     */
    Tick remove(std::uint32_t row, std::uint32_t col, Tick when);

    /**
     * Bytes consumed by this matrix's representation: OMS segments plus
     * OMT radix nodes created during build().
     */
    std::uint64_t storedBytes() const { return storedBytes_; }

    const DenseLayout &layout() const { return layout_; }
    Addr base() const { return base_; }
    Asid asid() const { return asid_; }

    /** Virtual address of element (row, col). */
    Addr
    addrOf(std::uint32_t row, std::uint32_t col) const
    {
        return base_ + layout_.offsetOf(row, col);
    }

  private:
    System &system_;
    Asid asid_;
    Addr base_;
    DenseLayout layout_;
    std::uint64_t storedBytes_ = 0;
};

} // namespace ovl

#endif // OVERLAYSIM_SPARSE_OVERLAY_MATRIX_HH
