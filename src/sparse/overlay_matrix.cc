#include "overlay_matrix.hh"

#include "common/intmath.hh"
#include "common/logging.hh"
#include "overlay/overlay_addr.hh"

namespace ovl
{

OverlayMatrix::OverlayMatrix(System &system, Asid asid, Addr base)
    : system_(system), asid_(asid), base_(base)
{
    ovl_assert(pageOffset(base) == 0, "matrix base must be page aligned");
}

void
OverlayMatrix::build(const CooMatrix &coo)
{
    layout_ = DenseLayout(coo.rows, coo.cols);
    std::uint64_t len = roundUp(std::max<std::uint64_t>(layout_.bytes(),
                                                        kPageSize),
                                kPageSize);
    system_.mapZeroOverlay(asid_, base_, len);

    OverlayManager &ovm = system_.overlayManager();
    std::uint64_t oms_before = ovm.omsBytesInUse();
    std::uint64_t omt_before = ovm.omt().nodeBytes();

    // Store the non-zeroes. poke() performs the functional overlaying
    // write: the line's bit is set and its contents land in the overlay.
    for (const CooEntry &e : coo.entries) {
        if (e.value == 0.0)
            continue;
        system_.poke(asid_, addrOf(e.row, e.col), &e.value, sizeof(double));
    }

    // Materialize the OMS: in hardware, segments fill in lazily as dirty
    // overlay lines are evicted (§4.3.3); after a build pass every line
    // has been written back. Reproduce that end state explicitly.
    Tick t = 0;
    std::uint64_t pages = len / kPageSize;
    for (std::uint64_t p = 0; p < pages; ++p) {
        Addr page_vaddr = base_ + p * kPageSize;
        Opn opn = overlay_addr::pageFromVirtual(asid_, pageNumber(page_vaddr));
        BitVector64 obv = ovm.obitvector(opn);
        for (unsigned l = obv.findFirst(); l < kLinesPerPage;
             l = obv.findNext(l)) {
            Addr line_addr = (opn << kPageShift) | (Addr(l) << kLineShift);
            t = ovm.writebackLine(line_addr, t);
        }
    }
    storedBytes_ = (ovm.omsBytesInUse() - oms_before) +
                   (ovm.omt().nodeBytes() - omt_before);
    // The build is a setup phase: let the memory system go quiescent so
    // a timed run can start from tick 0.
    system_.quiesce();
}

double
OverlayMatrix::at(std::uint32_t row, std::uint32_t col) const
{
    double value = 0.0;
    system_.peek(asid_, addrOf(row, col), &value, sizeof(double));
    return value;
}

Tick
OverlayMatrix::insert(std::uint32_t row, std::uint32_t col, double value,
                      Tick when)
{
    return system_.write(asid_, addrOf(row, col), &value, sizeof(double),
                         when);
}

Tick
OverlayMatrix::remove(std::uint32_t row, std::uint32_t col, Tick when)
{
    double zero = 0.0;
    Tick t = system_.write(asid_, addrOf(row, col), &zero, sizeof(double),
                           when);
    system_.reclaimZeroLine(asid_, addrOf(row, col), t);
    return t;
}

} // namespace ovl
