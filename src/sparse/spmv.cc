#include "spmv.hh"

#include "common/intmath.hh"
#include "common/logging.hh"

namespace ovl
{

namespace
{

/** Map an anonymous region covering @p bytes at @p base. */
void
mapRegion(System &system, Asid asid, Addr base, std::uint64_t bytes)
{
    std::uint64_t len = roundUp(std::max<std::uint64_t>(bytes, 1), kPageSize);
    system.mapAnon(asid, base, len);
}

/** Instructions per 8-value line of dense FMA work: 8 FMA + loop ops. */
constexpr std::uint32_t kLineComputeOps = 16;
/** Per-row loop overhead instructions. */
constexpr std::uint32_t kRowOverheadOps = 3;
/** Per-non-zero CSR compute: one FMA plus loop increment/compare. */
constexpr std::uint32_t kCsrNnzComputeOps = 3;

} // namespace

void
installVectors(System &system, Asid asid, const SpmvAddrs &addrs,
               const std::vector<double> &x, std::uint32_t rows)
{
    mapRegion(system, asid, addrs.xBase, x.size() * 8);
    mapRegion(system, asid, addrs.yBase, std::uint64_t(rows) * 8);
    for (std::size_t i = 0; i < x.size(); ++i) {
        system.poke(asid, addrs.xBase + i * 8, &x[i], sizeof(double));
    }
}

void
installDense(System &system, Asid asid, Addr a_base, const CooMatrix &coo)
{
    DenseLayout layout(coo.rows, coo.cols);
    mapRegion(system, asid, a_base, layout.bytes());
    for (const CooEntry &e : coo.entries) {
        system.poke(asid, a_base + layout.offsetOf(e.row, e.col), &e.value,
                    sizeof(double));
    }
}

void
installCsr(System &system, Asid asid, const SpmvAddrs &addrs,
           const CsrMatrix &csr)
{
    mapRegion(system, asid, addrs.csrValBase, csr.nnz() * 8);
    mapRegion(system, asid, addrs.csrColBase, csr.nnz() * 4);
    mapRegion(system, asid, addrs.csrRowBase, csr.rowPtr().size() * 4);
    for (std::size_t i = 0; i < csr.values().size(); ++i) {
        system.poke(asid, addrs.csrValBase + i * 8, &csr.values()[i], 8);
        system.poke(asid, addrs.csrColBase + i * 4, &csr.colIdx()[i], 4);
    }
    for (std::size_t i = 0; i < csr.rowPtr().size(); ++i)
        system.poke(asid, addrs.csrRowBase + i * 4, &csr.rowPtr()[i], 4);
}

SpmvResult
spmvDense(System &system, OooCore &core, Asid asid, const SpmvAddrs &addrs,
          const DenseLayout &layout, const std::vector<double> &x,
          Tick start)
{
    SpmvResult res;
    res.y.assign(layout.rows, 0.0);
    core.beginEpoch(start);

    for (std::uint32_t r = 0; r < layout.rows; ++r) {
        double acc = 0.0;
        for (std::uint32_t c0 = 0; c0 < layout.cols;
             c0 += DenseLayout::kValuesPerLine) {
            Addr a_line = addrs.aBase + layout.offsetOf(r, c0);
            core.executeOp(asid, TraceOp::load(a_line));
            core.executeOp(asid, TraceOp::load(addrs.xBase + Addr(c0) * 8));
            core.executeOp(asid, TraceOp::compute(kLineComputeOps));

            double a_vals[DenseLayout::kValuesPerLine];
            system.peek(asid, a_line, a_vals, sizeof(a_vals));
            unsigned n = std::min<std::uint32_t>(DenseLayout::kValuesPerLine,
                                                 layout.cols - c0);
            for (unsigned k = 0; k < n; ++k)
                acc += a_vals[k] * x[c0 + k];
        }
        core.executeOp(asid, TraceOp::compute(kRowOverheadOps));
        core.executeOp(asid, TraceOp::store(addrs.yBase + Addr(r) * 8));
        res.y[r] = acc;
        system.poke(asid, addrs.yBase + Addr(r) * 8, &acc, sizeof(double));
    }

    core.finishEpoch();
    res.cycles = core.epochCycles();
    res.instructions = core.epochInstructions();
    return res;
}

SpmvResult
spmvOverlay(System &system, OooCore &core, const OverlayMatrix &matrix,
            const SpmvAddrs &addrs, const std::vector<double> &x,
            Tick start)
{
    const DenseLayout &layout = matrix.layout();
    Asid asid = matrix.asid();
    SpmvResult res;
    res.y.assign(layout.rows, 0.0);
    core.beginEpoch(start);
    // Warm the pipeline: prefetch the first page's overlay lines.
    system.prefetchOverlayPage(asid, matrix.base(), start);

    Addr last_page = kInvalidAddr;
    BitVector64 obv;
    for (std::uint32_t r = 0; r < layout.rows; ++r) {
        double acc = 0.0;
        for (std::uint32_t c0 = 0; c0 < layout.cols;
             c0 += DenseLayout::kValuesPerLine) {
            Addr a_line = matrix.addrOf(r, c0);
            // The hardware reads the OBitVector from the TLB entry; one
            // cheap instruction per page of the walk. Knowing the next
            // page's overlay layout, it prefetches that page's overlay
            // lines while this page computes (§5.2).
            if (pageBase(a_line) != last_page) {
                last_page = pageBase(a_line);
                obv = system.pageObv(asid, a_line);
                core.executeOp(asid, TraceOp::compute(1));
                system.prefetchOverlayPage(asid, last_page + kPageSize,
                                           core.currentCycle());
            }
            if (!obv.test(lineInPage(a_line)))
                continue; // zero line: skipped entirely (§5.2)

            core.executeOp(asid, TraceOp::load(a_line));
            core.executeOp(asid, TraceOp::load(addrs.xBase + Addr(c0) * 8));
            core.executeOp(asid, TraceOp::compute(kLineComputeOps));

            double a_vals[DenseLayout::kValuesPerLine];
            system.peek(asid, a_line, a_vals, sizeof(a_vals));
            unsigned n = std::min<std::uint32_t>(DenseLayout::kValuesPerLine,
                                                 layout.cols - c0);
            for (unsigned k = 0; k < n; ++k)
                acc += a_vals[k] * x[c0 + k];
        }
        core.executeOp(asid, TraceOp::compute(kRowOverheadOps));
        core.executeOp(asid, TraceOp::store(addrs.yBase + Addr(r) * 8));
        res.y[r] = acc;
        system.poke(asid, addrs.yBase + Addr(r) * 8, &acc, sizeof(double));
    }

    core.finishEpoch();
    res.cycles = core.epochCycles();
    res.instructions = core.epochInstructions();
    return res;
}

SpmvResult
spmvCsr(System &system, OooCore &core, Asid asid, const SpmvAddrs &addrs,
        const CsrMatrix &csr, const std::vector<double> &x, Tick start)
{
    SpmvResult res;
    res.y.assign(csr.rows(), 0.0);
    core.beginEpoch(start);

    const auto &row_ptr = csr.rowPtr();
    const auto &col_idx = csr.colIdx();
    const auto &values = csr.values();

    for (std::uint32_t r = 0; r < csr.rows(); ++r) {
        core.executeOp(asid, TraceOp::load(addrs.csrRowBase + Addr(r) * 4));
        core.executeOp(asid, TraceOp::compute(kRowOverheadOps));
        double acc = 0.0;
        for (std::uint32_t i = row_ptr[r]; i < row_ptr[r + 1]; ++i) {
            // col[i] load, then the gather from x depends on its value.
            core.executeOp(asid,
                           TraceOp::load(addrs.csrColBase + Addr(i) * 4));
            core.executeOp(asid,
                           TraceOp::load(addrs.xBase + Addr(col_idx[i]) * 8,
                                         /*depends_on_prev=*/true));
            core.executeOp(asid,
                           TraceOp::load(addrs.csrValBase + Addr(i) * 8));
            core.executeOp(asid, TraceOp::compute(kCsrNnzComputeOps));
            acc += values[i] * x[col_idx[i]];
        }
        core.executeOp(asid, TraceOp::store(addrs.yBase + Addr(r) * 8));
        res.y[r] = acc;
        system.poke(asid, addrs.yBase + Addr(r) * 8, &acc, sizeof(double));
    }

    core.finishEpoch();
    res.cycles = core.epochCycles();
    res.instructions = core.epochInstructions();
    return res;
}

} // namespace ovl
