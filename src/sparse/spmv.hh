/**
 * @file
 * Timed sparse-matrix-vector multiplication engines for the §5.2
 * evaluation: the dense baseline, CSR [26], and the paper's
 * overlay-based computation model (dense code + hardware zero-line
 * skipping). Each engine drives the OooCore with the instruction/memory
 * stream the corresponding implementation would execute and produces the
 * functional result for verification.
 */

#ifndef OVERLAYSIM_SPARSE_SPMV_HH
#define OVERLAYSIM_SPARSE_SPMV_HH

#include <cstdint>
#include <vector>

#include "cpu/ooo_core.hh"
#include "sparse/csr.hh"
#include "sparse/matrix.hh"
#include "sparse/overlay_matrix.hh"
#include "system/system.hh"

namespace ovl
{

/** Result of one timed SpMV run. */
struct SpmvResult
{
    Tick cycles = 0;
    std::uint64_t instructions = 0;
    std::vector<double> y;

    double
    cpi() const
    {
        return instructions == 0 ? 0.0
                                 : double(cycles) / double(instructions);
    }
};

/** Virtual-address plan of one SpMV experiment. */
struct SpmvAddrs
{
    Addr aBase = 0x1000'0000;      ///< matrix (dense or overlay layout)
    Addr xBase = 0x4000'0000;      ///< input vector
    Addr yBase = 0x4800'0000;      ///< output vector
    Addr csrValBase = 0x5000'0000; ///< CSR values array
    Addr csrColBase = 0x6000'0000; ///< CSR column indices
    Addr csrRowBase = 0x6800'0000; ///< CSR row pointers
};

/** Map and initialize the x (input) and y (output) vectors. */
void installVectors(System &system, Asid asid, const SpmvAddrs &addrs,
                    const std::vector<double> &x, std::uint32_t rows);

/** Map the matrix range as regular memory and store it densely. */
void installDense(System &system, Asid asid, Addr a_base,
                  const CooMatrix &coo);

/** Map and store the three CSR arrays as regular memory. */
void installCsr(System &system, Asid asid, const SpmvAddrs &addrs,
                const CsrMatrix &csr);

/**
 * Dense-code SpMV over a regular dense matrix: touches every line of
 * every row.
 */
SpmvResult spmvDense(System &system, OooCore &core, Asid asid,
                     const SpmvAddrs &addrs, const DenseLayout &layout,
                     const std::vector<double> &x, Tick start);

/**
 * The overlay computation model (§5.2): the same dense code, but the
 * hardware walks the OBitVector and only fetches/computes non-zero
 * lines (and can prefetch them, since it knows the overlay layout).
 */
SpmvResult spmvOverlay(System &system, OooCore &core,
                       const OverlayMatrix &matrix, const SpmvAddrs &addrs,
                       const std::vector<double> &x, Tick start);

/**
 * CSR SpMV: per non-zero, a column-index load, a dependent gather from
 * x, and a value load (the 1.5x metadata traffic of §5.2).
 */
SpmvResult spmvCsr(System &system, OooCore &core, Asid asid,
                   const SpmvAddrs &addrs, const CsrMatrix &csr,
                   const std::vector<double> &x, Tick start);

} // namespace ovl

#endif // OVERLAYSIM_SPARSE_SPMV_HH
