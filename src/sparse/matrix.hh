/**
 * @file
 * Sparse-matrix building blocks for §5.2: a COO builder, the dense
 * row-major layout used by the overlay representation, and the matrix
 * statistics the paper's analysis is organized around — most importantly
 * the non-zero value locality L (average number of non-zero values per
 * non-zero cache line).
 */

#ifndef OVERLAYSIM_SPARSE_MATRIX_HH
#define OVERLAYSIM_SPARSE_MATRIX_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace ovl
{

/** One non-zero entry. */
struct CooEntry
{
    std::uint32_t row = 0;
    std::uint32_t col = 0;
    double value = 0.0;
};

/** Coordinate-format builder: the neutral exchange format. */
struct CooMatrix
{
    std::string name;
    std::uint32_t rows = 0;
    std::uint32_t cols = 0;
    std::vector<CooEntry> entries;

    std::uint64_t nnz() const { return entries.size(); }

    /** Sort entries into row-major order and drop duplicates (keep last). */
    void canonicalize();
};

/**
 * The dense row-major layout shared by the dense baseline and the
 * overlay representation: 8-byte values, with the row stride padded to a
 * whole number of cache lines so that a line never straddles two rows
 * (this is what lets the hardware walk the OBitVector line by line and
 * know which columns of x each line needs).
 */
struct DenseLayout
{
    std::uint32_t rows = 0;
    std::uint32_t cols = 0;
    std::uint32_t paddedCols = 0; ///< cols rounded up to 8 (one line)

    static constexpr unsigned kValuesPerLine = unsigned(kLineSize / 8);

    explicit DenseLayout(std::uint32_t r = 0, std::uint32_t c = 0)
        : rows(r), cols(c),
          paddedCols((c + kValuesPerLine - 1) / kValuesPerLine *
                     kValuesPerLine)
    {
    }

    /** Byte offset of element (r, c) from the matrix base. */
    std::uint64_t
    offsetOf(std::uint32_t r, std::uint32_t c) const
    {
        return (std::uint64_t(r) * paddedCols + c) * 8;
    }

    /** Total bytes of the dense layout (what the dense baseline stores). */
    std::uint64_t bytes() const
    {
        return std::uint64_t(rows) * paddedCols * 8;
    }

    /** Line index (from base) of element (r, c). */
    std::uint64_t
    lineOf(std::uint32_t r, std::uint32_t c) const
    {
        return offsetOf(r, c) / kLineSize;
    }
};

/** Statistics of a matrix under a given block granularity. */
struct MatrixStats
{
    std::uint64_t nnz = 0;
    std::uint64_t nonZeroBlocks = 0; ///< blocks containing >= 1 non-zero
    double locality = 0.0;           ///< nnz / nonZeroBlocks (L for 64 B)
};

/**
 * Count the blocks of @p block_bytes (a power of two) that contain at
 * least one non-zero under the dense layout, and derive L. With
 * block_bytes = 64 this is the paper's non-zero value locality; with
 * 4096 it is the page-granularity figure of the Figure 11 sweep.
 */
MatrixStats analyzeMatrix(const CooMatrix &coo, std::uint64_t block_bytes);

/** Reference SpMV on COO: y = A * x (y sized to rows, zero-filled). */
std::vector<double> spmvReference(const CooMatrix &coo,
                                  const std::vector<double> &x);

} // namespace ovl

#endif // OVERLAYSIM_SPARSE_MATRIX_HH
