#include "matrix.hh"

#include <algorithm>
#include <unordered_set>

#include "common/intmath.hh"
#include "common/logging.hh"

namespace ovl
{

void
CooMatrix::canonicalize()
{
    std::stable_sort(entries.begin(), entries.end(),
                     [](const CooEntry &a, const CooEntry &b) {
                         if (a.row != b.row)
                             return a.row < b.row;
                         return a.col < b.col;
                     });
    // Keep the last of each duplicate coordinate.
    auto out = entries.begin();
    for (auto it = entries.begin(); it != entries.end(); ++it) {
        auto next = it + 1;
        if (next != entries.end() && next->row == it->row &&
            next->col == it->col) {
            continue;
        }
        *out++ = *it;
    }
    entries.erase(out, entries.end());
}

MatrixStats
analyzeMatrix(const CooMatrix &coo, std::uint64_t block_bytes)
{
    ovl_assert(isPowerOf2(block_bytes), "block size must be a power of two");
    DenseLayout layout(coo.rows, coo.cols);
    std::unordered_set<std::uint64_t> blocks;
    blocks.reserve(coo.entries.size());
    for (const CooEntry &e : coo.entries) {
        if (e.value == 0.0)
            continue;
        blocks.insert(layout.offsetOf(e.row, e.col) / block_bytes);
    }
    MatrixStats stats;
    stats.nnz = 0;
    for (const CooEntry &e : coo.entries)
        stats.nnz += (e.value != 0.0);
    stats.nonZeroBlocks = blocks.size();
    stats.locality = stats.nonZeroBlocks == 0
                         ? 0.0
                         : double(stats.nnz) / double(stats.nonZeroBlocks);
    return stats;
}

std::vector<double>
spmvReference(const CooMatrix &coo, const std::vector<double> &x)
{
    ovl_assert(x.size() >= coo.cols, "x vector too short");
    std::vector<double> y(coo.rows, 0.0);
    for (const CooEntry &e : coo.entries)
        y[e.row] += e.value * x[e.col];
    return y;
}

} // namespace ovl
