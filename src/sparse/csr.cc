#include "csr.hh"

#include <algorithm>

#include "common/logging.hh"

namespace ovl
{

CsrMatrix
CsrMatrix::fromCoo(const CooMatrix &coo)
{
    CsrMatrix csr;
    csr.rows_ = coo.rows;
    csr.cols_ = coo.cols;
    csr.rowPtr_.assign(std::size_t(coo.rows) + 1, 0);
    csr.values_.reserve(coo.entries.size());
    csr.colIdx_.reserve(coo.entries.size());

    std::uint32_t prev_row = 0;
    for (const CooEntry &e : coo.entries) {
        if (e.value == 0.0)
            continue;
        ovl_assert(e.row >= prev_row, "COO matrix must be canonicalized");
        while (prev_row < e.row)
            csr.rowPtr_[++prev_row] = std::uint32_t(csr.values_.size());
        csr.values_.push_back(e.value);
        csr.colIdx_.push_back(e.col);
    }
    while (prev_row < coo.rows)
        csr.rowPtr_[++prev_row] = std::uint32_t(csr.values_.size());
    return csr;
}

std::vector<double>
CsrMatrix::spmv(const std::vector<double> &x) const
{
    ovl_assert(x.size() >= cols_, "x vector too short");
    std::vector<double> y(rows_, 0.0);
    for (std::uint32_t r = 0; r < rows_; ++r) {
        double acc = 0.0;
        for (std::uint32_t i = rowPtr_[r]; i < rowPtr_[r + 1]; ++i)
            acc += values_[i] * x[colIdx_[i]];
        y[r] = acc;
    }
    return y;
}

std::uint64_t
CsrMatrix::insert(std::uint32_t row, std::uint32_t col, double value)
{
    ovl_assert(row < rows_ && col < cols_, "insert out of bounds");
    std::uint32_t begin = rowPtr_[row];
    std::uint32_t end = rowPtr_[row + 1];
    auto it = std::lower_bound(colIdx_.begin() + begin,
                               colIdx_.begin() + end, col);
    std::size_t pos = std::size_t(it - colIdx_.begin());
    if (it != colIdx_.begin() + end && *it == col) {
        values_[pos] = value; // in-place update: cheap
        return 0;
    }
    // Structural insert: shift the tails of both arrays and bump every
    // later row pointer. This is the costly dynamic update (§5.2).
    colIdx_.insert(colIdx_.begin() + pos, col);
    values_.insert(values_.begin() + pos, value);
    for (std::uint32_t r = row + 1; r <= rows_; ++r)
        ++rowPtr_[r];
    return (values_.size() - pos) + (rows_ - row);
}

} // namespace ovl
