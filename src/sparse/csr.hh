/**
 * @file
 * Compressed Sparse Row, the state-of-the-art software representation the
 * paper compares against ([26], Intel MKL's format): a values array, a
 * column-index array, and a row-pointer array. With 8 B values and 4 B
 * indices the metadata overhead is 1.5x the non-zero payload — exactly
 * the figure quoted in §5.2.
 */

#ifndef OVERLAYSIM_SPARSE_CSR_HH
#define OVERLAYSIM_SPARSE_CSR_HH

#include <cstdint>
#include <vector>

#include "sparse/matrix.hh"

namespace ovl
{

/** CSR matrix with 8 B values and 4 B indices. */
class CsrMatrix
{
  public:
    CsrMatrix() = default;

    /** Build from a canonicalized COO matrix. */
    static CsrMatrix fromCoo(const CooMatrix &coo);

    std::uint32_t rows() const { return rows_; }
    std::uint32_t cols() const { return cols_; }
    std::uint64_t nnz() const { return values_.size(); }

    const std::vector<double> &values() const { return values_; }
    const std::vector<std::uint32_t> &colIdx() const { return colIdx_; }
    const std::vector<std::uint32_t> &rowPtr() const { return rowPtr_; }

    /** Total storage: values + column indices + row pointers. */
    std::uint64_t
    bytes() const
    {
        return values_.size() * 8 + colIdx_.size() * 4 + rowPtr_.size() * 4;
    }

    /** Functional SpMV: y = A * x. */
    std::vector<double> spmv(const std::vector<double> &x) const;

    /**
     * Insert (or update) one non-zero value. This is the operation that
     * is cheap for overlays but costly for CSR (§5.2): every element of
     * the values and column arrays after the insertion point must shift.
     *
     * @return the number of array elements moved (the cost proxy).
     */
    std::uint64_t insert(std::uint32_t row, std::uint32_t col, double value);

  private:
    std::uint32_t rows_ = 0;
    std::uint32_t cols_ = 0;
    std::vector<double> values_;
    std::vector<std::uint32_t> colIdx_;
    std::vector<std::uint32_t> rowPtr_;
};

} // namespace ovl

#endif // OVERLAYSIM_SPARSE_CSR_HH
