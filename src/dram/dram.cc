#include "dram.hh"

#include <algorithm>

#include "common/intmath.hh"
#include "common/debug.hh"
#include "common/logging.hh"
#include "sim/profile.hh"
#include "sim/snapshot.hh"
#include "sim/trace.hh"

namespace ovl
{

DramModel::DramModel(std::string name, DramTimingParams params)
    : SimObject(std::move(name)), params_(params),
      banks_(params.numBanks),
      reads_(&statGroup(), "reads", "read bursts serviced"),
      writes_(&statGroup(), "writes", "write bursts serviced"),
      rowHits_(&statGroup(), "rowHits", "accesses hitting an open row"),
      rowClosed_(&statGroup(), "rowClosed", "accesses to a closed bank"),
      rowConflicts_(&statGroup(), "rowConflicts",
                    "accesses conflicting with a different open row")
{
    ovl_assert(isPowerOf2(params_.numBanks), "bank count must be 2^n");
    ovl_assert(isPowerOf2(params_.rowBufferBytes), "row buffer must be 2^n");
}

unsigned
DramModel::bankOf(Addr line_addr) const
{
    // Interleave banks on the bits just above the row-buffer column bits
    // so that sequential streams spread across banks row by row.
    Addr row_cols = params_.rowBufferBytes >> kLineShift;
    return unsigned((line_addr >> kLineShift) / row_cols) & (params_.numBanks - 1);
}

Addr
DramModel::rowOf(Addr line_addr) const
{
    Addr row_cols = params_.rowBufferBytes >> kLineShift;
    return ((line_addr >> kLineShift) / row_cols) / params_.numBanks;
}

Tick
DramModel::access(Addr line_addr, bool is_write, Tick when)
{
    Bank &bank = banks_[bankOf(line_addr)];
    Addr row = rowOf(line_addr);

    Tick start = std::max(when, bank.readyAt);

    Tick access_lat;
    const char *row_outcome;
    if (bank.openRow == row) {
        ++rowHits_;
        row_outcome = "row_hit";
        access_lat = params_.toCpu(params_.tCL + params_.burstClocks());
    } else if (bank.openRow == kInvalidAddr) {
        ++rowClosed_;
        row_outcome = "row_activate";
        access_lat = params_.toCpu(params_.tRCD + params_.tCL +
                                   params_.burstClocks());
        bank.activatedAt = start;
    } else {
        ++rowConflicts_;
        row_outcome = "row_conflict";
        // Precharge may not cut the previous activation shorter than tRAS.
        Tick ras_ready = bank.activatedAt + params_.toCpu(params_.tRAS);
        start = std::max(start, ras_ready);
        access_lat = params_.toCpu(params_.tRP + params_.tRCD + params_.tCL +
                                   params_.burstClocks());
        bank.activatedAt = start + params_.toCpu(params_.tRP);
    }
    bank.openRow = row;

    // Serialize bursts on the shared data bus.
    Tick burst = params_.toCpu(params_.burstClocks());
    Tick data_start = std::max(start + access_lat - burst, busReadyAt_);
    Tick done = data_start + burst;
    busReadyAt_ = done;

    // The bank can accept a new column command after the burst; writes add
    // write-recovery time before a precharge/activate could follow.
    bank.readyAt = done + (is_write ? params_.toCpu(params_.tWR) : 0);

    if (is_write)
        ++writes_;
    else
        ++reads_;
    if (trace::active()) {
        trace::complete("dram", row_outcome, start, done - start,
                        {{"bank", bankOf(line_addr)},
                         {"row", row},
                         {"write", is_write ? 1u : 0u}});
    }
    return done;
}

void
DramModel::resetTiming()
{
    for (Bank &bank : banks_) {
        bank.readyAt = 0;
        bank.activatedAt = 0;
    }
    busReadyAt_ = 0;
}

DramController::DramController(std::string name, DramTimingParams params,
                               unsigned write_buffer_entries)
    : SimObject(std::move(name)),
      dram_(this->name() + ".dram", params),
      writeBufferEntries_(write_buffer_entries),
      readRequests_(&statGroup(), "readRequests", "reads received"),
      writeRequests_(&statGroup(), "writeRequests", "writebacks received"),
      drains_(&statGroup(), "drains", "write-buffer drain episodes"),
      readDrainStallCycles_(&statGroup(), "readDrainStallCycles",
                            "cycles reads stalled behind write drains"),
      readLatency_(&statGroup(), "readLatency",
                   "DRAM read latency distribution (cycles)", 25, 20)
{
    ovl_assert(write_buffer_entries > 0, "write buffer needs capacity");
    writeBuffer_.reserve(write_buffer_entries);
}

Tick
DramController::read(Addr line_addr, Tick when)
{
    ++readRequests_;
    OVL_PROF_SCOPE(Dram);
    Tick start = when + dram_.params().controllerOverhead;
    if (drainBusyUntil_ > start) {
        readDrainStallCycles_ += drainBusyUntil_ - start;
        start = drainBusyUntil_;
    }
    Tick done = dram_.access(line_addr, false, start);
    readLatency_.sample(done - when);
    return done;
}

Tick
DramController::enqueueWrite(Addr line_addr, Tick when)
{
    ++writeRequests_;
    OVL_PROF_SCOPE(Dram);
    writeBuffer_.push_back(line_addr);
    Tick accept = when + dram_.params().controllerOverhead;
    if (writeBuffer_.size() >= writeBufferEntries_)
        drainWrites(accept);
    return accept;
}

Tick
DramController::drainWrites(Tick when)
{
    if (writeBuffer_.empty())
        return when;
    ++drains_;
    OVL_PROF_SCOPE(Dram);
    ovl_trace(dram, "drain: %zu writes at t=%llu", writeBuffer_.size(),
              (unsigned long long)when);
    // All buffered writes are issued to the banks at the drain start;
    // bank conflicts and data-bus occupancy serialize them inside the
    // DRAM model (this is FR-FCFS's point: drains pipeline across
    // banks [34]).
    Tick start = std::max(when, drainBusyUntil_);
    Tick done = start;
    std::uint64_t drained = writeBuffer_.size();
    for (Addr addr : writeBuffer_)
        done = std::max(done, dram_.access(addr, true, start));
    writeBuffer_.clear();
    drainBusyUntil_ = done;
    if (trace::active()) {
        trace::complete("dram", "wb_drain", start, done - start,
                        {{"writes", drained}});
    }
    return done;
}

void
DramController::resetTiming()
{
    drainWrites(drainBusyUntil_);
    drainBusyUntil_ = 0;
    dram_.resetTiming();
}

void
DramModel::serialize(snapshot::Writer &w) const
{
    w.beginSection("DRAM");
    w.u64(banks_.size());
    for (const Bank &bank : banks_) {
        w.u64(bank.openRow);
        w.u64(bank.readyAt);
        w.u64(bank.activatedAt);
    }
    w.u64(busReadyAt_);
    w.endSection();
}

void
DramModel::deserialize(snapshot::Reader &r)
{
    r.expectSection("DRAM");
    std::uint64_t n = r.u64();
    if (n != banks_.size()) {
        r.fail("DRAM bank count mismatch: snapshot " + std::to_string(n) +
               ", configured " + std::to_string(banks_.size()));
    }
    for (Bank &bank : banks_) {
        bank.openRow = r.u64();
        bank.readyAt = r.u64();
        bank.activatedAt = r.u64();
    }
    busReadyAt_ = r.u64();
    r.endSection();
}

void
DramController::serialize(snapshot::Writer &w) const
{
    w.beginSection("DCTL");
    w.u64(writeBuffer_.size());
    for (Addr addr : writeBuffer_)
        w.u64(addr);
    w.u64(drainBusyUntil_);
    dram_.serialize(w);
    w.endSection();
}

void
DramController::deserialize(snapshot::Reader &r)
{
    r.expectSection("DCTL");
    std::uint64_t n = r.count(8);
    if (n > writeBufferEntries_)
        r.fail("write buffer holds more entries than configured");
    writeBuffer_.clear();
    writeBuffer_.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i)
        writeBuffer_.push_back(r.u64());
    drainBusyUntil_ = r.u64();
    dram_.deserialize(r);
    r.endSection();
}

} // namespace ovl
