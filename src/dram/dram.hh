/**
 * @file
 * DDR3-1066 main-memory timing model (Table 2): one channel, one rank,
 * eight banks, 8 KB row buffer per bank, burst length 8 over an 8 B bus,
 * open-row policy, FR-FCFS-style controller with a 64-entry write buffer
 * that drains when full [34].
 */

#ifndef OVERLAYSIM_DRAM_DRAM_HH
#define OVERLAYSIM_DRAM_DRAM_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "sim/sim_object.hh"

namespace ovl
{

/**
 * DDR3-1066 timing parameters expressed in DRAM command clocks, plus the
 * CPU-clock multiplier. Defaults correspond to DDR3-1066 CL7 parts
 * (JESD79-3F [28]) driven by a 2.67 GHz core: 2666 MHz / 533 MHz = 5 CPU
 * cycles per DRAM clock.
 */
struct DramTimingParams
{
    unsigned cpuCyclesPerDramClock = 5;

    unsigned tCL = 7;   ///< CAS latency (clocks)
    unsigned tRCD = 7;  ///< RAS-to-CAS delay
    unsigned tRP = 7;   ///< Row precharge
    unsigned tRAS = 20; ///< Row active time (min open duration)
    unsigned tWR = 8;   ///< Write recovery
    unsigned burstLength = 8; ///< Beats per access; 8 beats x 8 B bus = 64 B

    unsigned numBanks = 8;
    Addr rowBufferBytes = 8 * 1024;

    /** Fixed controller decode/queue overhead per request (CPU cycles). */
    Tick controllerOverhead = 10;

    /** Data-transfer clocks for one 64 B line: BL / 2 (double data rate). */
    unsigned burstClocks() const { return burstLength / 2; }

    Tick toCpu(unsigned dram_clocks) const
    {
        return Tick(dram_clocks) * cpuCyclesPerDramClock;
    }
};

/**
 * Per-bank state and row-buffer timing. Access categories follow the
 * standard taxonomy: row hit (open row matches), row closed (bank idle,
 * activate needed), row conflict (different row open: precharge then
 * activate).
 */
class DramModel : public SimObject
{
  public:
    DramModel(std::string name, DramTimingParams params);

    /**
     * Perform one 64 B access.
     *
     * @param line_addr physical (or overlay-store) address of the line.
     * @param is_write true for a write burst.
     * @param when earliest CPU cycle the command can issue.
     * @return the CPU cycle at which the burst completes.
     */
    Tick access(Addr line_addr, bool is_write, Tick when);

    /** Latency-only convenience: completion minus request time. */
    Tick
    accessLatency(Addr line_addr, bool is_write, Tick when)
    {
        return access(line_addr, is_write, when) - when;
    }

    const DramTimingParams &params() const { return params_; }

    /**
     * Forget in-flight timing state (banks/bus become idle). Used when an
     * experiment phase boundary lets the machine go quiescent and the
     * clock restarts from zero. Open-row state is kept.
     */
    void resetTiming();

    /** Bank index of a line address (interleaved below the row bits). */
    unsigned bankOf(Addr line_addr) const;

    /** Row index of a line address within its bank. */
    Addr rowOf(Addr line_addr) const;

    std::uint64_t rowHits() const { return rowHits_.value(); }
    std::uint64_t rowClosed() const { return rowClosed_.value(); }
    std::uint64_t rowConflicts() const { return rowConflicts_.value(); }

    /** Snapshot bank open-row/timing state and the bus cursor. */
    void serialize(snapshot::Writer &w) const;
    void deserialize(snapshot::Reader &r);

  private:
    struct Bank
    {
        Addr openRow = kInvalidAddr;
        Tick readyAt = 0;       ///< earliest next command issue time
        Tick activatedAt = 0;   ///< for tRAS enforcement
    };

    DramTimingParams params_;
    std::vector<Bank> banks_;
    Tick busReadyAt_ = 0;

    stats::Counter reads_;
    stats::Counter writes_;
    stats::Counter rowHits_;
    stats::Counter rowClosed_;
    stats::Counter rowConflicts_;
};

/**
 * The write-buffer + scheduling front end of the memory controller
 * (Table 2: "FR-FCFS drain when full, 64-entry write buffer"). Reads are
 * serviced immediately unless a drain is in progress; writebacks are
 * absorbed into the buffer and streamed to DRAM when it fills.
 */
class DramController : public SimObject
{
  public:
    DramController(std::string name, DramTimingParams params,
                   unsigned write_buffer_entries = 64);

    /** Read one line; returns completion time. */
    Tick read(Addr line_addr, Tick when);

    /**
     * Accept a writeback. Returns the (small) acceptance latency; the
     * actual DRAM write happens during a later drain.
     */
    Tick enqueueWrite(Addr line_addr, Tick when);

    /** Force all buffered writes to DRAM (checkpoint flushes use this). */
    Tick drainWrites(Tick when);

    /** Drain pending writes and reset all timing state (phase boundary). */
    void resetTiming();

    DramModel &dram() { return dram_; }

    unsigned writeBufferOccupancy() const { return unsigned(writeBuffer_.size()); }
    std::uint64_t drains() const { return drains_.value(); }

    /** Snapshot the write buffer, drain state and the DRAM model. */
    void serialize(snapshot::Writer &w) const;
    void deserialize(snapshot::Reader &r);

  private:
    DramModel dram_;
    unsigned writeBufferEntries_;
    std::vector<Addr> writeBuffer_;
    Tick drainBusyUntil_ = 0;

    stats::Counter readRequests_;
    stats::Counter writeRequests_;
    stats::Counter drains_;
    stats::Counter readDrainStallCycles_;
    stats::Histogram readLatency_;
};

} // namespace ovl

#endif // OVERLAYSIM_DRAM_DRAM_HH
