#include "overlay_on_write.hh"

#include "common/logging.hh"

namespace ovl
{

namespace tech
{

void
sharePages(System &system, Asid owner, Asid borrower, Addr vaddr,
           std::uint64_t len, ForkMode mode)
{
    ovl_assert(pageOffset(vaddr) == 0 && len % kPageSize == 0,
               "sharePages requires a page-aligned range");
    Vmm &vmm = system.vmm();
    for (Addr va = vaddr; va < vaddr + len; va += kPageSize) {
        Addr vpn = pageNumber(va);
        Pte *pte = vmm.resolve(owner, vpn);
        ovl_assert(pte != nullptr && pte->present,
                   "sharePages of an unmapped owner page");
        ovl_assert(vmm.resolve(borrower, vpn) == nullptr,
                   "borrower already maps the shared range");
        pte->cow = true;
        if (mode == ForkMode::OverlayOnWrite)
            pte->overlayEnabled = true;
        if (pte->ppn != PhysicalMemory::kZeroFrame)
            system.physMem().addRef(pte->ppn);
        vmm.process(borrower).pageTable.set(vpn, *pte);
        // Owner's cached translation is stale (cow bit changed).
        system.tlb().invalidate(owner, vpn);
    }
}

void
remapToSharedFrame(System &system, Asid asid, Addr vaddr, Addr base_ppn,
                   ForkMode mode)
{
    Vmm &vmm = system.vmm();
    Addr vpn = pageNumber(vaddr);
    Pte *pte = vmm.resolve(asid, vpn);
    ovl_assert(pte != nullptr && pte->present,
               "remap of an unmapped page");
    system.physMem().addRef(base_ppn);
    system.physMem().release(pte->ppn);
    pte->ppn = base_ppn;
    pte->cow = true;
    if (mode == ForkMode::OverlayOnWrite)
        pte->overlayEnabled = true;
    system.tlb().invalidate(asid, vpn);
}

} // namespace tech

} // namespace ovl
