/**
 * @file
 * Technique 3 (§5.3.1): fine-grained deduplication — a hardware-assisted
 * Difference Engine [23]. Pages whose contents differ from a chosen base
 * page in at most a handful of cache lines are remapped to the base
 * frame, with the differing lines stored in their overlays. Unlike the
 * software Difference Engine, patched pages remain directly accessible
 * (the overlay semantics apply the "patch" on every access for free);
 * unlike HICAMP [11], no change to the programming model is needed.
 */

#ifndef OVERLAYSIM_TECH_DEDUP_HH
#define OVERLAYSIM_TECH_DEDUP_HH

#include <cstdint>
#include <utility>
#include <vector>

#include "system/system.hh"

namespace ovl
{

namespace tech
{

/** Deduplication policy knobs. */
struct DedupParams
{
    /**
     * A page is deduplicated against a base if at most this many of its
     * 64 lines differ. Beyond ~1/4 of the page, the overlay outweighs
     * the saving.
     */
    unsigned maxDiffLines = 16;
};

/** Outcome of one deduplication pass. */
struct DedupReport
{
    std::uint64_t pagesScanned = 0;
    std::uint64_t pagesDeduplicated = 0;
    std::uint64_t exactDuplicates = 0; ///< deduped with empty overlays
    std::uint64_t diffLinesStored = 0; ///< lines placed in overlays
    std::uint64_t framesFreed = 0;
    std::uint64_t overlayBytesAdded = 0;

    /** Net bytes saved: freed frames minus the overlays that replaced
     * them. */
    std::int64_t
    bytesSaved() const
    {
        return std::int64_t(framesFreed) * std::int64_t(kPageSize) -
               std::int64_t(overlayBytesAdded);
    }
};

/**
 * Scan-and-merge deduplication over explicit page lists (in a real
 * system this is the background scanner of [23, 55]).
 */
class DedupEngine
{
  public:
    DedupEngine(System &system, DedupParams params);

    /**
     * Deduplicate the given (asid, page-aligned vaddr) pages against
     * each other. The first page of each similarity cluster becomes the
     * base; the rest are remapped to it with their diffs in overlays.
     */
    DedupReport deduplicate(
        const std::vector<std::pair<Asid, Addr>> &pages);

  private:
    System &system_;
    DedupParams params_;
};

} // namespace tech

} // namespace ovl

#endif // OVERLAYSIM_TECH_DEDUP_HH
