#include "checkpoint.hh"

#include "common/logging.hh"
#include "overlay/overlay_addr.hh"

namespace ovl
{

namespace tech
{

CheckpointManager::CheckpointManager(System &system, Asid asid)
    : system_(system), asid_(asid)
{
}

void
CheckpointManager::armPage(Addr vpn)
{
    Pte *pte = system_.vmm().resolve(asid_, vpn);
    ovl_assert(pte != nullptr && pte->present,
               "checkpoint range not mapped");
    ovl_assert(pte->ppn == PhysicalMemory::kZeroFrame ||
                   system_.physMem().refCount(pte->ppn) == 1,
               "checkpointed pages must be private");
    pte->cow = true; // writes must trap to the capture mechanism
    pte->overlayEnabled = true;
    system_.tlb().invalidate(asid_, vpn);
}

void
CheckpointManager::addRange(Addr vaddr, std::uint64_t len)
{
    ovl_assert(pageOffset(vaddr) == 0 && len % kPageSize == 0,
               "checkpoint ranges must be page aligned");
    ovl_assert(checkpointsTaken_ == 0,
               "ranges must be added before the first checkpoint");
    ranges_.push_back(Range{vaddr, len});
    for (Addr va = vaddr; va < vaddr + len; va += kPageSize) {
        armPage(pageNumber(va));
        // Backing-store checkpoint 0: the full image at arm time.
        std::vector<std::uint8_t> image(kPageSize);
        system_.peek(asid_, va, image.data(), kPageSize);
        baseImage_.push_back({va, std::move(image)});
    }
}

CheckpointStats
CheckpointManager::takeCheckpoint(Tick when)
{
    CheckpointStats stats;
    Tick t = when;
    OverlayManager &ovm = system_.overlayManager();
    Delta delta;

    for (const Range &range : ranges_) {
        for (Addr va = range.vaddr; va < range.vaddr + range.len;
             va += kPageSize) {
            Opn opn = overlay_addr::pageFromVirtual(asid_, pageNumber(va));
            BitVector64 obv = ovm.obitvector(opn);
            if (obv.none())
                continue;
            ++stats.dirtyPages;
            stats.dirtyLines += obv.count();
            stats.pageGranBytes += kPageSize;

            // Stream the delta to the backing store: one read per
            // captured line (+ its metadata line once per overlay).
            for (unsigned l = obv.findFirst(); l < kLinesPerPage;
                 l = obv.findNext(l)) {
                Addr line_addr = (opn << kPageShift) |
                                 (Addr(l) << kLineShift);
                t = system_.caches().access(line_addr, false, t);
                stats.deltaBytes += kLineSize;
                LineData data;
                system_.peek(asid_, va + Addr(l) * kLineSize, data.data(),
                             kLineSize);
                delta.lines.push_back({pageNumber(va), l, data});
            }
            stats.deltaBytes += kLineSize; // per-overlay metadata record

            // Commit the delta into the base page and re-arm capture.
            t = system_.promoteOverlay(asid_, va, PromoteAction::Commit, t);
            armPage(pageNumber(va));
        }
    }

    stats.latency = t - when;
    totalDeltaBytes_ += stats.deltaBytes;
    deltas_.push_back(std::move(delta));
    ++checkpointsTaken_;
    return stats;
}

Tick
CheckpointManager::restore(std::size_t index, Tick when)
{
    ovl_assert(index <= deltas_.size(), "no such checkpoint");
    Tick t = when;

    // Drop any updates captured since the last checkpoint.
    for (const Range &range : ranges_) {
        for (Addr va = range.vaddr; va < range.vaddr + range.len;
             va += kPageSize) {
            if (system_.pageObv(asid_, va).any()) {
                t = system_.promoteOverlay(asid_, va,
                                           PromoteAction::Discard, t);
            }
            armPage(pageNumber(va));
        }
    }

    // Reload the base image, then replay deltas 1..index in order (the
    // timing model charges one write per restored line).
    for (const auto &[va, image] : baseImage_) {
        for (unsigned l = 0; l < kLinesPerPage; ++l) {
            system_.poke(asid_, va + Addr(l) * kLineSize,
                         image.data() + std::size_t(l) * kLineSize,
                         kLineSize);
            t = system_.caches().access(
                overlay_addr::fromVirtual(asid_,
                                          lineBase(va +
                                                   Addr(l) * kLineSize)),
                true, t);
        }
        // The reload itself lands in overlays (pages are armed); fold it
        // into the base pages so the restored state is clean.
        t = system_.promoteOverlay(asid_, va, PromoteAction::Commit, t);
        armPage(pageNumber(va));
    }
    for (std::size_t k = 0; k < index; ++k) {
        for (const auto &[vpn, line, data] : deltas_[k].lines) {
            Addr va = (vpn << kPageShift) + Addr(line) * kLineSize;
            system_.poke(asid_, va, data.data(), kLineSize);
        }
    }
    // Rolling back destroys the newer timeline: the next checkpoint's
    // delta is relative to the restored state.
    deltas_.resize(index);
    checkpointsTaken_ = index;
    // Fold the replayed deltas in as well and re-arm capture.
    for (const Range &range : ranges_) {
        for (Addr va = range.vaddr; va < range.vaddr + range.len;
             va += kPageSize) {
            if (system_.pageObv(asid_, va).any()) {
                t = system_.promoteOverlay(asid_, va,
                                           PromoteAction::Commit, t);
                armPage(pageNumber(va));
            }
        }
    }
    return t;
}

void
CheckpointManager::schedulePeriodic(EventQueue &queue, Tick interval,
                                    unsigned count)
{
    if (count == 0)
        return;
    queue.schedule(queue.now() + interval, [this, &queue, interval,
                                            count](Tick now) {
        takeCheckpoint(now);
        schedulePeriodic(queue, interval, count - 1);
    });
}

std::uint64_t
CheckpointManager::backingStoreBytes() const
{
    std::uint64_t bytes = 0;
    for (const auto &[va, image] : baseImage_)
        bytes += image.size();
    for (const Delta &delta : deltas_)
        bytes += delta.lines.size() * kLineSize;
    return bytes;
}

} // namespace tech

} // namespace ovl
