#include "superpage.hh"

#include <algorithm>

#include "common/logging.hh"

namespace ovl
{

namespace tech
{

SuperPageManager::SuperPageManager(System &system) : system_(system)
{
}

std::uint64_t
SuperPageManager::key(Asid asid, Addr vaddr)
{
    return (std::uint64_t(asid) << 48) | (vaddr / kSuperPageSize);
}

SuperPageManager::Mapping *
SuperPageManager::find(Asid asid, Addr vaddr)
{
    auto it = mappings_.find(key(asid, vaddr));
    return it == mappings_.end() ? nullptr : &it->second;
}

const SuperPageManager::Mapping *
SuperPageManager::find(Asid asid, Addr vaddr) const
{
    auto it = mappings_.find(key(asid, vaddr));
    return it == mappings_.end() ? nullptr : &it->second;
}

unsigned
SuperPageManager::segmentOf(const Mapping &m, Addr vaddr) const
{
    return unsigned((vaddr - m.baseVaddr) / kSegmentSize);
}

Addr
SuperPageManager::allocRun(unsigned pages)
{
    // The frame allocator is a bump allocator except under reuse; the
    // model only needs a stable base address for timing/functional
    // accesses, so allocate the run and use the first frame as the base.
    Addr first = system_.physMem().allocFrame();
    for (unsigned i = 1; i < pages; ++i)
        system_.physMem().allocFrame();
    return first;
}

void
SuperPageManager::mapSuperPage(Asid asid, Addr vaddr)
{
    ovl_assert(vaddr % kSuperPageSize == 0,
               "super-pages must be 2 MB aligned");
    ovl_assert(find(asid, vaddr) == nullptr, "super-page already mapped");
    Mapping m;
    m.baseVaddr = vaddr;
    Addr base = allocRun(unsigned(kSuperPageSize / kPageSize));
    m.segmentPpnBase.resize(64);
    for (unsigned s = 0; s < 64; ++s)
        m.segmentPpnBase[s] = base + Addr(s) * kPagesPerSegment;
    mappings_.emplace(key(asid, vaddr), std::move(m));
}

void
SuperPageManager::share(Asid owner, Asid borrower, Addr vaddr)
{
    Mapping *owner_map = find(owner, vaddr);
    ovl_assert(owner_map != nullptr, "sharing an unmapped super-page");
    ovl_assert(find(borrower, vaddr) == nullptr,
               "borrower already maps the super-page");
    Mapping m;
    m.baseVaddr = vaddr;
    m.shared = true;
    m.sharedPpnBase = owner_map->segmentPpnBase[0];
    m.segmentPpnBase.assign(64, kInvalidAddr);
    mappings_.emplace(key(borrower, vaddr), std::move(m));
}

Tick
SuperPageManager::write(Asid asid, Addr vaddr, Tick when,
                        SuperPageCowStats *stats)
{
    Mapping *m = find(asid, vaddr);
    ovl_assert(m != nullptr, "write to an unmapped super-page");
    unsigned seg = segmentOf(*m, vaddr);
    ovl_assert(!m->readOnly.test(seg),
               "write to a read-only super-page segment");
    Tick t = when;

    if (m->shared && !m->remapped.test(seg)) {
        // Flexible CoW: copy only this 32 KB segment and flip its bit in
        // the upper-level OBitVector (§5.3.5). A rigid super-page system
        // would have copied (and, typically, shattered) the whole 2 MB.
        t += system_.config().pageFaultTrapCycles;
        Addr src_frame = m->sharedPpnBase + Addr(seg) * kPagesPerSegment;
        Addr dst_frame = allocRun(kPagesPerSegment);
        Tick copy_done = t;
        for (unsigned pg = 0; pg < kPagesPerSegment; ++pg) {
            system_.physMem().copyFrame(dst_frame + pg, src_frame + pg);
            for (unsigned l = 0; l < kLinesPerPage; ++l) {
                Addr src = ((src_frame + pg) << kPageShift) |
                           (Addr(l) << kLineShift);
                Addr dst = ((dst_frame + pg) << kPageShift) |
                           (Addr(l) << kLineShift);
                Tick rd = system_.caches().access(src, false, t);
                Tick wr = system_.caches().access(dst, true, rd);
                copy_done = std::max(copy_done, wr);
            }
        }
        t = copy_done + system_.config().tlbShootdownCycles();

        if (m->remapped.none())
            rigidBytes_ += kSuperPageSize; // rigid CoW pays 2 MB up front
        flexibleBytes_ += kSegmentSize;
        m->segmentPpnBase[seg] = dst_frame;
        m->remapped.set(seg);
        if (stats) {
            ++stats->segmentCopies;
            stats->bytesCopied += kSegmentSize;
            if (m->remapped.count() == 1)
                ++stats->fullPageCopies;
        }
    }

    Addr frame = m->remapped.test(seg) || !m->shared
                     ? m->segmentPpnBase[seg]
                     : m->sharedPpnBase + Addr(seg) * kPagesPerSegment;
    Addr offset_in_seg = (vaddr - m->baseVaddr) % kSegmentSize;
    Addr paddr = (frame << kPageShift) + offset_in_seg;
    return system_.caches().access(lineBase(paddr), true, t);
}

void
SuperPageManager::protectSegment(Asid asid, Addr vaddr, bool writable)
{
    Mapping *m = find(asid, vaddr);
    ovl_assert(m != nullptr, "protecting an unmapped super-page");
    m->readOnly.assign(segmentOf(*m, vaddr), !writable);
}

bool
SuperPageManager::isWritable(Asid asid, Addr vaddr) const
{
    const Mapping *m = find(asid, vaddr);
    ovl_assert(m != nullptr, "probing an unmapped super-page");
    return !m->readOnly.test(segmentOf(*m, vaddr));
}

BitVector64
SuperPageManager::segmentVector(Asid asid, Addr vaddr) const
{
    const Mapping *m = find(asid, vaddr);
    ovl_assert(m != nullptr, "probing an unmapped super-page");
    return m->remapped;
}

} // namespace tech

} // namespace ovl
