#include "speculation.hh"

#include "common/logging.hh"
#include "overlay/overlay_addr.hh"

namespace ovl
{

namespace tech
{

SpeculativeRegion::SpeculativeRegion(System &system, Asid asid)
    : system_(system), asid_(asid)
{
}

SpeculativeRegion::~SpeculativeRegion()
{
    // A region abandoned without an explicit outcome is aborted: the
    // conservative choice, matching transactional semantics.
    if (active_)
        abort(0);
}

void
SpeculativeRegion::begin(Addr vaddr, std::uint64_t len)
{
    ovl_assert(!active_, "nested speculative regions are not supported");
    ovl_assert(pageOffset(vaddr) == 0 && len % kPageSize == 0,
               "speculative range must be page aligned");
    vaddr_ = vaddr;
    len_ = len;
    active_ = true;
    for (Addr va = vaddr; va < vaddr + len; va += kPageSize) {
        Pte *pte = system_.vmm().resolve(asid_, pageNumber(va));
        ovl_assert(pte != nullptr && pte->present,
                   "speculative range not mapped");
        ovl_assert(pte->ppn == PhysicalMemory::kZeroFrame ||
                       system_.physMem().refCount(pte->ppn) == 1,
                   "speculative pages must be private");
        pte->cow = true; // divert writes into the overlay
        pte->overlayEnabled = true;
        system_.tlb().invalidate(asid_, pageNumber(va));
    }
}

std::uint64_t
SpeculativeRegion::speculativeLines() const
{
    std::uint64_t lines = 0;
    for (Addr va = vaddr_; va < vaddr_ + len_; va += kPageSize)
        lines += system_.pageObv(asid_, va).count();
    return lines;
}

void
SpeculativeRegion::disarm()
{
    for (Addr va = vaddr_; va < vaddr_ + len_; va += kPageSize) {
        Pte *pte = system_.vmm().resolve(asid_, pageNumber(va));
        pte->cow = false;
        pte->overlayEnabled = false;
        system_.tlb().invalidate(asid_, pageNumber(va));
    }
    active_ = false;
}

SpeculationStats
SpeculativeRegion::resolve(Tick when, bool commit_updates)
{
    ovl_assert(active_, "resolving an inactive region");
    SpeculationStats stats;
    stats.committed = commit_updates;
    Tick t = when;

    for (Addr va = vaddr_; va < vaddr_ + len_; va += kPageSize) {
        BitVector64 obv = system_.pageObv(asid_, va);
        if (obv.none())
            continue;
        ++stats.speculativePages;
        stats.speculativeLines += obv.count();
        PromoteAction action = PromoteAction::Discard;
        if (commit_updates) {
            // Zero-backed pages cannot absorb a commit in place; merge
            // into a fresh frame instead.
            const Pte *pte = system_.vmm().resolve(asid_, pageNumber(va));
            action = pte->ppn == PhysicalMemory::kZeroFrame
                         ? PromoteAction::CopyAndCommit
                         : PromoteAction::Commit;
        }
        t = system_.promoteOverlay(asid_, va, action, t);
    }
    disarm();
    stats.resolveLatency = t - when;
    return stats;
}

SpeculationStats
SpeculativeRegion::commit(Tick when)
{
    return resolve(when, true);
}

SpeculationStats
SpeculativeRegion::abort(Tick when)
{
    return resolve(when, false);
}

} // namespace tech

} // namespace ovl
