/**
 * @file
 * Technique 7 (§5.3.5): flexible super-pages. A 2 MB super-page mapping
 * normally forces all-or-nothing management: sharing it copy-on-write
 * means copying 2 MB on the first write. Applying the overlay idea at
 * the next page-table level — a 64-bit OBitVector over 64 segments of
 * 32 KB each — lets the OS remap individual segments while the rest of
 * the super-page keeps its one-TLB-entry reach.
 */

#ifndef OVERLAYSIM_TECH_SUPERPAGE_HH
#define OVERLAYSIM_TECH_SUPERPAGE_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/bitvector64.hh"
#include "system/system.hh"

namespace ovl
{

namespace tech
{

/** Super-page geometry: 2 MB pages split into 64 segments of 32 KB. */
constexpr Addr kSuperPageSize = 2 * 1024 * 1024;
constexpr Addr kSegmentSize = kSuperPageSize / 64; // 32 KB = 8 base pages
constexpr unsigned kPagesPerSegment = unsigned(kSegmentSize / kPageSize);

/** Outcome of a super-page CoW service. */
struct SuperPageCowStats
{
    std::uint64_t segmentCopies = 0;  ///< 32 KB segment copies performed
    std::uint64_t bytesCopied = 0;
    std::uint64_t fullPageCopies = 0; ///< what the rigid baseline would do
};

/**
 * Manager of overlay-style super-pages. Super-pages are backed by
 * runs of contiguous base frames; sharing is CoW at 32 KB segment
 * granularity via a per-mapping OBitVector at the upper page-table
 * level. Per-segment protection domains use the same vector.
 */
class SuperPageManager
{
  public:
    explicit SuperPageManager(System &system);

    /** Map a fresh 2 MB super-page at @p vaddr for @p asid. */
    void mapSuperPage(Asid asid, Addr vaddr);

    /**
     * Share the super-page at @p vaddr of @p owner with @p borrower,
     * copy-on-write at segment granularity.
     */
    void share(Asid owner, Asid borrower, Addr vaddr);

    /**
     * Write one address; if its segment is still shared, copy only that
     * 32 KB segment (setting the OBitVector bit) instead of 2 MB.
     * Returns the completion time.
     */
    Tick write(Asid asid, Addr vaddr, Tick when,
               SuperPageCowStats *stats = nullptr);

    /** Segment-granular protection: mark one segment read-only. */
    void protectSegment(Asid asid, Addr vaddr, bool writable);

    /** Is the address writable under the segment protection map? */
    bool isWritable(Asid asid, Addr vaddr) const;

    /** OBitVector (remapped segments) of a shared super-page. */
    BitVector64 segmentVector(Asid asid, Addr vaddr) const;

    /** Bytes a rigid 2 MB-granular CoW would have consumed so far. */
    std::uint64_t rigidBytes() const { return rigidBytes_; }

    /** Bytes the flexible scheme actually consumed. */
    std::uint64_t flexibleBytes() const { return flexibleBytes_; }

  private:
    struct Mapping
    {
        Addr baseVaddr = 0;
        /** Private segment frame runs; invalid when still shared. */
        std::vector<Addr> segmentPpnBase; // 64 entries
        BitVector64 remapped;             // the upper-level OBitVector
        BitVector64 readOnly;
        bool shared = false;
        Addr sharedPpnBase = 0; ///< base frame of the shared backing run
    };

    Mapping *find(Asid asid, Addr vaddr);
    const Mapping *find(Asid asid, Addr vaddr) const;
    static std::uint64_t key(Asid asid, Addr vaddr);
    unsigned segmentOf(const Mapping &m, Addr vaddr) const;
    /** Allocate @p pages contiguous frames; returns the first frame. */
    Addr allocRun(unsigned pages);

    System &system_;
    std::unordered_map<std::uint64_t, Mapping> mappings_;
    std::uint64_t rigidBytes_ = 0;
    std::uint64_t flexibleBytes_ = 0;
};

} // namespace tech

} // namespace ovl

#endif // OVERLAYSIM_TECH_SUPERPAGE_HH
