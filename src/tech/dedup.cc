#include "dedup.hh"

#include <cstring>
#include <unordered_map>

#include "common/logging.hh"
#include "overlay/overlay_addr.hh"
#include "tech/overlay_on_write.hh"

namespace ovl
{

namespace tech
{

namespace
{

/** Page contents plus identity, captured through the access semantics. */
struct PageImage
{
    Asid asid;
    Addr vaddr;
    Addr ppn;
    std::array<std::uint8_t, kPageSize> bytes;
};

/** Indices of lines that differ between two page images. */
std::vector<unsigned>
diffLines(const PageImage &a, const PageImage &b)
{
    std::vector<unsigned> diffs;
    for (unsigned l = 0; l < kLinesPerPage; ++l) {
        if (std::memcmp(a.bytes.data() + std::size_t(l) * kLineSize,
                        b.bytes.data() + std::size_t(l) * kLineSize,
                        kLineSize) != 0) {
            diffs.push_back(l);
        }
    }
    return diffs;
}

/** FNV-1a over a byte range. */
std::uint64_t
fnv1a(const std::uint8_t *data, std::size_t len,
      std::uint64_t seed = 0xCBF29CE484222325ull)
{
    std::uint64_t h = seed;
    for (std::size_t i = 0; i < len; ++i) {
        h ^= data[i];
        h *= 0x100000001B3ull;
    }
    return h;
}

/** Hash of the whole page (exact-duplicate index). */
std::uint64_t
pageHash(const PageImage &img)
{
    return fnv1a(img.bytes.data(), img.bytes.size());
}

/**
 * Similarity signature: a hash over a fixed sample of lines, the
 * Difference Engine's candidate-selection trick [23]. Pages differing
 * only outside the sampled lines collide, making them merge candidates
 * without O(N^2) comparisons.
 */
std::uint64_t
sampleHash(const PageImage &img)
{
    static constexpr unsigned kSampleLines[] = {5, 23, 37, 59};
    std::uint64_t h = 0xCBF29CE484222325ull;
    for (unsigned l : kSampleLines) {
        h = fnv1a(img.bytes.data() + std::size_t(l) * kLineSize,
                  kLineSize, h);
    }
    return h;
}

} // namespace

DedupEngine::DedupEngine(System &system, DedupParams params)
    : system_(system), params_(params)
{
    ovl_assert(params.maxDiffLines <= kLinesPerPage,
               "diff threshold exceeds page size");
}

DedupReport
DedupEngine::deduplicate(const std::vector<std::pair<Asid, Addr>> &pages)
{
    DedupReport report;
    OverlayManager &ovm = system_.overlayManager();
    std::uint64_t oms_before = ovm.omsBytesInUse();

    // Capture images (what the scanner reads through the mappings).
    std::vector<PageImage> images;
    images.reserve(pages.size());
    for (const auto &[asid, vaddr] : pages) {
        ovl_assert(pageOffset(vaddr) == 0, "dedup pages must be aligned");
        Pte *pte = system_.vmm().resolve(asid, pageNumber(vaddr));
        ovl_assert(pte != nullptr && pte->present,
                   "dedup of an unmapped page");
        if (pte->cow || system_.pageObv(asid, vaddr).any())
            continue; // already shared or already patched: skip
        PageImage img;
        img.asid = asid;
        img.vaddr = vaddr;
        img.ppn = pte->ppn;
        system_.peek(asid, vaddr, img.bytes.data(), kPageSize);
        images.push_back(std::move(img));
        ++report.pagesScanned;
    }

    // Candidate selection via two hash indices (the Difference Engine
    // approach [23]): an exact-duplicate index over full-page hashes and
    // a similarity index over sampled-line hashes. Each page is compared
    // only against the first page (the base) of its bucket: O(N) scans.
    std::unordered_map<std::uint64_t, std::size_t> exact_index;
    std::unordered_map<std::uint64_t, std::size_t> similar_index;
    // mergedInto[i] points to the live base a merged page was folded
    // into, so stale index hits chase to a page that still owns a frame.
    std::vector<std::size_t> merged_into(images.size(), SIZE_MAX);
    auto live_base = [&](std::size_t idx) {
        while (merged_into[idx] != SIZE_MAX)
            idx = merged_into[idx];
        return idx;
    };
    for (std::size_t i = 0; i < images.size(); ++i) {
        const PageImage &candidate = images[i];
        bool merged = false;
        std::size_t base_candidates[2];
        unsigned num_candidates = 0;
        auto [exact_it, exact_new] =
            exact_index.try_emplace(pageHash(candidate), i);
        if (!exact_new)
            base_candidates[num_candidates++] = live_base(exact_it->second);
        auto [sim_it, sim_new] =
            similar_index.try_emplace(sampleHash(candidate), i);
        if (!sim_new && (num_candidates == 0 ||
                         live_base(sim_it->second) != base_candidates[0])) {
            base_candidates[num_candidates++] = live_base(sim_it->second);
        }
        for (unsigned c = 0; c < num_candidates && !merged; ++c) {
            if (base_candidates[c] == i)
                continue; // the bucket chased back to this very page
            const PageImage &base = images[base_candidates[c]];
            if (base.asid == candidate.asid &&
                base.vaddr == candidate.vaddr) {
                continue;
            }
            std::vector<unsigned> diffs = diffLines(base, candidate);
            if (diffs.size() > params_.maxDiffLines)
                continue;

            // Remap the candidate onto the base frame with the diffs in
            // its overlay. The base page itself also becomes CoW: a
            // write to it must diverge rather than mutate the shared
            // frame under its sharers.
            Pte *base_pte = system_.vmm().resolve(base.asid,
                                                  pageNumber(base.vaddr));
            if (!base_pte->cow) {
                base_pte->cow = true;
                base_pte->overlayEnabled = true;
                system_.tlb().invalidate(base.asid, pageNumber(base.vaddr));
            }
            remapToSharedFrame(system_, candidate.asid, candidate.vaddr,
                               base.ppn, ForkMode::OverlayOnWrite);
            Opn opn = overlay_addr::pageFromVirtual(
                candidate.asid, pageNumber(candidate.vaddr));
            Tick t = 0;
            for (unsigned l : diffs) {
                LineData line;
                std::memcpy(line.data(),
                            candidate.bytes.data() +
                                std::size_t(l) * kLineSize,
                            kLineSize);
                ovm.writeLineData(opn, l, line);
                system_.tlb().updateObvBit(candidate.asid,
                                           pageNumber(candidate.vaddr), l,
                                           true);
                // Materialize the OMS slot (as the dirty line's eviction
                // would).
                t = ovm.writebackLine(
                    (opn << kPageShift) | (Addr(l) << kLineShift), t);
            }
            ++report.pagesDeduplicated;
            if (diffs.empty())
                ++report.exactDuplicates;
            report.diffLinesStored += diffs.size();
            merged_into[i] = base_candidates[c];
            merged = true;
        }
        (void)merged;
    }

    // Every merged page releases exactly one private frame.
    report.framesFreed = report.pagesDeduplicated;
    report.overlayBytesAdded = ovm.omsBytesInUse() - oms_before;
    return report;
}

} // namespace tech

} // namespace ovl
