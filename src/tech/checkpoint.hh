/**
 * @file
 * Technique 4 (§5.3.2): efficient memory checkpointing. Overlays capture
 * every update between two checkpoints; taking a checkpoint writes only
 * the overlays (the delta) to the backing store, then commits them into
 * the base pages and re-arms capture. The baseline it improves on backs
 * up every dirtied page wholesale.
 */

#ifndef OVERLAYSIM_TECH_CHECKPOINT_HH
#define OVERLAYSIM_TECH_CHECKPOINT_HH

#include <cstdint>
#include <vector>

#include "sim/event_queue.hh"

#include "system/system.hh"

namespace ovl
{

namespace tech
{

/** Measured cost of one checkpoint. */
struct CheckpointStats
{
    std::uint64_t dirtyPages = 0;    ///< pages with captured updates
    std::uint64_t dirtyLines = 0;    ///< lines captured in overlays
    std::uint64_t deltaBytes = 0;    ///< written by the overlay scheme
    std::uint64_t pageGranBytes = 0; ///< a page-granular scheme would write
    Tick latency = 0;
};

/**
 * Overlay-based incremental checkpointing of one process's address
 * range(s). Pages must be private (not CoW-shared with another process).
 */
class CheckpointManager
{
  public:
    CheckpointManager(System &system, Asid asid);

    /**
     * Put [vaddr, vaddr+len) into capture mode: subsequent writes go to
     * overlays. Must be called once per range before the first interval.
     */
    void addRange(Addr vaddr, std::uint64_t len);

    /**
     * Take a checkpoint at @p when: scan the ranges, write each
     * overlay's lines to the backing store (counted in deltaBytes and
     * charged as DRAM reads), commit the overlays, and re-arm capture.
     */
    CheckpointStats takeCheckpoint(Tick when);

    /**
     * Roll the ranges back to checkpoint @p index (0 = the state at
     * arm time, k = the state captured by the k-th takeCheckpoint).
     * Uncaptured updates AND any checkpoints newer than @p index are
     * discarded (history is linear; rolling back destroys the timeline
     * above the restore point). Returns completion time.
     */
    Tick restore(std::size_t index, Tick when);

    /** Total delta bytes across all checkpoints so far. */
    std::uint64_t totalDeltaBytes() const { return totalDeltaBytes_; }
    std::uint64_t checkpointsTaken() const { return checkpointsTaken_; }

    /** Bytes held in the (host-modeled) backing store. */
    std::uint64_t backingStoreBytes() const;

    /**
     * Checkpoint daemon: schedule takeCheckpoint() on @p queue every
     * @p interval ticks, @p count times (the periodic-checkpointing
     * deployment of §5.3.2). Fires as the queue's clock advances.
     */
    void schedulePeriodic(EventQueue &queue, Tick interval,
                          unsigned count);

  private:
    struct Range
    {
        Addr vaddr;
        std::uint64_t len;
    };

    /** One captured delta: per page, the dirtied lines' contents. */
    struct Delta
    {
        /** (vpn, line) -> bytes at checkpoint time. */
        std::vector<std::tuple<Addr, unsigned, LineData>> lines;
    };

    void armPage(Addr vpn);
    void captureBaseImage();

    System &system_;
    Asid asid_;
    std::vector<Range> ranges_;
    /** Full image at arm time (checkpoint 0), page by page. */
    std::vector<std::pair<Addr, std::vector<std::uint8_t>>> baseImage_;
    std::vector<Delta> deltas_; ///< deltas_[k] belongs to checkpoint k+1
    std::uint64_t totalDeltaBytes_ = 0;
    std::uint64_t checkpointsTaken_ = 0;
};

} // namespace tech

} // namespace ovl

#endif // OVERLAYSIM_TECH_CHECKPOINT_HH
