/**
 * @file
 * Technique 1 (§2.2, §5.1): overlay-on-write, the paper's more efficient
 * copy-on-write. The heavy lifting lives in System (fork(), the
 * overlaying-write path, the CoW baseline); this header provides the
 * page-sharing utility that the other techniques (deduplication, VM
 * cloning demos) build on: placing an existing mapping of one process
 * into another process in copy-on-write or overlay-on-write mode.
 */

#ifndef OVERLAYSIM_TECH_OVERLAY_ON_WRITE_HH
#define OVERLAYSIM_TECH_OVERLAY_ON_WRITE_HH

#include <cstdint>

#include "system/system.hh"

namespace ovl
{

namespace tech
{

/**
 * Share [vaddr, vaddr+len) of @p owner with @p borrower. Both processes'
 * PTEs are marked CoW; with @p mode == OverlayOnWrite the OS also sets
 * the overlay-enabled bit so hardware resolves divergence with overlays
 * (§2.2). The borrower must not already map the range.
 */
void sharePages(System &system, Asid owner, Asid borrower, Addr vaddr,
                std::uint64_t len, ForkMode mode);

/**
 * Remap one page of @p asid to an existing frame in CoW/OoW mode,
 * releasing its current frame (used by deduplication: many pages, one
 * base frame).
 */
void remapToSharedFrame(System &system, Asid asid, Addr vaddr,
                        Addr base_ppn, ForkMode mode);

} // namespace tech

} // namespace ovl

#endif // OVERLAYSIM_TECH_OVERLAY_ON_WRITE_HH
