#include "metadata.hh"

#include <cstring>
#include <vector>

#include "common/logging.hh"

namespace ovl
{

namespace tech
{

ShadowMemory::ShadowMemory(System &system, Asid asid)
    : system_(system), asid_(asid)
{
}

void
ShadowMemory::enable(Addr vaddr, std::uint64_t len)
{
    ovl_assert(pageOffset(vaddr) == 0 && len % kPageSize == 0,
               "shadow range must be page aligned");
    for (Addr va = vaddr; va < vaddr + len; va += kPageSize) {
        Pte *pte = system_.vmm().resolve(asid_, pageNumber(va));
        ovl_assert(pte != nullptr && pte->present,
                   "shadow range not mapped");
        pte->overlayEnabled = true;
        pte->metadataMode = true;
        system_.tlb().invalidate(asid_, pageNumber(va));
    }
}

Tick
ShadowMemory::storeMeta(Addr vaddr, const void *meta, std::size_t len,
                        Tick when)
{
    const auto *src = static_cast<const std::uint8_t *>(meta);
    Tick t = when;
    while (len > 0) {
        std::size_t chunk = std::min<std::size_t>(
            len, std::size_t(lineBase(vaddr) + kLineSize - vaddr));
        t = system_.metadataAccess(asid_, vaddr, true, t);
        system_.metadataPoke(asid_, vaddr, src, chunk);
        vaddr += chunk;
        src += chunk;
        len -= chunk;
    }
    return t;
}

Tick
ShadowMemory::loadMeta(Addr vaddr, void *out, std::size_t len, Tick when)
{
    auto *dst = static_cast<std::uint8_t *>(out);
    Tick t = when;
    while (len > 0) {
        std::size_t chunk = std::min<std::size_t>(
            len, std::size_t(lineBase(vaddr) + kLineSize - vaddr));
        t = system_.metadataAccess(asid_, vaddr, false, t);
        system_.metadataPeek(asid_, vaddr, dst, chunk);
        vaddr += chunk;
        dst += chunk;
        len -= chunk;
    }
    return t;
}

void
ShadowMemory::pokeMeta(Addr vaddr, const void *meta, std::size_t len)
{
    system_.metadataPoke(asid_, vaddr, meta, len);
}

void
ShadowMemory::peekMeta(Addr vaddr, void *out, std::size_t len) const
{
    system_.metadataPeek(asid_, vaddr, out, len);
}

unsigned
ShadowMemory::shadowLines(Addr vaddr) const
{
    return system_.pageObv(asid_, vaddr).count();
}

Tick
TaintTracker::setTaint(Addr vaddr, std::size_t len, bool tainted, Tick when)
{
    std::vector<std::uint8_t> meta(len, tainted ? 1 : 0);
    return shadow_.storeMeta(vaddr, meta.data(), len, when);
}

bool
TaintTracker::isTainted(Addr vaddr, std::size_t len) const
{
    std::vector<std::uint8_t> meta(len);
    shadow_.peekMeta(vaddr, meta.data(), len);
    for (std::uint8_t m : meta) {
        if (m != 0)
            return true;
    }
    return false;
}

Tick
TaintTracker::taintedCopy(Addr dst, Addr src, std::size_t len, Tick when)
{
    // Data move with metadata propagation: regular load/store pair plus
    // the metadata load/store pair the instrumentation adds.
    std::vector<std::uint8_t> data(len);
    std::vector<std::uint8_t> meta(len);
    Tick t = system_.read(asid_, src, data.data(), len, when);
    t = shadow_.loadMeta(src, meta.data(), len, t);
    t = system_.write(asid_, dst, data.data(), len, t);
    t = shadow_.storeMeta(dst, meta.data(), len, t);
    return t;
}

} // namespace tech

} // namespace ovl
