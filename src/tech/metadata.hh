/**
 * @file
 * Technique 6 (§5.3.4): fine-grained metadata management. The Overlay
 * Address Space doubles as shadow memory: a page in metadata mode keeps
 * its data in the regular physical page while its overlay stores
 * per-byte metadata, reached only through the new metadata load/store
 * instructions. No metadata-specific hardware (cf. [35, 59, 60]) is
 * needed. The demo application is a byte-granularity taint tracker [53].
 */

#ifndef OVERLAYSIM_TECH_METADATA_HH
#define OVERLAYSIM_TECH_METADATA_HH

#include <cstdint>

#include "system/system.hh"

namespace ovl
{

namespace tech
{

/**
 * Byte-granularity shadow-memory manager over one process's pages. One
 * metadata byte shadows each data byte (the overlay page is exactly the
 * size of the virtual page).
 */
class ShadowMemory
{
  public:
    ShadowMemory(System &system, Asid asid);

    /** Enable metadata mode on [vaddr, vaddr+len). */
    void enable(Addr vaddr, std::uint64_t len);

    /** Store metadata bytes for [vaddr, vaddr+len); returns finish tick. */
    Tick storeMeta(Addr vaddr, const void *meta, std::size_t len,
                   Tick when);

    /** Load metadata bytes (zero where never stored). */
    Tick loadMeta(Addr vaddr, void *out, std::size_t len, Tick when);

    /** Functional variants. */
    void pokeMeta(Addr vaddr, const void *meta, std::size_t len);
    void peekMeta(Addr vaddr, void *out, std::size_t len) const;

    /** Shadow lines currently materialized for the page of @p vaddr. */
    unsigned shadowLines(Addr vaddr) const;

  private:
    System &system_;
    Asid asid_;
};

/**
 * Taint-propagation demo on top of ShadowMemory: one taint byte per data
 * byte; taintedCopy() models a propagating move instruction.
 */
class TaintTracker
{
  public:
    TaintTracker(System &system, Asid asid) : shadow_(system, asid),
                                              system_(system), asid_(asid)
    {
    }

    void enable(Addr vaddr, std::uint64_t len) { shadow_.enable(vaddr, len); }

    /** Mark [vaddr, vaddr+len) tainted/untainted. */
    Tick setTaint(Addr vaddr, std::size_t len, bool tainted, Tick when);

    /** Is any byte of [vaddr, vaddr+len) tainted? */
    bool isTainted(Addr vaddr, std::size_t len) const;

    /**
     * Copy data and propagate taint (the core of dynamic taint
     * analysis). Returns finish tick.
     */
    Tick taintedCopy(Addr dst, Addr src, std::size_t len, Tick when);

  private:
    ShadowMemory shadow_;
    System &system_;
    Asid asid_;
};

} // namespace tech

} // namespace ovl

#endif // OVERLAYSIM_TECH_METADATA_HH
