/**
 * @file
 * Technique 5 (§5.3.3): virtualizing speculation. Speculative memory
 * updates are buffered in overlays instead of in the cache, so an
 * eviction of a speculatively-written line no longer aborts the
 * speculation — the overlay simply absorbs it. Success commits the
 * overlays into the base pages; failure discards them. Capacity is
 * bounded by the Overlay Memory Store, not the cache: effectively
 * unbounded speculation [2].
 */

#ifndef OVERLAYSIM_TECH_SPECULATION_HH
#define OVERLAYSIM_TECH_SPECULATION_HH

#include <cstdint>
#include <vector>

#include "system/system.hh"

namespace ovl
{

namespace tech
{

/** Outcome summary of a finished speculative region. */
struct SpeculationStats
{
    std::uint64_t speculativePages = 0;
    std::uint64_t speculativeLines = 0;
    bool committed = false;
    Tick resolveLatency = 0;
};

/**
 * One speculative region over explicit address ranges of one process
 * (a transaction body, a thread-level-speculation epoch, or an OS
 * speculation window [10, 36, 57]).
 */
class SpeculativeRegion
{
  public:
    SpeculativeRegion(System &system, Asid asid);
    ~SpeculativeRegion();

    /** Begin speculation over [vaddr, vaddr+len); pages must be private. */
    void begin(Addr vaddr, std::uint64_t len);

    /** Is a region currently open? */
    bool active() const { return active_; }

    /** Lines currently buffered speculatively (may exceed cache size). */
    std::uint64_t speculativeLines() const;

    /** Speculation succeeded: merge the overlays into the base pages. */
    SpeculationStats commit(Tick when);

    /** Speculation failed: throw the overlays away; memory is untouched. */
    SpeculationStats abort(Tick when);

  private:
    SpeculationStats resolve(Tick when, bool commit_updates);
    void disarm();

    System &system_;
    Asid asid_;
    Addr vaddr_ = 0;
    std::uint64_t len_ = 0;
    bool active_ = false;
};

} // namespace tech

} // namespace ovl

#endif // OVERLAYSIM_TECH_SPECULATION_HH
