/**
 * @file
 * Randomized batteries for the Table 1 techniques: checkpoint/restore
 * against a versioned host shadow, repeated speculation episodes with
 * random commit/abort decisions, and deduplication over random page
 * populations (contents must be bit-identical before and after).
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/random.hh"
#include "tech/checkpoint.hh"
#include "tech/dedup.hh"
#include "tech/speculation.hh"

namespace ovl
{
namespace
{

constexpr Addr kBase = 0x400000;

class TechFuzz : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(TechFuzz, CheckpointRestoreMatchesVersionedShadow)
{
    Rng rng(GetParam());
    constexpr unsigned kPages = 4;
    System sys((SystemConfig()));
    Asid asid = sys.createProcess();
    sys.mapAnon(asid, kBase, kPages * kPageSize);
    tech::CheckpointManager ckpt(sys, asid);
    ckpt.addRange(kBase, kPages * kPageSize);

    using Image = std::vector<std::uint8_t>;
    Image shadow(kPages * kPageSize, 0);
    std::vector<Image> versions{shadow}; // versions[k] = checkpoint k
    Tick t = 0;

    for (unsigned step = 0; step < 600; ++step) {
        unsigned dice = unsigned(rng.below(20));
        if (dice == 0) { // take a checkpoint
            ckpt.takeCheckpoint(t);
            versions.push_back(shadow);
        } else if (dice == 1 && versions.size() > 1) { // restore
            std::size_t k = rng.below(versions.size());
            t = ckpt.restore(k, t);
            shadow = versions[k];
            versions.resize(k + 1); // linear history: later ones die
        } else { // write
            Addr offset = rng.below(kPages * kPageSize - 8);
            std::uint64_t value = rng.next();
            sys.poke(asid, kBase + offset, &value, 8);
            std::memcpy(shadow.data() + offset, &value, 8);
        }
        if (step % 97 == 0) {
            Image got(kPages * kPageSize);
            for (unsigned p = 0; p < kPages; ++p) {
                sys.peek(asid, kBase + p * kPageSize,
                         got.data() + p * kPageSize, kPageSize);
            }
            ASSERT_EQ(got, shadow) << "step " << step;
        }
    }
}

TEST_P(TechFuzz, SpeculationEpisodesNeverLeak)
{
    Rng rng(GetParam() + 1000);
    constexpr unsigned kPages = 8;
    System sys((SystemConfig()));
    Asid asid = sys.createProcess();
    sys.mapAnon(asid, kBase, kPages * kPageSize);

    std::vector<std::uint8_t> shadow(kPages * kPageSize, 0);
    Tick t = 0;
    for (unsigned episode = 0; episode < 30; ++episode) {
        tech::SpeculativeRegion region(sys, asid);
        region.begin(kBase, kPages * kPageSize);
        std::vector<std::pair<Addr, std::uint64_t>> spec_writes;
        unsigned writes = 1 + unsigned(rng.below(40));
        for (unsigned w = 0; w < writes; ++w) {
            Addr offset = rng.below(kPages * kPageSize - 8);
            std::uint64_t value = rng.next();
            t = sys.write(asid, kBase + offset, &value, 8, t);
            spec_writes.push_back({offset, value});
        }
        if (rng.chance(0.5)) {
            region.commit(t);
            for (auto &[offset, value] : spec_writes)
                std::memcpy(shadow.data() + offset, &value, 8);
        } else {
            region.abort(t);
        }
        std::vector<std::uint8_t> got(kPages * kPageSize);
        for (unsigned p = 0; p < kPages; ++p) {
            sys.peek(asid, kBase + p * kPageSize,
                     got.data() + p * kPageSize, kPageSize);
        }
        ASSERT_EQ(got, shadow) << "episode " << episode;
    }
}

TEST_P(TechFuzz, DedupPreservesEveryByte)
{
    Rng rng(GetParam() + 2000);
    constexpr unsigned kPages = 48;
    System sys((SystemConfig()));
    Asid asid = sys.createProcess();
    sys.mapAnon(asid, kBase, kPages * kPageSize);

    // A handful of base contents, randomly perturbed per page.
    std::vector<std::vector<std::uint8_t>> bases(4);
    for (auto &base : bases) {
        base.resize(kPageSize);
        for (auto &b : base)
            b = std::uint8_t(rng.next());
    }
    std::vector<std::vector<std::uint8_t>> truth(kPages);
    std::vector<std::pair<Asid, Addr>> pages;
    for (unsigned p = 0; p < kPages; ++p) {
        truth[p] = bases[rng.below(bases.size())];
        unsigned perturb = unsigned(rng.below(4)); // 0..3 dirty bytes
        for (unsigned i = 0; i < perturb; ++i)
            truth[p][rng.below(kPageSize)] ^= 0xFF;
        sys.poke(asid, kBase + p * kPageSize, truth[p].data(), kPageSize);
        pages.push_back({asid, kBase + p * kPageSize});
    }

    tech::DedupEngine engine(sys, tech::DedupParams{8});
    tech::DedupReport report = engine.deduplicate(pages);
    EXPECT_GT(report.pagesDeduplicated, 0u);
    EXPECT_GE(report.bytesSaved(), 0);

    for (unsigned p = 0; p < kPages; ++p) {
        std::vector<std::uint8_t> got(kPageSize);
        sys.peek(asid, kBase + p * kPageSize, got.data(), kPageSize);
        ASSERT_EQ(got, truth[p]) << "page " << p;
    }

    // Post-dedup writes still diverge correctly.
    for (unsigned p = 0; p < kPages; p += 7) {
        std::uint8_t v = std::uint8_t(0xC0 + p);
        Addr offset = rng.below(kPageSize);
        sys.write(asid, kBase + p * kPageSize + offset, &v, 1, 0);
        truth[p][offset] = v;
    }
    for (unsigned p = 0; p < kPages; ++p) {
        std::vector<std::uint8_t> got(kPageSize);
        sys.peek(asid, kBase + p * kPageSize, got.data(), kPageSize);
        ASSERT_EQ(got, truth[p]) << "post-write page " << p;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TechFuzz, ::testing::Values(5, 55, 555));

} // namespace
} // namespace ovl
