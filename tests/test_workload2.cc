/**
 * @file
 * Properties of the post-fork write schedules: each WritePattern must
 * produce exactly the temporal/spatial shape its benchmark type models
 * (Streaming: a sequential sweep; Clustered: whole-page bursts in random
 * page order; Windowed: same-page writes well separated in time).
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/random.hh"
#include "workload/forkbench.hh"

namespace ovl
{
namespace
{

ForkBenchParams
baseParams(WritePattern pattern)
{
    ForkBenchParams p;
    p.footprintPages = 512;
    p.dirtyPages = 64;
    p.linesPerDirtyPage = 16;
    p.pattern = pattern;
    p.seed = 5;
    return p;
}

TEST(WriteSchedule, CoversExactlyTheConfiguredWorkingSet)
{
    for (auto pattern : {WritePattern::Windowed, WritePattern::Streaming,
                         WritePattern::Clustered}) {
        ForkBenchParams p = baseParams(pattern);
        Rng rng(p.seed);
        std::vector<Addr> sched = buildWriteSchedule(p, rng);
        EXPECT_EQ(sched.size(), p.dirtyPages * p.linesPerDirtyPage);

        std::set<Addr> distinct_lines(sched.begin(), sched.end());
        EXPECT_EQ(distinct_lines.size(), sched.size()); // no repeats
        std::set<Addr> pages;
        for (Addr a : sched)
            pages.insert(pageNumber(a));
        EXPECT_EQ(pages.size(), p.dirtyPages);
    }
}

TEST(WriteSchedule, StreamingIsStrictlyAscendingAndContiguous)
{
    ForkBenchParams p = baseParams(WritePattern::Streaming);
    p.linesPerDirtyPage = 64;
    Rng rng(p.seed);
    std::vector<Addr> sched = buildWriteSchedule(p, rng);
    for (std::size_t i = 1; i < sched.size(); ++i)
        ASSERT_LT(sched[i - 1], sched[i]);
    // A contiguous page region (one grid sweep).
    EXPECT_EQ(pageNumber(sched.back()) - pageNumber(sched.front()) + 1,
              p.dirtyPages);
}

TEST(WriteSchedule, ClusteredWritesEachPageInOneBurst)
{
    ForkBenchParams p = baseParams(WritePattern::Clustered);
    Rng rng(p.seed);
    std::vector<Addr> sched = buildWriteSchedule(p, rng);
    // Once the schedule leaves a page it never returns to it.
    std::set<Addr> finished;
    Addr current = kInvalidAddr;
    for (Addr a : sched) {
        Addr page = pageNumber(a);
        if (page != current) {
            ASSERT_EQ(finished.count(page), 0u)
                << "page revisited after its burst";
            if (current != kInvalidAddr)
                finished.insert(current);
            current = page;
        }
    }
}

TEST(WriteSchedule, WindowedSeparatesSamePageWrites)
{
    ForkBenchParams p = baseParams(WritePattern::Windowed);
    Rng rng(p.seed);
    std::vector<Addr> sched = buildWriteSchedule(p, rng);
    // Consecutive same-page writes must be well separated in time
    // (§5.1). The rotation window is 24 pages; at the drain tail the
    // active set shrinks, so only assert full separation away from it.
    std::size_t tail_start = sched.size() - 64;
    std::map<Addr, std::size_t> last_index;
    for (std::size_t i = 0; i < sched.size(); ++i) {
        Addr page = pageNumber(sched[i]);
        auto it = last_index.find(page);
        if (it != last_index.end()) {
            ASSERT_GE(i - it->second, i < tail_start ? 16u : 2u)
                << "at index " << i;
        }
        last_index[page] = i;
    }
}

TEST(WriteSchedule, DeterministicPerSeed)
{
    ForkBenchParams p = baseParams(WritePattern::Windowed);
    Rng a(p.seed), b(p.seed);
    EXPECT_EQ(buildWriteSchedule(p, a), buildWriteSchedule(p, b));
    Rng c(p.seed + 1);
    EXPECT_NE(buildWriteSchedule(p, c), buildWriteSchedule(p, a));
}

TEST(WriteSchedule, SuitePatternsMatchTypes)
{
    for (const ForkBenchParams &p : forkBenchSuite()) {
        switch (p.type) {
          case 1:
          case 3:
            EXPECT_EQ(p.pattern, WritePattern::Windowed) << p.name;
            break;
          case 2:
            if (p.name == "cactus")
                EXPECT_EQ(p.pattern, WritePattern::Clustered);
            else
                EXPECT_EQ(p.pattern, WritePattern::Streaming) << p.name;
            break;
        }
    }
}

} // namespace
} // namespace ovl
