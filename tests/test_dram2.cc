/**
 * @file
 * Second-wave DRAM tests: timing reset, write recovery, and randomized
 * properties (completion monotonicity per bank, conservation of access
 * categories, drain accounting) under arbitrary request sequences.
 */

#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <vector>

#include "common/random.hh"
#include "dram/dram.hh"

namespace ovl
{
namespace
{

TEST(DramReset, TimingClearsButRowStateRemains)
{
    DramModel dram("dram", DramTimingParams{});
    dram.access(0x0, false, 0);
    Tick busy = dram.access(0x40, false, 0);
    ASSERT_GT(busy, 0u);
    dram.resetTiming();
    // Banks idle again: an access at tick 0 is not queued...
    Tick t = dram.access(0x80, false, 0);
    DramTimingParams p;
    // ... and it is still a row hit (open-row state survived the reset).
    EXPECT_EQ(t, p.toCpu(p.tCL + p.burstClocks()));
}

TEST(DramReset, ControllerDrainsPendingWrites)
{
    DramController ctrl("ctrl", DramTimingParams{}, 16);
    for (int i = 0; i < 5; ++i)
        ctrl.enqueueWrite(Addr(i) * 64, 100);
    ASSERT_EQ(ctrl.writeBufferOccupancy(), 5u);
    ctrl.resetTiming();
    EXPECT_EQ(ctrl.writeBufferOccupancy(), 0u);
    // And reads start unqueued afterwards.
    Tick lat = ctrl.read(0x123400, 0);
    EXPECT_LT(lat, 300u);
}

TEST(DramWrite, WriteRecoveryDelaysSameBank)
{
    DramModel dram("dram", DramTimingParams{});
    Tick wdone = dram.access(0x0, true, 0);
    // Immediately-following same-bank read waits at least tWR.
    Tick rdone = dram.access(0x40, false, wdone);
    DramTimingParams p;
    EXPECT_GE(rdone - wdone, p.toCpu(p.tWR));
}

class DramFuzz : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(DramFuzz, PerBankCompletionsAreMonotonic)
{
    DramModel dram("dram", DramTimingParams{});
    Rng rng(GetParam());
    std::map<unsigned, Tick> last_done;
    Tick when = 0;
    for (int i = 0; i < 3000; ++i) {
        when += rng.below(100);
        Addr addr = (rng.below(1 << 20)) << kLineShift;
        bool is_write = rng.chance(0.3);
        Tick done = dram.access(addr, is_write, when);
        ASSERT_GT(done, when); // service takes non-zero time
        unsigned bank = dram.bankOf(addr);
        auto it = last_done.find(bank);
        if (it != last_done.end()) {
            // A bank services requests in arrival order here; the data
            // bus is shared, so completions per bank never go backwards.
            ASSERT_GE(done, it->second);
        }
        last_done[bank] = done;
    }
}

TEST_P(DramFuzz, AccessCategoriesAreConserved)
{
    DramModel dram("dram", DramTimingParams{});
    Rng rng(GetParam() + 100);
    unsigned accesses = 2000;
    for (unsigned i = 0; i < accesses; ++i) {
        Addr addr = (rng.below(1 << 16)) << kLineShift;
        dram.access(addr, rng.chance(0.5), i * 50);
    }
    // Every access is classified exactly once: hit, closed or conflict.
    EXPECT_EQ(dram.rowHits() + dram.rowClosed() + dram.rowConflicts(),
              accesses);
    // Closed-bank activations happen at most once per bank under the
    // open-row policy (rows are never proactively closed).
    EXPECT_LE(dram.rowClosed(), DramTimingParams{}.numBanks);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DramFuzz, ::testing::Values(11, 22, 33));

TEST(DramController, DrainCountMatchesBufferMath)
{
    DramController ctrl("ctrl", DramTimingParams{}, 8);
    for (int i = 0; i < 50; ++i)
        ctrl.enqueueWrite(Addr(i) * 4096, Tick(i) * 10);
    // 50 writes with an 8-entry buffer: a drain fires on every 8th.
    EXPECT_EQ(ctrl.drains(), 50u / 8);
    EXPECT_EQ(ctrl.writeBufferOccupancy(), 50u % 8);
}

TEST(DramController, SequentialStreamMostlyRowHits)
{
    DramController ctrl("ctrl", DramTimingParams{});
    Tick t = 0;
    for (Addr a = 0; a < 512 * kLineSize; a += kLineSize)
        t = ctrl.read(a, t);
    // A sequential sweep within row buffers is row-hit dominated.
    EXPECT_GT(ctrl.dram().rowHits(), 500u - 8u);
}

} // namespace
} // namespace ovl
