/**
 * @file
 * Tests for the multi-stream prefetcher (16 streams, degree 4,
 * distance 24, trained on L2 misses; Table 2).
 */

#include <gtest/gtest.h>

#include "cache/prefetcher.hh"

namespace ovl
{
namespace
{

std::vector<Addr>
missAt(StreamPrefetcher &pf, Addr line_index)
{
    std::vector<Addr> out;
    pf.notifyMiss(line_index << kLineShift, out);
    return out;
}

TEST(Prefetcher, FirstMissOnlyAllocates)
{
    StreamPrefetcher pf("pf", PrefetcherParams{});
    EXPECT_TRUE(missAt(pf, 100).empty());
}

TEST(Prefetcher, SecondMissEstablishesStreamAndPrefetches)
{
    StreamPrefetcher pf("pf", PrefetcherParams{});
    missAt(pf, 100);
    std::vector<Addr> out = missAt(pf, 101);
    ASSERT_EQ(out.size(), 4u); // degree = 4
    EXPECT_EQ(out[0], Addr(102) << kLineShift);
    EXPECT_EQ(out[1], Addr(103) << kLineShift);
    EXPECT_EQ(out[2], Addr(104) << kLineShift);
    EXPECT_EQ(out[3], Addr(105) << kLineShift);
}

TEST(Prefetcher, DescendingStreams)
{
    StreamPrefetcher pf("pf", PrefetcherParams{});
    missAt(pf, 200);
    std::vector<Addr> out = missAt(pf, 199);
    ASSERT_EQ(out.size(), 4u);
    EXPECT_EQ(out[0], Addr(198) << kLineShift);
    EXPECT_EQ(out[3], Addr(195) << kLineShift);
}

TEST(Prefetcher, DistanceCapsRunahead)
{
    PrefetcherParams params;
    params.distance = 6;
    StreamPrefetcher pf("pf", params);
    missAt(pf, 10);
    missAt(pf, 11); // prefetches 12..15
    std::vector<Addr> out = missAt(pf, 12); // head at 16, limit 12+6=18
    // Prefetch head may not run more than `distance` lines ahead.
    for (Addr a : out)
        EXPECT_LE(a >> kLineShift, 12u + 6u);
}

TEST(Prefetcher, DisabledEmitsNothing)
{
    PrefetcherParams params;
    params.enabled = false;
    StreamPrefetcher pf("pf", params);
    missAt(pf, 100);
    EXPECT_TRUE(missAt(pf, 101).empty());
    EXPECT_EQ(pf.issued(), 0u);
}

TEST(Prefetcher, IndependentStreamsCoexist)
{
    StreamPrefetcher pf("pf", PrefetcherParams{});
    missAt(pf, 1000);
    missAt(pf, 5000);
    EXPECT_FALSE(missAt(pf, 1001).empty());
    EXPECT_FALSE(missAt(pf, 5001).empty());
}

TEST(Prefetcher, StreamTableEvictsLru)
{
    PrefetcherParams params;
    params.numStreams = 2;
    StreamPrefetcher pf("pf", params);
    missAt(pf, 1000);
    missAt(pf, 5000);
    EXPECT_FALSE(missAt(pf, 1001).empty()); // train + refresh 1000-stream
    missAt(pf, 9000); // evicts the LRU stream (5000)
    // The 1000-stream survived and keeps prefetching.
    EXPECT_FALSE(missAt(pf, 1002).empty());
    // The 5000-stream was evicted: a miss at 5001 re-allocates (no
    // prefetches on the allocation miss).
    EXPECT_TRUE(missAt(pf, 5001).empty());
}

TEST(Prefetcher, RepeatMissSameLineEmitsNothing)
{
    StreamPrefetcher pf("pf", PrefetcherParams{});
    missAt(pf, 100);
    missAt(pf, 101);
    EXPECT_TRUE(missAt(pf, 101).empty());
}

} // namespace
} // namespace ovl
