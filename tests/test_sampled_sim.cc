/**
 * @file
 * Sampled-simulation tests (DESIGN.md §10): the functional fast-forward
 * (System::accessFunctional / forkFunctional / destroyProcessFunctional)
 * must perform exactly the architectural transitions of the detailed
 * path with zero tick movement, and runForkBenchSampled's full-detail
 * twin must be byte-identical to runForkBench.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "system/system.hh"
#include "workload/forkbench.hh"

namespace ovl
{
namespace
{

constexpr Addr kBase = 0x100000;

/** Timing-side stat dump: caches and DRAM (the prefetcher trains during
 * functional warming, so its issued counter is legitimately live). */
std::string
timingStats(System &sys)
{
    std::ostringstream os;
    sys.caches().dumpStats(os);
    sys.caches().l1().dumpStats(os);
    sys.caches().l2().dumpStats(os);
    sys.caches().l3().dumpStats(os);
    sys.dramController().dumpStats(os);
    return os.str();
}

/** A forked parent with 4 touched pages, ready for post-fork writes. */
Tick
setupForkedParent(System &sys, Asid &parent, ForkMode mode)
{
    parent = sys.createProcess();
    sys.mapAnon(parent, kBase, 4 * kPageSize);
    Tick t = 0;
    for (unsigned pg = 0; pg < 4; ++pg) {
        std::uint64_t v = pg;
        t = sys.write(parent, kBase + pg * kPageSize, &v, 8, t);
    }
    sys.fork(parent, mode, t, &t);
    return t;
}

TEST(AccessFunctional, OverlayTransitionMatchesDetailed)
{
    System detailed((SystemConfig())), functional((SystemConfig()));
    Asid dp = 0, fp = 0;
    Tick t = setupForkedParent(detailed, dp, ForkMode::OverlayOnWrite);
    setupForkedParent(functional, fp, ForkMode::OverlayOnWrite);
    ASSERT_EQ(dp, fp);

    Addr va = kBase + kPageSize + 2 * kLineSize;
    detailed.access(dp, va, true, t);
    functional.accessFunctional(fp, va, true);

    Opn opn = overlay_addr::pageFromVirtual(fp, pageNumber(va));
    unsigned line = lineInPage(va);
    EXPECT_TRUE(functional.overlayManager().hasOverlay(opn));
    EXPECT_TRUE(functional.overlayManager().obitvector(opn).test(line));
    EXPECT_EQ(detailed.overlayManager().obitvector(opn),
              functional.overlayManager().obitvector(opn));
    EXPECT_EQ(detailed.overlayManager().omsBytesInUse(),
              functional.overlayManager().omsBytesInUse());
    EXPECT_EQ(detailed.overlayingWrites(), functional.overlayingWrites());

    // The logical contents agree byte for byte.
    std::uint64_t want = 0, got = 0;
    detailed.peek(dp, va, &want, 8);
    functional.peek(fp, va, &got, 8);
    EXPECT_EQ(want, got);
}

TEST(AccessFunctional, CowBreakMatchesDetailed)
{
    System detailed((SystemConfig())), functional((SystemConfig()));
    Asid dp = 0, fp = 0;
    Tick t = setupForkedParent(detailed, dp, ForkMode::CopyOnWrite);
    setupForkedParent(functional, fp, ForkMode::CopyOnWrite);

    Addr va = kBase + 2 * kPageSize + 8;
    detailed.access(dp, va, true, t);
    functional.accessFunctional(fp, va, true);

    EXPECT_EQ(detailed.cowFaults(), functional.cowFaults());
    // Same allocator, same order: the break lands on the same frame.
    Pte *dpte = detailed.vmm().resolve(dp, pageNumber(va));
    Pte *fpte = functional.vmm().resolve(fp, pageNumber(va));
    ASSERT_NE(dpte, nullptr);
    ASSERT_NE(fpte, nullptr);
    EXPECT_FALSE(fpte->cow);
    EXPECT_EQ(dpte->ppn, fpte->ppn);
    EXPECT_EQ(detailed.physMem().framesInUse(),
              functional.physMem().framesInUse());

    std::uint64_t want = 0, got = 0;
    detailed.peek(dp, va, &want, 8);
    functional.peek(fp, va, &got, 8);
    EXPECT_EQ(want, got);
}

TEST(AccessFunctional, ZeroTimingSideEffects)
{
    System sys((SystemConfig()));
    Asid parent = 0;
    setupForkedParent(sys, parent, ForkMode::OverlayOnWrite);

    std::string before = timingStats(sys);
    for (unsigned pg = 0; pg < 4; ++pg) {
        for (unsigned l = 0; l < kLinesPerPage; l += 4) {
            sys.accessFunctional(parent,
                                 kBase + pg * kPageSize + l * kLineSize,
                                 true);
        }
    }
    // Cache tags warm (that is the point), but no latency, hit/miss or
    // DRAM statistic moves: a functional burst is invisible to every
    // timing-side counter.
    EXPECT_EQ(timingStats(sys), before);
}

/** One child lifecycle: fork, one write per page, teardown. */
template <typename ForkFn, typename WriteFn, typename DestroyFn>
void
childCycle(ForkFn &&fork, WriteFn &&write, DestroyFn &&destroy)
{
    Asid child = fork();
    for (unsigned pg = 0; pg < 4; ++pg)
        write(child, kBase + pg * kPageSize + 64);
    destroy(child);
}

TEST(FunctionalForkDestroy, ResidueMatchesDetailedTeardown)
{
    // Neither teardown releases the OMT radix node pages (table nodes
    // are never freed, like a hardware-walked table), so "no leak" means
    // the functional lifecycle retains exactly what the detailed one
    // retains — frame for frame, OMS byte for OMS byte.
    System det((SystemConfig())), fun((SystemConfig()));
    Asid dp = 0, fp = 0;
    Tick t = 0;
    for (System *sys : {&det, &fun}) {
        Asid p = sys->createProcess();
        sys->mapAnon(p, kBase, 4 * kPageSize);
        Tick w = 0;
        for (unsigned pg = 0; pg < 4; ++pg) {
            std::uint64_t v = pg;
            w = sys->write(p, kBase + pg * kPageSize, &v, 8, w);
        }
        sys->caches().flushAll(w);
        (sys == &det ? dp : fp) = p;
        if (sys == &det)
            t = w;
    }

    for (unsigned iter = 0; iter < 3; ++iter) {
        childCycle(
            [&] { return det.fork(dp, ForkMode::OverlayOnWrite, t, &t); },
            [&](Asid c, Addr va) { t = det.access(c, va, true, t); },
            [&](Asid c) { det.destroyProcess(c, t); });
        childCycle(
            [&] { return fun.forkFunctional(fp, ForkMode::OverlayOnWrite); },
            [&](Asid c, Addr va) { fun.accessFunctional(c, va, true); },
            [&](Asid c) { fun.destroyProcessFunctional(c); });

        EXPECT_EQ(det.physMem().framesInUse(), fun.physMem().framesInUse())
            << "iteration " << iter;
        EXPECT_EQ(det.overlayManager().omsBytesInUse(),
                  fun.overlayManager().omsBytesInUse())
            << "iteration " << iter;
    }

    // The parent still works afterwards: data intact, detailed access
    // (the CoW/overlay machinery) still functional.
    std::uint64_t got = 0;
    fun.peek(fp, kBase + kPageSize, &got, 8);
    EXPECT_EQ(got, 1u);
    Tick after = fun.access(fp, kBase + kPageSize, true, 0);
    EXPECT_GT(after, 0u);
}

TEST(SampledForkBench, FullTwinIsByteIdenticalToDetailed)
{
    ForkBenchParams params = forkBenchByName("libq");
    params.warmupInstructions = 50'000;
    params.postForkInstructions = 400'000;

    SampledSimParams sp;
    sp.intervalInstructions = 100'000;
    sp.compareFull = true;

    ForkBenchSampledResult sampled = runForkBenchSampled(
        params, ForkMode::OverlayOnWrite, SystemConfig{}, sp);
    ForkBenchResult full =
        runForkBench(params, ForkMode::OverlayOnWrite, SystemConfig{});

    // The twin replays the identical op stream in one epoch: its CPI is
    // bit-equal to runForkBench's, not merely close.
    EXPECT_EQ(sampled.fullCpi, full.cpi);

    // Window bookkeeping covers the whole stream (a trailing op can
    // spill a handful of instructions into a fifth, partial window).
    ASSERT_GE(sampled.windows.size(), 4u);
    ASSERT_LE(sampled.windows.size(), 5u);
    std::uint64_t instr = 0;
    for (const SampledWindow &w : sampled.windows)
        instr += w.instructions;
    EXPECT_EQ(instr, sampled.totalInstructions);
    EXPECT_GE(sampled.totalInstructions, params.postForkInstructions);
    EXPECT_LT(sampled.detailedInstructions, sampled.totalInstructions);

    // The first window is the fork transient and runs fully detailed.
    EXPECT_EQ(sampled.windows[0].detailedInstructions,
              sampled.windows[0].instructions);
    EXPECT_EQ(sampled.windows[0].estimatedCycles,
              double(sampled.windows[0].detailedCycles));

    // Architectural event counts cannot differ between the modes.
    EXPECT_EQ(sampled.sampled.overlayingWrites, full.overlayingWrites);
    EXPECT_EQ(sampled.sampled.cowFaults, full.cowFaults);
    EXPECT_EQ(sampled.sampled.additionalMemoryMB, full.additionalMemoryMB);

    // Extrapolation quality: generous bound, the tight 5% gate lives in
    // CI on the full suite (fig09 --sample-check).
    EXPECT_LT(sampled.cpiErrorPct, 25.0);
    EXPECT_GT(sampled.sampled.cpi, 0.0);
}

TEST(SampledForkBench, SamplingIsDeterministic)
{
    ForkBenchParams params = forkBenchByName("mcf");
    params.warmupInstructions = 50'000;
    params.postForkInstructions = 300'000;

    SampledSimParams sp;
    sp.intervalInstructions = 100'000;

    ForkBenchSampledResult a = runForkBenchSampled(
        params, ForkMode::OverlayOnWrite, SystemConfig{}, sp);
    ForkBenchSampledResult b = runForkBenchSampled(
        params, ForkMode::OverlayOnWrite, SystemConfig{}, sp);
    EXPECT_EQ(a.sampled.cpi, b.sampled.cpi);
    ASSERT_EQ(a.windows.size(), b.windows.size());
    for (std::size_t i = 0; i < a.windows.size(); ++i) {
        EXPECT_EQ(a.windows[i].detailedCycles, b.windows[i].detailedCycles);
        EXPECT_EQ(a.windows[i].instructions, b.windows[i].instructions);
    }
}

} // namespace
} // namespace ovl
