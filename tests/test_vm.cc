/**
 * @file
 * Tests for the functional VM layer: physical memory (frames, refcounts,
 * zero frame), page tables, and the Vmm (mapping, fork, CoW breaks).
 */

#include <gtest/gtest.h>

#include <cstring>

#include "vm/vmm.hh"

namespace ovl
{
namespace
{

TEST(PhysicalMemory, FreshFramesReadAsZero)
{
    PhysicalMemory mem("mem", 64_MiB);
    Addr frame = mem.allocFrame();
    LineData line;
    mem.readLine(frame << kPageShift, line);
    for (std::uint8_t b : line)
        EXPECT_EQ(b, 0);
}

TEST(PhysicalMemory, WriteReadRoundTrip)
{
    PhysicalMemory mem("mem", 64_MiB);
    Addr frame = mem.allocFrame();
    Addr paddr = (frame << kPageShift) + 100;
    std::uint32_t value = 0xDEADBEEF;
    mem.writeBytes(paddr, &value, sizeof(value));
    std::uint32_t got = 0;
    mem.readBytes(paddr, &got, sizeof(got));
    EXPECT_EQ(got, value);
}

TEST(PhysicalMemory, RefcountLifecycle)
{
    PhysicalMemory mem("mem", 64_MiB);
    Addr frame = mem.allocFrame();
    EXPECT_EQ(mem.refCount(frame), 1u);
    mem.addRef(frame);
    EXPECT_EQ(mem.refCount(frame), 2u);
    mem.release(frame);
    EXPECT_EQ(mem.refCount(frame), 1u);
    std::uint64_t in_use = mem.framesInUse();
    mem.release(frame);
    EXPECT_EQ(mem.refCount(frame), 0u);
    EXPECT_EQ(mem.framesInUse(), in_use - 1);
}

TEST(PhysicalMemory, FreedFramesAreRecycledWithZeroContents)
{
    PhysicalMemory mem("mem", 64_MiB);
    Addr frame = mem.allocFrame();
    std::uint8_t junk = 0xAB;
    mem.writeBytes(frame << kPageShift, &junk, 1);
    mem.release(frame);
    Addr again = mem.allocFrame();
    EXPECT_EQ(again, frame); // LIFO free list
    std::uint8_t got = 0xFF;
    mem.readBytes(again << kPageShift, &got, 1);
    EXPECT_EQ(got, 0);
}

// Regression: alloc -> dirty the whole page -> release -> alloc must
// hand back a frame that reads as zero in every byte, even when the
// allocator recycles backing storage instead of freeing it.
TEST(PhysicalMemory, RecycledFramesAreFullyZeroed)
{
    PhysicalMemory mem("mem", 64_MiB);
    std::vector<Addr> frames;
    for (int i = 0; i < 4; ++i) {
        Addr f = mem.allocFrame();
        std::vector<std::uint8_t> junk(kPageSize, 0xCD);
        mem.writeBytes(f << kPageShift, junk.data(), junk.size());
        frames.push_back(f);
    }
    for (Addr f : frames)
        mem.release(f);
    for (int i = 0; i < 4; ++i) {
        Addr f = mem.allocFrame();
        std::vector<std::uint8_t> got(kPageSize, 0xFF);
        mem.readBytes(f << kPageShift, got.data(), got.size());
        for (unsigned off = 0; off < kPageSize; ++off)
            ASSERT_EQ(got[off], 0) << "frame " << f << " byte " << off;
    }
}

TEST(PhysicalMemory, ZeroFrameNeverDies)
{
    PhysicalMemory mem("mem", 64_MiB);
    mem.release(PhysicalMemory::kZeroFrame);
    EXPECT_GE(mem.refCount(PhysicalMemory::kZeroFrame), 1u);
}

TEST(PhysicalMemory, CopyFrameDuplicatesContents)
{
    PhysicalMemory mem("mem", 64_MiB);
    Addr a = mem.allocFrame();
    Addr b = mem.allocFrame();
    std::uint64_t magic = 0x123456789ABCDEF0;
    mem.writeBytes((a << kPageShift) + 8, &magic, 8);
    mem.copyFrame(b, a);
    std::uint64_t got = 0;
    mem.readBytes((b << kPageShift) + 8, &got, 8);
    EXPECT_EQ(got, magic);
}

TEST(PageTable, SetFindErase)
{
    PageTable pt;
    EXPECT_EQ(pt.find(5), nullptr);
    Pte pte;
    pte.ppn = 9;
    pte.present = true;
    pt.set(5, pte);
    ASSERT_NE(pt.find(5), nullptr);
    EXPECT_EQ(pt.find(5)->ppn, 9u);
    pt.erase(5);
    EXPECT_EQ(pt.find(5), nullptr);
}

class VmmTest : public ::testing::Test
{
  protected:
    VmmTest() : mem("mem", 256_MiB), vmm("vmm", mem) {}

    PhysicalMemory mem;
    Vmm vmm;
};

TEST_F(VmmTest, MapAnonAllocatesPrivateFrames)
{
    Asid pid = vmm.createProcess();
    vmm.mapAnon(pid, 0x10000, 4 * kPageSize);
    for (unsigned i = 0; i < 4; ++i) {
        Pte *pte = vmm.resolve(pid, pageNumber(0x10000) + i);
        ASSERT_NE(pte, nullptr);
        EXPECT_TRUE(pte->present);
        EXPECT_TRUE(pte->writable);
        EXPECT_FALSE(pte->cow);
        EXPECT_EQ(mem.refCount(pte->ppn), 1u);
    }
}

TEST_F(VmmTest, MapZeroCowMapsSharedZeroFrame)
{
    Asid pid = vmm.createProcess();
    vmm.mapZeroCow(pid, 0x10000, kPageSize, true);
    Pte *pte = vmm.resolve(pid, pageNumber(0x10000));
    ASSERT_NE(pte, nullptr);
    EXPECT_EQ(pte->ppn, PhysicalMemory::kZeroFrame);
    EXPECT_TRUE(pte->cow);
    EXPECT_TRUE(pte->overlayEnabled);
}

TEST_F(VmmTest, ForkSharesFramesCopyOnWrite)
{
    Asid parent = vmm.createProcess();
    vmm.mapAnon(parent, 0x10000, 2 * kPageSize);
    Addr ppn0 = vmm.resolve(parent, pageNumber(0x10000))->ppn;

    Asid child = vmm.fork(parent, ForkMode::CopyOnWrite);
    Pte *parent_pte = vmm.resolve(parent, pageNumber(0x10000));
    Pte *child_pte = vmm.resolve(child, pageNumber(0x10000));
    ASSERT_NE(child_pte, nullptr);
    EXPECT_EQ(parent_pte->ppn, child_pte->ppn);
    EXPECT_EQ(child_pte->ppn, ppn0);
    EXPECT_TRUE(parent_pte->cow);
    EXPECT_TRUE(child_pte->cow);
    EXPECT_FALSE(parent_pte->overlayEnabled);
    EXPECT_EQ(mem.refCount(ppn0), 2u);
}

TEST_F(VmmTest, ForkOverlayModeSetsOverlayBit)
{
    Asid parent = vmm.createProcess();
    vmm.mapAnon(parent, 0x10000, kPageSize);
    Asid child = vmm.fork(parent, ForkMode::OverlayOnWrite);
    EXPECT_TRUE(vmm.resolve(parent, pageNumber(0x10000))->overlayEnabled);
    EXPECT_TRUE(vmm.resolve(child, pageNumber(0x10000))->overlayEnabled);
}

TEST_F(VmmTest, ForkSkipsReadOnlyPagesForCow)
{
    Asid parent = vmm.createProcess();
    vmm.mapAnon(parent, 0x10000, kPageSize, /*writable=*/false);
    Asid child = vmm.fork(parent, ForkMode::CopyOnWrite);
    EXPECT_FALSE(vmm.resolve(parent, pageNumber(0x10000))->cow);
    EXPECT_FALSE(vmm.resolve(child, pageNumber(0x10000))->cow);
    // Still shared (read-only sharing needs no CoW).
    EXPECT_EQ(vmm.resolve(parent, pageNumber(0x10000))->ppn,
              vmm.resolve(child, pageNumber(0x10000))->ppn);
}

TEST_F(VmmTest, BreakCowCopiesWhenShared)
{
    Asid parent = vmm.createProcess();
    vmm.mapAnon(parent, 0x10000, kPageSize);
    std::uint64_t magic = 0xFEEDFACE;
    Pte *pte = vmm.resolve(parent, pageNumber(0x10000));
    mem.writeBytes(pte->ppn << kPageShift, &magic, 8);

    Asid child = vmm.fork(parent, ForkMode::CopyOnWrite);
    Addr shared_ppn = pte->ppn;
    bool copied = false;
    Addr new_ppn = vmm.breakCow(child, pageNumber(0x10000), &copied);
    EXPECT_TRUE(copied);
    EXPECT_NE(new_ppn, shared_ppn);
    // Contents were carried over.
    std::uint64_t got = 0;
    mem.readBytes(new_ppn << kPageShift, &got, 8);
    EXPECT_EQ(got, magic);
    // The parent still maps the original, now with refcount 1.
    EXPECT_EQ(vmm.resolve(parent, pageNumber(0x10000))->ppn, shared_ppn);
    EXPECT_EQ(mem.refCount(shared_ppn), 1u);
    EXPECT_FALSE(vmm.resolve(child, pageNumber(0x10000))->cow);
}

TEST_F(VmmTest, BreakCowLastSharerKeepsFrame)
{
    Asid parent = vmm.createProcess();
    vmm.mapAnon(parent, 0x10000, kPageSize);
    Asid child = vmm.fork(parent, ForkMode::CopyOnWrite);
    vmm.breakCow(child, pageNumber(0x10000));
    // Parent is now the last sharer: no copy needed.
    Addr parent_ppn = vmm.resolve(parent, pageNumber(0x10000))->ppn;
    bool copied = true;
    Addr got = vmm.breakCow(parent, pageNumber(0x10000), &copied);
    EXPECT_FALSE(copied);
    EXPECT_EQ(got, parent_ppn);
}

TEST_F(VmmTest, BreakCowOnZeroFrameAllocatesZeroedPage)
{
    Asid pid = vmm.createProcess();
    vmm.mapZeroCow(pid, 0x10000, kPageSize, false);
    bool copied = false;
    Addr ppn = vmm.breakCow(pid, pageNumber(0x10000), &copied);
    EXPECT_TRUE(copied);
    EXPECT_NE(ppn, PhysicalMemory::kZeroFrame);
    LineData line;
    mem.readLine(ppn << kPageShift, line);
    for (std::uint8_t b : line)
        EXPECT_EQ(b, 0);
}

TEST_F(VmmTest, UnmapReleasesFrames)
{
    Asid pid = vmm.createProcess();
    vmm.mapAnon(pid, 0x10000, 2 * kPageSize);
    std::uint64_t before = mem.framesInUse();
    vmm.unmap(pid, 0x10000, 2 * kPageSize);
    EXPECT_EQ(mem.framesInUse(), before - 2);
    EXPECT_EQ(vmm.resolve(pid, pageNumber(0x10000)), nullptr);
}

TEST_F(VmmTest, ProtectTogglesWritable)
{
    Asid pid = vmm.createProcess();
    vmm.mapAnon(pid, 0x10000, kPageSize);
    vmm.protect(pid, 0x10000, kPageSize, false);
    EXPECT_FALSE(vmm.resolve(pid, pageNumber(0x10000))->writable);
    vmm.protect(pid, 0x10000, kPageSize, true);
    EXPECT_TRUE(vmm.resolve(pid, pageNumber(0x10000))->writable);
}

} // namespace
} // namespace ovl
