/**
 * @file
 * Tests for the sparse-matrix stack (§5.2): COO, CSR (including the
 * costly dynamic insert), matrix statistics (the L metric), the overlay
 * representation, and agreement of all SpMV engines with the reference.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.hh"
#include "sparse/csr.hh"
#include "sparse/matrix.hh"
#include "sparse/overlay_matrix.hh"
#include "sparse/spmv.hh"
#include "workload/matrixgen.hh"

namespace ovl
{
namespace
{

CooMatrix
tinyMatrix()
{
    // 2x16 matrix (two lines per row with 8-wide lines).
    CooMatrix coo;
    coo.name = "tiny";
    coo.rows = 2;
    coo.cols = 16;
    coo.entries = {
        {0, 0, 1.0}, {0, 15, 2.0}, {1, 3, 3.0}, {1, 4, 4.0}, {1, 5, 5.0},
    };
    coo.canonicalize();
    return coo;
}

TEST(Coo, CanonicalizeSortsAndDedups)
{
    CooMatrix coo;
    coo.rows = 4;
    coo.cols = 8;
    coo.entries = {{2, 1, 5.0}, {0, 3, 1.0}, {2, 1, 7.0}, {1, 0, 2.0}};
    coo.canonicalize();
    ASSERT_EQ(coo.entries.size(), 3u);
    EXPECT_EQ(coo.entries[0].row, 0u);
    EXPECT_EQ(coo.entries[1].row, 1u);
    EXPECT_EQ(coo.entries[2].row, 2u);
    EXPECT_DOUBLE_EQ(coo.entries[2].value, 7.0); // last duplicate wins
}

TEST(DenseLayoutTest, PaddedStrideAlignsRowsToLines)
{
    DenseLayout layout(10, 20);
    EXPECT_EQ(layout.paddedCols, 24u);
    EXPECT_EQ(layout.offsetOf(1, 0) % kLineSize, 0u);
    EXPECT_EQ(layout.bytes(), 10u * 24 * 8);
}

TEST(MatrixStatsTest, LocalityMetric)
{
    CooMatrix coo = tinyMatrix();
    MatrixStats stats = analyzeMatrix(coo, 64);
    // Non-zero lines: (0,0), (0,15) in line 1, (1,3..5) in one line.
    EXPECT_EQ(stats.nnz, 5u);
    EXPECT_EQ(stats.nonZeroBlocks, 3u);
    EXPECT_DOUBLE_EQ(stats.locality, 5.0 / 3.0);
}

TEST(MatrixStatsTest, CoarserBlocksNeverIncreaseBlockCount)
{
    CooMatrix coo = generateMatrix(MatrixSpec{});
    std::uint64_t prev = ~std::uint64_t(0);
    for (std::uint64_t block = 16; block <= 4096; block *= 2) {
        MatrixStats s = analyzeMatrix(coo, block);
        EXPECT_LE(s.nonZeroBlocks, prev);
        prev = s.nonZeroBlocks;
    }
}

TEST(CsrTest, FromCooAndSpmv)
{
    CooMatrix coo = tinyMatrix();
    CsrMatrix csr = CsrMatrix::fromCoo(coo);
    EXPECT_EQ(csr.nnz(), 5u);
    EXPECT_EQ(csr.rowPtr().size(), 3u);
    std::vector<double> x(16, 1.0);
    std::vector<double> y = csr.spmv(x);
    std::vector<double> ref = spmvReference(coo, x);
    ASSERT_EQ(y.size(), ref.size());
    for (std::size_t i = 0; i < y.size(); ++i)
        EXPECT_DOUBLE_EQ(y[i], ref[i]);
}

TEST(CsrTest, MetadataOverheadIsOnePointFive)
{
    // §5.2: 8 B values + 12 B of index metadata per non-zero (plus row
    // pointers): overhead ~1.5x the payload.
    CooMatrix coo = generateMatrix(MatrixSpec{});
    CsrMatrix csr = CsrMatrix::fromCoo(coo);
    double payload = double(csr.nnz() * 8);
    double overhead = double(csr.bytes()) - payload;
    EXPECT_NEAR(overhead / payload, 0.5, 0.05);
}

TEST(CsrTest, InsertShiftsTail)
{
    CooMatrix coo = tinyMatrix();
    CsrMatrix csr = CsrMatrix::fromCoo(coo);
    // In-place update is free.
    EXPECT_EQ(csr.insert(0, 0, 9.0), 0u);
    // Structural insert moves every later element.
    std::uint64_t moved = csr.insert(0, 7, 1.5);
    EXPECT_GT(moved, 0u);
    EXPECT_EQ(csr.nnz(), 6u);
    std::vector<double> x(16, 1.0);
    std::vector<double> y = csr.spmv(x);
    EXPECT_DOUBLE_EQ(y[0], 9.0 + 2.0 + 1.5);
}

class OverlayMatrixTest : public ::testing::Test
{
  protected:
    OverlayMatrixTest() : sys(SystemConfig{})
    {
        asid = sys.createProcess();
    }

    System sys;
    Asid asid = 0;
};

TEST_F(OverlayMatrixTest, BuildStoresOnlyNonZeroLines)
{
    CooMatrix coo = tinyMatrix();
    OverlayMatrix m(sys, asid, 0x1000'0000);
    m.build(coo);
    EXPECT_DOUBLE_EQ(m.at(0, 0), 1.0);
    EXPECT_DOUBLE_EQ(m.at(0, 15), 2.0);
    EXPECT_DOUBLE_EQ(m.at(1, 4), 4.0);
    EXPECT_DOUBLE_EQ(m.at(0, 7), 0.0); // zero line reads as zero
    EXPECT_DOUBLE_EQ(m.at(1, 15), 0.0);
    // Three non-zero lines fit in one minimal 256 B segment (Figure 7).
    EXPECT_EQ(sys.overlayManager().omsBytesInUse(), 256u);
    EXPECT_GT(m.storedBytes(), 0u);
}

TEST_F(OverlayMatrixTest, DynamicInsertIsOneOverlayingWrite)
{
    CooMatrix coo = tinyMatrix();
    OverlayMatrix m(sys, asid, 0x1000'0000);
    m.build(coo);
    std::uint64_t before = sys.overlayingWrites();
    m.insert(1, 8, 6.5, 0); // a new line of row 1 (cols 8-15 were zero)
    EXPECT_EQ(sys.overlayingWrites(), before + 1);
    EXPECT_DOUBLE_EQ(m.at(1, 8), 6.5);
    // Inserting into an existing line is a simple write.
    m.insert(1, 5, 7.5, 1000);
    EXPECT_EQ(sys.overlayingWrites(), before + 1);
    EXPECT_DOUBLE_EQ(m.at(1, 5), 7.5);
}

TEST(SpmvEngines, AllAgreeWithReference)
{
    MatrixSpec spec;
    spec.rows = 64;
    spec.cols = 64;
    spec.nnz = 600;
    spec.targetL = 3.0;
    spec.seed = 5;
    CooMatrix coo = generateMatrix(spec);

    std::vector<double> x(coo.cols);
    Rng rng(17);
    for (double &v : x)
        v = rng.uniform();
    std::vector<double> ref = spmvReference(coo, x);

    SpmvAddrs addrs;

    // Overlay engine.
    {
        System sys(SystemConfig{});
        OooCore core("core", sys);
        Asid asid = sys.createProcess();
        installVectors(sys, asid, addrs, x, coo.rows);
        OverlayMatrix m(sys, asid, addrs.aBase);
        m.build(coo);
        SpmvResult res = spmvOverlay(sys, core, m, addrs, x, 0);
        ASSERT_EQ(res.y.size(), ref.size());
        for (std::size_t i = 0; i < ref.size(); ++i)
            EXPECT_NEAR(res.y[i], ref[i], 1e-9) << "overlay row " << i;
        EXPECT_GT(res.cycles, 0u);
    }
    // CSR engine.
    {
        System sys(SystemConfig{});
        OooCore core("core", sys);
        Asid asid = sys.createProcess();
        installVectors(sys, asid, addrs, x, coo.rows);
        CsrMatrix csr = CsrMatrix::fromCoo(coo);
        installCsr(sys, asid, addrs, csr);
        SpmvResult res = spmvCsr(sys, core, asid, addrs, csr, x, 0);
        for (std::size_t i = 0; i < ref.size(); ++i)
            EXPECT_NEAR(res.y[i], ref[i], 1e-9) << "csr row " << i;
    }
    // Dense engine.
    {
        System sys(SystemConfig{});
        OooCore core("core", sys);
        Asid asid = sys.createProcess();
        installVectors(sys, asid, addrs, x, coo.rows);
        installDense(sys, asid, addrs.aBase, coo);
        SpmvResult res = spmvDense(sys, core, asid, addrs,
                                   DenseLayout(coo.rows, coo.cols), x, 0);
        for (std::size_t i = 0; i < ref.size(); ++i)
            EXPECT_NEAR(res.y[i], ref[i], 1e-9) << "dense row " << i;
    }
}

TEST(SpmvEngines, OverlaySkipsZeroLines)
{
    // A nearly-empty matrix: the overlay engine touches far fewer
    // instructions than the dense engine.
    MatrixSpec spec;
    spec.rows = 128;
    spec.cols = 128;
    spec.nnz = 64;
    spec.targetL = 8.0;
    CooMatrix coo = generateMatrix(spec);
    std::vector<double> x(coo.cols, 1.0);
    SpmvAddrs addrs;

    System sys(SystemConfig{});
    OooCore core("core", sys);
    Asid asid = sys.createProcess();
    installVectors(sys, asid, addrs, x, coo.rows);
    OverlayMatrix m(sys, asid, addrs.aBase);
    m.build(coo);
    SpmvResult overlay = spmvOverlay(sys, core, m, addrs, x, 0);

    System sys2(SystemConfig{});
    OooCore core2("core", sys2);
    Asid asid2 = sys2.createProcess();
    installVectors(sys2, asid2, addrs, x, coo.rows);
    installDense(sys2, asid2, addrs.aBase, coo);
    SpmvResult dense = spmvDense(sys2, core2, asid2, addrs,
                                 DenseLayout(coo.rows, coo.cols), x, 0);

    EXPECT_LT(overlay.instructions, dense.instructions / 4);
    EXPECT_LT(overlay.cycles, dense.cycles);
}

} // namespace
} // namespace ovl
