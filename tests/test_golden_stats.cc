/**
 * @file
 * Golden-determinism guard: runs a small fixed-seed workload (fork +
 * overlaying writes + a sparse SpMV slice + promotion + teardown) and
 * pins the exact simulated tick totals and key counters. Host-side
 * performance refactors must keep the timing model bit-for-bit
 * identical; if this test fails after an "optimization", the change
 * altered simulated behavior and must be fixed, not re-pinned.
 *
 * The pinned constants were captured from the pre-optimization tree
 * (PR 2) after iteration orders were normalized to ascending VPN; they
 * are independent of host compiler, standard library and container
 * iteration order by construction.
 */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "system/system.hh"

using namespace ovl;

namespace
{

constexpr Addr kHeap = 0x100000;
constexpr Addr kSparse = 0x4000000;

/** Everything the guard pins, gathered in one struct for readability. */
struct Golden
{
    Tick finalTick;
    std::uint64_t accesses;
    std::uint64_t cowFaults;
    std::uint64_t overlayingWrites;
    std::uint64_t l1Hits;
    std::uint64_t l2Hits;
    std::uint64_t l3Hits;
    std::uint64_t dramRowHits;
    std::uint64_t framesInUse;
    std::uint64_t omsBytes;
};

Golden
runOverlayWorkload()
{
    System sys;
    Asid parent = sys.createProcess();
    constexpr unsigned kPages = 32;
    sys.mapAnon(parent, kHeap, kPages * kPageSize);

    // Warm the heap: write every line with a recognizable pattern.
    Tick t = 0;
    for (unsigned pg = 0; pg < kPages; ++pg) {
        for (unsigned l = 0; l < kLinesPerPage; l += 2) {
            std::uint64_t v = pg * 100 + l;
            t = sys.write(parent, kHeap + pg * kPageSize + l * kLineSize,
                          &v, sizeof(v), t);
        }
    }

    // Fork overlay-on-write; the child diverges a deterministic sparse
    // subset of lines (every 5th line of every 3rd page).
    Asid child = sys.fork(parent, ForkMode::OverlayOnWrite, t, &t);
    for (unsigned pg = 0; pg < kPages; pg += 3) {
        for (unsigned l = 0; l < kLinesPerPage; l += 5) {
            std::uint64_t v = ~std::uint64_t(pg * 100 + l);
            t = sys.write(child, kHeap + pg * kPageSize + l * kLineSize,
                          &v, sizeof(v), t);
        }
    }

    // Parent reads its view back (must still see the original pattern).
    for (unsigned pg = 0; pg < kPages; pg += 4) {
        std::uint64_t v = 0;
        t = sys.read(parent, kHeap + pg * kPageSize, &v, sizeof(v), t);
        EXPECT_EQ(v, std::uint64_t(pg * 100));
    }

    // Sparse SpMV slice: zero-backed overlay region, scattered writes,
    // then a row sweep with a deterministic RNG-driven access mix.
    constexpr unsigned kSparsePages = 16;
    sys.mapZeroOverlay(parent, kSparse, kSparsePages * kPageSize);
    Rng rng(2024);
    for (unsigned pg = 0; pg < kSparsePages; ++pg) {
        for (unsigned l = pg % 7; l < kLinesPerPage; l += 7) {
            double val = pg * 1000.0 + l;
            t = sys.write(parent, kSparse + pg * kPageSize + l * kLineSize,
                          &val, sizeof(val), t);
        }
    }
    for (unsigned i = 0; i < 2000; ++i) {
        Addr va = kSparse +
                  lineBase(rng.below(kSparsePages * kPageSize));
        double out = 0;
        t = sys.read(parent, va, &out, sizeof(out), t);
    }

    // Promote one densely-overlaid page back to a regular page.
    t = sys.promoteOverlay(child, kHeap, PromoteAction::CopyAndCommit, t);

    // Tear the child down: unmap, frame recycling, cache invalidations.
    sys.destroyProcess(child, t);

    // Flush dirty lines to the controller so the sparse region's dirty
    // overlay lines hit the lazy OMS slot-allocation path (§4.3.3) and
    // omsBytes pins a non-trivial allocator state.
    sys.caches().flushAll(t);

    Golden g{};
    g.finalTick = t;
    g.accesses = sys.caches().l1().hits() + sys.caches().l1().misses();
    g.cowFaults = sys.cowFaults();
    g.overlayingWrites = sys.overlayingWrites();
    g.l1Hits = sys.caches().l1().hits();
    g.l2Hits = sys.caches().l2().hits();
    g.l3Hits = sys.caches().l3().hits();
    g.dramRowHits = sys.dramController().dram().rowHits();
    g.framesInUse = sys.physMem().framesInUse();
    g.omsBytes = sys.overlayManager().omsBytesInUse();
    return g;
}

Golden
runCowWorkload()
{
    SystemConfig cfg;
    cfg.overlaysEnabled = false;
    System sys(cfg);
    Asid parent = sys.createProcess();
    constexpr unsigned kPages = 16;
    sys.mapAnon(parent, kHeap, kPages * kPageSize);

    Tick t = 0;
    for (unsigned pg = 0; pg < kPages; ++pg) {
        std::uint64_t v = pg;
        t = sys.write(parent, kHeap + pg * kPageSize, &v, sizeof(v), t);
    }
    Asid child = sys.fork(parent, ForkMode::CopyOnWrite, t, &t);
    for (unsigned pg = 0; pg < kPages; pg += 2) {
        std::uint64_t v = ~std::uint64_t(pg);
        t = sys.write(child, kHeap + pg * kPageSize, &v, sizeof(v), t);
    }
    sys.destroyProcess(child, t);

    Golden g{};
    g.finalTick = t;
    g.accesses = sys.caches().l1().hits() + sys.caches().l1().misses();
    g.cowFaults = sys.cowFaults();
    g.overlayingWrites = sys.overlayingWrites();
    g.l1Hits = sys.caches().l1().hits();
    g.l2Hits = sys.caches().l2().hits();
    g.l3Hits = sys.caches().l3().hits();
    g.dramRowHits = sys.dramController().dram().rowHits();
    g.framesInUse = sys.physMem().framesInUse();
    g.omsBytes = sys.overlayManager().omsBytesInUse();
    return g;
}

} // namespace

TEST(GoldenStats, OverlayWorkloadIsBitForBitStable)
{
    Golden g = runOverlayWorkload();
    EXPECT_EQ(g.finalTick, 185699u);
    EXPECT_EQ(g.accesses, 3509u);
    EXPECT_EQ(g.cowFaults, 0u);
    EXPECT_EQ(g.overlayingWrites, 290u);
    EXPECT_EQ(g.l1Hits, 2014u);
    EXPECT_EQ(g.l2Hits, 101u);
    EXPECT_EQ(g.l3Hits, 1313u);
    EXPECT_EQ(g.dramRowHits, 902u);
    EXPECT_EQ(g.framesInUse, 104u);
    EXPECT_EQ(g.omsBytes, 16384u);
}

TEST(GoldenStats, CowWorkloadIsBitForBitStable)
{
    Golden g = runCowWorkload();
    EXPECT_EQ(g.finalTick, 90450u);
    EXPECT_EQ(g.accesses, 1048u);
    EXPECT_EQ(g.cowFaults, 8u);
    EXPECT_EQ(g.overlayingWrites, 0u);
    EXPECT_EQ(g.l1Hits, 10u);
    EXPECT_EQ(g.l2Hits, 6u);
    EXPECT_EQ(g.l3Hits, 818u);
    EXPECT_EQ(g.dramRowHits, 671u);
    EXPECT_EQ(g.framesInUse, 80u);
    EXPECT_EQ(g.omsBytes, 0u);
}

/** Two independent runs in one process must agree exactly. */
TEST(GoldenStats, RepeatRunsAreIdentical)
{
    Golden a = runOverlayWorkload();
    Golden b = runOverlayWorkload();
    EXPECT_EQ(a.finalTick, b.finalTick);
    EXPECT_EQ(a.accesses, b.accesses);
    EXPECT_EQ(a.dramRowHits, b.dramRowHits);
    EXPECT_EQ(a.framesInUse, b.framesInUse);
    EXPECT_EQ(a.omsBytes, b.omsBytes);
}
