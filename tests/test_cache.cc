/**
 * @file
 * Tests for the set-associative cache: hit/miss behaviour, dirty
 * evictions, retagging (the overlaying-write tag update, §4.3.3), and a
 * parameterized sweep over sizes/associativities/policies.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "cache/cache.hh"

namespace ovl
{
namespace
{

CacheParams
smallCache()
{
    CacheParams p;
    p.sizeBytes = 4 * 1024; // 64 lines
    p.associativity = 4;    // 16 sets
    return p;
}

TEST(Cache, MissThenHit)
{
    SetAssocCache cache("c", smallCache());
    EXPECT_FALSE(cache.access(0x1000, false).hit);
    EXPECT_TRUE(cache.access(0x1000, false).hit);
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.misses(), 1u);
}

TEST(Cache, HitLatencyParallelVsSerial)
{
    CacheParams par = smallCache();
    par.tagLatency = 2;
    par.dataLatency = 8;
    par.parallelTagData = true;
    EXPECT_EQ(par.hitLatency(), 8u);
    par.parallelTagData = false;
    EXPECT_EQ(par.hitLatency(), 10u);
    EXPECT_EQ(par.missDetectLatency(), 2u);
}

TEST(Cache, WriteMarksDirtyAndEvictionReportsIt)
{
    SetAssocCache cache("c", smallCache());
    cache.access(0x0, true); // dirty
    // Fill the rest of set 0: same set = stride of numSets lines.
    Addr stride = Addr(cache.numSets()) * kLineSize;
    for (unsigned i = 1; i < 4; ++i)
        cache.access(Addr(i) * stride, false);
    // Next conflicting access evicts the LRU line (the dirty one).
    auto res = cache.access(4 * stride, false);
    ASSERT_TRUE(res.eviction.has_value());
    EXPECT_EQ(res.eviction->lineAddr, 0u);
    EXPECT_TRUE(res.eviction->dirty);
}

TEST(Cache, CleanEvictionIsNotDirty)
{
    SetAssocCache cache("c", smallCache());
    Addr stride = Addr(cache.numSets()) * kLineSize;
    for (unsigned i = 0; i < 5; ++i)
        cache.access(Addr(i) * stride, false);
    // The first line was clean; it must have been evicted clean.
    EXPECT_FALSE(cache.isPresent(0));
}

TEST(Cache, FillDoesNotCountAsDemand)
{
    SetAssocCache cache("c", smallCache());
    cache.fill(0x2000, false);
    EXPECT_EQ(cache.hits() + cache.misses(), 0u);
    EXPECT_TRUE(cache.isPresent(0x2000));
}

TEST(Cache, FillMergesDirtyBit)
{
    SetAssocCache cache("c", smallCache());
    cache.fill(0x2000, false);
    cache.fill(0x2000, true); // upgrade to dirty
    auto ev = cache.invalidate(0x2000);
    ASSERT_TRUE(ev.has_value());
    EXPECT_TRUE(ev->dirty);
}

TEST(Cache, PrefetchTracking)
{
    SetAssocCache cache("c", smallCache());
    cache.fill(0x3000, false, true);
    EXPECT_TRUE(cache.isPrefetched(0x3000));
    cache.access(0x3000, false); // demand hit clears the prefetch mark
    EXPECT_FALSE(cache.isPrefetched(0x3000));
}

TEST(Cache, InvalidateRemovesLine)
{
    SetAssocCache cache("c", smallCache());
    cache.access(0x1000, true);
    auto ev = cache.invalidate(0x1000);
    ASSERT_TRUE(ev.has_value());
    EXPECT_TRUE(ev->dirty);
    EXPECT_FALSE(cache.isPresent(0x1000));
    EXPECT_FALSE(cache.invalidate(0x1000).has_value());
}

TEST(Cache, RetagSameSetPreservesDirtiness)
{
    SetAssocCache cache("c", smallCache());
    cache.access(0x0, true);
    // Same set index: add a multiple of numSets lines.
    Addr same_set = Addr(cache.numSets()) * kLineSize * 8;
    EXPECT_TRUE(cache.retag(0x0, same_set));
    EXPECT_FALSE(cache.isPresent(0x0));
    ASSERT_TRUE(cache.isPresent(same_set));
    auto ev = cache.invalidate(same_set);
    ASSERT_TRUE(ev.has_value());
    EXPECT_TRUE(ev->dirty);
}

TEST(Cache, RetagDifferentSetFails)
{
    SetAssocCache cache("c", smallCache());
    cache.access(0x0, true);
    EXPECT_FALSE(cache.retag(0x0, 0x40)); // next line = different set
    EXPECT_TRUE(cache.isPresent(0x0));    // unchanged
}

TEST(Cache, RetagMissingLineFails)
{
    SetAssocCache cache("c", smallCache());
    EXPECT_FALSE(cache.retag(0x0, 0x1000));
}

TEST(Cache, WritebackAllVisitsEveryDirtyLine)
{
    SetAssocCache cache("c", smallCache());
    cache.access(0x0, true);
    cache.access(0x40, false);
    cache.access(0x80, true);
    std::vector<Addr> written;
    cache.writebackAll([&](Addr a) { written.push_back(a); });
    EXPECT_EQ(written.size(), 2u);
    EXPECT_FALSE(cache.isPresent(0x0));
    EXPECT_FALSE(cache.isPresent(0x40));
}

TEST(Cache, OverlayAddressesCoexistWithPhysical)
{
    // Overlay-space tags (bit 63 set) are just wider tags (§4.5): both
    // versions of "the same" line index live side by side.
    SetAssocCache cache("c", smallCache());
    Addr phys = 0x5000;
    Addr overlay = phys | (Addr(1) << 63);
    cache.access(phys, false);
    cache.access(overlay, false);
    EXPECT_TRUE(cache.isPresent(phys));
    EXPECT_TRUE(cache.isPresent(overlay));
}

// ---------------- parameterized sweep: size x assoc x policy ------------

using SweepParam = std::tuple<std::uint64_t, unsigned, ReplPolicy>;

class CacheSweep : public ::testing::TestWithParam<SweepParam>
{
};

TEST_P(CacheSweep, SequentialFootprintSmallerThanCacheAlwaysRehits)
{
    auto [size, assoc, policy] = GetParam();
    CacheParams p;
    p.sizeBytes = size;
    p.associativity = assoc;
    p.replPolicy = policy;
    SetAssocCache cache("c", p);

    std::uint64_t lines = size / kLineSize;
    for (std::uint64_t i = 0; i < lines; ++i)
        cache.access(i * kLineSize, false);
    // Second pass: everything must still be resident (no conflict
    // possible when the footprint exactly matches the capacity and the
    // fill order is sequential).
    std::uint64_t hits_before = cache.hits();
    for (std::uint64_t i = 0; i < lines; ++i)
        cache.access(i * kLineSize, false);
    EXPECT_EQ(cache.hits() - hits_before, lines);
}

TEST_P(CacheSweep, OverCapacityFootprintEvicts)
{
    auto [size, assoc, policy] = GetParam();
    CacheParams p;
    p.sizeBytes = size;
    p.associativity = assoc;
    p.replPolicy = policy;
    SetAssocCache cache("c", p);

    std::uint64_t lines = 2 * size / kLineSize;
    for (std::uint64_t i = 0; i < lines; ++i)
        cache.access(i * kLineSize, false);
    // At most capacity lines can be resident.
    std::uint64_t resident = 0;
    for (std::uint64_t i = 0; i < lines; ++i)
        resident += cache.isPresent(i * kLineSize);
    EXPECT_LE(resident, size / kLineSize);
    EXPECT_GE(cache.misses(), lines / 2);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheSweep,
    ::testing::Combine(
        ::testing::Values(std::uint64_t(4096), std::uint64_t(16384),
                          std::uint64_t(65536)),
        ::testing::Values(1u, 4u, 8u),
        ::testing::Values(ReplPolicy::LRU, ReplPolicy::SRRIP,
                          ReplPolicy::DRRIP, ReplPolicy::Random)));

} // namespace
} // namespace ovl
