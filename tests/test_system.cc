/**
 * @file
 * Tests for the full System: the access semantics of Figure 2, the three
 * memory operations of §4.3 (read / simple write / overlaying write),
 * the CoW baseline fault path, fork (including overlay copying, §4.1),
 * overlay promotion (§4.3.4), and the metadata instructions (§5.3.4).
 */

#include <gtest/gtest.h>

#include <cstring>

#include "overlay/hw_cost.hh"
#include "system/system.hh"

namespace ovl
{
namespace
{

constexpr Addr kBase = 0x100000;

class SystemTest : public ::testing::Test
{
  protected:
    SystemTest() : sys(SystemConfig{})
    {
        asid = sys.createProcess();
    }

    System sys;
    Asid asid = 0;
};

TEST_F(SystemTest, PokePeekRoundTrip)
{
    sys.mapAnon(asid, kBase, kPageSize);
    std::uint64_t magic = 0xA5A5'5A5A'DEAD'BEEF;
    sys.poke(asid, kBase + 1000, &magic, 8);
    std::uint64_t got = 0;
    sys.peek(asid, kBase + 1000, &got, 8);
    EXPECT_EQ(got, magic);
}

TEST_F(SystemTest, TimedWriteReadRoundTrip)
{
    sys.mapAnon(asid, kBase, kPageSize);
    std::uint32_t value = 0xCAFE;
    Tick t = sys.write(asid, kBase, &value, 4, 0);
    std::uint32_t got = 0;
    Tick t2 = sys.read(asid, kBase, &got, 4, t);
    EXPECT_EQ(got, value);
    EXPECT_GT(t2, t);
}

TEST_F(SystemTest, FirstAccessWalksThenTlbHits)
{
    sys.mapAnon(asid, kBase, kPageSize);
    AccessOutcome out;
    sys.access(asid, kBase, false, 0, &out);
    EXPECT_TRUE(out.tlbWalk);
    sys.access(asid, kBase + 64, false, 10'000, &out);
    EXPECT_FALSE(out.tlbWalk);
}

TEST_F(SystemTest, Figure2Semantics)
{
    // A page with both a physical page and an overlay: lines in the
    // overlay come from the overlay, the rest from the physical page.
    sys.mapZeroOverlay(asid, kBase, kPageSize);
    double v1 = 1.5, v3 = 3.5;
    sys.poke(asid, kBase + 1 * kLineSize, &v1, 8); // line 1 -> overlay
    sys.poke(asid, kBase + 3 * kLineSize, &v3, 8); // line 3 -> overlay

    BitVector64 obv = sys.pageObv(asid, kBase);
    EXPECT_TRUE(obv.test(1));
    EXPECT_TRUE(obv.test(3));
    EXPECT_EQ(obv.count(), 2u);

    double got = -1;
    sys.peek(asid, kBase + 1 * kLineSize, &got, 8);
    EXPECT_EQ(got, 1.5);
    sys.peek(asid, kBase + 2 * kLineSize, &got, 8);
    EXPECT_EQ(got, 0.0); // zero physical page
    sys.peek(asid, kBase + 3 * kLineSize, &got, 8);
    EXPECT_EQ(got, 3.5);
}

TEST_F(SystemTest, OverlayingWriteMovesLineNotPage)
{
    sys.mapZeroOverlay(asid, kBase, kPageSize);
    AccessOutcome out;
    sys.access(asid, kBase + 5 * kLineSize, true, 0, &out);
    EXPECT_TRUE(out.overlayingWrite);
    EXPECT_FALSE(out.cowFault);
    EXPECT_TRUE(sys.lineInOverlay(asid, kBase + 5 * kLineSize));
    EXPECT_FALSE(sys.lineInOverlay(asid, kBase + 6 * kLineSize));
    EXPECT_EQ(sys.overlayingWrites(), 1u);
    // No frame was allocated: the paper's capacity saving.
    EXPECT_EQ(sys.vmm().cowBreaks(), 0u);
}

TEST_F(SystemTest, SecondWriteToSameLineIsSimpleWrite)
{
    sys.mapZeroOverlay(asid, kBase, kPageSize);
    sys.access(asid, kBase, true, 0);
    AccessOutcome out;
    sys.access(asid, kBase + 8, true, 10'000, &out);
    EXPECT_FALSE(out.overlayingWrite);
    EXPECT_TRUE(out.overlayLine);
    EXPECT_EQ(sys.overlayingWrites(), 1u);
}

TEST_F(SystemTest, OverlayingWriteIsCheaperThanCowFault)
{
    // Two processes sharing a page, one in each mode.
    SystemConfig cfg;
    System cow_sys(cfg), ovl_sys(cfg);
    Asid a = cow_sys.createProcess();
    cow_sys.mapAnon(a, kBase, kPageSize);
    Tick warm = cow_sys.access(a, kBase, false, 0);
    cow_sys.fork(a, ForkMode::CopyOnWrite, warm, &warm);

    Asid b = ovl_sys.createProcess();
    ovl_sys.mapAnon(b, kBase, kPageSize);
    Tick warm2 = ovl_sys.access(b, kBase, false, 0);
    ovl_sys.fork(b, ForkMode::OverlayOnWrite, warm2, &warm2);

    AccessOutcome cow_out, ovl_out;
    Tick cow_lat = cow_sys.access(a, kBase, true, warm, &cow_out) - warm;
    Tick ovl_lat = ovl_sys.access(b, kBase, true, warm2, &ovl_out) - warm2;
    EXPECT_TRUE(cow_out.cowFault);
    EXPECT_TRUE(ovl_out.overlayingWrite);
    // Figure 3: no copy, no shootdown on the overlay path.
    EXPECT_LT(ovl_lat, cow_lat / 4);
}

TEST_F(SystemTest, CowFaultCopiesPageAndUnshares)
{
    sys.mapAnon(asid, kBase, kPageSize);
    std::uint64_t magic = 0x1122334455667788;
    sys.poke(asid, kBase + 8, &magic, 8);

    Tick t = 0;
    Asid child = sys.fork(asid, ForkMode::CopyOnWrite, 0, &t);

    AccessOutcome out;
    sys.access(asid, kBase, true, t, &out);
    EXPECT_TRUE(out.cowFault);
    EXPECT_EQ(sys.cowFaults(), 1u);

    // Parent and child now have distinct frames with equal contents.
    Pte *ppte = sys.vmm().resolve(asid, pageNumber(kBase));
    Pte *cpte = sys.vmm().resolve(child, pageNumber(kBase));
    EXPECT_NE(ppte->ppn, cpte->ppn);
    std::uint64_t got = 0;
    sys.peek(child, kBase + 8, &got, 8);
    EXPECT_EQ(got, magic);
    sys.peek(asid, kBase + 8, &got, 8);
    EXPECT_EQ(got, magic);
}

TEST_F(SystemTest, ForkChildSeesParentDataThroughOverlayMode)
{
    sys.mapAnon(asid, kBase, kPageSize);
    std::uint32_t before = 111;
    sys.poke(asid, kBase, &before, 4);
    Tick t = 0;
    Asid child = sys.fork(asid, ForkMode::OverlayOnWrite, 0, &t);

    // Parent diverges one line.
    std::uint32_t after = 222;
    sys.write(asid, kBase, &after, 4, t);

    std::uint32_t got = 0;
    sys.peek(child, kBase, &got, 4);
    EXPECT_EQ(got, 111u); // child unaffected
    sys.peek(asid, kBase, &got, 4);
    EXPECT_EQ(got, 222u);
    // Both processes still share the single physical frame.
    EXPECT_EQ(sys.vmm().resolve(asid, pageNumber(kBase))->ppn,
              sys.vmm().resolve(child, pageNumber(kBase))->ppn);
}

TEST_F(SystemTest, ForkCopiesParentOverlays)
{
    // §4.1: overlays are never shared, so fork must duplicate them.
    sys.mapZeroOverlay(asid, kBase, kPageSize);
    double v = 42.0;
    sys.poke(asid, kBase, &v, 8);
    Tick t = 0;
    Asid child = sys.fork(asid, ForkMode::OverlayOnWrite, 0, &t);
    EXPECT_TRUE(sys.lineInOverlay(child, kBase));
    double got = 0;
    sys.peek(child, kBase, &got, 8);
    EXPECT_EQ(got, 42.0);
    // And they are independent afterwards.
    double v2 = 43.0;
    sys.poke(asid, kBase, &v2, 8);
    sys.peek(child, kBase, &got, 8);
    EXPECT_EQ(got, 42.0);
}

TEST_F(SystemTest, PromoteCopyAndCommitMergesAndFrees)
{
    sys.mapZeroOverlay(asid, kBase, kPageSize);
    double v = 7.25;
    sys.poke(asid, kBase + 2 * kLineSize, &v, 8);
    Tick t = sys.promoteOverlay(asid, kBase, PromoteAction::CopyAndCommit,
                                100);
    EXPECT_GT(t, 100u);
    // Overlay is gone; data persists in the new private frame.
    EXPECT_TRUE(sys.pageObv(asid, kBase).none());
    Pte *pte = sys.vmm().resolve(asid, pageNumber(kBase));
    EXPECT_NE(pte->ppn, PhysicalMemory::kZeroFrame);
    EXPECT_FALSE(pte->cow);
    double got = 0;
    sys.peek(asid, kBase + 2 * kLineSize, &got, 8);
    EXPECT_EQ(got, 7.25);
}

TEST_F(SystemTest, PromoteCommitWritesIntoExistingFrame)
{
    sys.mapAnon(asid, kBase, kPageSize);
    Pte *pte = sys.vmm().resolve(asid, pageNumber(kBase));
    Addr frame = pte->ppn;
    // Arm overlay capture on the private page (checkpoint-style).
    pte->cow = true;
    pte->overlayEnabled = true;
    double v = 9.5;
    sys.poke(asid, kBase + kLineSize, &v, 8);
    EXPECT_TRUE(sys.lineInOverlay(asid, kBase + kLineSize));

    sys.promoteOverlay(asid, kBase, PromoteAction::Commit, 0);
    EXPECT_TRUE(sys.pageObv(asid, kBase).none());
    EXPECT_EQ(sys.vmm().resolve(asid, pageNumber(kBase))->ppn, frame);
    double got = 0;
    sys.peek(asid, kBase + kLineSize, &got, 8);
    EXPECT_EQ(got, 9.5);
}

TEST_F(SystemTest, PromoteDiscardRevertsToPhysicalPage)
{
    sys.mapAnon(asid, kBase, kPageSize);
    std::uint64_t original = 1234;
    sys.poke(asid, kBase, &original, 8);
    Pte *pte = sys.vmm().resolve(asid, pageNumber(kBase));
    pte->cow = true;
    pte->overlayEnabled = true;

    std::uint64_t speculative = 5678;
    sys.poke(asid, kBase, &speculative, 8);
    std::uint64_t got = 0;
    sys.peek(asid, kBase, &got, 8);
    EXPECT_EQ(got, 5678u);

    sys.promoteOverlay(asid, kBase, PromoteAction::Discard, 0);
    sys.peek(asid, kBase, &got, 8);
    EXPECT_EQ(got, 1234u); // the physical page was never touched
}

TEST_F(SystemTest, PromotionPolicyConvertsDensePages)
{
    SystemConfig cfg;
    cfg.promoteThresholdLines = 8;
    System s(cfg);
    Asid a = s.createProcess();
    s.mapZeroOverlay(a, kBase, kPageSize);
    Tick t = 0;
    for (unsigned l = 0; l < 10; ++l)
        t = s.access(a, kBase + Addr(l) * kLineSize, true, t);
    // The 8th overlaying write crossed the threshold: page promoted.
    Pte *pte = s.vmm().resolve(a, pageNumber(kBase));
    EXPECT_NE(pte->ppn, PhysicalMemory::kZeroFrame);
    EXPECT_TRUE(s.pageObv(a, kBase).none());
}

TEST_F(SystemTest, OverlaysDisabledFallsBackToCow)
{
    SystemConfig cfg;
    cfg.overlaysEnabled = false; // the §3.3 off switch
    System s(cfg);
    Asid a = s.createProcess();
    s.mapAnon(a, kBase, kPageSize);
    Tick t = 0;
    s.fork(a, ForkMode::OverlayOnWrite, 0, &t);
    AccessOutcome out;
    s.access(a, kBase, true, t, &out);
    EXPECT_TRUE(out.cowFault);
    EXPECT_FALSE(out.overlayingWrite);
    EXPECT_EQ(s.overlayingWrites(), 0u);
}

TEST_F(SystemTest, AdditionalMemoryTracksCowCopies)
{
    sys.mapAnon(asid, kBase, 4 * kPageSize);
    Tick t = 0;
    sys.fork(asid, ForkMode::CopyOnWrite, 0, &t);
    sys.markMemoryBaseline();
    for (unsigned p = 0; p < 4; ++p)
        t = sys.access(asid, kBase + p * kPageSize, true, t);
    EXPECT_EQ(sys.additionalMemoryBytes(), 4 * kPageSize);
}

TEST_F(SystemTest, AdditionalMemoryTracksOverlays)
{
    sys.mapAnon(asid, kBase, 4 * kPageSize);
    Tick t = 0;
    sys.fork(asid, ForkMode::OverlayOnWrite, 0, &t);
    sys.markMemoryBaseline();
    for (unsigned p = 0; p < 4; ++p)
        t = sys.access(asid, kBase + p * kPageSize, true, t);
    // Materialize OMS segments (as dirty evictions would).
    sys.caches().flushAll(t);
    // Four one-line overlays occupy four minimal 256 B segments; no
    // frames were copied.
    EXPECT_EQ(sys.overlayManager().omsBytesInUse(), 4 * 256u);
    EXPECT_EQ(sys.vmm().cowBreaks(), 0u);
    // The accounted additional memory includes the (page-granular) OMT
    // radix nodes, which dominate at this tiny scale but amortize over
    // real footprints (Figure 8).
    EXPECT_GE(sys.additionalMemoryBytes(), 4 * 256u);
}

TEST_F(SystemTest, MetadataInstructionsUseShadowSpace)
{
    sys.mapAnon(asid, kBase, kPageSize);
    std::uint64_t data = 77;
    sys.poke(asid, kBase, &data, 8);

    Pte *pte = sys.vmm().resolve(asid, pageNumber(kBase));
    pte->overlayEnabled = true;
    pte->metadataMode = true;

    std::uint8_t taint = 1;
    sys.metadataPoke(asid, kBase, &taint, 1);
    // Regular loads still see the data, not the metadata (§5.3.4).
    std::uint64_t got = 0;
    sys.peek(asid, kBase, &got, 8);
    EXPECT_EQ(got, 77u);
    // Metadata loads see the shadow byte.
    std::uint8_t shadow = 0;
    sys.metadataPeek(asid, kBase, &shadow, 1);
    EXPECT_EQ(shadow, 1);
    // Unwritten shadow reads as zero.
    sys.metadataPeek(asid, kBase + 8, &shadow, 1);
    EXPECT_EQ(shadow, 0);
}

TEST_F(SystemTest, MetadataTimedAccess)
{
    sys.mapAnon(asid, kBase, kPageSize);
    Pte *pte = sys.vmm().resolve(asid, pageNumber(kBase));
    pte->overlayEnabled = true;
    pte->metadataMode = true;
    Tick t = sys.metadataAccess(asid, kBase, true, 0);
    EXPECT_GT(t, 0u);
    Tick t2 = sys.metadataAccess(asid, kBase, false, t);
    EXPECT_GT(t2, t);
}

TEST_F(SystemTest, TlbCoherenceKeepsCachedObvFresh)
{
    sys.mapZeroOverlay(asid, kBase, kPageSize);
    // Load the translation into the TLB (empty OBitVector).
    sys.access(asid, kBase, false, 0);
    EXPECT_FALSE(sys.tlb().l1().probe(asid, pageNumber(kBase))
                     ->obv.test(0));
    // The overlaying write updates the cached entry via the ORE message,
    // not a shootdown.
    sys.access(asid, kBase, true, 1000);
    EXPECT_TRUE(sys.tlb().l1().probe(asid, pageNumber(kBase))
                    ->obv.test(0));
}

TEST_F(SystemTest, HardwareCostMatchesPaper)
{
    // §4.5: 4 KB (OMT cache) + 8.5 KB (TLBs) + 82 KB (tags) = 94.5 KB.
    HwCost cost = computeHwCost(HwCostParams{});
    EXPECT_EQ(cost.omtCacheBytes, 4096u);
    EXPECT_EQ(cost.tlbExtensionBytes, 8704u);
    EXPECT_EQ(cost.cacheTagExtensionBytes, 83968u);
    EXPECT_EQ(cost.totalBytes(), 96768u); // 94.5 KiB
    EXPECT_DOUBLE_EQ(double(cost.totalBytes()) / 1024.0, 94.5);
}

} // namespace
} // namespace ovl
