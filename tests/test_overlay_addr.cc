/**
 * @file
 * Tests for the direct virtual-to-overlay mapping (§4.1, Figure 5):
 * {1, PID, vaddr} concatenation, round-tripping, and the no-synonym
 * property (distinct (PID, page) pairs get distinct overlay pages).
 */

#include <gtest/gtest.h>

#include <set>

#include "common/random.hh"
#include "overlay/overlay_addr.hh"

namespace ovl
{
namespace
{

namespace oa = overlay_addr;

TEST(OverlayAddr, MsbMarksOverlaySpace)
{
    Addr addr = oa::fromVirtual(3, 0x12345678);
    EXPECT_TRUE(oa::isOverlay(addr));
    EXPECT_FALSE(oa::isOverlay(0x12345678));
}

TEST(OverlayAddr, RoundTripsAsidAndVaddr)
{
    Asid asid = 12345;
    Addr vaddr = 0x7FFF'ABCD'E000;
    Addr addr = oa::fromVirtual(asid, vaddr);
    EXPECT_EQ(oa::asidOf(addr), asid);
    EXPECT_EQ(oa::vaddrOf(addr), vaddr);
}

TEST(OverlayAddr, SupportsThirtyTwoThousandProcesses)
{
    // §4.1: 64-bit PA, 48-bit VA -> 2^15 processes.
    EXPECT_EQ(oa::kMaxProcesses, 1u << 15);
    Addr addr = oa::fromVirtual(oa::kMaxProcesses - 1, 0);
    EXPECT_EQ(oa::asidOf(addr), oa::kMaxProcesses - 1);
}

TEST(OverlayAddr, PageFromVirtualMatchesFullAddress)
{
    Asid asid = 42;
    Addr vaddr = 0x1234'5678;
    EXPECT_EQ(oa::pageFromVirtual(asid, pageNumber(vaddr)),
              oa::fromVirtual(asid, vaddr) >> kPageShift);
}

TEST(OverlayAddr, NoSynonyms)
{
    // Property: the mapping is injective over (asid, vpn) — the paper's
    // constraint that no two virtual pages share an overlay (§4.1).
    Rng rng(7);
    std::set<Opn> seen;
    std::set<std::pair<Asid, Addr>> keys;
    for (int i = 0; i < 5000; ++i) {
        Asid asid = Asid(rng.below(oa::kMaxProcesses));
        Addr vpn = rng.below(Addr(1) << (oa::kVaddrBits - kPageShift));
        if (!keys.insert({asid, vpn}).second)
            continue;
        EXPECT_TRUE(seen.insert(oa::pageFromVirtual(asid, vpn)).second)
            << "synonym for asid=" << asid << " vpn=" << vpn;
    }
}

TEST(OverlayAddr, LineOffsetsPreserved)
{
    // The overlay page is full-sized: in-page offsets carry over, which
    // is what keeps virtually-indexed caches working (§3.2).
    Asid asid = 9;
    Addr vaddr = 0xABC'DEF0;
    Addr addr = oa::fromVirtual(asid, vaddr);
    EXPECT_EQ(pageOffset(addr), pageOffset(vaddr));
    EXPECT_EQ(lineInPage(addr), lineInPage(vaddr));
}

} // namespace
} // namespace ovl
