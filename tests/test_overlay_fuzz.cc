/**
 * @file
 * Randomized invariants of the overlay engine: under arbitrary
 * interleavings of line writes, writebacks, clears, reads and discards,
 * the functional contents always match a host-side model, the OMS
 * accounting is exact, and segment slot state stays self-consistent.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/random.hh"
#include "dram/dram.hh"
#include "overlay/overlay_manager.hh"

namespace ovl
{
namespace
{

/** Page-bump allocator hook for the devirtualized PageAllocFn. */
Addr
bumpPage(void *ctx)
{
    return *static_cast<Addr *>(ctx) += kPageSize;
}

class OverlayFuzz : public ::testing::TestWithParam<std::uint64_t>
{
  protected:
    OverlayFuzz()
        : dram("dram", DramTimingParams{}),
          ovm("ovm", OverlayManagerParams{}, dram,
              PageAllocFn{&bumpPage, &nextPage_})
    {
    }

    static Addr
    lineAddr(Opn opn, unsigned line)
    {
        return (opn << kPageShift) | (Addr(line) << kLineShift);
    }

    Addr nextPage_ = 0x100'0000;
    DramController dram;
    OverlayManager ovm;
};

TEST_P(OverlayFuzz, MatchesHostModelUnderRandomOps)
{
    Rng rng(GetParam());
    constexpr Opn kBaseOpn = (Addr(1) << 51) | 0x9000;
    constexpr unsigned kNumPages = 6;

    // Host model: page -> line -> expected first byte.
    std::map<Opn, std::map<unsigned, std::uint8_t>> model;
    Tick t = 0;

    for (unsigned step = 0; step < 6000; ++step) {
        Opn opn = kBaseOpn + rng.below(kNumPages);
        unsigned line = unsigned(rng.below(kLinesPerPage));
        switch (rng.below(5)) {
          case 0: { // write line data
            std::uint8_t tag = std::uint8_t(rng.next());
            LineData data;
            data.fill(tag);
            ovm.writeLineData(opn, line, data);
            model[opn][line] = tag;
            break;
          }
          case 1: { // writeback (lazy OMS allocation)
            if (model.count(opn) && model[opn].count(line))
                t = ovm.writebackLine(lineAddr(opn, line), t);
            break;
          }
          case 2: { // controller read
            if (model.count(opn) && model[opn].count(line))
                t = ovm.readLine(lineAddr(opn, line), t);
            break;
          }
          case 3: { // clear one line
            if (rng.chance(0.3)) {
                ovm.clearLine(opn, line);
                if (model.count(opn))
                    model[opn].erase(line);
            }
            break;
          }
          case 4: { // discard a whole overlay
            if (rng.chance(0.05)) {
                ovm.discardOverlay(opn);
                model.erase(opn);
            }
            break;
          }
        }

        if (step % 500 != 0)
            continue;
        // ---- invariant sweep ----
        for (unsigned p = 0; p < kNumPages; ++p) {
            Opn check = kBaseOpn + p;
            BitVector64 obv = ovm.obitvector(check);
            const auto it = model.find(check);
            for (unsigned l = 0; l < kLinesPerPage; ++l) {
                bool expected =
                    it != model.end() && it->second.count(l) > 0;
                ASSERT_EQ(obv.test(l), expected)
                    << "page " << p << " line " << l << " step " << step;
                if (expected) {
                    LineData data;
                    ovm.readLineData(check, l, data);
                    ASSERT_EQ(data[0], it->second.at(l));
                    ASSERT_EQ(data[kLineSize - 1], it->second.at(l));
                }
            }
        }
        // OMS accounting is exact: bytes-in-use equals the sum of the
        // live segments' class sizes.
        std::uint64_t live_seg_bytes = 0;
        for (unsigned c = 0; c < kNumSegClasses; ++c) {
            live_seg_bytes += ovm.segmentCount(SegClass(c)) *
                              segClassBytes(SegClass(c));
        }
        ASSERT_EQ(ovm.omsBytesInUse(), live_seg_bytes);
    }
}

TEST_P(OverlayFuzz, SlotAssignmentsNeverCollide)
{
    Rng rng(GetParam() + 7);
    constexpr Opn opn = (Addr(1) << 51) | 0xABC;
    std::set<unsigned> mapped;
    Tick t = 0;
    for (unsigned step = 0; step < 300; ++step) {
        unsigned line = unsigned(rng.below(kLinesPerPage));
        if (rng.chance(0.75)) {
            LineData d{};
            ovm.writeLineData(opn, line, d);
            t = ovm.writebackLine(lineAddr(opn, line), t);
            mapped.insert(line);
        } else if (!mapped.empty()) {
            ovm.clearLine(opn, line);
            mapped.erase(line);
        }
        // Distinct mapped lines must resolve to distinct OMS addresses.
        const OmtEntry *entry = ovm.omt().find(opn);
        if (entry == nullptr || !entry->hasSegment)
            continue;
        std::set<Addr> addrs;
        for (unsigned l : mapped) {
            if (!entry->seg.hasSlot(l))
                continue; // written but not yet written back
            Addr a = entry->seg.lineAddr(l);
            ASSERT_TRUE(addrs.insert(a).second)
                << "slot collision at line " << l;
            ASSERT_GE(a, entry->seg.baseAddr);
            ASSERT_LT(a, entry->seg.baseAddr + entry->seg.bytes());
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OverlayFuzz,
                         ::testing::Values(101, 202, 303, 404));

} // namespace
} // namespace ovl
