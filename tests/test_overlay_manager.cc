/**
 * @file
 * Tests for the overlay engine: functional overlay contents, lazy OMS
 * slot allocation on writeback (§4.3.3), segment growth/migration
 * (§4.4.2), discard, and the OMT side of the overlaying-read-exclusive
 * message.
 */

#include <gtest/gtest.h>

#include "dram/dram.hh"
#include "overlay/overlay_manager.hh"

namespace ovl
{
namespace
{

/** Page-bump allocator hook for the devirtualized PageAllocFn. */
Addr
bumpPage(void *ctx)
{
    return *static_cast<Addr *>(ctx) += kPageSize;
}

class OverlayManagerTest : public ::testing::Test
{
  protected:
    OverlayManagerTest()
        : dram("dram", DramTimingParams{}),
          ovm("ovm", OverlayManagerParams{}, dram,
              PageAllocFn{&bumpPage, &nextPage_})
    {
    }

    static LineData
    pattern(std::uint8_t seed)
    {
        LineData d;
        for (std::size_t i = 0; i < d.size(); ++i)
            d[i] = std::uint8_t(seed + i);
        return d;
    }

    /** Overlay line address for (opn, line). */
    static Addr
    lineAddr(Opn opn, unsigned line)
    {
        return (opn << kPageShift) | (Addr(line) << kLineShift);
    }

    Addr nextPage_ = 0x100'0000;
    DramController dram;
    OverlayManager ovm;
};

constexpr Opn kOpn = (Addr(1) << 51) | 0x1234; // an overlay-space page

TEST_F(OverlayManagerTest, EmptyOverlayReportsNothing)
{
    EXPECT_FALSE(ovm.hasOverlay(kOpn));
    EXPECT_TRUE(ovm.obitvector(kOpn).none());
}

TEST_F(OverlayManagerTest, WriteThenReadLineData)
{
    LineData in = pattern(7);
    ovm.writeLineData(kOpn, 13, in);
    EXPECT_TRUE(ovm.hasOverlay(kOpn));
    EXPECT_TRUE(ovm.obitvector(kOpn).test(13));
    LineData out{};
    ovm.readLineData(kOpn, 13, out);
    EXPECT_EQ(out, in);
}

TEST_F(OverlayManagerTest, NoOmsSpaceUntilWriteback)
{
    // §4.3.3: memory is allocated lazily on dirty-line eviction.
    ovm.writeLineData(kOpn, 0, pattern(1));
    EXPECT_EQ(ovm.omsBytesInUse(), 0u);
    ovm.writebackLine(lineAddr(kOpn, 0), 0);
    EXPECT_EQ(ovm.omsBytesInUse(), segClassBytes(SegClass::Seg256B));
}

TEST_F(OverlayManagerTest, SegmentGrowsThroughAllClasses)
{
    // Writing back more and more lines migrates the overlay up the
    // segment classes: 256 B (3 lines) -> 512 B (7) -> 1 KB (15) ->
    // 2 KB (31) -> 4 KB (64).
    Tick t = 0;
    for (unsigned l = 0; l < kLinesPerPage; ++l) {
        ovm.writeLineData(kOpn, l, pattern(std::uint8_t(l)));
        t = ovm.writebackLine(lineAddr(kOpn, l), t);
        std::uint64_t expected =
            segClassBytes(segClassFor(l + 1));
        EXPECT_EQ(ovm.omsBytesInUse(), expected)
            << "after " << (l + 1) << " lines";
    }
    EXPECT_EQ(ovm.migrations(), 4u);
    // Contents survived every migration.
    for (unsigned l = 0; l < kLinesPerPage; ++l) {
        LineData out{};
        ovm.readLineData(kOpn, l, out);
        EXPECT_EQ(out, pattern(std::uint8_t(l)));
    }
}

TEST_F(OverlayManagerTest, RepeatedWritebackReusesSlot)
{
    ovm.writeLineData(kOpn, 5, pattern(1));
    ovm.writebackLine(lineAddr(kOpn, 5), 0);
    std::uint64_t bytes = ovm.omsBytesInUse();
    ovm.writebackLine(lineAddr(kOpn, 5), 1000);
    EXPECT_EQ(ovm.omsBytesInUse(), bytes); // no second slot
}

TEST_F(OverlayManagerTest, ReadLineGoesThroughOmtAndDram)
{
    ovm.writeLineData(kOpn, 3, pattern(2));
    ovm.writebackLine(lineAddr(kOpn, 3), 0);
    Tick done = ovm.readLine(lineAddr(kOpn, 3), 10'000);
    EXPECT_GT(done, 10'000u);
}

TEST_F(OverlayManagerTest, OmtCacheHitIsCheaperThanWalk)
{
    ovm.writeLineData(kOpn, 3, pattern(2));
    ovm.writebackLine(lineAddr(kOpn, 3), 0);
    ovm.omtCache().invalidate(kOpn);
    Tick cold = ovm.omtAccess(kOpn, 1'000'000) - 1'000'000;
    Tick warm = ovm.omtAccess(kOpn, 2'000'000) - 2'000'000;
    EXPECT_GT(cold, warm);
    EXPECT_EQ(warm, ovm.omtCache().params().hitLatency);
}

TEST_F(OverlayManagerTest, DiscardFreesEverything)
{
    for (unsigned l = 0; l < 10; ++l) {
        ovm.writeLineData(kOpn, l, pattern(std::uint8_t(l)));
        ovm.writebackLine(lineAddr(kOpn, l), 0);
    }
    EXPECT_GT(ovm.omsBytesInUse(), 0u);
    ovm.discardOverlay(kOpn);
    EXPECT_FALSE(ovm.hasOverlay(kOpn));
    EXPECT_EQ(ovm.omsBytesInUse(), 0u);
    EXPECT_TRUE(ovm.obitvector(kOpn).none());
}

TEST_F(OverlayManagerTest, WritebackAfterDiscardIsDropped)
{
    ovm.writeLineData(kOpn, 4, pattern(1));
    ovm.discardOverlay(kOpn);
    // A stale dirty line arriving from the caches is squashed.
    Tick t = ovm.writebackLine(lineAddr(kOpn, 4), 100);
    EXPECT_GE(t, 100u);
    EXPECT_EQ(ovm.omsBytesInUse(), 0u);
}

TEST_F(OverlayManagerTest, ClearLineFreesSlotForReuse)
{
    for (unsigned l = 0; l < 3; ++l) {
        ovm.writeLineData(kOpn, l, pattern(std::uint8_t(l)));
        ovm.writebackLine(lineAddr(kOpn, l), 0);
    }
    std::uint64_t bytes = ovm.omsBytesInUse();
    ovm.clearLine(kOpn, 1);
    EXPECT_FALSE(ovm.obitvector(kOpn).test(1));
    // A new line reuses the freed slot: no growth.
    ovm.writeLineData(kOpn, 9, pattern(9));
    ovm.writebackLine(lineAddr(kOpn, 9), 0);
    EXPECT_EQ(ovm.omsBytesInUse(), bytes);
}

TEST_F(OverlayManagerTest, OverlayingReadExclusiveSetsOmtBit)
{
    Tick done = ovm.overlayingReadExclusive(kOpn, 22, 50);
    EXPECT_GE(done, 50u);
    EXPECT_TRUE(ovm.obitvector(kOpn).test(22));
}

TEST_F(OverlayManagerTest, DistinctOverlaysAreIndependent)
{
    Opn other = kOpn + 1;
    ovm.writeLineData(kOpn, 0, pattern(1));
    ovm.writeLineData(other, 0, pattern(2));
    LineData a{}, b{};
    ovm.readLineData(kOpn, 0, a);
    ovm.readLineData(other, 0, b);
    EXPECT_EQ(a, pattern(1));
    EXPECT_EQ(b, pattern(2));
    ovm.discardOverlay(kOpn);
    EXPECT_TRUE(ovm.hasOverlay(other));
}

TEST_F(OverlayManagerTest, SegmentCountsByClass)
{
    ovm.writeLineData(kOpn, 0, pattern(1));
    ovm.writebackLine(lineAddr(kOpn, 0), 0);
    EXPECT_EQ(ovm.segmentCount(SegClass::Seg256B), 1u);
    EXPECT_EQ(ovm.segmentCount(SegClass::Seg4KB), 0u);
}

} // namespace
} // namespace ovl
