/**
 * @file
 * Tests for the replacement policies: LRU, Random, SRRIP, BRRIP and
 * set-dueling DRRIP [27].
 */

#include <gtest/gtest.h>

#include "cache/replacement.hh"

namespace ovl
{
namespace
{

TEST(Replacement, PolicyNames)
{
    EXPECT_STREQ(replPolicyName(ReplPolicy::LRU), "LRU");
    EXPECT_STREQ(replPolicyName(ReplPolicy::DRRIP), "DRRIP");
}

TEST(Replacement, LruEvictsLeastRecentlyUsed)
{
    ReplacementEngine engine(ReplPolicy::LRU, 64);
    ReplState lines[4];
    for (auto &line : lines)
        engine.onInsert(line, 0, false);
    // Touch everything except way 2.
    engine.onHit(lines[0]);
    engine.onHit(lines[1]);
    engine.onHit(lines[3]);
    EXPECT_EQ(engine.selectVictim(lines, 4), 2u);
}

TEST(Replacement, LruHitRefreshesRecency)
{
    ReplacementEngine engine(ReplPolicy::LRU, 64);
    ReplState lines[2];
    engine.onInsert(lines[0], 0, false);
    engine.onInsert(lines[1], 0, false);
    engine.onHit(lines[0]); // 0 is now more recent than 1
    EXPECT_EQ(engine.selectVictim(lines, 2), 1u);
}

TEST(Replacement, RandomStaysInRange)
{
    ReplacementEngine engine(ReplPolicy::Random, 64);
    ReplState lines[8];
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(engine.selectVictim(lines, 8), 8u);
}

TEST(Replacement, SrripHitPromotesToNearImmediate)
{
    ReplacementEngine engine(ReplPolicy::SRRIP, 64);
    ReplState line;
    engine.onInsert(line, 0, false);
    EXPECT_EQ(line.rrpv, 2); // long re-reference on insert
    engine.onHit(line);
    EXPECT_EQ(line.rrpv, 0);
}

TEST(Replacement, SrripVictimIsDistantLine)
{
    ReplacementEngine engine(ReplPolicy::SRRIP, 64);
    ReplState lines[4];
    for (auto &line : lines)
        engine.onInsert(line, 0, false);
    engine.onHit(lines[0]);
    engine.onHit(lines[1]);
    engine.onHit(lines[2]);
    // Lines 0-2 have RRPV 0; line 3 has RRPV 2 and ages to 3 first.
    EXPECT_EQ(engine.selectVictim(lines, 4), 3u);
}

TEST(Replacement, SrripAgingTerminates)
{
    ReplacementEngine engine(ReplPolicy::SRRIP, 64);
    ReplState lines[16];
    for (auto &line : lines) {
        engine.onInsert(line, 0, false);
        engine.onHit(line); // everything at RRPV 0
    }
    unsigned victim = engine.selectVictim(lines, 16);
    EXPECT_LT(victim, 16u);
    // Aging must have raised the victim to the distant value.
    EXPECT_GE(lines[victim].rrpv, 3);
}

TEST(Replacement, BrripMostlyInsertsDistant)
{
    ReplacementEngine engine(ReplPolicy::BRRIP, 64);
    unsigned distant = 0;
    for (int i = 0; i < 320; ++i) {
        ReplState line;
        engine.onInsert(line, 0, false);
        distant += (line.rrpv == 3);
    }
    // 31 of every 32 inserts are distant.
    EXPECT_GT(distant, 280u);
    EXPECT_LT(distant, 320u);
}

TEST(Replacement, DrripLeaderSetsAreDisjoint)
{
    ReplacementEngine engine(ReplPolicy::DRRIP, 2048);
    unsigned srrip = 0, brrip = 0;
    for (unsigned set = 0; set < 2048; ++set) {
        EXPECT_FALSE(engine.isSrripLeader(set) && engine.isBrripLeader(set));
        srrip += engine.isSrripLeader(set);
        brrip += engine.isBrripLeader(set);
    }
    EXPECT_EQ(srrip, 2048u / 32);
    EXPECT_EQ(brrip, 2048u / 32);
}

TEST(Replacement, DrripDuelingMovesPsel)
{
    ReplacementEngine engine(ReplPolicy::DRRIP, 2048);
    bool initial = engine.brripWinning();
    // Misses in SRRIP leader sets vote for BRRIP.
    for (int i = 0; i < 600; ++i)
        engine.onMiss(0); // set 0 is an SRRIP leader
    EXPECT_TRUE(engine.brripWinning());
    // Misses in BRRIP leader sets vote for SRRIP.
    for (int i = 0; i < 1200; ++i)
        engine.onMiss(16); // set 16 is a BRRIP leader
    EXPECT_FALSE(engine.brripWinning());
    (void)initial;
}

TEST(Replacement, DrripFollowerInsertsTrackWinner)
{
    ReplacementEngine engine(ReplPolicy::DRRIP, 2048);
    for (int i = 0; i < 1200; ++i)
        engine.onMiss(16); // push toward SRRIP
    ReplState line;
    engine.onInsert(line, 1, false); // set 1 is a follower
    EXPECT_EQ(line.rrpv, 2);         // SRRIP-style insert
}

TEST(Replacement, DrripPrefetchesInsertDistant)
{
    ReplacementEngine engine(ReplPolicy::DRRIP, 2048);
    ReplState line;
    engine.onInsert(line, 1, true);
    EXPECT_EQ(line.rrpv, 3);
}

} // namespace
} // namespace ovl
