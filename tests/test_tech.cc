/**
 * @file
 * Tests for the Table 1 techniques: fine-grained deduplication,
 * checkpointing, speculation, metadata management (taint tracking),
 * flexible super-pages, and the page-sharing utility.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "tech/checkpoint.hh"
#include "tech/dedup.hh"
#include "tech/metadata.hh"
#include "tech/overlay_on_write.hh"
#include "tech/speculation.hh"
#include "tech/superpage.hh"

namespace ovl
{
namespace
{

constexpr Addr kBase = 0x400000;

class TechTest : public ::testing::Test
{
  protected:
    TechTest() : sys(SystemConfig{}) { asid = sys.createProcess(); }

    System sys;
    Asid asid = 0;
};

// ----------------------------- sharePages ------------------------------

TEST_F(TechTest, SharePagesGivesBorrowerTheData)
{
    sys.mapAnon(asid, kBase, kPageSize);
    std::uint64_t magic = 0xABCD;
    sys.poke(asid, kBase, &magic, 8);
    Asid borrower = sys.createProcess();
    tech::sharePages(sys, asid, borrower, kBase, kPageSize,
                     ForkMode::OverlayOnWrite);
    std::uint64_t got = 0;
    sys.peek(borrower, kBase, &got, 8);
    EXPECT_EQ(got, magic);
    // A borrower write diverges one line only.
    std::uint64_t newval = 0xEF01;
    sys.write(borrower, kBase, &newval, 8, 0);
    sys.peek(asid, kBase, &got, 8);
    EXPECT_EQ(got, magic);
    sys.peek(borrower, kBase, &got, 8);
    EXPECT_EQ(got, newval);
}

// ------------------------------- dedup ---------------------------------

TEST_F(TechTest, DedupMergesSimilarPages)
{
    // Four pages: two identical, one near-duplicate (1 line differs),
    // one completely different.
    sys.mapAnon(asid, kBase, 4 * kPageSize);
    std::vector<std::uint8_t> content(kPageSize, 0x11);
    sys.poke(asid, kBase + 0 * kPageSize, content.data(), kPageSize);
    sys.poke(asid, kBase + 1 * kPageSize, content.data(), kPageSize);
    content[100] = 0x22; // line 1 differs
    sys.poke(asid, kBase + 2 * kPageSize, content.data(), kPageSize);
    std::vector<std::uint8_t> other(kPageSize, 0x77);
    sys.poke(asid, kBase + 3 * kPageSize, other.data(), kPageSize);

    tech::DedupEngine engine(sys, tech::DedupParams{16});
    std::vector<std::pair<Asid, Addr>> pages;
    for (unsigned p = 0; p < 4; ++p)
        pages.push_back({asid, kBase + p * kPageSize});
    tech::DedupReport report = engine.deduplicate(pages);

    EXPECT_EQ(report.pagesScanned, 4u);
    EXPECT_EQ(report.pagesDeduplicated, 2u);
    EXPECT_EQ(report.exactDuplicates, 1u);
    EXPECT_EQ(report.diffLinesStored, 1u);
    EXPECT_GT(report.bytesSaved(), 0);

    // Contents are fully preserved through the overlay semantics.
    std::uint8_t byte = 0;
    sys.peek(asid, kBase + 1 * kPageSize + 100, &byte, 1);
    EXPECT_EQ(byte, 0x11);
    sys.peek(asid, kBase + 2 * kPageSize + 100, &byte, 1);
    EXPECT_EQ(byte, 0x22);
    sys.peek(asid, kBase + 3 * kPageSize + 100, &byte, 1);
    EXPECT_EQ(byte, 0x77);
}

TEST_F(TechTest, DedupRespectsDiffThreshold)
{
    sys.mapAnon(asid, kBase, 2 * kPageSize);
    std::vector<std::uint8_t> content(kPageSize, 0x11);
    sys.poke(asid, kBase, content.data(), kPageSize);
    // Second page differs in 32 lines.
    for (unsigned l = 0; l < 32; ++l)
        content[l * kLineSize] = 0x99;
    sys.poke(asid, kBase + kPageSize, content.data(), kPageSize);

    tech::DedupEngine engine(sys, tech::DedupParams{8});
    tech::DedupReport report = engine.deduplicate(
        {{asid, kBase}, {asid, kBase + kPageSize}});
    EXPECT_EQ(report.pagesDeduplicated, 0u);
}

TEST_F(TechTest, DedupWriteAfterMergeDiverges)
{
    sys.mapAnon(asid, kBase, 2 * kPageSize);
    std::vector<std::uint8_t> content(kPageSize, 0x33);
    sys.poke(asid, kBase, content.data(), kPageSize);
    sys.poke(asid, kBase + kPageSize, content.data(), kPageSize);
    tech::DedupEngine engine(sys, tech::DedupParams{});
    engine.deduplicate({{asid, kBase}, {asid, kBase + kPageSize}});

    std::uint8_t newbyte = 0x44;
    sys.write(asid, kBase + kPageSize + 7, &newbyte, 1, 0);
    std::uint8_t got = 0;
    sys.peek(asid, kBase + 7, &got, 1);
    EXPECT_EQ(got, 0x33);
    sys.peek(asid, kBase + kPageSize + 7, &got, 1);
    EXPECT_EQ(got, 0x44);
}

// ----------------------------- checkpoint ------------------------------

TEST_F(TechTest, CheckpointCapturesOnlyDeltas)
{
    sys.mapAnon(asid, kBase, 8 * kPageSize);
    tech::CheckpointManager ckpt(sys, asid);
    ckpt.addRange(kBase, 8 * kPageSize);

    // Dirty 3 lines across 2 pages.
    std::uint64_t v = 1;
    sys.poke(asid, kBase + 0 * kLineSize, &v, 8);
    sys.poke(asid, kBase + 9 * kLineSize, &v, 8);
    sys.poke(asid, kBase + kPageSize + 5 * kLineSize, &v, 8);

    tech::CheckpointStats stats = ckpt.takeCheckpoint(0);
    EXPECT_EQ(stats.dirtyPages, 2u);
    EXPECT_EQ(stats.dirtyLines, 3u);
    // Delta bytes: 3 lines + 2 per-overlay metadata records.
    EXPECT_EQ(stats.deltaBytes, (3 + 2) * kLineSize);
    EXPECT_EQ(stats.pageGranBytes, 2 * kPageSize);
    EXPECT_LT(stats.deltaBytes, stats.pageGranBytes / 10);
}

TEST_F(TechTest, CheckpointCommitsAndRearms)
{
    sys.mapAnon(asid, kBase, kPageSize);
    tech::CheckpointManager ckpt(sys, asid);
    ckpt.addRange(kBase, kPageSize);

    std::uint64_t v1 = 41;
    sys.poke(asid, kBase, &v1, 8);
    ckpt.takeCheckpoint(0);
    // After the checkpoint the data persists in the base page...
    std::uint64_t got = 0;
    sys.peek(asid, kBase, &got, 8);
    EXPECT_EQ(got, 41u);
    EXPECT_TRUE(sys.pageObv(asid, kBase).none());

    // ... and the next interval captures fresh deltas only.
    std::uint64_t v2 = 42;
    sys.poke(asid, kBase + kLineSize, &v2, 8);
    tech::CheckpointStats stats = ckpt.takeCheckpoint(1000);
    EXPECT_EQ(stats.dirtyLines, 1u);
    EXPECT_EQ(ckpt.checkpointsTaken(), 2u);
}

TEST_F(TechTest, QuietIntervalCheckpointIsFree)
{
    sys.mapAnon(asid, kBase, 4 * kPageSize);
    tech::CheckpointManager ckpt(sys, asid);
    ckpt.addRange(kBase, 4 * kPageSize);
    tech::CheckpointStats stats = ckpt.takeCheckpoint(0);
    EXPECT_EQ(stats.dirtyPages, 0u);
    EXPECT_EQ(stats.deltaBytes, 0u);
}

// ----------------------------- speculation -----------------------------

TEST_F(TechTest, SpeculationCommitMakesUpdatesPermanent)
{
    sys.mapAnon(asid, kBase, kPageSize);
    std::uint64_t v = 10;
    sys.poke(asid, kBase, &v, 8);

    tech::SpeculativeRegion region(sys, asid);
    region.begin(kBase, kPageSize);
    std::uint64_t spec = 20;
    sys.write(asid, kBase, &spec, 8, 0);
    EXPECT_EQ(region.speculativeLines(), 1u);
    tech::SpeculationStats stats = region.commit(1000);
    EXPECT_TRUE(stats.committed);
    EXPECT_EQ(stats.speculativeLines, 1u);

    std::uint64_t got = 0;
    sys.peek(asid, kBase, &got, 8);
    EXPECT_EQ(got, 20u);
    EXPECT_TRUE(sys.pageObv(asid, kBase).none());
}

TEST_F(TechTest, SpeculationAbortLeavesMemoryUntouched)
{
    sys.mapAnon(asid, kBase, kPageSize);
    std::uint64_t v = 10;
    sys.poke(asid, kBase, &v, 8);

    tech::SpeculativeRegion region(sys, asid);
    region.begin(kBase, kPageSize);
    std::uint64_t spec = 99;
    sys.write(asid, kBase, &spec, 8, 0);
    std::uint64_t got = 0;
    sys.peek(asid, kBase, &got, 8);
    EXPECT_EQ(got, 99u); // visible inside the region
    region.abort(1000);
    sys.peek(asid, kBase, &got, 8);
    EXPECT_EQ(got, 10u); // rolled back
}

TEST_F(TechTest, SpeculationSurvivesCacheOverflow)
{
    // §5.3.3: unlike cache-based speculation, overlays are not bounded
    // by cache capacity. Write far more lines than the L1 holds.
    std::uint64_t span = 64 * kPageSize; // 4096 lines > 1024 L1 lines
    sys.mapAnon(asid, kBase, span);
    tech::SpeculativeRegion region(sys, asid);
    region.begin(kBase, span);
    Tick t = 0;
    for (Addr a = kBase; a < kBase + span; a += kLineSize)
        t = sys.access(asid, a, true, t);
    EXPECT_EQ(region.speculativeLines(), span / kLineSize);
    tech::SpeculationStats stats = region.abort(t);
    EXPECT_EQ(stats.speculativePages, 64u);
}

// ------------------------------ metadata -------------------------------

TEST_F(TechTest, TaintPropagatesThroughCopies)
{
    sys.mapAnon(asid, kBase, 2 * kPageSize);
    tech::TaintTracker taint(sys, asid);
    taint.enable(kBase, 2 * kPageSize);

    std::uint64_t secret = 0x5EC;
    sys.poke(asid, kBase, &secret, 8);
    taint.setTaint(kBase, 8, true, 0);
    EXPECT_TRUE(taint.isTainted(kBase, 8));
    EXPECT_FALSE(taint.isTainted(kBase + 64, 8));

    // A propagating copy carries both data and taint.
    taint.taintedCopy(kBase + kPageSize, kBase, 8, 0);
    EXPECT_TRUE(taint.isTainted(kBase + kPageSize, 8));
    std::uint64_t got = 0;
    sys.peek(asid, kBase + kPageSize, &got, 8);
    EXPECT_EQ(got, secret);

    // Untainted copy clears the destination's taint.
    taint.setTaint(kBase + 8, 8, false, 0);
    taint.taintedCopy(kBase + kPageSize, kBase + 8, 8, 0);
    EXPECT_FALSE(taint.isTainted(kBase + kPageSize, 8));
}

TEST_F(TechTest, ShadowMemoryIsOutOfBand)
{
    sys.mapAnon(asid, kBase, kPageSize);
    tech::ShadowMemory shadow(sys, asid);
    shadow.enable(kBase, kPageSize);
    std::uint64_t data = 123;
    sys.poke(asid, kBase, &data, 8);
    std::uint8_t meta = 7;
    shadow.pokeMeta(kBase, &meta, 1);
    // Data and metadata coexist at the "same" virtual address.
    std::uint64_t dgot = 0;
    sys.peek(asid, kBase, &dgot, 8);
    std::uint8_t mgot = 0;
    shadow.peekMeta(kBase, &mgot, 1);
    EXPECT_EQ(dgot, 123u);
    EXPECT_EQ(mgot, 7);
    EXPECT_EQ(shadow.shadowLines(kBase), 1u);
}

// ------------------------------ superpage ------------------------------

TEST_F(TechTest, SuperPageSegmentCow)
{
    tech::SuperPageManager spm(sys);
    Addr sp_base = 0x4000'0000; // 2 MB aligned
    spm.mapSuperPage(asid, sp_base);
    Asid clone = sys.createProcess();
    spm.share(asid, clone, sp_base);

    tech::SuperPageCowStats stats;
    spm.write(clone, sp_base + 5 * tech::kSegmentSize + 123, 0, &stats);
    EXPECT_EQ(stats.segmentCopies, 1u);
    EXPECT_EQ(stats.bytesCopied, tech::kSegmentSize);
    EXPECT_TRUE(spm.segmentVector(clone, sp_base).test(5));
    EXPECT_EQ(spm.segmentVector(clone, sp_base).count(), 1u);

    // Second write to the same segment: no further copying.
    spm.write(clone, sp_base + 5 * tech::kSegmentSize + 4096, 100, &stats);
    EXPECT_EQ(stats.segmentCopies, 1u);

    // The flexible scheme copied 32 KB where rigid CoW copies 2 MB.
    EXPECT_EQ(spm.flexibleBytes(), tech::kSegmentSize);
    EXPECT_EQ(spm.rigidBytes(), tech::kSuperPageSize);
}

TEST_F(TechTest, SuperPageSegmentProtection)
{
    tech::SuperPageManager spm(sys);
    Addr sp_base = 0x4000'0000;
    spm.mapSuperPage(asid, sp_base);
    EXPECT_TRUE(spm.isWritable(asid, sp_base));
    spm.protectSegment(asid, sp_base + 3 * tech::kSegmentSize, false);
    EXPECT_FALSE(
        spm.isWritable(asid, sp_base + 3 * tech::kSegmentSize + 64));
    // Other segments of the same super-page stay writable: multiple
    // protection domains within one super-page (§5.3.5).
    EXPECT_TRUE(spm.isWritable(asid, sp_base + 4 * tech::kSegmentSize));
}

} // namespace
} // namespace ovl
