/**
 * @file
 * Tests for the three-level cache hierarchy: service levels, latency
 * ordering, dirty-victim cascades, prefetch fills, retagging and
 * flushes. A recording backend stands in for the memory controller.
 */

#include <gtest/gtest.h>

#include <vector>

#include "cache/hierarchy.hh"

namespace ovl
{
namespace
{

/** MemBackend that records traffic and applies a fixed latency. */
class RecordingBackend : public MemBackend
{
  public:
    Tick
    readLine(Addr line_addr, Tick when) override
    {
        reads.push_back(line_addr);
        return when + latency;
    }

    Tick
    writebackLine(Addr line_addr, Tick when) override
    {
        writebacks.push_back(line_addr);
        return when + 1;
    }

    std::vector<Addr> reads;
    std::vector<Addr> writebacks;
    Tick latency = 200;
};

HierarchyParams
tinyParams()
{
    HierarchyParams p;
    p.l1 = CacheParams{1024, 2, 1, 2, true, ReplPolicy::LRU};
    p.l2 = CacheParams{4096, 4, 2, 8, true, ReplPolicy::LRU};
    p.l3 = CacheParams{16384, 8, 10, 24, false, ReplPolicy::DRRIP};
    p.prefetcher.enabled = false;
    return p;
}

class HierarchyTest : public ::testing::Test
{
  protected:
    HierarchyTest() : hier("h", tinyParams(), backend) {}

    RecordingBackend backend;
    CacheHierarchy hier;
};

TEST_F(HierarchyTest, MissGoesToMemoryThenHitsL1)
{
    HitLevel level;
    Tick t1 = hier.access(0x1000, false, 0, &level);
    EXPECT_EQ(level, HitLevel::Memory);
    EXPECT_GE(t1, backend.latency);
    EXPECT_EQ(backend.reads.size(), 1u);

    Tick t2 = hier.access(0x1000, false, t1, &level) - t1;
    EXPECT_EQ(level, HitLevel::L1);
    EXPECT_EQ(t2, tinyParams().l1.hitLatency());
}

TEST_F(HierarchyTest, LatencyOrderingAcrossLevels)
{
    // Fill a line, then evict it from L1 only, to measure an L2 hit.
    hier.access(0x0, false, 0);
    hier.l1().invalidate(0x0);
    HitLevel level;
    Tick l2_lat = hier.access(0x0, false, 1000, &level) - 1000;
    EXPECT_EQ(level, HitLevel::L2);

    hier.l1().invalidate(0x0);
    hier.l2().invalidate(0x0);
    Tick l3_lat = hier.access(0x0, false, 2000, &level) - 2000;
    EXPECT_EQ(level, HitLevel::L3);

    Tick l1_lat = hier.access(0x0, false, 3000, &level) - 3000;
    EXPECT_EQ(level, HitLevel::L1);

    EXPECT_LT(l1_lat, l2_lat);
    EXPECT_LT(l2_lat, l3_lat);
    EXPECT_LT(l3_lat, backend.latency);
}

TEST_F(HierarchyTest, DemandFillsAllThreeLevels)
{
    hier.access(0x4000, false, 0);
    EXPECT_TRUE(hier.l1().isPresent(0x4000));
    EXPECT_TRUE(hier.l2().isPresent(0x4000));
    EXPECT_TRUE(hier.l3().isPresent(0x4000));
}

TEST_F(HierarchyTest, DirtyVictimCascadesToL2)
{
    // Dirty a line, then force it out of the tiny L1 (8 sets x 2 ways)
    // with conflicting accesses.
    hier.access(0x0, true, 0);
    Addr stride = Addr(hier.l1().numSets()) * kLineSize;
    hier.access(stride, false, 0);
    hier.access(2 * stride, false, 0);
    EXPECT_FALSE(hier.l1().isPresent(0x0));
    // The dirty line must still be dirty somewhere below.
    EXPECT_TRUE(hier.l2().isPresent(0x0) || hier.l3().isPresent(0x0));
    EXPECT_TRUE(backend.writebacks.empty());
}

TEST_F(HierarchyTest, FlushWritesBackDirtyLines)
{
    hier.access(0x0, true, 0);
    hier.access(0x1000, false, 0);
    hier.flushAll(100);
    EXPECT_EQ(backend.writebacks.size(), 1u);
    EXPECT_EQ(backend.writebacks[0], 0u);
    EXPECT_FALSE(hier.l1().isPresent(0x0));
    EXPECT_FALSE(hier.l3().isPresent(0x1000));
}

TEST_F(HierarchyTest, InvalidateLineWritesBackDirty)
{
    hier.access(0x2000, true, 0);
    hier.invalidateLine(0x2000, 50);
    EXPECT_EQ(backend.writebacks.size(), 1u);
    EXPECT_FALSE(hier.l1().isPresent(0x2000));
}

TEST_F(HierarchyTest, InvalidateCleanLineWritesNothing)
{
    hier.access(0x2000, false, 0);
    hier.invalidateLine(0x2000, 50);
    EXPECT_TRUE(backend.writebacks.empty());
}

TEST_F(HierarchyTest, RetagMovesLineToOverlayAddress)
{
    Addr phys = 0x8000;
    Addr overlay = phys | (Addr(1) << 63);
    hier.access(phys, true, 0);
    EXPECT_TRUE(hier.retagLine(phys, overlay, 5));
    EXPECT_FALSE(hier.l1().isPresent(phys));
    EXPECT_TRUE(hier.l1().isPresent(overlay));
    // Dirtiness survives the retag: a flush writes the overlay address.
    hier.flushAll(10);
    ASSERT_EQ(backend.writebacks.size(), 1u);
    EXPECT_EQ(backend.writebacks[0], overlay);
}

TEST_F(HierarchyTest, RetagMissingLineReturnsFalse)
{
    EXPECT_FALSE(hier.retagLine(0xAB00, 0xAB00 | (Addr(1) << 63), 5));
}

TEST(HierarchyPrefetch, StreamMissesPrefetchIntoL3)
{
    RecordingBackend backend;
    HierarchyParams p = tinyParams();
    p.prefetcher.enabled = true;
    CacheHierarchy hier("h", p, backend);

    // Two adjacent demand misses train a stream.
    hier.access(0x10000, false, 0);
    hier.access(0x10040, false, 100);
    EXPECT_GT(hier.prefetcher().issued(), 0u);
    // Prefetched lines are in L3 but not L1.
    EXPECT_TRUE(hier.l3().isPresent(0x10080));
    EXPECT_FALSE(hier.l1().isPresent(0x10080));
}

TEST(HierarchyPrefetch, PrefetchHitsReduceDemandLatency)
{
    RecordingBackend backend;
    HierarchyParams p = tinyParams();
    p.prefetcher.enabled = true;
    CacheHierarchy hier("h", p, backend);

    hier.access(0x10000, false, 0);
    hier.access(0x10040, false, 1000);
    HitLevel level;
    Tick lat = hier.access(0x10080, false, 2000, &level) - 2000;
    EXPECT_EQ(level, HitLevel::L3);
    EXPECT_LT(lat, backend.latency);
}

} // namespace
} // namespace ovl
