/**
 * @file
 * Tests for the host-time attribution profiler (src/sim/profile.hh) and
 * the golden-stats forensics diff (src/sim/stats_diff.hh). The profiler
 * contracts under test:
 *
 *  - idle scopes are inert: no state, no tree growth, empty reports;
 *  - nesting builds per-path rollups (the same zone under different
 *    parents stays separate) and reentrant same-zone chains work;
 *  - self time never exceeds total, parents precede children (DFS);
 *  - collect(reset) opens a fresh attribution window;
 *  - a busy window attributes >= 80% of wall time to non-root zones
 *    (the acceptance gate's property, on a controlled workload);
 *  - scopes on worker threads merge into the one report;
 *  - an enabled profiler never moves simulated time or any golden stat
 *    (the never-moves-a-tick invariant; exercised for real under
 *    -DOVL_PROFILE=ON, trivially true in a default build).
 *
 * Note the tests drive prof::ScopedTimer directly rather than through
 * OVL_PROF_SCOPE: the class is always compiled, only the hot-path call
 * sites are macro-gated, so the subsystem is testable in every build.
 */

#include <cctype>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "sim/profile.hh"
#include "sim/stats_diff.hh"
#include "system/config.hh"
#include "workload/forkbench.hh"

using namespace ovl;

namespace
{

/** Spin for @p ms of host wall time (the profiler measures host time,
 *  so tests need real elapsed time, not simulated ticks). */
void
spinFor(double ms)
{
    using clock = std::chrono::steady_clock;
    clock::time_point end =
        clock::now() + std::chrono::duration_cast<clock::duration>(
                           std::chrono::duration<double, std::milli>(ms));
    while (clock::now() < end) {
    }
}

const prof::ZoneRow *
findRow(const prof::Report &report, const std::string &path)
{
    for (const prof::ZoneRow &row : report.rows) {
        if (row.path == path)
            return &row;
    }
    return nullptr;
}

/** The golden-figures slice: libq scaled down by 8, short epochs. */
ForkBenchParams
libqSlice()
{
    ForkBenchParams params = forkBenchByName("libq");
    params.warmupInstructions = 60'000;
    params.postForkInstructions = 300'000;
    params.footprintPages /= 8;
    params.hotPages /= 8;
    params.dirtyPages /= 8;
    return params;
}

} // namespace

TEST(Profile, ZoneNamesAreStableSlugs)
{
    EXPECT_STREQ(prof::zoneName(prof::Zone::TlbWalk), "tlb_walk");
    EXPECT_STREQ(prof::zoneName(prof::Zone::OmsAlloc), "oms_alloc");
    EXPECT_STREQ(prof::zoneName(prof::Zone::FunctionalFf),
                 "functional_ff");
    EXPECT_STREQ(prof::zoneName(prof::Zone::TlbMaint), "tlb_maint");
}

TEST(Profile, IdleScopesAreInertAndReportsEmpty)
{
    prof::collect(true); // flush any residue from earlier tests
    ASSERT_FALSE(prof::active());
    {
        prof::ScopedTimer t1(prof::Zone::Access);
        prof::ScopedTimer t2(prof::Zone::Dram);
    }
    prof::Report report = prof::collect();
    EXPECT_TRUE(report.rows.empty());
    EXPECT_EQ(report.attributedSeconds, 0.0);
    EXPECT_EQ(report.attributedFraction(), 0.0);
}

TEST(Profile, NestingBuildsPerPathRollups)
{
    prof::enable();
    for (int i = 0; i < 3; ++i) {
        prof::ScopedTimer access(prof::Zone::Access);
        {
            prof::ScopedTimer cache(prof::Zone::CacheLookup);
            prof::ScopedTimer dram(prof::Zone::Dram);
        }
        {
            prof::ScopedTimer omt(prof::Zone::OmtWalk);
            prof::ScopedTimer dram(prof::Zone::Dram);
        }
    }
    prof::disable();
    prof::Report report = prof::collect(true);

    const prof::ZoneRow *access = findRow(report, "access");
    ASSERT_NE(access, nullptr);
    EXPECT_EQ(access->count, 3u);
    EXPECT_EQ(access->depth, 1u);

    // The same zone under two different parents rolls up separately.
    const prof::ZoneRow *d1 = findRow(report, "access;cache_lookup;dram");
    const prof::ZoneRow *d2 = findRow(report, "access;omt_walk;dram");
    ASSERT_NE(d1, nullptr);
    ASSERT_NE(d2, nullptr);
    EXPECT_EQ(d1->count, 3u);
    EXPECT_EQ(d2->count, 3u);
    EXPECT_EQ(d1->depth, 3u);
    EXPECT_EQ(findRow(report, "dram"), nullptr);

    for (const prof::ZoneRow &row : report.rows) {
        EXPECT_GE(row.selfSeconds, 0.0) << row.path;
        EXPECT_GE(row.totalSeconds, row.selfSeconds) << row.path;
        EXPECT_GE(row.maxSeconds, 0.0) << row.path;
    }

    // DFS order: a parent path precedes every path it prefixes.
    for (std::size_t i = 0; i < report.rows.size(); ++i) {
        const std::string &path = report.rows[i].path;
        std::size_t cut = path.rfind(';');
        if (cut == std::string::npos)
            continue;
        std::string parent = path.substr(0, cut);
        bool seen = false;
        for (std::size_t j = 0; j < i; ++j)
            seen = seen || report.rows[j].path == parent;
        EXPECT_TRUE(seen) << "parent of " << path << " after child";
    }
}

TEST(Profile, ReentrantSameZoneChainsNest)
{
    prof::enable();
    {
        prof::ScopedTimer a(prof::Zone::EventQueue);
        {
            prof::ScopedTimer b(prof::Zone::EventQueue);
            prof::ScopedTimer c(prof::Zone::EventQueue);
        }
        {
            prof::ScopedTimer d(prof::Zone::EventQueue);
        }
    }
    prof::disable();
    prof::Report report = prof::collect(true);

    const prof::ZoneRow *top = findRow(report, "event_queue");
    const prof::ZoneRow *mid = findRow(report, "event_queue;event_queue");
    const prof::ZoneRow *leaf =
        findRow(report, "event_queue;event_queue;event_queue");
    ASSERT_NE(top, nullptr);
    ASSERT_NE(mid, nullptr);
    ASSERT_NE(leaf, nullptr);
    EXPECT_EQ(top->count, 1u);
    EXPECT_EQ(mid->count, 2u);
    EXPECT_EQ(leaf->count, 1u);
}

TEST(Profile, CollectWithResetStartsAFreshWindow)
{
    prof::enable();
    {
        prof::ScopedTimer t(prof::Zone::Fork);
    }
    prof::Report first = prof::collect(true);
    ASSERT_NE(findRow(first, "fork"), nullptr);

    {
        prof::ScopedTimer t(prof::Zone::Teardown);
    }
    prof::disable();
    prof::Report second = prof::collect(true);
    EXPECT_EQ(findRow(second, "fork"), nullptr);
    ASSERT_NE(findRow(second, "teardown"), nullptr);
    EXPECT_EQ(findRow(second, "teardown")->count, 1u);
}

TEST(Profile, BusyWindowAttributesMostOfWallTime)
{
    prof::enable();
    {
        prof::ScopedTimer access(prof::Zone::Access);
        spinFor(30.0);
    }
    prof::disable();
    prof::Report report = prof::collect(true);

    ASSERT_GT(report.wallSeconds, 0.0);
    ASSERT_NE(findRow(report, "access"), nullptr);
    EXPECT_GT(findRow(report, "access")->totalSeconds, 0.02);
    // The acceptance gate's property: a window dominated by scoped work
    // attributes at least 80% of wall time to non-root zones.
    EXPECT_GE(report.attributedFraction(), 0.8);
    EXPECT_LE(report.attributedFraction(), 1.2); // sane calibration
}

TEST(Profile, WorkerThreadTreesMergeIntoOneReport)
{
    prof::enable();
    {
        prof::ScopedTimer main_scope(prof::Zone::Access);
        spinFor(2.0);
    }
    std::thread worker([] {
        prof::ScopedTimer walk(prof::Zone::OmtWalk);
        prof::ScopedTimer dram(prof::Zone::Dram);
        spinFor(2.0);
    });
    worker.join();
    prof::disable();
    prof::Report report = prof::collect(true);

    EXPECT_NE(findRow(report, "access"), nullptr);
    const prof::ZoneRow *walk = findRow(report, "omt_walk");
    const prof::ZoneRow *dram = findRow(report, "omt_walk;dram");
    ASSERT_NE(walk, nullptr);
    ASSERT_NE(dram, nullptr);
    EXPECT_EQ(walk->count, 1u);
    EXPECT_EQ(dram->count, 1u);
}

TEST(Profile, JsonAndCollapsedWritersAreWellFormed)
{
    prof::enable();
    {
        prof::ScopedTimer access(prof::Zone::Access);
        prof::ScopedTimer cache(prof::Zone::CacheLookup);
        spinFor(5.0);
    }
    prof::disable();
    prof::Report report = prof::collect(true);

    std::ostringstream json;
    prof::writeJson(json, report);
    std::string text = json.str();
    EXPECT_NE(text.find("\"wall_seconds\":"), std::string::npos);
    EXPECT_NE(text.find("\"attributed_fraction\":"), std::string::npos);
    EXPECT_NE(text.find("\"zones\":"), std::string::npos);
    EXPECT_NE(text.find("\"access;cache_lookup\""), std::string::npos);
    // Balanced braces/brackets — the writer emits one JSON object.
    int depth = 0;
    for (char ch : text) {
        if (ch == '{' || ch == '[')
            ++depth;
        if (ch == '}' || ch == ']')
            --depth;
        EXPECT_GE(depth, 0);
    }
    EXPECT_EQ(depth, 0);

    std::ostringstream folded;
    prof::writeCollapsed(folded, report, "libq/cow");
    std::string line;
    std::istringstream lines(folded.str());
    bool saw_scope = false, saw_untracked = false;
    while (std::getline(lines, line)) {
        // "frame;frame <integer>" — value separated by one space.
        std::size_t space = line.rfind(' ');
        ASSERT_NE(space, std::string::npos) << line;
        EXPECT_EQ(line.rfind("libq/cow", 0) == 0 ||
                      line.find("(untracked)") != std::string::npos,
                  true)
            << line;
        for (std::size_t i = space + 1; i < line.size(); ++i)
            EXPECT_TRUE(std::isdigit(line[i])) << line;
        saw_scope = saw_scope ||
                    line.rfind("libq/cow;access;cache_lookup ", 0) == 0;
        saw_untracked =
            saw_untracked || line.find("(untracked)") != std::string::npos;
    }
    EXPECT_TRUE(saw_scope);
}

TEST(Profile, EnabledRunIsTickAndGoldenStatsIdenticalToPlain)
{
    ForkBenchParams params = libqSlice();

    std::ostringstream plain_stats;
    ForkBenchResult plain =
        runForkBench(params, ForkMode::OverlayOnWrite, SystemConfig{},
                     nullptr, nullptr, nullptr, &plain_stats);

    prof::enable();
    std::ostringstream profiled_stats;
    ForkBenchResult profiled =
        runForkBench(params, ForkMode::OverlayOnWrite, SystemConfig{},
                     nullptr, nullptr, nullptr, &profiled_stats);
    prof::disable();
    prof::Report report = prof::collect(true);

    // The never-moves-a-tick invariant: simulated results and the full
    // golden-stats dump are byte-identical with the profiler enabled.
    EXPECT_EQ(plain.cpi, profiled.cpi);
    EXPECT_EQ(plain.additionalMemoryMB, profiled.additionalMemoryMB);
    EXPECT_EQ(plain.forkLatency, profiled.forkLatency);
    EXPECT_EQ(plain.cowFaults, profiled.cowFaults);
    EXPECT_EQ(plain.overlayingWrites, profiled.overlayingWrites);
    EXPECT_EQ(plain_stats.str(), profiled_stats.str());

#ifdef OVL_PROFILE
    // With the call sites compiled in, the run populated real zones.
    EXPECT_FALSE(report.rows.empty());
    EXPECT_NE(findRow(report, "access"), nullptr);
#else
    EXPECT_TRUE(report.rows.empty());
#endif
}

// ----- stats-diff forensics --------------------------------------------

namespace
{

/** Write @p text to a temp file and return its path. */
std::string
writeTemp(const std::string &name, const std::string &text)
{
    std::string path = testing::TempDir() + name;
    std::ofstream os(path);
    os << text;
    return path;
}

} // namespace

TEST(StatsDiff, IdenticalDocsCompareEqual)
{
    const char *text = "{\"system\": {\"accesses\": 100, \"bad\": null},"
                       " \"dram\": {\"rowHits\": 7.5}}";
    statsdiff::Doc a = statsdiff::parseStatsJson(text);
    statsdiff::Doc b = statsdiff::parseStatsJson(text);
    statsdiff::DiffResult result = statsdiff::diff(a, b);
    EXPECT_TRUE(result.identical);
    EXPECT_EQ(result.diffCount, 0u);
    EXPECT_EQ(result.comparedCount, 3u);
}

TEST(StatsDiff, PinpointsAnInjectedSingleCounterPerturbation)
{
    const char *base = "{\"system\": {\"accesses\": 100, \"forks\": 1},"
                       " \"dram\": {\"reads\": 40, \"writes\": 10},"
                       " \"tlb\": {\"hits\": {\"buckets\": {\"0\": 3}}}}";
    const char *bumped = "{\"system\": {\"accesses\": 100, \"forks\": 1},"
                         " \"dram\": {\"reads\": 41, \"writes\": 10},"
                         " \"tlb\": {\"hits\": {\"buckets\": {\"0\": 3}}}}";
    statsdiff::Doc a = statsdiff::parseStatsJson(base);
    statsdiff::Doc b = statsdiff::parseStatsJson(bumped);
    statsdiff::DiffResult result = statsdiff::diff(a, b);
    EXPECT_FALSE(result.identical);
    EXPECT_EQ(result.diffCount, 1u);
    EXPECT_EQ(result.firstPath, "dram.reads");
    EXPECT_EQ(result.aValue, 40.0);
    EXPECT_EQ(result.bValue, 41.0);
}

TEST(StatsDiff, ReportsScalarsMissingFromEitherSide)
{
    statsdiff::Doc a =
        statsdiff::parseStatsJson("{\"g\": {\"x\": 1, \"y\": 2}}");
    statsdiff::Doc b =
        statsdiff::parseStatsJson("{\"g\": {\"x\": 1, \"z\": 3}}");
    statsdiff::DiffResult result = statsdiff::diff(a, b);
    EXPECT_FALSE(result.identical);
    EXPECT_EQ(result.firstPath, "g.y");
    EXPECT_TRUE(result.firstOnlyInA);
    EXPECT_EQ(result.diffCount, 2u); // g.y missing in b, g.z missing in a
}

TEST(StatsDiff, NullVsNumberDiverges)
{
    statsdiff::Doc a = statsdiff::parseStatsJson("{\"g\": {\"x\": null}}");
    statsdiff::Doc b = statsdiff::parseStatsJson("{\"g\": {\"x\": 0}}");
    statsdiff::DiffResult result = statsdiff::diff(a, b);
    EXPECT_FALSE(result.identical);
    EXPECT_EQ(result.firstPath, "g.x");
    EXPECT_TRUE(result.aNull);
    EXPECT_FALSE(result.bNull);
}

TEST(StatsDiff, ParserRejectsNonStatsGrammar)
{
    EXPECT_THROW(statsdiff::parseStatsJson("{\"a\": [1, 2]}"),
                 std::runtime_error);
    EXPECT_THROW(statsdiff::parseStatsJson("{\"a\": \"str\"}"),
                 std::runtime_error);
    EXPECT_THROW(statsdiff::parseStatsJson("{\"a\": 1,}"),
                 std::runtime_error);
    EXPECT_THROW(statsdiff::parseStatsJson("not json"),
                 std::runtime_error);
}

TEST(StatsDiff, CliRunnerRoundTripsThroughFiles)
{
    std::string a = writeTemp(
        "sd_a.json", "{\"system\": {\"accesses\": 100, \"forks\": 1}}\n");
    std::string b = writeTemp(
        "sd_b.json", "{\"system\": {\"accesses\": 100, \"forks\": 2}}\n");
    std::string junk = writeTemp("sd_junk.json", "{broken\n");

    // Exit codes: 0 identical, 1 differing, 2 unreadable/unparseable.
    EXPECT_EQ(statsdiff::runStatsDiff(a, a, nullptr), 0);
    EXPECT_EQ(statsdiff::runStatsDiff(a, b, nullptr), 1);
    EXPECT_EQ(statsdiff::runStatsDiff(a, junk, nullptr), 2);
    EXPECT_EQ(statsdiff::runStatsDiff(a, a + ".missing", nullptr), 2);

    // The human-readable report names the diverging scalar.
    std::string report_path = testing::TempDir() + "sd_report.txt";
    std::FILE *report = std::fopen(report_path.c_str(), "w+");
    ASSERT_NE(report, nullptr);
    EXPECT_EQ(statsdiff::runStatsDiff(a, b, report), 1);
    std::fclose(report);
    std::ifstream is(report_path);
    std::string text((std::istreambuf_iterator<char>(is)),
                     std::istreambuf_iterator<char>());
    EXPECT_NE(text.find("system.forks"), std::string::npos);
    EXPECT_NE(text.find("a: 1"), std::string::npos);
    EXPECT_NE(text.find("b: 2"), std::string::npos);
}
