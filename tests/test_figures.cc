/**
 * @file
 * Figure-shape guard tests: small, fast versions of the paper's
 * evaluation results that pin the *direction* of every headline claim,
 * so a regression in any model component that would flip a conclusion
 * fails CI long before the full benches are rerun.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/random.hh"
#include "cpu/ooo_core.hh"
#include "overlay/hw_cost.hh"
#include "sparse/csr.hh"
#include "sparse/overlay_matrix.hh"
#include "sparse/spmv.hh"
#include "workload/forkbench.hh"
#include "workload/matrixgen.hh"

namespace ovl
{
namespace
{

/** Run overlay and CSR SpMV on one generated matrix; return the pair. */
std::pair<SpmvResult, SpmvResult>
runPair(const MatrixSpec &spec, std::uint64_t *overlay_bytes,
        std::uint64_t *csr_bytes)
{
    CooMatrix coo = generateMatrix(spec);
    std::vector<double> x(coo.cols);
    Rng rng(3);
    for (double &v : x)
        v = rng.uniform();
    SpmvAddrs addrs;

    System ovl_sys((SystemConfig()));
    OooCore ovl_core("core", ovl_sys);
    Asid ovl_asid = ovl_sys.createProcess();
    installVectors(ovl_sys, ovl_asid, addrs, x, coo.rows);
    OverlayMatrix matrix(ovl_sys, ovl_asid, addrs.aBase);
    matrix.build(coo);
    SpmvResult overlay = spmvOverlay(ovl_sys, ovl_core, matrix, addrs, x, 0);
    if (overlay_bytes)
        *overlay_bytes = matrix.storedBytes();

    System csr_sys((SystemConfig()));
    OooCore csr_core("core", csr_sys);
    Asid csr_asid = csr_sys.createProcess();
    installVectors(csr_sys, csr_asid, addrs, x, coo.rows);
    CsrMatrix csr = CsrMatrix::fromCoo(coo);
    installCsr(csr_sys, csr_asid, addrs, csr);
    csr_sys.quiesce();
    SpmvResult csr_res = spmvCsr(csr_sys, csr_core, csr_asid, addrs, csr,
                                 x, 0);
    if (csr_bytes)
        *csr_bytes = csr.bytes();
    return {overlay, csr_res};
}

TEST(Figure10Shape, CsrWinsAtLowLocality)
{
    MatrixSpec spec;
    spec.targetL = 1.2;
    spec.nnz = 20'000;
    std::uint64_t ovl_bytes = 0, csr_bytes = 0;
    auto [overlay, csr] = runPair(spec, &ovl_bytes, &csr_bytes);
    EXPECT_GT(overlay.cycles, csr.cycles);  // paper: 0.30x perf at L=1.09
    EXPECT_GT(ovl_bytes, csr_bytes * 2);    // paper: 4.83x memory
}

TEST(Figure10Shape, OverlaysWinAtHighLocality)
{
    MatrixSpec spec;
    spec.family = MatrixFamily::BlockDense;
    spec.blockRunLines = 128;
    spec.targetL = 8.0;
    spec.nnz = 20'000;
    std::uint64_t ovl_bytes = 0, csr_bytes = 0;
    auto [overlay, csr] = runPair(spec, &ovl_bytes, &csr_bytes);
    EXPECT_LT(overlay.cycles, csr.cycles);  // paper: 1.92x perf at L=8
    EXPECT_LT(ovl_bytes, csr_bytes);        // paper: 0.66x memory
}

TEST(Figure10Shape, PerformanceImprovesMonotonicallyWithL)
{
    Tick prev = kMaxTick;
    for (double l : {1.5, 4.0, 7.5}) {
        MatrixSpec spec;
        spec.targetL = l;
        spec.nnz = 20'000;
        if (l >= 5.5) {
            spec.family = MatrixFamily::BlockDense;
            spec.blockRunLines = 128;
        }
        auto [overlay, csr] = runPair(spec, nullptr, nullptr);
        (void)csr;
        EXPECT_LT(overlay.cycles, prev) << "at L=" << l;
        prev = overlay.cycles;
    }
}

TEST(Figure10bShape, OverlayGainGrowsWithZeroLines)
{
    double prev_speedup = 0.0;
    for (double zero_frac : {0.2, 0.5, 0.8}) {
        CooMatrix coo = generateUniformSparsity(128, 128, zero_frac, 9);
        std::vector<double> x(coo.cols, 1.0);
        SpmvAddrs addrs;

        System d_sys((SystemConfig()));
        OooCore d_core("core", d_sys);
        Asid d_asid = d_sys.createProcess();
        installVectors(d_sys, d_asid, addrs, x, coo.rows);
        installDense(d_sys, d_asid, addrs.aBase, coo);
        d_sys.quiesce();
        SpmvResult dense = spmvDense(d_sys, d_core, d_asid, addrs,
                                     DenseLayout(coo.rows, coo.cols), x, 0);

        System o_sys((SystemConfig()));
        OooCore o_core("core", o_sys);
        Asid o_asid = o_sys.createProcess();
        installVectors(o_sys, o_asid, addrs, x, coo.rows);
        OverlayMatrix m(o_sys, o_asid, addrs.aBase);
        m.build(coo);
        SpmvResult overlay = spmvOverlay(o_sys, o_core, m, addrs, x, 0);

        double speedup = double(dense.cycles) / double(overlay.cycles);
        EXPECT_GT(speedup, prev_speedup)
            << "at zero fraction " << zero_frac;
        prev_speedup = speedup;
    }
    EXPECT_GT(prev_speedup, 1.5); // clearly ahead by 80% zero lines
}

TEST(Figure11Shape, OverheadGrowsWithGranularity)
{
    MatrixSpec spec;
    spec.targetL = 2.0;
    spec.nnz = 20'000;
    CooMatrix coo = generateMatrix(spec);
    double ideal = double(analyzeMatrix(coo, 64).nnz) * 8.0;
    double prev = 0.0;
    for (std::uint64_t block : {16ull, 64ull, 256ull, 4096ull}) {
        MatrixStats stats = analyzeMatrix(coo, block);
        double overhead = double(stats.nonZeroBlocks * block) / ideal;
        EXPECT_GE(overhead, prev) << "at block " << block;
        prev = overhead;
    }
    EXPECT_GT(prev, 4.0); // page granularity is many times the ideal
}

TEST(Figure9Shape, TypeThreeSpeedupExceedsTypeOne)
{
    auto speedup = [](const char *name) {
        ForkBenchParams p = forkBenchByName(name);
        p.warmupInstructions = 40'000;
        p.postForkInstructions = 400'000;
        ForkBenchResult cow =
            runForkBench(p, ForkMode::CopyOnWrite, SystemConfig{});
        ForkBenchResult oow =
            runForkBench(p, ForkMode::OverlayOnWrite, SystemConfig{});
        return cow.cpi / oow.cpi;
    };
    double type1 = speedup("bwaves");
    double type3 = speedup("mcf");
    EXPECT_GT(type3, type1);
    EXPECT_GT(type3, 1.1); // Type 3 is where overlays shine (Figure 9)
}

TEST(Section45Shape, HardwareCostStaysWithinBudget)
{
    // The paper's pitch depends on the added hardware being ~100 KB.
    HwCost cost = computeHwCost(HwCostParams{});
    EXPECT_LT(cost.totalBytes(), 100 * 1024u);
}

} // namespace
} // namespace ovl
