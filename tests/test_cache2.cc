/**
 * @file
 * Second-wave cache tests: randomized residency invariants (contents are
 * always a subset of inserted lines, never duplicated within a set, and
 * bounded by capacity), writeback conservation (every dirtied line is
 * either resident-dirty or was written back exactly once), and retag
 * interaction with the replacement state.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "cache/cache.hh"
#include "common/random.hh"

namespace ovl
{
namespace
{

CacheParams
smallCache(ReplPolicy policy)
{
    CacheParams p;
    p.sizeBytes = 8 * 1024;
    p.associativity = 4;
    p.replPolicy = policy;
    return p;
}

class CacheFuzz
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, ReplPolicy>>
{
};

TEST_P(CacheFuzz, DirtyDataIsNeverLost)
{
    auto [seed, policy] = GetParam();
    SetAssocCache cache("c", smallCache(policy));
    Rng rng(seed);

    // Host model: which lines are logically dirty and not yet written
    // back. A dirty line disappears from the model only via an eviction
    // or invalidation that reports dirty=true.
    std::set<Addr> dirty;
    auto handle_eviction = [&](const std::optional<Eviction> &ev) {
        if (!ev)
            return;
        if (ev->dirty) {
            ASSERT_EQ(dirty.erase(ev->lineAddr), 1u)
                << "writeback of a line never dirtied: " << std::hex
                << ev->lineAddr;
        } else {
            ASSERT_EQ(dirty.count(ev->lineAddr), 0u)
                << "clean eviction of a dirty line: " << std::hex
                << ev->lineAddr;
        }
    };

    for (int step = 0; step < 20'000; ++step) {
        Addr addr = rng.below(1024) << kLineShift; // 4x the capacity
        switch (rng.below(4)) {
          case 0: { // read
            handle_eviction(cache.access(addr, false).eviction);
            break;
          }
          case 1: { // write
            auto res = cache.access(addr, true);
            handle_eviction(res.eviction);
            dirty.insert(addr);
            break;
          }
          case 2: { // clean fill (e.g., prefetch)
            handle_eviction(cache.fill(addr, false, rng.chance(0.5)));
            break;
          }
          case 3: { // invalidate
            if (rng.chance(0.2))
                handle_eviction(cache.invalidate(addr));
            break;
          }
        }
    }
    // Whatever the model says is dirty must still be resident.
    for (Addr addr : dirty)
        ASSERT_TRUE(cache.isPresent(addr)) << std::hex << addr;
    // And flushing surrenders exactly those lines.
    std::set<Addr> flushed;
    cache.writebackAll([&](Addr a) { flushed.insert(a); });
    EXPECT_EQ(flushed, dirty);
}

TEST_P(CacheFuzz, ResidencyNeverExceedsCapacity)
{
    auto [seed, policy] = GetParam();
    SetAssocCache cache("c", smallCache(policy));
    Rng rng(seed + 17);
    std::set<Addr> inserted;
    for (int step = 0; step < 10'000; ++step) {
        Addr addr = rng.below(4096) << kLineShift;
        cache.access(addr, rng.chance(0.3));
        inserted.insert(addr);
    }
    std::uint64_t resident = 0;
    for (Addr addr : inserted)
        resident += cache.isPresent(addr);
    EXPECT_LE(resident, smallCache(policy).sizeBytes / kLineSize);
    // Nothing is resident that was never inserted (spot probes).
    for (int probe = 0; probe < 100; ++probe) {
        Addr addr = (4096 + rng.below(4096)) << kLineShift;
        EXPECT_FALSE(cache.isPresent(addr));
    }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndPolicies, CacheFuzz,
    ::testing::Combine(::testing::Values(1u, 2u, 3u),
                       ::testing::Values(ReplPolicy::LRU,
                                         ReplPolicy::DRRIP,
                                         ReplPolicy::Random)));

TEST(CacheRetag, RetaggedLineIsEvictableNormally)
{
    SetAssocCache cache("c", smallCache(ReplPolicy::LRU));
    cache.access(0x0, true);
    Addr overlay = Addr(0x0) | (Addr(1) << 63);
    ASSERT_TRUE(cache.retag(0x0, overlay));
    // Fill the set; the retagged line must participate in replacement
    // and surface its dirtiness when displaced.
    Addr stride = Addr(cache.numSets()) * kLineSize;
    bool saw_dirty_overlay = false;
    for (unsigned i = 1; i <= 4; ++i) {
        auto res = cache.access(Addr(i) * stride, false);
        if (res.eviction && res.eviction->lineAddr == overlay) {
            EXPECT_TRUE(res.eviction->dirty);
            saw_dirty_overlay = true;
        }
    }
    EXPECT_TRUE(saw_dirty_overlay);
}

TEST(CacheRetag, RetagToOccupiedDestinationFails)
{
    SetAssocCache cache("c", smallCache(ReplPolicy::LRU));
    Addr overlay = Addr(0x0) | (Addr(1) << 63);
    cache.access(0x0, false);
    cache.access(overlay, false);
    EXPECT_FALSE(cache.retag(0x0, overlay));
    EXPECT_TRUE(cache.isPresent(0x0));
    EXPECT_TRUE(cache.isPresent(overlay));
}

} // namespace
} // namespace ovl
