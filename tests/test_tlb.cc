/**
 * @file
 * Tests for the two-level TLB with OBitVector extension and the
 * overlaying-read-exclusive coherence hook (§4.3.3).
 */

#include <gtest/gtest.h>

#include "tlb/tlb.hh"

namespace ovl
{
namespace
{

TlbEntryData
entry(Addr ppn)
{
    TlbEntryData d;
    d.ppn = ppn;
    d.writable = true;
    return d;
}

TEST(Tlb, MissThenHit)
{
    Tlb tlb("tlb", TlbParams{64, 4, 1});
    EXPECT_EQ(tlb.lookup(1, 100), nullptr);
    tlb.insert(1, 100, entry(7));
    TlbEntryData *e = tlb.lookup(1, 100);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->ppn, 7u);
    EXPECT_EQ(tlb.hits(), 1u);
    EXPECT_EQ(tlb.misses(), 1u);
}

TEST(Tlb, AsidsAreDisjoint)
{
    Tlb tlb("tlb", TlbParams{64, 4, 1});
    tlb.insert(1, 100, entry(7));
    EXPECT_EQ(tlb.lookup(2, 100), nullptr);
    tlb.insert(2, 100, entry(9));
    EXPECT_EQ(tlb.lookup(1, 100)->ppn, 7u);
    EXPECT_EQ(tlb.lookup(2, 100)->ppn, 9u);
}

TEST(Tlb, InsertEvictsLruWithinSet)
{
    Tlb tlb("tlb", TlbParams{8, 2, 1}); // 4 sets, 2 ways
    // Same set: VPNs congruent mod 4.
    tlb.insert(1, 0, entry(10));
    tlb.insert(1, 4, entry(11));
    tlb.lookup(1, 0); // refresh vpn 0
    tlb.insert(1, 8, entry(12)); // evicts vpn 4
    EXPECT_NE(tlb.lookup(1, 0), nullptr);
    EXPECT_EQ(tlb.lookup(1, 4), nullptr);
    EXPECT_NE(tlb.lookup(1, 8), nullptr);
}

TEST(Tlb, ReinsertUpdatesInPlace)
{
    Tlb tlb("tlb", TlbParams{8, 2, 1});
    tlb.insert(1, 0, entry(10));
    tlb.insert(1, 0, entry(20));
    EXPECT_EQ(tlb.lookup(1, 0)->ppn, 20u);
}

TEST(Tlb, InvalidateAsidDropsOnlyThatProcess)
{
    Tlb tlb("tlb", TlbParams{64, 4, 1});
    tlb.insert(1, 5, entry(1));
    tlb.insert(2, 5, entry(2));
    tlb.invalidateAsid(1);
    EXPECT_EQ(tlb.lookup(1, 5), nullptr);
    EXPECT_NE(tlb.lookup(2, 5), nullptr);
}

TEST(Tlb, CoherenceUpdatesObvBit)
{
    Tlb tlb("tlb", TlbParams{64, 4, 1});
    tlb.insert(1, 5, entry(1));
    EXPECT_TRUE(tlb.updateObvBit(1, 5, 13, true));
    EXPECT_TRUE(tlb.lookup(1, 5)->obv.test(13));
    EXPECT_TRUE(tlb.updateObvBit(1, 5, 13, false));
    EXPECT_FALSE(tlb.lookup(1, 5)->obv.test(13));
    // Absent mappings report false (no TLB holds the page).
    EXPECT_FALSE(tlb.updateObvBit(1, 99, 0, true));
}

TEST(TwoLevelTlb, L1HitLatency)
{
    TwoLevelTlb tlb("tlb", TlbHierarchyParams{});
    tlb.fill(1, 42, entry(3));
    TlbAccessResult res = tlb.access(1, 42);
    ASSERT_NE(res.entry, nullptr);
    EXPECT_FALSE(res.needsWalk);
    EXPECT_EQ(res.latency, 1u);
}

TEST(TwoLevelTlb, L2HitPromotesToL1)
{
    TwoLevelTlb tlb("tlb", TlbHierarchyParams{});
    tlb.fill(1, 42, entry(3));
    tlb.l1().invalidate(1, 42);
    TlbAccessResult res = tlb.access(1, 42);
    ASSERT_NE(res.entry, nullptr);
    EXPECT_EQ(res.latency, 1u + 10u); // L1 miss + L2 hit
    // Promoted: next access is an L1 hit.
    EXPECT_EQ(tlb.access(1, 42).latency, 1u);
}

TEST(TwoLevelTlb, FullMissChargesWalk)
{
    TwoLevelTlb tlb("tlb", TlbHierarchyParams{});
    TlbAccessResult res = tlb.access(1, 42);
    EXPECT_TRUE(res.needsWalk);
    EXPECT_EQ(res.entry, nullptr);
    EXPECT_EQ(res.latency, 1u + 10u + 1000u); // Table 2: miss = 1000
}

TEST(TwoLevelTlb, CoherenceReachesBothLevels)
{
    TwoLevelTlb tlb("tlb", TlbHierarchyParams{});
    tlb.fill(1, 42, entry(3));
    EXPECT_TRUE(tlb.updateObvBit(1, 42, 7, true));
    EXPECT_TRUE(tlb.l1().probe(1, 42)->obv.test(7));
    EXPECT_TRUE(tlb.l2().probe(1, 42)->obv.test(7));
}

TEST(TwoLevelTlb, InvalidateDropsBothLevels)
{
    TwoLevelTlb tlb("tlb", TlbHierarchyParams{});
    tlb.fill(1, 42, entry(3));
    tlb.invalidate(1, 42);
    EXPECT_TRUE(tlb.access(1, 42).needsWalk);
}

TEST(TwoLevelTlb, ReturnedEntryPointsIntoL1)
{
    // Coherence updates through the returned pointer must be the copy
    // the core actually reads (the L1 entry).
    TwoLevelTlb tlb("tlb", TlbHierarchyParams{});
    TlbEntryData *filled = tlb.fill(1, 42, entry(3));
    filled->obv.set(11);
    EXPECT_TRUE(tlb.l1().probe(1, 42)->obv.test(11));
}

} // namespace
} // namespace ovl
