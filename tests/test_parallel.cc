/** @file Tests for the parallel sweep runner (src/sim/parallel.hh). */

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sim/parallel.hh"
#include "workload/forkbench.hh"

using namespace ovl;

TEST(Parallel, EmptyInputReturnsEmpty)
{
    std::vector<int> serial =
        parallelMap(0, [](std::size_t) { return 1; }, 1);
    EXPECT_TRUE(serial.empty());
    std::vector<int> parallel =
        parallelMap(0, [](std::size_t) { return 1; }, 8);
    EXPECT_TRUE(parallel.empty());
}

TEST(Parallel, SingleItemRunsInline)
{
    std::vector<std::size_t> out =
        parallelMap(1, [](std::size_t i) { return i + 41; }, 8);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], 41u);
}

TEST(Parallel, ResultsAreInInputOrder)
{
    constexpr std::size_t kItems = 257;
    auto square = [](std::size_t i) { return i * i; };
    std::vector<std::size_t> serial = parallelMap(kItems, square, 1);
    for (unsigned jobs : {2u, 4u, 8u}) {
        std::vector<std::size_t> parallel =
            parallelMap(kItems, square, jobs);
        EXPECT_EQ(parallel, serial) << "jobs=" << jobs;
    }
}

TEST(Parallel, MoreJobsThanItemsIsFine)
{
    std::vector<std::size_t> out =
        parallelMap(3, [](std::size_t i) { return i; }, 64);
    EXPECT_EQ(out, (std::vector<std::size_t>{0, 1, 2}));
}

TEST(Parallel, NonTrivialResultType)
{
    std::vector<std::string> out = parallelMap(
        50, [](std::size_t i) { return std::string(i, 'x'); }, 4);
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i].size(), i);
}

TEST(Parallel, WorkerExceptionPropagates)
{
    auto fn = [](std::size_t i) {
        if (i == 7)
            throw std::runtime_error("item 7 failed");
        return int(i);
    };
    EXPECT_THROW({ parallelMap(16, fn, 4); }, std::runtime_error);
    EXPECT_THROW({ parallelMap(16, fn, 1); }, std::runtime_error);
}

TEST(Parallel, LowestIndexExceptionWins)
{
    // Multiple failures: the rethrown exception is the lowest-index one,
    // matching what a serial run would hit first.
    auto fn = [](std::size_t i) -> int {
        if (i % 2 == 0)
            throw std::runtime_error("item " + std::to_string(i));
        return int(i);
    };
    for (unsigned jobs : {1u, 4u}) {
        try {
            parallelMap(10, fn, jobs);
            FAIL() << "expected an exception (jobs=" << jobs << ")";
        } catch (const std::runtime_error &e) {
            EXPECT_STREQ(e.what(), "item 0") << "jobs=" << jobs;
        }
    }
}

TEST(Parallel, AllItemsRunExactlyOnce)
{
    constexpr std::size_t kItems = 500;
    std::vector<std::atomic<unsigned>> hits(kItems);
    parallelMap(
        kItems,
        [&hits](std::size_t i) {
            hits[i].fetch_add(1, std::memory_order_relaxed);
            return 0;
        },
        8);
    for (std::size_t i = 0; i < kItems; ++i)
        EXPECT_EQ(hits[i].load(), 1u) << "item " << i;
}

TEST(Parallel, JobsFromCommandLineParsesForms)
{
    {
        const char *argv[] = {"prog", "--jobs", "3"};
        EXPECT_EQ(jobsFromCommandLine(3, const_cast<char **>(argv)), 3u);
    }
    {
        const char *argv[] = {"prog", "--jobs=5"};
        EXPECT_EQ(jobsFromCommandLine(2, const_cast<char **>(argv)), 5u);
    }
    {
        const char *argv[] = {"prog"};
        EXPECT_GE(jobsFromCommandLine(1, const_cast<char **>(argv)), 1u);
    }
}

TEST(Parallel, DefaultJobsHonorsEnvironment)
{
    ASSERT_EQ(setenv("OVL_JOBS", "6", 1), 0);
    EXPECT_EQ(defaultJobs(), 6u);
    ASSERT_EQ(unsetenv("OVL_JOBS"), 0);
    EXPECT_GE(defaultJobs(), 1u);
}

TEST(Parallel, ProgressFlagParsesAndEnables)
{
    setProgressEnabled(false);
    const char *argv[] = {"prog", "--progress", "--jobs", "2"};
    EXPECT_EQ(jobsFromCommandLine(4, const_cast<char **>(argv)), 2u);
    EXPECT_TRUE(progressEnabled());
    setProgressEnabled(false);
    EXPECT_FALSE(progressEnabled());
}

namespace
{

/** Run a labelled sweep capturing stderr; returns the progress text. */
std::string
sweepWithProgress(unsigned jobs, std::vector<std::size_t> &out)
{
    testing::internal::CaptureStderr();
    out = parallelMap(
        5, [](std::size_t i) { return i * 3; }, jobs,
        [](std::size_t i) { return "item-" + std::to_string(i); });
    return testing::internal::GetCapturedStderr();
}

} // namespace

TEST(Parallel, ProgressReportsEveryItemOnStderrOnly)
{
    setProgressEnabled(true);
    for (unsigned jobs : {1u, 4u}) {
        std::vector<std::size_t> results;
        std::string err = sweepWithProgress(jobs, results);
        // Results are unaffected by progress reporting.
        EXPECT_EQ(results, (std::vector<std::size_t>{0, 3, 6, 9, 12}))
            << "jobs=" << jobs;
        // One line per item, plus one telemetry summary per worker on
        // the threaded path; k counts completions so [5/5] always
        // appears, and every label appears exactly once.
        std::size_t lines = 0;
        for (char c : err)
            lines += c == '\n';
        std::size_t worker_lines = jobs > 1 ? jobs : 0;
        EXPECT_EQ(lines, 5u + worker_lines) << "jobs=" << jobs << "\n"
                                            << err;
        EXPECT_NE(err.find("[5/5]"), std::string::npos) << err;
        for (unsigned i = 0; i < 5; ++i) {
            std::string label = "item-" + std::to_string(i) + " done";
            EXPECT_NE(err.find(label), std::string::npos)
                << "jobs=" << jobs << "\n" << err;
        }
    }
    setProgressEnabled(false);
}

TEST(Parallel, ProgressStderrStaysWellFormedWhenAWorkerThrows)
{
    // A worker throwing mid-sweep must not deadlock the pool, must still
    // rethrow on the caller, and every stderr line the reporter did
    // print stays whole (one fprintf per line, no interleaving).
    setProgressEnabled(true);
    testing::internal::CaptureStderr();
    auto fn = [](std::size_t i) {
        if (i == 3)
            throw std::runtime_error("item 3 failed");
        return int(i);
    };
    EXPECT_THROW(
        {
            parallelMap(12, fn, 4, [](std::size_t i) {
                return "item-" + std::to_string(i);
            });
        },
        std::runtime_error);
    std::string err = testing::internal::GetCapturedStderr();
    setProgressEnabled(false);

    // Every line is one complete record: an item-done line, or a
    // worker-telemetry summary. The thrown item reports no done line.
    std::size_t item_lines = 0, worker_lines = 0, pos = 0;
    while (pos < err.size()) {
        std::size_t eol = err.find('\n', pos);
        ASSERT_NE(eol, std::string::npos) << "unterminated line: "
                                          << err.substr(pos);
        std::string line = err.substr(pos, eol - pos);
        pos = eol + 1;
        if (line.rfind("[worker ", 0) == 0) {
            ++worker_lines;
            EXPECT_NE(line.find("busy"), std::string::npos) << line;
            EXPECT_NE(line.find("idle"), std::string::npos) << line;
        } else {
            ++item_lines;
            EXPECT_EQ(line.rfind("[", 0), 0u) << line;
            EXPECT_NE(line.find(" done (wall "), std::string::npos)
                << line;
        }
    }
    EXPECT_EQ(item_lines, 11u) << err; // 12 items, one threw
    EXPECT_EQ(err.find("item-3 done"), std::string::npos) << err;
    EXPECT_EQ(worker_lines, 4u) << err;
}

TEST(Parallel, WorkerTelemetryAccountsForEveryItem)
{
    setProgressEnabled(true);
    testing::internal::CaptureStderr();
    parallelMap(
        9, [](std::size_t i) { return i; }, 3,
        [](std::size_t i) { return "t-" + std::to_string(i); });
    std::string err = testing::internal::GetCapturedStderr();
    setProgressEnabled(false);

    // One "[worker w/3] N items, busy Bs, idle Is" line per worker, and
    // the per-worker item counts sum to the sweep size.
    std::size_t total_items = 0, worker_lines = 0, pos = 0;
    while ((pos = err.find("[worker ", pos)) != std::string::npos) {
        ++worker_lines;
        std::size_t bracket = err.find(']', pos);
        ASSERT_NE(bracket, std::string::npos);
        EXPECT_NE(err.find("/3]", pos), std::string::npos);
        total_items +=
            std::strtoull(err.c_str() + bracket + 1, nullptr, 10);
        pos = bracket;
    }
    EXPECT_EQ(worker_lines, 3u) << err;
    EXPECT_EQ(total_items, 9u) << err;

    // The serial path (jobs=1) prints item lines but no worker summary.
    testing::internal::CaptureStderr();
    setProgressEnabled(true);
    parallelMap(
        3, [](std::size_t i) { return i; }, 1,
        [](std::size_t i) { return "s-" + std::to_string(i); });
    std::string serial_err = testing::internal::GetCapturedStderr();
    setProgressEnabled(false);
    EXPECT_EQ(serial_err.find("[worker "), std::string::npos)
        << serial_err;
}

TEST(Parallel, ProgressSilentWhenDisabledOrUnlabelled)
{
    setProgressEnabled(false);
    std::vector<std::size_t> results;
    std::string err = sweepWithProgress(4, results);
    EXPECT_EQ(err, "");

    // Enabled but the sweep provides no labels: nothing to report.
    setProgressEnabled(true);
    testing::internal::CaptureStderr();
    parallelMap(4, [](std::size_t i) { return i; }, 2);
    EXPECT_EQ(testing::internal::GetCapturedStderr(), "");
    setProgressEnabled(false);
}

namespace
{

void
expectSameResult(const ForkBenchResult &a, const ForkBenchResult &b)
{
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.type, b.type);
    EXPECT_EQ(a.mode, b.mode);
    EXPECT_DOUBLE_EQ(a.additionalMemoryMB, b.additionalMemoryMB);
    EXPECT_DOUBLE_EQ(a.cpi, b.cpi);
    EXPECT_EQ(a.cowFaults, b.cowFaults);
    EXPECT_EQ(a.overlayingWrites, b.overlayingWrites);
    EXPECT_EQ(a.forkLatency, b.forkLatency);
}

} // namespace

/**
 * The determinism contract end to end: a fig09-style sweep (independent
 * Systems per item) produces identical ForkBenchResults serial and
 * parallel — every simulated tick and stat, not just the printed text.
 */
TEST(Parallel, ForkSweepIsDeterministicAcrossJobCounts)
{
    ForkBenchParams params = forkBenchByName("mcf");
    params.warmupInstructions = 20'000;
    params.postForkInstructions = 100'000;
    params.footprintPages /= 16;
    params.hotPages /= 16;
    params.dirtyPages /= 16;

    auto runOne = [&params](std::size_t i) {
        ForkMode mode =
            i % 2 ? ForkMode::OverlayOnWrite : ForkMode::CopyOnWrite;
        return runForkBench(params, mode, SystemConfig{});
    };
    std::vector<ForkBenchResult> serial = parallelMap(4, runOne, 1);
    std::vector<ForkBenchResult> parallel = parallelMap(4, runOne, 4);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        SCOPED_TRACE("item " + std::to_string(i));
        expectSameResult(serial[i], parallel[i]);
    }
}
