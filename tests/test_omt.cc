/**
 * @file
 * Tests for the Overlay Mapping Table and the memory-controller OMT
 * cache (§4.2, §4.4.4).
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/random.hh"
#include "overlay/omt.hh"

namespace ovl
{
namespace
{

/** Page-bump allocator hook for the devirtualized PageAllocFn. */
Addr
bumpPage(void *ctx)
{
    return *static_cast<Addr *>(ctx) += kPageSize;
}

class OmtTest : public ::testing::Test
{
  protected:
    Addr next_ = 0x100000;
    Omt omt{"omt", PageAllocFn{&bumpPage, &next_}};
};

TEST_F(OmtTest, FindOrCreateAndErase)
{
    EXPECT_EQ(omt.find(42), nullptr);
    OmtEntry &e = omt.findOrCreate(42);
    e.obv.set(3);
    ASSERT_NE(omt.find(42), nullptr);
    EXPECT_TRUE(omt.find(42)->obv.test(3));
    EXPECT_EQ(omt.size(), 1u);
    omt.erase(42);
    EXPECT_EQ(omt.find(42), nullptr);
    EXPECT_EQ(omt.size(), 0u);
}

TEST_F(OmtTest, WalkTouchesFourLevelsForExistingEntries)
{
    // Walks never allocate: an absent subtree terminates immediately...
    std::vector<Addr> walk;
    omt.walkAddresses(0x12345, walk);
    EXPECT_TRUE(walk.empty());
    // ...while entry creation materializes the full radix path.
    omt.findOrCreate(0x12345);
    omt.walkAddresses(0x12345, walk);
    EXPECT_EQ(walk.size(), Omt::kWalkLevels);
}

TEST_F(OmtTest, WalkOfNeighbouringAbsentEntryStopsAtSharedLevels)
{
    omt.findOrCreate(0x12345);
    // A nearby OPN shares the upper levels but has no deeper nodes of
    // its own (same leaf range here, so the walk reaches the leaf).
    std::vector<Addr> walk;
    omt.walkAddresses(0x12346, walk);
    EXPECT_EQ(walk.size(), Omt::kWalkLevels);
    // A distant OPN diverges at the root's child: only the root exists.
    omt.walkAddresses(Addr(1) << 40, walk);
    EXPECT_LT(walk.size(), Omt::kWalkLevels);
}

TEST_F(OmtTest, NearbyOpnsShareUpperLevels)
{
    omt.findOrCreate(0x1000);
    omt.findOrCreate(0x1001);
    std::vector<Addr> walk_a, walk_b;
    omt.walkAddresses(0x1000, walk_a);
    omt.walkAddresses(0x1001, walk_b);
    ASSERT_EQ(walk_a.size(), Omt::kWalkLevels);
    ASSERT_EQ(walk_b.size(), Omt::kWalkLevels);
    // Adjacent OPNs share the root and differ (at most) in the leaf.
    EXPECT_EQ(walk_a[0], walk_b[0]);
    EXPECT_EQ(walk_a[1], walk_b[1]);
    EXPECT_EQ(walk_a[2], walk_b[2]);
}

TEST_F(OmtTest, DistantOpnsDivergeEarly)
{
    omt.findOrCreate(0x0);
    omt.findOrCreate(Addr(1) << 35);
    std::vector<Addr> walk_a, walk_b;
    omt.walkAddresses(0x0, walk_a);
    omt.walkAddresses(Addr(1) << 35, walk_b);
    ASSERT_EQ(walk_a.size(), Omt::kWalkLevels);
    ASSERT_EQ(walk_b.size(), Omt::kWalkLevels);
    EXPECT_NE(walk_a[3], walk_b[3]);
}

TEST_F(OmtTest, NodeBytesGrowWithFootprint)
{
    omt.findOrCreate(0);
    std::uint64_t first = omt.nodeBytes();
    EXPECT_GT(first, 0u);
    omt.findOrCreate(Addr(1) << 40);
    EXPECT_GT(omt.nodeBytes(), first);
}

TEST_F(OmtTest, EraseOfMruCachedEntryIsVisibleImmediately)
{
    // Regression guard for the one-entry MRU cache: erasing the OPN that
    // is currently cached must drop the cached pointer, or the very next
    // find() would resurrect the dead entry.
    OmtEntry &e = omt.findOrCreate(77); // 77 is now the MRU entry
    e.obv.set(5);
    omt.erase(77);
    EXPECT_EQ(omt.find(77), nullptr);
    // Re-creating it must yield a pristine entry, not the stale payload.
    OmtEntry &fresh = omt.findOrCreate(77);
    EXPECT_FALSE(fresh.obv.test(5));
}

TEST_F(OmtTest, EraseThenArenaReuseCannotAliasTheMru)
{
    // The erased entry's arena slot is recycled by the next creation; a
    // stale MRU pointer for the erased OPN would alias the new OPN's
    // entry. find(old) after the reuse must still say "gone".
    omt.findOrCreate(100).obv.set(1);
    omt.erase(100);
    OmtEntry &reused = omt.findOrCreate(200); // recycles 100's slot
    reused.obv.set(2);
    EXPECT_EQ(omt.find(100), nullptr);
    ASSERT_NE(omt.find(200), nullptr);
    EXPECT_TRUE(omt.find(200)->obv.test(2));
    EXPECT_FALSE(omt.find(200)->obv.test(1));
}

TEST(OmtSparsity, ScatteredOpnsStayCompactAndCorrect)
{
    // Property: OPNs scattered across the full 51-bit overlay space must
    // not blow the table up — storage is one small chunk per populated
    // 512-OPN window, never a dense index over the OPN itself. (A dense
    // table over 2^51 OPNs would fail this test by running out of
    // memory long before it finished.)
    Addr next = 0x100000;
    Omt omt("omt", PageAllocFn{&bumpPage, &next});
    Rng rng(21);
    std::vector<Opn> opns;
    for (int i = 0; i < 1000; ++i) {
        Opn opn = (Opn(1) << 50) | (rng.next() & ((Opn(1) << 50) - 1));
        if (omt.find(opn) != nullptr)
            continue; // rare collision
        omt.findOrCreate(opn).obv.set(unsigned(opn) & 63);
        opns.push_back(opn);
    }
    EXPECT_EQ(omt.size(), opns.size());
    // Every populated window holds at least one live entry.
    EXPECT_LE(omt.chunkCount(), opns.size());

    std::vector<Addr> walk;
    for (Opn opn : opns) {
        ASSERT_NE(omt.find(opn), nullptr);
        EXPECT_TRUE(omt.find(opn)->obv.test(unsigned(opn) & 63));
        // Created entries have a full radix path, and the cached-chunk
        // walk must agree with the generic node-map walk's last level.
        omt.walkAddresses(opn, walk);
        ASSERT_EQ(walk.size(), Omt::kWalkLevels);
        EXPECT_EQ(omt.walkLastAddr(opn), walk.back());
    }

    // Erase half; the survivors must be unaffected.
    for (std::size_t i = 0; i < opns.size(); i += 2)
        omt.erase(opns[i]);
    for (std::size_t i = 0; i < opns.size(); ++i) {
        if (i % 2 == 0) {
            EXPECT_EQ(omt.find(opns[i]), nullptr);
        } else {
            ASSERT_NE(omt.find(opns[i]), nullptr);
            EXPECT_TRUE(
                omt.find(opns[i])->obv.test(unsigned(opns[i]) & 63));
        }
    }
}

TEST(OmtCache, HitAfterMiss)
{
    OmtCache cache("omtc", OmtCacheParams{});
    EXPECT_FALSE(cache.lookupAllocate(7).hit);
    EXPECT_TRUE(cache.lookupAllocate(7).hit);
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.misses(), 1u);
}

TEST(OmtCache, Is64EntriesAnd4KBofSram)
{
    // §4.5: 64 entries x 512 bits = 4 KB.
    OmtCache cache("omtc", OmtCacheParams{});
    EXPECT_EQ(cache.params().entries, 64u);
    EXPECT_EQ(cache.storageBits(), 64u * 512u);
    EXPECT_EQ(cache.storageBits() / 8, 4096u);
}

TEST(OmtCache, EvictionWritesBackModifiedEntries)
{
    OmtCacheParams params;
    params.entries = 4;
    params.associativity = 2; // 2 sets
    OmtCache cache("omtc", params);

    // Fill set 0 (even OPNs) and modify one entry.
    cache.lookupAllocate(0);
    cache.lookupAllocate(2);
    cache.markModified(0);
    // Next even OPN evicts the LRU (0), which is modified.
    auto res = cache.lookupAllocate(4);
    EXPECT_FALSE(res.hit);
    EXPECT_TRUE(res.needsWriteback);
    EXPECT_EQ(res.writebackOpn, 0u);
}

TEST(OmtCache, CleanEvictionNeedsNoWriteback)
{
    OmtCacheParams params;
    params.entries = 4;
    params.associativity = 2;
    OmtCache cache("omtc", params);
    cache.lookupAllocate(0);
    cache.lookupAllocate(2);
    auto res = cache.lookupAllocate(4);
    EXPECT_FALSE(res.needsWriteback);
}

TEST(OmtCache, InvalidateReportsModified)
{
    OmtCache cache("omtc", OmtCacheParams{});
    cache.lookupAllocate(9);
    cache.markModified(9);
    EXPECT_TRUE(cache.isPresent(9));
    EXPECT_TRUE(cache.invalidate(9));
    EXPECT_FALSE(cache.isPresent(9));
    EXPECT_FALSE(cache.invalidate(9)); // already gone
}

TEST(OmtCache, LruWithinSet)
{
    OmtCacheParams params;
    params.entries = 4;
    params.associativity = 2;
    OmtCache cache("omtc", params);
    cache.lookupAllocate(0);
    cache.lookupAllocate(2);
    cache.lookupAllocate(0); // refresh 0
    cache.lookupAllocate(4); // evicts 2
    EXPECT_TRUE(cache.isPresent(0));
    EXPECT_FALSE(cache.isPresent(2));
    EXPECT_TRUE(cache.isPresent(4));
}

} // namespace
} // namespace ovl
