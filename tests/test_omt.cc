/**
 * @file
 * Tests for the Overlay Mapping Table and the memory-controller OMT
 * cache (§4.2, §4.4.4).
 */

#include <gtest/gtest.h>

#include "overlay/omt.hh"

namespace ovl
{
namespace
{

class OmtTest : public ::testing::Test
{
  protected:
    Addr next_ = 0x100000;
    Omt omt{"omt", [this] { return next_ += kPageSize; }};
};

TEST_F(OmtTest, FindOrCreateAndErase)
{
    EXPECT_EQ(omt.find(42), nullptr);
    OmtEntry &e = omt.findOrCreate(42);
    e.obv.set(3);
    ASSERT_NE(omt.find(42), nullptr);
    EXPECT_TRUE(omt.find(42)->obv.test(3));
    EXPECT_EQ(omt.size(), 1u);
    omt.erase(42);
    EXPECT_EQ(omt.find(42), nullptr);
    EXPECT_EQ(omt.size(), 0u);
}

TEST_F(OmtTest, WalkTouchesFourLevelsForExistingEntries)
{
    // Walks never allocate: an absent subtree terminates immediately...
    std::vector<Addr> walk;
    omt.walkAddresses(0x12345, walk);
    EXPECT_TRUE(walk.empty());
    // ...while entry creation materializes the full radix path.
    omt.findOrCreate(0x12345);
    omt.walkAddresses(0x12345, walk);
    EXPECT_EQ(walk.size(), Omt::kWalkLevels);
}

TEST_F(OmtTest, WalkOfNeighbouringAbsentEntryStopsAtSharedLevels)
{
    omt.findOrCreate(0x12345);
    // A nearby OPN shares the upper levels but has no deeper nodes of
    // its own (same leaf range here, so the walk reaches the leaf).
    std::vector<Addr> walk;
    omt.walkAddresses(0x12346, walk);
    EXPECT_EQ(walk.size(), Omt::kWalkLevels);
    // A distant OPN diverges at the root's child: only the root exists.
    omt.walkAddresses(Addr(1) << 40, walk);
    EXPECT_LT(walk.size(), Omt::kWalkLevels);
}

TEST_F(OmtTest, NearbyOpnsShareUpperLevels)
{
    omt.findOrCreate(0x1000);
    omt.findOrCreate(0x1001);
    std::vector<Addr> walk_a, walk_b;
    omt.walkAddresses(0x1000, walk_a);
    omt.walkAddresses(0x1001, walk_b);
    ASSERT_EQ(walk_a.size(), Omt::kWalkLevels);
    ASSERT_EQ(walk_b.size(), Omt::kWalkLevels);
    // Adjacent OPNs share the root and differ (at most) in the leaf.
    EXPECT_EQ(walk_a[0], walk_b[0]);
    EXPECT_EQ(walk_a[1], walk_b[1]);
    EXPECT_EQ(walk_a[2], walk_b[2]);
}

TEST_F(OmtTest, DistantOpnsDivergeEarly)
{
    omt.findOrCreate(0x0);
    omt.findOrCreate(Addr(1) << 35);
    std::vector<Addr> walk_a, walk_b;
    omt.walkAddresses(0x0, walk_a);
    omt.walkAddresses(Addr(1) << 35, walk_b);
    ASSERT_EQ(walk_a.size(), Omt::kWalkLevels);
    ASSERT_EQ(walk_b.size(), Omt::kWalkLevels);
    EXPECT_NE(walk_a[3], walk_b[3]);
}

TEST_F(OmtTest, NodeBytesGrowWithFootprint)
{
    omt.findOrCreate(0);
    std::uint64_t first = omt.nodeBytes();
    EXPECT_GT(first, 0u);
    omt.findOrCreate(Addr(1) << 40);
    EXPECT_GT(omt.nodeBytes(), first);
}

TEST(OmtCache, HitAfterMiss)
{
    OmtCache cache("omtc", OmtCacheParams{});
    EXPECT_FALSE(cache.lookupAllocate(7).hit);
    EXPECT_TRUE(cache.lookupAllocate(7).hit);
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.misses(), 1u);
}

TEST(OmtCache, Is64EntriesAnd4KBofSram)
{
    // §4.5: 64 entries x 512 bits = 4 KB.
    OmtCache cache("omtc", OmtCacheParams{});
    EXPECT_EQ(cache.params().entries, 64u);
    EXPECT_EQ(cache.storageBits(), 64u * 512u);
    EXPECT_EQ(cache.storageBits() / 8, 4096u);
}

TEST(OmtCache, EvictionWritesBackModifiedEntries)
{
    OmtCacheParams params;
    params.entries = 4;
    params.associativity = 2; // 2 sets
    OmtCache cache("omtc", params);

    // Fill set 0 (even OPNs) and modify one entry.
    cache.lookupAllocate(0);
    cache.lookupAllocate(2);
    cache.markModified(0);
    // Next even OPN evicts the LRU (0), which is modified.
    auto res = cache.lookupAllocate(4);
    EXPECT_FALSE(res.hit);
    EXPECT_TRUE(res.needsWriteback);
    EXPECT_EQ(res.writebackOpn, 0u);
}

TEST(OmtCache, CleanEvictionNeedsNoWriteback)
{
    OmtCacheParams params;
    params.entries = 4;
    params.associativity = 2;
    OmtCache cache("omtc", params);
    cache.lookupAllocate(0);
    cache.lookupAllocate(2);
    auto res = cache.lookupAllocate(4);
    EXPECT_FALSE(res.needsWriteback);
}

TEST(OmtCache, InvalidateReportsModified)
{
    OmtCache cache("omtc", OmtCacheParams{});
    cache.lookupAllocate(9);
    cache.markModified(9);
    EXPECT_TRUE(cache.isPresent(9));
    EXPECT_TRUE(cache.invalidate(9));
    EXPECT_FALSE(cache.isPresent(9));
    EXPECT_FALSE(cache.invalidate(9)); // already gone
}

TEST(OmtCache, LruWithinSet)
{
    OmtCacheParams params;
    params.entries = 4;
    params.associativity = 2;
    OmtCache cache("omtc", params);
    cache.lookupAllocate(0);
    cache.lookupAllocate(2);
    cache.lookupAllocate(0); // refresh 0
    cache.lookupAllocate(4); // evicts 2
    EXPECT_TRUE(cache.isPresent(0));
    EXPECT_FALSE(cache.isPresent(2));
    EXPECT_TRUE(cache.isPresent(4));
}

} // namespace
} // namespace ovl
