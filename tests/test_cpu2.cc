/**
 * @file
 * Core-model tests for the configurable issue width: IPC scaling on
 * compute-bound code, slot accounting across mixed ops, and fault
 * flushes under wide issue.
 */

#include <gtest/gtest.h>

#include "cpu/ooo_core.hh"

namespace ovl
{
namespace
{

constexpr Addr kBase = 0x200000;

SystemConfig
widthConfig(unsigned width)
{
    SystemConfig cfg;
    cfg.issueWidth = width;
    return cfg;
}

TEST(CoreWidth, ComputeIpcScalesWithWidth)
{
    for (unsigned width : {1u, 2u, 4u}) {
        System sys(widthConfig(width));
        OooCore core("core", sys);
        Asid asid = sys.createProcess();
        Trace trace;
        trace.push_back(TraceOp::compute(1200));
        core.run(asid, trace, 0);
        EXPECT_EQ(core.epochCycles(), 1200u / width) << "width " << width;
    }
}

TEST(CoreWidth, MixedSlotAccountingIsExact)
{
    // 2-wide: compute(3) uses 1.5 cycles; a following load shares the
    // second cycle's remaining slot.
    System sys(widthConfig(2));
    OooCore core("core", sys);
    Asid asid = sys.createProcess();
    sys.mapAnon(asid, kBase, kPageSize);
    Trace warm;
    warm.push_back(TraceOp::load(kBase));
    Tick t0 = core.run(asid, warm, 0);

    Trace trace;
    for (int i = 0; i < 100; ++i) {
        trace.push_back(TraceOp::compute(3));
        trace.push_back(TraceOp::load(kBase)); // L1 hit
    }
    core.run(asid, trace, t0);
    // 400 instructions at width 2 -> at least 200 cycles, and the L1
    // hits should keep it near that bound.
    EXPECT_GE(core.epochCycles(), 200u);
    EXPECT_LE(core.epochCycles(), 230u);
}

TEST(CoreWidth, WideIssueStillFlushesOnFaults)
{
    System sys(widthConfig(4));
    OooCore core("core", sys);
    Asid parent = sys.createProcess();
    sys.mapAnon(parent, kBase, kPageSize);
    Tick t = 0;
    sys.fork(parent, ForkMode::CopyOnWrite, 0, &t);

    core.beginEpoch(t);
    core.executeOp(parent, TraceOp::store(kBase)); // CoW fault
    core.executeOp(parent, TraceOp::compute(4));
    Tick done = core.finishEpoch();
    // The fault serialized: the compute could not start before the
    // fault completed (trap + copy + shootdown >> 4 cycles).
    EXPECT_GT(done - t, sys.config().tlbShootdownCycles());
}

TEST(CoreWidth, DefaultMatchesTable2SingleIssue)
{
    System sys((SystemConfig()));
    EXPECT_EQ(sys.config().issueWidth, 1u);
    OooCore core("core", sys);
    Asid asid = sys.createProcess();
    Trace trace;
    trace.push_back(TraceOp::compute(500));
    core.run(asid, trace, 0);
    EXPECT_EQ(core.epochCycles(), 500u);
}

} // namespace
} // namespace ovl
