/**
 * @file
 * Tests for the Overlay Memory Store: segment geometry (Figure 7),
 * per-segment slot metadata, and the free-space allocator with
 * splitting, OS refills, and optional buddy coalescing (§4.4).
 */

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "common/random.hh"
#include "overlay/oms_allocator.hh"
#include "overlay/oms_segment.hh"

namespace ovl
{
namespace
{

TEST(OmsSegment, ClassGeometry)
{
    EXPECT_EQ(segClassBytes(SegClass::Seg256B), 256u);
    EXPECT_EQ(segClassBytes(SegClass::Seg4KB), 4096u);
    // Figure 7: a 256 B segment stores up to three overlay lines (one
    // line is metadata).
    EXPECT_EQ(segClassCapacity(SegClass::Seg256B), 3u);
    EXPECT_EQ(segClassCapacity(SegClass::Seg512B), 7u);
    EXPECT_EQ(segClassCapacity(SegClass::Seg1KB), 15u);
    EXPECT_EQ(segClassCapacity(SegClass::Seg2KB), 31u);
    // A 4 KB segment has no metadata line and holds the full page.
    EXPECT_EQ(segClassCapacity(SegClass::Seg4KB), 64u);
}

TEST(OmsSegment, SmallestFittingClass)
{
    EXPECT_EQ(segClassFor(1), SegClass::Seg256B);
    EXPECT_EQ(segClassFor(3), SegClass::Seg256B);
    EXPECT_EQ(segClassFor(4), SegClass::Seg512B);
    EXPECT_EQ(segClassFor(16), SegClass::Seg2KB);
    EXPECT_EQ(segClassFor(31), SegClass::Seg2KB);
    EXPECT_EQ(segClassFor(32), SegClass::Seg4KB);
    EXPECT_EQ(segClassFor(64), SegClass::Seg4KB);
}

TEST(OmsSegment, MetadataFitsInOneCacheLine)
{
    // §4.4.1: 64 x 5-bit pointers + 32-bit free vector = 352 bits.
    EXPECT_LE(64 * 5 + 32, 512);
}

TEST(OmsSegment, SlotAllocationAndAddressing)
{
    OmsSegment seg;
    seg.baseAddr = 0x10000;
    seg.cls = SegClass::Seg256B;
    seg.meta.initFree(seg.cls);

    std::uint8_t s0 = seg.meta.allocSlot();
    std::uint8_t s1 = seg.meta.allocSlot();
    std::uint8_t s2 = seg.meta.allocSlot();
    EXPECT_EQ(s0, 0);
    EXPECT_EQ(s1, 1);
    EXPECT_EQ(s2, 2);
    EXPECT_EQ(seg.meta.allocSlot(), kInvalidSlot); // full

    seg.meta.slotOf[5] = s0;
    seg.meta.slotOf[60] = s1;
    // Slot s occupies line s+1 (line 0 is metadata).
    EXPECT_EQ(seg.lineAddr(5), 0x10000u + 1 * kLineSize);
    EXPECT_EQ(seg.lineAddr(60), 0x10000u + 2 * kLineSize);
    EXPECT_TRUE(seg.hasSlot(5));
    EXPECT_FALSE(seg.hasSlot(6));
    EXPECT_EQ(seg.usedSlots(), 2u);
}

TEST(OmsSegment, FreeSlotReturnsToPool)
{
    OmsSegment seg;
    seg.cls = SegClass::Seg256B;
    seg.meta.initFree(seg.cls);
    std::uint8_t s = seg.meta.allocSlot();
    seg.meta.allocSlot();
    seg.meta.allocSlot();
    EXPECT_EQ(seg.meta.allocSlot(), kInvalidSlot);
    seg.meta.freeSlot(s);
    EXPECT_EQ(seg.meta.allocSlot(), s);
}

TEST(OmsSegment, FourKbSegmentUsesDirectOffsets)
{
    // §4.4.1: a 4 KB segment stores each line at its in-page offset.
    OmsSegment seg;
    seg.baseAddr = 0x20000;
    seg.cls = SegClass::Seg4KB;
    for (unsigned l : {0u, 17u, 63u}) {
        EXPECT_TRUE(seg.hasSlot(l));
        EXPECT_EQ(seg.lineAddr(l), 0x20000u + Addr(l) * kLineSize);
    }
}

/** Page-bump allocator hook for the devirtualized PageAllocFn. */
Addr
bumpPage(void *ctx)
{
    return *static_cast<Addr *>(ctx) += kPageSize;
}

class OmsAllocatorTest : public ::testing::Test
{
  protected:
    OmsAllocatorTest()
        : alloc("oms", OmsAllocatorParams{4, 4, false},
                PageAllocFn{&bumpPage, &nextPage_})
    {
    }

    Addr nextPage_ = 0;
    OmsAllocator alloc;
};

TEST_F(OmsAllocatorTest, StartupPagesPreallocated)
{
    // §4.4.3: the OS proactively hands the controller a chunk of pages.
    EXPECT_EQ(alloc.freeCount(SegClass::Seg4KB), 4u);
    EXPECT_EQ(alloc.osBytesProvided(), 4 * kPageSize);
}

TEST_F(OmsAllocatorTest, SplittingFeedsSmallClasses)
{
    Addr seg = alloc.allocate(SegClass::Seg256B);
    (void)seg;
    // One 4 KB page was split down: 4K -> 2x2K -> ... -> 2x256.
    EXPECT_EQ(alloc.freeCount(SegClass::Seg2KB), 1u);
    EXPECT_EQ(alloc.freeCount(SegClass::Seg1KB), 1u);
    EXPECT_EQ(alloc.freeCount(SegClass::Seg512B), 1u);
    EXPECT_EQ(alloc.freeCount(SegClass::Seg256B), 1u);
    EXPECT_EQ(alloc.freeCount(SegClass::Seg4KB), 3u);
}

TEST_F(OmsAllocatorTest, SplitHalvesAreAdjacent)
{
    Addr a = alloc.allocate(SegClass::Seg2KB);
    Addr b = alloc.allocate(SegClass::Seg2KB);
    EXPECT_EQ(b, a + 2048); // the buddy half
}

TEST_F(OmsAllocatorTest, ReleaseMakesSegmentReusable)
{
    Addr a = alloc.allocate(SegClass::Seg512B);
    alloc.release(a, SegClass::Seg512B);
    EXPECT_EQ(alloc.allocate(SegClass::Seg512B), a);
}

TEST_F(OmsAllocatorTest, OsRefillWhenExhausted)
{
    for (int i = 0; i < 4; ++i)
        alloc.allocate(SegClass::Seg4KB);
    EXPECT_EQ(alloc.freeCount(SegClass::Seg4KB), 0u);
    alloc.allocate(SegClass::Seg4KB); // triggers refill of 4 pages
    EXPECT_EQ(alloc.osBytesProvided(), 8 * kPageSize);
    EXPECT_EQ(alloc.freeCount(SegClass::Seg4KB), 3u);
}

TEST(OmsAllocatorCoalesce, BuddiesMergeBackUp)
{
    Addr next = 0;
    OmsAllocatorParams params{4, 4, true}; // coalescing on (extension)
    OmsAllocator alloc("oms", params, PageAllocFn{&bumpPage, &next});
    Addr a = alloc.allocate(SegClass::Seg2KB);
    Addr b = alloc.allocate(SegClass::Seg2KB);
    std::size_t big_before = alloc.freeCount(SegClass::Seg4KB);
    alloc.release(a, SegClass::Seg2KB);
    alloc.release(b, SegClass::Seg2KB);
    // The two 2 KB buddies coalesced into a 4 KB segment.
    EXPECT_EQ(alloc.freeCount(SegClass::Seg2KB), 0u);
    EXPECT_EQ(alloc.freeCount(SegClass::Seg4KB), big_before + 1);
}

TEST(OmsAllocatorProperty, RandomChurnConservesBytes)
{
    // Property: allocated + free bytes always equals what the OS
    // provided, under arbitrary allocate/release sequences.
    Addr next = 0;
    OmsAllocator alloc("oms", OmsAllocatorParams{8, 8, false},
                       PageAllocFn{&bumpPage, &next});
    Rng rng(3);
    std::vector<std::pair<Addr, SegClass>> live;
    std::uint64_t live_bytes = 0;
    for (int step = 0; step < 2000; ++step) {
        if (live.empty() || rng.chance(0.6)) {
            auto cls = SegClass(rng.below(kNumSegClasses));
            live.push_back({alloc.allocate(cls), cls});
            live_bytes += segClassBytes(cls);
        } else {
            std::size_t idx = rng.below(live.size());
            auto [base, cls] = live[idx];
            live[idx] = live.back();
            live.pop_back();
            alloc.release(base, cls);
            live_bytes -= segClassBytes(cls);
        }
        std::uint64_t free_bytes = 0;
        for (unsigned c = 0; c < kNumSegClasses; ++c) {
            free_bytes += alloc.freeCount(SegClass(c)) *
                          segClassBytes(SegClass(c));
        }
        ASSERT_EQ(live_bytes + free_bytes, alloc.osBytesProvided());
    }
}

TEST(OmsAllocatorProperty, SplitCoalesceRoundTripsConserveBytes)
{
    // Satellite property for the intrusive free lists: with coalescing
    // enabled, arbitrary allocate/release churn (a) conserves bytes and
    // (b) costs a bounded number of free-list touches per operation —
    // no linear scans hiding in release() or tryCoalesce(). The worst
    // single op is an allocate that splits 4K->256 (4 splits) or a
    // release that coalesces 256->4K (4 merges), each touching a
    // constant number of list nodes.
    constexpr std::uint64_t kMaxTouchesPerOp = 16;
    Addr next = 0;
    OmsAllocator alloc("oms", OmsAllocatorParams{4, 4, true},
                       PageAllocFn{&bumpPage, &next});
    Rng rng(17);
    std::vector<std::pair<Addr, SegClass>> live;
    std::uint64_t live_bytes = 0;
    for (int step = 0; step < 4000; ++step) {
        std::uint64_t touches_before = alloc.listTouches();
        if (live.empty() || rng.chance(0.55)) {
            auto cls = SegClass(rng.below(kNumSegClasses));
            live.push_back({alloc.allocate(cls), cls});
            live_bytes += segClassBytes(cls);
        } else {
            std::size_t idx = rng.below(live.size());
            auto [base, cls] = live[idx];
            live[idx] = live.back();
            live.pop_back();
            alloc.release(base, cls);
            live_bytes -= segClassBytes(cls);
        }
        ASSERT_LE(alloc.listTouches() - touches_before, kMaxTouchesPerOp)
            << "free-list op not O(1) at step " << step;
        std::uint64_t free_bytes = 0;
        for (unsigned c = 0; c < kNumSegClasses; ++c) {
            free_bytes += alloc.freeCount(SegClass(c)) *
                          segClassBytes(SegClass(c));
        }
        ASSERT_EQ(live_bytes + free_bytes, alloc.osBytesProvided());
    }
    // Drain everything: coalescing must reconstitute whole pages.
    for (auto &[base, cls] : live)
        alloc.release(base, cls);
    EXPECT_EQ(alloc.freeCount(SegClass::Seg4KB) * kPageSize,
              alloc.osBytesProvided());
    for (unsigned c = 0; c + 1 < kNumSegClasses; ++c)
        EXPECT_EQ(alloc.freeCount(SegClass(c)), 0u);
}

TEST(OmsAllocatorProperty, NoOverlappingLiveSegments)
{
    Addr next = 0;
    OmsAllocator alloc("oms", OmsAllocatorParams{8, 8, false},
                       PageAllocFn{&bumpPage, &next});
    Rng rng(9);
    std::vector<std::pair<Addr, SegClass>> live;
    for (int step = 0; step < 500; ++step) {
        auto cls = SegClass(rng.below(kNumSegClasses));
        Addr base = alloc.allocate(cls);
        for (const auto &[obase, ocls] : live) {
            bool disjoint = base + segClassBytes(cls) <= obase ||
                            obase + segClassBytes(ocls) <= base;
            ASSERT_TRUE(disjoint)
                << "segment overlap at " << std::hex << base;
        }
        live.push_back({base, cls});
    }
}

} // namespace
} // namespace ovl
