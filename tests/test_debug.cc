/**
 * @file
 * Tests for the runtime debug-trace flags.
 */

#include <gtest/gtest.h>

#include "common/debug.hh"

namespace ovl
{
namespace
{

class DebugFlags : public ::testing::Test
{
  protected:
    void
    TearDown() override
    {
        for (unsigned i = 0; i < unsigned(debug::Flag::NumFlags); ++i)
            debug::setFlag(debug::Flag(i), false);
    }
};

TEST_F(DebugFlags, DefaultOff)
{
    debug::setFlag(debug::Flag::dram, false); // pin parsed state
    for (unsigned i = 0; i < unsigned(debug::Flag::NumFlags); ++i)
        EXPECT_FALSE(debug::enabled(debug::Flag(i)));
}

TEST_F(DebugFlags, SetAndClear)
{
    debug::setFlag(debug::Flag::overlay, true);
    EXPECT_TRUE(debug::enabled(debug::Flag::overlay));
    EXPECT_FALSE(debug::enabled(debug::Flag::dram));
    debug::setFlag(debug::Flag::overlay, false);
    EXPECT_FALSE(debug::enabled(debug::Flag::overlay));
}

TEST_F(DebugFlags, ListParsing)
{
    debug::enableFromList("dram,tlb");
    EXPECT_TRUE(debug::enabled(debug::Flag::dram));
    EXPECT_TRUE(debug::enabled(debug::Flag::tlb));
    EXPECT_FALSE(debug::enabled(debug::Flag::cache));
}

TEST_F(DebugFlags, AllEnablesEverything)
{
    debug::enableFromList("all");
    for (unsigned i = 0; i < unsigned(debug::Flag::NumFlags); ++i)
        EXPECT_TRUE(debug::enabled(debug::Flag(i)));
}

TEST_F(DebugFlags, UnknownNamesAreIgnored)
{
    debug::enableFromList("nonsense,,overlay");
    EXPECT_TRUE(debug::enabled(debug::Flag::overlay));
    EXPECT_FALSE(debug::enabled(debug::Flag::system));
}

TEST_F(DebugFlags, NamesRoundTrip)
{
    for (unsigned i = 0; i < unsigned(debug::Flag::NumFlags); ++i) {
        debug::enableFromList(debug::flagName(debug::Flag(i)));
        EXPECT_TRUE(debug::enabled(debug::Flag(i)))
            << debug::flagName(debug::Flag(i));
    }
}

} // namespace
} // namespace ovl
