/**
 * @file
 * Tests for the simulation kernel: statistics and the event queue.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/event_queue.hh"
#include "sim/sim_object.hh"
#include "sim/stats.hh"

namespace ovl
{
namespace
{

TEST(Stats, CounterAccumulates)
{
    stats::Group group("g");
    stats::Counter c(&group, "c", "a counter");
    ++c;
    c += 10;
    EXPECT_EQ(c.value(), 11u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Stats, GaugeMovesBothWays)
{
    stats::Group group("g");
    stats::Gauge g(&group, "g", "a gauge");
    g += 5;
    g -= 2;
    EXPECT_EQ(g.value(), 3);
    g.set(-7);
    EXPECT_EQ(g.value(), -7);
}

TEST(Stats, HistogramMoments)
{
    stats::Group group("g");
    stats::Histogram h(&group, "h", "hist", 10, 10);
    h.sample(5);
    h.sample(15);
    h.sample(1000); // overflow bucket
    EXPECT_EQ(h.samples(), 3u);
    EXPECT_EQ(h.minValue(), 5u);
    EXPECT_EQ(h.maxValue(), 1000u);
    EXPECT_DOUBLE_EQ(h.mean(), (5.0 + 15.0 + 1000.0) / 3.0);
}

TEST(Stats, FormulaEvaluatesLazily)
{
    stats::Group group("g");
    stats::Counter num(&group, "num", "numerator");
    stats::Counter den(&group, "den", "denominator");
    stats::Formula ratio(&group, "ratio", "num/den", [&] {
        return den.value() ? double(num.value()) / double(den.value()) : 0.0;
    });
    num += 6;
    den += 3;
    EXPECT_DOUBLE_EQ(ratio.value(), 2.0);
}

TEST(Stats, GroupDumpContainsNamesAndValues)
{
    stats::Group group("sys.cache");
    stats::Counter c(&group, "hits", "cache hits");
    c += 42;
    std::ostringstream os;
    group.dump(os);
    std::string out = os.str();
    EXPECT_NE(out.find("sys.cache.hits"), std::string::npos);
    EXPECT_NE(out.find("42"), std::string::npos);
    EXPECT_NE(out.find("cache hits"), std::string::npos);
}

TEST(Stats, GroupResetClearsEverything)
{
    stats::Group group("g");
    stats::Counter c(&group, "c", "");
    stats::Histogram h(&group, "h", "", 1, 4);
    c += 3;
    h.sample(2);
    group.resetStats();
    EXPECT_EQ(c.value(), 0u);
    EXPECT_EQ(h.samples(), 0u);
}

TEST(SimObject, NamePropagatesToStats)
{
    struct Obj : SimObject
    {
        explicit Obj(std::string n) : SimObject(std::move(n)) {}
    };
    Obj obj("system.widget");
    EXPECT_EQ(obj.name(), "system.widget");
    EXPECT_EQ(obj.statGroup().name(), "system.widget");
}

TEST(EventQueue, RunsInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&](Tick) { order.push_back(3); });
    eq.schedule(10, [&](Tick) { order.push_back(1); });
    eq.schedule(20, [&](Tick) { order.push_back(2); });
    eq.drain();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, TiesBreakByInsertionOrder)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        eq.schedule(7, [&order, i](Tick) { order.push_back(i); });
    eq.drain();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, RunUntilStopsAtBoundary)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&](Tick) { ++fired; });
    eq.schedule(20, [&](Tick) { ++fired; });
    eq.runUntil(15);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.now(), 15u);
    EXPECT_EQ(eq.pending(), 1u);
    eq.runUntil(25);
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, EventsCanScheduleEvents)
{
    EventQueue eq;
    int depth = 0;
    std::function<void(Tick)> chain = [&](Tick now) {
        if (++depth < 5)
            eq.schedule(now + 1, chain);
    };
    eq.schedule(0, chain);
    eq.drain();
    EXPECT_EQ(depth, 5);
    EXPECT_EQ(eq.now(), 4u);
}

// Callbacks scheduled from inside a callback for the *same* tick must
// still run this tick, after everything already queued for it, in
// insertion order. Pins the (when, seq) tie-break across queue rewrites.
TEST(EventQueue, NestedSameTickCallbacksRunInDeterministicOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(10, [&](Tick now) {
        order.push_back(0);
        // Same-tick children: must run after events 1 and 2 below,
        // which were enqueued first, and in their own insertion order.
        eq.schedule(now, [&](Tick) { order.push_back(3); });
        eq.schedule(now, [&](Tick now2) {
            order.push_back(4);
            eq.schedule(now2, [&](Tick) { order.push_back(5); });
        });
    });
    eq.schedule(10, [&](Tick) { order.push_back(1); });
    eq.schedule(10, [&](Tick) { order.push_back(2); });
    eq.runUntil(10);
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5}));
    EXPECT_EQ(eq.pending(), 0u);
}

TEST(EventQueue, NextEventTick)
{
    EventQueue eq;
    EXPECT_EQ(eq.nextEventTick(), kMaxTick);
    eq.schedule(42, [](Tick) {});
    EXPECT_EQ(eq.nextEventTick(), 42u);
}

} // namespace
} // namespace ovl
